// The interest-management layer: cross-shard avatar visibility. Each
// shard renders only its own residents, so without replication a player
// standing one block from a tile boundary cannot see an avatar two
// blocks away on the neighbouring shard — and every handoff pops the
// avatar out of one world and into another. The visibility bus closes
// the seam: each replication tick, every shard publishes a compact
// digest of its avatars standing within the border margin of a tile
// boundary (membership via world.BordersWithin: the home tile's
// Topology.Neighbors ring, and further rings when the margin spans
// them), and the shards owning the bordering tiles materialise the
// entries as read-only ghost avatars (mve's ghost registry). Ghosts are
// display-and-prefetch state only; the real session stays where it is.
//
// Handoffs ride the same machinery instead of popping: evicting the
// session demotes it to a pinned ghost on the source shard (viewers keep
// seeing it while its state crosses the storage substrate — pinned
// because an in-flight session cannot refresh itself), and admission on
// the target promotes the ghost there back into a real avatar. Ghosts
// that stop being refreshed — the avatar walked away from the border, or
// disconnected — expire after a few scans.
//
// The bus also audits itself: after applying the digests, it checks
// every cross-shard pair of border residents within view distance of
// each other and counts a visibility gap tick if any viewer's shard is
// missing the matching ghost. A healthy configuration (margin ≥ view
// distance) holds the gap counter at zero; the bundled border-patrol
// scenario asserts exactly that.

package cluster

import (
	"encoding/binary"
	"math"
	"time"

	"servo/internal/world"
)

// Visibility defaults.
const (
	// DefaultVisibilityInterval is the replication cadence: once per
	// 20 Hz server tick.
	DefaultVisibilityInterval = 50 * time.Millisecond
	// ghostTTLScans is how many replication scans a ghost survives
	// without a refresh before it expires (handoff-pinned ghosts are
	// exempt).
	ghostTTLScans = 4
)

// VisibilityConfig tunes the interest-management layer.
type VisibilityConfig struct {
	// Enabled turns border-tile avatar replication on.
	Enabled bool
	// Margin is the border margin in blocks: avatars within Margin of a
	// tile boundary replicate to the bordering tiles' owners
	// (0 → the shard servers' view distance).
	Margin int
	// Interval is the replication cadence (0 → DefaultVisibilityInterval).
	Interval time.Duration
	// Observer, when set, receives every published per-shard-pair digest
	// (a test hook for the determinism contract; not consulted by the
	// bus itself).
	Observer func(src, dst int, digest []byte)
}

// withDefaults fills zero fields. The margin default needs the shard
// servers and is resolved at Start.
func (v VisibilityConfig) withDefaults() VisibilityConfig {
	if v.Interval == 0 {
		v.Interval = DefaultVisibilityInterval
	}
	return v
}

// GhostRecord logs one ghost-registry transition, in occurrence order.
// Like the handoff Log, the sequence is part of the deterministic replay
// surface: same seed, same records.
type GhostRecord struct {
	Player string
	// Shard is the shard whose registry changed.
	Shard int
	// Event is "spawn" (scan created a ghost), "demote" (handoff eviction
	// left a pinned ghost behind), "promote" (admission replaced the
	// ghost with the real avatar), "expire" (staleness reaping), or
	// "drop" (the mirrored session disconnected mid-handoff).
	Event string
}

// ghostEntry is one digest line: an avatar another shard should mirror.
type ghostEntry struct {
	name string
	x, z float64
	home int
}

// EncodeGhostDigest serialises one shard-pair digest: the compact wire
// form the bus publishes (and the byte surface the determinism tests
// compare).
func EncodeGhostDigest(entries []ghostEntry) []byte {
	out := make([]byte, 0, 4+24*len(entries))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(e.name)))
		out = append(out, e.name...)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(e.x))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(e.z))
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(e.home)))
	}
	return out
}

// visMargin returns the effective border margin: the configured value,
// defaulting to the shard servers' view distance ("within ViewDistance
// of any tile border").
func (c *Cluster) visMargin() int {
	if c.vis.Margin > 0 {
		return c.vis.Margin
	}
	return c.shards[0].Config().ViewDistance
}

// visibilityScan is one replication tick of the interest-management
// layer: publish border digests, materialise ghosts, reap stale ones,
// and audit for visibility gaps.
func (c *Cluster) visibilityScan() {
	if c.stopped {
		return
	}
	defer c.clock.After(c.vis.Interval, c.visibilityScan)
	c.visSeq++
	margin := c.visMargin()

	// Publish: walk sessions in join order and collect, per (src, dst)
	// shard pair, the avatars dst should mirror — every session standing
	// within the margin of a tile bordering dst's territory, plus
	// sessions standing on terrain dst already owns (residents of a
	// freshly migrated tile stay visible to the new owner's players
	// until the handoff scan moves them). Displaced sessions — hosted by
	// a shard that no longer owns the terrain under them, the
	// migration/handoff transient — also pair up with every session near
	// them: tile ownership cannot name their host shard, so their
	// neighbours publish to it (and vice versa) by session geometry.
	type sess struct {
		p         *Player
		pos       world.BlockPos
		x, z      float64
		dsts      map[int]bool
		displaced bool
	}
	var all []sess
	for _, id := range c.order {
		p := c.players[id]
		if p.inflight {
			continue
		}
		sp := c.shards[p.shard].Player(p.pid)
		if sp == nil {
			continue
		}
		pos := sp.Pos()
		dsts := make(map[int]bool)
		home := c.table.ShardOfBlock(pos)
		if home != p.shard {
			dsts[home] = true
		}
		for _, bn := range world.BordersWithin(c.topo, pos, margin) {
			dsts[c.table.Owner(bn.Tile)] = true
		}
		all = append(all, sess{p: p, pos: pos, x: sp.X, z: sp.Z, dsts: dsts, displaced: home != p.shard})
	}
	for i := range all {
		if !all[i].displaced {
			continue
		}
		for j := range all {
			if i == j || all[i].p.shard == all[j].p.shard || chebDist(all[i].pos, all[j].pos) > margin {
				continue
			}
			all[j].dsts[all[i].p.shard] = true
			all[i].dsts[all[j].p.shard] = true
		}
	}
	type pair struct{ src, dst int }
	digests := make(map[pair][]ghostEntry)
	// residents are the sessions with any replication target: the set
	// the gap audit checks.
	var residents []*sess
	for i := range all {
		s := &all[i]
		delete(s.dsts, s.p.shard)
		if len(s.dsts) == 0 {
			continue
		}
		residents = append(residents, s)
		// Deterministic fan-out order: ascending shard index.
		for dst := 0; dst < len(c.shards); dst++ {
			if !s.dsts[dst] || !c.table.Alive(dst) {
				continue
			}
			key := pair{src: s.p.shard, dst: dst}
			digests[key] = append(digests[key], ghostEntry{name: s.p.Name, x: s.x, z: s.z, home: s.p.shard})
		}
	}

	// Apply: materialise the digests as ghosts, in (src, dst) order.
	for src := 0; src < len(c.shards); src++ {
		for dst := 0; dst < len(c.shards); dst++ {
			entries := digests[pair{src: src, dst: dst}]
			if len(entries) == 0 {
				continue
			}
			if c.vis.Observer != nil {
				c.vis.Observer(src, dst, EncodeGhostDigest(entries))
			}
			for _, e := range entries {
				if c.shards[dst].UpsertGhost(e.name, e.x, e.z, e.home, c.visSeq) {
					c.GhostLog = append(c.GhostLog, GhostRecord{Player: e.name, Shard: dst, Event: "spawn"})
				}
				c.GhostUpdates.Inc()
			}
		}
	}

	// Reap: unpinned ghosts not refreshed for ghostTTLScans scans.
	if c.visSeq > ghostTTLScans {
		for i, s := range c.shards {
			if !c.table.Alive(i) {
				continue
			}
			for _, name := range s.ExpireGhosts(c.visSeq - ghostTTLScans) {
				c.GhostLog = append(c.GhostLog, GhostRecord{Player: name, Shard: i, Event: "expire"})
			}
		}
	}

	// Audit: every cross-shard pair of border residents within view
	// distance must be mutually served by a ghost. One or more unserved
	// pairs make this a visibility gap tick.
	view := c.shards[0].Config().ViewDistance
	gap := false
	for i := 0; i < len(residents) && !gap; i++ {
		for j := i + 1; j < len(residents); j++ {
			a, b := residents[i], residents[j]
			if a.p.shard == b.p.shard || chebDist(a.pos, b.pos) > view {
				continue
			}
			if c.shards[a.p.shard].Ghost(b.p.Name) == nil || c.shards[b.p.shard].Ghost(a.p.Name) == nil {
				gap = true
				break
			}
		}
	}
	if gap {
		c.VisibilityGaps.Inc()
	}
}

// chebDist is the Chebyshev distance in blocks between two positions.
func chebDist(a, b world.BlockPos) int {
	dx, dz := a.X-b.X, a.Z-b.Z
	if dx < 0 {
		dx = -dx
	}
	if dz < 0 {
		dz = -dz
	}
	if dx > dz {
		return dx
	}
	return dz
}

// GhostCount returns the number of live ghosts across the alive shards
// (the ghost_avatars gauge).
func (c *Cluster) GhostCount() int {
	n := 0
	for i, s := range c.shards {
		if c.table.Alive(i) {
			n += s.GhostCount()
		}
	}
	return n
}

// demoteToGhost preserves an evicted session's visibility while its
// handoff crosses the storage substrate: a ghost is installed (pinned)
// on the source shard, and every other shard already mirroring the
// avatar has its ghost pinned too — an in-flight session cannot refresh
// itself, and an unpinned ghost expiring mid-flight would pop the
// avatar out of that shard's world exactly when a brownout stretches
// the flight. home is the shard the session is bound for.
func (c *Cluster) demoteToGhost(p *Player, src int, x, z float64, home int) {
	if !c.vis.Enabled {
		return
	}
	if c.table.Alive(src) {
		if c.shards[src].UpsertGhost(p.Name, x, z, home, c.visSeq) {
			c.GhostLog = append(c.GhostLog, GhostRecord{Player: p.Name, Shard: src, Event: "demote"})
		}
	}
	for i, s := range c.shards {
		if c.table.Alive(i) && s.Ghost(p.Name) != nil {
			s.PinGhost(p.Name, true)
		}
	}
}

// promoteFromGhost completes the handoff's visibility half: the target
// shard's ghost gives way to the real avatar, and every other shard's
// pinned double is unpinned and refreshed in place (the next scan takes
// over, or it expires once the avatar leaves the border). Shards that
// lost their ghost meanwhile (a crash wiped the registry) are left
// alone — the next scan re-publishes the avatar if it still matters.
func (c *Cluster) promoteFromGhost(p *Player, src, dst int, x, z float64) {
	if !c.vis.Enabled {
		return
	}
	if c.shards[dst].RemoveGhost(p.Name) {
		c.GhostLog = append(c.GhostLog, GhostRecord{Player: p.Name, Shard: dst, Event: "promote"})
	}
	for i, s := range c.shards {
		if i == dst || !c.table.Alive(i) || s.Ghost(p.Name) == nil {
			continue
		}
		s.UpsertGhost(p.Name, x, z, dst, c.visSeq)
		s.PinGhost(p.Name, false)
	}
}

// dropGhosts removes a session's ghosts from every shard (mid-handoff
// disconnect: the avatar is gone for good, so no ghost — pinned ones
// included — may linger anywhere).
func (c *Cluster) dropGhosts(name string) {
	if !c.vis.Enabled {
		return
	}
	for i, s := range c.shards {
		if c.table.Alive(i) && s.RemoveGhost(name) {
			c.GhostLog = append(c.GhostLog, GhostRecord{Player: name, Shard: i, Event: "drop"})
		}
	}
}
