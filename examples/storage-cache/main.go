// Storage cache: measure terrain retrieval latency across the three
// storage configurations of the paper's §IV-F — local disk, raw serverless
// storage, and serverless storage behind Servo's pre-fetching cache — the
// Fig. 13 comparison as a runnable demo.
//
//	go run ./examples/storage-cache
package main

import (
	"fmt"
	"time"

	"servo/internal/blob"
	"servo/internal/servo/tcache"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/world"
)

func main() {
	loop := sim.NewLoop(3)

	// Populate a remote (premium-tier) store with terrain.
	remote := blob.NewStore(loop, blob.TierPremium)
	local := blob.NewStore(loop, blob.TierLocal)
	gen := terrain.Default{Seed: 3}
	var positions []world.ChunkPos
	for x := 0; x < 40; x++ {
		for z := 0; z < 10; z++ {
			pos := world.ChunkPos{X: x, Z: z}
			positions = append(positions, pos)
			data := gen.Generate(pos).Encode()
			remote.Put(tcache.Key(pos), data, nil)
			local.Put(tcache.Key(pos), data, nil)
		}
	}
	loop.Run()

	cache := tcache.New(loop, remote, tcache.DefaultConfig())

	// Read every chunk the way a moving player would: prefetch a little
	// ahead, then demand-read.
	var localLat, remoteLat []time.Duration
	for i, pos := range positions {
		if i+8 < len(positions) {
			cache.Prefetch(positions[i+4 : i+8])
		}
		start := loop.Now()
		local.Get(tcache.Key(pos), func([]byte, error) {
			localLat = append(localLat, loop.Now()-start)
		})
		remote.Get(tcache.Key(pos), func([]byte, error) {
			remoteLat = append(remoteLat, loop.Now()-start)
		})
		cache.Get(pos, func([]byte, error) {})
		loop.RunUntil(loop.Now() + 2*time.Second)
	}
	loop.Run()

	fmt.Println("terrain retrieval latency over", len(positions), "chunk reads:")
	fmt.Printf("%-20s p50=%-10v p99=%-10v max=%v\n", "local disk",
		pct(localLat, 0.50), pct(localLat, 0.99), pct(localLat, 1))
	fmt.Printf("%-20s p50=%-10v p99=%-10v max=%v\n", "serverless",
		pct(remoteLat, 0.50), pct(remoteLat, 0.99), pct(remoteLat, 1))
	b := cache.RetrievalLatency.Box()
	fmt.Printf("%-20s p50=%-10v p95=%-10v max=%v\n", "serverless+cache", b.P50, b.P95, b.Max)
	fmt.Printf("cache: %d hits, %d misses, %d prefetches issued\n",
		cache.Hits.Value(), cache.Misses.Value(), cache.PrefetchIssued.Value())
}

func pct(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	i := int(p * float64(len(s)-1))
	return s[i]
}
