// Package blob simulates serverless (managed) object storage — Azure Blob
// Storage and AWS S3 in the paper. The store holds real bytes in memory;
// only the request latency is modelled, with the distribution shapes the
// paper measures in Fig. 3 and Fig. 13:
//
//   - a lognormal latency body whose median sits in the low tens of
//     milliseconds;
//   - a heavy outlier tail reaching hundreds of milliseconds ("outliers
//     reach 500 ms latency", §IV-F), more pronounced on the Standard tier
//     than on Premium (Fig. 3);
//   - per-operation and per-byte billing meters.
//
// A Local tier models the baseline's local-disk persistence: sub-
// millisecond latency with rare small outliers (§IV-F: local storage
// completes 99.9% of requests within 16 ms and never exceeds 123 ms).
package blob

import (
	"errors"
	"fmt"
	"time"

	"servo/internal/metrics"
	"servo/internal/sim"
)

// Tier selects a latency/cost model.
type Tier int

// Storage tiers. TierLocal models the baseline's local disk; TierPremium
// and TierStandard model the two Azure Blob Storage plans of Fig. 3.
const (
	TierLocal Tier = iota + 1
	TierPremium
	TierStandard
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierLocal:
		return "local"
	case TierPremium:
		return "premium"
	case TierStandard:
		return "standard"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Model holds the latency distributions of one tier.
type Model struct {
	Read  sim.Dist
	Write sim.Dist
	// BytesPerSec is the transfer bandwidth added on top of the
	// first-byte latency; larger objects (terrain chunks) take visibly
	// longer than small ones (player data), as in the paper's Fig. 3.
	BytesPerSec float64
}

// transferTime returns the size-dependent component of an operation.
func (m Model) transferTime(n int) time.Duration {
	if m.BytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.BytesPerSec * float64(time.Second))
}

// ModelFor returns the calibrated latency model for a tier.
//
// Calibration anchors (paper Fig. 3, Fig. 13, §IV-F):
//   - local: p50 ≈ 1 ms, p99.9 ≈ 16 ms, max ≈ 123 ms;
//   - premium: p50 ≈ 25 ms, p99 ≈ 5× local p99, p99.9 ≈ 226 ms,
//     outliers to ~500 ms;
//   - standard: p50 ≈ 45 ms with a wider body and outliers past 750 ms
//     (Fig. 3 shows terrain downloads breaching the 100 ms FPS threshold
//     routinely on Standard).
func ModelFor(tier Tier) Model {
	switch tier {
	case TierLocal:
		return Model{
			Read: sim.Mixture{
				Body: sim.LogNormal{Scale: time.Millisecond, Mu: 0.0, Sigma: 0.5},
				Tail: sim.Uniform{Low: 10 * time.Millisecond, High: 123 * time.Millisecond},
				P:    0.0008,
			},
			Write:       sim.LogNormal{Scale: time.Millisecond, Mu: 0.5, Sigma: 0.5},
			BytesPerSec: 400e6, // NVMe-class local disk
		}
	case TierPremium:
		return Model{
			Read: sim.Mixture{
				Body: sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 2.6, Sigma: 0.55}, Offset: 8 * time.Millisecond},
				Tail: sim.Uniform{Low: 150 * time.Millisecond, High: 520 * time.Millisecond},
				P:    0.002,
			},
			Write:       sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 3.0, Sigma: 0.5}, Offset: 10 * time.Millisecond},
			BytesPerSec: 80e6, // premium-tier throughput
		}
	default: // TierStandard
		return Model{
			Read: sim.Mixture{
				Body: sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 3.3, Sigma: 0.7}, Offset: 10 * time.Millisecond},
				Tail: sim.Uniform{Low: 250 * time.Millisecond, High: 1000 * time.Millisecond},
				P:    0.004,
			},
			Write:       sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 3.6, Sigma: 0.6}, Offset: 12 * time.Millisecond},
			BytesPerSec: 25e6, // standard-tier throughput
		}
	}
}

// Billing rates approximating Azure Blob hot-tier pricing: per 10k
// operations and per GB transferred.
const (
	dollarsPerReadOp    = 0.004 / 10000
	dollarsPerWriteOp   = 0.05 / 10000
	dollarsPerGBEgress  = 0.087
	dollarsPerGBStorage = 0.0184 // per month; charged on peak usage
)

// ErrNotFound is returned for reads of missing keys.
var ErrNotFound = errors.New("blob: object not found")

// Store is a simulated object store bound to a clock.
type Store struct {
	clock   sim.Clock
	model   Model
	tier    Tier
	objects map[string][]byte

	// Metrics observable by experiments.
	ReadLatency  metrics.Sample
	WriteLatency metrics.Sample
	Reads        metrics.Counter
	Writes       metrics.Counter
	bytesOut     int64
	peakBytes    int64
	curBytes     int64
}

// NewStore returns an empty store of the given tier.
func NewStore(clock sim.Clock, tier Tier) *Store {
	return &Store{
		clock:   clock,
		model:   ModelFor(tier),
		tier:    tier,
		objects: make(map[string][]byte),
	}
}

// Tier returns the store's service tier.
func (s *Store) Tier() Tier { return s.tier }

// Get fetches the object at key asynchronously; cb runs on the clock after
// the modelled read latency with a copy of the data, or ErrNotFound.
func (s *Store) Get(key string, cb func(data []byte, err error)) {
	data, ok := s.objects[key]
	lat := s.model.Read.Sample(s.clock.RNG()) + s.model.transferTime(len(data))
	s.Reads.Inc()
	s.ReadLatency.Add(lat)
	s.clock.After(lat, func() {
		if !ok {
			cb(nil, fmt.Errorf("%w: %q", ErrNotFound, key))
			return
		}
		out := make([]byte, len(data))
		copy(out, data)
		s.bytesOut += int64(len(data))
		cb(out, nil)
	})
}

// Put stores a copy of data under key asynchronously; cb (which may be nil)
// runs after the modelled write latency.
func (s *Store) Put(key string, data []byte, cb func(err error)) {
	lat := s.model.Write.Sample(s.clock.RNG()) + s.model.transferTime(len(data))
	s.Writes.Inc()
	s.WriteLatency.Add(lat)
	cp := make([]byte, len(data))
	copy(cp, data)
	s.clock.After(lat, func() {
		if old, ok := s.objects[key]; ok {
			s.curBytes -= int64(len(old))
		}
		s.objects[key] = cp
		s.curBytes += int64(len(cp))
		if s.curBytes > s.peakBytes {
			s.peakBytes = s.curBytes
		}
		if cb != nil {
			cb(nil)
		}
	})
}

// Delete removes the object at key asynchronously.
func (s *Store) Delete(key string, cb func(err error)) {
	lat := s.model.Write.Sample(s.clock.RNG())
	s.clock.After(lat, func() {
		if old, ok := s.objects[key]; ok {
			s.curBytes -= int64(len(old))
			delete(s.objects, key)
		}
		if cb != nil {
			cb(nil)
		}
	})
}

// Exists reports whether key currently holds an object (no latency: used by
// tests and warm-up code, not by the game path).
func (s *Store) Exists(key string) bool {
	_, ok := s.objects[key]
	return ok
}

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.objects) }

// CopyFrom clones every object of src into s instantly, without latency or
// billing. It is a harness utility for handing one experiment phase's data
// to a fresh storage stack (and for test fixtures); the game path never
// uses it.
func (s *Store) CopyFrom(src *Store) {
	for k, v := range src.objects {
		cp := make([]byte, len(v))
		copy(cp, v)
		s.objects[k] = cp
		s.curBytes += int64(len(cp))
	}
	if s.curBytes > s.peakBytes {
		s.peakBytes = s.curBytes
	}
}

// BilledDollars returns the accumulated cost: operations, egress, and one
// month of peak storage.
func (s *Store) BilledDollars() float64 {
	return float64(s.Reads.Value())*dollarsPerReadOp +
		float64(s.Writes.Value())*dollarsPerWriteOp +
		float64(s.bytesOut)/1e9*dollarsPerGBEgress +
		float64(s.peakBytes)/1e9*dollarsPerGBStorage
}
