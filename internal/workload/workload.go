// Package workload implements the player-behavior generators of the
// paper's experiment matrix (Table I) and the random-behavior action mix
// (Table II):
//
//   - A: players take only move actions within a bounded area (used for
//     the simulated-construct experiments, so terrain work is minimal);
//   - S(x): players move away from spawn in a straight line at x blocks
//     per second, each in a different direction (star pattern), stressing
//     terrain generation;
//   - Sinc: the star pattern with speed increasing by one block/s every
//     200 seconds (Fig. 10's workload);
//   - R: the randomized behavior of Table II (40% move, 30% block op,
//     20% stand still, 5% chat, 5% inventory).
//
// Behaviors are deterministic given the server's seeded random source.
package workload

import (
	"math"
	"math/rand"
	"time"

	"servo/internal/mve"
	"servo/internal/world"
)

// decisionPeriod is how many ticks a random-behavior decision lasts
// before the player rolls a new action (1 s at 20 Hz).
const decisionPeriod = 20

// BoundedMove is behavior A: move to random destinations within Radius
// blocks of the player's home — its position when the behavior first
// ticks, i.e. its spawn point. Players placed at world spawn behave
// exactly as before; shard-aware placement keeps each player bounded
// inside its own shard's band instead of converging on the origin.
type BoundedMove struct {
	Radius int
	ticks  int

	homeSet      bool
	homeX, homeZ float64
}

var _ mve.Behavior = (*BoundedMove)(nil)

// Actions implements mve.Behavior.
func (b *BoundedMove) Actions(r *rand.Rand, p *mve.Player, _ *mve.Server) []mve.Action {
	if !b.homeSet {
		b.homeSet = true
		b.homeX, b.homeZ = p.X, p.Z
	}
	b.ticks++
	if b.ticks%decisionPeriod != 1 {
		return nil
	}
	radius := float64(b.Radius)
	if radius <= 0 {
		radius = 40
	}
	x := b.homeX + (r.Float64()*2-1)*radius
	z := b.homeZ + (r.Float64()*2-1)*radius
	speed := 1 + r.Float64()*7
	return []mve.Action{mve.MoveTo(x, z, speed)}
}

// Star is behavior S(x): walk away from spawn at Speed blocks/s along a
// fixed direction. Direction is assigned per player (by player id) so a
// group of players fans out in a star shape.
type Star struct {
	Speed float64
	// RampEvery, if positive, increases speed by 1 block/s each period
	// (behavior Sinc; the paper uses 200 s).
	RampEvery time.Duration

	initialized bool
	dirX, dirZ  float64
	curSpeed    float64
	start       time.Duration
	ticks       int
}

var _ mve.Behavior = (*Star)(nil)

// Actions implements mve.Behavior.
func (b *Star) Actions(_ *rand.Rand, p *mve.Player, s *mve.Server) []mve.Action {
	if !b.initialized {
		b.initialized = true
		angle := 2 * math.Pi * float64(int(p.ID)%16) / 16
		b.dirX, b.dirZ = math.Cos(angle), math.Sin(angle)
		b.curSpeed = b.Speed
		b.start = s.Clock().Now()
	}
	if b.RampEvery > 0 {
		elapsed := s.Clock().Now() - b.start
		b.curSpeed = b.Speed + float64(elapsed/b.RampEvery)
	}
	b.ticks++
	if b.ticks%decisionPeriod != 1 {
		return nil
	}
	// Aim far ahead along the ray; re-issued every decision period so a
	// ramping speed takes effect.
	const horizon = 1e7
	return []mve.Action{mve.MoveTo(p.X+b.dirX*horizon, p.Z+b.dirZ*horizon, b.curSpeed)}
}

// Random is behavior R (Table II). Every decision period the player draws
// one action from the paper's distribution.
type Random struct {
	ticks int
}

var _ mve.Behavior = (*Random)(nil)

// Table II probabilities.
const (
	pMove  = 0.40
	pBlock = 0.30 // break or place a nearby block
	pStand = 0.20
	pChat  = 0.05
	// Remaining 5%: set inventory to a random item.
)

// Actions implements mve.Behavior.
func (b *Random) Actions(r *rand.Rand, p *mve.Player, s *mve.Server) []mve.Action {
	b.ticks++
	if b.ticks%decisionPeriod != 1 {
		return nil
	}
	roll := r.Float64()
	switch {
	case roll < pMove:
		// Move to a random destination at 1 to 8 blocks per second.
		dist := 8 + r.Float64()*56
		angle := r.Float64() * 2 * math.Pi
		speed := 1 + r.Float64()*7
		return []mve.Action{mve.MoveTo(p.X+math.Cos(angle)*dist, p.Z+math.Sin(angle)*dist, speed)}
	case roll < pMove+pBlock:
		// Break or place a nearby block.
		pos := world.BlockPos{
			X: int(p.X) + r.Intn(9) - 4,
			Z: int(p.Z) + r.Intn(9) - 4,
		}
		pos.Y = s.World().SurfaceY(pos.X, pos.Z)
		if pos.Y < 0 {
			pos.Y = 0
		}
		if r.Intn(2) == 0 {
			return []mve.Action{{Kind: mve.ActionBreakBlock, Pos: pos}}
		}
		pos.Y++
		return []mve.Action{{
			Kind:  mve.ActionPlaceBlock,
			Pos:   pos,
			Block: world.Block{ID: world.Stone},
		}}
	case roll < pMove+pBlock+pStand:
		return []mve.Action{{Kind: mve.ActionIdle}}
	case roll < pMove+pBlock+pStand+pChat:
		return []mve.Action{{Kind: mve.ActionChat}}
	default:
		return []mve.Action{{Kind: mve.ActionSetInventory, Item: uint8(r.Intn(36))}}
	}
}

// Idle is an explicit do-nothing behavior ("idle"): the player connects
// and lurks, consuming per-player server work but issuing no actions.
// Scenario fleets use it to model spectators.
type Idle struct{}

var _ mve.Behavior = Idle{}

// Actions implements mve.Behavior.
func (Idle) Actions(_ *rand.Rand, _ *mve.Player, _ *mve.Server) []mve.Action { return nil }

// lookup is the single behavior-name grammar: Table I names "A", "R",
// "Sinc", "S<digits>" (positive speed), plus "idle". Both Known and
// ForName derive from it, so the accepted and constructible name sets
// cannot drift apart.
func lookup(name string) (mve.Behavior, bool) {
	switch name {
	case "A":
		return &BoundedMove{}, true
	case "R":
		return &Random{}, true
	case "Sinc":
		return &Star{Speed: 1, RampEvery: 200 * time.Second}, true
	case "idle":
		return Idle{}, true
	}
	if len(name) > 1 && name[0] == 'S' {
		speed := 0.0
		for _, ch := range name[1:] {
			if ch < '0' || ch > '9' {
				speed = 0
				break
			}
			speed = speed*10 + float64(ch-'0')
		}
		if speed > 0 {
			return &Star{Speed: speed}, true
		}
	}
	return nil, false
}

// Known reports whether name is a valid behavior name for ForName. Unlike
// ForName (which falls back to behavior A), Known is strict, so scenario
// validation can reject typos.
func Known(name string) bool {
	_, ok := lookup(name)
	return ok
}

// ForName returns a fresh behavior by its Table I name: "A", "R", "Sinc",
// "idle", or "S<digits>" (e.g. "S3", "S8"). Unknown names return behavior A.
func ForName(name string) mve.Behavior {
	if b, ok := lookup(name); ok {
		return b
	}
	return &BoundedMove{}
}
