package mve

import (
	"math/rand"
	"testing"
	"time"

	"servo/internal/sc"
	"servo/internal/sim"
	"servo/internal/world"
)

// runFor drives the loop for d of virtual time.
func runFor(loop *sim.Loop, d time.Duration) {
	loop.RunUntil(loop.Now() + d)
}

func newFlatServer(seed int64) (*sim.Loop, *Server) {
	loop := sim.NewLoop(seed)
	s := NewServer(loop, Config{Profile: ProfileOpencraft, WorldType: "flat", Seed: seed})
	return loop, s
}

func TestServerTicksAtFixedRate(t *testing.T) {
	loop, s := newFlatServer(1)
	s.Start()
	runFor(loop, 10*time.Second)
	// 20 Hz for 10 s ≈ 200 ticks (the server is unloaded, so no overruns).
	n := s.TickDurations.Len()
	if n < 195 || n > 201 {
		t.Fatalf("ticks in 10s = %d, want ≈ 200", n)
	}
	if s.Tick() != uint64(n) {
		t.Fatalf("tick counter %d != samples %d", s.Tick(), n)
	}
}

func TestServerStop(t *testing.T) {
	loop, s := newFlatServer(1)
	s.Start()
	runFor(loop, time.Second)
	s.Stop()
	runFor(loop, time.Second)
	n := s.TickDurations.Len()
	runFor(loop, 5*time.Second)
	if s.TickDurations.Len() != n {
		t.Fatal("server kept ticking after Stop")
	}
}

func TestConnectDisconnect(t *testing.T) {
	loop, s := newFlatServer(1)
	p1 := s.Connect("alice", nil)
	p2 := s.Connect("bob", nil)
	if s.PlayerCount() != 2 {
		t.Fatalf("players = %d, want 2", s.PlayerCount())
	}
	if got := s.Players(); got[0].ID != p1.ID || got[1].ID != p2.ID {
		t.Fatal("player order must follow join order")
	}
	s.Disconnect(p1.ID)
	if s.PlayerCount() != 1 || s.Players()[0].ID != p2.ID {
		t.Fatal("disconnect removed the wrong player")
	}
	s.Disconnect(p1.ID) // double disconnect must be safe
	_ = loop
}

func TestMovementIntegration(t *testing.T) {
	loop, s := newFlatServer(1)
	start := false
	moved := false
	p := s.Connect("walker", BehaviorFunc(func(r *rand.Rand, p *Player, s *Server) []Action {
		if !start || moved {
			return nil
		}
		moved = true
		return []Action{MoveTo(10, 0, 2)} // 10 blocks at 2 blocks/s = 5 s
	}))
	s.Start()
	// Let the join-time terrain burst settle so ticks run at 20 Hz (an
	// overloaded server legitimately moves avatars slower per second,
	// since movement integrates per tick).
	runFor(loop, 30*time.Second)
	start = true
	runFor(loop, 2*time.Second)
	if p.X < 3 || p.X > 5 {
		t.Fatalf("after 2s at 2 b/s, X = %v, want ≈ 4", p.X)
	}
	runFor(loop, 5*time.Second)
	if p.X < 9.99 || p.X > 10.01 || p.Z != 0 {
		t.Fatalf("avatar did not settle at destination: (%v, %v)", p.X, p.Z)
	}
	if p.Moving() {
		t.Fatal("avatar still moving at destination")
	}
}

func TestPlaceAndBreakBlocks(t *testing.T) {
	loop, s := newFlatServer(1)
	step := 0
	target := world.BlockPos{X: 2, Y: 10, Z: 2}
	s.Connect("builder", BehaviorFunc(func(r *rand.Rand, p *Player, s *Server) []Action {
		step++
		switch step {
		case 1:
			return []Action{{Kind: ActionPlaceBlock, Pos: target, Block: world.Block{ID: world.Stone}}}
		case 2:
			return []Action{{Kind: ActionBreakBlock, Pos: target}}
		}
		return nil
	}))
	s.Start()
	runFor(loop, 60*time.Millisecond)
	if got := s.World().BlockAt(target); got.ID != world.Stone {
		t.Fatalf("after place, block = %v", got)
	}
	runFor(loop, 60*time.Millisecond)
	if got := s.World().BlockAt(target); !got.IsAir() {
		t.Fatalf("after break, block = %v", got)
	}
	if s.ActionCount.Value() != 2 {
		t.Fatalf("actions = %d, want 2", s.ActionCount.Value())
	}
}

func TestSpawnConstructWritesFootprint(t *testing.T) {
	_, s := newFlatServer(1)
	c := sc.NewClock(3, 1)
	anchor := world.BlockPos{X: 4, Y: 5, Z: 4}
	id := s.SpawnConstruct(c, anchor)
	if id == 0 {
		t.Fatal("SpawnConstruct returned zero id")
	}
	if s.SCs().Count() != 1 {
		t.Fatal("construct not registered with the backend")
	}
	// The anchor cell (an inverter) must be mirrored into the world.
	if got := s.World().BlockAt(anchor); got.ID != world.Inverter {
		t.Fatalf("anchor block = %v, want inverter", got)
	}
}

func TestBreakingConstructBlockInvalidates(t *testing.T) {
	loop, s := newFlatServer(1)
	c := sc.NewClock(3, 1)
	anchor := world.BlockPos{X: 4, Y: 5, Z: 4}
	id := s.SpawnConstruct(c, anchor)
	before := s.SCs().(*LocalSC).Construct(id).BlockCount()

	fired := false
	s.Connect("griefer", BehaviorFunc(func(r *rand.Rand, p *Player, s *Server) []Action {
		if fired {
			return nil
		}
		fired = true
		return []Action{{Kind: ActionBreakBlock, Pos: anchor}}
	}))
	s.Start()
	runFor(loop, 100*time.Millisecond)
	after := s.SCs().(*LocalSC).Construct(id).BlockCount()
	if after != before-1 {
		t.Fatalf("construct block count %d → %d, want a cell removed", before, after)
	}
	if got := s.World().BlockAt(anchor); !got.IsAir() {
		t.Fatal("world block not removed")
	}
}

func TestTerrainGeneratesAroundMovingPlayer(t *testing.T) {
	loop, s := newFlatServer(2)
	s.Connect("explorer", BehaviorFunc(func(r *rand.Rand, p *Player, s *Server) []Action {
		return []Action{MoveTo(p.X+1000, 0, 8)}
	}))
	s.Start()
	runFor(loop, 60*time.Second) // 480 blocks of travel past the preload
	if s.ChunksApplied.Value() == 0 {
		t.Fatal("no chunks were applied on the loop")
	}
	if s.ChunksSent.Value() == 0 {
		t.Fatal("no chunks were sent to the client")
	}
}

func TestChunkSendThrottle(t *testing.T) {
	loop, s := newFlatServer(3)
	p := s.Connect("static", nil)
	s.Start()
	// The spawn area is preloaded; the initial view must stream to the
	// client at most MaxChunkSendsPerTick per tick.
	runFor(loop, 300*time.Millisecond)
	maxPerTick := s.Config().MaxChunkSendsPerTick
	if p.ChunksReceived > (6+1)*maxPerTick {
		t.Fatalf("client received %d chunks in 6 ticks, throttle is %d/tick", p.ChunksReceived, maxPerTick)
	}
	runFor(loop, time.Minute)
	// Eventually the whole preloaded view area must arrive.
	if p.ChunksReceived < 200 {
		t.Fatalf("client received only %d chunks of the spawn view", p.ChunksReceived)
	}
}

func TestUnloadFarChunksHaltsAndResumesConstructs(t *testing.T) {
	loop, s := newFlatServer(4)
	// A construct near spawn.
	id := s.SpawnConstruct(sc.NewClock(3, 1), world.BlockPos{X: 2, Y: 5, Z: 2})
	_ = id
	// A player who teleports far away (move at high speed) and back.
	phase := 0
	s.Connect("traveler", BehaviorFunc(func(r *rand.Rand, p *Player, s *Server) []Action {
		if phase == 0 {
			phase = 1
			return []Action{MoveTo(4000, 0, 100)} // sprint far away
		}
		return nil
	}))
	s.Start()
	runFor(loop, 60*time.Second)
	if s.SCs().Count() != 0 {
		t.Fatalf("construct not halted after its terrain unloaded (count=%d)", s.SCs().Count())
	}
	if s.World().Loaded(world.ChunkPos{X: 0, Z: 0}) {
		t.Fatal("spawn chunk still loaded with the player 4000 blocks away")
	}
	// Come back (and stop moving): the construct must resume.
	home := s.Players()[0]
	home.X, home.Z = 0, 0
	home.destX, home.destZ, home.speed = 0, 0, 0
	runFor(loop, 30*time.Second)
	if s.SCs().Count() != 1 {
		t.Fatalf("construct did not resume on reload (count=%d)", s.SCs().Count())
	}
}

func TestTickDurationGrowsWithPlayers(t *testing.T) {
	meanTick := func(players int) time.Duration {
		loop, s := newFlatServer(5)
		for i := 0; i < players; i++ {
			s.Connect("p", nil)
		}
		s.Start()
		runFor(loop, 30*time.Second)
		return s.TickDurations.Mean()
	}
	if m10, m150 := meanTick(10), meanTick(150); m150 <= m10 {
		t.Fatalf("tick mean must grow with players: 10→%v 150→%v", m10, m150)
	}
}

func TestBaselineBimodalWithConstructs(t *testing.T) {
	// Fig. 7b: with SCs simulated every other tick, the tick distribution
	// is bimodal — p75 far above p25.
	loop, s := newFlatServer(6)
	for i := 0; i < 50; i++ {
		s.SpawnConstruct(sc.BuildSized(250), world.BlockPos{X: i * 40, Y: 5, Z: 10})
	}
	s.Start()
	runFor(loop, 30*time.Second)
	b := s.TickDurations.Box()
	if float64(b.P75) < 2*float64(b.P25) {
		t.Fatalf("expected bimodal ticks (every-other-tick SCs): %+v", b)
	}
}

func TestServoProfileUnimodalWithLocalBackend(t *testing.T) {
	// Sanity check of the profile flag: with SCEveryOtherTick=false the
	// distribution collapses to one mode even with the local backend.
	loop := sim.NewLoop(6)
	cost := Params(ProfileServo)
	s := NewServer(loop, Config{Profile: ProfileServo, WorldType: "flat", Cost: &cost})
	for i := 0; i < 50; i++ {
		s.SpawnConstruct(sc.BuildSized(250), world.BlockPos{X: i * 40, Y: 5, Z: 10})
	}
	s.Start()
	runFor(loop, 30*time.Second)
	b := s.TickDurations.Box()
	if float64(b.P75) > 1.5*float64(b.P25) {
		t.Fatalf("expected unimodal ticks: %+v", b)
	}
}

func TestMinViewMarginFullWhenLoaded(t *testing.T) {
	loop, s := newFlatServer(7)
	s.Connect("p", nil)
	s.Start()
	runFor(loop, 30*time.Second) // give generation time to fill the view
	if got := s.MinViewMargin(); got != s.Config().ViewDistance {
		t.Fatalf("MinViewMargin = %d, want full view distance %d", got, s.Config().ViewDistance)
	}
}

func TestDeterministicTickTrace(t *testing.T) {
	trace := func() []time.Duration {
		loop, s := newFlatServer(42)
		for i := 0; i < 20; i++ {
			s.SpawnConstruct(sc.NewClock(3, 1), world.BlockPos{X: i * 20, Y: 5, Z: 0})
		}
		for i := 0; i < 5; i++ {
			s.Connect("p", &trivialMover{})
		}
		s.Start()
		runFor(loop, 10*time.Second)
		return s.TickDurations.Values()
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d duration differs: %v vs %v", i, a[i], b[i])
		}
	}
}

type trivialMover struct{ n int }

func (m *trivialMover) Actions(r *rand.Rand, p *Player, s *Server) []Action {
	m.n++
	if m.n%20 != 1 {
		return nil
	}
	return []Action{MoveTo(float64(r.Intn(40)), float64(r.Intn(40)), 2)}
}

func TestProfileString(t *testing.T) {
	if ProfileOpencraft.String() != "Opencraft" || ProfileMinecraft.String() != "Minecraft" ||
		ProfileServo.String() != "Servo" || Profile(0).String() != "unknown" {
		t.Fatal("profile names wrong")
	}
	if ActionMove.String() != "move" || ActionKind(99).String() == "" {
		t.Fatal("action names wrong")
	}
}

func TestChatFansOut(t *testing.T) {
	loop, s := newFlatServer(8)
	sent := false
	s.Connect("chatter", BehaviorFunc(func(r *rand.Rand, p *Player, s *Server) []Action {
		if sent {
			return nil
		}
		sent = true
		return []Action{{Kind: ActionChat}}
	}))
	for i := 0; i < 9; i++ {
		s.Connect("listener", nil)
	}
	s.Start()
	runFor(loop, 100*time.Millisecond)
	if got := s.ChatsDelivered.Value(); got != 10 {
		t.Fatalf("chat deliveries = %d, want 10 (all players)", got)
	}
}
