package experiment

import (
	"strings"
	"testing"
	"time"
)

// tinyOpt returns the smallest useful experiment scale for shape tests.
func tinyOpt() Options { return Options{Seed: 42, Scale: 0.02} }

func TestSupportedPlayersCriterion(t *testing.T) {
	// Spot-check the paper's key Fig. 7a cells without running the full
	// search: Servo must hold 120 players at 200 SCs where the baselines
	// hold none (main finding MF1).
	opt := tinyOpt()
	if !playersSupported(scRunTicks(Servo, 200, 120, opt)) {
		t.Error("Servo must support 120 players at 200 SCs")
	}
	if playersSupported(scRunTicks(Opencraft, 200, 10, opt)) {
		t.Error("Opencraft must not support 10 players at 200 SCs")
	}
	if playersSupported(scRunTicks(Minecraft, 200, 10, opt)) {
		t.Error("Minecraft must not support 10 players at 200 SCs")
	}
	// Baseline ordering at 0 SCs: Opencraft 200 ≥ Servo 190 > Minecraft.
	if !playersSupported(scRunTicks(Opencraft, 0, 200, opt)) {
		t.Error("Opencraft must support 200 players at 0 SCs")
	}
	if !playersSupported(scRunTicks(Minecraft, 0, 110, opt)) {
		t.Error("Minecraft must support 110 players at 0 SCs")
	}
	if playersSupported(scRunTicks(Minecraft, 0, 150, opt)) {
		t.Error("Minecraft must not support 150 players at 0 SCs")
	}
}

func TestBaselineBimodalServoNot(t *testing.T) {
	// Fig. 7b: baselines simulate SCs every other tick → bimodal; Servo
	// applies speculative state every tick → narrow distribution.
	opt := tinyOpt()
	oc := scRunTicks(Opencraft, 100, 5, opt).Box()
	sv := scRunTicks(Servo, 100, 5, opt).Box()
	if float64(oc.P75) < 2*float64(oc.P25) {
		t.Errorf("Opencraft distribution not bimodal: %+v", oc)
	}
	if float64(sv.P75) > 1.6*float64(sv.P25) {
		t.Errorf("Servo distribution should be unimodal: %+v", sv)
	}
	if sv.P50 >= oc.P75 {
		t.Errorf("Servo median (%v) must sit below Opencraft's SC-tick mode (%v)", sv.P50, oc.P75)
	}
}

func TestFig8LeadHidesLatency(t *testing.T) {
	opt := tinyOpt()
	mgr0, _, _ := specRun(0, 100, opt)
	mgr20, _, _ := specRun(20, 100, opt)
	e0, e20 := summarizeEff(mgr0.Efficiency), summarizeEff(mgr20.Efficiency)
	if e0.Median >= 0.99 {
		t.Errorf("lead 0 median efficiency = %v, expected < 1 (local fallback)", e0.Median)
	}
	if e20.Median < 0.999 {
		t.Errorf("lead 20 median efficiency = %v, want 1.0", e20.Median)
	}
	if e20.FracPerfect < 0.9 {
		t.Errorf("lead 20 frac@1.0 = %v, want ≥ 0.9 (paper: ≥ 99.1%%)", e20.FracPerfect)
	}
}

func TestFig9LatencyScalesWithSteps(t *testing.T) {
	r := Fig9(tinyOpt())
	if !(r.Latency[50].Mean < r.Latency[100].Mean && r.Latency[100].Mean < r.Latency[200].Mean) {
		t.Errorf("latency must grow with steps: %v / %v / %v",
			r.Latency[50].Mean, r.Latency[100].Mean, r.Latency[200].Mean)
	}
	// The 200-step invocation must exceed the 20-tick lead (1000 ms),
	// the cause of Fig. 8's efficiency drop.
	if r.Latency[200].Mean < time.Second {
		t.Errorf("200-step mean latency = %v, want > 1s", r.Latency[200].Mean)
	}
	if !(r.PerMinute[50] > r.PerMinute[100] && r.PerMinute[100] > r.PerMinute[200]) {
		t.Error("invocation rate must fall with steps")
	}
	// §IV-C cost anchor: $0.216–$0.244/hour band (±30% tolerance).
	for _, steps := range SimLengths {
		if c := r.DollarsHour[steps]; c < 0.15 || c > 0.32 {
			t.Errorf("steps=%d cost $%.3f/h outside the paper's band", steps, c)
		}
	}
}

func TestFig11MemoryScaling(t *testing.T) {
	r := Fig11(tinyOpt())
	// Latency falls monotonically with memory (Fig. 11a).
	prev := time.Duration(1 << 62)
	for _, mem := range MemoryConfigs {
		if got := r.Latency[mem].Mean; got >= prev {
			t.Errorf("mean latency not decreasing at %d MB: %v ≥ %v", mem, got, prev)
		} else {
			prev = got
		}
	}
	// 10240 MB generates a chunk in under a second; 320 MB takes > 3 s.
	if r.Latency[10240].Mean > time.Second {
		t.Errorf("10240 MB mean = %v, want < 1s", r.Latency[10240].Mean)
	}
	if r.Latency[320].Mean < 3*time.Second {
		t.Errorf("320 MB mean = %v, want > 3s", r.Latency[320].Mean)
	}
	// Cost-efficiency (Fig. 11b): the top configuration is never the most
	// cost-efficient, and 320 MB is worse than 512 MB (the paper's
	// exception).
	if r.CostRatio[10240] >= 1.0 {
		t.Error("10240 MB must not be the most cost-efficient configuration")
	}
	if r.CostRatio[320] >= r.CostRatio[512] {
		t.Errorf("320 MB (%v) must be less cost-efficient than 512 MB (%v)",
			r.CostRatio[320], r.CostRatio[512])
	}
}

func TestFig13CacheCutsTail(t *testing.T) {
	// At small scales the extreme-tail percentiles are seed luck (the
	// paper itself observes cached boot outliers exceeding the uncached
	// maximum), so assert the robust properties of the three curves.
	// Bench scale (not tiny) gives the steady-state reads enough weight
	// against the fixed boot-read population.
	r := Fig13(DefaultOptions())
	local := r.Latency[StorageLocal]
	raw := r.Latency[StorageServerless]
	cached := r.Latency[StorageServerlessCache]
	for _, cfg := range StorageConfigs {
		if r.Latency[cfg].Len() == 0 {
			t.Fatalf("%v produced no retrievals", cfg)
		}
	}
	// Raw serverless reads sit in the tens of milliseconds.
	if raw.Percentile(50) < 10*time.Millisecond {
		t.Errorf("serverless median = %v, want ≥ 10ms", raw.Percentile(50))
	}
	// The cache makes the median local-class: far below raw serverless.
	if cached.Percentile(50) >= raw.Percentile(50)/3 {
		t.Errorf("cached median %v not ≪ serverless median %v",
			cached.Percentile(50), raw.Percentile(50))
	}
	// Local storage is strictly the fastest body.
	if local.Percentile(90) >= raw.Percentile(50) {
		t.Errorf("local p90 (%v) must be below serverless median (%v)",
			local.Percentile(90), raw.Percentile(50))
	}
	// Most cached reads hit locally: the p50..p75 body stays local-class.
	if cached.Percentile(75) > 40*time.Millisecond {
		t.Errorf("cached p75 = %v, want local-class body", cached.Percentile(75))
	}
}

func TestFig3TierOrdering(t *testing.T) {
	r := Fig3(tinyOpt())
	for _, data := range []string{"Player", "Terrain"} {
		prem := r.Latency[data][2] // blob.TierPremium
		std := r.Latency[data][3]  // blob.TierStandard
		if prem.P50 >= std.P50 {
			t.Errorf("%s: premium median (%v) must beat standard (%v)", data, prem.P50, std.P50)
		}
	}
	// Terrain objects are larger, hence slower than player data.
	if r.Latency["Terrain"][3].P50 <= r.Latency["Player"][3].P50 {
		t.Error("terrain downloads must be slower than player data on the same tier")
	}
}

func TestSec4GAnchors(t *testing.T) {
	r := Sec4G(tinyOpt())
	// §IV-G: the 252-block construct simulates at several hundred steps/s
	// (paper anchor 488/s at p5) and far above the 20 Hz tick rate.
	if p5 := r.P5Rate[252]; p5 < 300 || p5 > 800 {
		t.Errorf("252-block p5 rate = %v/s, want ≈ 488/s band", p5)
	}
	if r.SpeedupVsTickRate[252] < 10 {
		t.Errorf("252-block speedup = %vx, want ≫ 1x", r.SpeedupVsTickRate[252])
	}
	if r.P5Rate[484] >= r.P5Rate[252] {
		t.Error("the larger construct must simulate slower")
	}
	if r.SpeedupVsTickRate[484] < 2 {
		t.Errorf("484-block speedup = %vx, must still beat the tick rate", r.SpeedupVsTickRate[484])
	}
}

func TestRunByNameRegistry(t *testing.T) {
	var sb strings.Builder
	if err := RunByName("tab1,tab2", tinyOpt(), &sb); err != nil {
		t.Fatalf("RunByName: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Table II") {
		t.Fatalf("missing tables in output:\n%s", out)
	}
	if err := RunByName("nonsense", tinyOpt(), &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Runners()) < 14 {
		t.Fatalf("registry has %d experiments, want ≥ 14 (every table and figure)", len(Runners()))
	}
}

func TestMaxPlayersRefinesBelowTen(t *testing.T) {
	// At 200 SCs the baselines support zero players; the refinement loop
	// below 10 players must terminate and return 0.
	opt := tinyOpt()
	if got := MaxPlayers(Opencraft, 200, opt); got > 5 {
		t.Fatalf("Opencraft at 200 SCs = %d players, want ~0", got)
	}
}

func TestDeterministicExperiments(t *testing.T) {
	opt := tinyOpt()
	a := scRunTicks(Servo, 50, 30, opt)
	b := scRunTicks(Servo, 50, 30, opt)
	if a.Len() != b.Len() || a.Percentile(95) != b.Percentile(95) {
		t.Fatal("same seed produced different experiment results")
	}
	opt2 := opt
	opt2.Seed = 77
	c := scRunTicks(Servo, 50, 30, opt2)
	if a.Len() == c.Len() && a.Percentile(95) == c.Percentile(95) {
		t.Fatal("different seeds produced identical results")
	}
}
