// Package core assembles Servo: it wires the speculative execution unit
// (internal/servo/specexec), serverless terrain generation
// (internal/servo/tgen), and cached remote storage (internal/servo/rstore
// + tcache) into an MVE server (internal/mve) backed by a simulated FaaS
// platform and blob store.
//
// Each serverless component can be toggled independently, matching the
// L / S / L+S component matrix of the paper's Table I, so the same
// constructor builds every configuration the experiments compare.
package core

import (
	"time"

	"servo/internal/blob"
	"servo/internal/cluster"
	"servo/internal/faas"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/servo/rstore"
	"servo/internal/servo/specexec"
	"servo/internal/servo/tcache"
	"servo/internal/servo/tgen"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/world"
)

// SCFunctionName is the deployment name of the construct simulation
// function.
const SCFunctionName = "simulate-construct"

// Config selects which Servo components are serverless and their tuning.
type Config struct {
	// Seed drives terrain generation and, through the clock, everything
	// else.
	Seed int64
	// WorldType is "flat" or "default" (Table I).
	WorldType string
	// ViewDistance in blocks (0 → the 128-block default).
	ViewDistance int
	// TickInterval (0 → 50 ms).
	TickInterval time.Duration

	// Profile sets the cost profile; 0 → mve.ProfileServo.
	Profile mve.Profile
	// Cost optionally overrides the profile cost table.
	Cost *mve.CostParams

	// ServerlessSC offloads simulated constructs (paper §III-C).
	ServerlessSC bool
	// ServerlessTG offloads terrain generation (paper §III-D).
	ServerlessTG bool
	// ServerlessRS stores chunks in managed storage behind the
	// pre-fetching cache (paper §III-E). When false and LocalStore is
	// true, chunks persist to a local-disk-class store instead.
	ServerlessRS bool
	// LocalStore persists chunks locally when ServerlessRS is false
	// (the baselines' behaviour in the storage experiments).
	LocalStore bool

	// SpecExec tunes the speculative execution unit.
	SpecExec specexec.Config
	// SCFn and TGFn tune the two functions; zero values take calibrated
	// defaults.
	SCFn faas.Config
	TGFn faas.Config
	// TGMaxInflight bounds each shard's concurrent terrain invocations;
	// queued requests dispatch nearest-player-first as the window refills
	// (0 → tgen.DefaultMaxInflight).
	TGMaxInflight int
	// DisableGenDedup turns off the cross-shard generation dedup cache
	// (on by default for sharded serverless terrain: bordering shards
	// adopt seam chunks a neighbour just generated instead of re-invoking
	// FaaS).
	DisableGenDedup bool
	// GenDedupSize bounds the dedup cache in encoded chunks
	// (0 → tgen.DefaultGenCacheSize).
	GenDedupSize int
	// ChunkPoolSize bounds each shard's chunk freelist
	// (0 → world.DefaultChunkPoolCap).
	ChunkPoolSize int
	// StorageTier for remote storage (0 → Premium).
	StorageTier blob.Tier
	// Remote, if non-nil, is used as the backing object store instead of
	// creating a fresh one — e.g. to restart a server over an existing
	// world (the Fig. 13 read phase).
	Remote *blob.Store
	// CacheConfig tunes the terrain cache.
	CacheConfig *tcache.Config
	// DisableCache bypasses the terrain cache for ServerlessRS (the
	// "Serverless" curve of Fig. 13).
	DisableCache bool
	// WrapStore, if non-nil, wraps the assembled chunk store before the
	// server boots (e.g. with a latency-measurement probe), so that even
	// boot-time world loading is observed. With shards it wraps every
	// shard's store.
	WrapStore func(mve.ChunkStore) mve.ChunkStore

	// Shards > 1 assembles a region-sharded cluster: one mve.Server per
	// shard over a single shared substrate (one FaaS platform with shared
	// warm pools, one blob store), with cross-shard player handoff
	// (internal/cluster). 0 or 1 builds the classic single server.
	Shards int
	// Topology is the region tiling the cluster splits over its shards:
	// nil → 1-D X bands of BandChunks columns (the compatibility
	// default); a world.GridTopology cuts chunk space along both axes.
	// Only meaningful with Shards > 1.
	Topology world.Topology
	// BandChunks is the band width in chunk columns for the default band
	// topology (0 → world.DefaultBandChunks). Ignored when Topology is
	// set. Only meaningful with Shards > 1.
	BandChunks int
	// Rebalance enables the cluster controller's live tile rebalancing:
	// when per-shard tick load drifts past RebalanceThreshold, tile
	// ownership migrates from the hottest to the coldest shard. Only
	// meaningful with Shards > 1.
	Rebalance bool
	// RebalanceThreshold is the load_imbalance trigger
	// (0 → cluster.DefaultRebalanceThreshold).
	RebalanceThreshold float64
	// RebalanceInterval is the controller check cadence
	// (0 → cluster.DefaultRebalanceInterval).
	RebalanceInterval time.Duration
	// Autoscale configures the cluster's elastic shard-count policy
	// subsystem: utilization-band scale-up/down over the per-tile cost
	// signal with predictive spreading and crash-loop quarantine (zero
	// value: disabled). Only meaningful with Shards > 1.
	Autoscale cluster.AutoscaleConfig
	// Visibility enables the cluster's interest-management layer:
	// avatars within the border margin of a tile boundary replicate to
	// the neighbouring shards as read-only ghost avatars, so players
	// near a seam see one continuous world. Only meaningful with
	// Shards > 1.
	Visibility bool
	// VisibilityMargin is the border margin in blocks
	// (0 → the view distance).
	VisibilityMargin int
	// VisibilityInterval is the replication cadence
	// (0 → cluster.DefaultVisibilityInterval).
	VisibilityInterval time.Duration
	// CheckpointInterval, when positive, periodically persists every
	// session's snapshot through the shared store, so a shard failover
	// restores inventory even for players the handoff path never
	// persisted. Requires a storage backend; only meaningful with
	// Shards > 1.
	CheckpointInterval time.Duration
	// LogRetention caps the cluster's replay logs (handoffs, migrations,
	// ghost events) at the most recent N records
	// (0 → cluster.DefaultLogRetention, < 0 → unbounded).
	LogRetention int

	// Workers > 0 runs shard game loops on the virtual clock's
	// lane-batched scheduler: same-timestamp ticks of distinct shards
	// execute concurrently on a pool of Workers goroutines, with shared-
	// substrate side effects deferred to the deterministic post-wave
	// commit drain. Every pool size produces identical runs; 0 (the
	// default) keeps the classic serial loop. Requires a *sim.Loop clock
	// (ignored under the real-time clock).
	Workers int

	// PhaseLock re-aligns each shard's tick schedule to the global
	// TickInterval grid after an overlong tick, instead of letting the
	// shard drift off-phase forever. Saturated clusters then keep
	// forming same-timestamp waves, so the lane scheduler's parallelism
	// survives overload. Deterministic at every Workers setting.
	PhaseLock bool
}

// ShardComponents holds the per-shard component instances riding on the
// system-wide substrate: every shard has its own game loop, speculative
// execution unit, terrain backend, and pre-fetching cache, while the FaaS
// platform (and its warm pools) and the blob store are shared.
type ShardComponents struct {
	Server *mve.Server
	// SpecExec is this shard's speculative execution unit (nil unless
	// ServerlessSC).
	SpecExec *specexec.Manager
	// TGBackend is this shard's serverless terrain backend (nil unless
	// ServerlessTG).
	TGBackend *tgen.Backend
	// Cache and RStore are this shard's cached view of the shared remote
	// store (nil unless ServerlessRS with the cache enabled).
	Cache  *tcache.Cache
	RStore *rstore.Store
	// Pool is this shard's chunk freelist, shared by the game loop, the
	// store decode path, and the terrain backend.
	Pool *world.ChunkPool
}

// System is an assembled Servo (or baseline) instance: one shard by
// default, N region shards behind a Cluster when Config.Shards > 1.
type System struct {
	// Server is shard 0's game loop — the only one in the unsharded
	// case, which keeps every single-server caller working unchanged.
	Server   *mve.Server
	Platform *faas.Platform

	// Cluster routes players across shards (nil unless Shards > 1).
	Cluster *cluster.Cluster
	// Shards lists every shard's components in shard order (always at
	// least one entry; entry 0 mirrors the legacy top-level fields).
	Shards []*ShardComponents

	// SpecExec is shard 0's speculative execution unit (nil unless
	// ServerlessSC).
	SpecExec *specexec.Manager
	// SCFn and TGFn are the deployed functions (nil if unused), shared by
	// every shard.
	SCFn *faas.Function
	TGFn *faas.Function
	// TGHandlerStats counts terrain-handler anomalies (malformed
	// generation requests) across the shared deployment (nil unless
	// ServerlessTG).
	TGHandlerStats *tgen.HandlerStats
	// GenCache is the shared cross-shard generation dedup cache (nil
	// unless sharded serverless terrain with dedup enabled).
	GenCache *tgen.GenCache
	// TGBackend is shard 0's serverless terrain backend (nil unless
	// ServerlessTG).
	TGBackend *tgen.Backend

	// Remote is the shared object store; Cache and RStore are shard 0's
	// storage stack (nil unless a store is configured).
	Remote *blob.Store
	Cache  *tcache.Cache
	RStore *rstore.Store
}

// DefaultSCFnConfig returns the construct-simulation function
// configuration, calibrated so that one simulation step of the paper's
// 252-block construct costs ≈2.0 ms of single-vCPU time: §IV-G's anchor of
// ~488 steps/s for 252-block constructs.
func DefaultSCFnConfig() faas.Config {
	cfg := faas.DefaultConfig()
	probe := sc.BuildSized(252).Clone()
	units := probe.Step()
	if units <= 0 {
		units = 1
	}
	cfg.NsPerWorkUnit = time.Duration(2.0 * float64(time.Millisecond) / float64(units))
	return cfg
}

// DefaultTGFnConfig returns the terrain-generation function configuration:
// ~600 ms of single-vCPU time per default-world chunk (Fig. 11's anchor:
// sub-second generation at 10240 MB, >3 s at 320 MB).
func DefaultTGFnConfig() faas.Config {
	cfg := faas.DefaultConfig()
	units := (terrain.Default{}).WorkUnits()
	cfg.NsPerWorkUnit = time.Duration(600 * float64(time.Millisecond) / float64(units))
	cfg.ExecNoiseSigma = 0.18 // Fig. 11: wide boxes even at high memory
	// Terrain generation parallelises worse than the circuit simulator,
	// so memory configurations above ~2 vCPUs see diminishing returns
	// (Fig. 11b: cost-efficiency favors the small configurations).
	cfg.ParallelFrac = 0.7
	return cfg
}

// New assembles a system on the clock. With all serverless toggles off it
// builds a pure baseline server (profile-dependent), which is how the
// experiment harness constructs Opencraft and Minecraft. With Shards > 1
// it builds one server per region shard over a single shared substrate:
// functions (and their warm pools) are registered once on one platform,
// every shard's cache flushes into the same blob store, and a Cluster
// routes players between shards.
func New(clock sim.Clock, cfg Config) *System {
	sys := &System{}
	profile := cfg.Profile
	if profile == 0 {
		profile = mve.ProfileServo
	}
	shardCount := cfg.Shards
	if shardCount < 1 {
		shardCount = 1
	}
	if cfg.ServerlessSC || cfg.ServerlessTG {
		sys.Platform = faas.NewPlatform(clock)
	}

	// Shared substrate: deployed functions and the object store exist
	// once, regardless of the shard count.
	spec := cfg.SpecExec
	if cfg.ServerlessSC {
		fnCfg := cfg.SCFn
		if fnCfg.NsPerWorkUnit == 0 {
			fnCfg = DefaultSCFnConfig()
		}
		sys.SCFn = sys.Platform.Register(SCFunctionName, fnCfg, specexec.Handler)
		if spec.StepsPerInvocation == 0 {
			spec = specexec.DefaultConfig()
		}
	}
	if cfg.ServerlessTG {
		fnCfg := cfg.TGFn
		if fnCfg.NsPerWorkUnit == 0 {
			fnCfg = DefaultTGFnConfig()
		}
		gen := terrain.ForWorldType(cfg.WorldType, cfg.Seed)
		sys.TGHandlerStats = &tgen.HandlerStats{}
		sys.TGFn = tgen.RegisterWithStats(sys.Platform, gen, fnCfg, sys.TGHandlerStats)
		if shardCount > 1 && !cfg.DisableGenDedup {
			sys.GenCache = tgen.NewGenCache(cfg.GenDedupSize)
		}
	}
	if cfg.ServerlessRS || cfg.LocalStore {
		sys.Remote = cfg.Remote
		if sys.Remote == nil {
			tier := blob.TierLocal
			if cfg.ServerlessRS {
				tier = cfg.StorageTier
				if tier == 0 {
					tier = blob.TierPremium
				}
			}
			sys.Remote = blob.NewStore(clock, tier)
		}
	}

	topo := cfg.Topology
	if topo == nil {
		topo = world.BandTopology{BandChunks: cfg.BandChunks}
	}
	// Lane-parallel execution: each shard's game loop runs on its own
	// lane of the virtual clock, so same-timestamp ticks of distinct
	// shards execute concurrently while scans, the controller, and all
	// substrate completions stay on the serial lane. Lane ids are
	// 1-based (lane 0 is the serial lane); a recovered shard re-acquires
	// its lane and continues the same RNG stream.
	var laneLoop *sim.Loop
	if cfg.Workers > 0 {
		if lp, ok := clock.(*sim.Loop); ok {
			lp.SetWorkers(cfg.Workers)
			laneLoop = lp
		}
	}
	// buildShard assembles shard i's components. Called once per shard at
	// boot, and again by cluster.RecoverShard to build the replacement
	// process after a shard failure — then the fresh components replace
	// the crashed shard's entry in sys.Shards.
	buildShard := func(i int, region world.Region) *mve.Server {
		shard := &ShardComponents{}
		shardClock := clock
		if laneLoop != nil {
			shardClock = laneLoop.Lane(i + 1)
		}
		srvCfg := mve.Config{
			Profile:      profile,
			WorldType:    cfg.WorldType,
			Seed:         cfg.Seed,
			ViewDistance: cfg.ViewDistance,
			TickInterval: cfg.TickInterval,
			Cost:         cfg.Cost,
			Region:       region,
			PhaseLock:    cfg.PhaseLock,
		}
		if shardCount > 1 {
			// Boot both spawn and the center of the shard's own home tile
			// (the middle of its space-filling run on finite topologies),
			// so shard-aware fleet placement does not open with a
			// generation storm.
			home := topo.Center(world.HomeTile(topo, shardCount, i))
			srvCfg.BootCenters = []world.BlockPos{{}, home}
		}
		// FaaS submissions from a shard lane go through the commit
		// buffer: the shared platform (warm pools, RNG-drawn latencies)
		// must see invocations in deterministic lane order, not wave
		// completion order. On the serial path the wrapper is a direct
		// call.
		var invoke laneInvoker = sys.Platform
		if laneLoop != nil && sys.Platform != nil {
			invoke = &commitInvoker{clock: shardClock, platform: sys.Platform}
		}
		// One chunk freelist per shard, shared by the game loop (unload
		// and superseded-apply recycling), the store decode path, and the
		// terrain backend, so recycled chunks feed every decode.
		shard.Pool = world.NewChunkPool(cfg.ChunkPoolSize)
		srvCfg.ChunkPool = shard.Pool
		if cfg.ServerlessSC {
			shard.SpecExec = specexec.NewManager(invoke, SCFunctionName, spec)
			srvCfg.SC = &scAdapter{mgr: shard.SpecExec}
		}
		if cfg.ServerlessTG {
			shard.TGBackend = tgen.NewBackend(invoke, tgen.FunctionName)
			shard.TGBackend.SetMaxInflight(cfg.TGMaxInflight)
			shard.TGBackend.UseChunkPool(shard.Pool)
			if sys.GenCache != nil {
				shard.TGBackend.UseDedup(shardClock, sys.GenCache)
			}
			srvCfg.Terrain = shard.TGBackend
		}
		switch {
		case cfg.ServerlessRS:
			if cfg.DisableCache {
				srvCfg.Store = &uncachedStore{remote: sys.Remote, pool: shard.Pool}
			} else {
				cacheCfg := tcache.DefaultConfig()
				if cfg.CacheConfig != nil {
					cacheCfg = *cfg.CacheConfig
				}
				shard.Cache = tcache.New(clock, sys.Remote, cacheCfg)
				shard.Cache.StartFlusher()
				shard.RStore = rstore.New(shard.Cache)
				shard.RStore.UseChunkPool(shard.Pool)
				srvCfg.Store = shard.RStore
			}
		case cfg.LocalStore:
			srvCfg.Store = &uncachedStore{remote: sys.Remote, pool: shard.Pool}
		}
		if cfg.WrapStore != nil && srvCfg.Store != nil {
			srvCfg.Store = cfg.WrapStore(srvCfg.Store)
		}
		shard.Server = mve.NewServer(shardClock, srvCfg)
		if i < len(sys.Shards) {
			sys.Shards[i] = shard // failover rebuild replaces in place
		} else {
			sys.Shards = append(sys.Shards, shard)
		}
		return shard.Server
	}

	if shardCount == 1 {
		buildShard(0, world.Region{})
	} else {
		clCfg := cluster.Config{
			Shards:   shardCount,
			Topology: topo,
			Rebalance: cluster.RebalanceConfig{
				Enabled:   cfg.Rebalance,
				Threshold: cfg.RebalanceThreshold,
				Interval:  cfg.RebalanceInterval,
			},
			Visibility: cluster.VisibilityConfig{
				Enabled:  cfg.Visibility,
				Margin:   cfg.VisibilityMargin,
				Interval: cfg.VisibilityInterval,
			},
			Autoscale:    cfg.Autoscale,
			LogRetention: cfg.LogRetention,
			// A retired shard's flusher stops like a failed shard's: the
			// drain already flushed everything it owned.
			OnRetire: func(i int) {
				if i < len(sys.Shards) {
					if ca := sys.Shards[i].Cache; ca != nil {
						ca.StopFlusher()
					}
				}
			},
		}
		if sys.Remote != nil {
			clCfg.Transfer = &blobTransfer{remote: sys.Remote}
			clCfg.TableStore = &blobTableStore{remote: sys.Remote}
			clCfg.Checkpoint = cfg.CheckpointInterval
		}
		sys.Cluster = cluster.New(clock, clCfg, buildShard)
	}
	s0 := sys.Shards[0]
	sys.Server = s0.Server
	sys.SpecExec = s0.SpecExec
	sys.TGBackend = s0.TGBackend
	sys.Cache = s0.Cache
	sys.RStore = s0.RStore
	return sys
}

// laneInvoker is the FaaS submission surface shard components are built
// against: *faas.Platform directly on the serial path, or commitInvoker
// under lane-parallel execution. It satisfies both specexec.TickSource
// and tgen.Invoker.
type laneInvoker interface {
	Invoke(name string, payload []byte, cb func(faas.Invocation))
}

// commitInvoker defers submissions to the lane's commit drain, so the
// shared platform processes them on the loop thread in ascending lane
// order regardless of wave scheduling. Invocation callbacks then fire
// from platform events in serial context.
type commitInvoker struct {
	clock    sim.Clock
	platform *faas.Platform
}

func (ci *commitInvoker) Invoke(name string, payload []byte, cb func(faas.Invocation)) {
	sim.Commit(ci.clock, func() { ci.platform.Invoke(name, payload, cb) })
}

// blobTransfer persists handoff snapshots under the player's storage key
// on the shared remote store: the handoff save doubles as the player's
// persisted record (the snapshot encoding is a superset of the player
// record), and retrying writes make brownouts delay-only.
type blobTransfer struct {
	remote *blob.Store
}

var _ cluster.Transfer = (*blobTransfer)(nil)

func (t *blobTransfer) Save(name string, data []byte, done func()) {
	t.remote.PutRetryingThen(rstore.PlayerKey(name), data, done)
}

func (t *blobTransfer) Load(name string, cb func(data []byte, ok bool)) {
	t.remote.GetRetrying(rstore.PlayerKey(name), func(data []byte, err error) {
		cb(data, err == nil)
	})
}

// OwnershipKey is the blob-store key of the persisted ownership table.
const OwnershipKey = "cluster/ownership"

// blobTableStore persists the cluster's ownership table on the shared
// remote store: every epoch change is written through with retries, so a
// brownout delays but never loses an ownership decision, and a cluster
// restarting over the same world resumes its ownership history.
type blobTableStore struct {
	remote *blob.Store
}

var _ cluster.TableStore = (*blobTableStore)(nil)

func (t *blobTableStore) SaveTable(data []byte) {
	t.remote.PutRetrying(OwnershipKey, data)
}

func (t *blobTableStore) LoadTable(cb func(data []byte, ok bool)) {
	t.remote.GetRetrying(OwnershipKey, func(data []byte, err error) {
		cb(data, err == nil)
	})
}

// FailShard kills shard i: its cache flusher stops (a crashed process
// flushes nothing — unflushed dirty chunks are the failure's data loss,
// bounded by the flush interval), and the cluster crashes the loop,
// reroutes the shard's tiles, and re-admits its players from their last
// snapshots. Reports whether the failover ran (refused on the last alive
// shard or an unsharded system).
func (sys *System) FailShard(i int) bool {
	if sys.Cluster == nil || i < 0 || i >= len(sys.Shards) || !sys.Cluster.Alive(i) {
		return false
	}
	if sys.Cluster.Table().AliveCount() <= 1 {
		return false
	}
	if c := sys.Shards[i].Cache; c != nil {
		c.StopFlusher()
	}
	return sys.Cluster.FailShard(i)
}

// RecoverShard rebuilds a failed shard over the persisted world: the
// cluster's ShardBuilder (buildShard above) constructs fresh components,
// replacing the crashed entry in sys.Shards, and the shard's tiles revert
// once the survivors' flushes land.
func (sys *System) RecoverShard(i int) bool {
	if sys.Cluster == nil {
		return false
	}
	return sys.Cluster.RecoverShard(i)
}

// scAdapter adapts the speculative execution unit to mve.SCBackend.
type scAdapter struct {
	mgr *specexec.Manager
}

var _ mve.SCBackend = (*scAdapter)(nil)

func (a *scAdapter) Add(c *sc.Construct) uint64 { return a.mgr.Add(c) }
func (a *scAdapter) Remove(id uint64)           { a.mgr.Remove(id) }
func (a *scAdapter) Modify(id uint64, mutate func(*sc.Construct)) bool {
	return a.mgr.Modify(id, mutate)
}
func (a *scAdapter) Count() int { return a.mgr.Len() }

func (a *scAdapter) Tick(tick uint64) mve.SCTickWork {
	w := a.mgr.Tick()
	return mve.SCTickWork{
		WorkUnits:    w.WorkUnits,
		LocalSteps:   w.LocalSteps,
		AppliedSteps: w.AppliedSteps + w.ReplaySteps,
		Simulated:    a.mgr.Len() > 0,
	}
}

// NewBlobChunkStore returns an uncached chunk-and-player store backed
// directly by remote, the same store the baselines use for local
// persistence. The scenario harness uses it as the "local" side of
// runtime storage-backend flips.
func NewBlobChunkStore(remote *blob.Store) mve.ChunkStore {
	return &uncachedStore{remote: remote}
}

// uncachedStore is a direct blob-backed chunk store with no cache: the
// baselines' local persistence (TierLocal) and Fig. 13's uncached
// serverless configuration.
type uncachedStore struct {
	remote *blob.Store
	// pool recycles decoded chunks; nil falls back to plain allocation.
	pool *world.ChunkPool
	// scratch is the reused encode buffer; the blob store retains the
	// bytes it is handed, so writes copy it into one exact-size slice.
	scratch []byte
}

var _ mve.ChunkStore = (*uncachedStore)(nil)
var _ mve.BatchingChunkStore = (*uncachedStore)(nil)

func (u *uncachedStore) Load(pos world.ChunkPos, cb func(*world.Chunk, bool)) {
	// GetRetrying: a false not-found would make the server regenerate and
	// overwrite the persisted chunk.
	u.remote.GetRetrying(tcache.Key(pos), func(data []byte, err error) {
		if err != nil {
			cb(nil, false)
			return
		}
		c := u.pool.Get(pos)
		if derr := world.DecodeChunkInto(c, data); derr != nil {
			u.pool.Put(c)
			cb(nil, false)
			return
		}
		cb(c, true)
	})
}

// LoadMany implements mve.BatchingChunkStore: each position takes the
// same retrying read path as Load, in the order given.
func (u *uncachedStore) LoadMany(pos []world.ChunkPos, cb func(pos world.ChunkPos, c *world.Chunk, ok bool)) {
	for _, cp := range pos {
		cp := cp
		u.Load(cp, func(c *world.Chunk, ok bool) { cb(cp, c, ok) })
	}
}

func (u *uncachedStore) encode(c *world.Chunk) []byte {
	u.scratch = c.EncodeAppend(u.scratch[:0])
	out := make([]byte, len(u.scratch))
	copy(out, u.scratch)
	return out
}

func (u *uncachedStore) Store(c *world.Chunk) {
	u.remote.PutRetrying(tcache.Key(c.Pos), u.encode(c))
}

// StoreThen implements mve.SyncingChunkStore: done runs once data for
// the chunk is durably stored — even if a concurrent unload-path write
// superseded this one (ownership migrations gate the tile flip on it).
func (u *uncachedStore) StoreThen(c *world.Chunk, done func()) {
	u.remote.PutDurablyThen(tcache.Key(c.Pos), u.encode(c), done)
}

// SavePlayer implements mve.PlayerStore.
func (u *uncachedStore) SavePlayer(name string, data []byte) {
	u.remote.PutRetrying(rstore.PlayerKey(name), data)
}

// LoadPlayer implements mve.PlayerStore. GetRetrying: a false "new
// player" would reset the player's persisted progress.
func (u *uncachedStore) LoadPlayer(name string, cb func([]byte, bool)) {
	u.remote.GetRetrying(rstore.PlayerKey(name), func(data []byte, err error) {
		cb(data, err == nil)
	})
}
