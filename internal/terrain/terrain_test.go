package terrain

import (
	"testing"
	"testing/quick"

	"servo/internal/world"
)

func TestFlatChunkShape(t *testing.T) {
	c := Flat{}.Generate(world.ChunkPos{X: 3, Z: -7})
	if c.Pos != (world.ChunkPos{X: 3, Z: -7}) {
		t.Fatalf("chunk pos = %v", c.Pos)
	}
	for x := 0; x < world.ChunkSizeX; x++ {
		for z := 0; z < world.ChunkSizeZ; z++ {
			if c.At(x, 0, z).ID != world.Bedrock {
				t.Fatalf("(%d,0,%d) = %v, want bedrock", x, z, c.At(x, 0, z))
			}
			if c.At(x, FlatSurfaceY, z).ID != world.Grass {
				t.Fatalf("surface at (%d,%d) = %v, want grass", x, z, c.At(x, FlatSurfaceY, z))
			}
			if got := c.SurfaceY(x, z); got != FlatSurfaceY {
				t.Fatalf("SurfaceY(%d,%d) = %d, want %d", x, z, got, FlatSurfaceY)
			}
			if !c.At(x, FlatSurfaceY+1, z).IsAir() {
				t.Fatal("block above surface must be air")
			}
		}
	}
}

func TestDefaultDeterministic(t *testing.T) {
	g1 := Default{Seed: 42}
	g2 := Default{Seed: 42}
	for _, pos := range []world.ChunkPos{{X: 0, Z: 0}, {X: -5, Z: 9}, {X: 100, Z: -100}} {
		a, b := g1.Generate(pos), g2.Generate(pos)
		if !a.Equal(b) {
			t.Fatalf("same seed produced different chunks at %v", pos)
		}
	}
}

func TestDefaultSeedSensitivity(t *testing.T) {
	a := Default{Seed: 1}.Generate(world.ChunkPos{})
	b := Default{Seed: 2}.Generate(world.ChunkPos{})
	if a.Equal(b) {
		t.Fatal("different seeds produced identical chunks")
	}
}

func TestDefaultChunkWellFormed(t *testing.T) {
	c := Default{Seed: 7}.Generate(world.ChunkPos{X: 2, Z: 2})
	for x := 0; x < world.ChunkSizeX; x++ {
		for z := 0; z < world.ChunkSizeZ; z++ {
			if c.At(x, 0, z).ID != world.Bedrock {
				t.Fatal("bottom layer must be bedrock")
			}
			h := -1
			for y := world.ChunkSizeY - 1; y >= 0; y-- {
				if c.At(x, y, z).ID.Solid() {
					h = y
					break
				}
			}
			if h < 1 || h >= world.ChunkSizeY-1 {
				t.Fatalf("column (%d,%d) surface %d out of range", x, z, h)
			}
			// No floating air pockets below the surface except water columns.
			for y := 1; y < h; y++ {
				if c.At(x, y, z).IsAir() {
					t.Fatalf("air pocket below surface at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestDefaultHeightContinuityAcrossChunkBorder(t *testing.T) {
	// Height fields must be continuous across chunk boundaries: adjacent
	// columns generated in different chunks differ by a bounded step.
	g := Default{Seed: 99}
	a := g.Generate(world.ChunkPos{X: 0, Z: 0})
	b := g.Generate(world.ChunkPos{X: 1, Z: 0})
	for z := 0; z < world.ChunkSizeZ; z++ {
		ha := a.SurfaceY(world.ChunkSizeX-1, z)
		hb := b.SurfaceY(0, z)
		diff := ha - hb
		if diff < 0 {
			diff = -diff
		}
		if diff > 8 {
			t.Fatalf("height discontinuity %d at border z=%d (%d vs %d)", diff, z, ha, hb)
		}
	}
}

func TestDefaultHasWaterAndVariedSurface(t *testing.T) {
	g := Default{Seed: 3}
	water, surfaces := 0, map[world.BlockID]int{}
	for cx := -6; cx < 6; cx++ {
		for cz := -6; cz < 6; cz++ {
			c := g.Generate(world.ChunkPos{X: cx, Z: cz})
			for x := 0; x < world.ChunkSizeX; x += 4 {
				for z := 0; z < world.ChunkSizeZ; z += 4 {
					if c.At(x, seaLevel, z).ID == world.Water {
						water++
					}
					if h := c.SurfaceY(x, z); h > 0 {
						surfaces[c.At(x, h, z).ID]++
					}
				}
			}
		}
	}
	if water == 0 {
		t.Error("default terrain generated no water anywhere in 144 chunks")
	}
	if len(surfaces) < 2 {
		t.Errorf("default terrain has uniform surface %v, want varied biomes", surfaces)
	}
}

func TestNoiseBounded(t *testing.T) {
	g := Default{Seed: 5}
	f := func(x, z int16, oct uint8) bool {
		v := g.noise(float64(x)/7.3, float64(z)/11.9, int64(oct))
		return v >= -1.001 && v <= 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkUnitsOrdering(t *testing.T) {
	if (Flat{}).WorkUnits() >= (Default{}).WorkUnits() {
		t.Fatal("flat world must be cheaper to generate than default")
	}
	if (Flat{}).WorkUnits() <= 0 {
		t.Fatal("work units must be positive")
	}
}

func TestForWorldType(t *testing.T) {
	if g := ForWorldType("flat", 1); g.Name() != "flat" {
		t.Fatalf("ForWorldType(flat) = %s", g.Name())
	}
	if g := ForWorldType("default", 1); g.Name() != "default" {
		t.Fatalf("ForWorldType(default) = %s", g.Name())
	}
	if g := ForWorldType("unknown", 1); g.Name() != "default" {
		t.Fatalf("unknown world type must fall back to default, got %s", g.Name())
	}
}

func TestGeneratedChunkEncodesRoundTrip(t *testing.T) {
	// Generated chunks must survive the persistence encoding: this is the
	// path Servo uses to ship function-generated terrain back to the
	// server.
	for _, g := range []Generator{Flat{}, Default{Seed: 11}} {
		c := g.Generate(world.ChunkPos{X: 1, Z: 1})
		dec, err := world.DecodeChunk(c.Encode())
		if err != nil {
			t.Fatalf("%s: decode: %v", g.Name(), err)
		}
		if !dec.Equal(c) {
			t.Fatalf("%s: encode/decode changed the chunk", g.Name())
		}
	}
}
