// Package sim provides a deterministic discrete-event simulation kernel.
//
// All Servo experiments run on virtual time: a Loop owns a monotonically
// increasing virtual clock and an event queue. Scheduling an event never
// blocks; Run drains events in timestamp order (FIFO among equal
// timestamps), advancing the clock instantaneously between events. Combined
// with a seeded random source, this makes every experiment bit-for-bit
// reproducible and lets a ten-minute (virtual) experiment complete in
// milliseconds of wall time.
//
// The same engine can be driven by the wall clock through RealClock, which
// is what cmd/servo-server uses for interactive play.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, expressed as the duration since the
// simulation epoch (t=0).
type Time = time.Duration

// Clock abstracts the scheduling surface shared by the virtual event loop
// and the real-time adapter. Components written against Clock run
// unmodified in experiments and in the live server.
type Clock interface {
	// Now returns the current (virtual or wall) time since the epoch.
	Now() Time
	// After schedules fn to run d after Now. d < 0 is treated as 0.
	After(d time.Duration, fn func())
	// RNG returns the deterministic random source owned by this clock.
	// It must only be used from event callbacks (single-threaded).
	RNG() *rand.Rand
}

// event is a single scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among events with equal timestamps
	lane int    // execution lane; 0 = serial (see lane.go)
	fn   func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Loop is a virtual-time event loop. By default it is single-threaded
// and drains events one at a time; SetWorkers(n >= 1) switches it to
// lane-batched execution where same-timestamp events on distinct lanes
// run concurrently (see lane.go).
// The zero value is not usable; construct with NewLoop.
type Loop struct {
	now   Time
	seq   uint64
	queue eventQueue
	rng   *rand.Rand
	seed  int64

	// Lane-batched execution state (see lane.go).
	workers int
	lanes   map[int]*laneState
	sem     chan struct{}
	batch   []*event
	groups  []*laneState
	stats   BatchStats

	// free recycles executed events back into push, so a steady-state
	// schedule (e.g. a game loop rescheduling itself every tick) runs
	// without a heap allocation per event.
	free []*event
}

var _ Clock = (*Loop)(nil)

// NewLoop returns a Loop at time 0 whose random source is seeded with seed.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// RNG returns the loop's deterministic random source.
func (l *Loop) RNG() *rand.Rand { return l.rng }

// At schedules fn at absolute virtual time t. Times in the past run at the
// current time (they are clamped to Now).
func (l *Loop) At(t Time, fn func()) { l.push(0, t, fn) }

// push schedules fn at t on the given lane, clamping past times to Now.
func (l *Loop) push(lane int, t Time, fn func()) {
	if t < l.now {
		t = l.now
	}
	l.seq++
	var e *event
	if n := len(l.free); n > 0 {
		e = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
	} else {
		e = new(event)
	}
	*e = event{at: t, seq: l.seq, lane: lane, fn: fn}
	heap.Push(&l.queue, e)
}

// recycle returns an executed event to the freelist, dropping its
// callback reference so the closure can be collected.
func (l *Loop) recycle(e *event) {
	e.fn = nil
	l.free = append(l.free, e)
}

// After schedules fn to run d after the current virtual time.
func (l *Loop) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	l.At(l.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (l *Loop) Step() bool {
	if len(l.queue) == 0 {
		return false
	}
	e := popEvent(&l.queue)
	l.now = e.at
	fn := e.fn
	l.recycle(e)
	fn()
	return true
}

// popEvent pops the earliest (at, seq) event.
func popEvent(q *eventQueue) *event { return heap.Pop(q).(*event) }

// RunUntil executes events until the queue is empty or the next event is
// strictly after deadline. The clock is left at the time of the last
// executed event (or at deadline if it advanced past all events).
func (l *Loop) RunUntil(deadline Time) {
	if l.workers > 0 {
		for len(l.queue) > 0 && l.queue[0].at <= deadline {
			l.StepBatch()
		}
	} else {
		for len(l.queue) > 0 && l.queue[0].at <= deadline {
			l.Step()
		}
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// Run executes events until the queue is empty.
func (l *Loop) Run() {
	if l.workers > 0 {
		for l.StepBatch() {
		}
		return
	}
	for l.Step() {
	}
}

// Pending returns the number of scheduled events not yet executed.
func (l *Loop) Pending() int { return len(l.queue) }
