package bench

import (
	"os"
	"path/filepath"
	"testing"

	"servo/internal/cluster"
)

func baseFile() File {
	f := NewFile(6)
	f.Add("tick_us", "us", Lower, true, 100)
	f.Add("throughput", "bots/s", Higher, true, 5000)
	f.Add("allocs", "allocs/op", Lower, true, 0)
	f.Add("context_only", "ns", Lower, false, 10)
	return f
}

// TestCompareInjectedRegression: the 20% gate must fail a 25% regression
// in either direction, and ignore ungated metrics entirely.
func TestCompareInjectedRegression(t *testing.T) {
	old := baseFile()

	cur := NewFile(6)
	cur.Add("tick_us", "us", Lower, true, 125) // +25%: lower-better regression
	cur.Add("throughput", "bots/s", Higher, true, 3750)
	cur.Add("allocs", "allocs/op", Lower, true, 1) // off the zero baseline
	cur.Add("context_only", "ns", Lower, false, 1e9)
	regs := Compare(old, cur, DefaultTolerance)
	if len(regs) != 3 {
		t.Fatalf("regressions = %v, want tick_us, throughput, and allocs", regs)
	}
	for _, r := range regs {
		if r.Name == "context_only" {
			t.Fatal("ungated metric flagged as a regression")
		}
	}

	// Within tolerance (and improvements) pass.
	ok := NewFile(6)
	ok.Add("tick_us", "us", Lower, true, 115) // +15%: inside the gate
	ok.Add("throughput", "bots/s", Higher, true, 9000)
	ok.Add("allocs", "allocs/op", Lower, true, 0)
	if regs := Compare(old, ok, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}

	// A metric the old artifact never recorded cannot regress.
	grown := ok
	grown.Add("brand_new", "ns", Lower, true, 1e12)
	if regs := Compare(old, grown, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("new metric flagged against an artifact predating it: %v", regs)
	}
}

// TestBestMergesDirectionAware: the diff gate's noise-retry merge keeps
// each metric's better value, so persistent regressions survive and
// one-off machine noise does not.
func TestBestMergesDirectionAware(t *testing.T) {
	a := NewFile(6)
	a.Add("tick_us", "us", Lower, true, 120)
	a.Add("throughput", "bots/s", Higher, true, 4000)
	a.Add("only_a", "ns", Lower, false, 7)
	b := NewFile(6)
	b.Add("tick_us", "us", Lower, true, 100)          // better: kept
	b.Add("throughput", "bots/s", Higher, true, 3000) // worse: dropped
	b.Add("only_b", "ns", Lower, false, 9)
	got := Best(a, b)
	for _, want := range []struct {
		name  string
		value float64
	}{{"tick_us", 100}, {"throughput", 4000}, {"only_a", 7}, {"only_b", 9}} {
		m, ok := got.Metric(want.name)
		if !ok || m.Value != want.value {
			t.Fatalf("Best metric %s = %+v (ok=%v), want value %g", want.name, m, ok, want.value)
		}
	}
	if len(a.Metrics) != 3 {
		t.Fatalf("Best mutated its input: %d metrics", len(a.Metrics))
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := baseFile()
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.PR != 6 || len(got.Metrics) != len(f.Metrics) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := Decode([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestLatestArtifact(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_notanumber.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got := LatestArtifact(dir); got != "BENCH_10.json" {
		t.Fatalf("latest = %q, want BENCH_10.json", got)
	}
	if got := LatestArtifact(t.TempDir()); got != "" {
		t.Fatalf("latest in empty dir = %q, want empty", got)
	}
}

// TestScanClusterModesAgree: the benchmark harness itself must uphold
// the determinism contract it measures — incremental and full-rescan
// clusters over the same layout replicate identically. (Also the race-
// detector surface for the dirty-set bookkeeping under `make
// clusterrace`.)
func TestScanClusterModesAgree(t *testing.T) {
	run := func(full bool) (int, []cluster.GhostRecord) {
		c := NewScanCluster(64, full)
		for i := 0; i < 5; i++ {
			c.VisibilityScanOnce()
		}
		return c.GhostCount(), c.GhostLog.All()
	}
	incCount, incLog := run(false)
	fullCount, fullLog := run(true)
	if incCount == 0 || incCount != fullCount {
		t.Fatalf("ghost counts diverge: inc %d, full %d", incCount, fullCount)
	}
	if len(incLog) != len(fullLog) {
		t.Fatalf("ghost logs diverge: %d vs %d records", len(incLog), len(fullLog))
	}
	for i := range incLog {
		if incLog[i] != fullLog[i] {
			t.Fatalf("ghost log[%d] differs: %+v vs %+v", i, incLog[i], fullLog[i])
		}
	}
}
