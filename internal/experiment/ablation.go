package experiment

import (
	"fmt"

	"io"
	"servo/internal/blob"
	"time"

	"servo/internal/core"
	"servo/internal/faas"
	"servo/internal/metrics"
	"servo/internal/sc"
	"servo/internal/servo/specexec"
	"servo/internal/servo/tcache"
	"servo/internal/sim"
	"servo/internal/world"
)

// Ablations isolate the design choices DESIGN.md calls out: the loop-
// detection cost optimisation (§III-C1), the cache pre-fetcher (§III-E),
// and the cloud-platform latency model (AWS vs Azure, §IV). They are not
// figures from the paper; they quantify how much each mechanism matters.

// AblationLoopReport compares loop detection on/off for periodic
// constructs.
type AblationLoopReport struct {
	// Invocations and cost per configuration over the window.
	Invocations map[bool]int
	Dollars     map[bool]float64
	ServerWork  map[bool]int64 // SC work units executed on the loop
}

// AblationLoop runs 50 clock constructs (all periodic) with and without
// loop detection and compares invocation counts and billed cost: the
// §III-C1 optimisation in numbers.
func AblationLoop(opt Options) *AblationLoopReport {
	r := &AblationLoopReport{
		Invocations: make(map[bool]int),
		Dollars:     make(map[bool]float64),
		ServerWork:  make(map[bool]int64),
	}
	for _, detect := range []bool{true, false} {
		loop := sim.NewLoop(opt.Seed)
		sys := core.New(loop, core.Config{
			WorldType:    "flat",
			Seed:         opt.Seed,
			ServerlessSC: true,
			SpecExec:     specexec.Config{TickLead: 20, StepsPerInvocation: 100, DetectLoops: detect},
		})
		for i := 0; i < 50; i++ {
			sys.Server.SpawnConstruct(sc.NewClock(3, 1+i%3),
				world.BlockPos{X: (i%10)*20 - 100, Y: 5, Z: (i/10)*20 - 100})
		}
		sys.Server.Start()
		loop.RunUntil(opt.window(10 * time.Minute))
		sys.Server.Stop()
		r.Invocations[detect] = sys.SCFn.Invocations.Count()
		r.Dollars[detect] = sys.SCFn.BilledDollars()
		s := sys.SpecExec.Snapshot()
		r.ServerWork[detect] = s.LocalSteps + s.RemoteSteps + s.ReplaySteps
		opt.logf("ablation-loop: detect=%v invocations=%d $%.4f", detect,
			r.Invocations[detect], r.Dollars[detect])
	}
	return r
}

// Print renders the comparison.
func (r *AblationLoopReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation — Loop detection (§III-C1), 50 periodic clock constructs")
	t := metrics.Table{Header: []string{"loop detection", "invocations", "billed $", "construct-steps served"}}
	for _, detect := range []bool{true, false} {
		t.AddRow(fmt.Sprint(detect), fmt.Sprint(r.Invocations[detect]),
			fmt.Sprintf("%.4f", r.Dollars[detect]), fmt.Sprint(r.ServerWork[detect]))
	}
	fmt.Fprint(w, t.String())
	if r.Invocations[false] > 0 {
		fmt.Fprintf(w, "loop detection cuts invocations by %.0f%%\n",
			100*(1-float64(r.Invocations[true])/float64(r.Invocations[false])))
	}
}

// AblationPrefetchReport compares the cached store with and without
// pre-fetching.
type AblationPrefetchReport struct {
	// P99 retrieval latency with prefetch on/off.
	P99  map[bool]time.Duration
	Hits map[bool]int64
	Miss map[bool]int64
}

// AblationPrefetch replays a frontier-read pattern against a warm remote
// store, with the pre-fetcher enabled and disabled.
func AblationPrefetch(opt Options) *AblationPrefetchReport {
	r := &AblationPrefetchReport{
		P99:  make(map[bool]time.Duration),
		Hits: make(map[bool]int64),
		Miss: make(map[bool]int64),
	}
	n := int(2000 * opt.Scale * 10)
	if n < 400 {
		n = 400
	}
	for _, prefetch := range []bool{true, false} {
		loop := sim.NewLoop(opt.Seed)
		remote := blobStoreWithChunks(loop, n)
		cfg := tcache.DefaultConfig()
		cache := tcache.New(loop, remote, cfg)
		for i := 0; i < n; i++ {
			pos := world.ChunkPos{X: i, Z: 0}
			if prefetch && i+12 < n {
				var ahead []world.ChunkPos
				for j := i + 4; j < i+12; j++ {
					ahead = append(ahead, world.ChunkPos{X: j, Z: 0})
				}
				cache.Prefetch(ahead)
			}
			cache.Get(pos, func([]byte, error) {})
			loop.RunUntil(loop.Now() + 500*time.Millisecond)
		}
		loop.Run()
		r.P99[prefetch] = cache.RetrievalLatency.Percentile(99)
		r.Hits[prefetch] = cache.Hits.Value()
		r.Miss[prefetch] = cache.Misses.Value()
		opt.logf("ablation-prefetch: prefetch=%v p99=%v", prefetch, r.P99[prefetch])
	}
	return r
}

// Print renders the comparison.
func (r *AblationPrefetchReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation — Distance pre-fetching (§III-E), frontier read pattern")
	t := metrics.Table{Header: []string{"prefetch", "p99 retrieval", "hits", "misses"}}
	for _, p := range []bool{true, false} {
		t.AddRow(fmt.Sprint(p), fmt.Sprintf("%.1fms", float64(r.P99[p])/1e6),
			fmt.Sprint(r.Hits[p]), fmt.Sprint(r.Miss[p]))
	}
	fmt.Fprint(w, t.String())
}

// AblationPlatformReport compares function latency under the AWS and Azure
// platform presets.
type AblationPlatformReport struct {
	Latency map[string]metrics.Boxplot
	Colds   map[string]int64
}

// AblationPlatform invokes the construct-simulation function under both
// commercial-platform presets (the paper evaluates on AWS and Azure).
func AblationPlatform(opt Options) *AblationPlatformReport {
	r := &AblationPlatformReport{
		Latency: make(map[string]metrics.Boxplot),
		Colds:   make(map[string]int64),
	}
	n := int(500 * opt.Scale * 10)
	if n < 200 {
		n = 200
	}
	construct := sc.BuildSized(252)
	for name, preset := range map[string]faas.Config{
		"AWS":   faas.PresetAWS(),
		"Azure": faas.PresetAzure(),
	} {
		cfg := core.DefaultSCFnConfig()
		cfg.ColdStart = preset.ColdStart
		cfg.NetRTT = preset.NetRTT
		cfg.KeepAlive = preset.KeepAlive
		loop := sim.NewLoop(opt.Seed)
		platform := faas.NewPlatform(loop)
		fn := platform.Register("sim", cfg, specexec.Handler)
		for i := 0; i < n; i++ {
			i := i
			loop.After(time.Duration(i)*4*time.Second, func() {
				req := specexec.Request{Steps: 100, Layout: construct.EncodeLayout()}
				platform.Invoke("sim", specexec.EncodeRequest(req), func(faas.Invocation) {})
			})
		}
		loop.Run()
		r.Latency[name] = fn.Latency.Box()
		r.Colds[name] = fn.ColdStarts.Value()
		opt.logf("ablation-platform: %s p50=%v colds=%d", name, r.Latency[name].P50, r.Colds[name])
	}
	return r
}

// Print renders the comparison.
func (r *AblationPlatformReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation — Cloud platform presets (AWS Lambda vs Azure Functions)")
	t := metrics.Table{Header: []string{"platform", "p50", "p95", "max", "cold starts"}}
	for _, name := range []string{"AWS", "Azure"} {
		b := r.Latency[name]
		t.AddRow(name, msCell(b.P50), msCell(b.P95), msCell(b.Max), fmt.Sprint(r.Colds[name]))
	}
	fmt.Fprint(w, t.String())
}

// blobStoreWithChunks seeds a premium store with n chunk objects in a row
// along +X.
func blobStoreWithChunks(loop *sim.Loop, n int) *blob.Store {
	remote := blob.NewStore(loop, blob.TierPremium)
	for i := 0; i < n; i++ {
		pos := world.ChunkPos{X: i, Z: 0}
		remote.Put(tcache.Key(pos), []byte("chunk-payload"), nil)
	}
	loop.Run()
	return remote
}
