package rstore

import (
	"testing"
	"time"

	"servo/internal/blob"
	"servo/internal/servo/tcache"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/world"
)

func newStore(seed int64) (*sim.Loop, *blob.Store, *Store) {
	loop := sim.NewLoop(seed)
	remote := blob.NewStore(loop, blob.TierPremium)
	cache := tcache.New(loop, remote, tcache.DefaultConfig())
	return loop, remote, New(cache)
}

func TestStoreLoadRoundTrip(t *testing.T) {
	loop, _, s := newStore(1)
	c := (terrain.Default{Seed: 5}).Generate(world.ChunkPos{X: 2, Z: 3})
	s.Store(c)
	var got *world.Chunk
	s.Load(c.Pos, func(lc *world.Chunk, ok bool) {
		if ok {
			got = lc
		}
	})
	loop.Run()
	if got == nil {
		t.Fatal("chunk not found after Store")
	}
	if !got.Equal(c) {
		t.Fatal("round-tripped chunk differs")
	}
	if s.DecodeFailures != 0 {
		t.Fatalf("decode failures = %d", s.DecodeFailures)
	}
}

func TestLoadMissingChunk(t *testing.T) {
	loop, _, s := newStore(2)
	called := false
	s.Load(world.ChunkPos{X: 9, Z: 9}, func(c *world.Chunk, ok bool) {
		called = true
		if ok {
			t.Error("missing chunk reported ok")
		}
	})
	loop.Run()
	if !called {
		t.Fatal("callback not delivered")
	}
	if s.DecodeFailures != 0 {
		t.Fatal("a miss is not a decode failure")
	}
}

func TestLoadCorruptObjectCountsDecodeFailure(t *testing.T) {
	loop, remote, s := newStore(3)
	remote.Put(tcache.Key(world.ChunkPos{X: 1, Z: 1}), []byte("garbage"), nil)
	loop.Run()
	ok := true
	s.Load(world.ChunkPos{X: 1, Z: 1}, func(_ *world.Chunk, o bool) { ok = o })
	loop.Run()
	if ok {
		t.Fatal("corrupt object reported ok")
	}
	if s.DecodeFailures != 1 {
		t.Fatalf("decode failures = %d, want 1", s.DecodeFailures)
	}
}

func TestObserveAvatarsPrefetches(t *testing.T) {
	loop, remote, s := newStore(4)
	// Seed remote storage with chunks around two avatars.
	for cx := -10; cx <= 10; cx++ {
		for cz := -10; cz <= 10; cz++ {
			c := terrain.Flat{}.Generate(world.ChunkPos{X: cx, Z: cz})
			remote.Put(tcache.Key(c.Pos), c.Encode(), nil)
		}
	}
	loop.Run()
	s.ObserveAvatars([]world.BlockPos{{X: 0, Z: 0}, {X: 64, Z: 64}}, 48)
	loop.RunUntil(loop.Now() + 10*time.Second)
	if got := s.Cache().PrefetchIssued.Value(); got == 0 {
		t.Fatal("no prefetches issued")
	}
	// Chunks near an avatar must now be cache-local.
	if !s.Cache().Contains(world.ChunkPos{X: 1, Z: 1}) {
		t.Fatal("nearby chunk not prefetched into the cache")
	}
	// Duplicate positions across the two avatars must not double-fetch:
	// issued prefetches ≤ union of the two neighborhoods.
	union := make(map[world.ChunkPos]bool)
	for _, p := range []world.BlockPos{{X: 0, Z: 0}, {X: 64, Z: 64}} {
		for _, cp := range world.ChunksWithin(p, 48) {
			union[cp] = true
		}
	}
	if got := int(s.Cache().PrefetchIssued.Value()); got > len(union) {
		t.Fatalf("prefetched %d chunks, union is %d", got, len(union))
	}
}

func TestStoreIsWriteBack(t *testing.T) {
	loop, remote, s := newStore(5)
	s.Store(terrain.Flat{}.Generate(world.ChunkPos{X: 7, Z: 7}))
	loop.Run()
	if remote.Writes.Value() != 0 {
		t.Fatal("Store must go through the write-back cache, not straight to remote")
	}
	s.Cache().Flush()
	loop.Run()
	if remote.Writes.Value() != 1 {
		t.Fatalf("remote writes after flush = %d, want 1", remote.Writes.Value())
	}
}
