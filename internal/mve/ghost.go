// The ghost registry: read-only avatars replicated from neighbouring
// shards. A sharded server renders its own residents; without ghosts a
// player standing one block from a tile boundary cannot see an avatar
// two blocks away on the neighbouring shard. The cluster's visibility
// bus (internal/cluster) publishes border avatars here each replication
// tick; the server treats ghosts as display-only state — they take no
// actions, own no sessions, and never persist — but they do feed the
// pre-fetching store (scanTerrainDemand observes their positions), so
// the terrain around an approaching avatar is warm before its handoff
// lands.

package mve

import "servo/internal/world"

// GhostAvatar is a read-only avatar mirrored from another shard.
type GhostAvatar struct {
	// ID is a per-server ghost identity, stable for the ghost's lifetime
	// and distinct from every PlayerID (rtserve reports ghosts under the
	// negated id).
	ID int64
	// Name is the cluster-wide player name the ghost mirrors.
	Name string
	// X, Z is the replicated avatar position.
	X, Z float64
	// Home is the shard hosting the real session (the handoff
	// destination while the session is in flight).
	Home int
	// Pinned marks a ghost that must survive staleness reaping: the
	// demoted double of a session whose handoff is crossing the storage
	// substrate and cannot refresh itself.
	Pinned bool
	// seq is the replication-scan sequence number of the last refresh.
	seq uint64
}

// Pos returns the ghost's position as a block position.
func (g *GhostAvatar) Pos() world.BlockPos {
	return world.BlockPos{X: int(g.X), Z: int(g.Z)}
}

// UpsertGhost installs or refreshes the ghost mirroring name, reporting
// whether it was newly created. seq stamps the refresh for staleness
// reaping (ExpireGhosts).
func (s *Server) UpsertGhost(name string, x, z float64, home int, seq uint64) bool {
	if g, ok := s.ghosts[name]; ok {
		g.X, g.Z, g.Home, g.seq = x, z, home, seq
		return false
	}
	s.nextGhost++
	s.ghosts[name] = &GhostAvatar{ID: s.nextGhost, Name: name, X: x, Z: z, Home: home, seq: seq}
	s.ghostOrder = append(s.ghostOrder, name)
	return true
}

// PinGhost marks or unmarks the named ghost as handoff-pinned; pinned
// ghosts are exempt from ExpireGhosts. A no-op for unknown names.
func (s *Server) PinGhost(name string, pinned bool) {
	if g, ok := s.ghosts[name]; ok {
		g.Pinned = pinned
	}
}

// RemoveGhost drops the named ghost (e.g. because the session it mirrors
// was admitted here — the ghost promotes to a real avatar). It reports
// whether a ghost existed.
func (s *Server) RemoveGhost(name string) bool {
	if _, ok := s.ghosts[name]; !ok {
		return false
	}
	delete(s.ghosts, name)
	for i, n := range s.ghostOrder {
		if n == name {
			s.ghostOrder = append(s.ghostOrder[:i], s.ghostOrder[i+1:]...)
			break
		}
	}
	return true
}

// ExpireGhosts removes every unpinned ghost last refreshed before seq
// and returns their names in registry order (the deterministic expiry
// sequence the cluster logs).
func (s *Server) ExpireGhosts(before uint64) []string {
	var expired []string
	kept := s.ghostOrder[:0]
	for _, name := range s.ghostOrder {
		g := s.ghosts[name]
		if !g.Pinned && g.seq < before {
			delete(s.ghosts, name)
			expired = append(expired, name)
			continue
		}
		kept = append(kept, name)
	}
	s.ghostOrder = kept
	return expired
}

// Ghost returns the ghost mirroring name, or nil.
func (s *Server) Ghost(name string) *GhostAvatar { return s.ghosts[name] }

// Ghosts returns the live ghosts in creation order.
func (s *Server) Ghosts() []*GhostAvatar {
	out := make([]*GhostAvatar, 0, len(s.ghostOrder))
	for _, name := range s.ghostOrder {
		out = append(out, s.ghosts[name])
	}
	return out
}

// EachGhost visits the live ghosts in creation order without allocating
// (the per-tick path: rtserve folds ghosts into every state update).
// fn must not mutate the registry.
func (s *Server) EachGhost(fn func(*GhostAvatar)) {
	for _, name := range s.ghostOrder {
		fn(s.ghosts[name])
	}
}

// GhostCount returns the number of live ghosts.
func (s *Server) GhostCount() int { return len(s.ghosts) }
