// The parallel-execution determinism gate: the lane-batched scheduler's
// contract is that the observable event stream — and therefore every
// rendered report byte — is identical for every worker-pool size >= 1.
// This test is the `make workersgate` CI step: it runs the bundled
// sharded scenarios at Workers 1 and Workers 4 and fails on any report
// byte diff (text and CSV renderings both).

package scenario

import (
	"testing"
)

// workersGateScenarios are the bundled scenarios the gate replays at
// both pool sizes: the sharded workloads, covering cross-shard handoff,
// visibility replication, and the serverless substrate under
// lane-parallel shard ticks, plus the saturated phase-locked cluster —
// overlong ticks re-snapping to the tick grid must reschedule
// identically whether the wave ran on one worker or four, and the
// elastic scenarios — the autoscaler's scale events, drains, and
// quarantine decisions are part of the replay surface too, and the
// generation storm — batched store loads, bounded generation dispatch,
// pooled decode, and cross-shard dedup adoption must commit in the same
// lane order at any pool size.
var workersGateScenarios = []string{
	"border-patrol", "sharded-stress", "saturated-lockstep",
	"daily-cycle", "crash-loop-quarantine", "gen-storm",
}

// renderAtWorkers runs one bundled scenario at the given pool size and
// returns the concatenated text + CSV renderings.
func renderAtWorkers(t *testing.T, name string, workers int) string {
	t.Helper()
	src, err := BundledSource(name)
	if err != nil {
		t.Fatalf("loading bundled scenario %q: %v", name, err)
	}
	spec, err := Parse(src)
	if err != nil {
		t.Fatalf("parsing %q: %v", name, err)
	}
	spec.Workers = workers
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatalf("%s at workers=%d: %v", name, workers, err)
	}
	if !rep.Pass {
		t.Fatalf("%s at workers=%d failed its assertions:\n%s", name, workers, rep.Render())
	}
	return rep.Render() + rep.RenderCSVRows()
}

// TestWorkersByteIdentity is the determinism gate: every report byte
// identical at -workers 1 and -workers 4.
func TestWorkersByteIdentity(t *testing.T) {
	for _, name := range workersGateScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			one := renderAtWorkers(t, name, 1)
			four := renderAtWorkers(t, name, 4)
			if one != four {
				t.Fatalf("%s diverges between workers=1 and workers=4:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", name, one, four)
			}
		})
	}
}
