package world

// World is the in-memory view of the (virtually infinite) game world: the
// set of currently loaded chunks. Loading, generation, and persistence
// policy live above this type (internal/mve and internal/servo); World only
// provides storage and block addressing across chunk boundaries.
type World struct {
	chunks map[ChunkPos]*Chunk
	dirty  map[ChunkPos]uint64 // version at last persistence flush
}

// New returns an empty world.
func New() *World {
	return &World{
		chunks: make(map[ChunkPos]*Chunk),
		dirty:  make(map[ChunkPos]uint64),
	}
}

// Chunk returns the loaded chunk at pos, or nil if not loaded.
func (w *World) Chunk(pos ChunkPos) *Chunk {
	return w.chunks[pos]
}

// AddChunk inserts (or replaces) a chunk. The chunk is considered clean at
// its current version.
func (w *World) AddChunk(c *Chunk) {
	w.chunks[c.Pos] = c
	w.dirty[c.Pos] = c.Version
}

// RemoveChunk unloads the chunk at pos and returns it (nil if not loaded).
func (w *World) RemoveChunk(pos ChunkPos) *Chunk {
	c := w.chunks[pos]
	delete(w.chunks, pos)
	delete(w.dirty, pos)
	return c
}

// Loaded reports whether the chunk at pos is in memory.
func (w *World) Loaded(pos ChunkPos) bool {
	_, ok := w.chunks[pos]
	return ok
}

// LoadedCount returns the number of chunks currently in memory.
func (w *World) LoadedCount() int { return len(w.chunks) }

// LoadedChunks returns the positions of all loaded chunks (unordered).
func (w *World) LoadedChunks() []ChunkPos {
	return w.LoadedChunksAppend(make([]ChunkPos, 0, len(w.chunks)))
}

// LoadedChunksAppend appends the positions of all loaded chunks to dst
// (unordered) and returns it; reusing dst across calls makes the
// enumeration allocation-free.
func (w *World) LoadedChunksAppend(dst []ChunkPos) []ChunkPos {
	for p := range w.chunks {
		dst = append(dst, p)
	}
	return dst
}

// BlockAt returns the block at an absolute position. Unloaded chunks and
// out-of-range Y read as Air.
func (w *World) BlockAt(p BlockPos) Block {
	c := w.chunks[p.Chunk()]
	if c == nil {
		return Block{}
	}
	return c.At(floorMod(p.X, ChunkSizeX), p.Y, floorMod(p.Z, ChunkSizeZ))
}

// SetBlockAt writes the block at an absolute position. It reports whether
// the containing chunk was loaded (and hence whether the write happened).
func (w *World) SetBlockAt(p BlockPos, b Block) bool {
	c := w.chunks[p.Chunk()]
	if c == nil {
		return false
	}
	c.Set(floorMod(p.X, ChunkSizeX), p.Y, floorMod(p.Z, ChunkSizeZ), b)
	return true
}

// SurfaceY returns the height of the terrain surface at (x, z), or -1 if
// the chunk is not loaded or the column is empty.
func (w *World) SurfaceY(x, z int) int {
	p := BlockPos{X: x, Z: z}
	c := w.chunks[p.Chunk()]
	if c == nil {
		return -1
	}
	return c.SurfaceY(floorMod(x, ChunkSizeX), floorMod(z, ChunkSizeZ))
}

// DirtyChunks returns the chunks modified since their last MarkClean, the
// set the persistence layer must flush.
func (w *World) DirtyChunks() []*Chunk {
	var out []*Chunk
	for pos, c := range w.chunks {
		if c.Version != w.dirty[pos] {
			out = append(out, c)
		}
	}
	return out
}

// MarkClean records that the chunk's current version has been persisted.
func (w *World) MarkClean(c *Chunk) {
	if w.chunks[c.Pos] == c {
		w.dirty[c.Pos] = c.Version
	}
}
