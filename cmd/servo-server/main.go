// Command servo-server runs an interactive MVE server in real time on a
// TCP socket, with the Servo serverless backend (simulated in-process) or
// a pure baseline profile.
//
// Usage:
//
//	servo-server -addr :25565 -world default -profile servo
//	servo-server -profile opencraft -serverless=false
//
// Clients speak the internal/netproto protocol; cmd/servo-bot provides a
// workload client.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"

	"servo"
	"servo/internal/rtserve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:25565", "listen address")
	worldType := flag.String("world", "default", "world type: default or flat")
	profile := flag.String("profile", "servo", "cost profile: servo, opencraft, minecraft")
	serverless := flag.Bool("serverless", true, "enable the Servo serverless backend")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()

	cfg := servo.Config{Seed: *seed, WorldType: *worldType, RealTime: true}
	switch *profile {
	case "opencraft":
		cfg.Profile = servo.Opencraft
	case "minecraft":
		cfg.Profile = servo.Minecraft
	default:
		cfg.Profile = servo.ServoProfile
	}
	if *serverless {
		cfg.Servo = servo.AllServerless()
	}

	inst := servo.NewInstance(cfg)
	defer inst.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("servo-server: listen: %v", err)
	}
	defer ln.Close()
	log.Printf("servo-server: %s world %q on %s (serverless=%v)",
		cfg.Profile, *worldType, ln.Addr(), *serverless)

	srv := rtserve.NewServer(inst, rtserve.Config{Logf: log.Printf})
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Printf("servo-server: accept loop ended: %v", err)
		}
	}()
	defer srv.Close()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("servo-server: shutting down; %s", inst.TickStats())
}
