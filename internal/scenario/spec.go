// Package scenario is the declarative simulation harness: it drives the
// real mve.Server / core.System stack (not mocks) from scenario specs —
// fleet definitions, timed chaos events, seeded stress generators, and
// end-of-run assertions — turning the repo from a fixed set of hand-coded
// paper experiments into an open-ended experiment platform.
//
// A scenario is a JSON document (stdlib-parseable; the container ships no
// YAML dependency) with five sections:
//
//   - world/backend: which system to assemble (profile, world type, and
//     the L/S serverless component toggles of the paper's Table I),
//     plus shards/topology for a region-sharded cluster (1-D bands or
//     2-D grid tiles);
//   - fleet: groups of players with Table I behaviors joining and leaving
//     at fixed times;
//   - stress: a seeded random fleet of bot players with weighted behavior
//     mixes, ramped joins, and exponential session churn;
//   - events: timed interventions — player flash crowds, construct storms,
//     FaaS failure/slowdown windows, cold-start storms, storage brownouts,
//     and runtime storage-backend flips;
//   - assertions: end-of-run checks over the collected metrics
//     (tick-duration percentiles, cache hit rates, fault counts, ...).
//
// Everything runs on the deterministic virtual clock, so a scenario is a
// pure function of its spec: running it twice produces byte-identical
// reports (see TestDeterministicReplay).
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"servo/internal/workload"
)

// Span is a duration field in scenario files, written as a Go duration
// string ("250ms", "30s", "2m").
type Span time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (s *Span) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return fmt.Errorf(`durations must be strings like "30s" (got %s)`, string(b))
	}
	d, err := time.ParseDuration(str)
	if err != nil {
		return err
	}
	if d < 0 {
		return fmt.Errorf("duration %q is negative", str)
	}
	*s = Span(d)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (s Span) MarshalJSON() ([]byte, error) { return json.Marshal(s.D().String()) }

// D returns the span as a time.Duration.
func (s Span) D() time.Duration { return time.Duration(s) }

// String implements fmt.Stringer.
func (s Span) String() string { return s.D().String() }

// WorldSpec selects the world and server profile.
type WorldSpec struct {
	// Type is "flat" or "default" (procedural terrain); "" → "flat".
	Type string `json:"type,omitempty"`
	// Profile is "servo", "opencraft", or "minecraft"; "" → "servo".
	Profile string `json:"profile,omitempty"`
	// ViewDistance in blocks; 0 → the 128-block paper default.
	ViewDistance int `json:"view_distance,omitempty"`
}

// SpecExecSpec tunes the speculative execution unit. Unset fields keep the
// calibrated defaults.
type SpecExecSpec struct {
	TickLead    *int  `json:"tick_lead,omitempty"`
	Steps       *int  `json:"steps,omitempty"`
	DetectLoops *bool `json:"detect_loops,omitempty"`
}

// BackendSpec toggles Servo's serverless components (Table I).
type BackendSpec struct {
	// Constructs offloads simulated constructs to FaaS (§III-C).
	Constructs bool `json:"constructs,omitempty"`
	// Terrain offloads terrain generation to FaaS (§III-D).
	Terrain bool `json:"terrain,omitempty"`
	// Storage persists chunks in managed storage behind the pre-fetching
	// cache (§III-E).
	Storage bool `json:"storage,omitempty"`
	// StorageTier is "local", "premium", or "standard"; "" → "premium".
	// Only valid with Storage.
	StorageTier string `json:"storage_tier,omitempty"`
	// LocalStore persists chunks to a local-disk-class store instead
	// (the baselines' behaviour). Mutually exclusive with Storage.
	LocalStore bool `json:"local_store,omitempty"`
	// SpecExec tunes construct offloading. Only valid with Constructs.
	SpecExec *SpecExecSpec `json:"spec_exec,omitempty"`
	// TGMaxInflight caps concurrent terrain-generation invocations per
	// shard (0 → the tgen default). Only valid with Terrain.
	TGMaxInflight int `json:"tg_max_inflight,omitempty"`
	// GenDedup toggles the cross-shard generation dedup cache on sharded
	// terrain backends (unset → enabled). Only valid with Terrain.
	GenDedup *bool `json:"gen_dedup,omitempty"`
}

// ConstructGroup places a grid of simulated constructs at scenario start.
type ConstructGroup struct {
	Count int `json:"count"`
	// Blocks per construct; 0 → 250 (the paper's §IV-B size). Must be
	// ≥ 12 when set.
	Blocks int `json:"blocks,omitempty"`
}

// TopologySpec selects the region tiling of a sharded cluster.
type TopologySpec struct {
	// Kind is "band" (1-D X bands, the compatibility default) or "grid"
	// (TilesX×TilesZ rectangular tiles repeating across the plane).
	Kind string `json:"kind,omitempty"`
	// TilesX and TilesZ are the grid dimensions (grid kind only;
	// required, in [1, 64]).
	TilesX int `json:"tiles_x,omitempty"`
	TilesZ int `json:"tiles_z,omitempty"`
	// TileChunks is the tile side (band width) in chunk columns; 0 → 8.
	TileChunks int `json:"tile_chunks,omitempty"`
}

// Grid reports whether the topology is a 2-D grid.
func (t *TopologySpec) Grid() bool { return t != nil && t.Kind == "grid" }

// VisibilitySpec enables the cluster's interest-management layer: each
// replication tick, every shard publishes its avatars standing within
// the border margin of a region-tile boundary, and the shards owning the
// bordering tiles materialise them as read-only ghost avatars — players
// near a seam see one continuous world, and handoffs promote/demote a
// ghost instead of popping. Its presence in a spec turns the layer on.
type VisibilitySpec struct {
	// Margin is the border margin in blocks; 0 → the view distance.
	Margin int `json:"margin,omitempty"`
	// Interval is the replication cadence; 0 → 50ms (one server tick).
	Interval Span `json:"interval,omitempty"`
}

// FleetGroup is a group of players joining (and optionally leaving) at
// fixed times.
type FleetGroup struct {
	Count int `json:"count"`
	// Behavior is a Table I name ("A", "R", "S3", "S8", "Sinc") or
	// "idle"; "" → "A".
	Behavior string `json:"behavior,omitempty"`
	// JoinAt is when the group connects (default: scenario start).
	JoinAt Span `json:"join_at,omitempty"`
	// LeaveAt, if set, is when the group disconnects; must be after
	// JoinAt. 0 → stay until the end.
	LeaveAt Span `json:"leave_at,omitempty"`
	// Shard, if set, places the group inside that shard's home tile
	// instead of at world spawn (requires a sharded scenario).
	Shard *int `json:"shard,omitempty"`
	// Tile, if set, places the group at that region tile's center —
	// finer-grained than Shard, e.g. to build a hotspot inside one
	// specific tile of a shard's territory (requires a sharded scenario;
	// mutually exclusive with Shard).
	Tile *[2]int `json:"tile,omitempty"`
	// Band is the legacy 1-D spelling of Tile: band b is tile [b, 0]
	// under the band topology (band kind only; mutually exclusive with
	// Shard and Tile).
	Band *int `json:"band,omitempty"`
	// Pos, if set, places the group at that exact block position [x, z]
	// — e.g. directly on a tile seam, where tile centers cannot reach.
	// Mutually exclusive with Shard, Tile, and Band.
	Pos *[2]int `json:"pos,omitempty"`
}

// ChurnSpec adds session churn to a stress fleet: bots play for an
// exponentially distributed session, disconnect, pause, and rejoin under
// the same identity (exercising player-data persistence).
type ChurnSpec struct {
	// MeanSession is the mean session length (required).
	MeanSession Span `json:"mean_session"`
	// MeanPause is the mean pause before rejoining; 0 → 5s.
	MeanPause Span `json:"mean_pause,omitempty"`
}

// StressSpec generates a seeded random fleet of bot players.
type StressSpec struct {
	// Bots is the fleet size (required).
	Bots int `json:"bots"`
	// Ramp spreads the initial joins evenly over this window;
	// 0 → duration/4.
	Ramp Span `json:"ramp,omitempty"`
	// Behaviors maps behavior names to selection weights;
	// empty → {"A": 1}.
	Behaviors map[string]float64 `json:"behaviors,omitempty"`
	// Churn, if set, recycles bot sessions.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Placement is "spawn" (everyone joins at world spawn, the default)
	// or "spread" (bot i joins in shard i mod N's home band, so a
	// sharded cluster starts load-balanced; requires shards > 1).
	Placement string `json:"placement,omitempty"`
}

// RebalanceSpec enables the cluster controller's live tile rebalancing:
// the controller watches per-shard tick load and migrates region-tile
// ownership from the hottest to the coldest shard (flushing the tile's
// chunks through the store first, then bumping the ownership epoch) when
// the imbalance stays over the threshold.
type RebalanceSpec struct {
	// Threshold is the load_imbalance trigger (max/mean of per-shard tick
	// load); 0 → 1.25. Must be >= 1 when set.
	Threshold float64 `json:"threshold,omitempty"`
	// Interval is the controller check cadence; 0 → 2s.
	Interval Span `json:"interval,omitempty"`
}

// AutoscaleSpec enables the cluster's elastic shard autoscaling: a
// policy loop differences per-tile demand into rates, scales the shard
// set up/down on utilization bands with per-direction cooldowns,
// projects rates along their derivative to spread forming hotspots
// proactively, and quarantines crash-looping shards. Its presence in a
// spec turns the subsystem on. Scale-ups spawn fresh shards over the
// persisted world; scale-downs drain every owned tile through the
// durable migration path before retiring, so no player is ever lost.
type AutoscaleSpec struct {
	// MinShards / MaxShards bound the alive shard count (min 0 → the boot
	// shard count; max 0 → twice the boot count). Only shards added at
	// runtime are ever removed, so the effective floor is the boot count.
	MinShards int `json:"min_shards,omitempty"`
	MaxShards int `json:"max_shards,omitempty"`
	// ShardCapacity is one shard's nominal demand capacity in cost units
	// (actions + chunk stores) per second; 0 → 500. Workload-dependent —
	// calibrate it against the tile_load CSV rows of a probe run.
	ShardCapacity float64 `json:"shard_capacity,omitempty"`
	// Interval is the policy check cadence; 0 → 2s.
	Interval Span `json:"interval,omitempty"`
	// HighUtil / LowUtil are the utilization band edges: projected
	// utilization above high scales up, demand that would stay under low
	// on one fewer shard scales down (0 → 0.75 / 0.35).
	HighUtil float64 `json:"high_util,omitempty"`
	LowUtil  float64 `json:"low_util,omitempty"`
	// UpCooldown / DownCooldown are the minimum gaps between successive
	// scale-ups / scale-downs (0 → 2× / 6× the interval).
	UpCooldown   Span `json:"up_cooldown,omitempty"`
	DownCooldown Span `json:"down_cooldown,omitempty"`
	// Horizon is how far ahead tile-load derivatives are projected when
	// deciding (0 → 2× the interval) — the predictive window that catches
	// a flash crowd forming.
	Horizon Span `json:"horizon,omitempty"`
	// MaxMoves caps each planning round's migration plan; 0 → 4.
	MaxMoves int `json:"max_moves,omitempty"`
	// MaxFailures crashes within FailureWindow quarantine a shard for
	// Probation (zeros → 3 failures in 2m, 2m probation).
	MaxFailures   int  `json:"max_failures,omitempty"`
	FailureWindow Span `json:"failure_window,omitempty"`
	Probation     Span `json:"probation,omitempty"`
}

// PrewriteSpec runs a write phase before the measured scenario: a
// throwaway system over the same storage substrate explores (persisting
// terrain and player records), is stopped and flushed, and then the
// measured system restarts over the populated store — the world-restart
// hook behind the paper's Fig. 13 read phase. Requires a storage backend.
type PrewriteSpec struct {
	// Duration is the write-phase length (required).
	Duration Span `json:"duration"`
	// Fleet is the write-phase population (required; join/leave times are
	// relative to the write phase).
	Fleet []FleetGroup `json:"fleet"`
}

// Event kinds.
const (
	EvFlashCrowd     = "flash_crowd"      // Count players join at once
	EvDisconnect     = "disconnect"       // Count newest players leave
	EvSpawnSCs       = "spawn_constructs" // Count constructs activate
	EvFaasChaos      = "faas_chaos"       // FaaS failure/slowdown window
	EvStorageChaos   = "storage_chaos"    // storage brownout window
	EvColdStartStorm = "cold_start_storm" // warm pools evicted repeatedly
	EvFlipStorage    = "flip_storage"     // switch chunk store backend
	EvShardFail      = "shard_fail"       // kill one shard's loop (failover)
)

// eventKinds lists the valid kinds for error messages.
var eventKinds = []string{
	EvFlashCrowd, EvDisconnect, EvSpawnSCs, EvFaasChaos,
	EvStorageChaos, EvColdStartStorm, EvFlipStorage, EvShardFail,
}

// Event is one timed intervention. Kind selects which of the optional
// fields apply.
type Event struct {
	At   Span   `json:"at"`
	Kind string `json:"kind"`

	// flash_crowd, disconnect, spawn_constructs.
	Count    int    `json:"count,omitempty"`
	Behavior string `json:"behavior,omitempty"` // flash_crowd; "" → "R"
	Blocks   int    `json:"blocks,omitempty"`   // spawn_constructs; 0 → 250
	// flash_crowd: land the crowd at this region tile's center instead
	// of at world spawn, building a hotspot inside one shard's territory
	// (requires a sharded scenario).
	Tile *[2]int `json:"tile,omitempty"`
	// flash_crowd: the legacy 1-D spelling of Tile — band b is tile
	// [b, 0] under the band topology (band kind only).
	Band *int `json:"band,omitempty"`

	// shard_fail: which shard's loop to kill.
	Shard *int `json:"shard,omitempty"`
	// shard_fail: when to rebuild the shard over the persisted world
	// (absolute scenario time, after at; 0 → the shard stays dead).
	RecoverAt Span `json:"recover_at,omitempty"`

	// faas_chaos, storage_chaos, cold_start_storm: window length.
	Duration Span `json:"duration,omitempty"`
	// faas_chaos: target one deployed function by name
	// ("simulate-construct" or "generate-terrain") instead of the whole
	// platform. A function-level window fully overrides the platform-wide
	// injector for that function.
	Function string `json:"function,omitempty"`
	// faas_chaos: probability an invocation fails.
	FailureRate float64 `json:"failure_rate,omitempty"`
	// storage_chaos: probability an operation fails.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// faas_chaos / storage_chaos: latency multiplier (> 1 slows down).
	LatencyFactor float64 `json:"latency_factor,omitempty"`
	// faas_chaos: every invocation pays a cold start for the window.
	ForceCold bool `json:"force_cold,omitempty"`

	// flip_storage: "local" or "serverless".
	Target string `json:"target,omitempty"`
}

// Assertion is one check: metric OP value, evaluated end-of-run, or —
// when From/To set a window — over the tick observations inside
// [from, to] (times relative to scenario start, spanning warm-up freely).
// Windowed assertions support the tick metrics only (ticks_total,
// ticks_over_budget, over_budget_frac, tick_*_ms), which are recomputed
// from the per-tick time series inside the window.
type Assertion struct {
	// Metric is a name from the metric registry (see Metrics section of
	// the README). Duration-valued metrics are in milliseconds.
	Metric string `json:"metric"`
	// Op is one of "<", "<=", ">", ">=".
	Op string `json:"op"`
	// Value is the bound.
	Value float64 `json:"value"`
	// From and To bound the assertion window; both zero → end of run.
	From Span `json:"from,omitempty"`
	To   Span `json:"to,omitempty"`
}

// Windowed reports whether the assertion is evaluated over a time window.
func (a Assertion) Windowed() bool { return a.To != 0 }

// Spec is a complete scenario.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every random draw; 0 → 1.
	Seed int64 `json:"seed,omitempty"`
	// Duration is the virtual run length (required).
	Duration Span `json:"duration"`
	// Warmup is discarded before tick statistics and counter deltas are
	// measured; 0 → min(10s, duration/5). Must be shorter than Duration.
	Warmup Span `json:"warmup,omitempty"`
	// Shards > 1 runs a region-sharded cluster: one server per shard over
	// one shared serverless substrate, with cross-shard player handoff.
	// 0 or 1 → the classic single server.
	Shards int `json:"shards,omitempty"`
	// Topology selects the region tiling of a sharded cluster: 1-D X
	// bands (the default) or a 2-D grid (requires shards > 1).
	Topology *TopologySpec `json:"topology,omitempty"`
	// Rebalance, if set, enables the cluster controller's live tile
	// rebalancing (requires shards > 1).
	Rebalance *RebalanceSpec `json:"rebalance,omitempty"`
	// Autoscale, if set, enables elastic shard autoscaling: the policy
	// loop grows and shrinks the shard set on demand bands, spreads
	// forming hotspots predictively, and quarantines crash-looping
	// shards (requires shards > 1).
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	// Visibility, if set, enables cross-shard avatar visibility: border
	// avatars replicate to neighbouring shards as read-only ghosts
	// (requires shards > 1).
	Visibility *VisibilitySpec `json:"visibility,omitempty"`
	// Checkpoint, if set, periodically persists every session's snapshot
	// through the shared store, so shard failover restores inventory
	// even for players that never crossed a boundary (requires
	// shards > 1 and a storage backend).
	Checkpoint Span `json:"checkpoint,omitempty"`
	// LogRetention caps the cluster's replay logs (handoffs, migrations,
	// ghost events) at the most recent N records (0 → the cluster
	// default, -1 → unbounded).
	LogRetention int `json:"log_retention,omitempty"`
	// Workers > 0 runs shard game loops on the virtual clock's
	// lane-batched parallel scheduler (a pool of Workers goroutines).
	// The report is byte-identical for every Workers >= 1; 0 keeps the
	// classic serial loop.
	Workers int `json:"workers,omitempty"`
	// PhaseLock re-aligns a shard's tick schedule to the global tick
	// grid after an overlong tick, so saturated shards keep ticking at
	// shared timestamps (and the parallel scheduler keeps forming
	// waves) instead of drifting off-phase forever. Deterministic at
	// every workers setting.
	PhaseLock bool `json:"phase_lock,omitempty"`

	World      WorldSpec        `json:"world,omitempty"`
	Backend    BackendSpec      `json:"backend,omitempty"`
	Prewrite   *PrewriteSpec    `json:"prewrite,omitempty"`
	Constructs []ConstructGroup `json:"constructs,omitempty"`
	Fleet      []FleetGroup     `json:"fleet,omitempty"`
	Stress     *StressSpec      `json:"stress,omitempty"`
	Events     []Event          `json:"events,omitempty"`
	Assertions []Assertion      `json:"assertions,omitempty"`
}

// Parse decodes and validates a scenario spec. Unknown fields are
// rejected, so typos surface as errors rather than silent no-ops.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, errors.New("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseFile reads and parses the scenario at path.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// errf builds a validation error prefixed with the scenario name.
func (s *Spec) errf(format string, args ...any) error {
	return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
}

// Validate checks the spec and normalises zero-value fields to their
// documented defaults. It is idempotent.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errors.New("scenario: name is required")
	}
	if s.Duration <= 0 {
		return s.errf("duration is required and must be positive")
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Warmup == 0 {
		s.Warmup = Span(min(10*time.Second, s.Duration.D()/5))
	}
	if s.Warmup >= s.Duration {
		return s.errf("warmup %s must be shorter than duration %s", s.Warmup, s.Duration)
	}
	if s.Shards < 0 || s.Shards > 64 {
		return s.errf("shards must be in [0, 64] (got %d)", s.Shards)
	}
	if err := s.validateTopology(); err != nil {
		return err
	}
	if rb := s.Rebalance; rb != nil {
		if s.Shards <= 1 {
			return s.errf("rebalance requires shards > 1")
		}
		if rb.Threshold != 0 && rb.Threshold < 1 {
			return s.errf("rebalance.threshold must be >= 1 (got %g)", rb.Threshold)
		}
	}
	if err := s.validateAutoscale(); err != nil {
		return err
	}
	if v := s.Visibility; v != nil {
		if s.Shards <= 1 {
			return s.errf("visibility requires shards > 1")
		}
		if v.Margin < 0 || v.Margin > 1024 {
			return s.errf("visibility.margin must be in [0, 1024] (got %d)", v.Margin)
		}
	}
	if s.Checkpoint != 0 {
		if s.Shards <= 1 {
			return s.errf("checkpoint requires shards > 1")
		}
		if !s.hasStore() {
			return s.errf("checkpoint requires a storage backend (backend.storage or backend.local_store)")
		}
	}
	if s.LogRetention < -1 {
		return s.errf("log_retention must be >= -1 (got %d)", s.LogRetention)
	}
	if s.Workers < 0 || s.Workers > 256 {
		return s.errf("workers must be in [0, 256] (got %d)", s.Workers)
	}

	if err := s.validateWorld(); err != nil {
		return err
	}
	if err := s.validateBackend(); err != nil {
		return err
	}
	if err := s.validatePrewrite(); err != nil {
		return err
	}
	for i := range s.Constructs {
		g := &s.Constructs[i]
		if g.Count <= 0 {
			return s.errf("constructs[%d]: count must be positive", i)
		}
		if g.Blocks == 0 {
			g.Blocks = 250
		}
		if g.Blocks < 12 {
			return s.errf("constructs[%d]: blocks must be >= 12 (got %d)", i, g.Blocks)
		}
	}
	if err := s.validateFleet("fleet", s.Fleet, "scenario duration", s.Duration); err != nil {
		return err
	}
	if err := s.validateStress(); err != nil {
		return err
	}
	if err := s.validateEvents(); err != nil {
		return err
	}
	for i, a := range s.Assertions {
		if err := s.validateAssertion(i, a); err != nil {
			return err
		}
	}
	return nil
}

// maxShards is the highest shard index bound the scenario can reach:
// the autoscale ceiling when the subsystem is on, the static shard
// count otherwise. Per-shard assertions validate against it.
func (s *Spec) maxShards() int {
	if a := s.Autoscale; a != nil {
		if a.MaxShards > 0 {
			return a.MaxShards
		}
		return 2 * s.Shards
	}
	return s.Shards
}

func (s *Spec) validateAutoscale() error {
	a := s.Autoscale
	if a == nil {
		return nil
	}
	if s.Shards <= 1 {
		return s.errf("autoscale requires shards > 1")
	}
	if a.MinShards < 0 || a.MaxShards < 0 {
		return s.errf("autoscale.min_shards and max_shards must be non-negative")
	}
	if a.MaxShards != 0 {
		if a.MaxShards < s.Shards {
			return s.errf("autoscale.max_shards %d is below the boot shard count %d", a.MaxShards, s.Shards)
		}
		if a.MaxShards > 64 {
			return s.errf("autoscale.max_shards must be <= 64 (got %d)", a.MaxShards)
		}
	}
	if a.MinShards != 0 && a.MaxShards != 0 && a.MinShards > a.MaxShards {
		return s.errf("autoscale.min_shards %d exceeds max_shards %d", a.MinShards, a.MaxShards)
	}
	if tp := s.Topology; tp.Grid() && s.maxShards() > tp.TilesX*tp.TilesZ {
		return s.errf("autoscale.max_shards %d over a %dx%d grid: more shards than tiles", s.maxShards(), tp.TilesX, tp.TilesZ)
	}
	if a.HighUtil < 0 || a.HighUtil > 1 || a.LowUtil < 0 || a.LowUtil > 1 {
		return s.errf("autoscale.high_util and low_util must be in [0, 1]")
	}
	hi, lo := a.HighUtil, a.LowUtil
	if hi == 0 {
		hi = 0.75
	}
	if lo == 0 {
		lo = 0.35
	}
	if lo >= hi {
		return s.errf("autoscale.low_util %g must be below high_util %g", lo, hi)
	}
	if a.ShardCapacity < 0 {
		return s.errf("autoscale.shard_capacity must be non-negative")
	}
	if a.MaxMoves < 0 {
		return s.errf("autoscale.max_moves must be non-negative")
	}
	if a.MaxFailures < 0 {
		return s.errf("autoscale.max_failures must be non-negative")
	}
	return nil
}

func (s *Spec) validateTopology() error {
	tp := s.Topology
	if tp == nil {
		return nil
	}
	if s.Shards <= 1 {
		return s.errf("topology requires shards > 1")
	}
	switch tp.Kind {
	case "":
		tp.Kind = "band"
	case "band", "grid":
	default:
		return s.errf(`topology.kind must be "band" or "grid" (got %q)`, tp.Kind)
	}
	if tp.TileChunks < 0 || tp.TileChunks > 64 {
		return s.errf("topology.tile_chunks must be in [0, 64] (got %d)", tp.TileChunks)
	}
	if tp.Kind == "band" {
		if tp.TilesX != 0 || tp.TilesZ != 0 {
			return s.errf("topology.tiles_x/tiles_z only apply to the grid kind")
		}
		return nil
	}
	if tp.TilesX < 1 || tp.TilesX > 64 || tp.TilesZ < 1 || tp.TilesZ > 64 {
		return s.errf("grid topology needs tiles_x and tiles_z in [1, 64] (got %dx%d)", tp.TilesX, tp.TilesZ)
	}
	if s.Shards > tp.TilesX*tp.TilesZ {
		return s.errf("%d shards over a %dx%d grid: more shards than tiles", s.Shards, tp.TilesX, tp.TilesZ)
	}
	return nil
}

// validateTileRef checks one tile placement (fleet group or flash crowd)
// against the scenario topology.
func (s *Spec) validateTileRef(ctx string, tile [2]int) error {
	if s.Shards <= 1 {
		return s.errf("%s: tile placement requires shards > 1", ctx)
	}
	if s.Topology.Grid() {
		if tile[0] < 0 || tile[0] >= s.Topology.TilesX || tile[1] < 0 || tile[1] >= s.Topology.TilesZ {
			return s.errf("%s: tile [%d,%d] outside the %dx%d grid", ctx, tile[0], tile[1], s.Topology.TilesX, s.Topology.TilesZ)
		}
		return nil
	}
	if tile[1] != 0 {
		return s.errf("%s: band-topology tiles lie on z=0 (got [%d,%d])", ctx, tile[0], tile[1])
	}
	return nil
}

// validateBandRef checks one legacy band placement: band b is tile
// [b, 0], a band-topology concept.
func (s *Spec) validateBandRef(ctx string) error {
	if s.Shards <= 1 {
		return s.errf("%s: band placement requires shards > 1", ctx)
	}
	if s.Topology.Grid() {
		return s.errf("%s: band placement is a band-topology concept; use tile with a grid topology", ctx)
	}
	return nil
}

func (s *Spec) validateWorld() error {
	switch s.World.Type {
	case "":
		s.World.Type = "flat"
	case "flat", "default":
	default:
		return s.errf(`world.type must be "flat" or "default" (got %q)`, s.World.Type)
	}
	switch s.World.Profile {
	case "":
		s.World.Profile = "servo"
	case "servo", "opencraft", "minecraft":
	default:
		return s.errf(`world.profile must be "servo", "opencraft", or "minecraft" (got %q)`, s.World.Profile)
	}
	if s.World.ViewDistance < 0 {
		return s.errf("world.view_distance must be non-negative")
	}
	return nil
}

func (s *Spec) validateBackend() error {
	b := &s.Backend
	if b.Storage && b.LocalStore {
		return s.errf("backend.storage and backend.local_store are mutually exclusive")
	}
	switch b.StorageTier {
	case "":
		if b.Storage {
			b.StorageTier = "premium"
		}
	case "local", "premium", "standard":
		if !b.Storage {
			return s.errf("backend.storage_tier is set but backend.storage is false")
		}
	default:
		return s.errf(`backend.storage_tier must be "local", "premium", or "standard" (got %q)`, b.StorageTier)
	}
	if b.SpecExec != nil {
		if !b.Constructs {
			return s.errf("backend.spec_exec is set but backend.constructs is false")
		}
		if b.SpecExec.Steps != nil && *b.SpecExec.Steps <= 0 {
			return s.errf("backend.spec_exec.steps must be positive")
		}
		if b.SpecExec.TickLead != nil && *b.SpecExec.TickLead < 0 {
			return s.errf("backend.spec_exec.tick_lead must be non-negative")
		}
	}
	if b.TGMaxInflight < 0 {
		return s.errf("backend.tg_max_inflight must be non-negative")
	}
	if b.TGMaxInflight > 0 && !b.Terrain {
		return s.errf("backend.tg_max_inflight is set but backend.terrain is false")
	}
	if b.GenDedup != nil && !b.Terrain {
		return s.errf("backend.gen_dedup is set but backend.terrain is false")
	}
	return nil
}

// validateFleet checks one fleet section (the main fleet or the prewrite
// fleet) against its time horizon.
func (s *Spec) validateFleet(section string, fleet []FleetGroup, horizonName string, horizon Span) error {
	for i := range fleet {
		g := &fleet[i]
		if g.Count <= 0 {
			return s.errf("%s[%d]: count must be positive", section, i)
		}
		if g.Behavior == "" {
			g.Behavior = "A"
		}
		if !workload.Known(g.Behavior) {
			return s.errf("%s[%d]: unknown behavior %q", section, i, g.Behavior)
		}
		if g.JoinAt >= horizon {
			return s.errf("%s[%d]: join_at %s is past the %s %s", section, i, g.JoinAt, horizonName, horizon)
		}
		if g.LeaveAt != 0 && g.LeaveAt <= g.JoinAt {
			return s.errf("%s[%d]: leave_at %s must be after join_at %s", section, i, g.LeaveAt, g.JoinAt)
		}
		if g.LeaveAt != 0 && g.LeaveAt >= horizon {
			return s.errf("%s[%d]: leave_at %s is past the %s %s and would never fire", section, i, g.LeaveAt, horizonName, horizon)
		}
		if g.Shard != nil {
			if s.Shards <= 1 {
				return s.errf("%s[%d]: shard placement requires shards > 1", section, i)
			}
			if *g.Shard < 0 || *g.Shard >= s.Shards {
				return s.errf("%s[%d]: shard %d out of range [0, %d)", section, i, *g.Shard, s.Shards)
			}
		}
		placements := 0
		for _, set := range []bool{g.Shard != nil, g.Tile != nil, g.Band != nil, g.Pos != nil} {
			if set {
				placements++
			}
		}
		if placements > 1 {
			return s.errf("%s[%d]: shard, tile, band, and pos placement are mutually exclusive", section, i)
		}
		if g.Pos != nil {
			for _, v := range *g.Pos {
				if v < -100000 || v > 100000 {
					return s.errf("%s[%d]: pos coordinate %d out of range [-100000, 100000]", section, i, v)
				}
			}
		}
		if g.Tile != nil {
			if err := s.validateTileRef(fmt.Sprintf("%s[%d]", section, i), *g.Tile); err != nil {
				return err
			}
		}
		if g.Band != nil {
			if err := s.validateBandRef(fmt.Sprintf("%s[%d]", section, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// validatePrewrite checks the write phase (the Fig. 13 world-restart
// hook): it needs a storage backend to populate and a fleet to do the
// writing.
func (s *Spec) validatePrewrite() error {
	pw := s.Prewrite
	if pw == nil {
		return nil
	}
	if !s.hasStore() {
		return s.errf("prewrite requires a storage backend (backend.storage or backend.local_store)")
	}
	if pw.Duration <= 0 {
		return s.errf("prewrite.duration is required and must be positive")
	}
	if len(pw.Fleet) == 0 {
		return s.errf("prewrite.fleet is required (an empty write phase writes nothing)")
	}
	return s.validateFleet("prewrite.fleet", pw.Fleet, "prewrite duration", pw.Duration)
}

func (s *Spec) validateStress() error {
	st := s.Stress
	if st == nil {
		return nil
	}
	if st.Bots <= 0 {
		return s.errf("stress.bots must be positive")
	}
	if st.Ramp == 0 {
		st.Ramp = s.Duration / 4
	}
	if st.Ramp >= s.Duration {
		return s.errf("stress.ramp %s must be shorter than duration %s", st.Ramp, s.Duration)
	}
	if len(st.Behaviors) == 0 {
		st.Behaviors = map[string]float64{"A": 1}
	}
	for name, w := range st.Behaviors {
		if !workload.Known(name) {
			return s.errf("stress.behaviors: unknown behavior %q", name)
		}
		if w <= 0 {
			return s.errf("stress.behaviors[%q]: weight must be positive", name)
		}
	}
	if st.Churn != nil {
		if st.Churn.MeanSession <= 0 {
			return s.errf("stress.churn.mean_session is required and must be positive")
		}
		if st.Churn.MeanPause == 0 {
			st.Churn.MeanPause = Span(5 * time.Second)
		}
	}
	switch st.Placement {
	case "":
		st.Placement = "spawn"
	case "spawn":
	case "spread":
		if s.Shards <= 1 {
			return s.errf(`stress.placement "spread" requires shards > 1`)
		}
	default:
		return s.errf(`stress.placement must be "spawn" or "spread" (got %q)`, st.Placement)
	}
	return nil
}

// hasFunctionBackend reports whether any FaaS-backed component is on.
func (s *Spec) hasFunctionBackend() bool { return s.Backend.Constructs || s.Backend.Terrain }

// hasStore reports whether any chunk store is configured.
func (s *Spec) hasStore() bool { return s.Backend.Storage || s.Backend.LocalStore }

func (s *Spec) validateEvents() error {
	// Chaos windows of the same kind must not overlap: the injector is a
	// single slot per platform/store, so overlap would make the effective
	// settings ambiguous.
	windowEnd := make(map[string]Span)
	for i := range s.Events {
		e := &s.Events[i]
		if i > 0 && e.At < s.Events[i-1].At {
			return s.errf("events[%d] (%s at %s): timestamps must be non-decreasing (previous event at %s)",
				i, e.Kind, e.At, s.Events[i-1].At)
		}
		if e.At >= s.Duration {
			return s.errf("events[%d] (%s at %s): event is past the scenario duration %s and would never fire",
				i, e.Kind, e.At, s.Duration)
		}
		if err := s.validateEvent(i, e); err != nil {
			return err
		}
		if err := s.checkStrayEventFields(i, e); err != nil {
			return err
		}
		if e.Kind == EvFaasChaos || e.Kind == EvStorageChaos {
			// Windows targeting different functions occupy different
			// injector slots and may overlap freely (a function-level
			// window fully overrides the platform-wide one).
			key := e.Kind + "/" + e.Function
			if e.At < windowEnd[key] {
				return s.errf("events[%d] (%s at %s): overlaps the previous %s window (ends at %s)",
					i, e.Kind, e.At, e.Kind, windowEnd[key])
			}
			windowEnd[key] = e.At + e.Duration
		}
	}
	return nil
}

func (s *Spec) validateEvent(i int, e *Event) error {
	switch e.Kind {
	case EvFlashCrowd:
		if e.Count <= 0 {
			return s.errf("events[%d] %s: count must be positive", i, e.Kind)
		}
		if e.Behavior == "" {
			e.Behavior = "R"
		}
		if !workload.Known(e.Behavior) {
			return s.errf("events[%d] %s: unknown behavior %q", i, e.Kind, e.Behavior)
		}
		if e.Tile != nil && e.Band != nil {
			return s.errf("events[%d] %s: tile and band placement are mutually exclusive", i, e.Kind)
		}
		if e.Tile != nil {
			if err := s.validateTileRef(fmt.Sprintf("events[%d] %s", i, e.Kind), *e.Tile); err != nil {
				return err
			}
		}
		if e.Band != nil {
			if err := s.validateBandRef(fmt.Sprintf("events[%d] %s", i, e.Kind)); err != nil {
				return err
			}
		}
	case EvDisconnect:
		if e.Count <= 0 {
			return s.errf("events[%d] %s: count must be positive", i, e.Kind)
		}
	case EvSpawnSCs:
		if e.Count <= 0 {
			return s.errf("events[%d] %s: count must be positive", i, e.Kind)
		}
		if e.Blocks == 0 {
			e.Blocks = 250
		}
		if e.Blocks < 12 {
			return s.errf("events[%d] %s: blocks must be >= 12 (got %d)", i, e.Kind, e.Blocks)
		}
	case EvFaasChaos:
		if !s.hasFunctionBackend() {
			return s.errf("events[%d] %s: no serverless function backend configured (enable backend.constructs or backend.terrain)", i, e.Kind)
		}
		switch e.Function {
		case "":
		case "simulate-construct":
			if !s.Backend.Constructs {
				return s.errf("events[%d] %s: function %q requires backend.constructs", i, e.Kind, e.Function)
			}
		case "generate-terrain":
			if !s.Backend.Terrain {
				return s.errf("events[%d] %s: function %q requires backend.terrain", i, e.Kind, e.Function)
			}
		default:
			return s.errf(`events[%d] %s: unknown function %q (valid: "simulate-construct", "generate-terrain")`, i, e.Kind, e.Function)
		}
		if e.Duration <= 0 {
			return s.errf("events[%d] %s: duration is required", i, e.Kind)
		}
		if e.FailureRate < 0 || e.FailureRate > 1 {
			return s.errf("events[%d] %s: failure_rate must be in [0, 1]", i, e.Kind)
		}
		if e.LatencyFactor != 0 && e.LatencyFactor < 1 {
			return s.errf("events[%d] %s: latency_factor must be >= 1", i, e.Kind)
		}
		if e.FailureRate == 0 && e.LatencyFactor == 0 && !e.ForceCold {
			return s.errf("events[%d] %s: set failure_rate, latency_factor, and/or force_cold", i, e.Kind)
		}
	case EvStorageChaos:
		if !s.hasStore() {
			return s.errf("events[%d] %s: no storage backend configured (enable backend.storage or backend.local_store)", i, e.Kind)
		}
		if e.Duration <= 0 {
			return s.errf("events[%d] %s: duration is required", i, e.Kind)
		}
		if e.ErrorRate < 0 || e.ErrorRate > 1 {
			return s.errf("events[%d] %s: error_rate must be in [0, 1]", i, e.Kind)
		}
		if e.LatencyFactor != 0 && e.LatencyFactor < 1 {
			return s.errf("events[%d] %s: latency_factor must be >= 1", i, e.Kind)
		}
		if e.ErrorRate == 0 && e.LatencyFactor == 0 {
			return s.errf("events[%d] %s: set error_rate and/or latency_factor", i, e.Kind)
		}
	case EvColdStartStorm:
		if !s.hasFunctionBackend() {
			return s.errf("events[%d] %s: no serverless function backend configured (enable backend.constructs or backend.terrain)", i, e.Kind)
		}
		if e.Duration == 0 {
			e.Duration = Span(30 * time.Second)
		}
	case EvShardFail:
		if s.Shards <= 1 {
			return s.errf("events[%d] %s: requires shards > 1", i, e.Kind)
		}
		if e.Shard == nil {
			return s.errf("events[%d] %s: shard is required", i, e.Kind)
		}
		if *e.Shard < 0 || *e.Shard >= s.Shards {
			return s.errf("events[%d] %s: shard %d out of range [0, %d)", i, e.Kind, *e.Shard, s.Shards)
		}
		if e.RecoverAt != 0 {
			if e.RecoverAt <= e.At {
				return s.errf("events[%d] %s: recover_at %s must be after at %s", i, e.Kind, e.RecoverAt, e.At)
			}
			if e.RecoverAt >= s.Duration {
				return s.errf("events[%d] %s: recover_at %s is past the scenario duration %s and would never fire", i, e.Kind, e.RecoverAt, s.Duration)
			}
		}
	case EvFlipStorage:
		if !s.Backend.Storage {
			return s.errf("events[%d] %s: requires backend.storage", i, e.Kind)
		}
		if s.Shards > 1 {
			return s.errf("events[%d] %s: runtime storage flips are not supported on a sharded cluster", i, e.Kind)
		}
		switch e.Target {
		case "local", "serverless":
		default:
			return s.errf(`events[%d] %s: target must be "local" or "serverless" (got %q)`, i, e.Kind, e.Target)
		}
	default:
		return s.errf("events[%d]: unknown event kind %q (valid kinds: %v)", i, e.Kind, eventKinds)
	}
	return nil
}

// checkStrayEventFields rejects fields that are valid JSON keys but do not
// apply to the event's kind: DisallowUnknownFields catches misspelled
// keys, this catches wrong-kind keys, so a knob the author set is never
// silently dropped.
func (s *Spec) checkStrayEventFields(i int, e *Event) error {
	c := *e
	c.At, c.Kind = 0, ""
	switch e.Kind {
	case EvFlashCrowd:
		c.Count, c.Behavior, c.Tile, c.Band = 0, "", nil, nil
	case EvDisconnect:
		c.Count = 0
	case EvSpawnSCs:
		c.Count, c.Blocks = 0, 0
	case EvFaasChaos:
		c.Duration, c.FailureRate, c.LatencyFactor, c.ForceCold = 0, 0, 0, false
		c.Function = ""
	case EvStorageChaos:
		c.Duration, c.ErrorRate, c.LatencyFactor = 0, 0, 0
	case EvColdStartStorm:
		c.Duration = 0
	case EvFlipStorage:
		c.Target = ""
	case EvShardFail:
		c.Shard, c.RecoverAt = nil, 0
	}
	stray := ""
	switch {
	case c.Count != 0:
		stray = "count"
	case c.Behavior != "":
		stray = "behavior"
	case c.Blocks != 0:
		stray = "blocks"
	case c.Tile != nil:
		stray = "tile"
	case c.Band != nil:
		stray = "band"
	case c.Shard != nil:
		stray = "shard"
	case c.RecoverAt != 0:
		stray = "recover_at"
	case c.Duration != 0:
		stray = "duration"
	case c.FailureRate != 0:
		stray = "failure_rate"
	case c.ErrorRate != 0:
		stray = "error_rate"
	case c.LatencyFactor != 0:
		stray = "latency_factor"
	case c.ForceCold:
		stray = "force_cold"
	case c.Target != "":
		stray = "target"
	case c.Function != "":
		stray = "function"
	}
	if stray != "" {
		return s.errf("events[%d] %s: field %q does not apply to this event kind", i, e.Kind, stray)
	}
	return nil
}

func (s *Spec) validateAssertion(i int, a Assertion) error {
	needs, ok := metricNeeds[a.Metric]
	if !ok {
		if shard, _, isShard := parseShardMetric(a.Metric); isShard {
			if s.Shards <= 1 {
				return s.errf("assertions[%d]: per-shard metric %q requires shards > 1", i, a.Metric)
			}
			if shard >= s.maxShards() {
				return s.errf("assertions[%d]: metric %q names shard %d but the scenario reaches at most %d shards", i, a.Metric, shard, s.maxShards())
			}
			needs = needsNone
		} else {
			return s.errf("assertions[%d]: unknown metric %q", i, a.Metric)
		}
	}
	if a.From != 0 || a.To != 0 {
		if !windowableMetrics[a.Metric] {
			return s.errf("assertions[%d]: metric %q does not support [from, to] windows (tick metrics, load_imbalance, and view_margin only)", i, a.Metric)
		}
		if a.To == 0 {
			return s.errf("assertions[%d]: window has from but no to", i)
		}
		if a.From >= a.To {
			return s.errf("assertions[%d]: window from %s must be before to %s", i, a.From, a.To)
		}
		if a.To > s.Duration {
			return s.errf("assertions[%d]: window to %s is past the scenario duration %s", i, a.To, s.Duration)
		}
	}
	switch needs {
	case needsSC:
		if !s.Backend.Constructs {
			return s.errf("assertions[%d]: metric %q requires backend.constructs", i, a.Metric)
		}
	case needsTG:
		if !s.Backend.Terrain {
			return s.errf("assertions[%d]: metric %q requires backend.terrain", i, a.Metric)
		}
	case needsFaaS:
		if !s.hasFunctionBackend() {
			return s.errf("assertions[%d]: metric %q requires a serverless function backend", i, a.Metric)
		}
	case needsCache:
		if !s.Backend.Storage {
			return s.errf("assertions[%d]: metric %q requires backend.storage", i, a.Metric)
		}
	case needsStore:
		if !s.hasStore() {
			return s.errf("assertions[%d]: metric %q requires a storage backend", i, a.Metric)
		}
	case needsCluster:
		if s.Shards <= 1 {
			return s.errf("assertions[%d]: metric %q requires shards > 1", i, a.Metric)
		}
	case needsVisibility:
		if s.Visibility == nil {
			return s.errf("assertions[%d]: metric %q requires a visibility section", i, a.Metric)
		}
	}
	switch a.Op {
	case "<", "<=", ">", ">=":
	default:
		return s.errf(`assertions[%d]: op must be one of "<", "<=", ">", ">=" (got %q)`, i, a.Op)
	}
	return nil
}
