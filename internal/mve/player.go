package mve

import (
	"math"
	"math/rand"

	"servo/internal/world"
)

// PlayerID identifies a connected player.
type PlayerID int

// Player is one connected player session and its avatar.
type Player struct {
	ID   PlayerID
	Name string

	// Avatar position (block coordinates; Y follows the terrain surface).
	X, Z float64

	// Movement state: the avatar advances toward (destX, destZ) at
	// speed blocks/second.
	destX, destZ float64
	speed        float64

	// Inventory is the held item slot (ActionSetInventory).
	Inventory uint8

	behavior Behavior

	// known tracks chunks already sent to this client; sendQueue holds
	// chunks waiting to be serialised (drained a few per tick), with
	// sendHead indexing the next unsent entry — a head-index ring over
	// one reusable backing array (see drainSendQueues).
	known     map[world.ChunkPos]bool
	sendQueue []world.ChunkPos
	sendHead  int

	// Demand cursor: the chunk rect covered by this player's last full
	// terrain-demand walk. While the rect is unchanged (and nothing in
	// it was unloaded) the scan skips the walk entirely; fresh sessions
	// and handoff arrivals start invalid (see scanTerrainDemand).
	demandRect  world.ChunkRect
	demandValid bool

	// ChunksReceived counts chunk payloads delivered to this client.
	ChunksReceived int
}

// Behavior drives a player's actions each tick. Implementations live in
// internal/workload (behaviors A, Sx, Sinc, and R from the paper's Table I
// and Table II).
type Behavior interface {
	// Actions returns the player's commands for this tick. r is the
	// server's deterministic random source.
	Actions(r *rand.Rand, p *Player, s *Server) []Action
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(r *rand.Rand, p *Player, s *Server) []Action

// Actions implements Behavior.
func (f BehaviorFunc) Actions(r *rand.Rand, p *Player, s *Server) []Action {
	return f(r, p, s)
}

// Pos returns the avatar's position as a block position (Y at surface).
func (p *Player) Pos() world.BlockPos {
	return world.BlockPos{X: int(p.X), Y: 0, Z: int(p.Z)}
}

// Moving reports whether the avatar has not yet reached its destination.
func (p *Player) Moving() bool {
	dx, dz := p.destX-p.X, p.destZ-p.Z
	return dx*dx+dz*dz > 1e-6 && p.speed > 0
}

// advance integrates movement for dt seconds.
func (p *Player) advance(dt float64) {
	if !p.Moving() {
		return
	}
	dx, dz := p.destX-p.X, p.destZ-p.Z
	dist := dx*dx + dz*dz
	step := p.speed * dt
	if step*step >= dist {
		p.X, p.Z = p.destX, p.destZ
		return
	}
	norm := step / math.Sqrt(dist)
	p.X += dx * norm
	p.Z += dz * norm
}
