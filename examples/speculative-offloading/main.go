// Speculative offloading: reproduce the paper's latency-hiding mechanism
// (§III-C) in isolation. A construct is simulated simultaneously on the
// server and in a serverless function; the function works ahead and the
// server applies its speculative states. Compare efficiency across tick
// leads — the Fig. 8 result in miniature.
//
//	go run ./examples/speculative-offloading
package main

import (
	"fmt"
	"time"

	"servo/internal/core"
	"servo/internal/sc"
	"servo/internal/servo/specexec"
	"servo/internal/sim"
	"servo/internal/world"
)

func main() {
	fmt.Println("offloading a 252-block construct for 2 virtual minutes per config")
	fmt.Println()
	fmt.Printf("%-10s %-18s %-16s %-14s\n", "tick lead", "median efficiency", "local steps", "applied steps")
	for _, lead := range []int{0, 10, 20, 40} {
		med, stats := run(lead)
		fmt.Printf("%-10d %-18.3f %-16d %-14d\n", lead, med, stats.LocalSteps, stats.RemoteSteps)
	}
	fmt.Println()
	fmt.Println("lead 0 invokes only when the buffer is empty, so every in-flight")
	fmt.Println("period is re-simulated locally; a 10+ tick lead hides the latency.")
}

func run(lead int) (float64, specexec.Stats) {
	loop := sim.NewLoop(1)
	sys := core.New(loop, core.Config{
		WorldType:    "flat",
		ServerlessSC: true,
		SpecExec: specexec.Config{
			TickLead:           lead,
			StepsPerInvocation: 100,
			DetectLoops:        false,
		},
	})
	sys.Server.SpawnConstruct(sc.BuildSized(252), world.BlockPos{X: 4, Y: 5, Z: 4})
	sys.Server.Start()
	loop.RunUntil(2 * time.Minute)
	sys.Server.Stop()
	return sys.SpecExec.MedianEfficiency(), sys.SpecExec.Snapshot()
}
