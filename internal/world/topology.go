// Region topology: how the infinite chunk grid is cut into ownership
// tiles. PR 2/3 hard-coded one topology — contiguous bands along the X
// axis — which cannot split a player crowd spread along Z: the whole
// column lands in one band, on one shard, and the controller has nothing
// useful to migrate. Topology generalises the cut. A tile is the unit of
// ownership (and of controller migration); BandTopology reproduces the
// 1-D X bands exactly (the compatibility default), and GridTopology cuts
// chunk space into TilesX×TilesZ rectangular tiles that repeat
// periodically across the plane, so load can be split along both axes.

package world

import "fmt"

// TileID identifies one ownership tile. Under a BandTopology, tile
// (b, 0) is region band b from PR 2/3; under a GridTopology, (X, Z) are
// the tile's grid coordinates in [0, TilesX) × [0, TilesZ).
type TileID struct {
	X, Z int
}

// String implements fmt.Stringer.
func (t TileID) String() string { return fmt.Sprintf("tile(%d,%d)", t.X, t.Z) }

// Band is the PR 2/3 name for a region tile, kept as a deprecation shim
// for servo.go-era callers that identified bands by index: band b is
// TileID{X: b} under a BandTopology.
//
// Deprecated: use TileID.
type Band = TileID

// Topology maps the chunk grid onto ownership tiles. Implementations
// must be pure value types (comparable, no internal state): the same
// topology value always produces the same tiling, which is what keeps
// ownership decisions replayable.
type Topology interface {
	// TileOf returns the tile containing the chunk column.
	TileOf(cp ChunkPos) TileID
	// Tiles returns the number of distinct tiles the topology cuts chunk
	// space into, or 0 when the tiling is unbounded (bands).
	Tiles() int
	// Neighbors returns the tiles adjacent to t, in deterministic order.
	Neighbors(t TileID) []TileID
	// Index linearises a tile for deterministic ordering and default
	// ownership. Finite topologies use a space-filling order: consecutive
	// indices are Neighbors, so contiguous index runs make contiguous
	// shard territories.
	Index(t TileID) int
	// TileAt is the inverse of Index.
	TileAt(index int) TileID
	// Center returns the block position at the center of the tile's
	// canonical rectangle (tile-targeted fleet placement).
	Center(t TileID) BlockPos
	// Spec returns the serialisable geometry, used for ownership-table
	// persistence and restart-compatibility checks.
	Spec() TopologySpec
}

// TopologySpec is the serialisable geometry of a Topology.
type TopologySpec struct {
	// Kind is "band" or "grid".
	Kind string
	// TileChunks is the tile side (band width) in chunk columns
	// (0 → DefaultBandChunks).
	TileChunks int
	// TilesX and TilesZ are the grid dimensions (grid kind only).
	TilesX, TilesZ int
}

// Build constructs the topology the spec describes.
func (s TopologySpec) Build() (Topology, error) {
	switch s.Kind {
	case "", "band":
		return BandTopology{BandChunks: s.TileChunks}, nil
	case "grid":
		if s.TilesX < 1 || s.TilesZ < 1 {
			return nil, fmt.Errorf("world: grid topology needs TilesX/TilesZ >= 1 (got %dx%d)", s.TilesX, s.TilesZ)
		}
		return GridTopology{TilesX: s.TilesX, TilesZ: s.TilesZ, TileChunks: s.TileChunks}, nil
	}
	return nil, fmt.Errorf("world: unknown topology kind %q", s.Kind)
}

// BandTopology is the PR 2/3 tiling: contiguous bands of BandChunks
// chunk columns along the X axis, unbounded in both directions. Tile
// (b, 0) is band b; the Z coordinate is always 0.
type BandTopology struct {
	// BandChunks is the band width in chunk columns
	// (0 → DefaultBandChunks).
	BandChunks int
}

var _ Topology = BandTopology{}

// bandChunks returns the effective band width.
func (b BandTopology) bandChunks() int {
	if b.BandChunks < 1 {
		return DefaultBandChunks
	}
	return b.BandChunks
}

// TileOf implements Topology.
func (b BandTopology) TileOf(cp ChunkPos) TileID {
	return TileID{X: floorDiv(cp.X, b.bandChunks())}
}

// Tiles implements Topology: bands are unbounded.
func (b BandTopology) Tiles() int { return 0 }

// Neighbors implements Topology: the two adjacent bands.
func (b BandTopology) Neighbors(t TileID) []TileID {
	return []TileID{{X: t.X - 1}, {X: t.X + 1}}
}

// Index implements Topology: the band number.
func (b BandTopology) Index(t TileID) int { return t.X }

// TileAt implements Topology.
func (b BandTopology) TileAt(index int) TileID { return TileID{X: index} }

// Center implements Topology: the block at the center of the band, on
// the Z axis — exactly PR 3's BandCenter, so band-targeted placement in
// existing scenarios lands players on the same blocks.
func (b BandTopology) Center(t TileID) BlockPos {
	w := b.bandChunks() * ChunkSizeX
	return BlockPos{X: t.X*w + w/2, Y: 0, Z: 0}
}

// Spec implements Topology.
func (b BandTopology) Spec() TopologySpec {
	return TopologySpec{Kind: "band", TileChunks: b.bandChunks()}
}

// String implements fmt.Stringer.
func (b BandTopology) String() string { return fmt.Sprintf("band/%d", b.bandChunks()) }

// GridTopology cuts chunk space into TilesX×TilesZ rectangular tiles of
// TileChunks×TileChunks chunk columns. The finite tile grid repeats
// periodically across the infinite plane (a torus: chunk coordinates
// wrap modulo the grid span), so every chunk maps to one of
// TilesX*TilesZ tiles and ownership state stays bounded however far
// players roam. Index runs through the tiles in boustrophedon
// (serpentine) order — left-to-right on even rows, right-to-left on odd
// ones — so consecutive indices are always grid neighbours and a
// contiguous index run is a contiguous territory.
type GridTopology struct {
	// TilesX and TilesZ are the grid dimensions (values < 1 mean 1).
	TilesX, TilesZ int
	// TileChunks is the tile side in chunk columns
	// (0 → DefaultBandChunks).
	TileChunks int
}

var _ Topology = GridTopology{}

func (g GridTopology) tilesX() int {
	if g.TilesX < 1 {
		return 1
	}
	return g.TilesX
}

func (g GridTopology) tilesZ() int {
	if g.TilesZ < 1 {
		return 1
	}
	return g.TilesZ
}

func (g GridTopology) tileChunks() int {
	if g.TileChunks < 1 {
		return DefaultBandChunks
	}
	return g.TileChunks
}

// TileOf implements Topology.
func (g GridTopology) TileOf(cp ChunkPos) TileID {
	tc := g.tileChunks()
	return TileID{
		X: floorMod(floorDiv(cp.X, tc), g.tilesX()),
		Z: floorMod(floorDiv(cp.Z, tc), g.tilesZ()),
	}
}

// Tiles implements Topology.
func (g GridTopology) Tiles() int { return g.tilesX() * g.tilesZ() }

// Neighbors implements Topology: the 4-neighbourhood on the tile torus,
// deduplicated (a 1-wide axis folds both directions onto one tile) and
// in deterministic west/east/north/south order.
func (g GridTopology) Neighbors(t TileID) []TileID {
	tx, tz := g.tilesX(), g.tilesZ()
	cand := []TileID{
		{X: floorMod(t.X-1, tx), Z: t.Z},
		{X: floorMod(t.X+1, tx), Z: t.Z},
		{X: t.X, Z: floorMod(t.Z-1, tz)},
		{X: t.X, Z: floorMod(t.Z+1, tz)},
	}
	out := cand[:0]
	for _, n := range cand {
		if n == t {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

// Index implements Topology: boustrophedon order over the tile grid.
func (g GridTopology) Index(t TileID) int {
	tx := g.tilesX()
	x, z := floorMod(t.X, tx), floorMod(t.Z, g.tilesZ())
	if z%2 == 1 {
		x = tx - 1 - x
	}
	return z*tx + x
}

// TileAt implements Topology.
func (g GridTopology) TileAt(index int) TileID {
	tx := g.tilesX()
	index = floorMod(index, g.Tiles())
	z := index / tx
	x := index % tx
	if z%2 == 1 {
		x = tx - 1 - x
	}
	return TileID{X: x, Z: z}
}

// Center implements Topology: the center of the tile's canonical
// rectangle (the instance whose grid coordinates are taken without
// wrapping, covering blocks [X*side, (X+1)*side) × [Z*side, (Z+1)*side)).
func (g GridTopology) Center(t TileID) BlockPos {
	side := g.tileChunks() * ChunkSizeX
	return BlockPos{
		X: floorMod(t.X, g.tilesX())*side + side/2,
		Y: 0,
		Z: floorMod(t.Z, g.tilesZ())*side + side/2,
	}
}

// Spec implements Topology.
func (g GridTopology) Spec() TopologySpec {
	return TopologySpec{Kind: "grid", TileChunks: g.tileChunks(), TilesX: g.tilesX(), TilesZ: g.tilesZ()}
}

// String implements fmt.Stringer.
func (g GridTopology) String() string {
	return fmt.Sprintf("grid/%dx%d/%d", g.tilesX(), g.tilesZ(), g.tileChunks())
}

// DefaultOwner returns the shard owning a tile before any override: the
// boot-time assignment. Unbounded topologies (bands) interleave —
// floorMod(index, shards), PR 2's round-robin, so every shard owns
// terrain near spawn. Finite topologies split the space-filling index
// range into contiguous runs, one per shard: with Index in serpentine
// order each shard's territory is a connected block of tiles.
func DefaultOwner(topo Topology, shards int, t TileID) int {
	if shards < 1 {
		shards = 1
	}
	n := topo.Tiles()
	if n == 0 {
		return floorMod(topo.Index(t), shards)
	}
	idx := floorMod(topo.Index(t), n)
	owner := idx * shards / n
	if owner >= shards {
		owner = shards - 1
	}
	return owner
}

// HomeTile returns a tile shard i owns by default, as central to its
// territory as the topology allows: the target of shard-aware fleet
// placement (Cluster.Home). For bands it is band i, preserving PR 2's
// home bands; for finite topologies it is the middle of the shard's
// contiguous index run.
func HomeTile(topo Topology, shards, i int) TileID {
	if shards < 1 {
		shards = 1
	}
	n := topo.Tiles()
	if n == 0 {
		return topo.TileAt(i)
	}
	first, last := -1, -1
	for idx := 0; idx < n; idx++ {
		if DefaultOwner(topo, shards, topo.TileAt(idx)) != i {
			continue
		}
		if first < 0 {
			first = idx
		}
		last = idx
	}
	if first < 0 {
		return topo.TileAt(0) // more shards than tiles: i owns nothing
	}
	return topo.TileAt((first + last) / 2)
}
