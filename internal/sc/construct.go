// Package sc implements simulated constructs (SCs): collections of stateful
// blocks through which players program the MVE's terrain (paper §II-A,
// component 6). A construct is a small grid of circuit cells — power
// sources, wires with decaying power levels, lamps, repeaters, and
// inverters — with a deterministic synchronous step function.
//
// The engine is shared verbatim between the game server (local simulation)
// and the serverless simulation function (speculative execution): both call
// Step on identical state, which is what makes Servo's remote speculation
// indistinguishable from local execution (paper §III-C).
package sc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// CellKind enumerates circuit cell types. Empty is the zero value.
type CellKind uint8

// Cell kinds. They mirror the stateful block types in internal/world.
const (
	Empty    CellKind = iota
	Wire              // carries power, decaying 15 → 0 with distance
	Source            // emits MaxPower while on
	Lamp              // lit while receiving power
	Repeater          // re-emits full power a configurable delay after its input rises
	Inverter          // emits power iff its input was unpowered last step
)

// MaxPower is the highest power level; wire power decays by one per cell.
const MaxPower = 15

// String implements fmt.Stringer.
func (k CellKind) String() string {
	switch k {
	case Empty:
		return "empty"
	case Wire:
		return "wire"
	case Source:
		return "source"
	case Lamp:
		return "lamp"
	case Repeater:
		return "repeater"
	case Inverter:
		return "inverter"
	}
	return fmt.Sprintf("cellkind(%d)", uint8(k))
}

// Cell is one grid cell: immutable wiring (Kind, Delay) plus mutable
// simulation state (Power, On, Timer).
type Cell struct {
	Kind  CellKind
	Delay uint8 // Repeater: ticks of sustained input before the output flips

	// Mutable state.
	Power uint8 // Wire: current power level
	On    bool  // Source/Lamp/Repeater/Inverter: output or lit state
	Timer uint8 // Repeater: consecutive ticks the input has disagreed with the output
}

// Construct is a rectangular W×H grid of cells simulated in lockstep with
// the game (one Step per game tick when simulated locally).
type Construct struct {
	w, h  int
	cells []Cell
	step  uint64 // steps executed since construction
}

// New returns an empty construct with the given grid dimensions.
func New(w, h int) *Construct {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("sc: invalid construct size %dx%d", w, h))
	}
	return &Construct{w: w, h: h, cells: make([]Cell, w*h)}
}

// Size returns the grid dimensions.
func (c *Construct) Size() (w, h int) { return c.w, c.h }

// Steps returns the number of Step calls executed on this instance.
func (c *Construct) Steps() uint64 { return c.step }

func (c *Construct) idx(x, y int) int { return y*c.w + x }

// At returns the cell at (x, y); out-of-range coordinates return an Empty
// cell.
func (c *Construct) At(x, y int) Cell {
	if x < 0 || x >= c.w || y < 0 || y >= c.h {
		return Cell{}
	}
	return c.cells[c.idx(x, y)]
}

// Set places a cell at (x, y). Out-of-range placements are ignored.
func (c *Construct) Set(x, y int, cell Cell) {
	if x < 0 || x >= c.w || y < 0 || y >= c.h {
		return
	}
	c.cells[c.idx(x, y)] = cell
}

// BlockCount returns the number of non-empty cells: the construct's size in
// blocks, the metric the paper uses for §IV-G (252- and 484-block
// constructs).
func (c *Construct) BlockCount() int {
	n := 0
	for i := range c.cells {
		if c.cells[i].Kind != Empty {
			n++
		}
	}
	return n
}

// Clone returns a deep copy sharing no state with the receiver.
func (c *Construct) Clone() *Construct {
	out := &Construct{w: c.w, h: c.h, step: c.step, cells: make([]Cell, len(c.cells))}
	copy(out.cells, c.cells)
	return out
}

var neighborOffsets = [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// Step advances the construct by one simulation step and returns the number
// of work units performed (cells visited during power propagation plus
// component updates). The update is synchronous and two-phase:
//
//  1. The power field is recomputed: every emitting component (Source on,
//     Repeater on, Inverter on) injects MaxPower into adjacent wires, and
//     power spreads through wire cells decaying by one per cell.
//  2. Components sample their inputs (the max power in the four adjacent
//     cells) and update: lamps light, repeater timers advance, inverters
//     invert. New outputs become visible to the power field at the next
//     step, so feedback loops oscillate rather than racing.
func (c *Construct) Step() int {
	work := c.propagatePower()
	// Phase 2: component updates against the settled power field.
	for i := range c.cells {
		cell := &c.cells[i]
		switch cell.Kind {
		case Lamp, Repeater, Inverter:
			x, y := i%c.w, i/c.w
			in := c.inputPower(x, y)
			work++
			switch cell.Kind {
			case Lamp:
				cell.On = in > 0
			case Inverter:
				cell.On = in == 0
			case Repeater:
				want := in > 0
				if want != cell.On {
					cell.Timer++
					if cell.Timer >= cell.Delay {
						cell.On = want
						cell.Timer = 0
					}
				} else {
					cell.Timer = 0
				}
			}
		}
	}
	c.step++
	return work
}

// propagatePower recomputes wire power levels from the current component
// outputs and returns the number of cells visited.
func (c *Construct) propagatePower() int {
	work := 0
	// Reset wire power, then multi-source BFS from emitters by descending
	// power level (bucketed by power, 15 levels).
	var frontier [MaxPower + 1][]int
	for i := range c.cells {
		cell := &c.cells[i]
		switch cell.Kind {
		case Wire:
			cell.Power = 0
		case Source, Repeater, Inverter:
			if cell.On {
				frontier[MaxPower] = append(frontier[MaxPower], i)
			}
		}
		work++
	}
	for p := MaxPower; p > 0; p-- {
		for _, i := range frontier[p] {
			x, y := i%c.w, i/c.w
			for _, d := range neighborOffsets {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= c.w || ny < 0 || ny >= c.h {
					continue
				}
				ni := c.idx(nx, ny)
				n := &c.cells[ni]
				work++
				if n.Kind == Wire && int(n.Power) < p-1 {
					n.Power = uint8(p - 1)
					frontier[p-1] = append(frontier[p-1], ni)
				}
			}
		}
	}
	return work
}

// inputPower returns the strongest power signal adjacent to (x, y): wire
// power, or MaxPower next to an emitting component.
func (c *Construct) inputPower(x, y int) int {
	in := 0
	for _, d := range neighborOffsets {
		n := c.At(x+d[0], y+d[1])
		var p int
		switch n.Kind {
		case Wire:
			p = int(n.Power)
		case Source, Repeater, Inverter:
			if n.On {
				p = MaxPower
			}
		}
		if p > in {
			in = p
		}
	}
	return in
}

// --- State snapshots --------------------------------------------------------

// StateVector is a canonical encoding of a construct's mutable state
// (power levels, on/off flags, timers) in cell order. Two constructs with
// identical wiring and equal StateVectors behave identically forever —
// Step is a pure function of the state vector.
type StateVector []byte

// ErrStateMismatch is returned by SetState when the vector does not match
// the construct's layout.
var ErrStateMismatch = errors.New("sc: state vector does not match construct layout")

// State snapshots the construct's mutable state.
func (c *Construct) State() StateVector {
	out := make([]byte, 0, len(c.cells)*2)
	for i := range c.cells {
		cell := &c.cells[i]
		if cell.Kind == Empty {
			continue
		}
		var on byte
		if cell.On {
			on = 1
		}
		out = append(out, cell.Power, on<<7|cell.Timer&0x7f)
	}
	return out
}

// SetState restores a snapshot previously produced by State on a construct
// with identical wiring.
func (c *Construct) SetState(s StateVector) error {
	n := 0
	for i := range c.cells {
		if c.cells[i].Kind != Empty {
			n++
		}
	}
	if len(s) != n*2 {
		return fmt.Errorf("%w: have %d bytes, want %d", ErrStateMismatch, len(s), n*2)
	}
	j := 0
	for i := range c.cells {
		cell := &c.cells[i]
		if cell.Kind == Empty {
			continue
		}
		cell.Power = s[j]
		cell.On = s[j+1]&0x80 != 0
		cell.Timer = s[j+1] & 0x7f
		j += 2
	}
	return nil
}

// Hash returns a 64-bit FNV-1a digest of the construct's mutable state,
// used by the loop detector (paper §III-C1) to recognise repeated states.
func (c *Construct) Hash() uint64 {
	h := fnv.New64a()
	h.Write(c.State())
	return h.Sum64()
}

// --- Layout encoding ---------------------------------------------------------

// EncodeLayout serialises the construct's wiring and current state so the
// construct can be shipped to a serverless function (paper §III-C: "passes
// the simulated construct's current state").
func (c *Construct) EncodeLayout() []byte {
	out := make([]byte, 0, 8+len(c.cells)*2)
	out = binary.LittleEndian.AppendUint32(out, uint32(c.w))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.h))
	for i := range c.cells {
		cell := &c.cells[i]
		out = append(out, byte(cell.Kind), cell.Delay)
	}
	return append(out, c.State()...)
}

// DecodeLayout reconstructs a construct from EncodeLayout output.
func DecodeLayout(buf []byte) (*Construct, error) {
	if len(buf) < 8 {
		return nil, errors.New("sc: truncated layout")
	}
	w := int(binary.LittleEndian.Uint32(buf))
	h := int(binary.LittleEndian.Uint32(buf[4:]))
	if w <= 0 || h <= 0 || w*h > 1<<20 {
		return nil, fmt.Errorf("sc: bad layout size %dx%d", w, h)
	}
	if len(buf) < 8+w*h*2 {
		return nil, errors.New("sc: truncated layout cells")
	}
	c := New(w, h)
	off := 8
	for i := range c.cells {
		kind := CellKind(buf[off])
		if kind > Inverter {
			return nil, fmt.Errorf("sc: unknown cell kind %d", kind)
		}
		c.cells[i] = Cell{Kind: kind, Delay: buf[off+1]}
		off += 2
	}
	if err := c.SetState(StateVector(buf[off:])); err != nil {
		return nil, err
	}
	return c, nil
}
