package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimal returns a parseable scenario body with the given extra
// top-level JSON fields spliced in.
func minimal(extra string) string {
	body := `"name": "t", "duration": "30s"`
	if extra != "" {
		body += ", " + extra
	}
	return "{" + body + "}"
}

func TestParseRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string
	}{
		{"missing name", `{"duration": "30s"}`, "name is required"},
		{"missing duration", `{"name": "t"}`, "duration is required"},
		{"negative duration", `{"name": "t", "duration": "-5s"}`, "negative"},
		{"numeric duration", `{"name": "t", "duration": 30}`, `durations must be strings`},
		{"warmup too long", minimal(`"warmup": "30s"`), "warmup 30s must be shorter"},
		{"unknown field", minimal(`"flet": []`), "unknown field"},
		{"bad world type", minimal(`"world": {"type": "spherical"}`), `world.type must be "flat" or "default"`},
		{"bad profile", minimal(`"world": {"profile": "fortnite"}`), "world.profile must be"},
		{"storage tier without storage", minimal(`"backend": {"storage_tier": "premium"}`), "backend.storage is false"},
		{"bad storage tier", minimal(`"backend": {"storage": true, "storage_tier": "glacier"}`), "storage_tier must be"},
		{"storage and local store", minimal(`"backend": {"storage": true, "local_store": true}`), "mutually exclusive"},
		{"spec_exec without constructs", minimal(`"backend": {"spec_exec": {"tick_lead": 5}}`), "backend.constructs is false"},
		{"construct count zero", minimal(`"constructs": [{"count": 0}]`), "count must be positive"},
		{"construct too small", minimal(`"constructs": [{"count": 1, "blocks": 4}]`), "blocks must be >= 12"},
		{"fleet count zero", minimal(`"fleet": [{"count": 0}]`), "count must be positive"},
		{"fleet unknown behavior", minimal(`"fleet": [{"count": 1, "behavior": "Z9"}]`), `unknown behavior "Z9"`},
		{"fleet joins too late", minimal(`"fleet": [{"count": 1, "join_at": "40s"}]`), "past the scenario duration"},
		{"fleet leaves before joining", minimal(`"fleet": [{"count": 1, "join_at": "10s", "leave_at": "5s"}]`), "leave_at 5s must be after join_at"},
		{"fleet leaves past duration", minimal(`"fleet": [{"count": 1, "join_at": "10s", "leave_at": "5m"}]`), "leave_at 5m0s is past the scenario duration"},
		{"stress without bots", minimal(`"stress": {"bots": 0}`), "stress.bots must be positive"},
		{"stress unknown behavior", minimal(`"stress": {"bots": 5, "behaviors": {"XX": 1}}`), `unknown behavior "XX"`},
		{"stress bad weight", minimal(`"stress": {"bots": 5, "behaviors": {"A": -1}}`), "weight must be positive"},
		{"churn without session", minimal(`"stress": {"bots": 5, "churn": {}}`), "mean_session is required"},
		{"unknown event kind", minimal(`"events": [{"at": "1s", "kind": "meteor_strike"}]`), `unknown event kind "meteor_strike"`},
		{"stray field for kind", minimal(`"events": [{"at": "1s", "kind": "disconnect", "count": 5, "behavior": "R"}]`), `field "behavior" does not apply`},
		{"stray chaos knob", minimal(`"backend": {"terrain": true}, "events": [{"at": "1s", "kind": "cold_start_storm", "failure_rate": 0.5}]`), `field "failure_rate" does not apply`},
		{"out of order events", minimal(`"events": [
			{"at": "10s", "kind": "flash_crowd", "count": 1},
			{"at": "5s", "kind": "disconnect", "count": 1}]`), "timestamps must be non-decreasing"},
		{"event past duration", minimal(`"events": [{"at": "10m", "kind": "flash_crowd", "count": 1}]`), "past the scenario duration"},
		{"flash crowd without count", minimal(`"events": [{"at": "1s", "kind": "flash_crowd"}]`), "count must be positive"},
		{"faas chaos without functions", minimal(`"events": [{"at": "1s", "kind": "faas_chaos", "duration": "5s", "failure_rate": 0.5}]`), "no serverless function backend"},
		{"faas chaos without knobs", minimal(`"backend": {"constructs": true}, "events": [{"at": "1s", "kind": "faas_chaos", "duration": "5s"}]`), "set failure_rate, latency_factor, and/or force_cold"},
		{"faas chaos bad rate", minimal(`"backend": {"constructs": true}, "events": [{"at": "1s", "kind": "faas_chaos", "duration": "5s", "failure_rate": 1.5}]`), "failure_rate must be in [0, 1]"},
		{"storage chaos without store", minimal(`"events": [{"at": "1s", "kind": "storage_chaos", "duration": "5s", "error_rate": 0.1}]`), "no storage backend"},
		{"overlapping chaos windows", minimal(`"backend": {"constructs": true}, "events": [
			{"at": "1s", "kind": "faas_chaos", "duration": "10s", "failure_rate": 0.5},
			{"at": "5s", "kind": "faas_chaos", "duration": "2s", "failure_rate": 0.1}]`), "overlaps the previous faas_chaos window"},
		{"flip without storage", minimal(`"events": [{"at": "1s", "kind": "flip_storage", "target": "local"}]`), "requires backend.storage"},
		{"flip bad target", minimal(`"backend": {"storage": true}, "events": [{"at": "1s", "kind": "flip_storage", "target": "s3"}]`), `target must be "local" or "serverless"`},
		{"unknown metric", minimal(`"assertions": [{"metric": "fps", "op": "<", "value": 1}]`), `unknown metric "fps"`},
		{"metric needs storage", minimal(`"assertions": [{"metric": "cache_hit_rate", "op": ">", "value": 0}]`), "requires backend.storage"},
		{"metric needs constructs", minimal(`"assertions": [{"metric": "spec_efficiency_median", "op": ">", "value": 0}]`), "requires backend.constructs"},
		{"bad op", minimal(`"assertions": [{"metric": "ticks_total", "op": "==", "value": 1}]`), "op must be one of"},
		{"too many shards", minimal(`"shards": 100`), "shards must be in [0, 64]"},
		{"fleet shard without shards", minimal(`"fleet": [{"count": 1, "shard": 1}]`), "shard placement requires shards > 1"},
		{"fleet shard out of range", minimal(`"shards": 2, "fleet": [{"count": 1, "shard": 5}]`), "shard 5 out of range"},
		{"spread without shards", minimal(`"stress": {"bots": 5, "placement": "spread"}`), `"spread" requires shards > 1`},
		{"bad placement", minimal(`"stress": {"bots": 5, "placement": "corners"}`), "placement must be"},
		{"flip on sharded cluster", minimal(`"shards": 2, "backend": {"storage": true}, "events": [{"at": "1s", "kind": "flip_storage", "target": "local"}]`), "not supported on a sharded cluster"},
		{"cluster metric without shards", minimal(`"assertions": [{"metric": "handoffs", "op": ">", "value": 0}]`), "requires shards > 1"},
		{"shard metric without shards", minimal(`"assertions": [{"metric": "shard0_tick_p99_ms", "op": "<", "value": 50}]`), "requires shards > 1"},
		{"shard metric out of range", minimal(`"shards": 2, "assertions": [{"metric": "shard7_ticks_total", "op": ">", "value": 0}]`), "names shard 7 but the scenario reaches at most 2"},
		{"unknown shard metric base", minimal(`"shards": 2, "assertions": [{"metric": "shard0_fps", "op": ">", "value": 0}]`), `unknown metric "shard0_fps"`},
		{"prewrite without store", minimal(`"prewrite": {"duration": "10s", "fleet": [{"count": 1}]}`), "prewrite requires a storage backend"},
		{"prewrite without fleet", minimal(`"backend": {"storage": true}, "prewrite": {"duration": "10s", "fleet": []}`), "prewrite.fleet is required"},
		{"prewrite fleet joins late", minimal(`"backend": {"storage": true}, "prewrite": {"duration": "10s", "fleet": [{"count": 1, "join_at": "20s"}]}`), "past the prewrite duration"},
		{"chaos function unknown", minimal(`"backend": {"constructs": true}, "events": [{"at": "1s", "kind": "faas_chaos", "duration": "5s", "failure_rate": 0.5, "function": "mine-bitcoin"}]`), `unknown function "mine-bitcoin"`},
		{"chaos function needs backend", minimal(`"backend": {"constructs": true}, "events": [{"at": "1s", "kind": "faas_chaos", "duration": "5s", "failure_rate": 0.5, "function": "generate-terrain"}]`), `requires backend.terrain`},
		{"function on wrong kind", minimal(`"backend": {"storage": true}, "events": [{"at": "1s", "kind": "storage_chaos", "duration": "5s", "error_rate": 0.1, "function": "generate-terrain"}]`), `field "function" does not apply`},
		{"window on counter metric", minimal(`"assertions": [{"metric": "actions", "op": ">", "value": 0, "from": "1s", "to": "2s"}]`), "does not support [from, to] windows"},
		{"window from after to", minimal(`"assertions": [{"metric": "tick_p99_ms", "op": "<", "value": 50, "from": "10s", "to": "5s"}]`), "from 10s must be before to 5s"},
		{"window past duration", minimal(`"assertions": [{"metric": "tick_p99_ms", "op": "<", "value": 50, "from": "10s", "to": "5m"}]`), "past the scenario duration"},
		{"window without to", minimal(`"assertions": [{"metric": "tick_p99_ms", "op": "<", "value": 50, "from": "10s"}]`), "window has from but no to"},
		{"rebalance without shards", minimal(`"rebalance": {}`), "rebalance requires shards > 1"},
		{"rebalance bad threshold", minimal(`"shards": 2, "rebalance": {"threshold": 0.5}`), "rebalance.threshold must be >= 1"},
		{"fleet band without shards", minimal(`"fleet": [{"count": 1, "band": 2}]`), "band placement requires shards > 1"},
		{"fleet band and shard", minimal(`"shards": 2, "fleet": [{"count": 1, "shard": 0, "band": 2}]`), "mutually exclusive"},
		{"crowd band without shards", minimal(`"events": [{"at": "1s", "kind": "flash_crowd", "count": 1, "band": 0}]`), "band placement requires shards > 1"},
		{"shard fail without shards", minimal(`"events": [{"at": "1s", "kind": "shard_fail", "shard": 0}]`), "requires shards > 1"},
		{"shard fail without shard", minimal(`"shards": 2, "events": [{"at": "1s", "kind": "shard_fail"}]`), "shard is required"},
		{"shard fail out of range", minimal(`"shards": 2, "events": [{"at": "1s", "kind": "shard_fail", "shard": 5}]`), "shard 5 out of range"},
		{"shard fail recover before kill", minimal(`"shards": 2, "events": [{"at": "10s", "kind": "shard_fail", "shard": 0, "recover_at": "5s"}]`), "recover_at 5s must be after at 10s"},
		{"shard fail recover past duration", minimal(`"shards": 2, "events": [{"at": "10s", "kind": "shard_fail", "shard": 0, "recover_at": "10m"}]`), "past the scenario duration"},
		{"recover_at on wrong kind", minimal(`"events": [{"at": "1s", "kind": "disconnect", "count": 1, "recover_at": "5s"}]`), `field "recover_at" does not apply`},
		{"shard on wrong kind", minimal(`"events": [{"at": "1s", "kind": "disconnect", "count": 1, "shard": 0}]`), `field "shard" does not apply`},
		{"control metric without shards", minimal(`"assertions": [{"metric": "bands_moved", "op": ">", "value": 0}]`), "requires shards > 1"},
		{"tiles metric without shards", minimal(`"assertions": [{"metric": "tiles_moved", "op": ">", "value": 0}]`), "requires shards > 1"},
		{"windowed imbalance without shards", minimal(`"assertions": [{"metric": "load_imbalance", "op": "<", "value": 2, "from": "1s", "to": "2s"}]`), "requires shards > 1"},
		{"topology without shards", minimal(`"topology": {"kind": "grid", "tiles_x": 2, "tiles_z": 2}`), "topology requires shards > 1"},
		{"topology bad kind", minimal(`"shards": 2, "topology": {"kind": "hex"}`), `topology.kind must be "band" or "grid"`},
		{"grid without dimensions", minimal(`"shards": 2, "topology": {"kind": "grid"}`), "grid topology needs tiles_x and tiles_z"},
		{"grid dimensions too large", minimal(`"shards": 2, "topology": {"kind": "grid", "tiles_x": 100, "tiles_z": 2}`), "grid topology needs tiles_x and tiles_z in [1, 64]"},
		{"band with grid dimensions", minimal(`"shards": 2, "topology": {"tiles_x": 2}`), "only apply to the grid kind"},
		{"bad tile chunks", minimal(`"shards": 2, "topology": {"tile_chunks": 100}`), "tile_chunks must be in [0, 64]"},
		{"more shards than tiles", minimal(`"shards": 8, "topology": {"kind": "grid", "tiles_x": 2, "tiles_z": 2}`), "more shards than tiles"},
		{"fleet tile without shards", minimal(`"fleet": [{"count": 1, "tile": [0, 0]}]`), "tile placement requires shards > 1"},
		{"fleet tile and shard", minimal(`"shards": 2, "fleet": [{"count": 1, "shard": 0, "tile": [0, 0]}]`), "mutually exclusive"},
		{"fleet tile and band", minimal(`"shards": 2, "fleet": [{"count": 1, "band": 1, "tile": [0, 0]}]`), "mutually exclusive"},
		{"fleet tile off grid", minimal(`"shards": 2, "topology": {"kind": "grid", "tiles_x": 2, "tiles_z": 2}, "fleet": [{"count": 1, "tile": [2, 0]}]`), "outside the 2x2 grid"},
		{"fleet band tile off axis", minimal(`"shards": 2, "fleet": [{"count": 1, "tile": [0, 3]}]`), "band-topology tiles lie on z=0"},
		{"fleet band on grid", minimal(`"shards": 2, "topology": {"kind": "grid", "tiles_x": 2, "tiles_z": 2}, "fleet": [{"count": 1, "band": 0}]`), "band placement is a band-topology concept"},
		{"crowd tile off grid", minimal(`"shards": 2, "topology": {"kind": "grid", "tiles_x": 2, "tiles_z": 2}, "events": [{"at": "1s", "kind": "flash_crowd", "count": 1, "tile": [0, 5]}]`), "outside the 2x2 grid"},
		{"crowd tile and band", minimal(`"shards": 2, "events": [{"at": "1s", "kind": "flash_crowd", "count": 1, "tile": [0, 0], "band": 1}]`), "mutually exclusive"},
		{"tile on wrong kind", minimal(`"events": [{"at": "1s", "kind": "disconnect", "count": 1, "tile": [0, 0]}]`), `field "tile" does not apply`},
		{"windowed view_margin bad window", minimal(`"assertions": [{"metric": "view_margin", "op": ">", "value": 0, "from": "10s", "to": "5s"}]`), "from 10s must be before to 5s"},
		{"visibility without shards", minimal(`"visibility": {}`), "visibility requires shards > 1"},
		{"visibility bad margin", minimal(`"shards": 2, "visibility": {"margin": 5000}`), "visibility.margin must be in [0, 1024]"},
		{"ghost metric without visibility", minimal(`"shards": 2, "assertions": [{"metric": "ghost_updates", "op": ">", "value": 0}]`), "requires a visibility section"},
		{"gap metric without visibility", minimal(`"shards": 2, "assertions": [{"metric": "visibility_gap_ticks", "op": "<=", "value": 0}]`), "requires a visibility section"},
		{"checkpoint without shards", minimal(`"checkpoint": "10s"`), "checkpoint requires shards > 1"},
		{"checkpoint without store", minimal(`"shards": 2, "checkpoint": "10s"`), "checkpoint requires a storage backend"},
		{"fleet pos and tile", minimal(`"shards": 2, "fleet": [{"count": 1, "tile": [0, 0], "pos": [5, 5]}]`), "mutually exclusive"},
		{"fleet pos out of range", minimal(`"fleet": [{"count": 1, "pos": [2000000, 0]}]`), "pos coordinate 2000000 out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted invalid spec %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseAppliesDefaults(t *testing.T) {
	spec, err := Parse([]byte(minimal(`
		"fleet": [{"count": 3}],
		"constructs": [{"count": 2}],
		"stress": {"bots": 4, "churn": {"mean_session": "10s"}},
		"events": [
			{"at": "1s", "kind": "flash_crowd", "count": 5},
			{"at": "2s", "kind": "spawn_constructs", "count": 1}
		]`)))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 1 {
		t.Errorf("seed default = %d, want 1", spec.Seed)
	}
	if spec.Warmup.D() != 6*time.Second { // min(10s, 30s/5)
		t.Errorf("warmup default = %s, want 6s", spec.Warmup)
	}
	if spec.World.Type != "flat" || spec.World.Profile != "servo" {
		t.Errorf("world defaults = %+v", spec.World)
	}
	if spec.Fleet[0].Behavior != "A" {
		t.Errorf("fleet behavior default = %q, want A", spec.Fleet[0].Behavior)
	}
	if spec.Constructs[0].Blocks != 250 {
		t.Errorf("construct blocks default = %d, want 250", spec.Constructs[0].Blocks)
	}
	if spec.Stress.Ramp.D() != 30*time.Second/4 {
		t.Errorf("stress ramp default = %s, want duration/4", spec.Stress.Ramp)
	}
	if len(spec.Stress.Behaviors) != 1 || spec.Stress.Behaviors["A"] != 1 {
		t.Errorf("stress behaviors default = %v", spec.Stress.Behaviors)
	}
	if spec.Stress.Churn.MeanPause.D() != 5*time.Second {
		t.Errorf("churn pause default = %s, want 5s", spec.Stress.Churn.MeanPause)
	}
	if spec.Events[0].Behavior != "R" {
		t.Errorf("flash crowd behavior default = %q, want R", spec.Events[0].Behavior)
	}
	if spec.Events[1].Blocks != 250 {
		t.Errorf("spawn blocks default = %d, want 250", spec.Events[1].Blocks)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	if _, err := Parse([]byte(minimal("") + ` {"name": "u"}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestStorageTierDefaultsWithStorage(t *testing.T) {
	spec, err := Parse([]byte(minimal(`"backend": {"storage": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Backend.StorageTier != "premium" {
		t.Errorf("storage tier default = %q, want premium", spec.Backend.StorageTier)
	}
}

func TestColdStartStormDurationDefault(t *testing.T) {
	spec, err := Parse([]byte(minimal(`"backend": {"terrain": true},
		"events": [{"at": "1s", "kind": "cold_start_storm"}]`)))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Events[0].Duration.D() != 30*time.Second {
		t.Errorf("storm duration default = %s, want 30s", spec.Events[0].Duration)
	}
}

func TestFunctionTargetedWindowsMayOverlapPlatformWindows(t *testing.T) {
	// A function-level window occupies its own injector slot, so it may
	// overlap a platform-wide window of the same kind.
	_, err := Parse([]byte(minimal(`"backend": {"constructs": true, "terrain": true}, "events": [
		{"at": "1s", "kind": "faas_chaos", "duration": "20s", "failure_rate": 0.5},
		{"at": "5s", "kind": "faas_chaos", "duration": "5s", "failure_rate": 1, "function": "simulate-construct"}
	]`)))
	if err != nil {
		t.Fatalf("overlapping windows with different targets rejected: %v", err)
	}
}

func TestShardedSpecAccepted(t *testing.T) {
	if _, err := Parse([]byte(minimal(`"shards": 3,
		"topology": {"kind": "grid", "tiles_x": 4, "tiles_z": 4},
		"fleet": [{"count": 2, "tile": [3, 2]}],
		"events": [{"at": "1s", "kind": "flash_crowd", "count": 1, "tile": [0, 3]}],
		"assertions": [
			{"metric": "tiles_moved", "op": ">=", "value": 0},
			{"metric": "view_margin", "op": ">", "value": 0, "from": "1s", "to": "10s"}
		]`))); err != nil {
		t.Fatalf("grid topology spec rejected: %v", err)
	}
	spec, err := Parse([]byte(minimal(`"shards": 4,
		"backend": {"storage": true},
		"fleet": [{"count": 2, "shard": 3}],
		"stress": {"bots": 8, "placement": "spread"},
		"assertions": [
			{"metric": "handoffs", "op": ">=", "value": 0},
			{"metric": "shard3_players_final", "op": ">=", "value": 0},
			{"metric": "tick_p50_ms", "op": "<", "value": 100, "from": "5s", "to": "20s"}
		]`)))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shards != 4 || *spec.Fleet[0].Shard != 3 || spec.Stress.Placement != "spread" {
		t.Fatalf("sharded fields lost: %+v", spec)
	}
	if !spec.Assertions[2].Windowed() {
		t.Fatal("windowed assertion not recognised")
	}
}
