// Elastic shard count: the autoscaling policy subsystem. The PR 3
// controller rebalances load across a *fixed* shard set; this layer
// makes the set itself elastic. Three legs:
//
//   - Lifecycle: AddShard spawns a fresh server over the persisted world
//     through the cluster's ShardBuilder (it acquires its own clock lane
//     and joins the visibility bus and ownership table at a new epoch);
//     RemoveShard drains a shard — every owned tile migrates off through
//     the existing two-phase durable-flush-gated migration, residents
//     follow via the boundary scan — then retires it with zero lost
//     players.
//
//   - Policy: autoscalerTick differences TileLoads snapshots into
//     per-tile demand rates, scales up/down on utilization bands with
//     per-direction cooldowns, and projects rates along their derivative
//     so a flash crowd detected *forming* triggers proactive spreading
//     (PlanBalance multi-tile plans scored on the post-move load map)
//     before latency degrades.
//
//   - Health: every FailShard is recorded by the failure tracker; a
//     crash-looping shard is quarantined — RecoverShard refuses it until
//     a probation window passes, after which the autoscaler re-admits it.
//
// Everything runs on the virtual clock's serial lane in deterministic
// order, so scale events replay byte-identically at every worker-pool
// size.

package cluster

import (
	"time"

	"servo/internal/metrics"
	"servo/internal/mve"
	"servo/internal/world"
)

// Autoscaler defaults.
const (
	// DefaultAutoscaleInterval is the policy check cadence.
	DefaultAutoscaleInterval = 2 * time.Second
	// DefaultHighUtil / DefaultLowUtil are the utilization band edges:
	// projected utilization above High scales up, utilization that would
	// stay under Low even after removing a shard scales down.
	DefaultHighUtil = 0.75
	DefaultLowUtil  = 0.35
	// DefaultShardCapacity is one shard's nominal demand capacity in cost
	// units (actions + chunk stores) per second. Workload-dependent;
	// scenarios calibrate it explicitly.
	DefaultShardCapacity = 500
	// DefaultMaxMoves caps one planning round's migration plan.
	DefaultMaxMoves = 4
)

// AutoscaleConfig tunes the autoscaling policy subsystem.
type AutoscaleConfig struct {
	// Enabled turns the policy loop on. AddShard/RemoveShard work
	// regardless: like failover, lifecycle is driven by explicit calls
	// even when the policy is off.
	Enabled bool
	// MinShards / MaxShards bound the alive shard count the policy may
	// scale to (Min 0 → the boot shard count; Max 0 → twice the boot
	// count). The effective floor is always at least the boot count:
	// only shards added at runtime are ever removed.
	MinShards int
	MaxShards int
	// Interval is the policy check cadence (0 → DefaultAutoscaleInterval).
	Interval time.Duration
	// HighUtil / LowUtil are the utilization band edges (0 → defaults).
	HighUtil float64
	LowUtil  float64
	// ShardCapacity is one shard's demand capacity in cost units per
	// second (0 → DefaultShardCapacity).
	ShardCapacity float64
	// UpCooldown / DownCooldown are the minimum gaps between successive
	// scale-ups / scale-downs (0 → 2× / 6× Interval).
	UpCooldown   time.Duration
	DownCooldown time.Duration
	// Horizon is how far ahead the tile-load derivative is projected when
	// deciding (0 → 2× Interval): the predictive window that catches a
	// flash crowd forming.
	Horizon time.Duration
	// MaxMoves caps each planning round's migration plan (0 → DefaultMaxMoves).
	MaxMoves int
	// MaxFailures crashes within FailureWindow quarantine a shard for
	// Probation (zeros → failure-tracker defaults: 3 in 2m, 2m probation).
	MaxFailures   int
	FailureWindow time.Duration
	Probation     time.Duration
}

// withDefaults fills zero fields; boot is the boot shard count.
func (a AutoscaleConfig) withDefaults(boot int) AutoscaleConfig {
	if a.Interval == 0 {
		a.Interval = DefaultAutoscaleInterval
	}
	if a.MinShards <= 0 {
		a.MinShards = boot
	}
	if a.MaxShards <= 0 {
		a.MaxShards = 2 * boot
	}
	if a.HighUtil == 0 {
		a.HighUtil = DefaultHighUtil
	}
	if a.LowUtil == 0 {
		a.LowUtil = DefaultLowUtil
	}
	if a.ShardCapacity == 0 {
		a.ShardCapacity = DefaultShardCapacity
	}
	if a.UpCooldown == 0 {
		a.UpCooldown = 2 * a.Interval
	}
	if a.DownCooldown == 0 {
		a.DownCooldown = 6 * a.Interval
	}
	if a.Horizon == 0 {
		a.Horizon = 2 * a.Interval
	}
	if a.MaxMoves <= 0 {
		a.MaxMoves = DefaultMaxMoves
	}
	return a
}

// ScaleRecord logs one autoscaling event, in occurrence order. Like the
// handoff and migration logs, the sequence is part of the deterministic
// replay surface.
type ScaleRecord struct {
	// At is the virtual time of the event.
	At time.Duration
	// Kind is "scale-up", "drain" (scale-down started), "scale-down"
	// (drain completed, shard retired), "spread" (proactive plan),
	// "quarantine", or "readmit".
	Kind  string
	Shard int
	// Tiles is the move count of the plan attached to the event (spread
	// plans and drain starts).
	Tiles int
	Epoch uint64
}

// tileRateState tracks one tile's demand between policy ticks.
type tileRateState struct {
	lastTotal int64
	lastRate  float64
}

// AddShard grows the cluster by one shard: the ownership table admits a
// new slot at a new epoch (reusing a retired slot when one exists, so
// scale cycles do not grow the table without bound), the ShardBuilder
// constructs a fresh server over the persisted world on its own clock
// lane, and the shard joins the boundary scan, visibility bus, and chat
// relay like any boot shard. The new shard owns no tiles until a
// migration plan spreads load onto it. Returns the new shard index, or
// -1 on a stopped cluster.
func (c *Cluster) AddShard() int {
	if c.stopped {
		return -1
	}
	idx := c.table.Grow()
	srv := c.build(idx, c.table.View(idx))
	if idx < len(c.shards) {
		// Reused slot: inherit the retired incarnation's tick history so
		// report series keep spanning the whole run, like RecoverShard —
		// and its tile-cost accounting, so the cluster-summed demand
		// signal the policy differences never regresses.
		old := c.shards[idx]
		srv.TickDurations = old.TickDurations
		srv.TickSeries = old.TickSeries
		srv.AdoptTileCosts(old.TileCosts())
		c.shards[idx] = srv
	} else {
		c.shards = append(c.shards, srv)
		c.HandoffsIn = append(c.HandoffsIn, metrics.Counter{})
		c.HandoffsOut = append(c.HandoffsOut, metrics.Counter{})
	}
	src := srv
	srv.SetChatRelay(func(from *mve.Player) int { return c.relayChat(src, from) })
	c.persistTable()
	c.ScaleUps.Inc()
	c.noteShardsActive()
	c.ScaleLog.Append(ScaleRecord{At: c.clock.Now(), Kind: "scale-up", Shard: idx, Epoch: c.table.Epoch()})
	if c.running {
		srv.Start()
	}
	return idx
}

// RemoveShard starts draining shard i toward retirement: every tile it
// owns migrates off through the two-phase durable-flush-gated migration
// (residents follow via the boundary scan), and once the shard owns no
// tiles and hosts no sessions it flushes and retires at a new epoch —
// zero lost players. Only shards added at runtime (index >= the boot
// count) can be removed; the drain is asynchronous and survives
// migration aborts (a destination dying mid-flush) by re-planning every
// scan interval. Reports whether a drain started.
func (c *Cluster) RemoveShard(i int) bool {
	if c.stopped || i < c.table.Base() || i >= len(c.shards) ||
		!c.table.Alive(i) || c.draining[i] || c.table.AliveCount() <= 1 {
		return false
	}
	c.draining[i] = true
	c.ScaleLog.Append(ScaleRecord{At: c.clock.Now(), Kind: "drain", Shard: i, Tiles: len(c.ownedTiles(i)), Epoch: c.table.Epoch()})
	c.drainTick(i)
	return true
}

// Draining reports whether shard i is draining toward retirement.
func (c *Cluster) Draining(i int) bool { return c.draining[i] }

// ownedTiles enumerates the tiles shard i currently owns, in
// space-filling-index order: override tiles, tiles with attributed load,
// and tiles hosting sessions. (On unbounded band topologies zero-state
// tiles defaulting to a boot shard are not enumerable — which is why
// only added shards, who own nothing by default, are removable.)
func (c *Cluster) ownedTiles(i int) []world.TileID {
	seen := make(map[world.TileID]bool)
	var out []world.TileID
	add := func(tile world.TileID) {
		tile = c.table.Canon(tile)
		if !seen[tile] && c.table.Owner(tile) == i {
			seen[tile] = true
			out = append(out, tile)
		}
	}
	for _, ov := range c.table.Overrides() {
		add(ov.Tile)
	}
	for _, tl := range c.TileLoads() {
		add(tl.Tile)
	}
	for _, id := range c.order {
		p := c.players[id]
		if p.inflight {
			continue
		}
		if sess := c.shards[p.shard].Player(p.pid); sess != nil {
			add(c.table.TileOfBlock(sess.Pos()))
		}
	}
	sortTilesByIndex(c.topo, out)
	return out
}

// sortTilesByIndex orders tiles by the topology's space-filling index.
func sortTilesByIndex(topo world.Topology, tiles []world.TileID) {
	for i := 1; i < len(tiles); i++ {
		for j := i; j > 0 && topo.Index(tiles[j]) < topo.Index(tiles[j-1]); j-- {
			tiles[j], tiles[j-1] = tiles[j-1], tiles[j]
		}
	}
}

// drainTick is one step of shard i's drain: push every still-owned tile
// toward the least-loaded healthy shard, and retire once nothing is
// left. Reschedules itself on the scan cadence until done — so a
// migration aborted by a dying destination, or a session handed off onto
// the draining shard mid-drain, is simply retried next tick.
func (c *Cluster) drainTick(i int) {
	if c.stopped || !c.draining[i] {
		return
	}
	if !c.table.Alive(i) {
		// Crashed mid-drain: failover already rerouted its tiles and
		// re-admitted its players; the drain is moot.
		delete(c.draining, i)
		return
	}
	tiles := c.ownedTiles(i)
	if len(tiles) == 0 && c.shards[i].PlayerCount() == 0 && !c.hasSessions(i) {
		c.finishDrain(i)
		return
	}
	for _, tile := range tiles {
		if c.migrating[tile] {
			continue
		}
		dst := c.drainDest(i)
		if dst < 0 {
			break
		}
		c.migrateTile(tile, dst, "drain")
	}
	c.clock.After(c.cfg.ScanInterval, func() { c.drainTick(i) })
}

// finishDrain flushes the drained shard's remaining chunk copies and
// retires it, re-entering the drain loop if a session or tile appeared
// while the flush was in flight.
func (c *Cluster) finishDrain(i int) {
	c.shards[i].FlushOwnedChunks(nil, func() {
		if c.stopped || !c.draining[i] {
			return
		}
		if !c.table.Alive(i) {
			delete(c.draining, i)
			return
		}
		if len(c.ownedTiles(i)) > 0 || c.shards[i].PlayerCount() > 0 || c.hasSessions(i) {
			c.clock.After(c.cfg.ScanInterval, func() { c.drainTick(i) })
			return
		}
		if !c.table.Retire(i) {
			delete(c.draining, i)
			return
		}
		delete(c.draining, i)
		c.persistTable()
		c.shards[i].Stop()
		if c.cfg.OnRetire != nil {
			c.cfg.OnRetire(i)
		}
		c.ScaleDowns.Inc()
		c.noteShardsActive()
		c.ScaleLog.Append(ScaleRecord{At: c.clock.Now(), Kind: "scale-down", Shard: i, Epoch: c.table.Epoch()})
		c.MigrationLog.Append(MigrationRecord{From: i, To: -1, Epoch: c.table.Epoch(), Reason: "retire"})
	})
}

// hasSessions reports whether any cluster session is currently attached
// to shard i (including handoffs in flight out of it).
func (c *Cluster) hasSessions(i int) bool {
	for _, id := range c.order {
		if c.players[id].shard == i {
			return true
		}
	}
	return false
}

// drainDest picks where a draining shard's next tile goes: the alive,
// non-draining shard with the lowest recent tick load, lowest index on
// ties.
func (c *Cluster) drainDest(i int) int {
	best, bestLoad := -1, time.Duration(0)
	for s := range c.shards {
		if s == i || !c.table.Alive(s) || c.draining[s] {
			continue
		}
		l := c.shardLoad(s)
		if best < 0 || l < bestLoad {
			best, bestLoad = s, l
		}
	}
	return best
}

// noteShardsActive samples the alive shard count into the ShardsActive
// series whenever it changed (and tracks the peak). Called from every
// lifecycle transition, so the series is the scale trajectory.
func (c *Cluster) noteShardsActive() {
	n := c.table.AliveCount()
	if n > c.ShardsPeak {
		c.ShardsPeak = n
	}
	if c.ShardsActive.Len() == 0 || c.lastActiveCount != n {
		c.ShardsActive.Add(c.clock.Now(), time.Duration(n))
		c.lastActiveCount = n
	}
}

// autoscalerTick is one policy check. Ordering matters for determinism:
// rates first (they feed every decision), then health re-admission, then
// at most one scale/spread decision per tick.
func (c *Cluster) autoscalerTick() {
	if c.stopped {
		return
	}
	defer c.clock.After(c.auto.Interval, c.autoscalerTick)
	now := c.clock.Now()
	rates, projected := c.updateTileRates(now)
	c.noteShardsActive()

	// Health: a quarantined shard whose probation expired is re-admitted.
	for i := range c.shards {
		if !c.recoverWanted[i] {
			continue
		}
		if c.tracker != nil && c.tracker.Quarantined(i, now) {
			continue
		}
		delete(c.recoverWanted, i)
		if c.RecoverShard(i) {
			c.ScaleLog.Append(ScaleRecord{At: c.clock.Now(), Kind: "readmit", Shard: i, Epoch: c.table.Epoch()})
		}
	}

	// Stability: let in-flight migrations and drains land before deciding.
	if len(c.migrating) > 0 || len(c.draining) > 0 {
		return
	}
	alive := c.table.AliveCount()
	cap := c.auto.ShardCapacity
	var total, totalProj float64
	for _, r := range rates {
		total += r.Rate
	}
	for _, r := range projected {
		totalProj += r.Rate
	}

	// Scale up when projected utilization crosses the high band: the
	// derivative projection fires while the crowd is still forming. The
	// up-cooldown also gates against the last scale-down: a retirement's
	// drain flushes every dirty chunk, and that store burst reads as a
	// one-tick demand spike that would otherwise whipsaw the policy
	// straight back up.
	if alive < c.auto.MaxShards && now-c.lastScaleUp >= c.auto.UpCooldown &&
		now-c.lastScaleDown >= c.auto.UpCooldown &&
		totalProj/(float64(alive)*cap) > c.auto.HighUtil {
		idx := c.AddShard()
		if idx >= 0 {
			c.lastScaleUp = now
			for _, mv := range PlanBalance(rates, c.planCandidates(), c.topo.Index, c.auto.MaxMoves) {
				c.migrateTile(mv.Tile, mv.To, "scale-up")
			}
			return
		}
	}

	// Proactive spreading: some shard's projected load exceeds its high
	// band while the cluster as a whole is fine — rebalance the forming
	// hotspot before latency degrades. PlanBalance only emits strict
	// post-move-max improvements, so a balanced cluster plans nothing.
	if c.shardOverloaded(projected, cap) {
		plan := PlanBalance(projected, c.planCandidates(), c.topo.Index, c.auto.MaxMoves)
		if len(plan) > 0 {
			for _, mv := range plan {
				c.migrateTile(mv.Tile, mv.To, "spread")
			}
			c.ScaleLog.Append(ScaleRecord{At: c.clock.Now(), Kind: "spread", Shard: plan[0].From, Tiles: len(plan), Epoch: c.table.Epoch()})
			return
		}
	}

	// Scale down when demand would stay under the low band even on one
	// fewer shard (the projected rate guards against shrinking into a
	// rising wave). Highest-index added shard drains first.
	if alive > c.auto.MinShards && now-c.lastScaleDown >= c.auto.DownCooldown &&
		now-c.lastScaleUp >= c.auto.DownCooldown {
		worst := total
		if totalProj > worst {
			worst = totalProj
		}
		if worst/(float64(alive-1)*cap) < c.auto.LowUtil {
			if i := c.removeCandidate(); i >= 0 && c.RemoveShard(i) {
				c.lastScaleDown = now
			}
		}
	}
}

// updateTileRates differences the cumulative TileLoads signal into
// per-tile demand rates (cost units per second) and projects each rate
// along its derivative over the policy horizon. A tile's first
// observation only records its baseline (rate 0): cumulative cost since
// boot is not demand.
func (c *Cluster) updateTileRates(now time.Duration) (cur, proj []TileRate) {
	dt := (now - c.lastRateAt).Seconds()
	c.lastRateAt = now
	horizon := c.auto.Horizon.Seconds()
	for _, tl := range c.TileLoads() {
		total := tl.Actions + tl.Stores
		st, ok := c.rateState[tl.Tile]
		if !ok {
			st = &tileRateState{lastTotal: total}
			c.rateState[tl.Tile] = st
			cur = append(cur, TileRate{Tile: tl.Tile, Owner: tl.Owner})
			proj = append(proj, TileRate{Tile: tl.Tile, Owner: tl.Owner})
			continue
		}
		if total < st.lastTotal {
			// Counter regression (a rebuilt server whose history was not
			// adopted): re-baseline rather than report negative demand —
			// a negative rate here would echo as a derivative spike next
			// tick and whipsaw the policy.
			st.lastTotal, st.lastRate = total, 0
			cur = append(cur, TileRate{Tile: tl.Tile, Owner: tl.Owner})
			proj = append(proj, TileRate{Tile: tl.Tile, Owner: tl.Owner})
			continue
		}
		rate := 0.0
		if dt > 0 {
			rate = float64(total-st.lastTotal) / dt
		}
		deriv := 0.0
		if dt > 0 {
			deriv = (rate - st.lastRate) / dt
		}
		projected := rate + deriv*horizon
		if projected < 0 {
			projected = 0
		}
		st.lastTotal, st.lastRate = total, rate
		cur = append(cur, TileRate{Tile: tl.Tile, Owner: tl.Owner, Rate: rate})
		proj = append(proj, TileRate{Tile: tl.Tile, Owner: tl.Owner, Rate: projected})
	}
	return cur, proj
}

// planCandidates returns the shards a migration plan may route load
// onto: alive and not draining, ascending.
func (c *Cluster) planCandidates() []int {
	var out []int
	for i := range c.shards {
		if c.table.Alive(i) && !c.draining[i] {
			out = append(out, i)
		}
	}
	return out
}

// shardOverloaded reports whether some plan candidate's summed rate
// exceeds the high utilization band of one shard's capacity.
func (c *Cluster) shardOverloaded(rates []TileRate, cap float64) bool {
	load := make(map[int]float64)
	for _, r := range rates {
		load[r.Owner] += r.Rate
	}
	for _, i := range c.planCandidates() {
		if load[i] > c.auto.HighUtil*cap {
			return true
		}
	}
	return false
}

// removeCandidate picks the shard a scale-down drains: the
// highest-index alive runtime-added shard, or -1 when only boot shards
// remain.
func (c *Cluster) removeCandidate() int {
	for i := len(c.shards) - 1; i >= c.table.Base(); i-- {
		if c.table.Alive(i) && !c.draining[i] {
			return i
		}
	}
	return -1
}
