// Terrain exploration: five players sprint away from spawn with increasing
// speed (the paper's Sinc workload) on a procedurally generated world.
// Compare serverless terrain generation (Servo) against a local worker
// pool (Opencraft): the Fig. 10 experiment as a runnable demo.
//
//	go run ./examples/terrain-exploration
package main

import (
	"fmt"
	"time"

	"servo"
)

func main() {
	fmt.Println("5 players, speed +1 block/s every 200s, default world")
	fmt.Println("view margin = distance to closest missing terrain (128 = perfect)")
	fmt.Println()
	fmt.Printf("%-8s %-12s %-24s %-24s\n", "t", "speed", "Servo view margin", "Opencraft view margin")

	servoInst := newInst(true)
	defer servoInst.Stop()
	localInst := newInst(false)
	defer localInst.Stop()

	step := 50 * time.Second
	for i := 1; i <= 12; i++ {
		servoInst.Run(step)
		localInst.Run(step)
		t := time.Duration(i) * step
		speed := 1 + int(t/(200*time.Second))
		fmt.Printf("%-8s %-12d %-24d %-24d\n",
			t.Truncate(time.Second), speed, servoInst.ViewMargin(), localInst.ViewMargin())
	}

	fmt.Println()
	fmt.Printf("Servo ticks:     %s\n", servoInst.TickStats())
	fmt.Printf("Opencraft ticks: %s\n", localInst.TickStats())
	if fn := servoInst.System().TGFn; fn != nil {
		fmt.Printf("generation functions: %d invocations, mean latency %v\n",
			fn.Invocations.Count(), fn.Latency.Mean())
	}
}

func newInst(serverless bool) *servo.Instance {
	cfg := servo.Config{Seed: 11, WorldType: "default"}
	if serverless {
		cfg.Servo = servo.Serverless{Terrain: true}
	} else {
		cfg.Profile = servo.Opencraft
	}
	inst := servo.NewInstance(cfg)
	for i := 0; i < 5; i++ {
		inst.Connect(fmt.Sprintf("runner-%d", i), servo.BehaviorSinc)
	}
	return inst
}
