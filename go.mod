module servo

go 1.24
