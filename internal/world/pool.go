package world

// ChunkPool is a bounded freelist of Chunk values for the chunk-churn fast
// path: generation storms, store round-trips and far-chunk unloads move a
// 128 KiB Chunk per event, and without recycling every one is a fresh heap
// allocation. The pool is deliberately not concurrency-safe — each shard
// owns one, and all Get/Put calls happen on that shard's lane (or inside
// its ordered commit drain), which the lane scheduler already serialises.
//
// Put fully zeroes the chunk before shelving it, so Get is semantically
// identical to NewChunk: a pooled chunk is indistinguishable from a fresh
// one (all-air blocks, zero Version/GenWork). All methods are nil-safe; a
// nil *ChunkPool degrades to plain allocation.
type ChunkPool struct {
	free []*Chunk
	max  int

	// Recycled counts Gets served from the freelist; Fresh counts Gets
	// that fell through to allocation. Visible for tests and benchmarks.
	Recycled int
	Fresh    int
}

// DefaultChunkPoolCap bounds the freelist when NewChunkPool is given a
// non-positive capacity: enough to absorb an unload sweep's worth of
// chunks (~a view rectangle per player) without pinning unbounded memory.
const DefaultChunkPoolCap = 256

// NewChunkPool returns a pool holding at most max recycled chunks
// (DefaultChunkPoolCap if max <= 0).
func NewChunkPool(max int) *ChunkPool {
	if max <= 0 {
		max = DefaultChunkPoolCap
	}
	return &ChunkPool{max: max}
}

// Get returns a chunk positioned at pos: recycled from the freelist when
// one is available, freshly allocated otherwise. Either way the chunk is
// empty (all air) with zero Version and GenWork.
func (p *ChunkPool) Get(pos ChunkPos) *Chunk {
	if p == nil {
		return NewChunk(pos)
	}
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Recycled++
		c.Pos = pos
		return c
	}
	p.Fresh++
	return NewChunk(pos)
}

// Put resets c to the zero chunk and shelves it for reuse. Chunks beyond
// the pool's capacity are dropped for the GC to take. The caller must not
// retain c after Put — in particular, a chunk must not be Put while a
// deferred commit closure still references it (e.g. a pending store
// write); persistence paths recycle inside the same commit, after the
// write.
func (p *ChunkPool) Put(c *Chunk) {
	if p == nil || c == nil || len(p.free) >= p.max {
		return
	}
	*c = Chunk{}
	p.free = append(p.free, c)
}

// Len returns the number of chunks currently shelved.
func (p *ChunkPool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
