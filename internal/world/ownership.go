// Dynamic region ownership: the control-plane state behind elastic
// sharding. The static Partition freezes band → shard assignment into the
// interleave computed at boot; an OwnershipTable turns that assignment
// into runtime state — band → owning shard, versioned by an epoch
// counter — so a cluster controller can migrate bands between shards
// (live rebalancing) and reroute a failed shard's bands to survivors
// (failover) without rebuilding servers. Shard regions hold a pointer to
// the shared table (Region.Table), so ownership-gated chunk persistence
// consults the live assignment on every lookup.

package world

import (
	"encoding/binary"
	"errors"
	"sort"
)

// OwnershipTable maps region bands to owning shards at runtime. The
// default assignment is the Partition interleave (floorMod(band, shards));
// overrides record bands migrated away from their default owner, and dead
// shards have their bands rerouted deterministically across the survivors.
// Every ownership change bumps the epoch, so observers can detect that
// routing state moved underneath them.
//
// The table is not safe for concurrent use; the virtual clock serialises
// all access, like the rest of the simulation.
type OwnershipTable struct {
	part  Partition
	epoch uint64
	// overrides are bands migrated away from the default interleave.
	overrides map[int]int
	// dead marks shards whose loops were killed; their bands reroute to
	// the surviving shards until they recover.
	dead map[int]bool
}

// NewOwnershipTable returns a table over the given partition geometry with
// the default interleaved assignment, every shard alive, at epoch 0.
func NewOwnershipTable(shards, bandChunks int) *OwnershipTable {
	return &OwnershipTable{
		part:      Partition{Shards: shards, BandChunks: bandChunks},
		overrides: make(map[int]int),
		dead:      make(map[int]bool),
	}
}

// Partition returns the table's static geometry (band width and shard
// count); ownership itself lives in the table.
func (t *OwnershipTable) Partition() Partition { return t.part }

// Shards returns the shard count.
func (t *OwnershipTable) Shards() int { return t.part.shards() }

// Epoch returns the current ownership epoch: it increases on every
// migration, failover, and recovery.
func (t *OwnershipTable) Epoch() uint64 { return t.epoch }

// Band returns the band index of a chunk column.
func (t *OwnershipTable) Band(cp ChunkPos) int { return t.part.Band(cp) }

// BandOfBlock returns the band index of a block position.
func (t *OwnershipTable) BandOfBlock(b BlockPos) int { return t.part.Band(b.Chunk()) }

// Owner returns the shard currently owning the band: the override if one
// exists, else the default interleave — rerouted deterministically over
// the surviving shards when the assigned owner is dead, so every observer
// agrees on the reassignment without coordination.
func (t *OwnershipTable) Owner(band int) int {
	o, ok := t.overrides[band]
	if !ok {
		o = floorMod(band, t.part.shards())
	}
	if t.dead[o] {
		alive := t.AliveShards()
		if len(alive) > 0 {
			o = alive[floorMod(band, len(alive))]
		}
	}
	return o
}

// ShardOf returns the shard owning the chunk column.
func (t *OwnershipTable) ShardOf(cp ChunkPos) int { return t.Owner(t.part.Band(cp)) }

// ShardOfBlock returns the shard owning the block position.
func (t *OwnershipTable) ShardOfBlock(b BlockPos) int { return t.ShardOf(b.Chunk()) }

// SetOwner migrates a band to the given shard, bumping the epoch. It
// refuses dead or out-of-range targets and is a no-op (no epoch bump) when
// the band's effective owner already is the target.
func (t *OwnershipTable) SetOwner(band, shard int) bool {
	if shard < 0 || shard >= t.part.shards() || t.dead[shard] {
		return false
	}
	if t.Owner(band) == shard {
		return false
	}
	if floorMod(band, t.part.shards()) == shard {
		// Back to its default owner: drop the override instead of pinning.
		delete(t.overrides, band)
	} else {
		t.overrides[band] = shard
	}
	t.epoch++
	return true
}

// SetDead marks a shard dead (its bands reroute to survivors) or alive
// again (its bands revert), bumping the epoch on any change. Killing the
// last alive shard is refused: ownership must always resolve somewhere.
func (t *OwnershipTable) SetDead(shard int, dead bool) bool {
	if shard < 0 || shard >= t.part.shards() || t.dead[shard] == dead {
		return false
	}
	if dead && len(t.AliveShards()) <= 1 {
		return false
	}
	if dead {
		t.dead[shard] = true
	} else {
		delete(t.dead, shard)
	}
	t.epoch++
	return true
}

// Alive reports whether the shard's loop is considered running.
func (t *OwnershipTable) Alive(shard int) bool { return !t.dead[shard] }

// AliveShards returns the alive shard indices in ascending order.
func (t *OwnershipTable) AliveShards() []int {
	out := make([]int, 0, t.part.shards())
	for i := 0; i < t.part.shards(); i++ {
		if !t.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// AliveCount returns the number of alive shards.
func (t *OwnershipTable) AliveCount() int { return len(t.AliveShards()) }

// BandOverride is one persisted deviation from the default interleave.
type BandOverride struct {
	Band, Owner int
}

// Overrides returns the migrated bands in ascending band order.
func (t *OwnershipTable) Overrides() []BandOverride {
	out := make([]BandOverride, 0, len(t.overrides))
	for b, o := range t.overrides {
		out = append(out, BandOverride{Band: b, Owner: o})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Band < out[j].Band })
	return out
}

// View returns shard i's region backed by this live table: Contains
// lookups follow every later migration and failover.
func (t *OwnershipTable) View(i int) Region {
	return Region{Part: t.part, Index: i, Table: t}
}

// ownershipMagic versions the encoding.
const ownershipMagic = uint32(0x53_56_4f_54) // "SVOT"

// Encode serialises the table (geometry, epoch, overrides) for blob-store
// persistence. Liveness is runtime state, not configuration, and is not
// encoded: a restarted cluster starts with every shard alive.
func (t *OwnershipTable) Encode() []byte {
	ov := t.Overrides()
	out := make([]byte, 0, 24+12*len(ov))
	out = binary.LittleEndian.AppendUint32(out, ownershipMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(t.part.shards()))
	out = binary.LittleEndian.AppendUint32(out, uint32(t.part.bandChunks()))
	out = binary.LittleEndian.AppendUint64(out, t.epoch)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ov)))
	for _, e := range ov {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(e.Band)))
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(e.Owner)))
	}
	return out
}

// errBadOwnershipTable reports a corrupt persisted ownership table.
var errBadOwnershipTable = errors.New("world: bad ownership table")

// DecodeOwnershipTable parses an encoded table.
func DecodeOwnershipTable(data []byte) (*OwnershipTable, error) {
	if len(data) < 24 || binary.LittleEndian.Uint32(data) != ownershipMagic {
		return nil, errBadOwnershipTable
	}
	shards := int(binary.LittleEndian.Uint32(data[4:]))
	bandChunks := int(binary.LittleEndian.Uint32(data[8:]))
	t := NewOwnershipTable(shards, bandChunks)
	t.epoch = binary.LittleEndian.Uint64(data[12:])
	n := int(binary.LittleEndian.Uint32(data[20:]))
	buf := data[24:]
	if len(buf) < 8*n {
		return nil, errBadOwnershipTable
	}
	for i := 0; i < n; i++ {
		band := int(int32(binary.LittleEndian.Uint32(buf)))
		owner := int(int32(binary.LittleEndian.Uint32(buf[4:])))
		if owner < 0 || owner >= t.part.shards() {
			return nil, errBadOwnershipTable
		}
		t.overrides[band] = owner
		buf = buf[8:]
	}
	return t, nil
}

// Adopt merges a persisted table into this one: overrides and epoch carry
// over when the geometry matches and the persisted epoch is newer (a
// cluster restarting over an existing world resumes its ownership history
// instead of resetting it). Liveness is never adopted. Reports whether
// anything changed.
func (t *OwnershipTable) Adopt(dec *OwnershipTable) bool {
	if dec == nil || dec.part.shards() != t.part.shards() ||
		dec.part.bandChunks() != t.part.bandChunks() || dec.epoch <= t.epoch {
		return false
	}
	t.overrides = make(map[int]int, len(dec.overrides))
	for b, o := range dec.overrides {
		t.overrides[b] = o
	}
	t.epoch = dec.epoch
	return true
}
