package netproto

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"servo/internal/terrain"
	"servo/internal/world"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	enc := Encode(m)
	got, err := Decode(enc[4:])
	if err != nil {
		t.Fatalf("decode %v: %v", m.Type, err)
	}
	return got
}

func TestEncodeDecodeAllMessageTypes(t *testing.T) {
	msgs := []Message{
		{Type: MsgJoin, Name: "alice"},
		{Type: MsgMove, DestX: 1.5, DestZ: -2.25, Speed: 3.75},
		{Type: MsgPlaceBlock, Pos: world.BlockPos{X: -5, Y: 64, Z: 9},
			Block: world.Block{ID: world.Lamp, Data: 7}},
		{Type: MsgBreakBlock, Pos: world.BlockPos{X: 1, Y: 2, Z: 3}},
		{Type: MsgChat, Name: "bob", Text: "hello world"},
		{Type: MsgSetInventory, Item: 12},
		{Type: MsgPing, Nonce: 0xdeadbeef},
		{Type: MsgPong, Nonce: 42},
		{Type: MsgWelcome, PlayerID: 17},
		{Type: MsgChunkData, ChunkData: []byte{1, 2, 3, 4, 5}},
		{Type: MsgChatBroadcast, Name: "carol", Text: "hi"},
		{Type: MsgStateUpdate, Tick: 999, Avatars: []AvatarState{
			{ID: 1, X: 0.5, Z: -0.5}, {ID: 2, X: 100, Z: 200},
		}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", m.Type, got, m)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"unknown type": {200},
		"short move":   {byte(MsgMove), 1, 2},
		"short join":   {byte(MsgJoin), 10, 0, 'a'},
		"short chunk":  {byte(MsgChunkData), 100, 0, 0, 0, 1, 2},
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestReaderFraming(t *testing.T) {
	var buf bytes.Buffer
	want := []Message{
		{Type: MsgJoin, Name: "p1"},
		{Type: MsgPing, Nonce: 7},
		{Type: MsgChat, Name: "p1", Text: "msg"},
	}
	for _, m := range want {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, w := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("message %d: got %+v want %+v", i, got, w)
		}
	}
	if _, err := r.Next(); err != io.EOF && err != io.ErrUnexpectedEOF {
		t.Fatalf("after stream end: %v", err)
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB frame
	if _, err := NewReader(&buf).Next(); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestChunkDataCarriesRealChunk(t *testing.T) {
	c := (terrain.Default{Seed: 5}).Generate(world.ChunkPos{X: 2, Z: -3})
	m := roundTrip(t, Message{Type: MsgChunkData, ChunkData: c.Encode()})
	dec, err := world.DecodeChunk(m.ChunkData)
	if err != nil {
		t.Fatalf("chunk decode: %v", err)
	}
	if !dec.Equal(c) {
		t.Fatal("chunk corrupted in transit")
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan Message, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := NewReader(conn)
		m, err := r.Next()
		if err != nil {
			return
		}
		// Echo a welcome.
		_ = Write(conn, Message{Type: MsgWelcome, PlayerID: 5})
		done <- m
	}()

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Write(conn, Message{Type: MsgJoin, Name: "netbot"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if m.Type != MsgJoin || m.Name != "netbot" {
			t.Fatalf("server got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never received the join")
	}
	reply, err := NewReader(conn).Next()
	if err != nil || reply.Type != MsgWelcome || reply.PlayerID != 5 {
		t.Fatalf("client got %+v (%v)", reply, err)
	}
}

func TestMoveRoundTripQuick(t *testing.T) {
	f := func(x, z, s float64) bool {
		m := Message{Type: MsgMove, DestX: x, DestZ: z, Speed: s}
		enc := Encode(m)
		got, err := Decode(enc[4:])
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgJoin.String() != "join" || MsgChunkData.String() != "chunk" {
		t.Fatal("message type names broken")
	}
	if MsgType(250).String() == "" {
		t.Fatal("unknown type needs fallback name")
	}
}
