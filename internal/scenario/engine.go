package scenario

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"servo/internal/blob"
	"servo/internal/cluster"
	"servo/internal/core"
	"servo/internal/faas"
	"servo/internal/metrics"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/servo/specexec"
	"servo/internal/sim"
	"servo/internal/workload"
	"servo/internal/world"
)

// qosBudget is the paper's tick-duration QoS bound (1/R = 50 ms).
const qosBudget = 50 * time.Millisecond

// scSpacing is the construct grid pitch, matching the paper's §IV-B
// placement (constructs stay within loaded terrain for bounded players).
const scSpacing = 15

// stormEvictPeriod is how often a cold-start storm re-evicts warm pools.
const stormEvictPeriod = time.Second

// prewriteDrain is how long after the write phase stops the engine waits
// for in-flight cache flushes and store writes to land before restarting
// the world over the populated store.
const prewriteDrain = time.Minute

// ref is a session handle valid on either frontend: the single server or
// the sharded cluster.
type ref struct {
	p  *mve.Player
	cp *cluster.Player
}

// front routes session operations to the system under test.
type front struct{ sys *core.System }

func (f front) sharded() bool { return f.sys.Cluster != nil }

// placement says where a player joins: an exact block position, a
// specific tile's center, a shard's home tile, or world spawn.
type placement struct {
	shard int           // -1 = spawn (unless tile or pos is set)
	tile  *world.TileID // tile center placement, finer-grained than shard
	pos   *world.BlockPos
}

// atSpawn is the default placement.
var atSpawn = placement{shard: -1}

// connect joins a player at the placement (shard/tile placement needs a
// sharded system; explicit positions work everywhere).
func (f front) connect(name string, b mve.Behavior, pl placement) ref {
	if cl := f.sys.Cluster; cl != nil {
		if pl.pos != nil {
			return ref{cp: cl.ConnectAt(name, b, *pl.pos)}
		}
		if pl.tile != nil {
			return ref{cp: cl.ConnectAt(name, b, cl.TileCenter(*pl.tile))}
		}
		if pl.shard >= 0 {
			return ref{cp: cl.ConnectAt(name, b, cl.Home(pl.shard))}
		}
		return ref{cp: cl.Connect(name, b)}
	}
	if pl.pos != nil {
		return ref{p: f.sys.Server.ConnectAt(name, b, float64(pl.pos.X), float64(pl.pos.Z))}
	}
	return ref{p: f.sys.Server.Connect(name, b)}
}

// disconnect ends a session, reporting whether it was still live (a
// false return means the player had already vanished — the signal the
// players_lost audit counts).
func (f front) disconnect(r ref) bool {
	if r.cp != nil {
		return f.sys.Cluster.Disconnect(r.cp.ID)
	}
	return f.sys.Server.Disconnect(r.p.ID)
}

func (f front) count() int {
	if cl := f.sys.Cluster; cl != nil {
		return cl.PlayerCount()
	}
	return f.sys.Server.PlayerCount()
}

// newest returns the n most recently joined sessions.
func (f front) newest(n int) []ref {
	var all []ref
	if cl := f.sys.Cluster; cl != nil {
		for _, p := range cl.Players() {
			all = append(all, ref{cp: p})
		}
	} else {
		for _, p := range f.sys.Server.Players() {
			all = append(all, ref{p: p})
		}
	}
	if n > len(all) {
		n = len(all)
	}
	return all[len(all)-n:]
}

func (f front) start() {
	if cl := f.sys.Cluster; cl != nil {
		cl.Start()
		return
	}
	f.sys.Server.Start()
}

func (f front) stop() {
	if cl := f.sys.Cluster; cl != nil {
		cl.Stop()
		return
	}
	f.sys.Server.Stop()
}

// spawnConstruct activates a construct, routed by anchor region when
// sharded.
func (f front) spawnConstruct(c *sc.Construct, anchor world.BlockPos) {
	if cl := f.sys.Cluster; cl != nil {
		cl.SpawnConstruct(c, anchor)
		return
	}
	f.sys.Server.SpawnConstruct(c, anchor)
}

// Runner executes one scenario on a fresh virtual-clock system.
type Runner struct {
	spec *Spec
	log  io.Writer

	loop     *sim.Loop
	sys      *core.System
	front    front
	flip     *flipStore
	localAlt *blob.Store // backing store of the flip's "local" side
	// t0 is the virtual time the measured scenario starts: 0, or the end
	// of the prewrite phase (write + drain).
	t0 time.Duration
	// hrng drives harness-level decisions (behavior mixes, churn session
	// lengths), seeded from the spec so they replay deterministically and
	// stay independent of the simulation clock's random stream.
	hrng *rand.Rand
	// viewSeries samples the system-wide minimum view margin once per
	// second, feeding windowed view_margin assertions (nil unless one
	// exists: the scan over every player's view range is not free).
	viewSeries *metrics.TimeSeries

	scZ      int // next free Z band for construct placement
	crowdSeq int // flash-crowd naming sequence
	peak     int // peak concurrent players

	// joins and leaves audit every measured session: joins counts
	// r.connect calls, leaves counts disconnects that found a live
	// session. joins - leaves - final count = players lost by the system
	// (a session that vanished without the harness disconnecting it),
	// the zero-loss invariant scale and failover scenarios assert on.
	joins, leaves int

	// botSeconds integrates concurrency over the measured window (one
	// virtual-second samples), and wall is the wall-clock time the window
	// took to simulate: together the engine's throughput, bots simulated
	// per wall-second. The sampler only reads the session count, so the
	// virtual run stays deterministic.
	botSeconds float64
	wall       time.Duration

	// Chaos window generations, keyed by target function name ("" = the
	// whole platform / store): when windows of the same target overlap,
	// the newest wins and an older window's end must not clear it.
	faasChaosGen    map[string]int
	storageChaosGen int

	base baseline
}

// Run validates spec (normalising defaults), executes it to completion on
// the virtual clock, and returns the report. log, if non-nil, receives
// progress lines (they are not part of the deterministic report).
func Run(spec *Spec, log io.Writer) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		spec:         spec,
		log:          log,
		hrng:         rand.New(rand.NewSource(spec.Seed ^ 0x5eed0c)),
		faasChaosGen: make(map[string]int),
	}
	r.build()
	r.schedule()
	return r.run(), nil
}

func (r *Runner) logf(format string, args ...any) {
	if r.log != nil {
		fmt.Fprintf(r.log, "[%10s] %s\n", r.loop.Now(), fmt.Sprintf(format, args...))
	}
}

// at schedules fn at d after the measured scenario's start (offset by the
// prewrite phase when one ran).
func (r *Runner) at(d time.Duration, fn func()) { r.loop.At(r.t0+d, fn) }

func profileFor(name string) mve.Profile {
	switch name {
	case "opencraft":
		return mve.ProfileOpencraft
	case "minecraft":
		return mve.ProfileMinecraft
	}
	return mve.ProfileServo
}

func tierFor(name string) blob.Tier {
	switch name {
	case "local":
		return blob.TierLocal
	case "standard":
		return blob.TierStandard
	}
	return blob.TierPremium
}

func hasFlip(spec *Spec) bool {
	for _, e := range spec.Events {
		if e.Kind == EvFlipStorage {
			return true
		}
	}
	return false
}

// build assembles the system under test from the spec.
func (r *Runner) build() {
	spec := r.spec
	r.loop = sim.NewLoop(spec.Seed)
	r.scZ = -105 // construct grid bands start at the spawn region's edge
	cfg := core.Config{
		Seed:         spec.Seed,
		WorldType:    spec.World.Type,
		ViewDistance: spec.World.ViewDistance,
		Profile:      profileFor(spec.World.Profile),
		ServerlessSC: spec.Backend.Constructs,
		ServerlessTG: spec.Backend.Terrain,
		ServerlessRS: spec.Backend.Storage,
		LocalStore:   spec.Backend.LocalStore,
		StorageTier:  tierFor(spec.Backend.StorageTier),
		Shards:       spec.Shards,
		Workers:      spec.Workers,
		PhaseLock:    spec.PhaseLock,
	}
	cfg.TGMaxInflight = spec.Backend.TGMaxInflight
	if gd := spec.Backend.GenDedup; gd != nil && !*gd {
		cfg.DisableGenDedup = true
	}
	if tp := spec.Topology; tp != nil {
		built, err := (world.TopologySpec{
			Kind:       tp.Kind,
			TileChunks: tp.TileChunks,
			TilesX:     tp.TilesX,
			TilesZ:     tp.TilesZ,
		}).Build()
		if err == nil { // Validate has already vetted the geometry
			cfg.Topology = built
		}
	}
	if rb := spec.Rebalance; rb != nil {
		cfg.Rebalance = true
		cfg.RebalanceThreshold = rb.Threshold
		cfg.RebalanceInterval = rb.Interval.D()
	}
	if a := spec.Autoscale; a != nil {
		cfg.Autoscale = cluster.AutoscaleConfig{
			Enabled:       true,
			MinShards:     a.MinShards,
			MaxShards:     a.MaxShards,
			Interval:      a.Interval.D(),
			HighUtil:      a.HighUtil,
			LowUtil:       a.LowUtil,
			ShardCapacity: a.ShardCapacity,
			UpCooldown:    a.UpCooldown.D(),
			DownCooldown:  a.DownCooldown.D(),
			Horizon:       a.Horizon.D(),
			MaxMoves:      a.MaxMoves,
			MaxFailures:   a.MaxFailures,
			FailureWindow: a.FailureWindow.D(),
			Probation:     a.Probation.D(),
		}
	}
	if v := spec.Visibility; v != nil {
		cfg.Visibility = true
		cfg.VisibilityMargin = v.Margin
		cfg.VisibilityInterval = v.Interval.D()
	}
	cfg.CheckpointInterval = spec.Checkpoint.D()
	cfg.LogRetention = spec.LogRetention
	if se := spec.Backend.SpecExec; se != nil {
		sx := specexec.DefaultConfig()
		if se.TickLead != nil {
			sx.TickLead = *se.TickLead
		}
		if se.Steps != nil {
			sx.StepsPerInvocation = *se.Steps
		}
		if se.DetectLoops != nil {
			sx.DetectLoops = *se.DetectLoops
		}
		cfg.SpecExec = sx
	}
	if spec.Prewrite != nil {
		cfg = r.runPrewrite(cfg)
	}
	if hasFlip(spec) {
		r.localAlt = blob.NewStore(r.loop, blob.TierLocal)
		local := core.NewBlobChunkStore(r.localAlt)
		cfg.WrapStore = func(s mve.ChunkStore) mve.ChunkStore {
			r.flip = &flipStore{serverless: s, local: local}
			return r.flip
		}
	}
	r.sys = core.New(r.loop, cfg)
	r.front = front{sys: r.sys}
	for _, g := range spec.Constructs {
		r.placeConstructs(g.Count, g.Blocks)
	}
	r.front.start()
	for _, a := range spec.Assertions {
		if a.Metric == "view_margin" && a.Windowed() {
			r.viewSeries = &metrics.TimeSeries{}
			r.loop.After(time.Second, r.sampleViewMargin)
			break
		}
	}
}

// sampleViewMargin records the distance from the closest player to the
// nearest missing terrain (minimum across shards), once per second: the
// series behind windowed view_margin assertions — the Fig. 10 QoS
// signal, observable over time instead of only at the end of the run.
func (r *Runner) sampleViewMargin() {
	margin := -1
	for _, sh := range r.sys.Shards {
		if vm := sh.Server.MinViewMargin(); margin < 0 || vm < margin {
			margin = vm
		}
	}
	r.viewSeries.Add(r.loop.Now(), time.Duration(margin))
	if r.loop.Now() < r.t0+r.spec.Duration.D() {
		r.loop.After(time.Second, r.sampleViewMargin)
	}
}

// sampleBotSeconds accumulates one virtual second of every live session
// into the bot-seconds integral, once per second over the measured
// window.
func (r *Runner) sampleBotSeconds() {
	r.botSeconds += float64(r.front.count())
	if r.loop.Now() < r.t0+r.spec.Duration.D() {
		r.loop.After(time.Second, r.sampleBotSeconds)
	}
}

// windowViewMargin returns the minimum sampled view margin inside the
// window [from, to] (the QoS floor over the window), or -1 when nothing
// was sampled there.
func (r *Runner) windowViewMargin(from, to time.Duration) float64 {
	min := -1.0
	for _, v := range r.viewSeries.ValuesBetween(r.t0+from, r.t0+to) {
		if min < 0 || float64(v) < min {
			min = float64(v)
		}
	}
	return min
}

// runPrewrite executes the write phase: a throwaway system over a fresh
// store runs the prewrite fleet, stops, flushes its caches, and drains
// in-flight writes. The returned config carries the populated store into
// the measured system, and r.t0 shifts the whole measured schedule past
// the phase — the world-restart hook of the Fig. 13 read phase.
func (r *Runner) runPrewrite(cfg core.Config) core.Config {
	pw := r.spec.Prewrite
	sys := core.New(r.loop, cfg)
	f := front{sys: sys}
	var refs []ref
	for gi := range pw.Fleet {
		g := pw.Fleet[gi]
		gi := gi
		var members []ref
		r.loop.At(g.JoinAt.D(), func() {
			for i := 0; i < g.Count; i++ {
				m := f.connect(fmt.Sprintf("pre%d-%d", gi, i), workload.ForName(g.Behavior), fleetPlacement(g))
				members = append(members, m)
				refs = append(refs, m)
			}
			r.logf("prewrite fleet[%d]: %d %q players joined", gi, g.Count, g.Behavior)
		})
		if g.LeaveAt != 0 {
			r.loop.At(g.LeaveAt.D(), func() {
				for _, m := range members {
					f.disconnect(m)
				}
			})
		}
	}
	f.start()
	r.loop.RunUntil(pw.Duration.D())
	for _, m := range refs {
		f.disconnect(m) // persist player records
	}
	f.stop()
	for _, sh := range sys.Shards {
		if sh.Cache != nil {
			sh.Cache.Flush()
			// The throwaway system is about to be discarded; without this
			// its flusher closures would pin it in memory (and tick) for
			// the whole measured run.
			sh.Cache.StopFlusher()
		}
	}
	r.loop.RunUntil(pw.Duration.D() + prewriteDrain)
	r.t0 = pw.Duration.D() + prewriteDrain
	r.logf("prewrite complete: %d objects persisted; restarting world", sys.Remote.Len())
	cfg.Remote = sys.Remote
	return cfg
}

// fleetPlacement returns a fleet group's join placement. A legacy band
// reference b is the band-topology tile [b, 0] (the z=0 row).
func fleetPlacement(g FleetGroup) placement {
	if g.Pos != nil {
		return placement{shard: -1, pos: &world.BlockPos{X: g.Pos[0], Z: g.Pos[1]}}
	}
	if g.Tile != nil {
		return placement{shard: -1, tile: &world.TileID{X: g.Tile[0], Z: g.Tile[1]}}
	}
	if g.Band != nil {
		return placement{shard: -1, tile: &world.TileID{X: *g.Band}}
	}
	if g.Shard == nil {
		return atSpawn
	}
	return placement{shard: *g.Shard}
}

// placeConstructs activates count constructs of the given size on a grid
// near spawn. The pitch adapts to the construct footprint and every wave
// gets a fresh Z band, so construct storms never overlap earlier
// placements. On a sharded system each construct lands on the shard
// owning its anchor.
func (r *Runner) placeConstructs(count, blocks int) {
	w, h := sc.BuildSized(blocks).Size()
	pitchX, pitchZ := scSpacing, scSpacing
	if w+3 > pitchX {
		pitchX = w + 3
	}
	if h+3 > pitchZ {
		pitchZ = h + 3
	}
	perRow := 210 / pitchX
	if perRow < 1 {
		perRow = 1
	}
	for i := 0; i < count; i++ {
		x := (i%perRow)*pitchX - 105
		z := r.scZ + (i/perRow)*pitchZ
		r.front.spawnConstruct(sc.BuildSized(blocks), world.BlockPos{X: x, Y: 5, Z: z})
	}
	r.scZ += (count + perRow - 1) / perRow * pitchZ
}

// connect joins one player at the placement and tracks the concurrency
// peak and the join audit.
func (r *Runner) connect(name, behavior string, pl placement) ref {
	m := r.front.connect(name, workload.ForName(behavior), pl)
	r.joins++
	if n := r.front.count(); n > r.peak {
		r.peak = n
	}
	return m
}

// disconnect ends one measured session, counting confirmed leaves for
// the players_lost audit.
func (r *Runner) disconnect(m ref) {
	if r.front.disconnect(m) {
		r.leaves++
	}
}

// schedule queues every fleet join/leave, stress bot, and timed event on
// the virtual clock.
func (r *Runner) schedule() {
	spec := r.spec
	for gi := range spec.Fleet {
		g := spec.Fleet[gi]
		gi := gi
		var members []ref
		r.at(g.JoinAt.D(), func() {
			for i := 0; i < g.Count; i++ {
				members = append(members, r.connect(fmt.Sprintf("fleet%d-%d", gi, i), g.Behavior, fleetPlacement(g)))
			}
			r.logf("fleet[%d]: %d %q players joined", gi, g.Count, g.Behavior)
		})
		if g.LeaveAt != 0 {
			r.at(g.LeaveAt.D(), func() {
				for _, m := range members {
					r.disconnect(m)
				}
				r.logf("fleet[%d]: %d players left", gi, len(members))
			})
		}
	}
	if st := spec.Stress; st != nil {
		for i := 0; i < st.Bots; i++ {
			i := i
			joinAt := time.Duration(float64(st.Ramp.D()) * float64(i) / float64(st.Bots))
			r.at(joinAt, func() { r.runBot(i, st) })
		}
	}
	for i := range spec.Events {
		e := spec.Events[i]
		r.at(e.At.D(), func() { r.fire(e) })
	}
}

// pickBehavior draws a behavior name from the stress weights.
func (r *Runner) pickBehavior(st *StressSpec) string {
	names := make([]string, 0, len(st.Behaviors))
	for n := range st.Behaviors {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0.0
	for _, n := range names {
		total += st.Behaviors[n]
	}
	roll := r.hrng.Float64() * total
	for _, n := range names {
		roll -= st.Behaviors[n]
		if roll < 0 {
			return n
		}
	}
	return names[len(names)-1]
}

// botPlacement returns stress bot i's join placement.
func (r *Runner) botPlacement(i int, st *StressSpec) placement {
	if st.Placement != "spread" {
		return atSpawn
	}
	return placement{shard: i % r.spec.Shards}
}

// runBot connects one stress bot (stable identity per index, so rejoins
// resume persisted player data) and, under churn, schedules its session
// end and eventual rejoin.
func (r *Runner) runBot(i int, st *StressSpec) {
	m := r.connect(fmt.Sprintf("bot-%d", i), r.pickBehavior(st), r.botPlacement(i, st))
	if st.Churn == nil {
		return
	}
	session := time.Duration(r.hrng.ExpFloat64() * float64(st.Churn.MeanSession.D()))
	r.loop.After(session, func() {
		r.disconnect(m)
		pause := time.Duration(r.hrng.ExpFloat64() * float64(st.Churn.MeanPause.D()))
		r.loop.After(pause, func() { r.runBot(i, st) })
	})
}

// fire executes one timed event. Validation has already checked that the
// targeted component exists.
func (r *Runner) fire(e Event) {
	switch e.Kind {
	case EvFlashCrowd:
		seq := r.crowdSeq
		r.crowdSeq++
		var tile *world.TileID
		if e.Tile != nil {
			tile = &world.TileID{X: e.Tile[0], Z: e.Tile[1]}
		} else if e.Band != nil {
			tile = &world.TileID{X: *e.Band}
		}
		for i := 0; i < e.Count; i++ {
			r.connect(fmt.Sprintf("crowd%d-%d", seq, i), e.Behavior, placement{shard: -1, tile: tile})
		}
		if tile != nil {
			r.logf("flash crowd: %d %q players joined at %v", e.Count, e.Behavior, *tile)
		} else {
			r.logf("flash crowd: %d %q players joined", e.Count, e.Behavior)
		}
	case EvDisconnect:
		victims := r.front.newest(e.Count)
		for _, m := range victims {
			r.disconnect(m)
		}
		r.logf("disconnect: %d players left", len(victims))
	case EvSpawnSCs:
		r.placeConstructs(e.Count, e.Blocks)
		r.logf("construct storm: %d x %d-block constructs activated", e.Count, e.Blocks)
	case EvFaasChaos:
		r.faasChaosGen[e.Function]++
		gen := r.faasChaosGen[e.Function]
		ch := &faas.Chaos{
			FailureRate:   e.FailureRate,
			LatencyFactor: e.LatencyFactor,
			ForceCold:     e.ForceCold,
		}
		setChaos := func(c *faas.Chaos) {
			if e.Function != "" {
				r.sys.Platform.SetFunctionChaos(e.Function, c)
			} else {
				r.sys.Platform.SetChaos(c)
			}
		}
		setChaos(ch)
		r.loop.After(e.Duration.D(), func() {
			if r.faasChaosGen[e.Function] == gen { // not superseded by a newer window
				setChaos(nil)
				r.logf("faas chaos window ended (target %q)", e.Function)
			}
		})
		target := "platform"
		if e.Function != "" {
			target = e.Function
		}
		r.logf("faas chaos on %s: failure_rate=%g latency_factor=%g for %s", target, e.FailureRate, e.LatencyFactor, e.Duration)
	case EvStorageChaos:
		r.storageChaosGen++
		gen := r.storageChaosGen
		ch := &blob.Chaos{
			ReadErrorRate:  e.ErrorRate,
			WriteErrorRate: e.ErrorRate,
			LatencyFactor:  e.LatencyFactor,
		}
		// The brownout hits every store the server may be talking to,
		// including the flip's local side.
		r.sys.Remote.SetChaos(ch)
		if r.localAlt != nil {
			r.localAlt.SetChaos(ch)
		}
		r.loop.After(e.Duration.D(), func() {
			if r.storageChaosGen == gen { // not superseded by a newer window
				r.sys.Remote.SetChaos(nil)
				if r.localAlt != nil {
					r.localAlt.SetChaos(nil)
				}
				r.logf("storage chaos window ended")
			}
		})
		r.logf("storage brownout: error_rate=%g latency_factor=%g for %s", e.ErrorRate, e.LatencyFactor, e.Duration)
	case EvColdStartStorm:
		end := r.loop.Now() + e.Duration.D()
		var evict func()
		evict = func() {
			n := r.sys.Platform.EvictAllWarm()
			r.logf("cold-start storm: evicted %d warm instances", n)
			if r.loop.Now()+stormEvictPeriod <= end {
				r.loop.After(stormEvictPeriod, evict)
			}
		}
		evict()
	case EvFlipStorage:
		r.flip.useLocal = e.Target == "local"
		r.logf("storage backend flipped to %s", e.Target)
	case EvShardFail:
		shard := *e.Shard
		if r.sys.FailShard(shard) {
			r.logf("shard %d killed: tiles rerouted, players re-admitting (epoch %d)", shard, r.sys.Cluster.Epoch())
		} else {
			r.logf("shard %d kill refused (already dead, or last alive shard)", shard)
		}
		if e.RecoverAt != 0 {
			r.at(e.RecoverAt.D(), func() {
				if r.sys.RecoverShard(shard) {
					r.logf("shard %d recovering: rebuilding over the persisted world", shard)
				}
			})
		}
	}
}

// baseline snapshots every delta-reported counter at the end of warm-up.
// On a sharded system the scalar fields hold sums across shards.
type baseline struct {
	actions, chunksApplied, chunksSent, resumed int64
	chats                                       int64
	discards                                    int64
	scInv, scCold, scFaults                     int64
	tgInv, tgCold, tgFaults                     int64
	tgBackendFailures, genDeduped               int
	cacheHits, cacheMisses, prefetch            int64
	reads, writes, storeFaults                  int64
	handoffs                                    int64
	rebalances, tilesMoved                      int64
	failovers, playersFailedOver                int64
	ghostUpdates, visibilityGaps                int64
	scaleUps, scaleDowns                        int64
	quarantines, tilesDrained                   int64
	handoffsIn, handoffsOut                     []int64
}

func (r *Runner) snapshotBaseline() {
	b := &r.base
	for _, sh := range r.sys.Shards {
		srv := sh.Server
		b.actions += srv.ActionCount.Value()
		b.chunksApplied += srv.ChunksApplied.Value()
		b.chunksSent += srv.ChunksSent.Value()
		b.resumed += srv.ConstructsResumed.Value()
		b.chats += srv.ChatsDelivered.Value()
		if m := sh.SpecExec; m != nil {
			b.discards += m.Discards.Value()
		}
		if tb := sh.TGBackend; tb != nil {
			b.tgBackendFailures += tb.Failures
			b.genDeduped += tb.GenDeduped
		}
		if c := sh.Cache; c != nil {
			b.cacheHits += c.Hits.Value()
			b.cacheMisses += c.Misses.Value()
			b.prefetch += c.PrefetchIssued.Value()
		}
	}
	if f := r.sys.SCFn; f != nil {
		b.scInv = int64(f.Invocations.Count())
		b.scCold = f.ColdStarts.Value()
		b.scFaults = f.FaultsInjected.Value()
	}
	if f := r.sys.TGFn; f != nil {
		b.tgInv = int64(f.Invocations.Count())
		b.tgCold = f.ColdStarts.Value()
		b.tgFaults = f.FaultsInjected.Value()
	}
	if st := r.sys.Remote; st != nil {
		b.reads = st.Reads.Value()
		b.writes = st.Writes.Value()
		b.storeFaults = st.FaultsInjected.Value()
	}
	if st := r.localAlt; st != nil {
		b.reads += st.Reads.Value()
		b.writes += st.Writes.Value()
		b.storeFaults += st.FaultsInjected.Value()
	}
	if cl := r.sys.Cluster; cl != nil {
		b.handoffs = cl.Handoffs.Value()
		b.rebalances = cl.Rebalances.Value()
		b.tilesMoved = cl.TilesMoved.Value()
		b.failovers = cl.Failovers.Value()
		b.playersFailedOver = cl.PlayersFailedOver.Value()
		b.ghostUpdates = cl.GhostUpdates.Value()
		b.visibilityGaps = cl.VisibilityGaps.Value()
		b.scaleUps = cl.ScaleUps.Value()
		b.scaleDowns = cl.ScaleDowns.Value()
		b.quarantines = cl.Quarantines.Value()
		b.tilesDrained = cl.TilesDrained.Value()
		// Membership may have grown past the boot set by now (autoscale
		// fires during warm-up too); the baseline covers whatever exists.
		for i := range r.sys.Shards {
			b.handoffsIn = append(b.handoffsIn, cl.HandoffsIn[i].Value())
			b.handoffsOut = append(b.handoffsOut, cl.HandoffsOut[i].Value())
		}
	}
}

// run drives the scenario: warm up, reset measurement state, run the
// measured window, then collect the report.
func (r *Runner) run() *Report {
	spec := r.spec
	r.loop.RunUntil(r.t0 + spec.Warmup.D())
	r.snapshotBaseline()
	measured := int((spec.Duration - spec.Warmup).D() / r.sys.Server.Config().TickInterval)
	for _, sh := range r.sys.Shards {
		sh.Server.TickDurations = metrics.NewSample(measured)
		if m := sh.SpecExec; m != nil {
			m.Efficiency = nil
		}
	}
	if st := r.sys.Remote; st != nil {
		// Like the tick sample, storage latency percentiles are measured
		// over the post-warm-up window only (boot reads excluded).
		st.ReadLatency = metrics.Sample{}
	}
	if cl := r.sys.Cluster; cl != nil {
		cl.HandoffLatency = metrics.NewSample(4096)
	}
	r.logf("warm-up complete; measuring")
	r.loop.After(time.Second, r.sampleBotSeconds)
	wallStart := time.Now()
	r.loop.RunUntil(r.t0 + spec.Duration.D())
	r.wall = time.Since(wallStart)
	r.front.stop()
	ticks := 0
	for _, sh := range r.sys.Shards {
		ticks += sh.Server.TickDurations.Len()
	}
	r.logf("run complete: %d ticks measured across %d shard(s)", ticks, len(r.sys.Shards))
	return r.collect()
}

// windowTicks gathers per-tick durations from every shard inside the
// window [from, to] (relative to the measured scenario's start).
func (r *Runner) windowTicks(from, to time.Duration) *metrics.Sample {
	s := &metrics.Sample{}
	for _, sh := range r.sys.Shards {
		s.AddAll(sh.Server.TickSeries.ValuesBetween(r.t0+from, r.t0+to))
	}
	return s
}

// windowImbalance recomputes load_imbalance (max/mean of per-shard mean
// tick duration) over the window [from, to]: the assertion hook showing
// imbalance spiking after a hotspot event and decreasing once the
// controller rebalanced. Shards with no ticks in the window (e.g. dead
// during a failover) are excluded.
func (r *Runner) windowImbalance(from, to time.Duration) float64 {
	var loads []float64
	for _, sh := range r.sys.Shards {
		s := &metrics.Sample{}
		s.AddAll(sh.Server.TickSeries.ValuesBetween(r.t0+from, r.t0+to))
		if s.Len() == 0 {
			continue
		}
		loads = append(loads, float64(s.Mean()))
	}
	return metrics.ImbalanceRatio(loads)
}

// tickMetric computes one tick metric over a sample (the shared math
// behind end-of-run values and windowed assertions).
func tickMetric(name string, ticks *metrics.Sample) float64 {
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	total := ticks.Len()
	switch name {
	case "ticks_total":
		return float64(total)
	case "ticks_over_budget":
		return float64(ticks.CountAbove(qosBudget))
	case "over_budget_frac":
		if total == 0 {
			return 0
		}
		return float64(ticks.CountAbove(qosBudget)) / float64(total)
	case "tick_p50_ms":
		return msOf(ticks.Percentile(50))
	case "tick_p90_ms":
		return msOf(ticks.Percentile(90))
	case "tick_p95_ms":
		return msOf(ticks.Percentile(95))
	case "tick_p99_ms":
		return msOf(ticks.Percentile(99))
	case "tick_max_ms":
		return msOf(ticks.Max())
	case "tick_mean_ms":
		return msOf(ticks.Mean())
	}
	return 0
}

// collect computes the metric map, evaluates assertions, and assembles the
// deterministic report.
func (r *Runner) collect() *Report {
	spec := r.spec
	b := &r.base
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	// Pool every shard's post-warm-up ticks for the cluster-wide tick
	// statistics (a single-shard system pools trivially).
	ticks := &metrics.Sample{}
	for _, sh := range r.sys.Shards {
		ticks.AddAll(sh.Server.TickDurations.Values())
	}

	vals := make(map[string]float64)
	for _, name := range []string{
		"ticks_total", "ticks_over_budget", "over_budget_frac",
		"tick_p50_ms", "tick_p90_ms", "tick_p95_ms", "tick_p99_ms",
		"tick_max_ms", "tick_mean_ms",
	} {
		vals[name] = tickMetric(name, ticks)
	}
	vals["players_final"] = float64(r.front.count())
	vals["players_peak"] = float64(r.peak)
	// The zero-loss audit: every join the harness made, minus confirmed
	// leaves, minus whoever is still connected. Positive means the system
	// dropped sessions on the floor (e.g. during a drain or failover);
	// a transient negative can occur when a disconnect raced an in-flight
	// handoff that the run ended before settling.
	vals["players_lost"] = float64(r.joins-r.leaves) - vals["players_final"]

	var actions, chunksApplied, chunksSent, resumed, discards, chats int64
	var cacheHits, cacheMisses, prefetch int64
	var tgBackendFailures, genDeduped, constructs int
	var efficiency []float64
	viewMargin := -1
	for _, sh := range r.sys.Shards {
		srv := sh.Server
		actions += srv.ActionCount.Value()
		chunksApplied += srv.ChunksApplied.Value()
		chunksSent += srv.ChunksSent.Value()
		resumed += srv.ConstructsResumed.Value()
		chats += srv.ChatsDelivered.Value()
		constructs += srv.SCs().Count()
		if vm := srv.MinViewMargin(); viewMargin < 0 || vm < viewMargin {
			viewMargin = vm
		}
		if m := sh.SpecExec; m != nil {
			discards += m.Discards.Value()
			efficiency = append(efficiency, m.Efficiency...)
		}
		if tb := sh.TGBackend; tb != nil {
			tgBackendFailures += tb.Failures
			genDeduped += tb.GenDeduped
		}
		if c := sh.Cache; c != nil {
			cacheHits += c.Hits.Value()
			cacheMisses += c.Misses.Value()
			prefetch += c.PrefetchIssued.Value()
		}
	}
	vals["actions"] = float64(actions - b.actions)
	vals["chats_delivered"] = float64(chats - b.chats)
	vals["chunks_applied"] = float64(chunksApplied - b.chunksApplied)
	vals["chunks_sent"] = float64(chunksSent - b.chunksSent)
	vals["view_margin"] = float64(viewMargin)
	vals["constructs"] = float64(constructs)
	vals["constructs_resumed"] = float64(resumed - b.resumed)

	cost := 0.0
	var coldStarts, faults int64
	if spec.Backend.Constructs {
		vals["spec_efficiency_median"] = medianOf(efficiency)
		vals["invalidations"] = float64(discards - b.discards)
	}
	if f := r.sys.SCFn; f != nil {
		vals["sc_invocations"] = float64(int64(f.Invocations.Count()) - b.scInv)
		scCold := f.ColdStarts.Value() - b.scCold
		vals["sc_cold_starts"] = float64(scCold)
		coldStarts += scCold
		faults += f.FaultsInjected.Value() - b.scFaults
		cost += f.BilledDollars()
	}
	if f := r.sys.TGFn; f != nil {
		vals["tg_invocations"] = float64(int64(f.Invocations.Count()) - b.tgInv)
		tgCold := f.ColdStarts.Value() - b.tgCold
		vals["tg_cold_starts"] = float64(tgCold)
		coldStarts += tgCold
		faults += f.FaultsInjected.Value() - b.tgFaults
		cost += f.BilledDollars()
	}
	if spec.Backend.Terrain {
		vals["tg_failures"] = float64(tgBackendFailures - b.tgBackendFailures)
		vals["gen_deduped"] = float64(genDeduped - b.genDeduped)
	}
	if spec.hasFunctionBackend() {
		vals["cold_starts"] = float64(coldStarts)
		vals["faas_faults"] = float64(faults)
	}
	if r.sys.Cache != nil {
		hits := cacheHits - b.cacheHits
		misses := cacheMisses - b.cacheMisses
		vals["cache_hits"] = float64(hits)
		vals["cache_misses"] = float64(misses)
		if hits+misses > 0 {
			vals["cache_hit_rate"] = float64(hits) / float64(hits+misses)
		} else {
			vals["cache_hit_rate"] = 0
		}
		vals["prefetch_issued"] = float64(prefetch - b.prefetch)
	}
	if st := r.sys.Remote; st != nil {
		reads, writes, storeFaults := st.Reads.Value(), st.Writes.Value(), st.FaultsInjected.Value()
		if alt := r.localAlt; alt != nil { // count the flip's local side too
			reads += alt.Reads.Value()
			writes += alt.Writes.Value()
			storeFaults += alt.FaultsInjected.Value()
			cost += alt.BilledDollars()
		}
		vals["storage_reads"] = float64(reads - b.reads)
		vals["storage_writes"] = float64(writes - b.writes)
		vals["storage_faults"] = float64(storeFaults - b.storeFaults)
		// p99 covers the serverless/remote store only (the flip's local
		// side has local-disk latency and would skew the tail).
		vals["storage_read_p99_ms"] = msOf(st.ReadLatency.Percentile(99))
		cost += st.BilledDollars()
	}
	if cl := r.sys.Cluster; cl != nil {
		vals["shards"] = float64(len(r.sys.Shards))
		vals["handoffs"] = float64(cl.Handoffs.Value() - b.handoffs)
		vals["handoff_mean_ms"] = msOf(cl.HandoffLatency.Mean())
		vals["handoff_p99_ms"] = msOf(cl.HandoffLatency.Percentile(99))
		vals["ownership_epoch"] = float64(cl.Epoch())
		vals["rebalances"] = float64(cl.Rebalances.Value() - b.rebalances)
		vals["tiles_moved"] = float64(cl.TilesMoved.Value() - b.tilesMoved)
		vals["bands_moved"] = vals["tiles_moved"] // PR 3 band-era alias
		vals["failovers"] = float64(cl.Failovers.Value() - b.failovers)
		vals["players_failed_over"] = float64(cl.PlayersFailedOver.Value() - b.playersFailedOver)
		vals["shards_active"] = float64(cl.AliveCount())
		vals["shards_peak"] = float64(cl.ShardsPeak)
		vals["scale_ups"] = float64(cl.ScaleUps.Value() - b.scaleUps)
		vals["scale_downs"] = float64(cl.ScaleDowns.Value() - b.scaleDowns)
		vals["quarantines"] = float64(cl.Quarantines.Value() - b.quarantines)
		vals["tiles_drained"] = float64(cl.TilesDrained.Value() - b.tilesDrained)
		if spec.Visibility != nil {
			vals["ghost_avatars"] = float64(cl.GhostCount())
			vals["ghost_updates"] = float64(cl.GhostUpdates.Value() - b.ghostUpdates)
			vals["visibility_gap_ticks"] = float64(cl.VisibilityGaps.Value() - b.visibilityGaps)
		}
		// Load imbalance: max over shards of mean tick duration, divided
		// by the cross-shard mean (1 = perfectly balanced).
		var loads []float64
		for _, sh := range r.sys.Shards {
			loads = append(loads, float64(sh.Server.TickDurations.Mean()))
		}
		vals["load_imbalance"] = metrics.ImbalanceRatio(loads)
		for i, sh := range r.sys.Shards {
			srv := sh.Server
			vals[fmt.Sprintf("shard%d_ticks_total", i)] = float64(srv.TickDurations.Len())
			vals[fmt.Sprintf("shard%d_tick_p50_ms", i)] = msOf(srv.TickDurations.Percentile(50))
			vals[fmt.Sprintf("shard%d_tick_p99_ms", i)] = msOf(srv.TickDurations.Percentile(99))
			vals[fmt.Sprintf("shard%d_players_final", i)] = float64(srv.PlayerCount())
			// Shards added after warm-up have no baseline row: their
			// counters started at zero inside the measured window.
			var hin, hout int64
			if i < len(b.handoffsIn) {
				hin, hout = b.handoffsIn[i], b.handoffsOut[i]
			}
			vals[fmt.Sprintf("shard%d_handoffs_in", i)] = float64(cl.HandoffsIn[i].Value() - hin)
			vals[fmt.Sprintf("shard%d_handoffs_out", i)] = float64(cl.HandoffsOut[i].Value() - hout)
			// Membership span: the first and last tick this shard slot ever
			// ran (warm-up included), so a report over a dynamic shard set
			// shows when each shard was active. -1 = the slot never ticked.
			if times, _ := srv.TickSeries.Points(); len(times) > 0 {
				vals[fmt.Sprintf("shard%d_first_active_ms", i)] = msOf(times[0])
				vals[fmt.Sprintf("shard%d_last_active_ms", i)] = msOf(times[len(times)-1])
			} else {
				vals[fmt.Sprintf("shard%d_first_active_ms", i)] = -1
				vals[fmt.Sprintf("shard%d_last_active_ms", i)] = -1
			}
		}
	}
	vals["cost_dollars"] = cost

	rep := &Report{Name: spec.Name, Virtual: spec.Duration.D(), Pass: true, Wall: r.wall, BotSeconds: r.botSeconds}
	for i, sh := range r.sys.Shards {
		times, durs := sh.Server.TickSeries.Points()
		series := ShardSeries{Shard: i, Ticks: make([]TickPoint, len(times))}
		for j := range times {
			series.Ticks[j] = TickPoint{At: times[j], Dur: durs[j]}
		}
		rep.Series = append(rep.Series, series)
	}
	if cl := r.sys.Cluster; cl != nil {
		for _, tl := range cl.TileLoads() {
			rep.TileLoads = append(rep.TileLoads, TileLoadRow{
				X: tl.Tile.X, Z: tl.Tile.Z, Owner: tl.Owner,
				Actions: tl.Actions, Stores: tl.Stores,
			})
		}
		times, counts := cl.ShardsActive.Points()
		for j := range times {
			rep.ScaleSeries = append(rep.ScaleSeries, ScalePoint{At: times[j], Count: int(counts[j])})
		}
		for _, ev := range cl.ScaleLog.All() {
			rep.ScaleEvents = append(rep.ScaleEvents, ScaleEventRow{
				At: ev.At, Kind: ev.Kind, Shard: ev.Shard,
				Tiles: ev.Tiles, Epoch: ev.Epoch,
			})
		}
	}
	for _, e := range metricOrder {
		if v, ok := vals[e.Name]; ok {
			rep.Metrics = append(rep.Metrics, Metric{Name: e.Name, Value: v})
		}
	}
	if r.sys.Cluster != nil {
		// Per-shard rollup rows, after the registry metrics, in shard
		// order.
		for i := range r.sys.Shards {
			for _, base := range shardMetricBases {
				name := fmt.Sprintf("shard%d_%s", i, base)
				if v, ok := vals[name]; ok {
					rep.Metrics = append(rep.Metrics, Metric{Name: name, Value: v})
				}
			}
		}
	}
	for _, a := range spec.Assertions {
		actual := vals[a.Metric]
		if a.Windowed() {
			switch a.Metric {
			case "load_imbalance":
				actual = r.windowImbalance(a.From.D(), a.To.D())
			case "view_margin":
				actual = r.windowViewMargin(a.From.D(), a.To.D())
			default:
				actual = tickMetric(a.Metric, r.windowTicks(a.From.D(), a.To.D()))
			}
		}
		c := Check{Assertion: a, Actual: actual, Ok: a.holds(actual)}
		if !c.Ok {
			rep.Pass = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep
}

func medianOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// flipStore switches the server's chunk/player store between the
// serverless stack and a local-disk-class store at runtime (the
// flip_storage event). Chunks absent from the newly active side simply
// regenerate through the normal terrain path.
type flipStore struct {
	serverless, local mve.ChunkStore
	useLocal          bool
}

var (
	_ mve.ChunkStore         = (*flipStore)(nil)
	_ mve.BatchingChunkStore = (*flipStore)(nil)
	_ mve.PlayerStore        = (*flipStore)(nil)
	_ mve.AvatarObserver     = (*flipStore)(nil)
)

func (f *flipStore) cur() mve.ChunkStore {
	if f.useLocal {
		return f.local
	}
	return f.serverless
}

func (f *flipStore) Load(pos world.ChunkPos, cb func(*world.Chunk, bool)) { f.cur().Load(pos, cb) }
func (f *flipStore) Store(c *world.Chunk)                                 { f.cur().Store(c) }

// LoadMany forwards a batched load to whichever side is active, falling
// back to per-position loads if that side has no batch path.
func (f *flipStore) LoadMany(pos []world.ChunkPos, cb func(world.ChunkPos, *world.Chunk, bool)) {
	cur := f.cur()
	if bs, ok := cur.(mve.BatchingChunkStore); ok {
		bs.LoadMany(pos, cb)
		return
	}
	for _, cp := range pos {
		cp := cp
		cur.Load(cp, func(c *world.Chunk, ok bool) { cb(cp, c, ok) })
	}
}

func (f *flipStore) SavePlayer(name string, data []byte) {
	if ps, ok := f.cur().(mve.PlayerStore); ok {
		ps.SavePlayer(name, data)
	}
}

func (f *flipStore) LoadPlayer(name string, cb func([]byte, bool)) {
	if ps, ok := f.cur().(mve.PlayerStore); ok {
		ps.LoadPlayer(name, cb)
		return
	}
	cb(nil, false)
}

func (f *flipStore) ObserveAvatars(positions []world.BlockPos, viewDistance int) {
	if o, ok := f.cur().(mve.AvatarObserver); ok {
		o.ObserveAvatars(positions, viewDistance)
	}
}
