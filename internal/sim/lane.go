// Lane-keyed parallel scheduling for the virtual-time Loop.
//
// A lane is an independent execution track (one per cluster shard): all
// events sharing a timestamp but carrying distinct lanes may execute
// concurrently on a bounded worker pool, while lane-less events (lane 0,
// everything scheduled through the plain Clock surface) keep the strict
// serial order of the classic Loop and act as barriers between waves.
//
// Determinism contract: the observable event stream — execution order of
// callbacks within a lane, RNG draw sequences, and the order in which
// deferred side effects reach shared state — is a pure function of the
// seed and the schedule, independent of the worker-pool size. `-workers 1`
// and `-workers N` produce byte-identical runs because:
//
//   - events within one lane always run serially, in (timestamp, seq)
//     order, on a single goroutine per wave;
//   - each lane owns a private RNG stream derived from the root seed and
//     the lane id, so draws never interleave across lanes;
//   - side effects that touch shared substrate are not executed in the
//     wave at all: lane code wraps them in Commit, and the Loop drains
//     the per-lane commit buffers on the loop thread in ascending lane
//     order after the wave barrier;
//   - events scheduled from inside a wave are buffered per lane and
//     pushed onto the heap in the same ascending lane order, so sequence
//     numbers (the FIFO tie-breaker) are assigned deterministically.
//
// Workers(0) — the default everywhere — bypasses all of this and runs the
// exact legacy serial path.
package sim

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// deferred is an event scheduled from inside a wave, held back until the
// barrier so heap sequence numbers stay deterministic.
type deferred struct {
	at Time
	fn func()
}

// laneState is the Loop-owned state of one lane. It survives the clock
// wrappers handed out by Lane: re-requesting a lane (e.g. when a crashed
// shard is rebuilt) continues the same RNG stream.
type laneState struct {
	id  int
	rng *rand.Rand

	// active is true while the lane is executing inside a wave; it is
	// written by the loop thread before the wave's goroutine starts and
	// after the barrier, so the lane's own goroutine reads it race-free.
	active bool

	wave    []func()   // callbacks of the current wave, in seq order
	pending []deferred // schedule requests made during the wave
	commits []func()   // deferred shared-substrate side effects
	busy    int64      // wall ns spent executing the current wave
}

// BatchStats accumulates the work/span profile of batch execution: WorkNs
// is the total wall time spent inside event callbacks, SpanNs the
// critical path (serial segments plus the longest lane of each wave).
// Work/Span is the speedup the lane schedule exposes — the wall speedup
// an adequately-cored machine realises.
type BatchStats struct {
	WorkNs int64
	SpanNs int64
}

// Speedup returns the work/span ratio (1 when nothing was measured).
func (s BatchStats) Speedup() float64 {
	if s.SpanNs <= 0 {
		return 1
	}
	return float64(s.WorkNs) / float64(s.SpanNs)
}

// Committer is the deferred-side-effect surface of lane-aware clocks.
// Code holding a plain Clock uses the package-level Commit helper, which
// degrades to an immediate call on non-lane clocks.
type Committer interface {
	// Commit runs fn now when called from serial context, or defers it
	// to the post-wave drain (loop thread, ascending lane order) when
	// called from inside a wave.
	Commit(fn func())
}

// Commit runs fn through clock's commit buffer when the clock has one,
// and immediately otherwise. Lane code must route every side effect that
// touches state shared across lanes (blob store, FaaS platform, cluster
// counters and logs) through Commit; on the legacy serial path this
// compiles down to a direct call.
func Commit(clock Clock, fn func()) {
	if c, ok := clock.(Committer); ok {
		c.Commit(fn)
		return
	}
	fn()
}

// LaneClock is a Clock view of one lane of a Loop. Components constructed
// against it schedule lane-tagged events and draw from the lane's private
// RNG stream; from inside a wave, scheduling is buffered until the
// barrier.
type LaneClock struct {
	loop *Loop
	ls   *laneState
}

var (
	_ Clock     = (*LaneClock)(nil)
	_ Committer = (*LaneClock)(nil)
)

// Lane returns the clock of the given lane (> 0; lane 0 is the serial
// lane every plain Loop event runs on). The lane's RNG stream is derived
// from the loop seed and the lane id, and persists across calls.
func (l *Loop) Lane(id int) *LaneClock {
	if id <= 0 {
		panic("sim: lane ids must be > 0 (0 is the serial lane)")
	}
	return &LaneClock{loop: l, ls: l.lane(id)}
}

// lane returns (creating if needed) the state of lane id.
func (l *Loop) lane(id int) *laneState {
	if l.lanes == nil {
		l.lanes = make(map[int]*laneState)
	}
	ls := l.lanes[id]
	if ls == nil {
		ls = &laneState{id: id, rng: rand.New(rand.NewSource(laneSeed(l.seed, id)))}
		l.lanes[id] = ls
	}
	return ls
}

// laneSeed derives the RNG seed of a lane from the root seed: a
// splitmix64-style finalizer so adjacent lane ids get uncorrelated
// streams.
func laneSeed(seed int64, lane int) int64 {
	z := uint64(seed) + uint64(lane)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ID returns the lane id.
func (c *LaneClock) ID() int { return c.ls.id }

// Now implements Clock. The loop's clock is fixed for the duration of a
// batch, so reading it from a wave goroutine is race-free.
func (c *LaneClock) Now() Time { return c.loop.now }

// RNG implements Clock: the lane's private deterministic stream.
func (c *LaneClock) RNG() *rand.Rand { return c.ls.rng }

// After implements Clock: the event carries this lane's tag. From inside
// a wave the request is buffered and pushed at the barrier so sequence
// numbers are assigned in deterministic lane order.
func (c *LaneClock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if c.ls.active {
		c.ls.pending = append(c.ls.pending, deferred{at: c.loop.now + d, fn: fn})
		return
	}
	c.loop.push(c.ls.id, c.loop.now+d, fn)
}

// Commit implements Committer.
func (c *LaneClock) Commit(fn func()) {
	if c.ls.active {
		c.ls.commits = append(c.ls.commits, fn)
		return
	}
	fn()
}

// SetWorkers selects the execution mode: 0 (the default) is the exact
// legacy serial path; n >= 1 enables lane-batched execution on a pool of
// n goroutines. Any n >= 1 produces identical runs — the pool size only
// changes wall time.
func (l *Loop) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	l.workers = n
	if n > 0 && cap(l.sem) != n {
		l.sem = make(chan struct{}, n)
	}
}

// Workers returns the configured pool size (0 = serial mode).
func (l *Loop) Workers() int { return l.workers }

// AtLane schedules fn at absolute time t on the given lane (0 = serial).
func (l *Loop) AtLane(lane int, t Time, fn func()) {
	l.push(lane, t, fn)
}

// AfterLane schedules fn to run d after the current virtual time on the
// given lane (0 = serial).
func (l *Loop) AfterLane(lane int, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	l.push(lane, l.now+d, fn)
}

// BatchStats returns the accumulated work/span profile of StepBatch
// execution since the last reset.
func (l *Loop) BatchStats() BatchStats { return l.stats }

// ResetBatchStats clears the work/span profile.
func (l *Loop) ResetBatchStats() { l.stats = BatchStats{} }

// StepBatch executes every event scheduled at the earliest pending
// timestamp, advancing the clock to it. Maximal consecutive runs of
// lane-tagged events (in seq order) form waves that execute concurrently
// across lanes — serially within each lane — on the worker pool;
// lane-less events execute alone, in their seq position, as barriers.
// It reports whether any event was executed.
func (l *Loop) StepBatch() bool {
	if len(l.queue) == 0 {
		return false
	}
	t := l.queue[0].at
	l.now = t
	batch := l.batch[:0]
	for len(l.queue) > 0 && l.queue[0].at == t {
		batch = append(batch, popEvent(&l.queue))
	}
	for i := 0; i < len(batch); {
		if batch[i].lane == 0 {
			start := time.Now()
			batch[i].fn()
			d := time.Since(start).Nanoseconds()
			l.stats.WorkNs += d
			l.stats.SpanNs += d
			i++
			continue
		}
		j := i
		for j < len(batch) && batch[j].lane != 0 {
			j++
		}
		l.runWave(batch[i:j])
		i = j
	}
	for i := range batch {
		l.recycle(batch[i])
		batch[i] = nil
	}
	l.batch = batch[:0]
	return true
}

// runWave executes one maximal run of lane-tagged events: per-lane groups
// run serially on their own goroutine, lanes run concurrently bounded by
// the pool, and after the barrier each lane's buffered schedule requests
// and commits drain on the loop thread in ascending lane order.
func (l *Loop) runWave(run []*event) {
	groups := l.groups[:0]
	for _, e := range run {
		ls := l.lane(e.lane)
		if !ls.active {
			ls.active = true
			ls.busy = 0
			groups = append(groups, ls)
		}
		ls.wave = append(ls.wave, e.fn)
	}
	if l.sem == nil {
		l.sem = make(chan struct{}, 1)
	}
	var wg sync.WaitGroup
	wg.Add(len(groups))
	for _, g := range groups {
		g := g
		go func() {
			l.sem <- struct{}{}
			start := time.Now()
			for _, fn := range g.wave {
				fn()
			}
			g.busy = time.Since(start).Nanoseconds()
			<-l.sem
			wg.Done()
		}()
	}
	wg.Wait()

	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
	var span int64
	for _, g := range groups {
		// Flip before draining: pendings and commits issued from the
		// drains themselves run in serial context (immediately).
		g.active = false
		l.stats.WorkNs += g.busy
		if g.busy > span {
			span = g.busy
		}
	}
	l.stats.SpanNs += span
	for _, g := range groups {
		g.wave = g.wave[:0]
		for _, p := range g.pending {
			l.push(g.id, p.at, p.fn)
		}
		g.pending = g.pending[:0]
		for _, fn := range g.commits {
			fn()
		}
		g.commits = g.commits[:0]
	}
	l.groups = groups[:0]
}
