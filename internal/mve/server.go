package mve

import (
	"math"
	"slices"
	"sort"
	"time"

	"servo/internal/metrics"
	"servo/internal/sc"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/world"
)

// ChunkStore abstracts chunk persistence: the baselines persist to local
// disk, Servo to cached serverless storage (internal/servo/rstore).
type ChunkStore interface {
	// Load fetches the chunk at pos; ok is false if it was never stored.
	Load(pos world.ChunkPos, cb func(c *world.Chunk, ok bool))
	// Store persists the chunk (asynchronously; write-back allowed).
	Store(c *world.Chunk)
}

// BatchingChunkStore is an optional ChunkStore extension that serves a
// whole tick's worth of loads in one call. The server coalesces every
// chunk requested between flushes into a single LoadMany — one substrate
// event per tick instead of one per chunk — and the store answers each
// position through cb exactly as Load would, in the order given.
type BatchingChunkStore interface {
	LoadMany(pos []world.ChunkPos, cb func(pos world.ChunkPos, c *world.Chunk, ok bool))
}

// AvatarObserver is implemented by stores that pre-fetch based on avatar
// positions (Servo's terrain cache, §III-E).
type AvatarObserver interface {
	ObserveAvatars(positions []world.BlockPos, viewDistance int)
}

// SyncingChunkStore is an optional ChunkStore extension whose writes
// report completion. Ownership migrations gate the ownership flip on the
// source shard's flush landing (FlushOwnedChunks), so a storage brownout
// delays a migration but never loses chunk state.
type SyncingChunkStore interface {
	// StoreThen persists the chunk and calls done once the write has
	// landed in backing storage (retrying through transient faults).
	StoreThen(c *world.Chunk, done func())
}

// Config configures a Server.
type Config struct {
	Profile Profile
	// WorldType is "flat" or "default" (Table I).
	WorldType string
	// Seed drives terrain generation (the clock owns simulation RNG).
	Seed int64
	// ViewDistance in blocks (default 128, the paper's default).
	ViewDistance int
	// TickInterval is 1/R (default 50 ms, R = 20 Hz).
	TickInterval time.Duration
	// Cost overrides the profile's calibrated cost parameters.
	Cost *CostParams
	// SC overrides the profile's construct backend.
	SC SCBackend
	// Terrain overrides the profile's terrain backend.
	Terrain TerrainBackend
	// Store enables chunk persistence.
	Store ChunkStore
	// ChunkPool recycles Chunk allocations through the churn paths
	// (far-chunk unloads, superseded applies). Typically shared with the
	// store and terrain backend so recycled chunks feed their decode
	// paths. Nil disables recycling (plain allocation).
	ChunkPool *world.ChunkPool
	// MaxChunkSendsPerTick throttles per-player chunk serialisation
	// (default 4, as real servers do).
	MaxChunkSendsPerTick int
	// Region is the slice of chunk space this server owns. The zero value
	// owns everything (the unsharded single-server case). A sharded server
	// still loads ghost chunks outside its region when players near a
	// boundary can see them, but only the owning shard persists a chunk,
	// so N shards over one storage substrate never write the same key.
	Region world.Region
	// BootCenters are the block positions whose surroundings (view
	// distance plus the unload margin) are loaded before the server opens.
	// Empty means the world spawn point. A cluster shard boots both spawn
	// and its own region's home band so shard-aware fleet placement does
	// not open with a generation storm.
	BootCenters []world.BlockPos
	// FullDemandRescan disables the incremental terrain-demand cursor:
	// every scan re-walks every player's whole view rect, the
	// pre-incremental behaviour. The observable request/send streams are
	// identical either way — this is the benchmark baseline and the
	// determinism cross-check, not a correctness knob.
	FullDemandRescan bool
	// PhaseLock keeps the tick schedule phase-aligned through overload:
	// after an overlong tick (duration > TickInterval) the next tick
	// snaps to the next global TickInterval boundary instead of running
	// exactly one tick-duration later. Without it one overlong tick
	// phase-shifts the shard against its peers forever, so same-timestamp
	// waves — the parallel scheduler's unit of concurrency — degrade to
	// singletons exactly when the cluster saturates. Virtual-time
	// arithmetic only: byte-identical at every worker-pool size.
	PhaseLock bool
}

// Defaults for Config fields.
const (
	DefaultViewDistance = 128
	DefaultTickInterval = 50 * time.Millisecond
	defaultMaxSends     = 4
	// terrainScanPeriod is how often (in ticks) view-distance demand is
	// recomputed.
	terrainScanPeriod = 5
	// unloadScanPeriod is how often (in ticks) far chunks are unloaded.
	unloadScanPeriod = 100
	// unloadMargin keeps chunks loaded this far beyond view distance.
	unloadMargin = 32
	// bootGraceTicks is the start-up window during which chunk application
	// is free: world loading happens before the server opens to players,
	// so boot bursts must not register as giant first ticks.
	bootGraceTicks = 40
	// PrefetchMargin is how far beyond view distance Servo's store
	// pre-fetches (§III-E: "outside of, but close to, the player's view
	// distance").
	PrefetchMargin = 48
)

// haltedConstruct is a construct whose chunk was unloaded; its simulation
// is halted (§II-A) and resumes when the chunk reloads.
type haltedConstruct struct {
	construct *sc.Construct
	anchor    world.BlockPos
}

// Server is one MVE instance: a world, its players, and the 20 Hz loop.
// It runs entirely on a sim.Clock; it is not safe for concurrent use (the
// clock serialises all access).
type Server struct {
	clock sim.Clock
	cfg   Config
	cost  CostParams

	world   *world.World
	gen     terrain.Generator
	scs     SCBackend
	terrain TerrainBackend
	store   ChunkStore

	players     map[PlayerID]*Player
	playerOrder []PlayerID
	nextPlayer  PlayerID

	// Ghost registry (ghost.go): read-only avatars replicated from
	// neighbouring shards by the cluster's visibility bus.
	ghosts     map[string]*GhostAvatar
	ghostOrder []string
	nextGhost  int64

	// Per-tile cost attribution: actions and chunk stores keyed by the
	// region tile they happened in (nil topology — the unsharded case —
	// disables attribution entirely).
	tileTopo    world.Topology
	tileActions map[world.TileID]int64
	tileStores  map[world.TileID]int64

	// Construct placement: world-footprint → construct id, plus anchors
	// for halting on unload.
	footprint map[world.BlockPos]uint64
	anchors   map[uint64]haltedConstruct
	halted    map[world.ChunkPos][]haltedConstruct

	// requested tracks chunk demand already in flight (store load or
	// generation).
	requested map[world.ChunkPos]bool
	// loadedFromStore queues store-loaded chunks for on-loop application;
	// the backing array is reused across ticks.
	loadedFromStore []*world.Chunk
	// pendingLoads coalesces the chunk-load requests issued since the
	// last flush; flushChunkLoads turns the whole batch into one commit
	// (and, on a BatchingChunkStore, one LoadMany call) instead of one
	// substrate event per chunk.
	pendingLoads []world.ChunkPos
	loadFn       func()
	loadCB       func(pos world.ChunkPos, c *world.Chunk, ok bool)
	// storeBatch groups this tick's persistence writes into one commit
	// (flushFn); recycleBatch holds the chunks to return to the pool once
	// those writes have been issued (stores encode synchronously, so a
	// chunk is recyclable the moment its Store call returns).
	storeBatch   []*world.Chunk
	recycleBatch []*world.Chunk
	flushFn      func()
	pool         *world.ChunkPool
	// drainBuf is the reused per-tick terrain-drain slice (DrainAppend).
	drainBuf []*world.Chunk
	// newlyLoaded accumulates chunk positions applied since the last
	// demand scan: the only chunks a clean-cursor player can newly see
	// (see scanTerrainDemand).
	newlyLoaded []world.ChunkPos

	// Reusable tick-loop scratch, so the steady-state tick allocates
	// nothing. obsBufs double-buffers the avatar positions handed to the
	// store's ObserveAvatars: the hand-off crosses a sim.Commit closure
	// that runs after the wave, so the buffer being filled next scan must
	// not be the one still referenced by the pending commit.
	obsBufs    [2][]world.BlockPos
	obsIdx     int
	obsPending []world.BlockPos
	obsFn      func()
	unloadAll  []world.ChunkPos
	unloadFar  []world.ChunkPos
	unloadIDs  []uint64
	// tickFn is the stored tickOnce method value; rescheduling through it
	// avoids a closure allocation every tick.
	tickFn func()

	tick    uint64
	running bool
	stopped bool

	// chatRelay, when set, fans chat messages out beyond this server
	// (cluster-wide delivery); it returns the number of recipients for
	// cost accounting. Nil keeps the classic local fan-out.
	chatRelay func(from *Player) int

	// Metrics.
	TickDurations  *metrics.Sample
	TickSeries     *metrics.TimeSeries
	ChunksApplied  metrics.Counter
	ChunksSent     metrics.Counter
	ActionCount    metrics.Counter
	ChatsDelivered metrics.Counter
	// TerrainRecomputes counts full per-player demand-rect walks — the
	// incremental scan's cache-miss counter (the engine-tick sibling of
	// the visibility bus's VisRecomputes).
	TerrainRecomputes metrics.Counter
	// ConstructsResumed counts halted constructs whose simulation resumed
	// because their chunk was reloaded (§II-A).
	ConstructsResumed metrics.Counter
}

// NewServer builds a server on clock. Zero-value config fields take the
// documented defaults; the profile defaults the cost table and backends.
func NewServer(clock sim.Clock, cfg Config) *Server {
	if cfg.Profile == 0 {
		cfg.Profile = ProfileOpencraft
	}
	if cfg.ViewDistance == 0 {
		cfg.ViewDistance = DefaultViewDistance
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.MaxChunkSendsPerTick == 0 {
		cfg.MaxChunkSendsPerTick = defaultMaxSends
	}
	cost := Params(cfg.Profile)
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	gen := terrain.ForWorldType(cfg.WorldType, cfg.Seed)
	s := &Server{
		clock:         clock,
		cfg:           cfg,
		cost:          cost,
		world:         world.New(),
		gen:           gen,
		scs:           cfg.SC,
		terrain:       cfg.Terrain,
		store:         cfg.Store,
		players:       make(map[PlayerID]*Player),
		ghosts:        make(map[string]*GhostAvatar),
		footprint:     make(map[world.BlockPos]uint64),
		anchors:       make(map[uint64]haltedConstruct),
		halted:        make(map[world.ChunkPos][]haltedConstruct),
		requested:     make(map[world.ChunkPos]bool),
		TickDurations: metrics.NewSample(16384),
		TickSeries:    &metrics.TimeSeries{},
	}
	s.tickFn = s.tickOnce
	s.pool = cfg.ChunkPool
	// Persistent closures for the per-tick batched commits, so the
	// steady-state tick allocates nothing. loadCB answers one position of
	// a batched load; loadFn issues the whole pending batch (one LoadMany
	// when the store supports it) and resets the buffer — it runs in
	// serial context (commit drain), strictly before the next tick's
	// appends on this shard's lane.
	s.loadCB = func(pos world.ChunkPos, c *world.Chunk, ok bool) {
		if ok {
			s.loadedFromStore = append(s.loadedFromStore, c)
			return
		}
		s.terrain.Request(pos)
	}
	s.loadFn = func() {
		batch := s.pendingLoads
		if bs, ok := s.store.(BatchingChunkStore); ok {
			bs.LoadMany(batch, s.loadCB)
		} else {
			for _, cp := range batch {
				cp := cp
				s.store.Load(cp, func(c *world.Chunk, ok bool) { s.loadCB(cp, c, ok) })
			}
		}
		s.pendingLoads = s.pendingLoads[:0]
	}
	s.flushFn = func() {
		for _, c := range s.storeBatch {
			s.store.Store(c)
		}
		for i := range s.storeBatch {
			s.storeBatch[i] = nil
		}
		s.storeBatch = s.storeBatch[:0]
		for i, c := range s.recycleBatch {
			s.pool.Put(c)
			s.recycleBatch[i] = nil
		}
		s.recycleBatch = s.recycleBatch[:0]
	}
	if cfg.Region.Table != nil {
		s.tileTopo = cfg.Region.Table.Topology()
	} else {
		s.tileTopo = cfg.Region.Topo
	}
	if s.tileTopo != nil {
		s.tileActions = make(map[world.TileID]int64)
		s.tileStores = make(map[world.TileID]int64)
	}
	if s.scs == nil {
		s.scs = NewLocalSC(cost.SCEveryOtherTick)
	}
	if s.terrain == nil {
		s.terrain = NewLocalTerrain(clock, gen)
	}
	// Boot each boot region out to view distance plus the unload margin,
	// as production servers do: players joining at spawn must not trigger
	// a generation storm. Without persistent storage the regions are
	// generated synchronously; with a store they are loaded through the
	// normal storage path (a restarted server reads its world back),
	// which is where the boot-time cold reads of Fig. 13 come from.
	centers := cfg.BootCenters
	if len(centers) == 0 {
		centers = []world.BlockPos{{}}
	}
	for _, center := range centers {
		for _, pos := range world.ChunksWithin(center, cfg.ViewDistance+unloadMargin) {
			if s.world.Loaded(pos) {
				continue // overlapping boot centers
			}
			if s.store != nil {
				s.requestChunk(pos)
			} else {
				s.applyChunk(gen.Generate(pos), false)
			}
		}
	}
	s.flushChunkLoads()
	return s
}

// OwnedRegion returns the slice of chunk space this server owns (the whole
// grid for an unsharded server).
func (s *Server) OwnedRegion() world.Region { return s.cfg.Region }

// owned reports whether this server is the persisting owner of the chunk.
func (s *Server) owned(cp world.ChunkPos) bool { return s.cfg.Region.Contains(cp) }

// TileCost is the work one server attributed to a region tile: player
// actions processed there and chunk writes issued for its terrain — the
// per-tile load signal behind the resident-player proxy the controller
// uses today.
type TileCost struct {
	Actions, Stores int64
}

// TileCosts returns a copy of the per-tile attributed cost since boot
// (empty for an unsharded server, which has no tiles).
func (s *Server) TileCosts() map[world.TileID]TileCost {
	out := make(map[world.TileID]TileCost, len(s.tileActions))
	for t, n := range s.tileActions {
		c := out[t]
		c.Actions = n
		out[t] = c
	}
	for t, n := range s.tileStores {
		c := out[t]
		c.Stores = n
		out[t] = c
	}
	return out
}

// AdoptTileCosts folds a predecessor server's per-tile cost accounting
// into this one (a shard rebuilt after failover, or a retired slot
// reused by a scale-up). Demand-rate consumers difference the
// cluster-summed signal over time, so a replacement server must not
// make the cumulative totals regress.
func (s *Server) AdoptTileCosts(costs map[world.TileID]TileCost) {
	if s.tileTopo == nil {
		return
	}
	for t, c := range costs {
		s.tileActions[t] += c.Actions
		s.tileStores[t] += c.Stores
	}
}

// noteAction attributes one processed action to the acting avatar's tile.
func (s *Server) noteAction(pos world.BlockPos) {
	if s.tileTopo != nil {
		s.tileActions[s.tileTopo.TileOf(pos.Chunk())]++
	}
}

// noteStore attributes one chunk write to the chunk's tile.
func (s *Server) noteStore(cp world.ChunkPos) {
	if s.tileTopo != nil {
		s.tileStores[s.tileTopo.TileOf(cp)]++
	}
}

// Clock returns the server's clock.
func (s *Server) Clock() sim.Clock { return s.clock }

// SetStore replaces the chunk store (e.g. to interpose a measurement
// probe). It must be called before Start.
func (s *Server) SetStore(store ChunkStore) {
	s.store = store
	s.cfg.Store = store
}

// World returns the server's loaded world.
func (s *Server) World() *world.World { return s.world }

// Config returns the server's effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Tick returns the current tick number.
func (s *Server) Tick() uint64 { return s.tick }

// SCs returns the construct backend.
func (s *Server) SCs() SCBackend { return s.scs }

// Start begins the game loop. It may be called once.
func (s *Server) Start() {
	if s.running {
		return
	}
	s.running = true
	s.clock.After(s.cfg.TickInterval, s.tickFn)
}

// Stop halts the game loop after the current tick.
func (s *Server) Stop() { s.stopped = true }

// Crash models the shard process dying mid-run: the loop halts and every
// in-memory session is dropped — their state survives only as far as it
// was persisted. A crashed server stays inert; shard failover builds a
// replacement over the persisted world instead of restarting it
// (cluster.RecoverShard).
func (s *Server) Crash() {
	s.stopped = true
	s.players = make(map[PlayerID]*Player)
	s.playerOrder = nil
	s.ghosts = make(map[string]*GhostAvatar)
	s.ghostOrder = nil
}

// SetChatRelay installs a cluster-wide chat fan-out: chat actions deliver
// through relay (which returns the recipient count) instead of to this
// server's local players only.
func (s *Server) SetChatRelay(relay func(from *Player) int) { s.chatRelay = relay }

// FlushOwnedChunks persists every loaded chunk this server owns matching
// pred (nil matches all), calling done once after every write has landed.
// With a completion-reporting store (SyncingChunkStore) the writes retry
// through fault windows before done fires — the guarantee an ownership
// migration needs before flipping a tile to a new owner. Stores without
// completion reporting get their writes issued fire-and-forget and done
// runs immediately.
func (s *Server) FlushOwnedChunks(pred func(world.ChunkPos) bool, done func()) {
	if done == nil {
		done = func() {}
	}
	if s.store == nil {
		done()
		return
	}
	chunks := s.world.LoadedChunks()
	// Deterministic write order: the store draws latency and fault
	// outcomes from the clock RNG per operation.
	sort.Slice(chunks, func(i, j int) bool {
		if chunks[i].X != chunks[j].X {
			return chunks[i].X < chunks[j].X
		}
		return chunks[i].Z < chunks[j].Z
	})
	syncStore, _ := s.store.(SyncingChunkStore)
	pending := 1
	finish := func() {
		pending--
		if pending == 0 {
			done()
		}
	}
	for _, cp := range chunks {
		if !s.owned(cp) || (pred != nil && !pred(cp)) {
			continue
		}
		c := s.world.Chunk(cp)
		s.noteStore(cp)
		if syncStore != nil {
			pending++
			syncStore.StoreThen(c, finish)
		} else {
			s.store.Store(c)
		}
	}
	finish()
}

// SpawnConstruct activates a simulated construct whose grid cell (0, 0)
// maps to the anchor block position (cells extend along +X and +Z on the
// terrain surface). Returns the construct id.
func (s *Server) SpawnConstruct(c *sc.Construct, anchor world.BlockPos) uint64 {
	id := s.scs.Add(c)
	s.anchors[id] = haltedConstruct{construct: c, anchor: anchor}
	w, h := c.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if c.At(x, y).Kind == sc.Empty {
				continue
			}
			bp := anchor.Offset(x, 0, y)
			s.footprint[bp] = id
			s.world.SetBlockAt(bp, world.Block{ID: blockForCell(c.At(x, y).Kind)})
		}
	}
	return id
}

// ActiveConstructAt returns the id of the active construct anchored at
// anchor. Anchors are stable across the halt/resume cycle while ids are
// not (resuming re-adds the construct under a fresh id), so cross-shard
// ownership tracks constructs by anchor and resolves the live id here.
// With multiple constructs on one anchor the smallest id wins, keeping
// the lookup deterministic.
func (s *Server) ActiveConstructAt(anchor world.BlockPos) (uint64, bool) {
	best, found := uint64(0), false
	for id, h := range s.anchors {
		if h.anchor == anchor && (!found || id < best) {
			best, found = id, true
		}
	}
	return best, found
}

// EvictConstruct deactivates an active construct and clears its world
// footprint, returning the construct and its anchor so a cluster can
// transfer it to another shard (the inverse of SpawnConstruct). Unlike
// unload halting, the construct will not resume on this server. Halted
// constructs (their chunk is unloaded) are not evictable and return false.
func (s *Server) EvictConstruct(id uint64) (*sc.Construct, world.BlockPos, bool) {
	h, ok := s.anchors[id]
	if !ok {
		return nil, world.BlockPos{}, false
	}
	s.scs.Remove(id)
	delete(s.anchors, id)
	w, ch := h.construct.Size()
	for y := 0; y < ch; y++ {
		for x := 0; x < w; x++ {
			bp := h.anchor.Offset(x, 0, y)
			if s.footprint[bp] == id {
				delete(s.footprint, bp)
				s.world.SetBlockAt(bp, world.Block{})
			}
		}
	}
	return h.construct, h.anchor, true
}

func blockForCell(k sc.CellKind) world.BlockID {
	switch k {
	case sc.Wire:
		return world.Wire
	case sc.Source:
		return world.Battery
	case sc.Lamp:
		return world.Lamp
	case sc.Repeater:
		return world.Repeater
	case sc.Inverter:
		return world.Inverter
	}
	return world.Air
}

// --- The game loop -----------------------------------------------------------

// tickOnce runs one simulation tick and schedules the next.
func (s *Server) tickOnce() {
	if s.stopped {
		s.running = false
		return
	}
	s.tick++
	rng := s.clock.RNG()
	var work time.Duration
	work += s.cost.TickBase

	// 1. Player behaviors produce actions; process them.
	dt := s.cfg.TickInterval.Seconds()
	for _, id := range s.playerOrder {
		p := s.players[id]
		work += s.cost.PerPlayer
		if p.behavior != nil {
			for _, a := range p.behavior.Actions(rng, p, s) {
				work += s.processAction(p, a)
			}
		}
		p.advance(dt)
	}

	// 2. Simulated constructs.
	scw := s.scs.Tick(s.tick)
	work += time.Duration(scw.WorkUnits) * s.cost.SCWorkNs
	n := s.scs.Count()
	if scw.Simulated && s.cost.SCDensityCubeNs > 0 {
		work += time.Duration(float64(n*n*n) * s.cost.SCDensityCubeNs)
	}
	if s.cost.ServoPerSC > 0 {
		work += time.Duration(n) * s.cost.ServoPerSC
	}

	// 3. Terrain demand, application, and sending.
	if s.tick%terrainScanPeriod == 0 {
		s.scanTerrainDemand()
	}
	work += s.applyCompletedChunks()
	work += s.drainSendQueues()
	busy, queued := s.terrain.Load()
	work += time.Duration(busy) * s.cost.GenInterferencePerWorker
	if queued > 500 {
		queued = 500
	}
	work += time.Duration(queued) * s.cost.GenQueuePressure

	// 4. Unload far terrain periodically.
	if s.tick%unloadScanPeriod == 0 {
		s.unloadFarChunks()
	}
	// Flush the tick's grouped persistence writes (generated terrain from
	// step 3, unloads from step 4) as one commit, then recycle the written
	// chunks. The writes reach shared substrate in the same per-chunk
	// order the old per-chunk commits used.
	if len(s.storeBatch) > 0 || len(s.recycleBatch) > 0 {
		sim.Commit(s.clock, s.flushFn)
	}

	// 5. Tick duration: work plus hardware noise and rare GC-like tails.
	d := time.Duration(float64(work) * math.Exp(s.cost.NoiseSigma*rng.NormFloat64()))
	tailP := s.cost.TailP + float64(len(s.players))*s.cost.TailPPerPlayer
	if rng.Float64() < tailP {
		d = time.Duration(float64(d) * (1 + rng.Float64()*(s.cost.TailScale-1)))
	}
	s.TickDurations.Add(d)
	s.TickSeries.Add(s.clock.Now(), d)

	// 6. Next tick: at the fixed rate, or immediately after an overlong
	// tick (an overloaded server ticks back to back). With PhaseLock the
	// overlong reschedule snaps forward to the next global TickInterval
	// boundary, so shards that fell behind re-join the cluster-wide wave
	// instead of drifting off-phase forever.
	next := s.cfg.TickInterval
	if d > next {
		next = d
		if s.cfg.PhaseLock {
			target := s.clock.Now() + d
			if rem := target % s.cfg.TickInterval; rem != 0 {
				target += s.cfg.TickInterval - rem
			}
			next = target - s.clock.Now()
		}
	}
	s.clock.After(next, s.tickFn)
}

// scanTerrainDemand requests every chunk within any player's view distance
// that is neither loaded nor already requested, and refreshes send queues.
//
// The scan is incremental: each player caches the chunk rect its view
// distance resolved to at its last full walk (the demand cursor). A
// player whose rect is unchanged is clean, and for a clean player the
// full walk is a no-op by construction — after a full walk every chunk
// in the rect is either known (queued for send) or in flight in
// s.requested, requests only leave that set by loading (tracked in
// s.newlyLoaded), and an unload of a chunk inside a cached rect
// invalidates the cursor (unloadFarChunks). So clean players only need
// the chunks applied since the previous scan, replayed in rect order;
// dirty players — fresh sessions, handoff arrivals, chunk-rect
// crossings, view-distance changes — take the full walk and count one
// TerrainRecomputes. The request/send streams are byte-identical to the
// full rescan (Config.FullDemandRescan is the cross-check).
func (s *Server) scanTerrainDemand() {
	avatars := s.obsBufs[s.obsIdx][:0]
	newly := s.newlyLoaded
	if len(newly) > 1 {
		slices.SortFunc(newly, func(a, b world.ChunkPos) int {
			if a.X != b.X {
				return a.X - b.X
			}
			return a.Z - b.Z
		})
	}
	for _, id := range s.playerOrder {
		p := s.players[id]
		pos := p.Pos()
		avatars = append(avatars, pos)
		rect := world.ChunkRectWithin(pos, s.cfg.ViewDistance)
		if !s.cfg.FullDemandRescan && p.demandValid && rect == p.demandRect {
			// Clean cursor: replay only the chunks loaded since the last
			// scan. Sorted (X, Z) order is exactly the full walk's
			// iteration order restricted to this set, so the send queue
			// receives them in the same order a full rescan would.
			for _, cp := range newly {
				if rect.Contains(cp) && !p.known[cp] {
					p.known[cp] = true
					p.sendQueue = append(p.sendQueue, cp)
				}
			}
			continue
		}
		s.TerrainRecomputes.Inc()
		for cx := rect.Min.X; cx <= rect.Max.X; cx++ {
			for cz := rect.Min.Z; cz <= rect.Max.Z; cz++ {
				cp := world.ChunkPos{X: cx, Z: cz}
				if s.world.Loaded(cp) {
					if !p.known[cp] {
						p.known[cp] = true
						p.sendQueue = append(p.sendQueue, cp)
					}
					continue
				}
				s.requestChunk(cp)
			}
		}
		p.demandRect, p.demandValid = rect, true
	}
	s.newlyLoaded = newly[:0]
	// Focus-aware backends (the serverless terrain backend's bounded
	// nearest-player-first dispatch) get the player positions; the backend
	// copies them, so handing over the scratch buffer is safe.
	if tf, ok := s.terrain.(TerrainFocus); ok {
		tf.SetFocus(avatars)
	}
	// One commit for the whole scan's chunk loads, queued ahead of the
	// prefetch observation below so the per-chunk storage order matches
	// the old per-chunk commits.
	s.flushChunkLoads()
	// Give pre-fetching stores the avatar positions (§III-E) — ghosts
	// included, so the terrain around an avatar approaching from a
	// neighbouring shard is warm before its handoff lands. The store
	// stack reaches shared substrate (remote blob reads), so the call
	// goes through the commit buffer on a lane clock; obsPending is read
	// by the persistent closure at drain time, and the buffer flip keeps
	// the next scan from clobbering it while queued.
	if _, ok := s.store.(AvatarObserver); ok {
		for _, name := range s.ghostOrder {
			avatars = append(avatars, s.ghosts[name].Pos())
		}
		s.obsBufs[s.obsIdx] = avatars
		s.obsIdx = 1 - s.obsIdx
		s.obsPending = avatars
		if s.obsFn == nil {
			s.obsFn = func() {
				if obs, ok := s.store.(AvatarObserver); ok {
					obs.ObserveAvatars(s.obsPending, s.cfg.ViewDistance+PrefetchMargin)
				}
			}
		}
		sim.Commit(s.clock, s.obsFn)
		return
	}
	s.obsBufs[s.obsIdx] = avatars
}

// ScanTerrainDemand runs one demand scan outside the tick cadence — the
// benchmark entry point (the game loop calls the scan on its own period).
func (s *Server) ScanTerrainDemand() { s.scanTerrainDemand() }

// SetViewDistance changes the view distance mid-run and invalidates
// every player's demand cursor, so the next scan re-walks the new rects
// in full.
func (s *Server) SetViewDistance(blocks int) {
	if blocks <= 0 || blocks == s.cfg.ViewDistance {
		return
	}
	s.cfg.ViewDistance = blocks
	for _, p := range s.players {
		p.demandValid = false
	}
}

// requestChunk starts the load-or-generate path for one chunk. With a
// store the request is only queued; flushChunkLoads turns the queue into
// one batched commit per scan.
func (s *Server) requestChunk(cp world.ChunkPos) {
	if s.requested[cp] {
		return
	}
	s.requested[cp] = true
	if s.store != nil {
		s.pendingLoads = append(s.pendingLoads, cp)
		return
	}
	s.terrain.Request(cp)
}

// flushChunkLoads issues every queued chunk load as one commit. The loads
// reach shared substrate and their callbacks run from storage-completion
// events (serial context), so touching per-shard state there is safe —
// exactly as the old per-chunk commits did, in the same per-chunk order,
// but costing one substrate event per scan instead of one per chunk.
func (s *Server) flushChunkLoads() {
	if s.store == nil || len(s.pendingLoads) == 0 {
		return
	}
	sim.Commit(s.clock, s.loadFn)
}

// applyCompletedChunks integrates generated and store-loaded chunks into
// the world and returns the work cost. Persistence writes for freshly
// generated terrain are grouped into the tick's store batch (one commit
// per tick, flushed by tickOnce) instead of one commit per chunk, and
// superseded chunks are recycled through the pool.
func (s *Server) applyCompletedChunks() time.Duration {
	var cost time.Duration
	apply := func(c *world.Chunk) bool {
		if s.world.Loaded(c.Pos) {
			return false // superseded (e.g. reloaded while generating)
		}
		s.applyChunk(c, true)
		if s.tick > bootGraceTicks {
			cost += s.cost.ChunkApply
		}
		s.ChunksApplied.Inc()
		return true
	}
	for i, c := range s.loadedFromStore {
		if !apply(c) {
			s.pool.Put(c)
		}
		s.loadedFromStore[i] = nil
	}
	s.loadedFromStore = s.loadedFromStore[:0]
	s.drainBuf = s.terrain.DrainAppend(s.drainBuf[:0])
	for i, c := range s.drainBuf {
		applied := apply(c)
		if s.store != nil && s.owned(c.Pos) {
			// Persist freshly generated terrain — superseded chunks
			// included, as before: their generation still happened and the
			// stored bytes are identical.
			s.noteStore(c.Pos)
			s.storeBatch = append(s.storeBatch, c)
			if !applied {
				s.recycleBatch = append(s.recycleBatch, c)
			}
		} else if !applied {
			s.pool.Put(c)
		}
		s.drainBuf[i] = nil
	}
	return cost
}

// applyChunk installs a chunk and resumes any halted constructs in it.
func (s *Server) applyChunk(c *world.Chunk, countResume bool) {
	s.world.AddChunk(c)
	delete(s.requested, c.Pos)
	s.newlyLoaded = append(s.newlyLoaded, c.Pos)
	if hs := s.halted[c.Pos]; len(hs) > 0 && countResume {
		delete(s.halted, c.Pos)
		for _, h := range hs {
			s.SpawnConstruct(h.construct, h.anchor)
			s.ConstructsResumed.Inc()
		}
	}
}

// sendCompactMin is the consumed-prefix length at which a send queue is
// compacted in place (once the prefix is also at least half the queue).
const sendCompactMin = 64

// drainSendQueues serialises queued chunks to clients, a few per player per
// tick, and returns the work cost. The queue is a head-index ring over one
// backing array: popping advances sendHead instead of re-slicing, which
// would pin the consumed prefix for the array's lifetime, and the array is
// reused once drained (or compacted when the dead prefix dominates).
func (s *Server) drainSendQueues() time.Duration {
	var cost time.Duration
	for _, id := range s.playerOrder {
		p := s.players[id]
		sent := 0
		for p.sendHead < len(p.sendQueue) && sent < s.cfg.MaxChunkSendsPerTick {
			cp := p.sendQueue[p.sendHead]
			p.sendHead++
			if !s.world.Loaded(cp) {
				continue // unloaded before we could send it
			}
			cost += s.cost.ChunkSend
			p.ChunksReceived++
			s.ChunksSent.Inc()
			sent++
		}
		switch {
		case p.sendHead == len(p.sendQueue):
			p.sendQueue = p.sendQueue[:0]
			p.sendHead = 0
		case p.sendHead >= sendCompactMin && p.sendHead*2 >= len(p.sendQueue):
			n := copy(p.sendQueue, p.sendQueue[p.sendHead:])
			p.sendQueue = p.sendQueue[:n]
			p.sendHead = 0
		}
	}
	return cost
}

// unloadFarChunks persists and evicts chunks far outside every player's
// view distance, halting embedded constructs (§II-A).
func (s *Server) unloadFarChunks() {
	if len(s.players) == 0 {
		return
	}
	limit := s.cfg.ViewDistance + unloadMargin
	far := s.unloadFar[:0]
	s.unloadAll = s.world.LoadedChunksAppend(s.unloadAll[:0])
	for _, cp := range s.unloadAll {
		near := false
		for _, id := range s.playerOrder {
			if cp.DistanceBlocks(s.players[id].Pos()) <= limit {
				near = true
				break
			}
		}
		if !near {
			far = append(far, cp)
		}
	}
	s.unloadFar = far
	slices.SortFunc(far, func(a, b world.ChunkPos) int {
		if a.X != b.X {
			return a.X - b.X
		}
		return a.Z - b.Z
	})
	for _, cp := range far {
		// Halt constructs anchored in this chunk.
		ids := s.unloadIDs[:0]
		for id, h := range s.anchors {
			if h.anchor.Chunk() == cp {
				ids = append(ids, id)
			}
		}
		s.unloadIDs = ids
		slices.Sort(ids)
		for _, id := range ids {
			h := s.anchors[id]
			s.halted[cp] = append(s.halted[cp], h)
			s.scs.Remove(id)
			delete(s.anchors, id)
			w, ch := h.construct.Size()
			for y := 0; y < ch; y++ {
				for x := 0; x < w; x++ {
					delete(s.footprint, h.anchor.Offset(x, 0, y))
				}
			}
		}
		c := s.world.RemoveChunk(cp)
		if s.store != nil && c != nil && s.owned(cp) {
			// The write joins the tick's grouped store commit; the chunk is
			// recycled inside that same commit, after its Store call.
			s.noteStore(cp)
			s.storeBatch = append(s.storeBatch, c)
			s.recycleBatch = append(s.recycleBatch, c)
		} else {
			// No pending write references the chunk: recycle it directly.
			s.pool.Put(c)
		}
		// Drop client knowledge so re-approach resends, and invalidate
		// the demand cursor of any player whose cached rect held the
		// chunk — that restores the clean-cursor invariant (every rect
		// chunk loaded-or-requested) the incremental scan relies on.
		for _, p := range s.players {
			delete(p.known, cp)
			if p.demandValid && p.demandRect.Contains(cp) {
				p.demandValid = false
			}
		}
	}
}

// MinViewMargin returns the smallest distance (over players) from an
// avatar to the closest missing chunk within its view range, the QoS
// metric of Fig. 10. With no players or no missing terrain it returns the
// configured view distance.
func (s *Server) MinViewMargin() int {
	min := s.cfg.ViewDistance
	for _, id := range s.playerOrder {
		p := s.players[id]
		pos := p.Pos()
		r := world.ChunkRectWithin(pos, s.cfg.ViewDistance)
		for cx := r.Min.X; cx <= r.Max.X; cx++ {
			for cz := r.Min.Z; cz <= r.Max.Z; cz++ {
				cp := world.ChunkPos{X: cx, Z: cz}
				if s.world.Loaded(cp) {
					continue
				}
				if d := cp.DistanceBlocks(pos); d < min {
					min = d
				}
			}
		}
	}
	return min
}
