package specexec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"servo/internal/sc"
)

// Wire format between the speculative execution unit and the remote
// simulation function. The request carries the construct's full layout and
// state plus the logical timestamp (paper §III-C: "we include in the
// request a logical timestamp indicating when a player last modified the
// simulated construct"); the reply echoes the timestamp so stale replies
// can be discarded.

// Request asks the simulation function to advance a construct.
type Request struct {
	ConstructID uint64
	Version     uint64 // logical modification timestamp
	BaseTick    uint64 // game tick of the request's base state
	Steps       uint32
	DetectLoops bool
	Layout      []byte // sc.EncodeLayout of the base state
}

// Reply carries the speculative state sequence back to the server.
type Reply struct {
	ConstructID uint64
	Version     uint64
	BaseTick    uint64
	States      []sc.StateVector
	Loop        *sc.LoopInfo
}

var errTruncated = errors.New("specexec: truncated message")

// EncodeRequest serialises a request.
func EncodeRequest(r Request) []byte {
	out := make([]byte, 0, 29+len(r.Layout))
	out = binary.LittleEndian.AppendUint64(out, r.ConstructID)
	out = binary.LittleEndian.AppendUint64(out, r.Version)
	out = binary.LittleEndian.AppendUint64(out, r.BaseTick)
	out = binary.LittleEndian.AppendUint32(out, r.Steps)
	var fl byte
	if r.DetectLoops {
		fl = 1
	}
	out = append(out, fl)
	return append(out, r.Layout...)
}

// DecodeRequest parses a request.
func DecodeRequest(buf []byte) (Request, error) {
	if len(buf) < 29 {
		return Request{}, errTruncated
	}
	return Request{
		ConstructID: binary.LittleEndian.Uint64(buf),
		Version:     binary.LittleEndian.Uint64(buf[8:]),
		BaseTick:    binary.LittleEndian.Uint64(buf[16:]),
		Steps:       binary.LittleEndian.Uint32(buf[24:]),
		DetectLoops: buf[28] == 1,
		Layout:      buf[29:],
	}, nil
}

// EncodeReply serialises a reply.
func EncodeReply(r Reply) []byte {
	size := 24 + 9 + 8
	for _, s := range r.States {
		size += 4 + len(s)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint64(out, r.ConstructID)
	out = binary.LittleEndian.AppendUint64(out, r.Version)
	out = binary.LittleEndian.AppendUint64(out, r.BaseTick)
	if r.Loop != nil {
		out = append(out, 1)
		out = binary.LittleEndian.AppendUint32(out, uint32(r.Loop.EntryIndex))
		out = binary.LittleEndian.AppendUint32(out, uint32(r.Loop.Period))
	} else {
		out = append(out, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(r.States)))
	for _, s := range r.States {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	return out
}

// DecodeReply parses a reply.
func DecodeReply(buf []byte) (Reply, error) {
	if len(buf) < 37 {
		return Reply{}, errTruncated
	}
	r := Reply{
		ConstructID: binary.LittleEndian.Uint64(buf),
		Version:     binary.LittleEndian.Uint64(buf[8:]),
		BaseTick:    binary.LittleEndian.Uint64(buf[16:]),
	}
	off := 24
	if buf[off] == 1 {
		r.Loop = &sc.LoopInfo{
			EntryIndex: int(binary.LittleEndian.Uint32(buf[off+1:])),
			Period:     int(binary.LittleEndian.Uint32(buf[off+5:])),
		}
		if r.Loop.Period <= 0 {
			return Reply{}, fmt.Errorf("specexec: bad loop period %d", r.Loop.Period)
		}
	}
	off += 9
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	r.States = make([]sc.StateVector, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < off+4 {
			return Reply{}, errTruncated
		}
		l := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if len(buf) < off+l {
			return Reply{}, errTruncated
		}
		r.States = append(r.States, sc.StateVector(buf[off:off+l]))
		off += l
	}
	return r, nil
}

// Handler is the serverless simulation function body (paper §III-C): it
// decodes the construct, simulates the requested number of steps with loop
// detection, and returns the speculative state sequence. Deploy it on a
// faas.Platform under any name and point the Manager at it.
func Handler(payload []byte) ([]byte, int) {
	req, err := DecodeRequest(payload)
	if err != nil {
		return nil, 1
	}
	c, err := sc.DecodeLayout(req.Layout)
	if err != nil {
		return nil, 1
	}
	res := sc.Simulate(c, int(req.Steps), req.DetectLoops)
	reply := Reply{
		ConstructID: req.ConstructID,
		Version:     req.Version,
		BaseTick:    req.BaseTick,
		States:      res.States,
		Loop:        res.Loop,
	}
	return EncodeReply(reply), res.WorkUnits
}
