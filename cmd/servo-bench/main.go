// Command servo-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	servo-bench -exp fig7a,fig8          # run selected experiments
//	servo-bench -exp all -scale 1.0      # full paper-length durations
//	servo-bench -list                    # list available experiments
//
// Scale 1.0 runs the paper's 10-minute measurement windows; the default
// 0.1 gives the same shapes in about a tenth of the wall time.
package main

import (
	"flag"
	"fmt"
	"os"

	"servo/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "comma-separated experiments to run, or 'all'")
	seed := flag.Int64("seed", 42, "deterministic experiment seed")
	scale := flag.Float64("scale", 0.1, "duration scale (1.0 = paper-length windows)")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiment.Runners() {
			fmt.Printf("%-8s %s\n", r.Name, r.Description)
		}
		return 0
	}

	opt := experiment.Options{Seed: *seed, Scale: *scale}
	if *verbose {
		opt.Log = os.Stderr
	}
	if err := experiment.RunByName(*exp, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "servo-bench:", err)
		return 1
	}
	return 0
}
