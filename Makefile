# CI entry points for the Servo reproduction. `make ci` is the gate the
# scenario harness and tier-1 tests run behind.

GO ?= go

.PHONY: ci vet fmtcheck build test race validate sim bench benchsmoke benchjson benchdiff clusterrace replaygate bordergate workersgate scalegate

ci: vet fmtcheck build race clusterrace validate replaygate bordergate workersgate scalegate benchsmoke benchdiff

vet:
	$(GO) vet ./...

# fmtcheck fails if any file needs gofmt.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The raised timeout covers the scenario package's bundled-scenario
# sweep, which is slow under the race detector.
race:
	$(GO) test -race -timeout 30m ./...

# clusterrace re-runs the control-plane packages under the race detector
# uncached: the rebalance/failover/visibility paths (and the scenario
# engine that drives them) juggle closures across the virtual clock and
# must stay data-race-free even as they grow; rtserve rides along because
# its sessions read ghost registries concurrently with the real-time
# loop; internal/sim joins the list because the lane-batched scheduler
# runs same-timestamp events on a worker pool and its commit-buffer
# ordering must hold under the race detector. -p 1 serialises the
# packages and the timeout is raised: the scenario package's full
# bundled sweep is slow under the race detector, and contention with the
# other raced packages would push it past the default 10m per-package
# budget.
clusterrace:
	$(GO) test -race -count=1 -p 1 -timeout 30m ./internal/sim/ ./internal/cluster/ ./internal/world/ ./internal/scenario/ ./internal/rtserve/ ./internal/bench/

# validate parses and validates every bundled scenario without running it.
validate:
	$(GO) run ./cmd/servo-sim validate all

# replaygate runs every bundled scenario twice and fails on any report
# byte difference: the determinism contract, enforced over the whole
# suite rather than the sampled scenarios the unit tests replay
# (border-patrol is bundled, so its replay rides through here too).
replaygate:
	$(GO) run ./cmd/servo-sim replay all

# bordergate runs the border-patrol scenario with assertions on: the
# cross-shard visibility contract — zero visibility-gap ticks while
# fleets pace across a grid tile seam.
bordergate:
	$(GO) run ./cmd/servo-sim run border-patrol

# workersgate is the parallel-execution determinism gate: the bundled
# sharded scenarios must render byte-identical reports at -workers 1 and
# -workers 4 (the lane-batched scheduler's pool-size-independence
# contract).
workersgate:
	$(GO) test -count=1 -run TestWorkersByteIdentity ./internal/scenario/

# scalegate runs the elastic-scaling scenarios with assertions on: the
# diurnal cycle must scale 2 -> 8 -> 2 with zero lost players, and the
# crash-looping shard must be quarantined while the cluster keeps
# serving. (Their workers-1-vs-4 byte identity rides through
# workersgate.)
scalegate:
	$(GO) run ./cmd/servo-sim run daily-cycle crash-loop-quarantine

# sim executes every bundled scenario and fails on any assertion failure.
sim:
	$(GO) run ./cmd/servo-sim run all

# bench regenerates the paper's tables and figures at bench scale.
bench:
	$(GO) run ./cmd/servo-bench -exp all

# benchsmoke runs every benchmark exactly once in short mode: a fast
# compile-and-execute gate over the figure pipelines, not a measurement.
benchsmoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x .

# benchjson records the performance trajectory: the headline benchmark
# suite (tick latency, handoff p99, digest encode, visibility scan,
# scenario throughput) written as a schema'd BENCH_$(PR).json artifact,
# checked in with the PR that changed the numbers.
PR ?= 10
benchjson:
	$(GO) run ./cmd/servo-bench -format json -pr $(PR) -out BENCH_$(PR).json

# benchdiff is the regression gate: re-run the suite and fail when any
# gated headline metric is more than 20% worse than the newest
# checked-in BENCH_*.json.
benchdiff:
	$(GO) run ./cmd/servo-bench -diff latest
