// Package rstore implements Servo's remote state storage (paper §III-E):
// chunk persistence through managed (serverless) storage, fronted by the
// local pre-fetching cache of internal/servo/tcache, so that storage
// latency variability never reaches the game loop.
//
// It implements mve.ChunkStore (load/store) and mve.AvatarObserver
// (distance-based pre-fetching driven by avatar positions).
package rstore

import (
	"errors"

	"servo/internal/blob"
	"servo/internal/servo/tcache"
	"servo/internal/world"
)

// Store is a cached remote chunk store.
type Store struct {
	cache *tcache.Cache
	// pool recycles decoded chunks (UseChunkPool); nil falls back to
	// plain allocation.
	pool *world.ChunkPool
	// scratch is the reused encode buffer: the cache retains the bytes it
	// is handed, so writes copy the scratch into one exact-size slice —
	// still dropping Encode's index side-table and growth reallocations.
	scratch []byte

	// DecodeFailures counts stored objects that failed to decode
	// (corruption guard; always zero in healthy runs).
	DecodeFailures int
}

// New returns a store over the given cache.
func New(cache *tcache.Cache) *Store {
	return &Store{cache: cache}
}

// Cache exposes the underlying terrain cache (for metrics).
func (s *Store) Cache() *tcache.Cache { return s.cache }

// UseChunkPool makes the store decode loads into recycled chunks from p
// (typically the owning shard's pool).
func (s *Store) UseChunkPool(p *world.ChunkPool) { s.pool = p }

// Load implements mve.ChunkStore: fetch through the cache; a missing
// object reports ok=false so the server generates the chunk instead.
func (s *Store) Load(pos world.ChunkPos, cb func(c *world.Chunk, ok bool)) {
	s.cache.Get(pos, func(data []byte, err error) {
		if err != nil {
			// The cache retries chaos-injected faults internally
			// (tcache.fetch uses blob.GetRetrying), so any error here is
			// a genuine not-found or corruption.
			if !errors.Is(err, blob.ErrNotFound) {
				s.DecodeFailures++
			}
			cb(nil, false)
			return
		}
		c := s.pool.Get(pos)
		if derr := world.DecodeChunkInto(c, data); derr != nil {
			s.pool.Put(c)
			s.DecodeFailures++
			cb(nil, false)
			return
		}
		cb(c, true)
	})
}

// LoadMany implements mve.BatchingChunkStore: one call serves a whole
// tick's coalesced loads. Each position takes the same cache path as Load,
// in the order given, so hit/miss accounting and storage-latency draws
// are identical to the per-chunk calls this replaces.
func (s *Store) LoadMany(pos []world.ChunkPos, cb func(pos world.ChunkPos, c *world.Chunk, ok bool)) {
	for _, cp := range pos {
		cp := cp
		s.Load(cp, func(c *world.Chunk, ok bool) { cb(cp, c, ok) })
	}
}

// encode serialises c through the reused scratch buffer into an owned
// exact-size slice (the cache retains what it is handed).
func (s *Store) encode(c *world.Chunk) []byte {
	s.scratch = c.EncodeAppend(s.scratch[:0])
	out := make([]byte, len(s.scratch))
	copy(out, s.scratch)
	return out
}

// Store implements mve.ChunkStore: encode and write back through the
// cache (flushed to remote storage periodically).
func (s *Store) Store(c *world.Chunk) {
	s.cache.Put(c.Pos, s.encode(c))
}

// StoreThen implements mve.SyncingChunkStore: the chunk is written
// through to remote storage immediately (not on the periodic write-back),
// and done runs once the write lands. Ownership migrations flush the
// source shard's band through this path before flipping the band to its
// new owner.
func (s *Store) StoreThen(c *world.Chunk, done func()) {
	s.cache.PutThen(c.Pos, s.encode(c), done)
}

// PlayerKey returns the storage key for a player record.
func PlayerKey(name string) string { return "player/" + name }

// SavePlayer implements mve.PlayerStore: player records are small and
// written straight to remote storage (no chunk cache involved).
// Chaos-injected write faults are retried until the record lands.
func (s *Store) SavePlayer(name string, data []byte) {
	s.cache.Remote().PutRetrying(PlayerKey(name), data)
}

// LoadPlayer implements mve.PlayerStore. GetRetrying: a false "new
// player" would reset the player's persisted progress.
func (s *Store) LoadPlayer(name string, cb func(data []byte, ok bool)) {
	s.cache.Remote().GetRetrying(PlayerKey(name), func(data []byte, err error) {
		cb(data, err == nil)
	})
}

// ObserveAvatars implements mve.AvatarObserver: pre-fetch every chunk
// within the pre-fetch radius of any avatar (§III-E: "pre-fetches terrain
// data outside of, but close to, the player's view distance").
func (s *Store) ObserveAvatars(positions []world.BlockPos, radius int) {
	seen := make(map[world.ChunkPos]bool)
	var batch []world.ChunkPos
	for _, p := range positions {
		for _, cp := range world.ChunksWithin(p, radius) {
			if !seen[cp] {
				seen[cp] = true
				batch = append(batch, cp)
			}
		}
	}
	s.cache.Prefetch(batch)
}
