package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileExactValues(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{50, time.Duration(50.5 * float64(time.Millisecond))},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmptySample(t *testing.T) {
	var s Sample
	if got := s.Percentile(50); got != 0 {
		t.Fatalf("empty Percentile = %v, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
	if got := s.FracAbove(0); got != 0 {
		t.Fatalf("empty FracAbove = %v, want 0", got)
	}
}

func TestPercentileMonotoneQuick(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		p1 := r.Float64() * 100
		p2 := r.Float64() * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return s.Percentile(p1) <= s.Percentile(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileAgainstSortedReferenceQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		vals := make([]time.Duration, len(raw))
		for i, v := range raw {
			vals[i] = time.Duration(v)
			s.Add(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return s.Percentile(0) == vals[0] && s.Percentile(100) == vals[len(vals)-1] &&
			s.Min() == vals[0] && s.Max() == vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFracAbove(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.FracAbove(95 * time.Millisecond); got != 0.05 {
		t.Errorf("FracAbove(95ms) = %v, want 0.05", got)
	}
	if got := s.FracAbove(0); got != 1.0 {
		t.Errorf("FracAbove(0) = %v, want 1", got)
	}
	if got := s.FracAbove(time.Second); got != 0 {
		t.Errorf("FracAbove(1s) = %v, want 0", got)
	}
	// Threshold is strict: values equal to the threshold do not count.
	if got := s.FracAbove(100 * time.Millisecond); got != 0 {
		t.Errorf("FracAbove(100ms) = %v, want 0", got)
	}
}

func TestBoxplotSummary(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 1000; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	b := s.Box()
	if b.N != 1000 {
		t.Fatalf("N = %d, want 1000", b.N)
	}
	if b.P5 >= b.P25 || b.P25 >= b.P50 || b.P50 >= b.P75 || b.P75 >= b.P95 {
		t.Fatalf("boxplot quantiles not strictly increasing: %+v", b)
	}
	if b.Max != 1000*time.Microsecond {
		t.Fatalf("Max = %v, want 1ms", b.Max)
	}
	if !strings.Contains(b.String(), "n=1000") {
		t.Fatalf("String() missing count: %q", b.String())
	}
}

func TestICDF(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 10000; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	pts := s.ICDF([]float64{1, 0.1, 0.01, 0.001})
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency < pts[i-1].Latency {
			t.Fatalf("ICDF latencies must be non-decreasing: %v", pts)
		}
	}
	// At fraction 0.001 the latency should be near the 99.9th percentile.
	if got, want := pts[3].Latency, s.Percentile(99.9); got != want {
		t.Fatalf("ICDF(0.001) = %v, want %v", got, want)
	}
}

func TestTimeSeriesWindows(t *testing.T) {
	var ts TimeSeries
	// 10 seconds of one observation per 100ms, value = 1ms..100ms.
	for i := 0; i < 100; i++ {
		ts.Add(time.Duration(i)*100*time.Millisecond, time.Duration(i+1)*time.Millisecond)
	}
	ws := ts.Windows(2500 * time.Millisecond)
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	for i, w := range ws {
		if w.N != 25 {
			t.Fatalf("window %d has %d samples, want 25", i, w.N)
		}
		if w.P5 > w.P50 || w.P50 > w.P95 {
			t.Fatalf("window %d percentiles out of order: %+v", i, w)
		}
	}
	if ws[0].Mean >= ws[3].Mean {
		t.Fatal("increasing series must have increasing window means")
	}
}

func TestTimeSeriesWindowsEmptyAndGaps(t *testing.T) {
	var ts TimeSeries
	if got := ts.Windows(time.Second); got != nil {
		t.Fatalf("empty series windows = %v, want nil", got)
	}
	ts.Add(0, time.Millisecond)
	ts.Add(10*time.Second, 2*time.Millisecond) // large gap: intermediate windows skipped
	ws := ts.Windows(time.Second)
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2 (gaps skipped)", len(ws))
	}
}

func TestMeterRate(t *testing.T) {
	var m Meter
	for i := 0; i < 120; i++ {
		m.Mark(time.Duration(i) * time.Second / 2) // 2 events/s for 60s
	}
	rate := m.RatePerMinute(0, time.Minute)
	if rate < 119 || rate > 121 {
		t.Fatalf("RatePerMinute = %v, want ~120", rate)
	}
	if m.Count() != 120 {
		t.Fatalf("Count = %d, want 120", m.Count())
	}
	if got := m.RatePerMinute(time.Minute, time.Minute); got != 0 {
		t.Fatalf("degenerate interval rate = %v, want 0", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"game", "players"}}
	tb.AddRow("Servo", "120")
	tb.AddRow("Opencraft", "0")
	out := tb.String()
	if !strings.Contains(out, "Servo") || !strings.Contains(out, "Opencraft") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestSampleValuesIsACopy(t *testing.T) {
	s := NewSample(0)
	s.Add(time.Millisecond)
	v := s.Values()
	v[0] = time.Hour
	if s.Percentile(100) != time.Millisecond {
		t.Fatal("mutating Values() result leaked into the sample")
	}
}
