// Bounded record logs. The cluster keeps three append-only transition
// logs — handoffs, ownership migrations, ghost-registry events — whose
// sequences are part of the deterministic replay surface. Appending
// forever is a memory leak in long diurnal scenarios, so each log is a
// ring keeping the most recent records: the replay surface stays the
// ordered sequence of appends (tests compare prefixes of equal runs, so
// equal runs shed equal prefixes), only the tail retained in memory is
// bounded.

package cluster

// DefaultLogRetention is the default per-log retention cap: generous
// enough that every bundled scenario retains its full history, small
// enough that a cluster running for days stays bounded.
const DefaultLogRetention = 65536

// RecordRing is a bounded append-only log keeping the most recent Cap
// records. The zero value is unbounded until initialised with a cap
// (newRecordRing); Cluster always initialises its logs.
type RecordRing[T any] struct {
	cap   int // <= 0: unbounded
	buf   []T
	start int    // index of the oldest record when the ring has wrapped
	total uint64 // records ever appended
}

// newRecordRing returns a ring retaining the last cap records (cap <= 0:
// unbounded).
func newRecordRing[T any](cap int) RecordRing[T] {
	return RecordRing[T]{cap: cap}
}

// Append adds a record, evicting the oldest once the cap is reached.
func (r *RecordRing[T]) Append(v T) {
	r.total++
	if r.cap <= 0 || len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % r.cap
}

// Len returns the number of records currently retained.
func (r *RecordRing[T]) Len() int { return len(r.buf) }

// Total returns the number of records ever appended (retained or
// evicted).
func (r *RecordRing[T]) Total() uint64 { return r.total }

// All returns the retained records, oldest first.
func (r *RecordRing[T]) All() []T {
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}
