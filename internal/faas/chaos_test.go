package faas

import (
	"errors"
	"testing"
	"time"

	"servo/internal/sim"
)

func echoHandler(payload []byte) ([]byte, int) { return payload, 100 }

// collectLatencies invokes fn n times back to back and returns the
// observed per-invocation latencies and error count.
func collectLatencies(loop *sim.Loop, p *Platform, n int) (lats []time.Duration, errs int) {
	for i := 0; i < n; i++ {
		p.Invoke("f", nil, func(inv Invocation) {
			lats = append(lats, inv.Latency)
			if inv.Err != nil {
				errs++
			}
		})
	}
	loop.Run()
	return lats, errs
}

// TestChaosDisabledIsZeroOverhead requires that a platform with chaos
// explicitly set to nil behaves bit-identically to one that never touched
// chaos: same latency sequence, no extra random draws.
func TestChaosDisabledIsZeroOverhead(t *testing.T) {
	run := func(touchChaos bool) []time.Duration {
		loop := sim.NewLoop(7)
		p := NewPlatform(loop)
		p.Register("f", DefaultConfig(), echoHandler)
		if touchChaos {
			p.SetChaos(&Chaos{FailureRate: 0.9, LatencyFactor: 50})
			p.SetChaos(nil)
		}
		lats, errs := collectLatencies(loop, p, 200)
		if errs != 0 {
			t.Fatalf("disabled chaos produced %d errors", errs)
		}
		return lats
	}
	base, toggled := run(false), run(true)
	if len(base) != len(toggled) {
		t.Fatalf("latency counts differ: %d vs %d", len(base), len(toggled))
	}
	for i := range base {
		if base[i] != toggled[i] {
			t.Fatalf("latency[%d] differs: %v vs %v", i, base[i], toggled[i])
		}
	}
}

// TestChaosFailureRateSurfaces checks that a configured failure rate
// actually produces ErrInjectedFault at roughly that rate, and that the
// injected-fault counter matches.
func TestChaosFailureRateSurfaces(t *testing.T) {
	loop := sim.NewLoop(3)
	p := NewPlatform(loop)
	fn := p.Register("f", DefaultConfig(), echoHandler)
	p.SetChaos(&Chaos{FailureRate: 0.3})
	var errCount, injected int
	for i := 0; i < 1000; i++ {
		p.Invoke("f", nil, func(inv Invocation) {
			if inv.Err != nil {
				errCount++
				if errors.Is(inv.Err, ErrInjectedFault) {
					injected++
				}
			}
		})
	}
	loop.Run()
	if errCount != injected {
		t.Fatalf("%d errors but only %d are ErrInjectedFault", errCount, injected)
	}
	if errCount < 200 || errCount > 400 {
		t.Fatalf("failure rate 0.3 over 1000 invocations produced %d failures", errCount)
	}
	if got := fn.FaultsInjected.Value(); got != int64(errCount) {
		t.Fatalf("FaultsInjected = %d, want %d", got, errCount)
	}
}

// TestChaosLatencyFactorExact verifies the slowdown multiplies each
// invocation's latency exactly (no extra random draws, so the baseline
// sequence is reproducible under the same seed).
func TestChaosLatencyFactorExact(t *testing.T) {
	const factor = 3.0
	run := func(withChaos bool) []time.Duration {
		loop := sim.NewLoop(11)
		p := NewPlatform(loop)
		p.Register("f", DefaultConfig(), echoHandler)
		if withChaos {
			p.SetChaos(&Chaos{LatencyFactor: factor})
		}
		lats, errs := collectLatencies(loop, p, 100)
		if errs != 0 {
			t.Fatalf("unexpected errors: %d", errs)
		}
		return lats
	}
	base, slow := run(false), run(true)
	for i := range base {
		want := time.Duration(float64(base[i]) * factor)
		if slow[i] != want {
			t.Fatalf("latency[%d] = %v, want exactly %v (3x %v)", i, slow[i], want, base[i])
		}
	}
}

// TestPerFunctionChaosTargetsOnlyNamedFunction checks that a
// function-level injector fails only its own function, and that it fully
// overrides (not merges with) the platform-wide injector.
func TestPerFunctionChaosTargetsOnlyNamedFunction(t *testing.T) {
	loop := sim.NewLoop(9)
	p := NewPlatform(loop)
	sick := p.Register("sick", DefaultConfig(), echoHandler)
	healthy := p.Register("healthy", DefaultConfig(), echoHandler)

	if !p.SetFunctionChaos("sick", &Chaos{FailureRate: 1}) {
		t.Fatal("SetFunctionChaos did not find the function")
	}
	if p.SetFunctionChaos("missing", &Chaos{FailureRate: 1}) {
		t.Fatal("SetFunctionChaos invented a function")
	}

	var sickErrs, healthyErrs int
	for i := 0; i < 50; i++ {
		p.Invoke("sick", nil, func(inv Invocation) {
			if inv.Err != nil {
				sickErrs++
			}
		})
		p.Invoke("healthy", nil, func(inv Invocation) {
			if inv.Err != nil {
				healthyErrs++
			}
		})
	}
	loop.Run()
	if sickErrs != 50 {
		t.Fatalf("targeted function failed %d/50 invocations, want all", sickErrs)
	}
	if healthyErrs != 0 {
		t.Fatalf("untargeted function failed %d invocations", healthyErrs)
	}
	if sick.FaultsInjected.Value() != 50 || healthy.FaultsInjected.Value() != 0 {
		t.Fatalf("fault counters wrong: sick=%d healthy=%d",
			sick.FaultsInjected.Value(), healthy.FaultsInjected.Value())
	}

	// Function-level overrides platform-wide wholesale: with a benign
	// function injector installed, a platform failure injector must not
	// leak through to that function.
	p.SetFunctionChaos("sick", &Chaos{LatencyFactor: 1})
	p.SetChaos(&Chaos{FailureRate: 1})
	sickErrs, healthyErrs = 0, 0
	for i := 0; i < 20; i++ {
		p.Invoke("sick", nil, func(inv Invocation) {
			if inv.Err != nil {
				sickErrs++
			}
		})
		p.Invoke("healthy", nil, func(inv Invocation) {
			if inv.Err != nil {
				healthyErrs++
			}
		})
	}
	loop.Run()
	if sickErrs != 0 {
		t.Fatalf("function-level injector did not shield its function: %d errors", sickErrs)
	}
	if healthyErrs != 20 {
		t.Fatalf("platform injector should still govern untargeted function: %d/20", healthyErrs)
	}
}

// TestChaosForceColdAndEviction covers the cold-start storm primitives:
// ForceCold makes every invocation a cold start, and EvictAllWarm clears
// warm pools so the next natural invocation is cold again.
func TestChaosForceColdAndEviction(t *testing.T) {
	loop := sim.NewLoop(5)
	p := NewPlatform(loop)
	fn := p.Register("f", DefaultConfig(), echoHandler)

	// Warm the function up: one invocation, then let it finish.
	p.Invoke("f", nil, func(Invocation) {})
	loop.Run()
	if fn.WarmInstances(loop.Now()) == 0 {
		t.Fatal("no warm instance after first invocation")
	}

	// A warm invocation must not be cold.
	var cold bool
	p.Invoke("f", nil, func(inv Invocation) { cold = inv.Cold })
	loop.Run()
	if cold {
		t.Fatal("second invocation was cold despite warm instance")
	}

	// ForceCold overrides the warm pool.
	p.SetChaos(&Chaos{ForceCold: true})
	before := fn.ColdStarts.Value()
	for i := 0; i < 5; i++ {
		p.Invoke("f", nil, func(inv Invocation) {
			if !inv.Cold {
				t.Error("ForceCold invocation was warm")
			}
		})
	}
	loop.Run()
	if got := fn.ColdStarts.Value() - before; got != 5 {
		t.Fatalf("ColdStarts delta = %d, want 5", got)
	}
	p.SetChaos(nil)

	// Eviction empties the pool; the next invocation is naturally cold.
	if n := p.EvictAllWarm(); n == 0 {
		t.Fatal("EvictAllWarm evicted nothing")
	}
	if fn.WarmInstances(loop.Now()) != 0 {
		t.Fatal("warm instances survive eviction")
	}
	p.Invoke("f", nil, func(inv Invocation) { cold = inv.Cold })
	loop.Run()
	if !cold {
		t.Fatal("post-eviction invocation was warm")
	}
}
