// Package terrain implements procedural content generation (PCG) for the
// MVE's infinite world (paper §II-A, component 7). Two world types match
// the paper's experiment matrix (Table I):
//
//   - default: layered value-noise terrain with mountains, rivers (water
//     below sea level), beaches, and biome-dependent surface blocks; this
//     is the compute-intensive generator that the terrain-generation
//     experiments (Fig. 10, 11, 12) stress.
//   - flat: an infinite plain, cheap to generate, used for the
//     simulated-construct experiments (Fig. 7, 8, 9) so terrain work does
//     not perturb SC measurements.
//
// Generation is a pure function of (seed, chunk position): the same chunk
// is bit-identical whether generated on the game server or inside a
// serverless function, which is what makes Servo's generation offloading
// transparent (paper §III-D).
package terrain

import (
	"math"

	"servo/internal/world"
)

// Generator produces chunks deterministically from their position.
type Generator interface {
	// Generate builds the chunk at pos.
	Generate(pos world.ChunkPos) *world.Chunk
	// WorkUnits estimates the abstract CPU work of generating one chunk,
	// used by the FaaS execution model and the local-generation cost
	// model. It is constant per generator.
	WorkUnits() int
	// Name identifies the world type ("default", "flat").
	Name() string
}

// Flat generates an infinite plain: bedrock, three layers of dirt, and a
// grass surface at FlatSurfaceY.
type Flat struct{}

// FlatSurfaceY is the Y level of the flat world's surface.
const FlatSurfaceY = 4

var _ Generator = Flat{}

// Generate implements Generator.
func (Flat) Generate(pos world.ChunkPos) *world.Chunk {
	c := world.NewChunk(pos)
	for x := 0; x < world.ChunkSizeX; x++ {
		for z := 0; z < world.ChunkSizeZ; z++ {
			c.Set(x, 0, z, world.Block{ID: world.Bedrock})
			for y := 1; y < FlatSurfaceY; y++ {
				c.Set(x, y, z, world.Block{ID: world.Dirt})
			}
			c.Set(x, FlatSurfaceY, z, world.Block{ID: world.Grass})
		}
	}
	c.GenWork = flatWorkUnits
	return c
}

// Work-unit constants. One unit ≈ one column of simple block writes; the
// default generator's figure reflects multi-octave noise per column plus
// decoration passes, calibrated so that a default chunk takes ~600 ms of
// single-vCPU FaaS time (Fig. 11 anchor) while a flat chunk is ~50× cheaper.
const (
	flatWorkUnits    = 256
	defaultWorkUnits = 12800
)

// WorkUnits implements Generator.
func (Flat) WorkUnits() int { return flatWorkUnits }

// Name implements Generator.
func (Flat) Name() string { return "flat" }

// Default is the natural-terrain generator. It layers three octaves of
// smooth value noise into a heightmap, carves water below sea level, and
// picks surface blocks by height band (beach/grass/stone/snow).
type Default struct {
	Seed int64
}

var _ Generator = Default{}

// Terrain shape constants for the default generator.
const (
	seaLevel   = 62
	baseHeight = 64
)

// Generate implements Generator.
func (g Default) Generate(pos world.ChunkPos) *world.Chunk {
	c := world.NewChunk(pos)
	origin := pos.Origin()
	for x := 0; x < world.ChunkSizeX; x++ {
		for z := 0; z < world.ChunkSizeZ; z++ {
			wx, wz := origin.X+x, origin.Z+z
			h := g.heightAt(wx, wz)
			c.Set(x, 0, z, world.Block{ID: world.Bedrock})
			for y := 1; y <= h && y < world.ChunkSizeY; y++ {
				c.Set(x, y, z, world.Block{ID: world.Stone})
			}
			g.decorateColumn(c, x, z, h)
			for y := h + 1; y <= seaLevel; y++ {
				c.Set(x, y, z, world.Block{ID: world.Water})
			}
		}
	}
	c.GenWork = defaultWorkUnits
	return c
}

// decorateColumn replaces the top of a stone column with biome surface
// material.
func (g Default) decorateColumn(c *world.Chunk, x, z, h int) {
	if h <= 0 || h >= world.ChunkSizeY {
		return
	}
	var surface world.BlockID
	switch {
	case h < seaLevel+2:
		surface = world.Sand
	case h > baseHeight+40:
		surface = world.Snow
	case h > baseHeight+24:
		surface = world.Gravel
	default:
		surface = world.Grass
	}
	c.Set(x, h, z, world.Block{ID: surface})
	if surface == world.Grass || surface == world.Sand {
		for y := h - 1; y > h-4 && y > 0; y-- {
			c.Set(x, y, z, world.Block{ID: world.Dirt})
		}
	}
}

// heightAt computes the terrain height via three noise octaves.
func (g Default) heightAt(x, z int) int {
	h := float64(baseHeight)
	h += 28 * g.noise(float64(x)/173.0, float64(z)/173.0, 0)
	h += 12 * g.noise(float64(x)/59.0, float64(z)/59.0, 1)
	h += 4 * g.noise(float64(x)/17.0, float64(z)/17.0, 2)
	if h < 1 {
		h = 1
	}
	if h > world.ChunkSizeY-2 {
		h = world.ChunkSizeY - 2
	}
	return int(h)
}

// noise is smooth 2D value noise in [-1, 1]: hash lattice values with
// smoothstep bilinear interpolation.
func (g Default) noise(x, z float64, octave int64) float64 {
	x0, z0 := math.Floor(x), math.Floor(z)
	fx, fz := x-x0, z-z0
	ix, iz := int64(x0), int64(z0)
	v00 := g.lattice(ix, iz, octave)
	v10 := g.lattice(ix+1, iz, octave)
	v01 := g.lattice(ix, iz+1, octave)
	v11 := g.lattice(ix+1, iz+1, octave)
	sx, sz := smoothstep(fx), smoothstep(fz)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sz
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// lattice returns a deterministic pseudo-random value in [-1, 1] for an
// integer lattice point, derived from the seed with an avalanche mixer
// (splitmix64 finalizer).
func (g Default) lattice(x, z, octave int64) float64 {
	h := uint64(g.Seed) ^ 0x9e3779b97f4a7c15
	h = mix64(h ^ uint64(x)*0xbf58476d1ce4e5b9)
	h = mix64(h ^ uint64(z)*0x94d049bb133111eb)
	h = mix64(h ^ uint64(octave)*0xd6e8feb86659fd93)
	return float64(int64(h>>11))/float64(1<<52) - 1 // [-1, 1)
}

func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// WorkUnits implements Generator.
func (Default) WorkUnits() int { return defaultWorkUnits }

// Name implements Generator.
func (Default) Name() string { return "default" }

// ForWorldType returns the generator for a Table I world type name.
// Unknown names fall back to the default generator.
func ForWorldType(name string, seed int64) Generator {
	if name == "flat" {
		return Flat{}
	}
	return Default{Seed: seed}
}
