package world

import "testing"

func TestOwnershipDefaultsMatchPartition(t *testing.T) {
	tab := NewOwnershipTable(3, 4)
	part := Partition{Shards: 3, BandChunks: 4}
	for x := -40; x <= 40; x++ {
		cp := ChunkPos{X: x}
		if got, want := tab.ShardOf(cp), part.ShardOf(cp); got != want {
			t.Fatalf("fresh table disagrees with partition at %v: %d vs %d", cp, got, want)
		}
	}
	if tab.Epoch() != 0 {
		t.Fatalf("fresh table epoch = %d, want 0", tab.Epoch())
	}
}

func TestOwnershipSetOwnerBumpsEpoch(t *testing.T) {
	tab := NewOwnershipTable(2, 4)
	if !tab.SetOwner(2, 1) {
		t.Fatal("SetOwner(2, 1) refused")
	}
	if tab.Epoch() != 1 {
		t.Fatalf("epoch = %d after one migration, want 1", tab.Epoch())
	}
	if got := tab.Owner(2); got != 1 {
		t.Fatalf("band 2 owner = %d, want 1", got)
	}
	// No-op: already owned by 1.
	if tab.SetOwner(2, 1) {
		t.Fatal("re-assigning to the current owner must be a no-op")
	}
	if tab.Epoch() != 1 {
		t.Fatalf("no-op bumped the epoch to %d", tab.Epoch())
	}
	// Back to the default interleave drops the override.
	if !tab.SetOwner(2, 0) {
		t.Fatal("migrating back refused")
	}
	if len(tab.Overrides()) != 0 {
		t.Fatalf("override not dropped on return to default: %v", tab.Overrides())
	}
	if tab.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", tab.Epoch())
	}
}

func TestOwnershipDeadShardReroutesDeterministically(t *testing.T) {
	tab := NewOwnershipTable(3, 4)
	if !tab.SetDead(1, true) {
		t.Fatal("SetDead refused")
	}
	for band := -20; band <= 20; band++ {
		o := tab.Owner(band)
		if o == 1 {
			t.Fatalf("band %d still routed to the dead shard", band)
		}
		if o != tab.Owner(band) {
			t.Fatalf("band %d reroute is unstable", band)
		}
	}
	// Revival reverts the reroute exactly.
	if !tab.SetDead(1, false) {
		t.Fatal("revive refused")
	}
	part := Partition{Shards: 3, BandChunks: 4}
	for x := -40; x <= 40; x++ {
		cp := ChunkPos{X: x}
		if got, want := tab.ShardOf(cp), part.ShardOf(cp); got != want {
			t.Fatalf("post-revival ownership differs at %v: %d vs %d", cp, got, want)
		}
	}
}

func TestOwnershipRefusesKillingLastShard(t *testing.T) {
	tab := NewOwnershipTable(2, 4)
	if !tab.SetDead(0, true) {
		t.Fatal("first kill refused")
	}
	if tab.SetDead(1, true) {
		t.Fatal("killing the last alive shard must be refused")
	}
	if tab.SetOwner(3, 0) {
		t.Fatal("migrating a band to a dead shard must be refused")
	}
}

func TestOwnershipEncodeDecodeAdopt(t *testing.T) {
	tab := NewOwnershipTable(4, 8)
	tab.SetOwner(-3, 2)
	tab.SetOwner(5, 0)
	tab.SetDead(3, true) // liveness must not be encoded

	dec, err := DecodeOwnershipTable(tab.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch() != tab.Epoch() {
		t.Fatalf("epoch: %d vs %d", dec.Epoch(), tab.Epoch())
	}
	if got, want := len(dec.Overrides()), len(tab.Overrides()); got != want {
		t.Fatalf("overrides: %d vs %d", got, want)
	}
	if !dec.Alive(3) {
		t.Fatal("liveness leaked through the encoding")
	}
	for _, ov := range tab.Overrides() {
		if dec.Owner(ov.Band) != ov.Owner {
			t.Fatalf("band %d owner: %d vs %d", ov.Band, dec.Owner(ov.Band), ov.Owner)
		}
	}

	fresh := NewOwnershipTable(4, 8)
	if !fresh.Adopt(dec) {
		t.Fatal("Adopt refused a newer matching table")
	}
	if fresh.Owner(-3) != 2 || fresh.Epoch() != tab.Epoch() {
		t.Fatal("Adopt did not carry the overrides/epoch")
	}
	// Mismatched geometry is never adopted.
	other := NewOwnershipTable(2, 8)
	if other.Adopt(dec) {
		t.Fatal("Adopt accepted a table with different geometry")
	}

	if _, err := DecodeOwnershipTable([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}

func TestRegionViewFollowsLiveTable(t *testing.T) {
	tab := NewOwnershipTable(2, 4)
	r0, r1 := tab.View(0), tab.View(1)
	cp := ChunkPos{X: 9} // band 2, default owner shard 0
	if !r0.Contains(cp) || r1.Contains(cp) {
		t.Fatal("initial ownership wrong")
	}
	tab.SetOwner(2, 1)
	if r0.Contains(cp) || !r1.Contains(cp) {
		t.Fatal("region views did not follow the migration")
	}
}
