package world

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Chunk is one 16×16×256 column of blocks. Blocks are stored in a flat
// array indexed by (y, z, x); the zero value of the array is all Air, so a
// freshly allocated chunk is valid empty space.
type Chunk struct {
	Pos    ChunkPos
	blocks [BlocksPerChunk]Block
	// Version counts mutations, used by the persistence layer to detect
	// dirty chunks and by tests to assert copy semantics.
	Version uint64
	// GenWork records the number of abstract work units spent generating
	// this chunk (0 for hand-built chunks); the cost model charges it
	// when a locally-generated chunk is applied on the game loop.
	GenWork int
}

// NewChunk returns an empty (all-air) chunk at pos.
func NewChunk(pos ChunkPos) *Chunk {
	return &Chunk{Pos: pos}
}

func blockIndex(x, y, z int) int {
	return (y*ChunkSizeZ+z)*ChunkSizeX + x
}

// At returns the block at chunk-local coordinates. Coordinates outside the
// chunk bounds return Air.
func (c *Chunk) At(x, y, z int) Block {
	if x < 0 || x >= ChunkSizeX || z < 0 || z >= ChunkSizeZ || y < 0 || y >= ChunkSizeY {
		return Block{}
	}
	return c.blocks[blockIndex(x, y, z)]
}

// Set writes the block at chunk-local coordinates. Out-of-bounds writes are
// ignored.
func (c *Chunk) Set(x, y, z int, b Block) {
	if x < 0 || x >= ChunkSizeX || z < 0 || z >= ChunkSizeZ || y < 0 || y >= ChunkSizeY {
		return
	}
	i := blockIndex(x, y, z)
	if c.blocks[i] != b {
		c.blocks[i] = b
		c.Version++
	}
}

// SurfaceY returns the Y coordinate of the highest solid block in the given
// column, or -1 if the column is empty.
func (c *Chunk) SurfaceY(x, z int) int {
	for y := ChunkSizeY - 1; y >= 0; y-- {
		if c.blocks[blockIndex(x, y, z)].ID.Solid() {
			return y
		}
	}
	return -1
}

// NonAirCount returns the number of non-air blocks, a cheap density measure
// used by tests and the cost model.
func (c *Chunk) NonAirCount() int {
	n := 0
	for _, b := range c.blocks {
		if !b.IsAir() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the chunk.
func (c *Chunk) Clone() *Chunk {
	out := *c
	return &out
}

// Equal reports whether two chunks hold identical block data at the same
// position (versions and generation metadata are ignored).
func (c *Chunk) Equal(o *Chunk) bool {
	return c.Pos == o.Pos && c.blocks == o.blocks
}

// --- Binary encoding -------------------------------------------------------
//
// Format (little-endian):
//
//	magic   uint32  = 0x53564f43 ("SVOC")
//	posX    int32
//	posZ    int32
//	palLen  uint16          number of palette entries
//	palette palLen × uint16 packed Block keys
//	bits    uint8           index width in bits (1..16)
//	data    ceil(BlocksPerChunk*bits/8) bytes of packed indices
//
// The palette makes typical terrain chunks (a handful of block types)
// encode in a few kilobytes instead of the raw 128 KiB.

const chunkMagic = 0x53564f43

// ErrBadChunkEncoding is returned by DecodeChunk for malformed input.
var ErrBadChunkEncoding = errors.New("world: bad chunk encoding")

// bitsFor returns the number of bits needed to index n palette entries.
func bitsFor(n int) uint {
	bits := uint(1)
	for (1 << bits) < n {
		bits++
	}
	return bits
}

// Encode serialises the chunk to the palette format described above.
func (c *Chunk) Encode() []byte {
	return c.EncodeAppend(nil)
}

// EncodeAppend serialises the chunk to the palette format described above,
// appending to dst and returning the extended slice. With a reused scratch
// buffer (`buf = c.EncodeAppend(buf[:0])`) it performs zero allocations
// once the buffer has grown to steady-state capacity — EncodeAppend is the
// hot path of chunk persistence, terrain generation and the wire protocol.
//
// Palette lookups use a linear scan with a last-hit memo instead of a map:
// real chunks have tiny palettes (a handful of block types) and long runs
// of identical blocks, which makes this several times faster than hashing.
// The palette is discovered in a first pass that writes it straight into
// dst (first-appearance order for determinism); a second pass re-derives
// each block's index against that in-place palette and packs the bits, so
// no 64K index side-table is materialised.
func (c *Chunk) EncodeAppend(dst []byte) []byte {
	base := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, chunkMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(c.Pos.X)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(c.Pos.Z)))
	dst = binary.LittleEndian.AppendUint16(dst, 0) // palLen, patched below
	palOff := len(dst)
	lastKey := uint16(0xffff)
	for i := range c.blocks {
		k := c.blocks[i].key()
		if k == lastKey {
			continue
		}
		found := false
		for j := palOff; j < len(dst); j += 2 {
			if binary.LittleEndian.Uint16(dst[j:]) == k {
				found = true
				break
			}
		}
		if !found {
			dst = binary.LittleEndian.AppendUint16(dst, k)
		}
		lastKey = k
	}
	palLen := (len(dst) - palOff) / 2
	binary.LittleEndian.PutUint16(dst[base+12:], uint16(palLen))
	bits := bitsFor(palLen)
	dst = append(dst, byte(bits))
	dataLen := (BlocksPerChunk*int(bits) + 7) / 8
	dataOff := len(dst)
	// The region must start zeroed because writeBits ORs into it. A warm
	// buffer re-slices and clears in place — unconditional
	// append(s, make(...)...) is compiled to the same thing in normal
	// builds, but allocates under the race detector's instrumentation,
	// which would fail the codec's gated zero-alloc contract there too.
	if cap(dst) >= dataOff+dataLen {
		dst = dst[:dataOff+dataLen]
		clear(dst[dataOff:])
	} else {
		dst = append(dst, make([]byte, dataLen)...)
	}
	data := dst[dataOff:]
	lastKey = 0xffff
	lastIdx := uint32(0)
	var bitPos uint
	for i := range c.blocks {
		k := c.blocks[i].key()
		if k != lastKey {
			for j := 0; j < palLen; j++ {
				if binary.LittleEndian.Uint16(dst[palOff+2*j:]) == k {
					lastKey, lastIdx = k, uint32(j)
					break
				}
			}
		}
		writeBits(data, bitPos, bits, lastIdx)
		bitPos += bits
	}
	return dst
}

// DecodeChunk parses a chunk previously produced by Encode.
func DecodeChunk(buf []byte) (*Chunk, error) {
	c := new(Chunk)
	if err := DecodeChunkInto(c, buf); err != nil {
		return nil, err
	}
	return c, nil
}

// DecodeChunkInto parses a chunk previously produced by Encode into c,
// overwriting every block plus Pos, Version and GenWork — the chunk needs
// no prior reset, so pooled (recycled) chunks decode identically to fresh
// ones. On error the chunk's contents are unspecified. Small palettes
// (the terrain norm) decode with zero allocations.
func DecodeChunkInto(c *Chunk, buf []byte) error {
	if len(buf) < 15 {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrBadChunkEncoding, len(buf))
	}
	if binary.LittleEndian.Uint32(buf) != chunkMagic {
		return fmt.Errorf("%w: bad magic", ErrBadChunkEncoding)
	}
	pos := ChunkPos{
		X: int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		Z: int(int32(binary.LittleEndian.Uint32(buf[8:]))),
	}
	palLen := int(binary.LittleEndian.Uint16(buf[12:]))
	if palLen == 0 {
		return fmt.Errorf("%w: empty palette", ErrBadChunkEncoding)
	}
	off := 14
	if len(buf) < off+2*palLen+1 {
		return fmt.Errorf("%w: truncated palette", ErrBadChunkEncoding)
	}
	var palArr [64]Block
	var palette []Block
	if palLen <= len(palArr) {
		palette = palArr[:palLen]
	} else {
		palette = make([]Block, palLen)
	}
	for i := range palette {
		palette[i] = blockFromKey(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
	}
	bits := uint(buf[off])
	off++
	if bits == 0 || bits > 16 {
		return fmt.Errorf("%w: bad index width %d", ErrBadChunkEncoding, bits)
	}
	dataLen := (BlocksPerChunk*int(bits) + 7) / 8
	if len(buf) < off+dataLen {
		return fmt.Errorf("%w: truncated block data", ErrBadChunkEncoding)
	}
	data := buf[off : off+dataLen]
	c.Pos = pos
	c.Version = 0
	c.GenWork = 0
	var bitPos uint
	for i := 0; i < BlocksPerChunk; i++ {
		idx := readBits(data, bitPos, bits)
		bitPos += bits
		if int(idx) >= palLen {
			return fmt.Errorf("%w: palette index %d out of range", ErrBadChunkEncoding, idx)
		}
		c.blocks[i] = palette[idx]
	}
	return nil
}

// writeBits writes the low `bits` bits of v at bit offset pos. Values span
// at most three bytes (bits ≤ 16), written little-endian within the byte
// stream.
func writeBits(data []byte, pos, bits uint, v uint32) {
	w := uint32(v) << (pos % 8)
	i := pos / 8
	data[i] |= byte(w)
	if bits+pos%8 > 8 {
		data[i+1] |= byte(w >> 8)
	}
	if bits+pos%8 > 16 {
		data[i+2] |= byte(w >> 16)
	}
}

// readBits reads `bits` bits at bit offset pos.
func readBits(data []byte, pos, bits uint) uint32 {
	i := pos / 8
	var v uint32 = uint32(data[i])
	if i+1 < uint(len(data)) {
		v |= uint32(data[i+1]) << 8
	}
	if i+2 < uint(len(data)) {
		v |= uint32(data[i+2]) << 16
	}
	return (v >> (pos % 8)) & ((1 << bits) - 1)
}
