package experiment

import (
	"fmt"
	"io"
	"time"

	"servo/internal/blob"
	"servo/internal/core"
	"servo/internal/metrics"
	"servo/internal/mve"
	"servo/internal/sim"
	"servo/internal/world"
)

// Fig13 (paper §IV-F): terrain-retrieval latency for three storage
// configurations — local disk, serverless storage, and serverless storage
// behind Servo's pre-fetching cache — under an 8-player S3 workload on the
// default world. The paper's curves contain 13k–25k retrievals each.

// StorageConfig names one Fig. 13 curve.
type StorageConfig int

// The three configurations.
const (
	StorageLocal StorageConfig = iota + 1
	StorageServerless
	StorageServerlessCache
)

// String implements fmt.Stringer.
func (c StorageConfig) String() string {
	switch c {
	case StorageLocal:
		return "Local"
	case StorageServerless:
		return "Serverless"
	case StorageServerlessCache:
		return "Serverless+Cache"
	}
	return "unknown"
}

// StorageConfigs lists the curves in presentation order.
var StorageConfigs = []StorageConfig{StorageLocal, StorageServerless, StorageServerlessCache}

// Fig13Report holds the latency distribution per configuration.
type Fig13Report struct {
	Latency map[StorageConfig]*metrics.Sample
}

// ICDFFractions is the log-scale fraction axis of Fig. 13.
var ICDFFractions = []float64{1, 0.5, 0.1, 0.01, 0.001, 0.0001}

// Fig13 measures terrain retrieval latency under the three storage
// configurations. The world is written once (exploration run persists
// terrain), then re-read by a second population re-exploring the same
// area, so retrievals hit storage rather than the generator.
func Fig13(opt Options) *Fig13Report {
	r := &Fig13Report{Latency: make(map[StorageConfig]*metrics.Sample)}
	for _, cfg := range StorageConfigs {
		r.Latency[cfg] = fig13Run(cfg, opt)
		opt.logf("fig13: %s n=%d p99.9=%v", cfg, r.Latency[cfg].Len(), r.Latency[cfg].Percentile(99.9))
	}
	return r
}

// storeLatencyProbe wraps a ChunkStore and records per-load latency as
// observed from the game loop (for configurations whose store does not
// already record it).
type storeLatencyProbe struct {
	inner   mve.ChunkStore
	clock   sim.Clock
	Latency *metrics.Sample
}

var _ mve.ChunkStore = (*storeLatencyProbe)(nil)

func (p *storeLatencyProbe) Load(pos world.ChunkPos, cb func(*world.Chunk, bool)) {
	start := p.clock.Now()
	p.inner.Load(pos, func(c *world.Chunk, ok bool) {
		if ok {
			p.Latency.Add(p.clock.Now() - start)
		}
		cb(c, ok)
	})
}

func (p *storeLatencyProbe) Store(c *world.Chunk) { p.inner.Store(c) }

func fig13Run(cfg StorageConfig, opt Options) *metrics.Sample {
	loop := sim.NewLoop(opt.Seed)
	coreCfg := core.Config{
		Seed:      opt.Seed,
		WorldType: "default",
		Profile:   mve.ProfileServo,
	}
	switch cfg {
	case StorageLocal:
		coreCfg.LocalStore = true
	case StorageServerless:
		coreCfg.ServerlessRS = true
		coreCfg.DisableCache = true
		coreCfg.StorageTier = blob.TierPremium
	case StorageServerlessCache:
		coreCfg.ServerlessRS = true
		coreCfg.StorageTier = blob.TierPremium
	}
	sys := core.New(loop, coreCfg)

	// Phase 1 (write): 8 star players explore, persisting terrain.
	window := opt.window(10 * time.Minute)
	connectPlayers(sys.Server, 8, "S3")
	sys.Server.Start()
	loop.RunUntil(window)
	sys.Server.Stop()
	if sys.Cache != nil {
		sys.Cache.Flush()
	}
	loop.RunUntil(loop.Now() + time.Minute)

	// Phase 2 (read): a fresh server over the same storage re-explores
	// the same area (same seed ⇒ same directions), so chunk demand is
	// served from storage.
	srvCfg2 := coreCfg
	sys2 := rebuildOverSameStorage(loop, srvCfg2, sys)
	connectPlayers(sys2.Server, 8, "S3")
	sys2.Server.Start()
	loop.RunUntil(loop.Now() + window)
	sys2.Server.Stop()

	switch cfg {
	case StorageServerlessCache:
		return &sys2.Cache.RetrievalLatency
	default:
		probe := sys2.Server.Config().Store.(*storeLatencyProbe)
		return probe.Latency
	}
}

// rebuildOverSameStorage builds a second system whose remote store starts
// with the first phase's data (cold local cache, warm remote), wrapping
// non-cache stores in a latency probe.
func rebuildOverSameStorage(loop *sim.Loop, cfg core.Config, prev *core.System) *core.System {
	// Hand the previous phase's storage to the new system before it boots,
	// so the restarted server's spawn loading reads real data (the
	// boot-time cold reads of §IV-F), and interpose the latency probe
	// before boot so those reads are measured.
	cfg.Remote = prev.Remote
	if cfg.DisableCache || cfg.LocalStore {
		cfg.WrapStore = func(inner mve.ChunkStore) mve.ChunkStore {
			return &storeLatencyProbe{inner: inner, clock: loop, Latency: metrics.NewSample(4096)}
		}
	}
	return core.New(loop, cfg)
}

// Print renders the inverse CDF of each configuration (Fig. 13's axes).
func (r *Fig13Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 13 — Terrain retrieval latency (inverse CDF)")
	t := metrics.Table{Header: []string{"fraction >", "Local", "Serverless", "Serverless+Cache"}}
	for _, f := range ICDFFractions {
		row := []string{fmt.Sprintf("%g", f)}
		for _, cfg := range StorageConfigs {
			pts := r.Latency[cfg].ICDF([]float64{f})
			row = append(row, msCell(pts[0].Latency))
		}
		t.AddRow(row...)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "(ms; samples: Local %d, Serverless %d, Serverless+Cache %d)\n",
		r.Latency[StorageLocal].Len(), r.Latency[StorageServerless].Len(),
		r.Latency[StorageServerlessCache].Len())
}

// --- Fig. 3: raw blob-store latency ------------------------------------------

// Fig3Report holds download latencies per (data type, service tier).
type Fig3Report struct {
	// Latency[dataType][tier]; data types are "Player" (small objects)
	// and "Terrain" (chunk-sized objects).
	Latency map[string]map[blob.Tier]metrics.Boxplot
}

// Fig3 measures blob-store download latency for player- and terrain-data
// on the Premium and Standard tiers (paper §II-D, Fig. 3).
func Fig3(opt Options) *Fig3Report {
	r := &Fig3Report{Latency: make(map[string]map[blob.Tier]metrics.Boxplot)}
	n := int(1000 * opt.Scale * 10)
	if n < 300 {
		n = 300
	}
	for _, data := range []struct {
		name string
		size int
	}{{"Player", 2 * 1024}, {"Terrain", 64 * 1024}} {
		r.Latency[data.name] = make(map[blob.Tier]metrics.Boxplot)
		for _, tier := range []blob.Tier{blob.TierPremium, blob.TierStandard} {
			loop := sim.NewLoop(opt.Seed)
			store := blob.NewStore(loop, tier)
			store.Put("obj", make([]byte, data.size), nil)
			loop.Run()
			for i := 0; i < n; i++ {
				store.Get("obj", func([]byte, error) {})
			}
			loop.Run()
			r.Latency[data.name][tier] = store.ReadLatency.Box()
			opt.logf("fig3: %s %s p50=%v", data.name, tier, r.Latency[data.name][tier].P50)
		}
	}
	return r
}

// Print renders the boxplot rows with the genre latency thresholds the
// paper overlays (FPS 100 ms, RPG 500 ms, RTS 1000 ms).
func (r *Fig3Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 3 — Download latency from serverless storage")
	t := metrics.Table{Header: []string{"data", "tier", "p5", "p25", "p50", "p75", "p95", "max"}}
	for _, name := range []string{"Player", "Terrain"} {
		for _, tier := range []blob.Tier{blob.TierPremium, blob.TierStandard} {
			b := r.Latency[name][tier]
			t.AddRow(name, tier.String(),
				msCell(b.P5), msCell(b.P25), msCell(b.P50), msCell(b.P75), msCell(b.P95), msCell(b.Max))
		}
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "(genre thresholds: FPS 100 ms, RPG 500 ms, RTS 1000 ms)")
}
