package mve

import (
	"testing"
	"time"

	"servo/internal/sc"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/world"
)

func TestLocalSCEveryOtherTick(t *testing.T) {
	b := NewLocalSC(true)
	b.Add(sc.NewClock(3, 1))
	b.Add(sc.NewClock(3, 2))
	simulated := 0
	for tick := uint64(1); tick <= 10; tick++ {
		w := b.Tick(tick)
		if w.Simulated {
			simulated++
			if w.LocalSteps != 2 {
				t.Fatalf("tick %d: %d local steps, want 2", tick, w.LocalSteps)
			}
			if w.WorkUnits <= 0 {
				t.Fatal("simulated tick must report work")
			}
		} else if w.WorkUnits != 0 {
			t.Fatal("skipped tick must report zero work")
		}
	}
	if simulated != 5 {
		t.Fatalf("simulated on %d of 10 ticks, want 5 (every other)", simulated)
	}
}

func TestLocalSCEveryTick(t *testing.T) {
	b := NewLocalSC(false)
	b.Add(sc.NewClock(3, 1))
	for tick := uint64(1); tick <= 6; tick++ {
		if w := b.Tick(tick); !w.Simulated || w.LocalSteps != 1 {
			t.Fatalf("tick %d: %+v, want one step every tick", tick, w)
		}
	}
}

func TestLocalSCAddRemoveModify(t *testing.T) {
	b := NewLocalSC(false)
	id := b.Add(sc.NewClock(3, 1))
	if b.Count() != 1 {
		t.Fatal("count after add")
	}
	touched := false
	if !b.Modify(id, func(*sc.Construct) { touched = true }) || !touched {
		t.Fatal("modify must run the mutation")
	}
	if b.Modify(999, func(*sc.Construct) {}) {
		t.Fatal("modify of unknown id must fail")
	}
	b.Remove(id)
	if b.Count() != 0 || b.Construct(id) != nil {
		t.Fatal("remove failed")
	}
	if w := b.Tick(1); w.Simulated {
		t.Fatal("empty backend must report nothing simulated")
	}
}

func TestLocalTerrainWorkerPoolThroughput(t *testing.T) {
	loop := sim.NewLoop(1)
	lt := NewLocalTerrain(loop, terrain.Default{Seed: 1})
	// Request 3× the pool size; only `workers` may run at once.
	for i := 0; i < 3*DefaultLocalWorkers; i++ {
		lt.Request(world.ChunkPos{X: i, Z: 0})
	}
	busy, queued := lt.Load()
	if busy != DefaultLocalWorkers {
		t.Fatalf("busy = %d, want the full pool (%d)", busy, DefaultLocalWorkers)
	}
	if queued != 2*DefaultLocalWorkers {
		t.Fatalf("queued = %d, want %d", queued, 2*DefaultLocalWorkers)
	}
	loop.Run()
	if got := len(lt.Drain()); got != 3*DefaultLocalWorkers {
		t.Fatalf("completed %d chunks, want %d", got, 3*DefaultLocalWorkers)
	}
	if busy, queued := lt.Load(); busy != 0 || queued != 0 {
		t.Fatal("pool not idle after completion")
	}
}

func TestLocalTerrainDeduplicatesRequests(t *testing.T) {
	loop := sim.NewLoop(2)
	lt := NewLocalTerrain(loop, terrain.Flat{})
	pos := world.ChunkPos{X: 1, Z: 1}
	lt.Request(pos)
	lt.Request(pos)
	lt.Request(pos)
	loop.Run()
	if got := len(lt.Drain()); got != 1 {
		t.Fatalf("%d chunks for one position, want 1", got)
	}
}

func TestLocalTerrainGenerationTimeScalesWithWorld(t *testing.T) {
	timeFor := func(gen terrain.Generator) time.Duration {
		loop := sim.NewLoop(3)
		lt := NewLocalTerrain(loop, gen)
		lt.Request(world.ChunkPos{})
		start := loop.Now()
		loop.Run()
		return loop.Now() - start
	}
	flat, def := timeFor(terrain.Flat{}), timeFor(terrain.Default{Seed: 1})
	if def <= 10*flat {
		t.Fatalf("default world (%v) must be far slower than flat (%v)", def, flat)
	}
	// The Fig. 10 calibration: a default chunk takes ~270 ms ± variance.
	if def < 150*time.Millisecond || def > 450*time.Millisecond {
		t.Fatalf("default chunk generation = %v, want ~270ms", def)
	}
}

func TestLocalTerrainChunksAreDeterministic(t *testing.T) {
	gen := terrain.Default{Seed: 9}
	loop := sim.NewLoop(4)
	lt := NewLocalTerrain(loop, gen)
	lt.Request(world.ChunkPos{X: 5, Z: -5})
	loop.Run()
	got := lt.Drain()[0]
	if !got.Equal(gen.Generate(world.ChunkPos{X: 5, Z: -5})) {
		t.Fatal("pool-generated chunk differs from direct generation")
	}
}
