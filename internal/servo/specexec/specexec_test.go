package specexec

import (
	"testing"
	"time"

	"servo/internal/faas"
	"servo/internal/sc"
	"servo/internal/sim"
)

// fixture wires a manager to a simulated FaaS platform and a 20 Hz tick
// driver.
type fixture struct {
	loop *sim.Loop
	mgr  *Manager
	fn   *faas.Function
}

const tickInterval = 50 * time.Millisecond

func newFixture(t *testing.T, seed int64, cfg Config, fnCfg faas.Config) *fixture {
	t.Helper()
	loop := sim.NewLoop(seed)
	platform := faas.NewPlatform(loop)
	fn := platform.Register("simulate-sc", fnCfg, Handler)
	return &fixture{loop: loop, mgr: NewManager(platform, "simulate-sc", cfg), fn: fn}
}

// fastFn returns a function config whose execution is fast and
// deterministic: RTT 20 ms, no cold starts, negligible exec time.
func fastFn() faas.Config {
	return faas.Config{
		MemoryMB:      faas.FullVCPUMemMB,
		ColdStart:     sim.Constant(0),
		NetRTT:        sim.Constant(20 * time.Millisecond),
		KeepAlive:     sim.Constant(time.Hour),
		NsPerWorkUnit: time.Nanosecond,
		ParallelFrac:  0.85,
	}
}

// runTicks drives n game ticks at 20 Hz.
func (f *fixture) runTicks(n int) {
	for i := 0; i < n; i++ {
		f.loop.After(tickInterval, func() { f.mgr.Tick() })
		f.loop.RunUntil(f.loop.Now() + tickInterval)
	}
}

func TestSpeculativeStatesMatchPureLocalSimulation(t *testing.T) {
	// THE core invariant (paper §III-C): regardless of function latency,
	// the sequence of authoritative states equals pure local simulation.
	for _, rtt := range []time.Duration{5 * time.Millisecond, 80 * time.Millisecond, 400 * time.Millisecond} {
		fnCfg := fastFn()
		fnCfg.NetRTT = sim.Constant(rtt)
		f := newFixture(t, 1, Config{TickLead: 10, StepsPerInvocation: 40, DetectLoops: false}, fnCfg)

		ref := sc.NewLampBank(4, 8) // pure local reference
		id := f.mgr.Add(ref.Clone())

		for tick := 0; tick < 200; tick++ {
			f.runTicks(1)
			ref.Step()
			got := f.mgr.Construct(id)
			if got.Hash() != ref.Hash() {
				t.Fatalf("rtt=%v: state diverged from local simulation at tick %d", rtt, tick)
			}
		}
	}
}

func TestSpeculativeStatesMatchWithLoopDetection(t *testing.T) {
	f := newFixture(t, 2, Config{TickLead: 10, StepsPerInvocation: 50, DetectLoops: true}, fastFn())
	ref := sc.NewClock(3, 2)
	id := f.mgr.Add(ref.Clone())
	for tick := 0; tick < 400; tick++ {
		f.runTicks(1)
		ref.Step()
		if f.mgr.Construct(id).Hash() != ref.Hash() {
			t.Fatalf("loop replay diverged from local simulation at tick %d", tick)
		}
	}
	if f.mgr.Snapshot().ReplaySteps == 0 {
		t.Fatal("loop detection never kicked in for a periodic clock")
	}
}

func TestLoopDetectionStopsInvocations(t *testing.T) {
	// §III-C1: once the loop is known, the construct must be served
	// without further function invocations.
	f := newFixture(t, 3, Config{TickLead: 10, StepsPerInvocation: 100, DetectLoops: true}, fastFn())
	f.mgr.Add(sc.NewClock(3, 1))
	f.runTicks(100)
	countAt100 := f.fn.Invocations.Count()
	f.runTicks(400)
	if got := f.fn.Invocations.Count(); got != countAt100 {
		t.Fatalf("invocations kept flowing during loop replay: %d → %d", countAt100, got)
	}
}

func TestWithoutLoopDetectionInvocationsContinue(t *testing.T) {
	f := newFixture(t, 3, Config{TickLead: 10, StepsPerInvocation: 50, DetectLoops: false}, fastFn())
	f.mgr.Add(sc.NewClock(3, 1))
	f.runTicks(100)
	c1 := f.fn.Invocations.Count()
	f.runTicks(200)
	if got := f.fn.Invocations.Count(); got <= c1 {
		t.Fatal("invocations must continue without loop detection")
	}
}

func TestEfficiencyHighWithLead(t *testing.T) {
	// Fig. 8: with a 10+ tick lead and fast functions, efficiency is 1.0.
	f := newFixture(t, 4, Config{TickLead: 10, StepsPerInvocation: 50, DetectLoops: false}, fastFn())
	f.mgr.Add(sc.NewLampBank(4, 8))
	f.runTicks(300)
	if len(f.mgr.Efficiency) < 3 {
		t.Fatalf("too few invocations: %d", len(f.mgr.Efficiency))
	}
	// Skip the first invocation (activation hides a cold path).
	for i, e := range f.mgr.Efficiency[1:] {
		if e < 0.999 {
			t.Fatalf("invocation %d efficiency = %v, want 1.0", i+1, e)
		}
	}
}

func TestEfficiencyDegradesWithZeroLeadAndSlowFunction(t *testing.T) {
	// Fig. 8 lead-0 row: the server simulates locally while each
	// invocation is in flight, so efficiency < 1.
	fnCfg := fastFn()
	fnCfg.NetRTT = sim.Constant(400 * time.Millisecond) // 8 ticks in flight
	f := newFixture(t, 5, Config{TickLead: 0, StepsPerInvocation: 50, DetectLoops: false}, fnCfg)
	f.mgr.Add(sc.NewLampBank(4, 8))
	f.runTicks(600)
	med := f.mgr.MedianEfficiency()
	// 8 of every 50 steps are recomputed locally → efficiency ≈ 0.84.
	if med < 0.7 || med > 0.95 {
		t.Fatalf("median efficiency = %v, want ≈ 0.84", med)
	}
	if s := f.mgr.Snapshot(); s.LocalSteps == 0 || s.RemoteSteps == 0 {
		t.Fatalf("expected mixed local/remote execution, got %+v", s)
	}
}

func TestModificationInvalidatesSpeculation(t *testing.T) {
	// A slow function guarantees an invocation is in flight when the
	// player modifies the construct, so its reply arrives stale.
	fnCfg := fastFn()
	fnCfg.NetRTT = sim.Constant(300 * time.Millisecond) // 6 ticks in flight
	f := newFixture(t, 6, Config{TickLead: 10, StepsPerInvocation: 50, DetectLoops: true}, fnCfg)
	ref := sc.NewLampBank(3, 6)
	id := f.mgr.Add(ref.Clone())
	f.runTicks(2)                       // first invocation still in flight
	ref2 := f.mgr.Construct(id).Clone() // sync the reference

	// Player modifies the construct: toggle a source-ish cell.
	mutate := func(c *sc.Construct) {
		cell := c.At(0, 0)
		cell.On = !cell.On
		c.Set(0, 0, cell)
	}
	f.mgr.Modify(id, mutate)
	mutate(ref2)

	// The states must continue to match pure local simulation of the
	// modified construct.
	for tick := 0; tick < 100; tick++ {
		f.runTicks(1)
		ref2.Step()
		if f.mgr.Construct(id).Hash() != ref2.Hash() {
			t.Fatalf("post-modification state diverged at tick %d", tick)
		}
	}
	if f.mgr.Discards.Value() == 0 {
		t.Fatal("in-flight stale reply was never discarded")
	}
}

func TestModifyUnknownConstruct(t *testing.T) {
	f := newFixture(t, 7, DefaultConfig(), fastFn())
	if f.mgr.Modify(99, func(*sc.Construct) {}) {
		t.Fatal("Modify of unknown id must return false")
	}
}

func TestRemoveStopsManagement(t *testing.T) {
	f := newFixture(t, 8, DefaultConfig(), fastFn())
	id := f.mgr.Add(sc.NewClock(3, 1))
	f.runTicks(10)
	f.mgr.Remove(id)
	if f.mgr.Construct(id) != nil || f.mgr.Len() != 0 {
		t.Fatal("construct still present after Remove")
	}
	// In-flight replies for removed constructs must be ignored safely.
	f.runTicks(50)
}

func TestAppliedStepsCheaperThanLocal(t *testing.T) {
	// The point of offloading: applying speculative states must cost far
	// less than local simulation.
	fnCfg := fastFn()
	f := newFixture(t, 9, Config{TickLead: 20, StepsPerInvocation: 100, DetectLoops: false}, fnCfg)
	id := f.mgr.Add(sc.BuildSized(252))
	_ = id
	f.runTicks(5) // warm-up: first reply lands
	var applied, local int
	for i := 0; i < 100; i++ {
		f.loop.After(tickInterval, func() {
			w := f.mgr.Tick()
			if w.AppliedSteps > 0 {
				applied += w.WorkUnits
			} else {
				local += w.WorkUnits
			}
		})
		f.loop.RunUntil(f.loop.Now() + tickInterval)
	}
	if applied == 0 {
		t.Fatal("no speculative states were applied")
	}
	if local > 0 && applied >= local {
		t.Fatalf("applied work (%d) must be below local work (%d)", applied, local)
	}
}

func TestManagerColdStartFallback(t *testing.T) {
	// With a huge cold start, the server must keep ticking locally and
	// remain correct.
	fnCfg := fastFn()
	fnCfg.ColdStart = sim.Constant(2 * time.Second) // 40 ticks
	f := newFixture(t, 10, Config{TickLead: 0, StepsPerInvocation: 100, DetectLoops: false}, fnCfg)
	ref := sc.NewLampBank(2, 4)
	id := f.mgr.Add(ref.Clone())
	for tick := 0; tick < 120; tick++ {
		f.runTicks(1)
		ref.Step()
		if f.mgr.Construct(id).Hash() != ref.Hash() {
			t.Fatalf("diverged at tick %d during cold-start fallback", tick)
		}
	}
	s := f.mgr.Snapshot()
	if s.LocalSteps < 40 {
		t.Fatalf("local fallback steps = %d, want ≥ 40 during cold start", s.LocalSteps)
	}
	if s.RemoteSteps == 0 {
		t.Fatal("speculation never took over after the cold start")
	}
}

func TestSnapshotCounters(t *testing.T) {
	f := newFixture(t, 11, Config{TickLead: 10, StepsPerInvocation: 50, DetectLoops: true}, fastFn())
	f.mgr.Add(sc.NewClock(3, 1))
	f.mgr.Add(sc.NewLampBank(2, 4))
	f.runTicks(200)
	s := f.mgr.Snapshot()
	if s.ConstructCnt != 2 {
		t.Fatalf("ConstructCnt = %d, want 2", s.ConstructCnt)
	}
	if s.LoopsActive == 0 {
		t.Fatal("clock construct should be in loop replay")
	}
	total := s.LocalSteps + s.RemoteSteps + s.ReplaySteps
	if total != 2*200 {
		t.Fatalf("step accounting: %d steps for 2 constructs × 200 ticks", total)
	}
}

func TestMedianEfficiencyEmptyManager(t *testing.T) {
	f := newFixture(t, 12, DefaultConfig(), fastFn())
	if got := f.mgr.MedianEfficiency(); got != -1 {
		t.Fatalf("MedianEfficiency with no invocations = %v, want -1", got)
	}
}

func TestRequestReplyCodecRoundTrip(t *testing.T) {
	c := sc.NewLampBank(3, 5)
	req := Request{
		ConstructID: 7, Version: 3, BaseTick: 1234, Steps: 100,
		DetectLoops: true, Layout: c.EncodeLayout(),
	}
	dec, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if dec.ConstructID != 7 || dec.Version != 3 || dec.BaseTick != 1234 ||
		dec.Steps != 100 || !dec.DetectLoops || string(dec.Layout) != string(req.Layout) {
		t.Fatalf("request round trip mismatch: %+v", dec)
	}

	reply := Reply{
		ConstructID: 7, Version: 3, BaseTick: 1234,
		States: []sc.StateVector{{1, 2}, {3, 4, 5, 6}},
		Loop:   &sc.LoopInfo{EntryIndex: 1, Period: 4},
	}
	decR, err := DecodeReply(EncodeReply(reply))
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if decR.Loop == nil || decR.Loop.Period != 4 || len(decR.States) != 2 ||
		string(decR.States[1]) != string(reply.States[1]) {
		t.Fatalf("reply round trip mismatch: %+v", decR)
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("DecodeRequest accepted truncated input")
	}
	if _, err := DecodeReply([]byte{1, 2, 3}); err == nil {
		t.Fatal("DecodeReply accepted truncated input")
	}
	full := EncodeReply(Reply{States: []sc.StateVector{{1, 2, 3, 4}}})
	if _, err := DecodeReply(full[:len(full)-2]); err == nil {
		t.Fatal("DecodeReply accepted truncated states")
	}
}

func TestHandlerRejectsGarbage(t *testing.T) {
	resp, work := Handler([]byte{1, 2, 3})
	if resp != nil || work != 1 {
		t.Fatal("Handler must fail cleanly on garbage input")
	}
	// Valid header, garbage layout.
	req := Request{Steps: 10, Layout: []byte{9, 9, 9}}
	resp, _ = Handler(EncodeRequest(req))
	if resp != nil {
		t.Fatal("Handler must fail cleanly on a corrupt layout")
	}
}
