// Package servo is the public API of the Servo reproduction: a serverless
// backend architecture for modifiable virtual environments (MVEs), after
// Donkervliet et al., "Servo: Increasing the Scalability of Modifiable
// Virtual Environments Using Serverless Computing", ICDCS 2023.
//
// The library bundles a complete MVE substrate (voxel world, 20 Hz game
// loop, players, procedural terrain, redstone-style simulated constructs),
// a simulated serverless platform (FaaS with cold starts and
// memory-proportional compute; blob storage with realistic latency tails),
// and Servo's three contributions on top:
//
//   - speculative offloading of simulated constructs to functions, with
//     logical-timestamp invalidation and loop detection (§III-C);
//   - serverless terrain generation with unbounded fan-out (§III-D);
//   - cached remote state storage with distance pre-fetching (§III-E).
//
// # Quick start
//
//	inst := servo.NewInstance(servo.Config{Seed: 1, WorldType: "flat", Servo: servo.AllServerless()})
//	inst.SpawnConstruct(servo.NewClockCircuit(), servo.At(4, 5, 4))
//	inst.Connect("alice", servo.BehaviorRandom)
//	inst.Run(5 * time.Minute)
//	fmt.Println(inst.TickStats())
//
// Instances run on a deterministic virtual clock by default (experiments
// complete in milliseconds); pass RealTime to run against the wall clock
// for interactive use (see cmd/servo-server).
package servo

import (
	"fmt"
	"io"
	"time"

	"servo/internal/blob"
	"servo/internal/cluster"
	"servo/internal/core"
	"servo/internal/experiment"
	"servo/internal/metrics"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/scenario"
	"servo/internal/sim"
	"servo/internal/workload"
	"servo/internal/world"
)

// Profile selects the server cost/behaviour profile of the systems the
// paper compares.
type Profile = mve.Profile

// Profiles.
const (
	Opencraft    = mve.ProfileOpencraft
	Minecraft    = mve.ProfileMinecraft
	ServoProfile = mve.ProfileServo
)

// Serverless toggles Servo's three serverless components independently,
// mirroring the L/S component matrix of the paper's Table I.
type Serverless struct {
	Constructs bool // speculative SC offloading (§III-C)
	Terrain    bool // serverless terrain generation (§III-D)
	Storage    bool // cached remote state storage (§III-E)
}

// AllServerless enables every Servo component.
func AllServerless() Serverless {
	return Serverless{Constructs: true, Terrain: true, Storage: true}
}

// TopologyConfig selects how a sharded instance tiles chunk space into
// ownership regions (see internal/world: Topology).
type TopologyConfig struct {
	// Kind is "band" (contiguous 1-D bands along X, the compatibility
	// default) or "grid" (TilesX×TilesZ rectangular tiles, so load can
	// be split along both axes).
	Kind string
	// TilesX and TilesZ are the grid dimensions (grid kind only;
	// 0 → 4×4).
	TilesX, TilesZ int
}

// VisibilityConfig tunes cross-shard avatar visibility (the
// interest-management layer): each replication tick, every shard
// publishes its avatars standing within Margin blocks of a region-tile
// border, and the shards owning the bordering tiles materialise them as
// read-only ghost avatars — so players near a seam see one continuous
// world, and handoffs promote/demote a ghost instead of popping.
type VisibilityConfig struct {
	// Enabled turns border-tile avatar replication on.
	Enabled bool
	// Margin is the border margin in blocks (0 → the view distance).
	Margin int
}

// AutoscaleConfig tunes the cluster's elastic shard-count policy: the
// autoscaler differences the per-tile cost signal into demand rates,
// scales the shard count up/down on utilization bands (with
// per-direction cooldowns), spreads forming hotspots proactively along
// the tile-load derivative, and quarantines crash-looping shards. Scale
// events run on the virtual clock in lane order, so they replay
// byte-identically at every Workers setting. Zero-valued fields take the
// cluster defaults (see internal/cluster).
type AutoscaleConfig struct {
	// Enabled turns the policy loop on.
	Enabled bool
	// MinShards / MaxShards bound the alive shard count (0 → the boot
	// count / twice the boot count). Only shards added at runtime are
	// ever removed, so the effective floor is at least the boot count.
	MinShards int
	MaxShards int
	// ShardCapacity is one shard's demand capacity in cost units
	// (actions + chunk stores) per second; the utilization bands are
	// fractions of it.
	ShardCapacity float64
}

// Config configures an Instance.
type Config struct {
	// Seed makes the instance deterministic. Zero means seed 1.
	Seed int64
	// WorldType is "flat" or "default" (procedurally generated terrain).
	WorldType string
	// Profile selects the cost profile; zero means the Servo profile.
	Profile Profile
	// Servo selects which backend components run serverlessly.
	Servo Serverless
	// ViewDistance in blocks (0 → 128, the paper's default).
	ViewDistance int
	// Shards > 1 runs a region-sharded cluster: one game loop per shard
	// over a single shared serverless substrate, with cross-shard player
	// handoff when avatars cross region-tile boundaries. Session calls
	// (Connect, Disconnect, SpawnConstruct) route through the cluster
	// automatically; Cluster() exposes the router for handoff metrics.
	Shards int
	// Topology selects the region tiling of a sharded instance: the
	// zero value keeps the 1-D X bands of earlier releases; Kind "grid"
	// cuts chunk space into 2-D tiles. Only meaningful with Shards > 1.
	Topology TopologyConfig
	// Rebalance enables the cluster controller's live tile rebalancing:
	// region-tile ownership migrates from the hottest to the coldest
	// shard when per-shard tick load drifts out of balance. Only
	// meaningful with Shards > 1.
	Rebalance bool
	// Visibility enables cross-shard avatar visibility: players near a
	// region-tile border see the neighbouring shard's avatars as
	// read-only ghosts. Only meaningful with Shards > 1.
	Visibility VisibilityConfig
	// Autoscale enables the elastic shard-count policy subsystem. Only
	// meaningful with Shards > 1.
	Autoscale AutoscaleConfig
	// RealTime runs the instance on the wall clock instead of virtual
	// time. Run then blocks for real durations.
	RealTime bool
	// Workers > 0 runs shard ticks through the virtual clock's
	// lane-batched scheduler: same-timestamp events from distinct shards
	// execute on a worker pool of this size, with side effects ordered so
	// the observable event stream is byte-identical for every pool size.
	// Zero keeps the classic serial loop. Ignored under RealTime.
	Workers int
	// PhaseLock snaps a shard's next tick to the global TickInterval
	// grid after an overlong tick, so saturated shards re-align and keep
	// forming same-timestamp waves instead of drifting off-phase
	// forever. Deterministic at every Workers setting.
	PhaseLock bool
}

// topology builds the world-level tiling the config describes. A grid
// with no dimensions is 4×4. Unknown kinds panic: NewInstance has no
// error return, and silently booting the band fallback in place of a
// misspelled grid would reproduce exactly the hotspot failure the grid
// exists to fix.
func (c TopologyConfig) topology() world.Topology {
	switch c.Kind {
	case "", "band":
		return nil // core defaults to the band topology
	case "grid":
	default:
		panic(fmt.Sprintf(`servo: Topology.Kind must be "band" or "grid" (got %q)`, c.Kind))
	}
	tx, tz := c.TilesX, c.TilesZ
	if tx < 1 {
		tx = 4
	}
	if tz < 1 {
		tz = 4
	}
	return world.GridTopology{TilesX: tx, TilesZ: tz}
}

// Pos is a block position in the world.
type Pos = world.BlockPos

// At builds a block position.
func At(x, y, z int) Pos { return Pos{X: x, Y: y, Z: z} }

// Construct is a simulated construct: a grid of stateful circuit blocks.
type Construct = sc.Construct

// NewClockCircuit returns a small oscillating clock circuit, the canonical
// looping construct.
func NewClockCircuit() *Construct { return sc.NewClock(3, 2) }

// NewLampBank returns a clock-driven wall of lamps.
func NewLampBank(rows, cols int) *Construct { return sc.NewLampBank(rows, cols) }

// NewConstructSized returns an active construct with exactly the given
// number of blocks (≥ 12).
func NewConstructSized(blocks int) *Construct { return sc.BuildSized(blocks) }

// Behavior names the paper's player behaviors (Table I).
type Behavior string

// Behaviors.
const (
	BehaviorBounded Behavior = "A"    // move within a bounded area
	BehaviorRandom  Behavior = "R"    // Table II random action mix
	BehaviorStar3   Behavior = "S3"   // walk away from spawn at 3 blocks/s
	BehaviorStar8   Behavior = "S8"   // walk away from spawn at 8 blocks/s
	BehaviorSinc    Behavior = "Sinc" // star walk with increasing speed
)

// Player is a connected player session.
type Player = mve.Player

// TickStats summarises an instance's tick-duration distribution.
type TickStats struct {
	Box metrics.Boxplot
	// OverBudget is the fraction of ticks above the 50 ms QoS bound.
	OverBudget float64
	// SupportsQoS is the paper's criterion: OverBudget < 5%.
	SupportsQoS bool
}

// String implements fmt.Stringer.
func (t TickStats) String() string {
	return fmt.Sprintf("%s over50ms=%.2f%% qos=%v", t.Box, t.OverBudget*100, t.SupportsQoS)
}

// Instance is one running MVE world: a server plus its (optional)
// serverless backend.
type Instance struct {
	cfg   Config
	loop  *sim.Loop      // virtual-time driver (nil in real time)
	rtc   *sim.RealClock // wall-clock driver (nil in virtual time)
	sys   *core.System
	stats *metrics.Sample
}

// NewInstance assembles and starts an instance. It panics on an invalid
// Topology (unknown Kind, or a grid with fewer tiles than shards —
// shards beyond the tile count could never own territory and their
// Home placement would silently land players elsewhere).
func NewInstance(cfg Config) *Instance {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	topo := cfg.Topology.topology()
	if topo != nil && cfg.Shards > topo.Tiles() {
		panic(fmt.Sprintf("servo: %d shards over a %d-tile grid: more shards than tiles",
			cfg.Shards, topo.Tiles()))
	}
	inst := &Instance{cfg: cfg}
	var clock sim.Clock
	if cfg.RealTime {
		inst.rtc = sim.NewRealClock(cfg.Seed)
		clock = inst.rtc
	} else {
		inst.loop = sim.NewLoop(cfg.Seed)
		clock = inst.loop
	}
	inst.sys = core.New(clock, core.Config{
		Seed:             cfg.Seed,
		WorldType:        cfg.WorldType,
		Profile:          cfg.Profile,
		ViewDistance:     cfg.ViewDistance,
		ServerlessSC:     cfg.Servo.Constructs,
		ServerlessTG:     cfg.Servo.Terrain,
		ServerlessRS:     cfg.Servo.Storage,
		Shards:           cfg.Shards,
		Topology:         topo,
		Rebalance:        cfg.Rebalance,
		Visibility:       cfg.Visibility.Enabled,
		VisibilityMargin: cfg.Visibility.Margin,
		Autoscale: cluster.AutoscaleConfig{
			Enabled:       cfg.Autoscale.Enabled,
			MinShards:     cfg.Autoscale.MinShards,
			MaxShards:     cfg.Autoscale.MaxShards,
			ShardCapacity: cfg.Autoscale.ShardCapacity,
		},
		Workers:   cfg.Workers,
		PhaseLock: cfg.PhaseLock,
	})
	if cl := inst.sys.Cluster; cl != nil {
		cl.Start()
	} else {
		inst.sys.Server.Start()
	}
	return inst
}

// Cluster exposes the cross-shard session router (nil unless the instance
// was built with Shards > 1).
func (i *Instance) Cluster() *cluster.Cluster { return i.sys.Cluster }

// FailShard kills one shard's game loop: its tiles reroute to the
// surviving shards and its players are re-admitted from their last
// snapshots (sharded instances only). Reports whether the failover ran.
func (i *Instance) FailShard(shard int) bool {
	if i.rtc != nil {
		i.rtc.Lock()
		defer i.rtc.Unlock()
	}
	return i.sys.FailShard(shard)
}

// RecoverShard rebuilds a failed shard over the persisted world and
// returns its tiles (sharded instances only).
func (i *Instance) RecoverShard(shard int) bool {
	if i.rtc != nil {
		i.rtc.Lock()
		defer i.rtc.Unlock()
	}
	return i.sys.RecoverShard(shard)
}

// clusterHandle finds the cluster handle behind a session: by pointer
// first, and by name as a fallback for sessions that moved shards since
// the caller obtained the pointer (a handoff installs a fresh session
// object). The name fallback only applies when exactly one handle bears
// the name — with duplicates it returns nil rather than risk
// disconnecting a different player's session.
func (i *Instance) clusterHandle(p *Player) *cluster.Player {
	var byName *cluster.Player
	nameMatches := 0
	for _, h := range i.sys.Cluster.Players() {
		if i.sys.Cluster.Session(h) == p {
			return h
		}
		if h.Name == p.Name {
			byName = h
			nameMatches++
		}
	}
	if nameMatches == 1 {
		return byName
	}
	return nil
}

// Server exposes the underlying game server for advanced use.
func (i *Instance) Server() *mve.Server { return i.sys.Server }

// System exposes the assembled backend (FaaS platform, functions, storage
// stack) for metrics inspection.
func (i *Instance) System() *core.System { return i.sys }

// Connect joins a player with a named behavior ("" for an idle player).
func (i *Instance) Connect(name string, b Behavior) *Player {
	if i.rtc != nil {
		i.rtc.Lock()
		defer i.rtc.Unlock()
	}
	var behavior mve.Behavior
	if b != "" {
		behavior = workload.ForName(string(b))
	}
	return i.connectBehavior(name, behavior)
}

// connectBehavior joins a session through the cluster router when the
// instance is sharded (the caller holds the real-time lock if any).
func (i *Instance) connectBehavior(name string, b mve.Behavior) *Player {
	if cl := i.sys.Cluster; cl != nil {
		return cl.Session(cl.Connect(name, b))
	}
	return i.sys.Server.Connect(name, b)
}

// ConnectBehavior joins a player driven by a custom mve.Behavior
// implementation (e.g. a network-fed action queue; see cmd/servo-server).
func (i *Instance) ConnectBehavior(name string, b mve.Behavior) *Player {
	if i.rtc != nil {
		i.rtc.Lock()
		defer i.rtc.Unlock()
	}
	return i.connectBehavior(name, b)
}

// Locked runs fn serialised with the game loop. In virtual time this is a
// plain call (the loop is single-threaded); in real time it holds the
// clock's callback lock, so fn may safely touch server state.
func (i *Instance) Locked(fn func()) {
	if i.rtc != nil {
		i.rtc.Lock()
		defer i.rtc.Unlock()
	}
	fn()
}

// Disconnect removes a player, reporting whether a session was actually
// removed. On a sharded instance the session handle is resolved through
// the cluster (by pointer, then by unique name for sessions that moved
// shards); false means the resolution failed — the player is already
// gone, or the stale pointer's name is ambiguous (several sessions bear
// it) and disconnecting any of them could hit the wrong player.
func (i *Instance) Disconnect(p *Player) bool {
	if i.rtc != nil {
		i.rtc.Lock()
		defer i.rtc.Unlock()
	}
	if cl := i.sys.Cluster; cl != nil {
		h := i.clusterHandle(p)
		if h == nil {
			return false
		}
		return cl.Disconnect(h.ID)
	}
	return i.sys.Server.Disconnect(p.ID)
}

// SpawnConstruct activates a construct anchored at pos and returns its id.
// On a sharded instance the construct lands on the shard owning its
// anchor region.
func (i *Instance) SpawnConstruct(c *Construct, pos Pos) uint64 {
	if i.rtc != nil {
		i.rtc.Lock()
		defer i.rtc.Unlock()
	}
	if cl := i.sys.Cluster; cl != nil {
		_, id := cl.SpawnConstruct(c, pos)
		return id
	}
	return i.sys.Server.SpawnConstruct(c, pos)
}

// Run advances the instance by d: instantaneous in virtual time, blocking
// in real time.
func (i *Instance) Run(d time.Duration) {
	if i.loop != nil {
		i.loop.RunUntil(i.loop.Now() + d)
		return
	}
	time.Sleep(d)
}

// ParallelSpeedup returns the work/span ratio of the lane-batched
// scheduler accumulated since the last ResetParallelStats: summed
// callback work over the critical path the lane schedule could not
// shorten (serial segments plus each wave's longest lane). It is the
// parallelism the schedule exposes — the wall speedup an adequately
// provisioned worker pool realises — independent of how many cores this
// machine actually has. 1 when the instance runs serially (Workers 0 or
// real time).
func (i *Instance) ParallelSpeedup() float64 {
	if i.loop == nil || i.loop.Workers() == 0 {
		return 1
	}
	return i.loop.BatchStats().Speedup()
}

// ResetParallelStats zeroes the lane scheduler's accumulated work/span
// statistics (no-op outside lane mode).
func (i *Instance) ResetParallelStats() {
	if i.loop != nil {
		i.loop.ResetBatchStats()
	}
}

// Now returns the instance's current (virtual or wall) time.
func (i *Instance) Now() time.Duration {
	if i.loop != nil {
		return i.loop.Now()
	}
	return i.rtc.Now()
}

// Stop halts the game loop(s).
func (i *Instance) Stop() {
	stop := func() {
		if cl := i.sys.Cluster; cl != nil {
			cl.Stop()
			return
		}
		i.sys.Server.Stop()
	}
	if i.rtc != nil {
		i.rtc.Lock()
		stop()
		i.rtc.Unlock()
		i.rtc.Close()
		return
	}
	stop()
}

// TickStats summarises the tick-duration distribution so far, pooled
// across every shard.
func (i *Instance) TickStats() TickStats {
	s := &metrics.Sample{}
	for _, sh := range i.sys.Shards {
		s.AddAll(sh.Server.TickDurations.Values())
	}
	over := s.FracAbove(50 * time.Millisecond)
	return TickStats{Box: s.Box(), OverBudget: over, SupportsQoS: over < 0.05}
}

// ResetStats clears accumulated tick samples (e.g. after a warm-up).
func (i *Instance) ResetStats() {
	for _, sh := range i.sys.Shards {
		sh.Server.TickDurations = metrics.NewSample(4096)
	}
}

// ViewMargin returns the distance from the closest player to the nearest
// missing terrain (the Fig. 10 QoS metric; view distance = perfect),
// taking the minimum across shards.
func (i *Instance) ViewMargin() int {
	margin := -1
	for _, sh := range i.sys.Shards {
		if vm := sh.Server.MinViewMargin(); margin < 0 || vm < margin {
			margin = vm
		}
	}
	return margin
}

// StorageTier names a storage tier for Experiments.
type StorageTier = blob.Tier

// Experiment options and runners, re-exported so downstream users can
// regenerate any paper artifact programmatically.
type (
	// ExperimentOptions controls experiment scale and seeding.
	ExperimentOptions = experiment.Options
)

// DefaultExperimentOptions returns bench-scale experiment options.
func DefaultExperimentOptions() ExperimentOptions { return experiment.DefaultOptions() }

// RunExperiment runs one or more named experiments (comma-separated; see
// ListExperiments) writing the reports to w.
func RunExperiment(names string, opt ExperimentOptions, w io.Writer) error {
	return experiment.RunByName(names, opt, w)
}

// ListExperiments returns the available experiment names and descriptions.
func ListExperiments() map[string]string {
	out := make(map[string]string)
	for _, r := range experiment.Runners() {
		out[r.Name] = r.Description
	}
	return out
}

// Scenario-harness re-exports (internal/scenario): declarative scenarios
// that drive the real server/backend stack with fleets, chaos injection,
// stress generators, and end-of-run assertions. See cmd/servo-sim for the
// CLI front-end and the README for the spec format.
type (
	// ScenarioSpec is a parsed, validated scenario.
	ScenarioSpec = scenario.Spec
	// ScenarioReport is the deterministic outcome of one scenario run.
	ScenarioReport = scenario.Report
)

// ParseScenario decodes and validates a scenario spec document (JSON).
func ParseScenario(data []byte) (*ScenarioSpec, error) { return scenario.Parse(data) }

// RunScenario executes a scenario to completion on the virtual clock.
// log, if non-nil, receives progress lines; the returned report is a pure
// function of the spec (byte-identical across runs).
func RunScenario(spec *ScenarioSpec, log io.Writer) (*ScenarioReport, error) {
	return scenario.Run(spec, log)
}

// BundledScenarios returns the names of the scenarios shipped with
// cmd/servo-sim.
func BundledScenarios() []string { return scenario.Bundled() }

// LoadBundledScenario parses a bundled scenario by name.
func LoadBundledScenario(name string) (*ScenarioSpec, error) { return scenario.LoadBundled(name) }
