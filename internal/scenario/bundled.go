package scenario

import (
	"fmt"
	"sort"
	"strings"

	"embed"
)

//go:embed scenarios/*.json
var bundledFS embed.FS

// Bundled returns the names of the bundled scenarios, sorted.
func Bundled() []string {
	entries, err := bundledFS.ReadDir("scenarios")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// BundledSource returns the raw JSON of the named bundled scenario.
func BundledSource(name string) ([]byte, error) {
	data, err := bundledFS.ReadFile("scenarios/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("no bundled scenario %q (have %v)", name, Bundled())
	}
	return data, nil
}

// LoadBundled parses the named bundled scenario.
func LoadBundled(name string) (*Spec, error) {
	data, err := BundledSource(name)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("bundled scenario %q: %w", name, err)
	}
	return s, nil
}
