package experiment

import (
	"fmt"
	"io"
	"time"

	"servo/internal/core"
	"servo/internal/faas"
	"servo/internal/metrics"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/workload"
	"servo/internal/world"
)

// Fig10 (paper §IV-D): terrain-generation QoS under the Sinc workload —
// five players moving away from spawn with speed increasing by one block/s
// every 200 s, on the default world. Servo generates terrain in serverless
// functions; Opencraft on its local worker pool.

// Fig10Series is one game's time series.
type Fig10Series struct {
	// ViewRange samples the distance to the closest missing chunk (the
	// QoS metric; 128 = full view distance) once per second.
	ViewRange []metrics.WindowPoint
	// TickWindows summarises tick durations in 2.5-second windows.
	TickWindows []metrics.WindowPoint
}

// Fig10Report holds both games' series.
type Fig10Report struct {
	Series   map[Game]*Fig10Series
	Duration time.Duration
}

// fig10RampEvery scales the Sinc speed-up period with the experiment
// window so every speed band is exercised at any Scale.
func fig10Ramp(window time.Duration) time.Duration {
	return window / 6 // six speed bands, as in the paper's 1200s/200s
}

// Fig10 runs the Sinc QoS experiment for Servo (serverless TG) and
// Opencraft (local TG).
func Fig10(opt Options) *Fig10Report {
	window := opt.window(20 * time.Minute)
	// The baseline's generation deficit needs time to eat through the
	// 128-block view margin; below ten virtual minutes the collapse the
	// paper shows cannot physically appear.
	if window < 10*time.Minute {
		window = 10 * time.Minute
	}
	r := &Fig10Report{Series: make(map[Game]*Fig10Series), Duration: window}
	for _, g := range []Game{Servo, Opencraft} {
		r.Series[g] = fig10Run(g, window, opt)
		opt.logf("fig10: %s done", g)
	}
	return r
}

func fig10Run(g Game, window time.Duration, opt Options) *Fig10Series {
	loop := sim.NewLoop(opt.Seed)
	sys := buildGame(loop, g, "default", opt.Seed, g == Servo, false)
	srv := sys.Server
	for i := 0; i < 5; i++ {
		srv.Connect(fmt.Sprintf("sinc-%d", i), &workload.Star{Speed: 1, RampEvery: fig10Ramp(window)})
	}
	var view metrics.TimeSeries
	var sample func()
	sample = func() {
		view.Add(loop.Now(), time.Duration(srv.MinViewMargin()))
		loop.After(time.Second, sample)
	}
	loop.After(time.Second, sample)
	srv.Start()
	loop.RunUntil(window)
	srv.Stop()
	return &Fig10Series{
		ViewRange:   view.Windows(window / 40),
		TickWindows: srv.TickSeries.Windows(window / 40),
	}
}

// Fig10Report Print renders the two series side by side.
func (r *Fig10Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 10 — Serverless terrain generation QoS (Sinc workload, 5 players)")
	fmt.Fprintln(w, "(a) distance to closest unloaded chunk (blocks; 128 = full view distance)")
	t := metrics.Table{Header: []string{"t", "Servo view", "Opencraft view"}}
	sv, oc := r.Series[Servo], r.Series[Opencraft]
	n := len(sv.ViewRange)
	if len(oc.ViewRange) < n {
		n = len(oc.ViewRange)
	}
	for i := 0; i < n; i++ {
		t.AddRow(
			fmt.Sprintf("%.0fs", sv.ViewRange[i].T.Seconds()),
			fmt.Sprintf("%d", int(sv.ViewRange[i].Mean)),
			fmt.Sprintf("%d", int(oc.ViewRange[i].Mean)),
		)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "(b) tick duration (ms, mean and p95 per window; QoS bound 50 ms)")
	t2 := metrics.Table{Header: []string{"t", "Servo mean", "Servo p95", "Opencraft mean", "Opencraft p95"}}
	n2 := len(sv.TickWindows)
	if len(oc.TickWindows) < n2 {
		n2 = len(oc.TickWindows)
	}
	for i := 0; i < n2; i++ {
		t2.AddRow(
			fmt.Sprintf("%.0fs", sv.TickWindows[i].T.Seconds()),
			msCell(sv.TickWindows[i].Mean), msCell(sv.TickWindows[i].P95),
			msCell(oc.TickWindows[i].Mean), msCell(oc.TickWindows[i].P95),
		)
	}
	fmt.Fprint(w, t2.String())
}

// MinFinalViewRange returns the mean view-range of the last quarter of the
// run for a game (used by tests: Servo must hold ~128, Opencraft collapse).
func (r *Fig10Report) MinFinalViewRange(g Game) float64 {
	s := r.Series[g].ViewRange
	if len(s) == 0 {
		return 0
	}
	tail := s[len(s)*3/4:]
	var sum float64
	for _, p := range tail {
		sum += float64(p.Mean)
	}
	return sum / float64(len(tail))
}

// --- Fig. 11: generation latency vs function memory --------------------------

// MemoryConfigs is the Fig. 11 memory axis (MB).
var MemoryConfigs = []int{320, 512, 1024, 2048, 4096, 10240}

// Fig11Report holds per-memory-configuration generation latency and the
// normalized performance-to-cost ratio of Fig. 11b.
type Fig11Report struct {
	Latency   map[int]metrics.Boxplot
	CostRatio map[int]float64 // normalized to [0, 1], higher is better
}

// Fig11 measures single-chunk generation latency on the FaaS platform for
// each memory configuration (paper §IV-D, Fig. 11).
func Fig11(opt Options) *Fig11Report {
	r := &Fig11Report{Latency: make(map[int]metrics.Boxplot), CostRatio: make(map[int]float64)}
	invocations := int(100 * opt.Scale * 10)
	if invocations < 40 {
		invocations = 40
	}
	perf := make(map[int]float64)
	for _, mem := range MemoryConfigs {
		loop := sim.NewLoop(opt.Seed)
		platform := faas.NewPlatform(loop)
		cfg := core.DefaultTGFnConfig()
		cfg.MemoryMB = mem
		gen := terrain.Default{Seed: opt.Seed}
		fn := platform.Register("gen", cfg, func(payload []byte) ([]byte, int) {
			c := gen.Generate(world.ChunkPos{X: int(payload[0]), Z: int(payload[1])})
			return nil, c.GenWork
		})
		for i := 0; i < invocations; i++ {
			// Spread invocations ~3 s apart so keep-alive expiry and
			// cold starts appear, as on the real platform.
			i := i
			loop.After(time.Duration(i)*3*time.Second, func() {
				platform.Invoke("gen", []byte{byte(i), byte(i >> 8)}, func(faas.Invocation) {})
			})
		}
		loop.Run()
		b := fn.Latency.Box()
		r.Latency[mem] = b
		perf[mem] = 1 / b.Mean.Seconds() / float64(mem) // performance per MB
		opt.logf("fig11: mem=%d mean=%v max=%v", mem, b.Mean, b.Max)
	}
	// Normalize performance-to-cost to the best configuration.
	best := 0.0
	for _, v := range perf {
		if v > best {
			best = v
		}
	}
	for mem, v := range perf {
		r.CostRatio[mem] = v / best
	}
	return r
}

// Print renders both panels.
func (r *Fig11Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 11 — Serverless terrain generation vs function memory (AWS Lambda model)")
	t := metrics.Table{Header: []string{"memory MB", "mean", "p25", "p50", "p75", "max", "perf/cost"}}
	for _, mem := range MemoryConfigs {
		b := r.Latency[mem]
		t.AddRow(fmt.Sprint(mem),
			secCell(b.Mean), secCell(b.P25), secCell(b.P50), secCell(b.P75), secCell(b.Max),
			fmt.Sprintf("%.2f", r.CostRatio[mem]))
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "(latency in seconds per 16x16x256 chunk)")
}

func secCell(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }
