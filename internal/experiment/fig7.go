package experiment

import (
	"fmt"
	"io"
	"time"

	"servo/internal/metrics"
)

// SCCounts is the paper's Fig. 7a workload axis: worlds with increasing
// numbers of simulated constructs.
var SCCounts = []int{0, 50, 100, 200}

// Fig7aReport is the max-players-vs-constructs matrix of Fig. 7a.
type Fig7aReport struct {
	// Max[scCount][game] is the maximum supported players.
	Max map[int]map[Game]int
}

// Fig7a measures the maximum number of supported players for each game and
// construct count (paper §IV-B, Fig. 7a).
func Fig7a(opt Options) *Fig7aReport {
	r := &Fig7aReport{Max: make(map[int]map[Game]int)}
	for _, scCount := range SCCounts {
		r.Max[scCount] = make(map[Game]int)
		for _, g := range Games {
			n := MaxPlayers(g, scCount, opt)
			r.Max[scCount][g] = n
			opt.logf("fig7a: %s sc=%d -> %d players", g, scCount, n)
		}
	}
	return r
}

// Print renders the report as the paper's bar-chart data.
func (r *Fig7aReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7a — Maximum supported players for increasing simulated constructs")
	fmt.Fprintln(w, "(supported: <5% of tick samples above 50 ms)")
	t := metrics.Table{Header: []string{"SCs", "Servo", "Opencraft", "Minecraft"}}
	for _, scCount := range SCCounts {
		t.AddRow(
			fmt.Sprint(scCount),
			fmt.Sprint(r.Max[scCount][Servo]),
			fmt.Sprint(r.Max[scCount][Opencraft]),
			fmt.Sprint(r.Max[scCount][Minecraft]),
		)
	}
	fmt.Fprint(w, t.String())
}

// Fig1Report is the paper's headline comparison (Fig. 1): maximum players
// per game in the 100-construct world.
type Fig1Report struct {
	Max map[Game]int
}

// Fig1 derives the headline figure from the Fig. 7a workload at 100 SCs,
// where the paper reports Servo 150, Minecraft 90, Opencraft 10.
func Fig1(opt Options) *Fig1Report {
	r := &Fig1Report{Max: make(map[Game]int)}
	for _, g := range Games {
		r.Max[g] = MaxPlayers(g, 100, opt)
		opt.logf("fig1: %s -> %d players", g, r.Max[g])
	}
	return r
}

// Print renders the report.
func (r *Fig1Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 1 — Maximum number of supported players (100-construct world)")
	t := metrics.Table{Header: []string{"game", "max players", "delta vs Opencraft"}}
	base := r.Max[Opencraft]
	for _, g := range Games {
		t.AddRow(g.String(), fmt.Sprint(r.Max[g]), fmt.Sprintf("%+d", r.Max[g]-base))
	}
	fmt.Fprint(w, t.String())
}

// Fig7bPlayers is the player-count axis of Fig. 7b.
var Fig7bPlayers = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100,
	110, 120, 130, 140, 150, 160, 170, 180, 190, 200}

// Fig7bReport holds tick-duration boxplots for every (game, players) cell
// at 200 simulated constructs.
type Fig7bReport struct {
	// Box[game][players] is the tick-duration summary.
	Box map[Game]map[int]metrics.Boxplot
	// Players is the measured axis (may be thinned at low Scale).
	Players []int
}

// Fig7b measures tick-duration distributions for a varying number of
// players with 200 SCs (paper Fig. 7b). With Scale < 1 the player axis is
// thinned to every other point to bound run time.
func Fig7b(opt Options) *Fig7bReport {
	players := Fig7bPlayers
	if opt.Scale < 0.5 {
		players = []int{10, 40, 80, 120, 160, 200}
	}
	r := &Fig7bReport{Box: make(map[Game]map[int]metrics.Boxplot), Players: players}
	for _, g := range Games {
		r.Box[g] = make(map[int]metrics.Boxplot)
		for _, n := range players {
			sample := scRunTicks(g, 200, n, opt)
			r.Box[g][n] = sample.Box()
			opt.logf("fig7b: %s players=%d p95=%v", g, n, r.Box[g][n].P95)
		}
	}
	return r
}

// Print renders one row per (game, players) cell.
func (r *Fig7bReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7b — Tick duration distribution, 200 simulated constructs")
	fmt.Fprintln(w, "(QoS requires < 5% of samples above 50 ms; whiskers are p5/p95)")
	t := metrics.Table{Header: []string{"game", "players", "p5", "p25", "p50", "p75", "p95", "max", ">50ms"}}
	for _, g := range Games {
		for _, n := range r.Players {
			b := r.Box[g][n]
			t.AddRow(g.String(), fmt.Sprint(n),
				msCell(b.P5), msCell(b.P25), msCell(b.P50), msCell(b.P75),
				msCell(b.P95), msCell(b.Max), supportCell(b))
		}
	}
	fmt.Fprint(w, t.String())
}

func msCell(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

func supportCell(b metrics.Boxplot) string {
	if b.P95 > QoSThreshold {
		return "FAIL"
	}
	return "ok"
}
