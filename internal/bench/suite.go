// The benchmark suite behind `servo-bench -format json`: each harness
// builds a deterministic load, measures it, and records headline
// metrics into the artifact. Wall measurements go through
// testing.Benchmark so ns/op and allocs/op come from the standard
// auto-scaling machinery rather than hand-rolled timing loops.

package bench

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"servo"
	"servo/internal/cluster"
	"servo/internal/core"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/scenario"
	"servo/internal/sim"
	"servo/internal/workload"
	"servo/internal/world"
)

// ScenarioName is the bundled scenario the suite runs for its virtual
// tick/handoff percentiles and the engine-throughput measurement: a
// sharded run with visibility, storage, and cross-shard handoffs on a
// 2-minute virtual window that simulates in seconds of wall time.
const ScenarioName = "border-patrol"

// digestEntries sizes the digest encode harnesses.
const digestEntries = 512

// suiteStep is one harness of the suite: a build-load-measure unit that
// declares the metric names it records, so -only can select it without
// running everything else first.
type suiteStep struct {
	name    string
	metrics []string
	run     func(f *File) error
}

// steps enumerates the suite in recording order.
func steps() []suiteStep {
	return []suiteStep{
		{"engine tick (200 constructs, 100 players)",
			[]string{"engine_tick_wall_us"},
			func(f *File) error {
				f.Add("engine_tick_wall_us", "us/tick", Lower, true, engineTick()/1e3)
				return nil
			}},
		{"steady-state tick allocations (50 idle players)",
			[]string{"tick_steady_allocs_per_op"},
			func(f *File) error {
				f.Add("tick_steady_allocs_per_op", "allocs/op", Lower, true, steadyTickAllocs())
				return nil
			}},
		{"parallel engine tick (4 shards, workers=4)",
			[]string{"engine_tick_wall_us_parallel", "tick_parallel_speedup_x"},
			func(f *File) error {
				parNs, speedup := parallelTick()
				f.Add("engine_tick_wall_us_parallel", "us/tick", Lower, true, parNs/1e3)
				f.Add("tick_parallel_speedup_x", "x", Higher, true, speedup)
				return nil
			}},
		{"saturated parallel tick (overlong ticks, phase lock on/off)",
			[]string{"tick_parallel_speedup_saturated_x", "tick_parallel_speedup_saturated_unlocked_x"},
			func(f *File) error {
				// The work/span ratio weighs real callback wall times, so
				// like every wall metric it keeps the best of wallRounds
				// independent rounds against co-tenant noise.
				var locked, unlocked float64
				for r := 0; r < wallRounds; r++ {
					if v := saturatedSpeedup(true); v > locked {
						locked = v
					}
					if v := saturatedSpeedup(false); v > unlocked {
						unlocked = v
					}
				}
				f.Add("tick_parallel_speedup_saturated_x", "x", Higher, true, locked)
				// The no-phase-lock decay, recorded (not gated) so every
				// artifact carries the comparison: without re-phase-locking,
				// overlong ticks drift the shards off any shared timestamp
				// and waves collapse.
				f.Add("tick_parallel_speedup_saturated_unlocked_x", "x", Higher, false, unlocked)
				return nil
			}},
		{"chunk codec round trip (zero-alloc contract)",
			[]string{"chunk_codec_ns_per_op", "chunk_codec_allocs_per_op"},
			func(f *File) error {
				chunkCodecMetrics(f)
				return nil
			}},
		{"chunk generation storm (4 shards, cold default world)",
			[]string{"chunk_storm_wall_us", "chunk_apply_ns_per_chunk", "gen_dedup_x"},
			func(f *File) error {
				chunkStormMetrics(f)
				return nil
			}},
		{"terrain demand scan (100 players)",
			[]string{"terrain_scan_inc_ns_per_player", "terrain_scan_inc_allocs_per_op",
				"terrain_scan_full_ns_per_player", "terrain_scan_full_allocs_per_op",
				"terrain_scan_speedup_x"},
			func(f *File) error {
				terrainScanMetrics(f)
				return nil
			}},
		{"scenario " + ScenarioName,
			[]string{"tick_p99_virtual_ms", "handoff_p99_virtual_ms", "scenario_bots_per_wallsec"},
			scenarioMetrics},
		{fmt.Sprintf("ghost digest encode (%d entries)", digestEntries),
			[]string{"digest_encode_ns_per_entry", "digest_encode_allocs_per_op",
				"digest_delta_ns_per_entry", "digest_delta_allocs_per_op"},
			func(f *File) error {
				digestMetrics(f)
				return nil
			}},
		{"visibility scan, 1000 border residents",
			[]string{"vis_scan_1k_inc_ns_per_resident", "vis_scan_1k_inc_allocs_per_op",
				"vis_scan_1k_full_ns_per_resident", "vis_scan_1k_full_allocs_per_op"},
			func(f *File) error {
				scanMetrics(f, 1000)
				return nil
			}},
		{"visibility scan, 4000 border residents",
			[]string{"vis_scan_4k_inc_ns_per_resident", "vis_scan_4k_inc_allocs_per_op",
				"vis_scan_4k_full_ns_per_resident", "vis_scan_4k_full_allocs_per_op"},
			func(f *File) error {
				scanMetrics(f, 4000)
				return nil
			}},
	}
}

// Run executes the suite and returns the artifact. only, when non-empty,
// is a substring filter over metric names: only the harnesses recording a
// matching metric run, and only matching metrics are kept — `servo-bench
// -only chunk_` re-measures the chunk pipeline without paying for the
// rest of the suite. logf (may be nil) receives progress lines.
func Run(pr int, only string, logf func(format string, args ...any)) (File, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := NewFile(pr)
	matched := false
	for _, st := range steps() {
		if only != "" && !stepMatches(st, only) {
			continue
		}
		matched = true
		logf("bench: %s", st.name)
		if err := st.run(&f); err != nil {
			return File{}, err
		}
	}
	if !matched {
		return File{}, fmt.Errorf("bench: no suite metric matches -only %q", only)
	}
	if only != "" {
		kept := f.Metrics[:0]
		for _, m := range f.Metrics {
			if strings.Contains(m.Name, only) {
				kept = append(kept, m)
			}
		}
		f.Metrics = kept
	}
	return f, nil
}

func stepMatches(st suiteStep, only string) bool {
	for _, name := range st.metrics {
		if strings.Contains(name, only) {
			return true
		}
	}
	return false
}

// wallRounds is how many independent rounds each wall measurement
// takes; the best round is recorded. Wall noise on a shared machine is
// one-sided (co-tenant slowdowns), so the minimum is the stable
// estimator — a single round leaves the benchdiff gate flapping on
// machine load rather than code changes.
const wallRounds = 3

// wallBench measures fn via the standard benchmark machinery, keeping
// the best of wallRounds rounds.
func wallBench(fn func()) (nsPerOp, allocsPerOp float64) {
	for r := 0; r < wallRounds; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		ns, allocs := float64(res.NsPerOp()), float64(res.AllocsPerOp())
		if r == 0 || ns < nsPerOp {
			nsPerOp = ns
		}
		if r == 0 || allocs < allocsPerOp {
			allocsPerOp = allocs
		}
	}
	return nsPerOp, allocsPerOp
}

// engineTick measures one fully-loaded game tick (the bench_test.go
// BenchmarkEngineTick load: 200 constructs, 100 players), in wall ns.
func engineTick() float64 {
	inst := servo.NewInstance(servo.Config{Seed: 1, WorldType: "flat", Servo: servo.Serverless{Constructs: true}})
	defer inst.Stop()
	for i := 0; i < 200; i++ {
		inst.SpawnConstruct(servo.NewConstructSized(250), servo.At((i%14)*15-105, 5, (i/14)*15-105))
	}
	for i := 0; i < 100; i++ {
		inst.Connect("p", servo.BehaviorBounded)
	}
	inst.Run(10 * 50 * 1000000) // warm-up: 10 ticks
	ns, _ := wallBench(func() { inst.Run(50 * 1000000) })
	return ns
}

// parallelTick measures one loaded tick of a four-shard cluster under
// the lane-batched scheduler (workers=4): 120 sixty-block constructs
// balanced across a 2×2 region grid plus 8 players, so every shard's
// tick does comparable live work. It returns the wall ns per tick and
// the scheduler's work/span ratio — the parallelism the lane schedule
// exposes (summed callback work over serial segments plus each wave's
// longest lane). The ratio is what a worker pool with enough cores
// realises as wall speedup; recording it instead of raw wall division
// keeps the metric meaningful on small or loaded CI machines, where four
// goroutines time-slice one core and the wall clock measures the
// scheduler's overhead rather than its schedule.
//
// The load is sized to keep every shard's modelled tick duration —
// noise and GC tails included — under the 50 ms tick budget: an
// overlong tick reschedules after its own duration, permanently
// phase-shifting that shard away from the others, and lane waves only
// form across shards ticking at the same virtual timestamp. (That decay
// is the simulation being faithful to an overloaded server, not a
// scheduler defect — but this benchmark is about the schedule, so it
// stays inside the budget.) Constructs simulate locally for the same
// reason: serverless construct work runs in the shared platform's
// serial completion events, outside the shard lanes.
func parallelTick() (nsPerTick, speedup float64) {
	inst := servo.NewInstance(servo.Config{
		Seed:      1,
		WorldType: "flat",
		Shards:    4,
		Topology:  servo.TopologyConfig{Kind: "grid", TilesX: 2, TilesZ: 2},
		Workers:   4,
	})
	defer inst.Stop()
	// 30 constructs per grid quadrant, mirrored over both axes.
	for i := 0; i < 120; i++ {
		sx, sz := 1, 1
		if i%2 == 1 {
			sx = -1
		}
		if i%4 >= 2 {
			sz = -1
		}
		k := i / 4
		inst.SpawnConstruct(servo.NewConstructSized(60), servo.At(sx*(30+(k%6)*15), 5, sz*(30+(k/6)*15)))
	}
	for i := 0; i < 8; i++ {
		inst.Connect(fmt.Sprintf("p%d", i), servo.BehaviorBounded)
	}
	inst.Run(10 * 50 * 1000000) // warm-up: 10 ticks
	inst.ResetParallelStats()
	ns, _ := wallBench(func() { inst.Run(50 * 1000000) })
	return ns, inst.ParallelSpeedup()
}

// steadyTickAllocs measures heap allocations per tick of a settled
// server: 50 idle players whose terrain has fully streamed in, so every
// tick is the steady-state fast path — demand-cursor skips, reused scan
// buffers, the recycled tick event, and the head-indexed send queues.
// The target is zero.
func steadyTickAllocs() float64 {
	loop := sim.NewLoop(5)
	srv := mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 64})
	for i := 0; i < 50; i++ {
		srv.ConnectAt(fmt.Sprintf("p%d", i), nil, float64((i%10)*12-54), float64(i/10*12-24))
	}
	srv.Start()
	// Settle: stream every demanded chunk and drain the send queues, so
	// the measured window holds no residual churn.
	loop.RunUntil(loop.Now() + 30*time.Second)
	_, allocs := wallBench(func() {
		loop.RunUntil(loop.Now() + mve.DefaultTickInterval)
	})
	return allocs
}

// saturatedSpeedup measures the lane scheduler's work/span ratio on a
// four-shard cluster whose modelled tick cost (70 ms base, lognormal
// noise) overruns the 50 ms budget on every tick. Without
// re-phase-locking each overlong tick reschedules after its own noisy
// duration, so the shards drift onto disjoint timestamps and waves
// collapse toward serial execution; with PhaseLock the next tick snaps
// to the global interval grid — every shard settles into the same
// skip-a-beat cadence — and cross-shard waves re-form.
func saturatedSpeedup(phaseLock bool) float64 {
	loop := sim.NewLoop(13)
	loop.SetWorkers(4)
	over := mve.CostParams{TickBase: 70 * time.Millisecond, NoiseSigma: 0.08}
	topo := world.GridTopology{TilesX: 2, TilesZ: 2, TileChunks: 8}
	c := cluster.New(loop, cluster.Config{
		Shards:   4,
		Topology: topo,
	}, func(i int, region world.Region) *mve.Server {
		srv := mve.NewServer(loop.Lane(i+1), mve.Config{
			WorldType:    "flat",
			ViewDistance: 32,
			Cost:         &over,
			PhaseLock:    phaseLock,
			Region:       region,
		})
		// A block of local constructs per shard: real circuit work on
		// the shard's lane every tick, so the work/span profile weighs
		// the schedule rather than the serial control-plane events.
		home := topo.Center(world.HomeTile(topo, 4, i))
		for k := 0; k < 8; k++ {
			srv.SpawnConstruct(sc.BuildSized(60),
				world.BlockPos{X: home.X + (k%4)*15 - 22, Y: 5, Z: home.Z + (k/4)*15 - 7})
		}
		return srv
	})
	defer c.Stop()
	// Two idle residents per quadrant keep the player paths live too.
	for i := 0; i < 8; i++ {
		x, z := 40, 40
		if i%2 == 1 {
			x = -40
		}
		if i%4 >= 2 {
			z = -40
		}
		c.ConnectAt(fmt.Sprintf("s%d", i), nil, world.BlockPos{X: x, Z: z})
	}
	c.Start()
	// Let the phases diverge (or re-lock) before profiling.
	loop.RunUntil(loop.Now() + 5*time.Second)
	loop.ResetBatchStats()
	loop.RunUntil(loop.Now() + 60*time.Second)
	return loop.BatchStats().Speedup()
}

// newScanServer builds a single-shard server with n stationary players
// spread over a settled flat world — every demanded chunk streamed in
// and acknowledged — so repeated demand scans isolate the scan itself.
// full selects the full-rescan baseline mode.
func newScanServer(n int, full bool) *mve.Server {
	loop := sim.NewLoop(9)
	srv := mve.NewServer(loop, mve.Config{
		WorldType:        "flat",
		ViewDistance:     64,
		FullDemandRescan: full,
	})
	for i := 0; i < n; i++ {
		srv.ConnectAt(fmt.Sprintf("p%d", i), nil, float64((i%10)*24-108), float64(i/10*24-108))
	}
	srv.Start()
	loop.RunUntil(loop.Now() + 30*time.Second)
	srv.ScanTerrainDemand() // warm the demand cursors outside the loop
	return srv
}

// terrainScanMetrics measures one terrain-demand scan over a settled
// 100-player fleet, incremental (demand cursors, the tick fast path)
// vs. the full per-player rescan baseline, and records the speedup the
// cursor buys. The incremental steady state must not allocate.
func terrainScanMetrics(f *File) {
	const players = 100
	inc := newScanServer(players, false)
	incNs, incAllocs := wallBench(inc.ScanTerrainDemand)
	full := newScanServer(players, true)
	fullNs, fullAllocs := wallBench(full.ScanTerrainDemand)
	f.Add("terrain_scan_inc_ns_per_player", "ns/player", Lower, true, incNs/players)
	f.Add("terrain_scan_inc_allocs_per_op", "allocs/op", Lower, true, incAllocs)
	// The pre-cursor baseline, recorded (not gated) so every artifact
	// carries the comparison it claims.
	f.Add("terrain_scan_full_ns_per_player", "ns/player", Lower, false, fullNs/players)
	f.Add("terrain_scan_full_allocs_per_op", "allocs/op", Lower, false, fullAllocs)
	f.Add("terrain_scan_speedup_x", "x", Higher, true, fullNs/incNs)
}

// scenarioMetrics runs the bundled benchmark scenario and records its
// virtual percentiles (deterministic: off the simulation clock) and the
// engine throughput in bots simulated per wall-second. The throughput
// is the best of wallRounds runs — the virtual metrics are replay-
// identical across them, only the wall clock varies.
func scenarioMetrics(f *File) error {
	spec, err := scenario.LoadBundled(ScenarioName)
	if err != nil {
		return err
	}
	rep, err := scenario.Run(spec, nil)
	if err != nil {
		return err
	}
	if !rep.Pass {
		return fmt.Errorf("bench: scenario %s failed its assertions", ScenarioName)
	}
	for r := 1; r < wallRounds; r++ {
		again, err := scenario.Run(spec, nil)
		if err != nil {
			return err
		}
		if again.Wall > 0 && (rep.Wall <= 0 || again.Wall < rep.Wall) {
			rep.Wall, rep.BotSeconds = again.Wall, again.BotSeconds
		}
	}
	for name, rec := range map[string]string{
		"tick_p99_virtual_ms":    "tick_p99_ms",
		"handoff_p99_virtual_ms": "handoff_p99_ms",
	} {
		found := false
		for _, m := range rep.Metrics {
			if m.Name == rec {
				f.Add(name, "virtual ms", Lower, true, m.Value)
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("bench: scenario %s reported no %s", ScenarioName, rec)
		}
	}
	if rep.Wall <= 0 || rep.BotSeconds <= 0 {
		return fmt.Errorf("bench: scenario %s recorded no throughput (wall %v, bot-seconds %g)", ScenarioName, rep.Wall, rep.BotSeconds)
	}
	f.Add("scenario_bots_per_wallsec", "bot-s/s", Higher, true, rep.BotSeconds/rep.Wall.Seconds())
	return nil
}

// chunkCodecMetrics measures one warm encode+decode round trip of a
// terrain-shaped chunk through the zero-alloc paths: EncodeAppend into a
// reused buffer and DecodeChunkInto over a pool-recycled chunk. The
// allocs/op gate is an exact zero — the chunk-churn fast path's whole
// premise is that codec work stopped feeding the garbage collector.
func chunkCodecMetrics(f *File) {
	c := world.NewChunk(world.ChunkPos{X: 2, Z: -7})
	for x := 0; x < world.ChunkSizeX; x++ {
		for z := 0; z < world.ChunkSizeZ; z++ {
			for y := 0; y < 60; y++ {
				c.Set(x, y, z, world.Block{ID: world.Stone})
			}
			c.Set(x, 60, z, world.Block{ID: world.Grass})
		}
	}
	buf := c.EncodeAppend(nil) // warm the buffer outside the measurement
	dec := new(world.Chunk)
	ns, allocs := wallBench(func() {
		buf = c.EncodeAppend(buf[:0])
		if err := world.DecodeChunkInto(dec, buf); err != nil {
			panic(err)
		}
	})
	f.Add("chunk_codec_ns_per_op", "ns/op", Lower, true, ns)
	f.Add("chunk_codec_allocs_per_op", "allocs/op", Lower, true, allocs)
}

// chunkStormMetrics measures the chunk-churn fast path end to end: a
// four-shard cluster over a cold default world takes a 32-player
// star-walker herd whose view rectangles straddle every tile seam, so one
// measured window exercises batched store loads, bounded nearest-first
// generation dispatch, pooled decode, and cross-shard dedup adoption at
// once. The virtual work is seed-deterministic, so rounds differ only in
// wall time and the best round is kept; the per-chunk apply cost divides
// that wall time by the (identical every round) chunks applied. The
// dedup factor — demanded seam chunks per FaaS invocation actually paid
// — comes off the same run's counters.
func chunkStormMetrics(f *File) {
	const (
		herd     = 32
		window   = 10 * time.Second
		tileSpan = 4 * world.ChunkSizeX // TileChunks:4 tiles
	)
	var bestNs, chunks, dedupX float64
	for r := 0; r < wallRounds; r++ {
		loop := sim.NewLoop(17)
		loop.SetWorkers(4)
		sys := core.New(loop, core.Config{
			Seed:         17,
			WorldType:    "default",
			ViewDistance: 64,
			ServerlessTG: true,
			ServerlessRS: true,
			Shards:       4,
			Workers:      4,
			Topology:     world.GridTopology{TilesX: 2, TilesZ: 2, TileChunks: 4},
		})
		sys.Cluster.Start()
		loop.RunUntil(loop.Now() + 2*time.Second) // settle the boot terrain
		for i := 0; i < herd; i++ {
			// Eight walkers per tile, centered on the 2×2 grid's four tiles.
			tx, tz := i%2, (i/2)%2
			sys.Cluster.ConnectAt(fmt.Sprintf("s%d", i), workload.ForName("S8"),
				world.BlockPos{X: tx*tileSpan + tileSpan/2, Y: 0, Z: tz*tileSpan + tileSpan/2})
		}
		var applied0, invoked0 int64
		deduped0 := 0
		for _, sh := range sys.Shards {
			applied0 += sh.Server.ChunksApplied.Value()
			deduped0 += sh.TGBackend.GenDeduped
		}
		invoked0 = int64(sys.TGFn.Invocations.Count())
		start := time.Now()
		loop.RunUntil(loop.Now() + window)
		ns := float64(time.Since(start).Nanoseconds())
		var applied int64
		deduped := 0
		for _, sh := range sys.Shards {
			applied += sh.Server.ChunksApplied.Value()
			deduped += sh.TGBackend.GenDeduped
		}
		invoked := int64(sys.TGFn.Invocations.Count()) - invoked0
		sys.Cluster.Stop()
		if r == 0 || ns < bestNs {
			bestNs = ns
		}
		chunks = float64(applied - applied0)
		dedupX = float64(int(invoked)+deduped-deduped0) / float64(invoked)
	}
	f.Add("chunk_storm_wall_us", "us", Lower, true, bestNs/1e3)
	f.Add("chunk_apply_ns_per_chunk", "ns/chunk", Lower, true, bestNs/chunks)
	f.Add("gen_dedup_x", "x", Higher, true, dedupX)
}

// digestMetrics measures the digest wire forms: the stateless full
// encoding, and the steady-state delta path (same membership, moving
// positions), which must not allocate.
func digestMetrics(f *File) {
	entries := make([]cluster.DigestEntry, digestEntries)
	for i := range entries {
		entries[i] = cluster.DigestEntry{
			Name: fmt.Sprintf("player-%04d", i),
			X:    float64(i) * 3, Z: float64(i%7) * 5,
			Home: i % 2,
		}
	}
	ns, allocs := wallBench(func() {
		if _, err := cluster.EncodeGhostDigest(entries); err != nil {
			panic(err)
		}
	})
	f.Add("digest_encode_ns_per_entry", "ns/entry", Lower, true, ns/digestEntries)
	f.Add("digest_encode_allocs_per_op", "allocs/op", Lower, true, allocs)

	var enc cluster.DigestEncoder
	if _, err := enc.Encode(entries, 1); err != nil { // first contact: full
		panic(err)
	}
	i := 0
	ns, allocs = wallBench(func() {
		entries[i%digestEntries].X += 0.5 // steady movement, stable membership
		i++
		if _, err := enc.Encode(entries, 1); err != nil {
			panic(err)
		}
	})
	f.Add("digest_delta_ns_per_entry", "ns/entry", Lower, true, ns/digestEntries)
	f.Add("digest_delta_allocs_per_op", "allocs/op", Lower, true, allocs)
}

// NewScanCluster builds a two-shard visibility cluster with n idle
// border residents paired across a band seam, spaced along Z so each
// pair audits locally, with membership caches warmed by one scan. full
// selects the full-rescan baseline mode.
func NewScanCluster(n int, full bool) *cluster.Cluster {
	loop := sim.NewLoop(7)
	c := cluster.New(loop, cluster.Config{
		Shards:     2,
		Topology:   world.BandTopology{BandChunks: 4},
		Visibility: cluster.VisibilityConfig{Enabled: true, Margin: 16, FullRescan: full},
	}, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 32, Region: region})
	})
	for i := 0; i < n; i++ {
		x := 60 // 4 blocks west of the x=64 band seam, shard 0
		if i%2 == 1 {
			x = 70 // 6 blocks east, shard 1
		}
		c.ConnectAt(fmt.Sprintf("r%d", i), nil, world.BlockPos{X: x, Y: 0, Z: (i / 2) * 48})
	}
	c.VisibilityScanOnce()
	return c
}

// scanMetrics measures one visibility replication tick over n border
// residents, incremental vs. the full-rescan baseline, and records the
// allocation improvement factor the incremental path buys.
func scanMetrics(f *File, n int) {
	tag := fmt.Sprintf("vis_scan_%dk", n/1000)
	inc := NewScanCluster(n, false)
	incNs, incAllocs := wallBench(inc.VisibilityScanOnce)
	full := NewScanCluster(n, true)
	fullNs, fullAllocs := wallBench(full.VisibilityScanOnce)
	f.Add(tag+"_inc_ns_per_resident", "ns/resident", Lower, true, incNs/float64(n))
	f.Add(tag+"_inc_allocs_per_op", "allocs/op", Lower, true, incAllocs)
	// The pre-incremental baseline, recorded (not gated) so every artifact
	// carries the comparison it claims. (The _alloc_improvement ratio the
	// artifact used to carry is gone: BordersWithinAppend made the full
	// path allocation-free too, so the ratio degenerated to 0/0 — the
	// gated absolute allocs/op rows above are the surviving contract.)
	f.Add(tag+"_full_ns_per_resident", "ns/resident", Lower, false, fullNs/float64(n))
	f.Add(tag+"_full_allocs_per_op", "allocs/op", Lower, false, fullAllocs)
}
