# CI entry points for the Servo reproduction. `make ci` is the gate the
# scenario harness and tier-1 tests run behind.

GO ?= go

.PHONY: ci vet build test race validate sim bench

ci: vet build race validate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# validate parses and validates every bundled scenario without running it.
validate:
	$(GO) run ./cmd/servo-sim validate all

# sim executes every bundled scenario and fails on any assertion failure.
sim:
	$(GO) run ./cmd/servo-sim run all

# bench regenerates the paper's tables and figures at bench scale.
bench:
	$(GO) run ./cmd/servo-bench -exp all
