package experiment

import (
	"fmt"
	"io"
	"time"

	"servo/internal/core"
	"servo/internal/faas"
	"servo/internal/metrics"
	"servo/internal/sc"
	"servo/internal/servo/specexec"
	"servo/internal/sim"
)

// Sec4G (paper §IV-G): serverless offloading throughput for small- and
// medium-sized simulated constructs. Each sample offloads a 100-step
// simulation of a construct and records the achieved update rate
// (steps / end-to-end latency). The paper's anchors: for 252- and
// 484-block constructs, at least 95% of samples reach 488 and 105
// updates/s — 24.4× and 5.3× the 20 Hz simulation rate.

// ConstructSizes is the §IV-G block-count axis.
var ConstructSizes = []int{252, 484}

// sec4gSteps is the simulation length per offload.
const sec4gSteps = 100

// Sec4GReport holds the update-rate distribution per construct size.
type Sec4GReport struct {
	// RatePerSec[blocks] is the distribution of achieved simulation
	// rates in updates (steps) per second.
	RatePerSec map[int]*metrics.Sample
	// P5Rate[blocks] is the 5th-percentile rate (the paper's "at least
	// 95% of samples" bound).
	P5Rate map[int]float64
	// SpeedupVsTickRate[blocks] is P5Rate relative to R = 20 Hz.
	SpeedupVsTickRate map[int]float64
}

// Sec4G measures offloaded-simulation throughput per construct size.
func Sec4G(opt Options) *Sec4GReport {
	r := &Sec4GReport{
		RatePerSec:        make(map[int]*metrics.Sample),
		P5Rate:            make(map[int]float64),
		SpeedupVsTickRate: make(map[int]float64),
	}
	samples := int(200 * opt.Scale * 10)
	if samples < 60 {
		samples = 60
	}
	for _, blocks := range ConstructSizes {
		loop := sim.NewLoop(opt.Seed)
		platform := faas.NewPlatform(loop)
		platform.Register(core.SCFunctionName, core.DefaultSCFnConfig(), specexec.Handler)
		construct := sc.BuildSized(blocks)

		rates := metrics.NewSample(samples)
		for i := 0; i < samples; i++ {
			i := i
			// Offloads spaced 5 s apart: the construct advances
			// between requests, as in the live system.
			loop.After(time.Duration(i)*5*time.Second, func() {
				req := specexec.Request{
					ConstructID: 1,
					BaseTick:    uint64(i * sec4gSteps),
					Steps:       sec4gSteps,
					Layout:      construct.EncodeLayout(),
				}
				platform.Invoke(core.SCFunctionName, specexec.EncodeRequest(req), func(inv faas.Invocation) {
					if inv.Err != nil {
						return
					}
					rate := sec4gSteps / inv.Latency.Seconds()
					// Store rates as nanoseconds for the Sample type.
					rates.Add(time.Duration(rate * float64(time.Nanosecond) * 1000))
				})
			})
		}
		loop.Run()
		r.RatePerSec[blocks] = rates
		r.P5Rate[blocks] = float64(rates.Percentile(5)) / 1000
		r.SpeedupVsTickRate[blocks] = r.P5Rate[blocks] / 20
		opt.logf("sec4g: %d blocks p5 rate=%.0f/s (%.1fx tick rate)",
			blocks, r.P5Rate[blocks], r.SpeedupVsTickRate[blocks])
	}
	return r
}

// Print renders the throughput table.
func (r *Sec4GReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Section IV-G — Offloaded simulation rate for small/medium constructs")
	fmt.Fprintln(w, "(100-step offloads; rate = steps / end-to-end invocation latency)")
	t := metrics.Table{Header: []string{"blocks", "p5 rate/s", "median rate/s", "speedup vs 20 Hz", "n"}}
	for _, blocks := range ConstructSizes {
		s := r.RatePerSec[blocks]
		t.AddRow(fmt.Sprint(blocks),
			fmt.Sprintf("%.0f", r.P5Rate[blocks]),
			fmt.Sprintf("%.0f", float64(s.Percentile(50))/1000),
			fmt.Sprintf("%.1fx", r.SpeedupVsTickRate[blocks]),
			fmt.Sprint(s.Len()))
	}
	fmt.Fprint(w, t.String())
}
