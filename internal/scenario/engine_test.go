package scenario

import (
	"testing"
)

// replaySpec is a seeded stress scenario exercising every nondeterminism
// hazard at once: random fleets with churn, chaos windows, a flash crowd,
// and a construct storm.
const replaySpec = `{
  "name": "replay-probe",
  "seed": 99,
  "duration": "60s",
  "warmup": "10s",
  "backend": {"constructs": true, "terrain": true, "storage": true},
  "constructs": [{"count": 10}],
  "stress": {
    "bots": 50,
    "ramp": "10s",
    "behaviors": {"A": 3, "R": 2, "S3": 1},
    "churn": {"mean_session": "15s", "mean_pause": "3s"}
  },
  "events": [
    {"at": "15s", "kind": "flash_crowd", "count": 10},
    {"at": "20s", "kind": "faas_chaos", "duration": "10s", "failure_rate": 0.2, "latency_factor": 2},
    {"at": "25s", "kind": "spawn_constructs", "count": 5},
    {"at": "35s", "kind": "storage_chaos", "duration": "10s", "error_rate": 0.05, "latency_factor": 3},
    {"at": "40s", "kind": "cold_start_storm", "duration": "10s"}
  ],
  "assertions": [
    {"metric": "players_peak", "op": ">=", "value": 40},
    {"metric": "faas_faults", "op": ">", "value": 0},
    {"metric": "storage_faults", "op": ">", "value": 0},
    {"metric": "constructs", "op": ">=", "value": 15}
  ]
}`

// TestDeterministicReplay runs the same seeded stress scenario twice on
// the virtual clock and requires byte-identical reports: identical tick
// statistics, counters, and assertion outcomes.
func TestDeterministicReplay(t *testing.T) {
	render := func() string {
		spec, err := Parse([]byte(replaySpec))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("replay probe failed its assertions:\n%s", rep.Render())
		}
		return rep.Render()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("replay diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestBundledScenariosParse validates every bundled scenario spec.
func TestBundledScenariosParse(t *testing.T) {
	names := Bundled()
	if len(names) < 6 {
		t.Fatalf("want >= 6 bundled scenarios, have %d: %v", len(names), names)
	}
	for _, name := range names {
		if _, err := LoadBundled(name); err != nil {
			t.Errorf("bundled %s: %v", name, err)
		}
	}
}

// TestBundledScenariosPass runs every bundled scenario to completion and
// requires each to pass its assertions (the same gate `servo-sim run all`
// enforces).
func TestBundledScenariosPass(t *testing.T) {
	if testing.Short() {
		t.Skip("bundled scenario sweep skipped in -short mode")
	}
	for _, name := range Bundled() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := LoadBundled(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass {
				t.Fatalf("scenario failed:\n%s", rep.Render())
			}
		})
	}
}

// TestFlipStorageScenario checks that runtime store flips keep the server
// loading terrain, and that a storage brownout opened while the local
// side is active still surfaces faults (chaos reaches both stores).
func TestFlipStorageScenario(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "flip-inline",
		"duration": "40s",
		"warmup": "5s",
		"backend": {"storage": true},
		"fleet": [{"count": 4, "behavior": "S3"}],
		"events": [
			{"at": "10s", "kind": "flip_storage", "target": "local"},
			{"at": "12s", "kind": "storage_chaos", "duration": "10s", "error_rate": 0.5},
			{"at": "25s", "kind": "flip_storage", "target": "serverless"}
		],
		"assertions": [
			{"metric": "chunks_applied", "op": ">", "value": 0},
			{"metric": "storage_faults", "op": ">", "value": 0},
			{"metric": "players_final", "op": ">=", "value": 4}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("flip scenario failed:\n%s", rep.Render())
	}
}
