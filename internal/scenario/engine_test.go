package scenario

import (
	"strings"
	"testing"
)

// replaySpec is a seeded stress scenario exercising every nondeterminism
// hazard at once: random fleets with churn, chaos windows, a flash crowd,
// and a construct storm.
const replaySpec = `{
  "name": "replay-probe",
  "seed": 99,
  "duration": "60s",
  "warmup": "10s",
  "backend": {"constructs": true, "terrain": true, "storage": true},
  "constructs": [{"count": 10}],
  "stress": {
    "bots": 50,
    "ramp": "10s",
    "behaviors": {"A": 3, "R": 2, "S3": 1},
    "churn": {"mean_session": "15s", "mean_pause": "3s"}
  },
  "events": [
    {"at": "15s", "kind": "flash_crowd", "count": 10},
    {"at": "20s", "kind": "faas_chaos", "duration": "10s", "failure_rate": 0.2, "latency_factor": 2},
    {"at": "25s", "kind": "spawn_constructs", "count": 5},
    {"at": "31s", "kind": "faas_chaos", "duration": "5s", "failure_rate": 0.5, "function": "simulate-construct"},
    {"at": "35s", "kind": "storage_chaos", "duration": "10s", "error_rate": 0.05, "latency_factor": 3},
    {"at": "40s", "kind": "cold_start_storm", "duration": "10s"}
  ],
  "assertions": [
    {"metric": "players_peak", "op": ">=", "value": 40},
    {"metric": "faas_faults", "op": ">", "value": 0},
    {"metric": "storage_faults", "op": ">", "value": 0},
    {"metric": "constructs", "op": ">=", "value": 15}
  ]
}`

// TestDeterministicReplay runs the same seeded stress scenario twice on
// the virtual clock and requires byte-identical reports: identical tick
// statistics, counters, and assertion outcomes.
func TestDeterministicReplay(t *testing.T) {
	render := func() string {
		spec, err := Parse([]byte(replaySpec))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("replay probe failed its assertions:\n%s", rep.Render())
		}
		return rep.Render()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("replay diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestBundledScenariosParse validates every bundled scenario spec.
func TestBundledScenariosParse(t *testing.T) {
	names := Bundled()
	if len(names) < 6 {
		t.Fatalf("want >= 6 bundled scenarios, have %d: %v", len(names), names)
	}
	for _, name := range names {
		if _, err := LoadBundled(name); err != nil {
			t.Errorf("bundled %s: %v", name, err)
		}
	}
}

// TestBundledScenariosPass runs every bundled scenario to completion and
// requires each to pass its assertions (the same gate `servo-sim run all`
// enforces).
func TestBundledScenariosPass(t *testing.T) {
	if testing.Short() {
		t.Skip("bundled scenario sweep skipped in -short mode")
	}
	for _, name := range Bundled() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := LoadBundled(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass {
				t.Fatalf("scenario failed:\n%s", rep.Render())
			}
		})
	}
}

// TestFlipStorageScenario checks that runtime store flips keep the server
// loading terrain, and that a storage brownout opened while the local
// side is active still surfaces faults (chaos reaches both stores).
func TestFlipStorageScenario(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "flip-inline",
		"duration": "40s",
		"warmup": "5s",
		"backend": {"storage": true},
		"fleet": [{"count": 4, "behavior": "S3"}],
		"events": [
			{"at": "10s", "kind": "flip_storage", "target": "local"},
			{"at": "12s", "kind": "storage_chaos", "duration": "10s", "error_rate": 0.5},
			{"at": "25s", "kind": "flip_storage", "target": "serverless"}
		],
		"assertions": [
			{"metric": "chunks_applied", "op": ">", "value": 0},
			{"metric": "storage_faults", "op": ">", "value": 0},
			{"metric": "players_final", "op": ">=", "value": 4}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("flip scenario failed:\n%s", rep.Render())
	}
}

// shardedReplaySpec is a compact version of the bundled sharded-stress
// scenario: a 4-shard cluster with spread placement, wanderers crossing
// region bands, and storage-backed handoff.
const shardedReplaySpec = `{
  "name": "sharded-replay-probe",
  "seed": 7,
  "duration": "50s",
  "warmup": "10s",
  "shards": 4,
  "backend": {"storage": true},
  "stress": {
    "bots": 120,
    "ramp": "10s",
    "placement": "spread",
    "behaviors": {"A": 4, "R": 3, "S3": 3}
  },
  "assertions": [
    {"metric": "players_peak", "op": ">=", "value": 120},
    {"metric": "handoffs", "op": ">=", "value": 1},
    {"metric": "shards", "op": ">=", "value": 4},
    {"metric": "load_imbalance", "op": "<", "value": 4},
    {"metric": "shard2_ticks_total", "op": ">", "value": 0}
  ]
}`

// TestShardedDeterministicReplay runs the sharded probe twice and
// requires byte-identical reports: identical per-shard tick statistics,
// handoff counts/latencies, and assertion outcomes.
func TestShardedDeterministicReplay(t *testing.T) {
	render := func() string {
		spec, err := Parse([]byte(shardedReplaySpec))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("sharded probe failed its assertions:\n%s", rep.Render())
		}
		return rep.Render()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("sharded replay diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// gridReplaySpec is a compact grid-topology probe: a Z-axis crowd lands
// on one grid column (two different row-shards), the controller sheds
// tiles, and the report must replay byte-identically.
const gridReplaySpec = `{
  "name": "grid-replay-probe",
  "seed": 9,
  "duration": "80s",
  "warmup": "10s",
  "shards": 4,
  "topology": {"kind": "grid", "tiles_x": 4, "tiles_z": 4},
  "rebalance": {"threshold": 1.1, "interval": "4s"},
  "fleet": [
    {"count": 6, "behavior": "A", "tile": [1, 0]},
    {"count": 6, "behavior": "A", "tile": [1, 1]},
    {"count": 6, "behavior": "A", "tile": [1, 2]},
    {"count": 6, "behavior": "A", "tile": [1, 3]}
  ],
  "events": [
    {"at": "20s", "kind": "flash_crowd", "count": 18, "behavior": "A", "tile": [0, 0]},
    {"at": "20s", "kind": "flash_crowd", "count": 18, "behavior": "A", "tile": [0, 1]}
  ],
  "assertions": [
    {"metric": "players_final", "op": ">=", "value": 60},
    {"metric": "tiles_moved", "op": ">=", "value": 1},
    {"metric": "handoffs", "op": ">=", "value": 1}
  ]
}`

// TestGridScenarioDeterministicReplay drives the 2-D tile topology
// through the engine twice: the Z-separated crowd must trigger tile
// migrations (a band topology would fuse the column into one band) and
// the reports must match byte for byte.
func TestGridScenarioDeterministicReplay(t *testing.T) {
	render := func() string {
		spec, err := Parse([]byte(gridReplaySpec))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("grid probe failed its assertions:\n%s", rep.Render())
		}
		return rep.Render()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("grid replay diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestPerFunctionChaosScenario fails only the construct function for a
// window: construct invocations take faults while the terrain pipeline
// stays fault-free.
func TestPerFunctionChaosScenario(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "function-chaos-inline",
		"duration": "60s",
		"warmup": "5s",
		"backend": {"constructs": true, "terrain": true, "spec_exec": {"detect_loops": false}},
		"constructs": [{"count": 5}],
		"fleet": [{"count": 4, "behavior": "A"}, {"count": 2, "behavior": "S3"}],
		"events": [
			{"at": "10s", "kind": "faas_chaos", "duration": "30s", "failure_rate": 0.8, "function": "simulate-construct"}
		],
		"assertions": [
			{"metric": "faas_faults", "op": ">", "value": 0},
			{"metric": "tg_failures", "op": "<=", "value": 0},
			{"metric": "tg_invocations", "op": ">", "value": 10}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("per-function chaos scenario failed:\n%s", rep.Render())
	}
}

// TestPrewriteRestartServesFromStorage checks the world-restart hook: the
// measured phase reads the terrain the prewrite phase persisted.
func TestPrewriteRestartServesFromStorage(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "prewrite-inline",
		"duration": "30s",
		"warmup": "5s",
		"backend": {"storage": true},
		"prewrite": {"duration": "30s", "fleet": [{"count": 4, "behavior": "S3"}]},
		"fleet": [{"count": 4, "behavior": "S3"}],
		"assertions": [
			{"metric": "storage_reads", "op": ">", "value": 0},
			{"metric": "cache_hits", "op": ">", "value": 0},
			{"metric": "chunks_applied", "op": ">", "value": 0}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("prewrite scenario failed:\n%s", rep.Render())
	}
	// Determinism holds across the phase boundary too.
	spec2, _ := Parse([]byte(`{
		"name": "prewrite-inline",
		"duration": "30s",
		"warmup": "5s",
		"backend": {"storage": true},
		"prewrite": {"duration": "30s", "fleet": [{"count": 4, "behavior": "S3"}]},
		"fleet": [{"count": 4, "behavior": "S3"}],
		"assertions": [
			{"metric": "storage_reads", "op": ">", "value": 0},
			{"metric": "cache_hits", "op": ">", "value": 0},
			{"metric": "chunks_applied", "op": ">", "value": 0}
		]
	}`))
	rep2, err := Run(spec2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Render() != rep2.Render() {
		t.Fatalf("prewrite replay diverged:\n--- first ---\n%s--- second ---\n%s", rep.Render(), rep2.Render())
	}
}

// TestWindowedAssertionCountsTicksInWindow pins the window semantics: a
// 10-second window at the 20 Hz tick rate holds ≈200 ticks, far fewer
// than the full run.
func TestWindowedAssertionCountsTicksInWindow(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "window-inline",
		"duration": "60s",
		"warmup": "5s",
		"fleet": [{"count": 2, "behavior": "idle"}],
		"assertions": [
			{"metric": "ticks_total", "op": ">=", "value": 150, "from": "20s", "to": "30s"},
			{"metric": "ticks_total", "op": "<=", "value": 250, "from": "20s", "to": "30s"},
			{"metric": "ticks_total", "op": ">", "value": 1000}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("windowed tick-count scenario failed:\n%s", rep.Render())
	}
}

// runBundledTwice runs a bundled scenario twice and returns both text and
// CSV renderings of each run, requiring both runs to pass.
func runBundledTwice(t *testing.T, name string) (text1, text2, csv1, csv2 string) {
	t.Helper()
	render := func() (string, string) {
		spec, err := LoadBundled(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("%s failed its assertions:\n%s", name, rep.Render())
		}
		return rep.Render(), rep.RenderCSV()
	}
	text1, csv1 = render()
	text2, csv2 = render()
	return text1, text2, csv1, csv2
}

// TestRebalanceScenarioDeterministicReplay: live rebalancing (controller
// decisions, band flushes, follow-up handoffs) preserves byte-identical
// replay, in both report formats.
func TestRebalanceScenarioDeterministicReplay(t *testing.T) {
	text1, text2, csv1, csv2 := runBundledTwice(t, "rebalance-hotspot")
	if text1 != text2 {
		t.Fatalf("rebalance replay diverged:\n--- first ---\n%s--- second ---\n%s", text1, text2)
	}
	if csv1 != csv2 {
		t.Fatal("rebalance CSV replay diverged")
	}
}

// TestFailoverScenarioDeterministicReplay: the bundled shard-failover
// scenario passes (zero lost players) and replays byte-identically.
func TestFailoverScenarioDeterministicReplay(t *testing.T) {
	text1, text2, csv1, csv2 := runBundledTwice(t, "shard-failover")
	if text1 != text2 {
		t.Fatalf("failover replay diverged:\n--- first ---\n%s--- second ---\n%s", text1, text2)
	}
	if csv1 != csv2 {
		t.Fatal("failover CSV replay diverged")
	}
}

// TestShardFailInlineZeroLoss is the compact failover property check: a
// kill without recovery still loses no players, and the survivors keep
// the whole band space owned.
func TestShardFailInlineZeroLoss(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "shard-fail-inline",
		"duration": "60s",
		"warmup": "10s",
		"shards": 2,
		"backend": {"storage": true},
		"fleet": [
			{"count": 6, "behavior": "A", "shard": 0},
			{"count": 6, "behavior": "A", "shard": 1}
		],
		"events": [
			{"at": "25s", "kind": "shard_fail", "shard": 0}
		],
		"assertions": [
			{"metric": "players_final", "op": ">=", "value": 12},
			{"metric": "failovers", "op": ">=", "value": 1},
			{"metric": "players_failed_over", "op": ">=", "value": 6},
			{"metric": "shard1_players_final", "op": ">=", "value": 12}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("inline shard-fail scenario failed:\n%s", rep.Render())
	}
}

// TestRenderCSVStructure pins the CSV emitter's shape: header, a scenario
// row, one row per metric and assertion, and per-tick rows for every
// shard.
func TestRenderCSVStructure(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "csv-inline",
		"duration": "30s",
		"warmup": "5s",
		"shards": 2,
		"fleet": [{"count": 2, "behavior": "idle"}],
		"assertions": [{"metric": "players_final", "op": ">=", "value": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	csv := rep.RenderCSV()
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if lines[0] != "kind,shard,name,at_ms,value,ok" {
		t.Fatalf("csv header = %q", lines[0])
	}
	counts := map[string]int{}
	shardsSeen := map[string]bool{}
	for _, l := range lines[1:] {
		f := strings.Split(l, ",")
		if len(f) != 6 {
			t.Fatalf("csv row has %d fields: %q", len(f), l)
		}
		counts[f[0]]++
		if f[0] == "tick" {
			shardsSeen[f[1]] = true
		}
	}
	if counts["scenario"] != 1 {
		t.Fatalf("scenario rows = %d, want 1", counts["scenario"])
	}
	if counts["metric"] != len(rep.Metrics) {
		t.Fatalf("metric rows = %d, want %d", counts["metric"], len(rep.Metrics))
	}
	if counts["assert"] != len(rep.Checks) {
		t.Fatalf("assert rows = %d, want %d", counts["assert"], len(rep.Checks))
	}
	// A 30s run at 20 Hz logs ≈600 ticks per shard.
	if counts["tick"] < 1000 {
		t.Fatalf("tick rows = %d, want >= 1000 across 2 shards", counts["tick"])
	}
	if !shardsSeen["0"] || !shardsSeen["1"] {
		t.Fatalf("tick rows missing a shard: %v", shardsSeen)
	}
}

// TestCrossShardChatScenario: chatty players on a sharded cluster deliver
// to the whole cluster, not one shard — the cluster-wide count must reach
// every player (> per-shard population could ever explain).
func TestCrossShardChatScenario(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "chat-inline",
		"seed": 5,
		"duration": "60s",
		"warmup": "5s",
		"shards": 4,
		"fleet": [
			{"count": 2, "behavior": "R", "shard": 0},
			{"count": 10, "behavior": "idle", "shard": 1},
			{"count": 10, "behavior": "idle", "shard": 2},
			{"count": 10, "behavior": "idle", "shard": 3}
		],
		"assertions": [
			{"metric": "chats_delivered", "op": ">=", "value": 32}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("cross-shard chat scenario failed:\n%s", rep.Render())
	}
}

// TestVisibilityScenarioInline: a two-shard band cluster with fleets
// anchored on the x=128 band seam (pos placement) must replicate ghosts
// both ways, keep the gap counter at zero, and emit per-tile load rows
// in the CSV report.
func TestVisibilityScenarioInline(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "visibility-inline",
		"seed": 9,
		"duration": "60s",
		"warmup": "5s",
		"shards": 2,
		"visibility": {},
		"world": {"view_distance": 64},
		"backend": {"storage": true},
		"fleet": [{"count": 6, "behavior": "A", "pos": [128, 0]}],
		"assertions": [
			{"metric": "ghost_updates", "op": ">", "value": 0},
			{"metric": "ghost_avatars", "op": ">=", "value": 1},
			{"metric": "visibility_gap_ticks", "op": "<=", "value": 0},
			{"metric": "handoffs", "op": ">=", "value": 1}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("visibility scenario failed:\n%s", rep.Render())
	}
	if len(rep.TileLoads) == 0 {
		t.Fatal("sharded report has no tile_load rows")
	}
	var actions int64
	for _, tl := range rep.TileLoads {
		actions += tl.Actions
	}
	if actions == 0 {
		t.Fatal("tile_load rows attribute no actions")
	}
	if !strings.Contains(rep.RenderCSVRows(), "tile_load,") {
		t.Fatal("CSV output missing tile_load rows")
	}
	// The per-tile attribution must account for every processed action.
	var actionsMetric float64
	for _, m := range rep.Metrics {
		if m.Name == "actions" {
			actionsMetric = m.Value
		}
	}
	if float64(actions) < actionsMetric {
		t.Fatalf("tile-attributed actions %d < measured actions %g", actions, actionsMetric)
	}
}
