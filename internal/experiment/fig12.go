package experiment

import (
	"fmt"
	"io"
	"time"

	"servo/internal/metrics"
	"servo/internal/sim"
	"servo/internal/workload"
)

// Fig12 (paper §IV-E): serverless terrain generation scalability. Players
// join one every ten seconds and walk away from spawn in a star pattern at
// a fixed speed (S3 or S8). The supported-player count is where the
// rolling 95th-percentile tick duration first crosses 50 ms. Fig. 12b
// repeats the comparison with the random behavior R.

// fig12MaxJoiners bounds the joining players. The paper plots up to 50;
// the crossings it reports all fall below 20, so 22 players bounds memory
// (each star player keeps ~400 chunks loaded) while covering the result.
const fig12MaxJoiners = 22

// Fig12aSeries is one (game, workload) run.
type Fig12aSeries struct {
	// TickWindows summarises tick durations per join interval, i.e. the
	// i-th window corresponds to i+1 connected players.
	TickWindows []metrics.WindowPoint
	// SupportedPlayers is the player count before the p95 first exceeded
	// the QoS bound (or the max tested if it never did).
	SupportedPlayers int
}

// Fig12aReport maps workload ("S3", "S8") and game to the series.
type Fig12aReport struct {
	Series map[string]map[Game]*Fig12aSeries
}

// Fig12a runs the S3 and S8 ramp-up workloads for Servo (serverless TG
// and RS, per Table I) and Opencraft (all local).
func Fig12a(opt Options) *Fig12aReport {
	r := &Fig12aReport{Series: make(map[string]map[Game]*Fig12aSeries)}
	for _, wl := range []string{"S3", "S8"} {
		r.Series[wl] = make(map[Game]*Fig12aSeries)
		for _, g := range []Game{Servo, Opencraft} {
			r.Series[wl][g] = fig12aRun(g, wl, opt)
			opt.logf("fig12a: %s %s supports %d", wl, g, r.Series[wl][g].SupportedPlayers)
		}
	}
	return r
}

// joinInterval is the paper's player arrival period.
const joinInterval = 10 * time.Second

func fig12aRun(g Game, wl string, opt Options) *Fig12aSeries {
	loop := sim.NewLoop(opt.Seed)
	sys := buildGame(loop, g, "default", opt.Seed, g == Servo, g == Servo)
	srv := sys.Server
	speed := 3.0
	if wl == "S8" {
		speed = 8.0
	}
	for i := 0; i < fig12MaxJoiners; i++ {
		i := i
		loop.After(time.Duration(i)*joinInterval, func() {
			srv.Connect(fmt.Sprintf("star-%d", i), &workload.Star{Speed: speed})
		})
	}
	srv.Start()
	loop.RunUntil(time.Duration(fig12MaxJoiners+2) * joinInterval)
	srv.Stop()

	windows := srv.TickSeries.Windows(joinInterval)
	s := &Fig12aSeries{TickWindows: windows, SupportedPlayers: fig12MaxJoiners}
	for i, wp := range windows {
		if wp.P95 > QoSThreshold {
			// Window i spans the interval with ~i+1 players connected;
			// the last supported count is i.
			s.SupportedPlayers = i
			break
		}
	}
	return s
}

// Print renders the per-window p95 series and the supported counts.
func (r *Fig12aReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 12a — Tick duration vs players joining every 10 s (star workloads)")
	for _, wl := range []string{"S3", "S8"} {
		fmt.Fprintf(w, "workload %s (players move at %s blocks/s):\n", wl, wl[1:])
		t := metrics.Table{Header: []string{"players", "Servo mean", "Servo p95", "Opencraft mean", "Opencraft p95"}}
		sv, oc := r.Series[wl][Servo], r.Series[wl][Opencraft]
		n := len(sv.TickWindows)
		if len(oc.TickWindows) < n {
			n = len(oc.TickWindows)
		}
		for i := 0; i < n; i++ {
			t.AddRow(fmt.Sprint(i+1),
				msCell(sv.TickWindows[i].Mean), msCell(sv.TickWindows[i].P95),
				msCell(oc.TickWindows[i].Mean), msCell(oc.TickWindows[i].P95))
		}
		fmt.Fprint(w, t.String())
		fmt.Fprintf(w, "supported players: Servo %d, Opencraft %d\n",
			sv.SupportedPlayers, oc.SupportedPlayers)
	}
}

// Fig12bReport holds the random-workload repetition results.
type Fig12bReport struct {
	// Supported[game] lists the supported-player count of each
	// repetition.
	Supported map[Game][]int
	Reps      int
}

// fig12bPlayers is the grid searched per repetition.
var fig12bPlayers = []int{5, 10, 15, 20, 25, 30, 35, 40}

// Fig12b repeats the terrain-scalability comparison with the random
// behavior R (paper: 20 repetitions; scaled down with opt.Scale).
func Fig12b(opt Options) *Fig12bReport {
	reps := int(20 * opt.Scale * 2)
	if reps < 4 {
		reps = 4
	}
	r := &Fig12bReport{Supported: make(map[Game][]int), Reps: reps}
	for _, g := range []Game{Servo, Opencraft} {
		for rep := 0; rep < reps; rep++ {
			seed := opt.Seed + int64(rep)*1000
			supported := 0
			for _, n := range fig12bPlayers {
				loop := sim.NewLoop(seed)
				sys := buildGame(loop, g, "default", seed, g == Servo, g == Servo)
				connectPlayers(sys.Server, n, "R")
				sample := measureTicks(loop, sys.Server, 10*time.Second, opt.window(3*time.Minute))
				if !playersSupported(sample) {
					break
				}
				supported = n
			}
			r.Supported[g] = append(r.Supported[g], supported)
			opt.logf("fig12b: %s rep=%d supported=%d", g, rep, supported)
		}
	}
	return r
}

// Mean returns the mean supported players for a game.
func (r *Fig12bReport) Mean(g Game) float64 {
	vals := r.Supported[g]
	if len(vals) == 0 {
		return 0
	}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return float64(sum) / float64(len(vals))
}

// Print renders the distribution of supported players per game.
func (r *Fig12bReport) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 12b — Maximum supported players, random behavior R (%d repetitions)\n", r.Reps)
	t := metrics.Table{Header: []string{"game", "mean", "min", "max", "runs"}}
	for _, g := range []Game{Servo, Opencraft} {
		vals := r.Supported[g]
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		t.AddRow(g.String(), fmt.Sprintf("%.1f", r.Mean(g)), fmt.Sprint(min), fmt.Sprint(max), fmt.Sprint(len(vals)))
	}
	fmt.Fprint(w, t.String())
}
