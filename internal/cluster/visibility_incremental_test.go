// Tests for the incremental visibility scan and the versioned digest
// encoding: the failed-shard-0 view-distance regression, the dirty-set
// determinism contract (incremental == full rescan, byte for byte), the
// encode-boundary validation, and the delta wire form.

package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"servo/internal/mve"
	"servo/internal/sim"
	"servo/internal/world"
)

// TestVisMarginSurvivesShard0Failure: the margin (and the gap audit's
// view distance) must come from an alive shard. The regression: shard 0
// is built with a different view distance and then killed before any
// scan — the old code read the crashed server's config unconditionally.
func TestVisMarginSurvivesShard0Failure(t *testing.T) {
	loop := sim.NewLoop(41)
	cfg := Config{
		Shards:     3,
		Topology:   world.BandTopology{BandChunks: 4},
		Visibility: VisibilityConfig{Enabled: true}, // Margin 0 → view distance
	}
	c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
		vd := 32
		if i == 0 {
			vd = 8 // the misleading config a crashed shard 0 leaves behind
		}
		return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: vd, Region: region})
	})
	c.ConnectAt("edge", nil, world.BlockPos{X: 130, Y: 0, Z: 8}) // shard 2's band, near a border
	c.Start()
	if !c.FailShard(0) {
		t.Fatal("FailShard refused")
	}
	if got := c.visMargin(); got != 32 {
		t.Fatalf("visMargin after FailShard(0) = %d, want 32 (read from an alive shard)", got)
	}
	// The scan itself must run against the survivors without consulting
	// the corpse.
	loop.RunUntil(time.Second)
	if got := c.viewDistance(); got != 32 {
		t.Fatalf("viewDistance after FailShard(0) = %d, want 32", got)
	}
}

// TestViewDistanceMismatchAsserted: alive shards disagreeing on view
// distance is a configuration bug the margin logic cannot paper over —
// the resolver must say so instead of silently picking one.
func TestViewDistanceMismatchAsserted(t *testing.T) {
	loop := sim.NewLoop(42)
	cfg := Config{Shards: 2, Topology: world.BandTopology{BandChunks: 4}}
	c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 16 + 16*i, Region: region})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mismatched alive view distances did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "ViewDistance") {
			t.Fatalf("panic %v does not name the mismatch", r)
		}
	}()
	c.viewDistance()
}

// TestIncrementalScanMatchesFullRescan is the determinism contract of
// the dirty-set scan, exercised through the displaced-session pairing
// loop: two displaced sessions on different shards within margin of each
// other (each hosted by a shard that owns none of their terrain) plus
// pacing border traffic. The digest byte stream and the ghost log must
// be identical across replays and across incremental vs. full scans.
func TestIncrementalScanMatchesFullRescan(t *testing.T) {
	run := func(full bool) ([]byte, []GhostRecord) {
		loop := sim.NewLoop(43)
		var stream bytes.Buffer
		cfg := Config{
			Shards:       2,
			Topology:     world.BandTopology{BandChunks: 4},
			ScanInterval: time.Hour, // park handoffs: hold the displaced transient open
			Visibility: VisibilityConfig{
				Enabled:    true,
				Margin:     16,
				FullRescan: full,
				Observer: func(src, dst int, digest []byte) {
					fmt.Fprintf(&stream, "%d>%d:", src, dst)
					stream.Write(digest)
				},
			},
		}
		c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
			return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 32, Region: region})
		})
		// Tile 2 is shard 0's, tile 3 shard 1's; the two sessions stand
		// 10 blocks apart across that seam, and each tile then migrates to
		// the other shard — leaving both sessions displaced, on different
		// shards, within margin of each other.
		a := c.ConnectAt("astray", pacer(150, 8, 187, 8, 5), world.BlockPos{X: 187, Y: 0, Z: 8})
		b := c.ConnectAt("bstray", pacer(197, 8, 240, 8, 5), world.BlockPos{X: 197, Y: 0, Z: 8})
		// Background border traffic keeps the dirty set busy.
		c.ConnectAt("walker", pacer(40, 24, 90, 24, 7), world.BlockPos{X: 40, Y: 0, Z: 24})
		c.ConnectAt("idler", nil, world.BlockPos{X: 60, Y: 0, Z: 40})
		if a.Shard() != 0 || b.Shard() != 1 {
			t.Fatalf("setup: shards %d/%d, want 0/1", a.Shard(), b.Shard())
		}
		c.Start()
		loop.RunUntil(time.Second)
		if !c.MigrateTile(world.TileID{X: 2}, 1) || !c.MigrateTile(world.TileID{X: 3}, 0) {
			t.Fatal("MigrateTile refused")
		}
		loop.RunUntil(time.Minute)
		if a.Shard() != 0 || b.Shard() != 1 {
			t.Fatal("handoff scan fired; the displaced transient did not hold")
		}
		if c.Shard(1).Ghost("astray") == nil || c.Shard(0).Ghost("bstray") == nil {
			t.Fatal("displaced pair not mutually mirrored")
		}
		if got := c.VisibilityGaps.Value(); got != 0 {
			t.Fatalf("visibility gap ticks = %d, want 0", got)
		}
		return stream.Bytes(), c.GhostLog.All()
	}
	incA, glogA := run(false)
	incB, glogB := run(false)
	fullD, glogF := run(true)
	if len(incA) == 0 || len(glogA) == 0 {
		t.Fatalf("empty replay surface (digests %d, ghost log %d); test proves nothing", len(incA), len(glogA))
	}
	if !bytes.Equal(incA, incB) {
		t.Fatalf("incremental digest stream not replay-stable (%d vs %d bytes)", len(incA), len(incB))
	}
	if !bytes.Equal(incA, fullD) {
		t.Fatalf("incremental and full-rescan digest streams diverge (%d vs %d bytes)", len(incA), len(fullD))
	}
	for name, glog := range map[string][]GhostRecord{"replay": glogB, "full rescan": glogF} {
		if len(glog) != len(glogA) {
			t.Fatalf("%s ghost log diverges: %d vs %d records", name, len(glog), len(glogA))
		}
		for i := range glog {
			if glog[i] != glogA[i] {
				t.Fatalf("%s ghost log[%d] differs: %+v vs %+v", name, i, glog[i], glogA[i])
			}
		}
	}
}

// TestVisRecomputesStopIdle: once every session is stationary and the
// ownership epoch is quiet, the dirty set is empty — membership
// recomputation stops while replication (ghost refreshes) carries on.
func TestVisRecomputesStopIdle(t *testing.T) {
	loop, c := newTestCluster(t, 44, 2, Config{Visibility: VisibilityConfig{Enabled: true, Margin: 16}})
	c.ConnectAt("alice", nil, world.BlockPos{X: 60, Y: 0, Z: 8})
	c.ConnectAt("bob", nil, world.BlockPos{X: 70, Y: 0, Z: 8})
	c.Start()
	loop.RunUntil(time.Second)
	settled := c.VisRecomputes.Value()
	if settled == 0 {
		t.Fatal("no membership recomputation at all; test proves nothing")
	}
	updates := c.GhostUpdates.Value()
	loop.RunUntil(3 * time.Second)
	if got := c.VisRecomputes.Value(); got != settled {
		t.Fatalf("idle sessions still recompute membership: %d → %d", settled, got)
	}
	if c.GhostUpdates.Value() == updates {
		t.Fatal("replication stopped along with the recomputation")
	}
}

// TestEncodeGhostDigestValidation: entries the wire form cannot carry are
// errors at the encode boundary, not silent truncation.
func TestEncodeGhostDigestValidation(t *testing.T) {
	ok := []DigestEntry{{Name: "fine", X: 1, Z: 2, Home: 3}}
	if _, err := EncodeGhostDigest(ok); err != nil {
		t.Fatalf("valid entries rejected: %v", err)
	}
	long := []DigestEntry{{Name: strings.Repeat("n", 1<<16), Home: 0}}
	if _, err := EncodeGhostDigest(long); err == nil {
		t.Fatal("64 KiB name encoded without error (would truncate via uint16)")
	}
	neg := []DigestEntry{{Name: "x", Home: -1}}
	if _, err := EncodeGhostDigest(neg); err == nil {
		t.Fatal("negative home shard encoded without error (would wrap via uint32)")
	}
	big := []DigestEntry{{Name: "x", Home: 1 << 40}}
	if _, err := EncodeGhostDigest(big); err == nil {
		t.Fatal("out-of-range home shard encoded without error")
	}
	var enc DigestEncoder
	if _, err := enc.Encode(long, 1); err == nil {
		t.Fatal("DigestEncoder accepted an unencodable entry")
	}
}

// TestDigestEncoderDelta: the encoder emits a full digest on first
// contact and on epoch change, a delta when only positions moved, and
// both decode back to the same entries.
func TestDigestEncoderDelta(t *testing.T) {
	var enc DigestEncoder
	gen := func(x float64) []DigestEntry {
		return []DigestEntry{
			{Name: "alice", X: x, Z: 8, Home: 0},
			{Name: "bob", X: 70, Z: 8, Home: 1},
		}
	}
	roundTrip := func(prev []DigestEntry, entries []DigestEntry, epoch uint64, wantKind byte) []DigestEntry {
		t.Helper()
		buf, err := enc.Encode(entries, epoch)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if buf[0] != wantKind {
			t.Fatalf("digest kind = 0x%02x, want 0x%02x", buf[0], wantKind)
		}
		dec, err := DecodeGhostDigest(prev, buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(entries) {
			t.Fatalf("decoded %d entries, want %d", len(dec), len(entries))
		}
		for i := range dec {
			if dec[i] != entries[i] {
				t.Fatalf("entry %d decoded as %+v, want %+v", i, dec[i], entries[i])
			}
		}
		return dec
	}
	// First contact: full. Same keys, moved position: delta, and the
	// delta carries only the moved entry. Epoch change: full again.
	prev := roundTrip(nil, gen(60), 1, digestKindFull)
	buf, _ := enc.Encode(gen(61), 1)
	if buf[0] != digestKindDelta {
		t.Fatalf("pure movement emitted kind 0x%02x, want delta", buf[0])
	}
	if want := 5 + 1 + 16; len(buf) != want {
		t.Fatalf("delta of one moved entry is %d bytes, want %d", len(buf), want)
	}
	dec, err := DecodeGhostDigest(prev, buf)
	if err != nil || dec[0].X != 61 || dec[1] != prev[1] {
		t.Fatalf("delta decode wrong: %+v (err %v)", dec, err)
	}
	prev = dec
	prev = roundTrip(prev, gen(62), 2, digestKindFull) // epoch bump forces full
	// Membership change (new entry): full.
	grown := append(gen(62), DigestEntry{Name: "carol", X: 1, Z: 2, Home: 0})
	roundTrip(prev, grown, 2, digestKindFull)
	_ = prev
}

// TestDigestRateLimiterSkipsIdlePairs: a shard pair whose entry list is
// unchanged under a quiet ownership epoch skips publication, but a
// forced refresh lands at least every digestMaxSkips+1 scans — so the
// staleness stamps keep refreshing, no ghost expires, and the gap audit
// stays clean throughout.
func TestDigestRateLimiterSkipsIdlePairs(t *testing.T) {
	loop, c := newTestCluster(t, 45, 2, Config{Visibility: VisibilityConfig{Enabled: true, Margin: 16}})
	c.ConnectAt("alice", nil, world.BlockPos{X: 60, Y: 0, Z: 8})
	c.ConnectAt("bob", nil, world.BlockPos{X: 70, Y: 0, Z: 8})
	c.Start()
	loop.RunUntil(time.Second)
	sent, skipped := c.DigestsSent.Value(), c.DigestsSkipped.Value()
	ghosts := c.GhostCount()
	if ghosts == 0 {
		t.Fatal("no ghosts materialised; test proves nothing")
	}
	loop.RunUntil(4 * time.Second)
	dSent := c.DigestsSent.Value() - sent
	dSkip := c.DigestsSkipped.Value() - skipped
	if dSkip == 0 {
		t.Fatal("stationary pair never skipped publication")
	}
	if dSent == 0 {
		t.Fatal("rate limiter never force-refreshed an idle pair")
	}
	if dSkip > int64(digestMaxSkips)*dSent {
		t.Fatalf("skip cap violated: %d skips for %d sends (max %d per send)", dSkip, dSent, digestMaxSkips)
	}
	if got := c.GhostCount(); got != ghosts {
		t.Fatalf("rate limiting changed the ghost population: %d → %d", ghosts, got)
	}
	if c.VisibilityGaps.Value() != 0 {
		t.Fatalf("rate limiting opened %d visibility gap ticks", c.VisibilityGaps.Value())
	}
}
