package world

import "testing"

func TestBorderDistanceBands(t *testing.T) {
	topo := BandTopology{BandChunks: 4} // 64-block bands
	cases := []struct {
		x, z   int
		margin int
		want   int
	}{
		{32, 0, 64, 32}, // mid-band: 32 blocks to the x=64 border block
		{63, 0, 64, 1},  // flush against the border: the foreign block is adjacent
		{64, 0, 64, 1},  // just across: band 0 is one block west
		{0, 0, 64, 1},   // western edge of band 0
		{32, 500, 64, 32} /* bands are unbounded in Z */}
	for _, c := range cases {
		got := BorderDistance(topo, BlockPos{X: c.x, Z: c.z}, c.margin)
		if got != c.want {
			t.Errorf("BorderDistance(band, x=%d z=%d, %d) = %d, want %d", c.x, c.z, c.margin, got, c.want)
		}
	}
	// Out of reach: capped at margin+1.
	if got := BorderDistance(topo, BlockPos{X: 32, Z: 0}, 16); got != 17 {
		t.Fatalf("capped distance = %d, want 17", got)
	}
}

func TestBordersWithinMatchesNeighbors(t *testing.T) {
	// With the margin at most one tile side, every tile BordersWithin
	// reports is the home tile's 4-neighbour or a neighbour of a
	// neighbour (a diagonal corner) — the Topology.Neighbors ring border
	// replication serves in the common configuration.
	topos := []Topology{
		BandTopology{BandChunks: 4},
		GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4},
		GridTopology{TilesX: 2, TilesZ: 2, TileChunks: 8},
	}
	for _, topo := range topos {
		for _, pos := range []BlockPos{{X: 1, Z: 1}, {X: 63, Z: 63}, {X: 100, Z: -5}, {X: -70, Z: 130}} {
			home := topo.TileOf(pos.Chunk())
			reach := make(map[TileID]bool)
			for _, n := range topo.Neighbors(home) {
				reach[n] = true
				for _, nn := range topo.Neighbors(n) {
					reach[nn] = true
				}
			}
			for _, bn := range BordersWithin(topo, pos, 64) {
				if bn.Tile == home {
					t.Fatalf("%v: home tile reported as its own border", topo)
				}
				if !reach[bn.Tile] {
					t.Fatalf("%v pos %v: border tile %v not within two Neighbors hops of %v", topo, pos, bn.Tile, home)
				}
				if bn.Dist < 1 || bn.Dist > 64 {
					t.Fatalf("%v pos %v: border distance %d out of range", topo, pos, bn.Dist)
				}
			}
		}
	}
}

func TestBordersWithinGridCorner(t *testing.T) {
	topo := GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4} // 64-block tiles
	// One block inside tile (0,0)'s north-west... south-east corner at
	// (63, 63): all of east (1,0), south (0,1), and the diagonal (1,1)
	// are 1 block away.
	got := BordersWithin(topo, BlockPos{X: 63, Z: 63}, 32)
	want := map[TileID]int{{X: 1, Z: 0}: 1, {X: 0, Z: 1}: 1, {X: 1, Z: 1}: 1}
	if len(got) != len(want) {
		t.Fatalf("corner borders = %v, want tiles %v", got, want)
	}
	for _, bn := range got {
		if d, ok := want[bn.Tile]; !ok || d != bn.Dist {
			t.Fatalf("corner borders = %v, want %v", got, want)
		}
	}
	// Mid-tile with a small margin: nothing in reach.
	if got := BordersWithin(topo, BlockPos{X: 32, Z: 32}, 8); len(got) != 0 {
		t.Fatalf("mid-tile borders = %v, want none", got)
	}
}

func TestBordersWithinOneWideAxisFolds(t *testing.T) {
	// On a 2x1 grid the east and west neighbours are the same tile: the
	// fold must dedupe to one entry at the minimum distance.
	topo := GridTopology{TilesX: 2, TilesZ: 1, TileChunks: 4}
	got := BordersWithin(topo, BlockPos{X: 10, Z: 8}, 64)
	if len(got) != 1 || got[0].Tile != (TileID{X: 1}) {
		t.Fatalf("folded borders = %v, want just tile(1,0)", got)
	}
	if got[0].Dist != 11 { // 10 blocks to x=-1 (the wrapped copy) → dist 11; east edge is 54 away
		t.Fatalf("folded distance = %d, want 11", got[0].Dist)
	}
	// A 1x1 grid has no borders at all.
	if got := BordersWithin(GridTopology{TilesX: 1, TilesZ: 1}, BlockPos{}, 1000); len(got) != 0 {
		t.Fatalf("1x1 grid borders = %v, want none", got)
	}
}

func TestBordersWithinSpansMultipleRings(t *testing.T) {
	// A margin wider than the tile side must reach past the immediate
	// neighbour ring: with 16-block tiles (tile_chunks 1) on an 8x8 grid
	// and a 64-block margin, an avatar mid-tile sees four full rings of
	// foreign tiles — an avatar standing 40 blocks away, two tiles over,
	// must be reported or cross-shard visibility would silently stop one
	// ring out.
	topo := GridTopology{TilesX: 8, TilesZ: 8, TileChunks: 1}
	pos := BlockPos{X: 8, Z: 8} // center of tile (0,0)
	got := BordersWithin(topo, pos, 64)
	byTile := make(map[TileID]int)
	for _, bn := range got {
		byTile[bn.Tile] = bn.Dist
	}
	// Tile (3,0) starts at x=48: nearest block 40 blocks east.
	if d, ok := byTile[TileID{X: 3}]; !ok || d != 40 {
		t.Fatalf("ring-3 tile (3,0) = (%d, %v), want distance 40 reported", d, ok)
	}
	// Ring 2 diagonal.
	if _, ok := byTile[TileID{X: 2, Z: 2}]; !ok {
		t.Fatalf("ring-2 diagonal tile (2,2) missing: %v", got)
	}
	// The margin square [-56, 72]^2 clips tiles -4..4 per axis → the full
	// wrapped 8x8 ring structure minus home; no tile may be missed.
	if len(got) < 24 {
		t.Fatalf("only %d tiles reported for a 4-ring margin", len(got))
	}
}
