package world

import "testing"

func TestPartitionZeroValueOwnsEverything(t *testing.T) {
	r := Region{}
	for _, cp := range []ChunkPos{{0, 0}, {-1000, 3}, {999, -999}} {
		if !r.Contains(cp) {
			t.Errorf("zero region must contain %v", cp)
		}
	}
	if !r.All() {
		t.Error("zero region must report All()")
	}
}

func TestPartitionBands(t *testing.T) {
	p := Partition{Shards: 4, BandChunks: 8}
	// Band 0 covers chunks [0, 8): shard 0. Band 1: shard 1. Band -1
	// (chunks [-8, 0)): shard 3.
	cases := []struct {
		cp   ChunkPos
		want int
	}{
		{ChunkPos{0, 0}, 0},
		{ChunkPos{7, 50}, 0},
		{ChunkPos{8, 0}, 1},
		{ChunkPos{16, 0}, 2},
		{ChunkPos{24, 0}, 3},
		{ChunkPos{32, 0}, 0},
		{ChunkPos{-1, 0}, 3},
		{ChunkPos{-8, 0}, 3},
		{ChunkPos{-9, 0}, 2},
	}
	for _, c := range cases {
		if got := p.ShardOf(c.cp); got != c.want {
			t.Errorf("ShardOf(%v) = %d, want %d", c.cp, got, c.want)
		}
	}
	// Z never matters: bands run along X only.
	for z := -100; z <= 100; z += 50 {
		if got := p.ShardOf(ChunkPos{X: 9, Z: z}); got != 1 {
			t.Errorf("ShardOf(9,%d) = %d, want 1", z, got)
		}
	}
}

func TestPartitionRegionsDisjointAndComplete(t *testing.T) {
	p := Partition{Shards: 3, BandChunks: 4}
	for x := -40; x <= 40; x++ {
		owners := 0
		for i := 0; i < p.Shards; i++ {
			if p.Region(i).Contains(ChunkPos{X: x, Z: 7}) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("chunk x=%d owned by %d shards, want exactly 1", x, owners)
		}
	}
}

func TestHomeBlockInOwnRegion(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		p := Partition{Shards: shards, BandChunks: 8}
		for i := 0; i < shards; i++ {
			home := p.HomeBlock(i)
			if got := p.ShardOfBlock(home); got != i {
				t.Errorf("shards=%d: HomeBlock(%d)=%v maps to shard %d", shards, i, home, got)
			}
		}
	}
}
