package sc

import (
	"testing"
	"testing/quick"
)

func TestSimulateMatchesLocalStepping(t *testing.T) {
	c := NewLampBank(4, 8)
	res := Simulate(c, 50, false)
	if len(res.States) != 50 {
		t.Fatalf("got %d states, want 50", len(res.States))
	}
	// The original construct must be untouched.
	if c.Steps() != 0 {
		t.Fatal("Simulate mutated its input")
	}
	local := c.Clone()
	for i := 0; i < 50; i++ {
		local.Step()
		if string(res.States[i]) != string(local.State()) {
			t.Fatalf("remote state %d differs from local simulation", i+1)
		}
	}
}

func TestSimulateDetectsClockLoop(t *testing.T) {
	c := NewClock(3, 2)
	res := Simulate(c, 500, true)
	if res.Loop == nil {
		t.Fatal("no loop detected for a periodic clock in 500 steps")
	}
	if res.Loop.Period < 2 {
		t.Fatalf("loop period = %d, want >= 2", res.Loop.Period)
	}
	if len(res.States) >= 500 {
		t.Fatal("states not truncated after loop detection")
	}
	if res.Loop.EntryIndex < 0 || res.Loop.EntryIndex >= len(res.States) {
		t.Fatalf("entry index %d out of range (%d states)", res.Loop.EntryIndex, len(res.States))
	}
}

func TestSimulateLoopReplayMatchesRealSimulation(t *testing.T) {
	// The central loop-detection correctness property (paper §III-C1):
	// replaying the truncated loop must yield exactly the states a full
	// simulation would produce, forever.
	c := NewClock(3, 1)
	res := Simulate(c, 500, true)
	if res.Loop == nil {
		t.Skip("clock produced no loop — covered by TestSimulateDetectsClockLoop")
	}
	local := c.Clone()
	for step := 1; step <= 300; step++ {
		local.Step()
		got, ok := res.StateAt(step)
		if !ok {
			t.Fatalf("StateAt(%d) not available despite loop", step)
		}
		if string(got) != string(local.State()) {
			t.Fatalf("replayed state at step %d differs from real simulation", step)
		}
	}
}

func TestSimulateLoopReplayQuick(t *testing.T) {
	res := Simulate(NewClock(3, 2), 500, true)
	if res.Loop == nil {
		t.Skip("no loop found")
	}
	n := len(res.States)
	f := func(rawOffset uint16) bool {
		offset := int(rawOffset)%2000 + 1
		got, ok := res.StateAt(offset)
		if !ok {
			return false
		}
		if offset <= n {
			return string(got) == string(res.States[offset-1])
		}
		// Beyond the window: must equal the state one period earlier.
		earlier, ok2 := res.StateAt(offset - res.Loop.Period)
		return ok2 && string(got) == string(earlier)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateAtOutOfRangeWithoutLoop(t *testing.T) {
	res := Simulate(NewLampBank(2, 4), 10, false)
	if _, ok := res.StateAt(11); ok {
		t.Fatal("StateAt beyond window without loop must report false")
	}
	if _, ok := res.StateAt(0); ok {
		t.Fatal("StateAt(0) must report false (offsets are 1-based)")
	}
	if _, ok := res.StateAt(10); !ok {
		t.Fatal("StateAt(10) within window must succeed")
	}
}

func TestSimulateWorkUnitsScaleWithSteps(t *testing.T) {
	c := NewLampBank(4, 8)
	short := Simulate(c, 10, false)
	long := Simulate(c, 100, false)
	if short.WorkUnits <= 0 {
		t.Fatal("work units must be positive")
	}
	if long.WorkUnits <= short.WorkUnits {
		t.Fatal("more steps must cost more work")
	}
}

func TestSimulateLoopSavesWork(t *testing.T) {
	// The cost optimisation: with loop detection a periodic construct
	// costs a bounded amount of work no matter how many steps are asked
	// for.
	c := NewClock(3, 1)
	with := Simulate(c, 10000, true)
	without := Simulate(c, 10000, false)
	if with.Loop == nil {
		t.Skip("no loop found")
	}
	if with.WorkUnits >= without.WorkUnits/10 {
		t.Fatalf("loop detection saved too little work: %d vs %d", with.WorkUnits, without.WorkUnits)
	}
}

func TestSimulateZeroSteps(t *testing.T) {
	res := Simulate(NewClock(1, 0), 0, true)
	if len(res.States) != 0 || res.Loop != nil || res.WorkUnits != 0 {
		t.Fatalf("zero-step simulation must be empty, got %+v", res)
	}
}
