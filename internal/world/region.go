package world

import "fmt"

// DefaultBandChunks is the default width of one region band in chunk
// columns (128 blocks): wide enough that bounded-area players rarely leave
// their band, narrow enough that a handful of bands cover the spawn
// neighbourhood of a small cluster.
const DefaultBandChunks = 8

// Partition maps the infinite chunk grid onto N shards. The grid is cut
// into contiguous bands of BandChunks chunk columns along the X axis, and
// band b is owned by shard floorMod(b, Shards): a trivial chunk-space hash
// that keeps each band contiguous (players cross shard boundaries only at
// band edges) while interleaving bands so every shard owns terrain near
// spawn.
//
// The zero value is the trivial partition: one shard owning everything.
type Partition struct {
	// Shards is the number of shards; values < 1 mean 1.
	Shards int
	// BandChunks is the band width in chunk columns; values < 1 mean
	// DefaultBandChunks.
	BandChunks int
}

// shards returns the effective shard count.
func (p Partition) shards() int {
	if p.Shards < 1 {
		return 1
	}
	return p.Shards
}

// bandChunks returns the effective band width.
func (p Partition) bandChunks() int {
	if p.BandChunks < 1 {
		return DefaultBandChunks
	}
	return p.BandChunks
}

// Band returns the band index of a chunk column.
func (p Partition) Band(cp ChunkPos) int { return floorDiv(cp.X, p.bandChunks()) }

// ShardOf returns the shard owning the chunk column.
func (p Partition) ShardOf(cp ChunkPos) int {
	return floorMod(p.Band(cp), p.shards())
}

// ShardOfBlock returns the shard owning the block position.
func (p Partition) ShardOfBlock(b BlockPos) int { return p.ShardOf(b.Chunk()) }

// Region returns shard i's region.
func (p Partition) Region(i int) Region { return Region{Part: p, Index: i} }

// HomeBlock returns a block position inside shard i's region close to
// spawn: the center of band i (the shard's nearest band to the origin).
// Shard-aware fleet placement admits players here so a fresh cluster
// starts with per-shard load instead of piling everyone onto the shard
// that owns spawn.
func (p Partition) HomeBlock(i int) BlockPos { return p.BandCenter(i) }

// BandCenter returns the block position at the center of a band (band-
// targeted fleet placement, e.g. to build a hotspot inside one shard's
// territory).
func (p Partition) BandCenter(band int) BlockPos {
	w := p.bandChunks() * ChunkSizeX
	return BlockPos{X: band*w + w/2, Y: 0, Z: 0}
}

// Region is the set of chunk columns one shard owns. The zero value (the
// zero Partition's shard 0) contains every chunk, which is what an
// unsharded server uses.
type Region struct {
	Part  Partition
	Index int
	// Table, when non-nil, makes ownership dynamic: Contains consults the
	// live band → shard assignment instead of the static interleave, so a
	// migration or failover re-gates chunk persistence on every shard the
	// moment the table's epoch advances, without rebuilding servers.
	Table *OwnershipTable
}

// Contains reports whether the region owns the chunk column.
func (r Region) Contains(cp ChunkPos) bool {
	if r.Table != nil {
		return r.Table.ShardOf(cp) == r.Index
	}
	return r.Part.ShardOf(cp) == r.Index
}

// ContainsBlock reports whether the region owns the block position.
func (r Region) ContainsBlock(b BlockPos) bool { return r.Contains(b.Chunk()) }

// All reports whether the region covers the whole grid (single shard).
func (r Region) All() bool {
	if r.Table != nil {
		return r.Table.Shards() == 1
	}
	return r.Part.shards() == 1
}

// String implements fmt.Stringer.
func (r Region) String() string {
	if r.All() {
		return "region(all)"
	}
	return fmt.Sprintf("region(%d/%d, band=%d chunks)", r.Index, r.Part.shards(), r.Part.bandChunks())
}
