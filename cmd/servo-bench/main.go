// Command servo-bench regenerates the paper's tables and figures, and
// records/gates the repo's performance trajectory.
//
// Usage:
//
//	servo-bench -exp fig7a,fig8          # run selected experiments
//	servo-bench -exp all -scale 1.0      # full paper-length durations
//	servo-bench -list                    # list available experiments
//
//	servo-bench -format json -pr 6 -out BENCH_6.json
//	    run the headline benchmark suite and write the schema'd artifact
//	servo-bench -diff latest
//	    re-run the suite and fail (exit 1) when any gated metric regressed
//	    more than -tolerance against the newest checked-in BENCH_*.json
//	    ("latest"), or against an explicit artifact path
//
// -cpuprofile and -memprofile write pprof profiles of whichever mode ran
// (experiments, suite, or diff), for `go tool pprof` drill-downs into
// the hot paths the BENCH numbers summarise.
//
// Scale 1.0 runs the paper's 10-minute measurement windows; the default
// 0.1 gives the same shapes in about a tenth of the wall time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"servo/internal/bench"
	"servo/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "comma-separated experiments to run, or 'all'")
	seed := flag.Int64("seed", 42, "deterministic experiment seed")
	scale := flag.Float64("scale", 0.1, "duration scale (1.0 = paper-length windows)")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	list := flag.Bool("list", false, "list available experiments and exit")
	format := flag.String("format", "", "'json' runs the headline benchmark suite and emits the BENCH artifact")
	out := flag.String("out", "", "with -format json: write the artifact here instead of stdout")
	pr := flag.Int("pr", 0, "with -format json: PR number stamped into the artifact")
	diff := flag.String("diff", "", "re-run the suite and diff against an artifact path, or 'latest' for the newest BENCH_*.json")
	only := flag.String("only", "", "substring filter over suite metric names: run only the matching harnesses (suite and diff modes)")
	tolerance := flag.Float64("tolerance", bench.DefaultTolerance, "relative regression tolerance of -diff")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "servo-bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "servo-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "servo-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "servo-bench:", err)
			}
		}()
	}

	if *list {
		for _, r := range experiment.Runners() {
			fmt.Printf("%-8s %s\n", r.Name, r.Description)
		}
		return 0
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	if *diff != "" {
		return runDiff(*diff, *tolerance, *only, logf)
	}
	if *format != "" {
		if *format != "json" {
			fmt.Fprintf(os.Stderr, "servo-bench: unknown -format %q (want json)\n", *format)
			return 2
		}
		return runSuite(*pr, *out, *only, logf)
	}

	opt := experiment.Options{Seed: *seed, Scale: *scale}
	if *verbose {
		opt.Log = os.Stderr
	}
	if err := experiment.RunByName(*exp, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "servo-bench:", err)
		return 1
	}
	return 0
}

// runSuite records the benchmark artifact.
func runSuite(pr int, out, only string, logf func(string, ...any)) int {
	f, err := bench.Run(pr, only, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "servo-bench:", err)
		return 1
	}
	data, err := f.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, "servo-bench:", err)
		return 1
	}
	if out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "servo-bench:", err)
		return 1
	}
	fmt.Printf("wrote %s (%d metrics)\n", out, len(f.Metrics))
	return 0
}

// runDiff re-runs the suite and gates it against a recorded artifact.
// only narrows the re-measurement to matching metrics; Compare skips
// whatever the filtered run did not record.
func runDiff(ref string, tol float64, only string, logf func(string, ...any)) int {
	if ref == "latest" {
		ref = bench.LatestArtifact(".")
		if ref == "" {
			fmt.Fprintln(os.Stderr, "servo-bench: no BENCH_*.json artifact to diff against")
			return 1
		}
	}
	old, err := bench.ReadFile(ref)
	if err != nil {
		fmt.Fprintln(os.Stderr, "servo-bench:", err)
		return 1
	}
	// A real code regression survives re-measurement; machine noise does
	// not. Retry the suite up to diffAttempts times, merging per-metric
	// bests, and only fail when the regression persists across all of them.
	const diffAttempts = 3
	var cur bench.File
	var regs []bench.Regression
	for attempt := 0; attempt < diffAttempts; attempt++ {
		f, err := bench.Run(old.PR, only, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "servo-bench:", err)
			return 1
		}
		if attempt == 0 {
			cur = f
		} else {
			cur = bench.Best(cur, f)
		}
		regs = bench.Compare(old, cur, tol)
		if len(regs) == 0 {
			break
		}
		if attempt < diffAttempts-1 {
			fmt.Printf("benchdiff: %d gated metrics over tolerance, re-measuring (%d/%d)\n", len(regs), attempt+2, diffAttempts)
		}
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION  %s\n", r)
	}
	gated := 0
	for _, m := range old.Metrics {
		if m.Gate {
			gated++
		}
	}
	if len(regs) > 0 {
		fmt.Printf("benchdiff: %d of %d gated metrics regressed >%.0f%% vs %s\n", len(regs), gated, tol*100, ref)
		return 1
	}
	fmt.Printf("benchdiff: %d gated metrics within %.0f%% of %s\n", gated, tol*100, ref)
	return 0
}
