package sim

import (
	"math/rand"
	"sync"
	"time"
)

// RealClock drives the same Clock interface from the wall clock. Callbacks
// run on background timers; a mutex serialises access to the random source
// so that game code written for the single-threaded virtual Loop stays
// race-free when run in real time.
type RealClock struct {
	epoch time.Time

	mu  sync.Mutex
	rng *rand.Rand

	wg      sync.WaitGroup
	quit    chan struct{}
	quitErr sync.Once
}

var _ Clock = (*RealClock)(nil)

// NewRealClock returns a wall-clock-backed Clock whose epoch is the moment
// of the call.
func NewRealClock(seed int64) *RealClock {
	return &RealClock{
		epoch: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		quit:  make(chan struct{}),
	}
}

// Now returns the wall-clock duration since the clock's epoch.
func (c *RealClock) Now() Time { return time.Since(c.epoch) }

// RNG returns the shared random source. Callers must hold no other locks;
// the source itself is protected by the clock's internal mutex only for the
// duration of each scheduled callback, so concurrent external use requires
// the caller's own synchronisation.
func (c *RealClock) RNG() *rand.Rand { return c.rng }

// Lock acquires the clock's callback mutex. Exported so that transports
// delivering external input (e.g. network messages) can serialise with
// scheduled callbacks.
func (c *RealClock) Lock() { c.mu.Lock() }

// Unlock releases the callback mutex.
func (c *RealClock) Unlock() { c.mu.Unlock() }

// After runs fn on a background timer d from now. Callbacks are serialised
// with each other and with external input delivered under Lock/Unlock.
func (c *RealClock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	t := time.NewTimer(d)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case <-t.C:
			c.mu.Lock()
			defer c.mu.Unlock()
			select {
			case <-c.quit:
				return
			default:
			}
			fn()
		case <-c.quit:
			t.Stop()
		}
	}()
}

// Close stops delivering callbacks and waits for in-flight timers to drain.
func (c *RealClock) Close() {
	c.quitErr.Do(func() { close(c.quit) })
	c.wg.Wait()
}
