// Tests for the incremental terrain-demand scan (the per-player demand
// cursor) and tick re-phase-locking. The incremental scan must be
// observationally identical to the full rescan: same requests, same
// known sets, same send queues, in the same order — Config.
// FullDemandRescan keeps the baseline alive as the cross-check.

package mve

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"servo/internal/sim"
	"servo/internal/world"
)

// demandSignature serialises everything the demand scan can observably
// affect: counters, per-player chunk knowledge and pending send queues
// (in queue order), the in-flight request set, and the loaded-chunk set.
func demandSignature(s *Server) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tick=%d sent=%d applied=%d loaded=%d\n",
		s.Tick(), s.ChunksSent.Value(), s.ChunksApplied.Value(), s.World().LoadedCount())
	for _, id := range s.playerOrder {
		p := s.players[id]
		known := make([]world.ChunkPos, 0, len(p.known))
		for cp := range p.known {
			known = append(known, cp)
		}
		sort.Slice(known, func(i, j int) bool {
			if known[i].X != known[j].X {
				return known[i].X < known[j].X
			}
			return known[i].Z < known[j].Z
		})
		fmt.Fprintf(&b, "p%d recv=%d known=%v queue=%v\n",
			p.ID, p.ChunksReceived, known, p.sendQueue[p.sendHead:])
	}
	requested := make([]world.ChunkPos, 0, len(s.requested))
	for cp := range s.requested {
		requested = append(requested, cp)
	}
	sort.Slice(requested, func(i, j int) bool {
		if requested[i].X != requested[j].X {
			return requested[i].X < requested[j].X
		}
		return requested[i].Z < requested[j].Z
	})
	fmt.Fprintf(&b, "requested=%v\n", requested)
	return b.String()
}

// walker returns a deterministic behavior that strides outward, crossing
// chunk boundaries regularly so demand cursors keep dirtying.
func walker(stride float64) Behavior {
	return BehaviorFunc(func(r *rand.Rand, p *Player, s *Server) []Action {
		if s.Tick()%25 != 1 {
			return nil
		}
		leg := float64(s.Tick() / 25)
		return []Action{MoveTo(p.X+stride, p.Z+stride*leg/4, 8)}
	})
}

// driveDemandRun runs one server through the shared script — walking
// players, a mid-run view-distance change, and a handoff-displaced
// player — collecting a signature each scan period.
func driveDemandRun(full bool) (sigs []string, recomputes int64) {
	loop := sim.NewLoop(11)
	s := NewServer(loop, Config{
		Profile:          ProfileOpencraft,
		WorldType:        "flat",
		Seed:             11,
		ViewDistance:     48,
		FullDemandRescan: full,
	})
	s.Connect("strider", walker(6))
	s.Connect("camper", nil) // never moves: stays clean after its first scan
	s.Connect("drifter", walker(3))
	s.Start()

	// Mid-run view-distance growth: every cursor must invalidate and the
	// wider rects must stream in identically.
	loop.After(4*time.Second, func() { s.SetViewDistance(64) })
	// Handoff displacement: evict a session and re-admit it far away
	// (the cluster's cross-shard handoff path), where no terrain is
	// loaded yet.
	loop.After(6*time.Second, func() {
		snap, ok := s.EvictPlayer(s.playerOrder[0])
		if !ok {
			panic("evict failed")
		}
		snap.X, snap.Z = 400, -300
		snap.DestX, snap.DestZ = 400, -300
		s.AdmitPlayer(snap)
	})

	for loop.Now() < 10*time.Second {
		loop.RunUntil(loop.Now() + scanPeriodDuration(s))
		sigs = append(sigs, demandSignature(s))
	}
	return sigs, s.TerrainRecomputes.Value()
}

func scanPeriodDuration(s *Server) time.Duration {
	return time.Duration(terrainScanPeriod) * s.cfg.TickInterval
}

func TestIncrementalDemandMatchesFullRescan(t *testing.T) {
	incSigs, incRecomputes := driveDemandRun(false)
	fullSigs, fullRecomputes := driveDemandRun(true)
	if len(incSigs) != len(fullSigs) {
		t.Fatalf("checkpoint counts diverge: inc %d, full %d", len(incSigs), len(fullSigs))
	}
	for i := range incSigs {
		if incSigs[i] != fullSigs[i] {
			t.Fatalf("streams diverge at checkpoint %d:\nincremental:\n%s\nfull rescan:\n%s",
				i, incSigs[i], fullSigs[i])
		}
	}
	if incRecomputes == 0 {
		t.Fatal("incremental run recorded no TerrainRecomputes — cursors never dirtied")
	}
	if incRecomputes >= fullRecomputes {
		t.Fatalf("incremental scan recomputed %d rects, full rescan %d — no work was skipped",
			incRecomputes, fullRecomputes)
	}
}

// TestIncrementalDemandSteadyStateSkips pins the point of the cursor: a
// stationary fleet stops recomputing entirely after its first scan.
func TestIncrementalDemandSteadyStateSkips(t *testing.T) {
	loop := sim.NewLoop(3)
	s := NewServer(loop, Config{Profile: ProfileOpencraft, WorldType: "flat", ViewDistance: 48})
	for i := 0; i < 5; i++ {
		s.ConnectAt(fmt.Sprintf("idle%d", i), nil, float64(i*20), float64(i*10))
	}
	s.Start()
	runFor(loop, time.Second)
	warm := s.TerrainRecomputes.Value()
	if warm < 5 {
		t.Fatalf("first scans recomputed %d rects, want >= 5", warm)
	}
	runFor(loop, 4*time.Second)
	if got := s.TerrainRecomputes.Value(); got != warm {
		t.Fatalf("stationary players kept recomputing: %d -> %d", warm, got)
	}
}

// TestPhaseLockRealignsOverlongTicks checks the re-phase-locking
// arithmetic: with a modelled tick cost above the tick interval, a
// phase-locked server keeps every tick on the global TickInterval grid,
// while the default drifts off-phase after the first overrun.
func TestPhaseLockRealignsOverlongTicks(t *testing.T) {
	overloaded := CostParams{TickBase: 70 * time.Millisecond} // > 50 ms interval, no noise
	run := func(phaseLock bool) []time.Duration {
		loop := sim.NewLoop(1)
		s := NewServer(loop, Config{
			Profile:   ProfileOpencraft,
			WorldType: "flat",
			Cost:      &overloaded,
			PhaseLock: phaseLock,
		})
		s.Start()
		runFor(loop, 2*time.Second)
		times, _ := s.TickSeries.Points()
		return times
	}

	locked := run(true)
	if len(locked) == 0 {
		t.Fatal("phase-locked server never ticked")
	}
	for i, at := range locked {
		if at%DefaultTickInterval != 0 {
			t.Fatalf("phase-locked tick %d at %v is off the %v grid", i, at, DefaultTickInterval)
		}
	}

	free := run(false)
	off := 0
	for _, at := range free {
		if at%DefaultTickInterval != 0 {
			off++
		}
	}
	if off == 0 {
		t.Fatal("unlocked overloaded server stayed on-grid — the overload fixture is not overlong")
	}
}
