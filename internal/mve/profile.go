// Package mve implements the modifiable-virtual-environment game server
// substrate: the 20 Hz game loop, player sessions and avatars, action
// processing, terrain loading/generating/sending, simulated-construct
// backends, and the calibrated cost model that converts the work a tick
// performs into a tick duration (paper §II-A's operational model).
//
// Three server profiles reproduce the systems the paper compares:
//
//   - Opencraft: the open-source baseline. Simulated constructs run
//     locally every other tick; terrain generates on a local worker pool
//     that interferes with the game loop; state persists to local disk.
//   - Minecraft: the commercial baseline, with a different cost profile
//     (cheaper per-construct updates but steeper growth with construct
//     density, and higher per-player cost).
//   - Servo: Opencraft plus the serverless backend (speculative SC
//     offloading, FaaS terrain generation, cached remote storage) from
//     internal/servo wired in through the backend interfaces.
package mve

import (
	"time"
)

// Profile selects a server cost/behaviour profile.
type Profile int

// Profiles under comparison (paper Fig. 1, Fig. 7).
const (
	ProfileOpencraft Profile = iota + 1
	ProfileMinecraft
	ProfileServo
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case ProfileOpencraft:
		return "Opencraft"
	case ProfileMinecraft:
		return "Minecraft"
	case ProfileServo:
		return "Servo"
	}
	return "unknown"
}

// CostParams converts per-tick work items into time. The server performs
// the work items for real (circuit steps, chunk generation, block writes);
// these constants translate counted work into virtual tick duration,
// standing in for the paper's DAS-5 hardware. Each constant is calibrated
// against an anchor from the paper's figures (see DESIGN.md §8 and the
// per-field comments).
type CostParams struct {
	// TickBase is the fixed cost of an empty tick.
	TickBase time.Duration
	// PerPlayer is charged per connected player per tick (entity update,
	// interest management, outbound state deltas). Anchor: Fig. 7a at 0
	// SCs — Opencraft sustains 200 players, Minecraft 110.
	PerPlayer time.Duration
	// PerAction is charged per processed player action.
	PerAction time.Duration
	// SCWorkNs is charged per simulated-construct work unit executed on
	// the game loop (local simulation or speculative-state application;
	// the work units themselves are counted by the circuit engine).
	// Anchor: Fig. 7a — Opencraft's player ceiling collapses from 200 to
	// 10 between 0 and 100 SCs.
	SCWorkNs time.Duration
	// SCDensityCubeNs models superlinear growth of construct maintenance
	// with construct count (shared update queues, cascade interactions):
	// charged as count³ × SCDensityCubeNs nanoseconds on each SC tick.
	// Anchor: Fig. 7a — Minecraft holds 90 players at 100 SCs yet 0 at
	// 200.
	SCDensityCubeNs float64
	// SCEveryOtherTick mirrors the baselines' implementation, which the
	// paper observes simulates constructs every other tick, producing
	// bimodal tick distributions (Fig. 7b).
	SCEveryOtherTick bool
	// ServoPerSC is Servo's per-construct per-tick management overhead
	// (speculation bookkeeping). Anchor: Fig. 7a — Servo holds 120
	// players at 200 SCs but 190 at 0.
	ServoPerSC time.Duration
	// ChunkApply is charged per generated/loaded chunk integrated into
	// the world on the game loop ("the overhead of loading the content in
	// the game causes overhead", §IV-D).
	ChunkApply time.Duration
	// ChunkSend is charged per chunk serialised to one client.
	ChunkSend time.Duration
	// GenInterferencePerWorker is charged per busy local-generation
	// worker per tick: the performance-isolation failure of §II-A that
	// serverless generation removes.
	GenInterferencePerWorker time.Duration
	// GenQueuePressure is charged per queued local-generation request
	// (capped) per tick: bookkeeping and memory pressure of a backlog.
	GenQueuePressure time.Duration
	// NoiseSigma is the lognormal sigma of multiplicative tick noise
	// (scheduling, JIT, allocator variance).
	NoiseSigma float64
	// TailP and TailScale model rare stop-the-world events (GC): with
	// probability TailP + players×TailPPerPlayer, a tick is stretched by
	// a uniform factor in [1, TailScale].
	TailP          float64
	TailPPerPlayer float64
	TailScale      float64
}

// Params returns the calibrated cost parameters for a profile.
func Params(p Profile) CostParams {
	base := CostParams{
		TickBase:                 1200 * time.Microsecond,
		PerPlayer:                196 * time.Microsecond,
		PerAction:                18 * time.Microsecond,
		SCWorkNs:                 620 * time.Nanosecond,
		SCDensityCubeNs:          0,
		SCEveryOtherTick:         true,
		ChunkApply:               8000 * time.Microsecond,
		ChunkSend:                110 * time.Microsecond,
		GenInterferencePerWorker: 2200 * time.Microsecond,
		GenQueuePressure:         24 * time.Microsecond,
		NoiseSigma:               0.09,
		TailP:                    0.0015,
		TailPPerPlayer:           0.00002,
		TailScale:                4.0,
	}
	switch p {
	case ProfileMinecraft:
		mc := base
		// Minecraft's per-player path is heavier (anchor: 110 players at
		// 0 SCs vs Opencraft's 200)...
		mc.PerPlayer = 370 * time.Microsecond
		// ...but its redstone engine is much cheaper per construct
		// (anchor: 90 players at 100 SCs)...
		mc.SCWorkNs = 50 * time.Nanosecond
		// ...until construct density makes update cascades explode
		// (anchor: 0 players at 200 SCs).
		mc.SCDensityCubeNs = 5.2 // ns × count³ per SC tick
		return mc
	case ProfileServo:
		sv := base
		sv.SCEveryOtherTick = false // speculation applies every tick
		// Servo pays slightly more per player than Opencraft (anchor:
		// 190 vs 200 players at 0 SCs).
		sv.PerPlayer = 212 * time.Microsecond
		sv.ServoPerSC = 47 * time.Microsecond
		return sv
	default:
		return base
	}
}
