// Tile-border proximity: which foreign tiles an avatar standing at a
// block position can reach within a margin, and how far away the nearest
// one is. This is the geometric half of cross-shard visibility — an
// avatar within view distance of a tile border can see terrain (and
// should see avatars) hosted by the border tile's owner, so the cluster
// replicates it there as a ghost. With the margin at most one tile side
// the reported tiles are exactly the home tile's Topology.Neighbors ring
// (plus the diagonal corners a view square can clip); a larger margin —
// or smaller tiles — reaches further rings, and every intersected tile
// is reported, so visibility never silently stops one ring out.

package world

// BorderNeighbor is one foreign tile within reach of a position.
type BorderNeighbor struct {
	Tile TileID
	// Dist is the Chebyshev distance in blocks from the position to the
	// nearest block of the tile (1 = standing flush against the border).
	Dist int
}

// BordersWithin returns every foreign tile whose territory comes within
// margin blocks (Chebyshev) of pos, nearest-block distance included.
// Tiles are unions of whole chunks, so the scan enumerates
// ChunksWithin(pos, margin) in its deterministic order, folding each
// tile to its minimum distance (a wrapping torus reaches the same tile
// from several sides). It never touches topology internals — any
// Topology works.
func BordersWithin(topo Topology, pos BlockPos, margin int) []BorderNeighbor {
	return BordersWithinAppend(nil, topo, pos, margin)
}

// BordersWithinAppend is BordersWithin appending into dst (first-seen
// order preserved); callers that reuse dst across calls run the scan
// allocation-free. The fold deduplicates by linear search over the
// appended suffix — the foreign-tile set a view square clips is a
// handful of entries, far below map break-even.
func BordersWithinAppend(dst []BorderNeighbor, topo Topology, pos BlockPos, margin int) []BorderNeighbor {
	if topo == nil || margin < 0 {
		return dst
	}
	home := topo.TileOf(pos.Chunk())
	base := len(dst)
	r := ChunkRectWithin(pos, margin)
	for cx := r.Min.X; cx <= r.Max.X; cx++ {
		for cz := r.Min.Z; cz <= r.Max.Z; cz++ {
			cp := ChunkPos{X: cx, Z: cz}
			t := topo.TileOf(cp)
			if t == home {
				continue
			}
			dist := cp.DistanceBlocks(pos)
			found := false
			for i := base; i < len(dst); i++ {
				if dst[i].Tile == t {
					if dist < dst[i].Dist {
						dst[i].Dist = dist
					}
					found = true
					break
				}
			}
			if !found {
				dst = append(dst, BorderNeighbor{Tile: t, Dist: dist})
			}
		}
	}
	return dst
}

// BorderDistance returns the Chebyshev distance in blocks from pos to
// the nearest block lying in a different tile, or max+1 when no foreign
// tile is within max blocks (including topologies with a single tile,
// where no border exists at all). It allocates nothing.
func BorderDistance(topo Topology, pos BlockPos, max int) int {
	best := max + 1
	if topo == nil || max < 0 {
		return best
	}
	home := topo.TileOf(pos.Chunk())
	r := ChunkRectWithin(pos, max)
	for cx := r.Min.X; cx <= r.Max.X; cx++ {
		for cz := r.Min.Z; cz <= r.Max.Z; cz++ {
			cp := ChunkPos{X: cx, Z: cz}
			if topo.TileOf(cp) == home {
				continue
			}
			if d := cp.DistanceBlocks(pos); d < best {
				best = d
			}
		}
	}
	return best
}
