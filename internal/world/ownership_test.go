package world

import (
	"math/rand"
	"testing"
)

func TestOwnershipDefaultsMatchTopology(t *testing.T) {
	for _, topo := range []Topology{
		BandTopology{BandChunks: 4},
		GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4},
	} {
		tab := NewOwnershipTable(3, topo)
		for x := -40; x <= 40; x += 3 {
			for z := -40; z <= 40; z += 5 {
				cp := ChunkPos{X: x, Z: z}
				if got, want := tab.ShardOf(cp), DefaultOwner(topo, 3, topo.TileOf(cp)); got != want {
					t.Fatalf("%v: fresh table disagrees with topology at %v: %d vs %d", topo, cp, got, want)
				}
			}
		}
		if tab.Epoch() != 0 {
			t.Fatalf("fresh table epoch = %d, want 0", tab.Epoch())
		}
	}
}

func TestOwnershipSetOwnerBumpsEpoch(t *testing.T) {
	tab := NewOwnershipTable(2, BandTopology{BandChunks: 4})
	tile := TileID{X: 2}
	if !tab.SetOwner(tile, 1) {
		t.Fatal("SetOwner(tile 2, 1) refused")
	}
	if tab.Epoch() != 1 {
		t.Fatalf("epoch = %d after one migration, want 1", tab.Epoch())
	}
	if got := tab.Owner(tile); got != 1 {
		t.Fatalf("tile 2 owner = %d, want 1", got)
	}
	// No-op: already owned by 1.
	if tab.SetOwner(tile, 1) {
		t.Fatal("re-assigning to the current owner must be a no-op")
	}
	if tab.Epoch() != 1 {
		t.Fatalf("no-op bumped the epoch to %d", tab.Epoch())
	}
	// Back to the default assignment drops the override.
	if !tab.SetOwner(tile, 0) {
		t.Fatal("migrating back refused")
	}
	if len(tab.Overrides()) != 0 {
		t.Fatalf("override not dropped on return to default: %v", tab.Overrides())
	}
	if tab.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", tab.Epoch())
	}
}

// TestOwnershipDeadShardReroutesDeterministically pins the failover
// reassignment across topologies: every tile of a dead shard resolves to
// some survivor, identically on every evaluation (no hidden state), and
// revival reverts the reroute exactly.
func TestOwnershipDeadShardReroutesDeterministically(t *testing.T) {
	topos := []Topology{
		BandTopology{BandChunks: 4},
		GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4},
		GridTopology{TilesX: 3, TilesZ: 5, TileChunks: 2},
	}
	for _, topo := range topos {
		tab := NewOwnershipTable(3, topo)
		if !tab.SetDead(1, true) {
			t.Fatalf("%v: SetDead refused", topo)
		}
		// A second table with the same kill must agree on every tile: the
		// reroute is a pure function of (topology, liveness), so every
		// shard resolves ownership identically without coordination.
		tab2 := NewOwnershipTable(3, topo)
		tab2.SetDead(1, true)
		probe := func(tile TileID) {
			o := tab.Owner(tile)
			if o == 1 {
				t.Fatalf("%v: tile %v still routed to the dead shard", topo, tile)
			}
			if o != tab.Owner(tile) || o != tab2.Owner(tile) {
				t.Fatalf("%v: tile %v reroute is unstable", topo, tile)
			}
		}
		if n := topo.Tiles(); n > 0 {
			for i := 0; i < n; i++ {
				probe(topo.TileAt(i))
			}
		} else {
			for b := -20; b <= 20; b++ {
				probe(TileID{X: b})
			}
		}
		// Revival reverts the reroute exactly.
		if !tab.SetDead(1, false) {
			t.Fatalf("%v: revive refused", topo)
		}
		for x := -40; x <= 40; x += 3 {
			cp := ChunkPos{X: x, Z: -x}
			if got, want := tab.ShardOf(cp), DefaultOwner(topo, 3, topo.TileOf(cp)); got != want {
				t.Fatalf("%v: post-revival ownership differs at %v: %d vs %d", topo, cp, got, want)
			}
		}
	}
}

// TestOwnershipCanonicalisesTileAliases is the phantom-override
// regression: a caller-supplied out-of-range grid tile (or an off-axis
// band tile) must resolve to the same override slot the routing lookups
// key on, never to a shadow entry that bumps the epoch without changing
// any chunk's owner.
func TestOwnershipCanonicalisesTileAliases(t *testing.T) {
	tab := NewOwnershipTable(4, GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4})
	alias := TileID{X: 5, Z: -4} // canonical form: (1, 0)
	if got := tab.Canon(alias); got != (TileID{X: 1, Z: 0}) {
		t.Fatalf("Canon(%v) = %v, want tile(1,0)", alias, got)
	}
	if !tab.SetOwner(alias, 3) {
		t.Fatal("SetOwner via alias refused")
	}
	// The migration is visible through the canonical key and through the
	// chunk lookup, not parked under a phantom entry.
	if got := tab.Owner(TileID{X: 1, Z: 0}); got != 3 {
		t.Fatalf("canonical tile owner = %d, want 3", got)
	}
	if got := tab.ShardOf(ChunkPos{X: 5, Z: 1}); got != 3 { // chunk in tile (1,0)
		t.Fatalf("chunk in the migrated tile routed to %d, want 3", got)
	}
	if ov := tab.Overrides(); len(ov) != 1 || ov[0].Tile != (TileID{X: 1, Z: 0}) {
		t.Fatalf("override stored under a non-canonical key: %v", ov)
	}
	// Re-assigning through another alias of the same tile is a no-op.
	if tab.SetOwner(TileID{X: -3, Z: 4}, 3) {
		t.Fatal("aliased re-assignment must be a no-op")
	}
	// Bands collapse the Z coordinate.
	band := NewOwnershipTable(2, BandTopology{BandChunks: 4})
	band.SetOwner(TileID{X: 2, Z: 7}, 1)
	if got := band.Owner(TileID{X: 2}); got != 1 {
		t.Fatalf("band tile owner = %d, want 1", got)
	}
}

func TestOwnershipRefusesKillingLastShard(t *testing.T) {
	tab := NewOwnershipTable(2, nil)
	if !tab.SetDead(0, true) {
		t.Fatal("first kill refused")
	}
	if tab.SetDead(1, true) {
		t.Fatal("killing the last alive shard must be refused")
	}
	if tab.SetOwner(TileID{X: 3}, 0) {
		t.Fatal("migrating a tile to a dead shard must be refused")
	}
}

// TestOwnershipEncodeDecodeRoundTripProperty drives random topologies,
// migrations, and kills through the codec: every decoded table must
// reproduce the source's epoch, overrides, and per-tile owners exactly,
// and liveness must never survive the encoding.
func TestOwnershipEncodeDecodeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		var topo Topology
		if rng.Intn(2) == 0 {
			topo = BandTopology{BandChunks: 1 + rng.Intn(12)}
		} else {
			topo = GridTopology{
				TilesX:     1 + rng.Intn(6),
				TilesZ:     1 + rng.Intn(6),
				TileChunks: 1 + rng.Intn(8),
			}
		}
		shards := 2 + rng.Intn(5)
		tab := NewOwnershipTable(shards, topo)
		randomTile := func() TileID {
			if n := topo.Tiles(); n > 0 {
				return topo.TileAt(rng.Intn(n))
			}
			return TileID{X: rng.Intn(41) - 20}
		}
		for i := rng.Intn(10); i > 0; i-- {
			tab.SetOwner(randomTile(), rng.Intn(shards))
		}
		if rng.Intn(3) == 0 {
			tab.SetDead(rng.Intn(shards), true) // must not be encoded
		}

		dec, err := DecodeOwnershipTable(tab.Encode())
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, topo, err)
		}
		if dec.Epoch() != tab.Epoch() || dec.Shards() != tab.Shards() {
			t.Fatalf("trial %d: epoch/shards changed: %d/%d vs %d/%d",
				trial, dec.Epoch(), dec.Shards(), tab.Epoch(), tab.Shards())
		}
		if dec.Topology().Spec() != topo.Spec() {
			t.Fatalf("trial %d: topology changed: %+v vs %+v", trial, dec.Topology().Spec(), topo.Spec())
		}
		if got, want := len(dec.Overrides()), len(tab.Overrides()); got != want {
			t.Fatalf("trial %d: override count %d vs %d", trial, got, want)
		}
		for s := 0; s < shards; s++ {
			if !dec.Alive(s) {
				t.Fatalf("trial %d: liveness leaked through the encoding", trial)
			}
		}
		// Owners agree tile by tile — compare with liveness cleared on the
		// source, since the reroute is runtime state.
		for s := 0; s < shards; s++ {
			tab.SetDead(s, false)
		}
		for probe := 0; probe < 32; probe++ {
			tile := randomTile()
			if dec.Owner(tile) != tab.Owner(tile) {
				t.Fatalf("trial %d: tile %v owner %d vs %d", trial, tile, dec.Owner(tile), tab.Owner(tile))
			}
		}
	}
	if _, err := DecodeOwnershipTable([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}

// TestOwnershipAdoptEpochSkew pins the restart contract: a persisted
// table is adopted only when strictly newer and geometrically identical,
// so a stale or foreign snapshot can never roll live ownership back.
func TestOwnershipAdoptEpochSkew(t *testing.T) {
	topo := GridTopology{TilesX: 4, TilesZ: 4}
	old := NewOwnershipTable(4, topo)
	old.SetOwner(TileID{X: 1, Z: 0}, 3) // epoch 1

	live := NewOwnershipTable(4, topo)
	live.SetOwner(TileID{X: 2, Z: 2}, 0)
	live.SetOwner(TileID{X: 2, Z: 2}, 1) // epoch 2: ahead of the snapshot

	if live.Adopt(old) {
		t.Fatal("Adopt accepted a stale (older-epoch) table")
	}
	if live.Owner(TileID{X: 1, Z: 0}) == 3 {
		t.Fatal("stale adoption leaked an override")
	}
	// Equal epochs are also refused (no change to adopt).
	same, _ := DecodeOwnershipTable(live.Encode())
	if live.Adopt(same) {
		t.Fatal("Adopt accepted an equal-epoch table")
	}
	// A strictly newer snapshot wins and replaces the override set.
	newer := NewOwnershipTable(4, topo)
	for i := 0; i < 3; i++ {
		newer.SetOwner(TileID{X: 3, Z: 3}, i) // epoch 3
	}
	if !live.Adopt(newer) {
		t.Fatal("Adopt refused a newer matching table")
	}
	if live.Epoch() != newer.Epoch() || live.Owner(TileID{X: 3, Z: 3}) != 2 {
		t.Fatal("Adopt did not carry the newer overrides/epoch")
	}
	if live.Owner(TileID{X: 2, Z: 2}) == 1 {
		t.Fatal("Adopt kept a replaced override")
	}
	// Mismatched geometry is never adopted, whatever the epoch.
	foreign := NewOwnershipTable(4, GridTopology{TilesX: 2, TilesZ: 8})
	for i := 0; i < 8; i++ {
		foreign.SetOwner(TileID{X: 0, Z: i%2 + 1}, i%4)
	}
	if live.Adopt(foreign) {
		t.Fatal("Adopt accepted a table with different geometry")
	}
	bandTab := NewOwnershipTable(4, nil)
	bandTab.epoch = 99
	if live.Adopt(bandTab) {
		t.Fatal("Adopt accepted a table with a different topology kind")
	}
}

func TestOwnershipDecodeLegacyBandLayout(t *testing.T) {
	// A PR 3 cluster persisted band tables under the "SVOT" magic; a
	// restarted band cluster must still resume that history.
	legacy := NewOwnershipTable(4, BandTopology{BandChunks: 8})
	legacy.SetOwner(TileID{X: -3}, 2)
	legacy.SetOwner(TileID{X: 5}, 0)
	dec, err := DecodeOwnershipTable(encodeLegacyV1(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch() != legacy.Epoch() || dec.Owner(TileID{X: -3}) != 2 || dec.Owner(TileID{X: 5}) != 0 {
		t.Fatal("legacy decode lost state")
	}
	live := NewOwnershipTable(4, BandTopology{BandChunks: 8})
	if !live.Adopt(dec) {
		t.Fatal("a live band table refused the legacy snapshot")
	}
}

// encodeLegacyV1 renders the PR 3 wire layout for the legacy-decode test.
func encodeLegacyV1(t *OwnershipTable) []byte {
	ov := t.Overrides()
	out := make([]byte, 0, 24+8*len(ov))
	le := func(v uint32) { out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
	le(ownershipMagicV1)
	le(uint32(t.Shards()))
	le(uint32(t.Topology().Spec().TileChunks))
	le(uint32(t.Epoch()))
	le(uint32(t.Epoch() >> 32))
	le(uint32(len(ov)))
	for _, e := range ov {
		le(uint32(int32(e.Tile.X)))
		le(uint32(int32(e.Owner)))
	}
	return out
}

func TestRegionViewFollowsLiveTable(t *testing.T) {
	tab := NewOwnershipTable(2, BandTopology{BandChunks: 4})
	r0, r1 := tab.View(0), tab.View(1)
	cp := ChunkPos{X: 9} // tile 2, default owner shard 0
	if !r0.Contains(cp) || r1.Contains(cp) {
		t.Fatal("initial ownership wrong")
	}
	tab.SetOwner(TileID{X: 2}, 1)
	if r0.Contains(cp) || !r1.Contains(cp) {
		t.Fatal("region views did not follow the migration")
	}
}
