// Dynamic region ownership: the control-plane state behind elastic
// sharding. A static topology assignment freezes tile → shard ownership
// into the split computed at boot; an OwnershipTable turns that
// assignment into runtime state — tile → owning shard, versioned by an
// epoch counter — so a cluster controller can migrate tiles between
// shards (live rebalancing) and reroute a failed shard's tiles to
// survivors (failover) without rebuilding servers. Shard regions hold a
// pointer to the shared table (Region.Table), so ownership-gated chunk
// persistence consults the live assignment on every lookup.

package world

import (
	"encoding/binary"
	"errors"
	"sort"
)

// OwnershipTable maps region tiles to owning shards at runtime. The
// default assignment is DefaultOwner over the topology (the band
// interleave, or a grid's contiguous space-filling runs); overrides
// record tiles migrated away from their default owner, and dead shards
// have their tiles rerouted deterministically across the survivors.
// Every ownership change bumps the epoch, so observers can detect that
// routing state moved underneath them.
//
// The table is not safe for concurrent use; the virtual clock serialises
// all access, like the rest of the simulation.
type OwnershipTable struct {
	topo   Topology
	shards int
	// base is the boot-time shard count, frozen at construction: the
	// default assignment always splits tiles over base shards, so growing
	// the table (autoscaling) never reshuffles defaults. Shards added by
	// Grow own nothing by default and gain tiles only through overrides.
	base  int
	epoch uint64
	// overrides are tiles migrated away from the default assignment.
	overrides map[TileID]int
	// dead marks shards whose loops were killed; their tiles reroute to
	// the surviving shards until they recover.
	dead map[int]bool
	// retired marks shards drained and removed by the autoscaler. Like
	// dead shards their tiles reroute to survivors, but retirement is
	// deliberate: a retired slot is only revived by Grow reusing it.
	retired map[int]bool
}

// NewOwnershipTable returns a table splitting topo over the given shard
// count with the default assignment, every shard alive, at epoch 0. A
// nil topo means the default band topology.
func NewOwnershipTable(shards int, topo Topology) *OwnershipTable {
	if shards < 1 {
		shards = 1
	}
	if topo == nil {
		topo = BandTopology{}
	}
	return &OwnershipTable{
		topo:      topo,
		shards:    shards,
		base:      shards,
		overrides: make(map[TileID]int),
		dead:      make(map[int]bool),
		retired:   make(map[int]bool),
	}
}

// Topology returns the table's static tiling; ownership itself lives in
// the table.
func (t *OwnershipTable) Topology() Topology { return t.topo }

// Shards returns the shard count, including dead and retired slots.
func (t *OwnershipTable) Shards() int { return t.shards }

// Base returns the boot-time shard count the default assignment splits
// tiles over; Grow never changes it.
func (t *OwnershipTable) Base() int { return t.base }

// Epoch returns the current ownership epoch: it increases on every
// migration, failover, and recovery.
func (t *OwnershipTable) Epoch() uint64 { return t.epoch }

// TileOf returns the tile containing the chunk column.
func (t *OwnershipTable) TileOf(cp ChunkPos) TileID { return t.topo.TileOf(cp) }

// Canon returns the canonical spelling of a tile reference: the one
// TileOf produces. On a grid, out-of-range coordinates wrap onto the
// tile torus; on bands, the Z coordinate collapses to 0. Owner and
// SetOwner canonicalise through this, so a caller-supplied alias can
// never create a phantom override the routing lookups would miss.
func (t *OwnershipTable) Canon(tile TileID) TileID {
	return t.topo.TileAt(t.topo.Index(tile))
}

// TileOfBlock returns the tile containing the block position.
func (t *OwnershipTable) TileOfBlock(b BlockPos) TileID { return t.topo.TileOf(b.Chunk()) }

// Owner returns the shard currently owning the tile: the override if one
// exists, else the topology default — rerouted deterministically over
// the surviving shards when the assigned owner is dead, so every
// observer agrees on the reassignment without coordination.
func (t *OwnershipTable) Owner(tile TileID) int {
	tile = t.Canon(tile)
	o, ok := t.overrides[tile]
	if !ok {
		o = DefaultOwner(t.topo, t.base, tile)
	}
	if t.dead[o] || t.retired[o] {
		alive := t.AliveShards()
		if len(alive) > 0 {
			o = alive[floorMod(t.topo.Index(tile), len(alive))]
		}
	}
	return o
}

// ShardOf returns the shard owning the chunk column.
func (t *OwnershipTable) ShardOf(cp ChunkPos) int { return t.Owner(t.topo.TileOf(cp)) }

// ShardOfBlock returns the shard owning the block position.
func (t *OwnershipTable) ShardOfBlock(b BlockPos) int { return t.ShardOf(b.Chunk()) }

// SetOwner migrates a tile to the given shard, bumping the epoch. It
// refuses dead or out-of-range targets and is a no-op (no epoch bump)
// when the tile's effective owner already is the target.
func (t *OwnershipTable) SetOwner(tile TileID, shard int) bool {
	tile = t.Canon(tile)
	if shard < 0 || shard >= t.shards || t.dead[shard] || t.retired[shard] {
		return false
	}
	if t.Owner(tile) == shard {
		return false
	}
	if DefaultOwner(t.topo, t.base, tile) == shard {
		// Back to its default owner: drop the override instead of pinning.
		delete(t.overrides, tile)
	} else {
		t.overrides[tile] = shard
	}
	t.epoch++
	return true
}

// SetDead marks a shard dead (its tiles reroute to survivors) or alive
// again (its tiles revert), bumping the epoch on any change. Killing the
// last alive shard is refused: ownership must always resolve somewhere.
func (t *OwnershipTable) SetDead(shard int, dead bool) bool {
	if shard < 0 || shard >= t.shards || t.dead[shard] == dead || t.retired[shard] {
		return false
	}
	if dead && len(t.AliveShards()) <= 1 {
		return false
	}
	if dead {
		t.dead[shard] = true
	} else {
		delete(t.dead, shard)
	}
	t.epoch++
	return true
}

// Grow admits one more shard slot and returns its index, bumping the
// epoch. A previously retired slot is reused (lowest index first) so a
// scale-down/scale-up cycle does not grow the table without bound;
// otherwise a fresh index is appended. Either way the new shard owns no
// tiles by default — the default assignment stays frozen over Base() —
// and gains territory only through SetOwner overrides.
func (t *OwnershipTable) Grow() int {
	for i := 0; i < t.shards; i++ {
		if t.retired[i] {
			delete(t.retired, i)
			t.epoch++
			return i
		}
	}
	idx := t.shards
	t.shards++
	t.epoch++
	return idx
}

// Retire marks a drained shard as removed: its tiles (there should be
// none left after a drain) reroute to survivors, SetOwner refuses it as
// a target, and its slot becomes reusable by Grow. Retiring a dead,
// out-of-range, or the last alive shard is refused.
func (t *OwnershipTable) Retire(shard int) bool {
	if shard < 0 || shard >= t.shards || t.dead[shard] || t.retired[shard] {
		return false
	}
	if len(t.AliveShards()) <= 1 {
		return false
	}
	t.retired[shard] = true
	t.epoch++
	return true
}

// Retired reports whether the shard slot was drained and removed.
func (t *OwnershipTable) Retired(shard int) bool { return t.retired[shard] }

// Alive reports whether the shard's loop is considered running: neither
// crashed (dead) nor drained away (retired).
func (t *OwnershipTable) Alive(shard int) bool { return !t.dead[shard] && !t.retired[shard] }

// AliveShards returns the alive shard indices in ascending order.
func (t *OwnershipTable) AliveShards() []int {
	out := make([]int, 0, t.shards)
	for i := 0; i < t.shards; i++ {
		if !t.dead[i] && !t.retired[i] {
			out = append(out, i)
		}
	}
	return out
}

// AliveCount returns the number of alive shards.
func (t *OwnershipTable) AliveCount() int { return len(t.AliveShards()) }

// TileOverride is one persisted deviation from the default assignment.
type TileOverride struct {
	Tile  TileID
	Owner int
}

// Overrides returns the migrated tiles in ascending (Z, X) order.
func (t *OwnershipTable) Overrides() []TileOverride {
	out := make([]TileOverride, 0, len(t.overrides))
	for tile, o := range t.overrides {
		out = append(out, TileOverride{Tile: tile, Owner: o})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tile.Z != out[j].Tile.Z {
			return out[i].Tile.Z < out[j].Tile.Z
		}
		return out[i].Tile.X < out[j].Tile.X
	})
	return out
}

// View returns shard i's region backed by this live table: Contains
// lookups follow every later migration and failover.
func (t *OwnershipTable) View(i int) Region {
	return Region{Topo: t.topo, Shards: t.shards, Index: i, Table: t}
}

// Encoding magics, versioning the layout. ownershipMagicV1 is the PR 3
// band-only layout, still decoded so a cluster restarting over a world
// persisted before the tile rekey resumes its ownership history.
const (
	ownershipMagicV1 = uint32(0x53_56_4f_54) // "SVOT"
	ownershipMagicV2 = uint32(0x53_56_4f_32) // "SVO2"
)

// topology kinds on the wire.
const (
	wireKindBand = uint32(0)
	wireKindGrid = uint32(1)
)

// Encode serialises the table (topology geometry, shard count, epoch,
// overrides) for blob-store persistence. Liveness is runtime state, not
// configuration, and is not encoded: a restarted cluster starts with
// every shard alive.
func (t *OwnershipTable) Encode() []byte {
	ov := t.Overrides()
	spec := t.topo.Spec()
	kind := wireKindBand
	if spec.Kind == "grid" {
		kind = wireKindGrid
	}
	out := make([]byte, 0, 36+12*len(ov))
	out = binary.LittleEndian.AppendUint32(out, ownershipMagicV2)
	out = binary.LittleEndian.AppendUint32(out, uint32(t.shards))
	out = binary.LittleEndian.AppendUint32(out, kind)
	out = binary.LittleEndian.AppendUint32(out, uint32(spec.TileChunks))
	out = binary.LittleEndian.AppendUint32(out, uint32(spec.TilesX))
	out = binary.LittleEndian.AppendUint32(out, uint32(spec.TilesZ))
	out = binary.LittleEndian.AppendUint64(out, t.epoch)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ov)))
	for _, e := range ov {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(e.Tile.X)))
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(e.Tile.Z)))
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(e.Owner)))
	}
	return out
}

// errBadOwnershipTable reports a corrupt persisted ownership table.
var errBadOwnershipTable = errors.New("world: bad ownership table")

// DecodeOwnershipTable parses an encoded table (current or PR 3 legacy
// layout).
func DecodeOwnershipTable(data []byte) (*OwnershipTable, error) {
	if len(data) < 4 {
		return nil, errBadOwnershipTable
	}
	switch binary.LittleEndian.Uint32(data) {
	case ownershipMagicV1:
		return decodeOwnershipV1(data)
	case ownershipMagicV2:
		return decodeOwnershipV2(data)
	}
	return nil, errBadOwnershipTable
}

// decodeOwnershipV1 parses the PR 3 band-only layout: shards, band
// width, epoch, (band, owner) overrides.
func decodeOwnershipV1(data []byte) (*OwnershipTable, error) {
	if len(data) < 24 {
		return nil, errBadOwnershipTable
	}
	shards := int(binary.LittleEndian.Uint32(data[4:]))
	bandChunks := int(binary.LittleEndian.Uint32(data[8:]))
	t := NewOwnershipTable(shards, BandTopology{BandChunks: bandChunks})
	t.epoch = binary.LittleEndian.Uint64(data[12:])
	n := int(binary.LittleEndian.Uint32(data[20:]))
	buf := data[24:]
	if len(buf) < 8*n {
		return nil, errBadOwnershipTable
	}
	for i := 0; i < n; i++ {
		band := int(int32(binary.LittleEndian.Uint32(buf)))
		owner := int(int32(binary.LittleEndian.Uint32(buf[4:])))
		if owner < 0 || owner >= t.shards {
			return nil, errBadOwnershipTable
		}
		t.overrides[TileID{X: band}] = owner
		buf = buf[8:]
	}
	return t, nil
}

func decodeOwnershipV2(data []byte) (*OwnershipTable, error) {
	if len(data) < 36 {
		return nil, errBadOwnershipTable
	}
	shards := int(binary.LittleEndian.Uint32(data[4:]))
	spec := TopologySpec{
		TileChunks: int(binary.LittleEndian.Uint32(data[12:])),
		TilesX:     int(binary.LittleEndian.Uint32(data[16:])),
		TilesZ:     int(binary.LittleEndian.Uint32(data[20:])),
	}
	switch binary.LittleEndian.Uint32(data[8:]) {
	case wireKindBand:
		spec.Kind = "band"
	case wireKindGrid:
		spec.Kind = "grid"
	default:
		return nil, errBadOwnershipTable
	}
	topo, err := spec.Build()
	if err != nil {
		return nil, errBadOwnershipTable
	}
	t := NewOwnershipTable(shards, topo)
	t.epoch = binary.LittleEndian.Uint64(data[24:])
	n := int(binary.LittleEndian.Uint32(data[32:]))
	buf := data[36:]
	if len(buf) < 12*n {
		return nil, errBadOwnershipTable
	}
	for i := 0; i < n; i++ {
		tile := TileID{
			X: int(int32(binary.LittleEndian.Uint32(buf))),
			Z: int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		}
		owner := int(int32(binary.LittleEndian.Uint32(buf[8:])))
		if owner < 0 || owner >= t.shards {
			return nil, errBadOwnershipTable
		}
		t.overrides[tile] = owner
		buf = buf[12:]
	}
	return t, nil
}

// Adopt merges a persisted table into this one: overrides and epoch
// carry over when the geometry (topology spec and shard count) matches
// and the persisted epoch is newer (a cluster restarting over an
// existing world resumes its ownership history instead of resetting it).
// Liveness is never adopted. Reports whether anything changed.
func (t *OwnershipTable) Adopt(dec *OwnershipTable) bool {
	if dec == nil || dec.shards != t.shards ||
		dec.topo.Spec() != t.topo.Spec() || dec.epoch <= t.epoch {
		return false
	}
	t.overrides = make(map[TileID]int, len(dec.overrides))
	for tile, o := range dec.overrides {
		t.overrides[tile] = o
	}
	t.epoch = dec.epoch
	return true
}
