package mve

import (
	"testing"

	"servo/internal/sc"
	"servo/internal/sim"
	"servo/internal/world"
)

// TestEvictAdmitRoundTrip moves a session between two servers and checks
// that avatar state survives the transfer.
func TestEvictAdmitRoundTrip(t *testing.T) {
	loop := sim.NewLoop(1)
	a := NewServer(loop, Config{WorldType: "flat", ViewDistance: 32})
	b := NewServer(loop, Config{WorldType: "flat", ViewDistance: 32})

	p := a.ConnectAt("walker", nil, 100, -20)
	p.Inventory = 7
	p.destX, p.destZ, p.speed = 300, -20, 4
	p.ChunksReceived = 42

	snap, ok := a.EvictPlayer(p.ID)
	if !ok {
		t.Fatal("evict failed")
	}
	if a.PlayerCount() != 0 {
		t.Fatalf("source still has %d players", a.PlayerCount())
	}
	if _, ok := a.EvictPlayer(p.ID); ok {
		t.Fatal("double evict must fail")
	}

	q := b.AdmitPlayer(snap)
	if q.Name != "walker" || q.X != 100 || q.Z != -20 || q.Inventory != 7 {
		t.Fatalf("admitted state wrong: %+v", q)
	}
	if q.destX != 300 || q.speed != 4 {
		t.Fatalf("movement state lost: dest=(%g,%g) speed=%g", q.destX, q.destZ, q.speed)
	}
	if q.ChunksReceived != 42 {
		t.Fatalf("ChunksReceived = %d, want 42", q.ChunksReceived)
	}
	if b.PlayerCount() != 1 {
		t.Fatalf("target has %d players", b.PlayerCount())
	}
}

// TestSnapshotCodecRoundTrip checks the wire format, including owned
// constructs and prefix compatibility with the plain player record.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	con := sc.BuildSized(48)
	snap := PlayerSnapshot{
		X: 12.5, Z: -3.25, DestX: 99, DestZ: -44, Speed: 3.5,
		Inventory: 9, ChunksReceived: 17,
		Constructs: []ConstructSnapshot{{
			Anchor: world.BlockPos{X: -8, Y: 5, Z: 120},
			Layout: con.EncodeLayout(),
			State:  con.State(),
		}},
	}
	data := EncodeSnapshot(snap)
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.X != snap.X || got.Z != snap.Z || got.DestX != 99 || got.Speed != 3.5 ||
		got.Inventory != 9 || got.ChunksReceived != 17 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.Constructs) != 1 {
		t.Fatalf("constructs lost: %d", len(got.Constructs))
	}
	c := got.Constructs[0]
	if c.Anchor != (world.BlockPos{X: -8, Y: 5, Z: 120}) {
		t.Fatalf("anchor mismatch: %v", c.Anchor)
	}
	dec, err := sc.DecodeLayout(c.Layout)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetState(c.State); err != nil {
		t.Fatal(err)
	}
	if dec.BlockCount() != con.BlockCount() {
		t.Fatalf("construct layout mismatch: %d vs %d blocks", dec.BlockCount(), con.BlockCount())
	}

	// Prefix compatibility: the snapshot decodes as a plain player record.
	rec, err := decodePlayer(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.X != snap.X || rec.Z != snap.Z || rec.Inventory != snap.Inventory {
		t.Fatalf("player-record prefix mismatch: %+v", rec)
	}
	// And a bare record decodes as a snapshot.
	bare, err := DecodeSnapshot(data[:17])
	if err != nil {
		t.Fatal(err)
	}
	if bare.X != snap.X || bare.DestX != snap.X {
		t.Fatalf("bare record snapshot wrong: %+v", bare)
	}
}

// TestRegionGatedPersistence checks that a sharded server persists only
// chunks its region owns, while still generating ghost chunks on demand.
func TestRegionGatedPersistence(t *testing.T) {
	loop := sim.NewLoop(3)
	topo := world.BandTopology{BandChunks: 4}
	region := world.StaticRegion(topo, 2, 0)
	store := &recordingStore{stored: map[world.ChunkPos]bool{}}
	s := NewServer(loop, Config{
		WorldType:    "flat",
		ViewDistance: 64,
		Region:       region,
		Store:        store,
	})
	s.Connect("p", nil)
	s.Start()
	loop.RunUntil(10 * 1e9) // 10s: boot requests resolve, terrain persists
	for cp := range store.stored {
		if !region.Contains(cp) {
			t.Errorf("persisted unowned chunk %v (owner shard %d)", cp, world.DefaultOwner(topo, 2, topo.TileOf(cp)))
		}
	}
	if len(store.stored) == 0 {
		t.Fatal("no chunks persisted at all")
	}
}

// recordingStore is a ChunkStore that records Store calls and always
// misses on Load.
type recordingStore struct{ stored map[world.ChunkPos]bool }

func (r *recordingStore) Load(pos world.ChunkPos, cb func(*world.Chunk, bool)) { cb(nil, false) }
func (r *recordingStore) Store(c *world.Chunk)                                 { r.stored[c.Pos] = true }
