// Multi-tile migration planning: the scoring leg of the autoscaling
// policy subsystem. The PR 3 controller moves one hot tile at a time;
// scale events need coordinated plans — spread a new shard's share onto
// it, or spread a forming flash crowd before latency degrades — chosen
// by their effect on the *post-move* load map, not just the current
// hottest tile. The planner is pure arithmetic over a tile → rate
// snapshot (no cluster state, no clock), which keeps it deterministic
// and property-testable: PlanBalance never returns a plan that raises
// the maximum per-shard load above what it was before the plan.

package cluster

import (
	"sort"

	"servo/internal/world"
)

// TileRate is one tile's demand in cost units per second, tagged with
// its current owner. The autoscaler derives rates by differencing
// TileLoads snapshots; predictive planning feeds projected rates.
type TileRate struct {
	Tile  world.TileID
	Owner int
	Rate  float64
}

// TileMove is one step of a migration plan.
type TileMove struct {
	Tile world.TileID
	From int
	To   int
}

// PlanBalance greedily builds a multi-tile migration plan over the
// candidate shards: while some shard's summed rate exceeds the mean and
// moving its cheapest movable tile to the least-loaded candidate
// strictly lowers the maximum per-shard load, emit that move. Ties are
// broken by the topology's space-filling index, so the plan is a pure
// function of its inputs. The returned plan never increases the maximum
// per-shard post-move load and never exceeds maxMoves steps.
//
// index maps a tile to its deterministic ordering key (topology Index);
// candidates must be the alive, non-draining shards the plan may route
// load onto (a shard with no tiles yet — a fresh scale-up — is a valid
// candidate and is how a new shard receives its share).
func PlanBalance(rates []TileRate, candidates []int, index func(world.TileID) int, maxMoves int) []TileMove {
	if len(rates) == 0 || len(candidates) < 2 || maxMoves <= 0 {
		return nil
	}
	cand := make(map[int]bool, len(candidates))
	for _, s := range candidates {
		cand[s] = true
	}
	// Per-shard load over every candidate (zero entries matter: an empty
	// new shard is the coldest target), plus each candidate's tiles
	// sorted by rate descending (index ascending on ties) so the
	// heaviest movable tile is considered first.
	load := make(map[int]float64, len(candidates))
	for _, s := range candidates {
		load[s] = 0
	}
	tilesOf := make(map[int][]TileRate)
	for _, r := range rates {
		if !cand[r.Owner] {
			// Tiles on non-candidate shards (draining, quarantined) are
			// invisible to the plan; the drain path moves those.
			continue
		}
		load[r.Owner] += r.Rate
		tilesOf[r.Owner] = append(tilesOf[r.Owner], r)
	}
	for s := range tilesOf {
		ts := tilesOf[s]
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].Rate != ts[j].Rate {
				return ts[i].Rate > ts[j].Rate
			}
			return index(ts[i].Tile) < index(ts[j].Tile)
		})
	}
	ordered := append([]int(nil), candidates...)
	sort.Ints(ordered)

	var plan []TileMove
	for len(plan) < maxMoves {
		src, dst := hottest(ordered, load, tilesOf), coldest(ordered, load)
		if src < 0 || dst < 0 || src == dst {
			break
		}
		// Pick the largest tile on src whose move strictly improves the
		// max: moving it must leave dst below src's current load.
		moved := false
		for i, tr := range tilesOf[src] {
			if tr.Rate > 0 && load[dst]+tr.Rate < load[src] {
				plan = append(plan, TileMove{Tile: tr.Tile, From: src, To: dst})
				load[src] -= tr.Rate
				load[dst] += tr.Rate
				tilesOf[src] = append(append([]TileRate(nil), tilesOf[src][:i]...), tilesOf[src][i+1:]...)
				tr.Owner = dst
				// Insert into dst's list keeping the sort order.
				dl := tilesOf[dst]
				at := sort.Search(len(dl), func(k int) bool {
					if dl[k].Rate != tr.Rate {
						return dl[k].Rate < tr.Rate
					}
					return index(dl[k].Tile) > index(tr.Tile)
				})
				dl = append(dl, TileRate{})
				copy(dl[at+1:], dl[at:])
				dl[at] = tr
				tilesOf[dst] = dl
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
	return plan
}

// hottest returns the candidate with the highest load that still has a
// movable tile, lowest index on ties; -1 if none.
func hottest(ordered []int, load map[int]float64, tilesOf map[int][]TileRate) int {
	best, bestLoad := -1, 0.0
	for _, s := range ordered {
		if len(tilesOf[s]) == 0 {
			continue
		}
		if best < 0 || load[s] > bestLoad {
			best, bestLoad = s, load[s]
		}
	}
	return best
}

// coldest returns the candidate with the lowest load, lowest index on
// ties; -1 if none.
func coldest(ordered []int, load map[int]float64) int {
	best, bestLoad := -1, 0.0
	for _, s := range ordered {
		if best < 0 || load[s] < bestLoad {
			best, bestLoad = s, load[s]
		}
	}
	return best
}

// maxLoad returns the maximum per-shard summed rate over the candidates
// (tiles owned by non-candidates excluded), used by tests to state the
// planner's core property.
func maxLoad(rates []TileRate, candidates []int) float64 {
	load := make(map[int]float64, len(candidates))
	cand := make(map[int]bool, len(candidates))
	for _, s := range candidates {
		cand[s] = true
		load[s] = 0
	}
	max := 0.0
	for _, r := range rates {
		if cand[r.Owner] {
			load[r.Owner] += r.Rate
		}
	}
	for _, v := range load {
		if v > max {
			max = v
		}
	}
	return max
}

// applyPlan returns the rates with the plan's moves applied, for tests.
func applyPlan(rates []TileRate, plan []TileMove) []TileRate {
	out := append([]TileRate(nil), rates...)
	for _, mv := range plan {
		for i := range out {
			if out[i].Tile == mv.Tile && out[i].Owner == mv.From {
				out[i].Owner = mv.To
			}
		}
	}
	return out
}
