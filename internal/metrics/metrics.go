// Package metrics provides the measurement primitives used by the Servo
// experiment harness: duration samples with percentile summaries, boxplot
// statistics matching the paper's figures, inverse-CDF exports (Fig. 13),
// rolling-window time series (Fig. 10, Fig. 12a), and simple counters and
// meters for invocation-rate and billing accounting (Fig. 9).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates duration observations and computes order statistics.
// The zero value is ready to use.
type Sample struct {
	values []time.Duration
	sorted bool
}

// NewSample returns a Sample with capacity preallocated for n observations.
func NewSample(n int) *Sample {
	return &Sample{values: make([]time.Duration, 0, n)}
}

// Add records one observation.
func (s *Sample) Add(v time.Duration) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll records every observation in vs.
func (s *Sample) AddAll(vs []time.Duration) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// Len returns the number of observations recorded.
func (s *Sample) Len() int { return len(s.values) }

// Values returns a copy of the raw observations in insertion order is not
// guaranteed once percentiles have been computed; callers should treat the
// result as an unordered multiset.
func (s *Sample) Values() []time.Duration {
	out := make([]time.Duration, len(s.values))
	copy(out, s.values)
	return out
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo] + time.Duration(frac*float64(s.values[hi]-s.values[lo]))
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(s.values)))
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// FracAbove returns the fraction of observations strictly greater than
// threshold. This implements the paper's supported-players criterion
// ("fewer than 5% of tick duration samples exceed 50 ms").
func (s *Sample) FracAbove(threshold time.Duration) float64 {
	if len(s.values) == 0 {
		return 0
	}
	return float64(s.CountAbove(threshold)) / float64(len(s.values))
}

// CountAbove returns the number of observations strictly greater than
// threshold (the numerator of FracAbove, exposed for exact pass/fail
// reporting in the scenario harness).
func (s *Sample) CountAbove(threshold time.Duration) int {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	i := sort.Search(len(s.values), func(i int) bool { return s.values[i] > threshold })
	return len(s.values) - i
}

// Boxplot is the five-point summary the paper's figures use: whiskers at the
// 5th and 95th percentiles, the interquartile box, the median, plus mean and
// max annotations.
type Boxplot struct {
	P5, P25, P50, P75, P95 time.Duration
	Mean, Max              time.Duration
	N                      int
}

// Box computes the Boxplot summary of the sample.
func (s *Sample) Box() Boxplot {
	return Boxplot{
		P5:   s.Percentile(5),
		P25:  s.Percentile(25),
		P50:  s.Percentile(50),
		P75:  s.Percentile(75),
		P95:  s.Percentile(95),
		Mean: s.Mean(),
		Max:  s.Max(),
		N:    s.Len(),
	}
}

// String renders the boxplot as a single table row.
func (b Boxplot) String() string {
	return fmt.Sprintf("p5=%s p25=%s p50=%s p75=%s p95=%s mean=%s max=%s n=%d",
		ms(b.P5), ms(b.P25), ms(b.P50), ms(b.P75), ms(b.P95), ms(b.Mean), ms(b.Max), b.N)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// ICDFPoint is one point of an inverse cumulative distribution function:
// Frac of the observations are strictly greater than Latency.
type ICDFPoint struct {
	Latency time.Duration
	Frac    float64
}

// ICDF returns the inverse CDF evaluated at the given fractions (e.g.
// 1, 0.1, 0.01, 1e-3, 1e-4 for the log-scale axis of Fig. 13). For each
// fraction f it reports the smallest latency such that at most f of the
// observations exceed it.
func (s *Sample) ICDF(fracs []float64) []ICDFPoint {
	out := make([]ICDFPoint, 0, len(fracs))
	for _, f := range fracs {
		p := (1 - f) * 100
		out = append(out, ICDFPoint{Latency: s.Percentile(p), Frac: f})
	}
	return out
}

// TimeSeries records (time, duration) observations and supports
// rolling-window summaries, matching the 2.5-second windows of Fig. 10 and
// Fig. 12a.
type TimeSeries struct {
	ts []time.Duration // observation times since epoch
	vs []time.Duration // observed values
}

// Add appends an observation at time t.
func (ts *TimeSeries) Add(t, v time.Duration) {
	ts.ts = append(ts.ts, t)
	ts.vs = append(ts.vs, v)
}

// Len returns the number of observations.
func (ts *TimeSeries) Len() int { return len(ts.ts) }

// Points returns copies of the observation times and values, in
// observation order (the scenario CSV emitter exports them per shard).
func (ts *TimeSeries) Points() (times, values []time.Duration) {
	times = append([]time.Duration(nil), ts.ts...)
	values = append([]time.Duration(nil), ts.vs...)
	return times, values
}

// ValuesBetween returns the values observed in the inclusive time window
// [from, to], in observation order (time-windowed scenario assertions).
func (ts *TimeSeries) ValuesBetween(from, to time.Duration) []time.Duration {
	var out []time.Duration
	for i, t := range ts.ts {
		if t >= from && t <= to {
			out = append(out, ts.vs[i])
		}
	}
	return out
}

// WindowPoint summarises one rolling window.
type WindowPoint struct {
	T                  time.Duration // window end time
	Mean, P5, P95, P50 time.Duration
	N                  int
}

// Windows partitions the series into consecutive windows of the given width
// and summarises each. Empty windows are skipped.
func (ts *TimeSeries) Windows(width time.Duration) []WindowPoint {
	if len(ts.ts) == 0 || width <= 0 {
		return nil
	}
	var out []WindowPoint
	var cur Sample
	windowEnd := ts.ts[0] + width
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, WindowPoint{
				T:    windowEnd,
				Mean: cur.Mean(),
				P5:   cur.Percentile(5),
				P50:  cur.Percentile(50),
				P95:  cur.Percentile(95),
				N:    cur.Len(),
			})
		}
		cur = Sample{}
	}
	for i, t := range ts.ts {
		for t >= windowEnd {
			flush()
			windowEnd += width
		}
		cur.Add(ts.vs[i])
	}
	flush()
	return out
}

// ImbalanceRatio returns max/mean over per-shard load values — the
// load_imbalance metric (1 = perfectly balanced). Empty or all-zero
// input returns 1: a cluster doing nothing is balanced. Callers filter
// out shards that should not count (dead, or empty in a window) before
// calling; the cluster controller, the end-of-run report, and windowed
// assertions all share this definition.
func ImbalanceRatio(loads []float64) float64 {
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if len(loads) == 0 || sum == 0 {
		return 1
	}
	return max / (sum / float64(len(loads)))
}

// Counter is a monotonically increasing event count.
type Counter struct{ n int64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Meter tracks a rate of events over simulated time.
type Meter struct {
	events []time.Duration
}

// Mark records an event at time t.
func (m *Meter) Mark(t time.Duration) { m.events = append(m.events, t) }

// Count returns the total number of marked events.
func (m *Meter) Count() int { return len(m.events) }

// RatePerMinute returns the average event rate over [start, end].
func (m *Meter) RatePerMinute(start, end time.Duration) float64 {
	if end <= start {
		return 0
	}
	n := 0
	for _, t := range m.events {
		if t >= start && t <= end {
			n++
		}
	}
	return float64(n) / (float64(end-start) / float64(time.Minute))
}

// Table is a minimal fixed-width text table used by the experiment reports.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
