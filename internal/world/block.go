// Package world implements the voxel world substrate of the MVE: block and
// chunk data structures, coordinates, and a compact binary chunk encoding
// (palette plus bit-packed indices) used for persistence and the wire
// protocol. Chunks match Minecraft's dimensions: 16×16 columns of 256
// blocks, as the paper uses for its terrain-generation experiments.
package world

import "fmt"

// BlockID identifies a block type. Air is the zero value so that
// newly-allocated chunks are valid empty space.
type BlockID uint8

// Block types. The circuit block types (Wire, Battery, Lamp, Repeater,
// Inverter) are the stateful blocks that form simulated constructs
// (paper §II-A): connecting them lets players program the terrain.
const (
	Air BlockID = iota
	Stone
	Dirt
	Grass
	Sand
	Water
	Bedrock
	Wood
	Leaves
	Snow
	Gravel
	// Stateful circuit blocks.
	Wire     // carries a power level 0..15, decaying per block
	Battery  // constant power source (state: on/off)
	Lamp     // lit when powered (state: on/off)
	Repeater // re-amplifies power after a delay (state: delay counter + output)
	Inverter // outputs power iff its input is unpowered; loops of these oscillate

	numBlockIDs
)

// Stateful reports whether blocks of this type carry simulation state and
// therefore participate in simulated constructs.
func (id BlockID) Stateful() bool {
	switch id {
	case Wire, Battery, Lamp, Repeater, Inverter:
		return true
	}
	return false
}

// Solid reports whether the block obstructs movement. Used by the avatar
// movement code to settle avatars on the terrain surface.
func (id BlockID) Solid() bool {
	switch id {
	case Air, Water:
		return false
	}
	return true
}

// String implements fmt.Stringer.
func (id BlockID) String() string {
	names := [...]string{
		"air", "stone", "dirt", "grass", "sand", "water", "bedrock", "wood",
		"leaves", "snow", "gravel", "wire", "battery", "lamp", "repeater",
		"inverter",
	}
	if int(id) < len(names) {
		return names[id]
	}
	return fmt.Sprintf("block(%d)", uint8(id))
}

// Block is one voxel: a type plus one byte of auxiliary state. For circuit
// blocks, Data carries the power level (Wire), the on/off bit (Battery,
// Lamp), or the delay/output encoding (Repeater, Inverter).
type Block struct {
	ID   BlockID
	Data uint8
}

// IsAir reports whether the block is empty space.
func (b Block) IsAir() bool { return b.ID == Air }

// key packs the block into a comparable map key for palette construction.
func (b Block) key() uint16 { return uint16(b.ID)<<8 | uint16(b.Data) }

func blockFromKey(k uint16) Block {
	return Block{ID: BlockID(k >> 8), Data: uint8(k)}
}
