package tgen

import "servo/internal/world"

// GenCache is the cross-shard generation dedup cache: a bounded,
// FIFO-evicted map from chunk position to the encoded generation reply.
// When bordering shards both demand a seam chunk, whichever generation
// completes first publishes its reply here and the neighbour adopts the
// bytes instead of paying a second FaaS invocation.
//
// The cache is shared across shards but deliberately not locked: every
// access happens in serial context — backends publish from invocation
// callbacks and look up from commit-buffered adoption drains — which the
// lane scheduler already serialises in deterministic order, so the cache
// is byte-identical at every worker-pool size.
type GenCache struct {
	max  int
	data map[world.ChunkPos]genEntry
	// order is the FIFO eviction log: (pos, seq) in publish order, with a
	// consumed head index (compacted when the dead prefix dominates). The
	// seq guard makes a stale log entry — a position evicted and later
	// republished — a no-op instead of an early eviction of fresh bytes.
	order []genOrder
	head  int
	seq   uint64

	// Published and Evicted count cache turnover (visible for tests and
	// experiment sanity checks).
	Published int
	Evicted   int
}

type genEntry struct {
	bytes []byte
	seq   uint64
}

type genOrder struct {
	pos world.ChunkPos
	seq uint64
}

// DefaultGenCacheSize bounds the cache when NewGenCache is given a
// non-positive capacity: enough for the seam rectangles of a handful of
// shard borders (a few MiB of encoded terrain) without holding the whole
// world in memory.
const DefaultGenCacheSize = 512

// NewGenCache returns a cache holding at most max encoded chunks
// (DefaultGenCacheSize if max <= 0).
func NewGenCache(max int) *GenCache {
	if max <= 0 {
		max = DefaultGenCacheSize
	}
	return &GenCache{max: max, data: make(map[world.ChunkPos]genEntry, max)}
}

// Publish records the encoded generation reply for pos, evicting the
// oldest entries beyond capacity. The cache retains data without copying
// (callers hand over invocation-owned reply buffers). Republishing a
// cached position is a no-op: generation is deterministic in (seed, pos),
// so the bytes would be identical.
func (g *GenCache) Publish(pos world.ChunkPos, data []byte) {
	if g == nil || len(data) == 0 {
		return
	}
	if _, ok := g.data[pos]; ok {
		return
	}
	for len(g.data) >= g.max && g.head < len(g.order) {
		o := g.order[g.head]
		g.head++
		if e, ok := g.data[o.pos]; ok && e.seq == o.seq {
			delete(g.data, o.pos)
			g.Evicted++
		}
	}
	if g.head > 64 && g.head*2 >= len(g.order) {
		n := copy(g.order, g.order[g.head:])
		g.order = g.order[:n]
		g.head = 0
	}
	g.seq++
	g.data[pos] = genEntry{bytes: data, seq: g.seq}
	g.order = append(g.order, genOrder{pos: pos, seq: g.seq})
	g.Published++
}

// Lookup returns the encoded reply cached for pos, or nil. The returned
// bytes are shared and must not be mutated.
func (g *GenCache) Lookup(pos world.ChunkPos) []byte {
	if g == nil {
		return nil
	}
	return g.data[pos].bytes
}

// Len returns the number of cached replies.
func (g *GenCache) Len() int {
	if g == nil {
		return 0
	}
	return len(g.data)
}
