// Tests for the autoscaling subsystem's three legs: the failure
// tracker's quarantine arithmetic, the migration planner's safety
// property, and the AddShard/RemoveShard lifecycle — including replay
// determinism across worker-pool sizes and drain safety under a
// storage brownout.

package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"servo/internal/blob"
	"servo/internal/world"
)

func TestFailureTrackerQuarantinesOnThirdCrash(t *testing.T) {
	ft := newFailureTracker(failureTrackerConfig{maxFailures: 3, window: time.Minute, probation: 30 * time.Second})
	if ft.RecordFailure(1, 10*time.Second) {
		t.Fatal("first crash quarantined")
	}
	if ft.RecordFailure(1, 20*time.Second) {
		t.Fatal("second crash quarantined")
	}
	if ft.Quarantined(1, 25*time.Second) {
		t.Fatal("quarantined before the threshold")
	}
	if !ft.RecordFailure(1, 30*time.Second) {
		t.Fatal("third crash in window did not quarantine")
	}
	if !ft.Quarantined(1, 31*time.Second) {
		t.Fatal("not quarantined after the entering transition")
	}
	// Other shards are unaffected.
	if ft.Quarantined(0, 31*time.Second) {
		t.Fatal("unrelated shard quarantined")
	}
}

func TestFailureTrackerWindowPrunesOldCrashes(t *testing.T) {
	ft := newFailureTracker(failureTrackerConfig{maxFailures: 3, window: time.Minute, probation: 30 * time.Second})
	ft.RecordFailure(0, 0)
	ft.RecordFailure(0, 10*time.Second)
	if got := ft.Failures(0, 10*time.Second); got != 2 {
		t.Fatalf("failures in window = %d, want 2", got)
	}
	// 70s: the crash at t=0 has aged out; this is only the second crash
	// in the rolling window, so no quarantine.
	if ft.RecordFailure(0, 70*time.Second) {
		t.Fatal("quarantined though the first crash aged out of the window")
	}
	if got := ft.Failures(0, 70*time.Second); got != 2 {
		t.Fatalf("failures in window = %d, want 2", got)
	}
}

func TestFailureTrackerProbationReleasesAndForgets(t *testing.T) {
	ft := newFailureTracker(failureTrackerConfig{maxFailures: 2, window: time.Minute, probation: 30 * time.Second})
	ft.RecordFailure(2, 10*time.Second)
	if !ft.RecordFailure(2, 20*time.Second) {
		t.Fatal("second crash did not quarantine")
	}
	// A crash while quarantined is not a fresh quarantine event but
	// extends probation via the last-crash time: release moves from
	// 20s+30s to 25s+30s.
	if ft.RecordFailure(2, 25*time.Second) {
		t.Fatal("crash inside quarantine double-counted as a quarantine event")
	}
	if !ft.Quarantined(2, 54*time.Second) {
		t.Fatal("released before probation elapsed since the last crash")
	}
	if ft.Quarantined(2, 55*time.Second) {
		t.Fatal("not released once probation elapsed since the last crash")
	}
	// Release wipes the slate: the next crash starts a fresh count.
	if ft.RecordFailure(2, 56*time.Second) {
		t.Fatal("post-probation crash re-quarantined off stale history")
	}
}

// TestPlanBalanceNeverRaisesMaxLoad is the planner's core safety
// property: over randomized tile/rate/owner snapshots, the plan never
// increases the maximum per-shard load, never exceeds maxMoves, and
// only routes between candidate shards.
func TestPlanBalanceNeverRaisesMaxLoad(t *testing.T) {
	index := func(tile world.TileID) int { return tile.X*1024 + tile.Z }
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		candidates := []int{0, 1, 2, 3}[:2+rng.Intn(3)]
		nTiles := 1 + rng.Intn(12)
		rates := make([]TileRate, 0, nTiles)
		for i := 0; i < nTiles; i++ {
			owner := rng.Intn(5) // may land outside the candidate set
			rates = append(rates, TileRate{
				Tile:  world.TileID{X: i % 7, Z: i / 7},
				Owner: owner,
				Rate:  float64(rng.Intn(50)),
			})
		}
		maxMoves := 1 + rng.Intn(4)
		before := maxLoad(rates, candidates)
		plan := PlanBalance(rates, candidates, index, maxMoves)
		if len(plan) > maxMoves {
			t.Fatalf("seed %d: plan has %d moves, cap %d", seed, len(plan), maxMoves)
		}
		cand := make(map[int]bool)
		for _, s := range candidates {
			cand[s] = true
		}
		for _, mv := range plan {
			if !cand[mv.From] || !cand[mv.To] {
				t.Fatalf("seed %d: move %+v touches a non-candidate shard", seed, mv)
			}
		}
		after := maxLoad(applyPlan(rates, plan), candidates)
		if after > before {
			t.Fatalf("seed %d: plan raised max load %g -> %g (plan %+v)", seed, before, after, plan)
		}
		// Determinism: the same inputs replan identically.
		replay := PlanBalance(rates, candidates, index, maxMoves)
		if len(replay) != len(plan) {
			t.Fatalf("seed %d: replan length differs", seed)
		}
		for i := range plan {
			if plan[i] != replay[i] {
				t.Fatalf("seed %d: replan[%d] differs: %+v vs %+v", seed, i, plan[i], replay[i])
			}
		}
	}
}

// TestAddRemoveShardLifecycle: a shard added at runtime receives a tile,
// serves its residents, then drains back out — ownership returns to the
// survivors, the residents follow with zero loss, and the retired slot
// is reused by the next AddShard.
func TestAddRemoveShardLifecycle(t *testing.T) {
	loop, c := newTestCluster(t, 5, 2, Config{})
	band := world.TileID{X: 2}
	p := c.ConnectAt("resident", nil, c.TileCenter(band))
	sess := c.Session(p)
	sess.Inventory = 29
	c.Start()
	loop.RunUntil(5 * time.Second)

	idx := c.AddShard()
	if idx != 2 {
		t.Fatalf("AddShard returned %d, want 2", idx)
	}
	if got := c.AliveCount(); got != 3 {
		t.Fatalf("alive = %d after AddShard, want 3", got)
	}
	if !c.MigrateTile(band, idx) {
		t.Fatal("MigrateTile onto the new shard refused")
	}
	loop.RunUntil(30 * time.Second)
	if got := c.Table().Owner(band); got != idx {
		t.Fatalf("band owner = %d after spread, want %d", got, idx)
	}
	if p.Shard() != idx {
		t.Fatalf("resident on shard %d, want %d", p.Shard(), idx)
	}

	if !c.RemoveShard(idx) {
		t.Fatal("RemoveShard refused")
	}
	loop.RunUntil(2 * time.Minute)
	if c.Table().Alive(idx) {
		t.Fatal("drained shard still alive")
	}
	if got := c.AliveCount(); got != 2 {
		t.Fatalf("alive = %d after retire, want 2", got)
	}
	if got := c.Table().Owner(band); got == idx {
		t.Fatal("retired shard still owns its tile")
	}
	if p.Shard() == idx {
		t.Fatal("resident stranded on the retired shard")
	}
	sess = c.Session(p)
	if sess == nil {
		t.Fatal("resident lost in the drain")
	}
	if sess.Inventory != 29 {
		t.Fatalf("inventory lost in the drain: %d", sess.Inventory)
	}
	if c.TilesDrained.Value() == 0 {
		t.Fatal("drain moved no tiles; test proves nothing")
	}

	// Boot shards are never drained; the retired slot is reused.
	if c.RemoveShard(0) {
		t.Fatal("RemoveShard drained a boot shard")
	}
	if again := c.AddShard(); again != idx {
		t.Fatalf("AddShard after retire returned %d, want reused slot %d", again, idx)
	}
}

// TestAddRemoveShardDeterministicReplay is the lifecycle leg of the
// determinism contract: the scale, migration, and handoff logs are
// identical across runs and across worker-pool sizes.
func TestAddRemoveShardDeterministicReplay(t *testing.T) {
	run := func(workers int) ([]ScaleRecord, []MigrationRecord, []HandoffRecord) {
		loop, c := newTestCluster(t, 77, 2, Config{})
		loop.SetWorkers(workers)
		for i := 0; i < 6; i++ {
			c.ConnectAt(fmt.Sprintf("p%d", i), nil, c.TileCenter(world.TileID{X: 2}))
		}
		c.ConnectAt("edge", walker(200, 8, 8), c.TileCenter(world.TileID{X: 1}))
		c.Start()
		loop.RunUntil(5 * time.Second)
		idx := c.AddShard()
		c.MigrateTile(world.TileID{X: 2}, idx)
		loop.RunUntil(30 * time.Second)
		c.RemoveShard(idx)
		loop.RunUntil(2 * time.Minute)
		if c.Table().Alive(idx) {
			t.Fatalf("workers=%d: drain never finished", workers)
		}
		return c.ScaleLog.All(), c.MigrationLog.All(), c.Log.All()
	}
	s1, m1, h1 := run(1)
	s4, m4, h4 := run(4)
	if len(s1) == 0 || len(m1) == 0 {
		t.Fatal("no scale/migration events recorded; test proves nothing")
	}
	if len(s1) != len(s4) || len(m1) != len(m4) || len(h1) != len(h4) {
		t.Fatalf("log lengths differ across pool sizes: scale %d/%d, migrations %d/%d, handoffs %d/%d",
			len(s1), len(s4), len(m1), len(m4), len(h1), len(h4))
	}
	for i := range s1 {
		if s1[i] != s4[i] {
			t.Fatalf("scale[%d] differs: %+v vs %+v", i, s1[i], s4[i])
		}
	}
	for i := range m1 {
		if m1[i] != m4[i] {
			t.Fatalf("migration[%d] differs: %+v vs %+v", i, m1[i], m4[i])
		}
	}
	for i := range h1 {
		if h1[i] != h4[i] {
			t.Fatalf("handoff[%d] differs: %+v vs %+v", i, h1[i], h4[i])
		}
	}
}

// TestDrainBrownoutDelaysButNeverLoses: retiring a shard under a heavy
// storage brownout. The drain's migrations are flush-gated, so the
// brownout delays the retirement — but every resident and their state
// arrive intact on the survivors once the store recovers.
func TestDrainBrownoutDelaysButNeverLoses(t *testing.T) {
	loop, remote, c := newStoreCluster(t, 7, 2, Config{})
	band := world.TileID{X: 2}
	p := c.ConnectAt("holdout", nil, c.TileCenter(band))
	c.Start()
	loop.RunUntil(10 * time.Second)

	idx := c.AddShard()
	if !c.MigrateTile(band, idx) {
		t.Fatal("MigrateTile onto the new shard refused")
	}
	loop.RunUntil(40 * time.Second)
	if p.Shard() != idx {
		t.Fatalf("resident on shard %d before the drain, want %d", p.Shard(), idx)
	}
	c.Session(p).Inventory = 41

	// Brownout: most reads and writes fail, everything is 20x slower.
	remote.SetChaos(&blob.Chaos{WriteErrorRate: 0.6, ReadErrorRate: 0.6, LatencyFactor: 20})
	if !c.RemoveShard(idx) {
		t.Fatal("RemoveShard refused")
	}
	// Mid-brownout the flush is still fighting faults: the shard must
	// not have retired yet (delayed, not skipped).
	loop.RunUntil(40*time.Second + 50*time.Millisecond)
	if !c.Table().Alive(idx) {
		t.Fatal("shard retired before its drain flush landed")
	}
	loop.RunUntil(3 * time.Minute)
	remote.SetChaos(nil)
	loop.RunUntil(6 * time.Minute)

	if c.Table().Alive(idx) {
		t.Fatal("drain never completed after the brownout")
	}
	if remote.FaultsInjected.Value() == 0 {
		t.Fatal("brownout injected no faults; test proves nothing")
	}
	if p.Shard() == idx {
		t.Fatal("resident stranded on the retired shard")
	}
	sess := c.Session(p)
	if sess == nil {
		t.Fatal("resident lost in the brownout drain")
	}
	if sess.Inventory != 41 {
		t.Fatalf("inventory lost in the brownout drain: %d", sess.Inventory)
	}
}
