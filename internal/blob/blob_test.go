package blob

import (
	"errors"
	"testing"
	"time"

	"servo/internal/metrics"
	"servo/internal/sim"
)

func TestPutGetRoundTrip(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewStore(loop, TierPremium)
	var got []byte
	var gotErr error
	s.Put("k", []byte("value"), func(err error) {
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		s.Get("k", func(data []byte, err error) { got, gotErr = data, err })
	})
	loop.Run()
	if gotErr != nil {
		t.Fatalf("get: %v", gotErr)
	}
	if string(got) != "value" {
		t.Fatalf("got %q, want %q", got, "value")
	}
}

func TestGetMissingKey(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewStore(loop, TierLocal)
	var gotErr error
	s.Get("missing", func(_ []byte, err error) { gotErr = err })
	loop.Run()
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", gotErr)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewStore(loop, TierLocal)
	s.Put("k", []byte("abc"), nil)
	var first []byte
	loop.Run()
	s.Get("k", func(data []byte, _ error) { first = data })
	loop.Run()
	first[0] = 'X'
	var second []byte
	s.Get("k", func(data []byte, _ error) { second = data })
	loop.Run()
	if string(second) != "abc" {
		t.Fatal("mutating a Get result corrupted the stored object")
	}
}

func TestPutCopiesInput(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewStore(loop, TierLocal)
	data := []byte("abc")
	s.Put("k", data, nil)
	data[0] = 'X' // mutate before the write lands
	loop.Run()
	var got []byte
	s.Get("k", func(d []byte, _ error) { got = d })
	loop.Run()
	if string(got) != "abc" {
		t.Fatal("store aliased the caller's buffer")
	}
}

func TestDelete(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewStore(loop, TierLocal)
	s.Put("k", []byte("v"), nil)
	loop.Run()
	s.Delete("k", nil)
	loop.Run()
	if s.Exists("k") || s.Len() != 0 {
		t.Fatal("object still present after delete")
	}
}

func TestTierLatencyOrdering(t *testing.T) {
	// §IV-F / Fig. 3: local ≪ premium < standard, and the serverless
	// tiers have much heavier tails.
	read := func(tier Tier) *metrics.Sample {
		loop := sim.NewLoop(42)
		s := NewStore(loop, tier)
		s.Put("k", make([]byte, 1024), nil)
		loop.Run()
		for i := 0; i < 20000; i++ {
			s.Get("k", func([]byte, error) {})
		}
		loop.Run()
		return &s.ReadLatency
	}
	local, premium, standard := read(TierLocal), read(TierPremium), read(TierStandard)

	if !(local.Percentile(50) < premium.Percentile(50) && premium.Percentile(50) < standard.Percentile(50)) {
		t.Fatalf("median ordering wrong: local=%v premium=%v standard=%v",
			local.Percentile(50), premium.Percentile(50), standard.Percentile(50))
	}
	// Anchors from §IV-F (loose bands): local p99.9 ≤ 20 ms, max ≤ 130 ms.
	if p := local.Percentile(99.9); p > 20*time.Millisecond {
		t.Errorf("local p99.9 = %v, want ≤ 20ms", p)
	}
	if m := local.Max(); m > 130*time.Millisecond {
		t.Errorf("local max = %v, want ≤ 130ms", m)
	}
	// Premium p99.9 lands in the few-hundred-ms band (paper: 226 ms).
	if p := premium.Percentile(99.9); p < 60*time.Millisecond || p > 600*time.Millisecond {
		t.Errorf("premium p99.9 = %v, want ~226ms band", p)
	}
	// Standard has outliers beyond 700 ms (Fig. 3).
	if m := standard.Max(); m < 700*time.Millisecond {
		t.Errorf("standard max = %v, want > 700ms", m)
	}
}

func TestBillingAccumulates(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewStore(loop, TierStandard)
	s.Put("k", make([]byte, 1<<20), nil)
	loop.Run()
	for i := 0; i < 10; i++ {
		s.Get("k", func([]byte, error) {})
	}
	loop.Run()
	if s.Reads.Value() != 10 || s.Writes.Value() != 1 {
		t.Fatalf("ops = %d reads / %d writes", s.Reads.Value(), s.Writes.Value())
	}
	if s.BilledDollars() <= 0 {
		t.Fatal("billing must be positive after traffic")
	}
}

func TestOverwriteTracksPeakUsage(t *testing.T) {
	loop := sim.NewLoop(1)
	s := NewStore(loop, TierLocal)
	s.Put("k", make([]byte, 1000), nil)
	loop.Run()
	s.Put("k", make([]byte, 10), nil)
	loop.Run()
	if s.curBytes != 10 {
		t.Fatalf("current bytes = %d, want 10", s.curBytes)
	}
	if s.peakBytes != 1000 {
		t.Fatalf("peak bytes = %d, want 1000", s.peakBytes)
	}
}

func TestTierString(t *testing.T) {
	if TierLocal.String() != "local" || TierPremium.String() != "premium" || TierStandard.String() != "standard" {
		t.Fatal("tier names wrong")
	}
	if Tier(99).String() == "" {
		t.Fatal("unknown tier must have fallback name")
	}
}

func TestModelsValid(t *testing.T) {
	for _, tier := range []Tier{TierLocal, TierPremium, TierStandard} {
		m := ModelFor(tier)
		if err := sim.Validate(m.Read); err != nil {
			t.Errorf("%v read model: %v", tier, err)
		}
		if err := sim.Validate(m.Write); err != nil {
			t.Errorf("%v write model: %v", tier, err)
		}
	}
}

// TestPutDurablyThenSurvivesSupersession pins the durability contract
// ownership migrations rely on: when a newer write chain supersedes a
// PutDurablyThen mid-brownout, the completion callback transfers to the
// superseding chain instead of firing while zero bytes are durable.
func TestPutDurablyThenSurvivesSupersession(t *testing.T) {
	loop := sim.NewLoop(6)
	s := NewStore(loop, TierPremium)
	// Every write faults: the durable chain retries without landing.
	s.SetChaos(&Chaos{WriteErrorRate: 1})
	fired := false
	s.PutDurablyThen("k", []byte("old"), func() { fired = true })
	loop.RunUntil(2 * time.Second)
	// A newer retrying write supersedes the durable chain.
	s.PutRetrying("k", []byte("new"))
	loop.RunUntil(10 * time.Second)
	if fired {
		t.Fatal("done fired during the brownout with nothing durable")
	}
	if s.Exists("k") {
		t.Fatal("no write should have landed under total write failure")
	}
	// The brownout ends: the superseding chain lands and resolves done.
	s.SetChaos(nil)
	loop.RunUntil(20 * time.Second)
	if !fired {
		t.Fatal("done never fired after the superseding write landed")
	}
	var got []byte
	s.Get("k", func(data []byte, err error) {
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		got = data
	})
	loop.Run()
	if string(got) != "new" {
		t.Fatalf("stored %q, want the superseding write's data", got)
	}
}
