package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Dist is a latency (or more generally, duration) distribution. All the
// platform models in this repository — FaaS cold starts, blob-store
// round-trips, tick-duration noise — are expressed as Dists so that they can
// be composed, calibrated, and swapped in tests.
type Dist interface {
	// Sample draws one value. Implementations must never return a
	// negative duration.
	Sample(r *rand.Rand) time.Duration
	// Mean returns the analytic mean of the distribution, used by cost
	// accounting and documentation.
	Mean() time.Duration
}

// Constant is a degenerate distribution that always returns V.
type Constant time.Duration

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) time.Duration { return time.Duration(c) }

// Mean implements Dist.
func (c Constant) Mean() time.Duration { return time.Duration(c) }

// Uniform samples uniformly from [Low, High].
type Uniform struct {
	Low, High time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.High <= u.Low {
		return clampNonNeg(u.Low)
	}
	return clampNonNeg(u.Low + time.Duration(r.Int63n(int64(u.High-u.Low))))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Low + u.High) / 2 }

// Normal samples from a truncated-at-zero normal distribution.
type Normal struct {
	Mu    time.Duration
	Sigma time.Duration
}

// Sample implements Dist.
func (n Normal) Sample(r *rand.Rand) time.Duration {
	v := float64(n.Mu) + r.NormFloat64()*float64(n.Sigma)
	return clampNonNeg(time.Duration(v))
}

// Mean implements Dist. The truncation bias is ignored; calibration uses
// Mu ≫ Sigma so the approximation holds.
func (n Normal) Mean() time.Duration { return n.Mu }

// LogNormal samples exp(N(mu, sigma)) scaled to Scale. With Scale = 1ms,
// mu and sigma are the log-millisecond parameters. Log-normal bodies with
// occasional far outliers are what both the paper (Fig. 3, Fig. 13) and the
// broader serverless measurement literature report for FaaS and blob
// latency.
type LogNormal struct {
	Scale time.Duration // unit the exp() is expressed in (e.g. time.Millisecond)
	Mu    float64       // mean of the underlying normal (in log units)
	Sigma float64       // stddev of the underlying normal
}

// Sample implements Dist.
func (ln LogNormal) Sample(r *rand.Rand) time.Duration {
	v := math.Exp(ln.Mu + ln.Sigma*r.NormFloat64())
	return clampNonNeg(time.Duration(v * float64(ln.Scale)))
}

// Mean implements Dist.
func (ln LogNormal) Mean() time.Duration {
	return time.Duration(math.Exp(ln.Mu+ln.Sigma*ln.Sigma/2) * float64(ln.Scale))
}

// Shifted adds a constant Offset to every sample of Base: the canonical way
// to model "fixed network RTT plus variable service time".
type Shifted struct {
	Base   Dist
	Offset time.Duration
}

// Sample implements Dist.
func (s Shifted) Sample(r *rand.Rand) time.Duration {
	return clampNonNeg(s.Offset + s.Base.Sample(r))
}

// Mean implements Dist.
func (s Shifted) Mean() time.Duration { return s.Offset + s.Base.Mean() }

// Mixture samples Tail with probability P and Body otherwise. It models
// heavy outlier tails (cold starts, multi-tenant interference) on top of a
// well-behaved body distribution.
type Mixture struct {
	Body Dist
	Tail Dist
	P    float64 // probability of drawing from Tail, in [0, 1]
}

// Sample implements Dist.
func (m Mixture) Sample(r *rand.Rand) time.Duration {
	if r.Float64() < m.P {
		return m.Tail.Sample(r)
	}
	return m.Body.Sample(r)
}

// Mean implements Dist.
func (m Mixture) Mean() time.Duration {
	b := float64(m.Body.Mean())
	t := float64(m.Tail.Mean())
	return time.Duration(b*(1-m.P) + t*m.P)
}

// Scaled multiplies every sample of Base by Factor.
type Scaled struct {
	Base   Dist
	Factor float64
}

// Sample implements Dist.
func (s Scaled) Sample(r *rand.Rand) time.Duration {
	return clampNonNeg(time.Duration(float64(s.Base.Sample(r)) * s.Factor))
}

// Mean implements Dist.
func (s Scaled) Mean() time.Duration {
	return time.Duration(float64(s.Base.Mean()) * s.Factor)
}

func clampNonNeg(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// Validate reports an error for distributions with nonsensical parameters.
// It is a convenience for configuration loading.
func Validate(d Dist) error {
	switch v := d.(type) {
	case Constant:
		if v < 0 {
			return fmt.Errorf("sim: constant distribution is negative: %v", time.Duration(v))
		}
	case Uniform:
		if v.High < v.Low {
			return fmt.Errorf("sim: uniform distribution has High < Low: [%v, %v]", v.Low, v.High)
		}
	case Mixture:
		if v.P < 0 || v.P > 1 {
			return fmt.Errorf("sim: mixture probability out of range: %v", v.P)
		}
		if err := Validate(v.Body); err != nil {
			return err
		}
		return Validate(v.Tail)
	case Shifted:
		return Validate(v.Base)
	case Scaled:
		if v.Factor < 0 {
			return fmt.Errorf("sim: scale factor is negative: %v", v.Factor)
		}
		return Validate(v.Base)
	}
	return nil
}
