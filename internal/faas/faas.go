// Package faas simulates a commercial Function-as-a-Service platform (AWS
// Lambda / Azure Functions in the paper) with the characteristics the
// paper's experiments depend on:
//
//   - cold starts: the first invocation on a fresh instance pays a large
//     startup penalty, producing the temporally-correlated latency outliers
//     of Figures 8, 9, and 13;
//   - keep-alive eviction: idle instances are deallocated after minutes
//     ("AWS starts deallocating function resources within minutes",
//     paper §IV-C), so bursty invocation patterns keep hitting cold starts;
//   - memory-proportional compute: the vCPU share grows with the memory
//     configuration (one full vCPU at 1769 MB on AWS Lambda), and
//     performance variability grows as memory shrinks (Fig. 11);
//   - fine-grained billing: GB-seconds of execution plus a per-request
//     fee, used for the cost analysis of §IV-C and Fig. 11b.
//
// Handlers execute real Go code (the same circuit engine and terrain
// generator the server uses); only *time* is modelled: a handler reports
// the abstract work units it performed, and the platform converts work to
// virtual execution time based on the instance's compute share.
package faas

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"servo/internal/metrics"
	"servo/internal/sim"
)

// Handler is the body of a serverless function. It receives the request
// payload and returns the response payload plus the abstract work units the
// execution performed (which determine billed duration).
type Handler func(payload []byte) (resp []byte, workUnits int)

// Config describes one deployed function.
type Config struct {
	// MemoryMB is the memory allocation, which also sets the compute
	// share (AWS Lambda model: a full vCPU per 1769 MB).
	MemoryMB int
	// ColdStart is the distribution of instance startup penalties.
	ColdStart sim.Dist
	// NetRTT is the network round-trip between the game server and the
	// function, paid by every invocation.
	NetRTT sim.Dist
	// KeepAlive is the distribution of idle lifetimes before the platform
	// deallocates a warm instance.
	KeepAlive sim.Dist
	// NsPerWorkUnit is the single-vCPU execution time per work unit.
	NsPerWorkUnit time.Duration
	// ParallelFrac is the Amdahl parallel fraction of the handler's work,
	// which governs how much configurations above one vCPU help.
	ParallelFrac float64
	// ExecNoiseSigma is the base lognormal sigma of execution-time noise
	// at one full vCPU; smaller memory configurations suffer
	// proportionally more variability (multi-tenant interference).
	ExecNoiseSigma float64
}

// Billing rates, matching AWS Lambda's published pricing (us-east-1, 2022):
// $0.0000166667 per GB-second and $0.20 per million requests.
const (
	DollarsPerGBSecond = 0.0000166667
	DollarsPerRequest  = 0.20 / 1e6
	// FullVCPUMemMB is the memory allocation that grants one full vCPU.
	FullVCPUMemMB = 1769
	// MaxVCPUs caps the compute share (10240 MB ≈ 5.8 vCPUs on Lambda).
	MaxVCPUs = 6.0
)

// DefaultConfig returns a function configuration calibrated against the
// paper's AWS measurements: ~15 ms median warm round-trip and cold starts
// in the hundreds of milliseconds.
func DefaultConfig() Config {
	return Config{
		MemoryMB:       1769,
		ColdStart:      sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 5.2, Sigma: 0.6}, Offset: 120 * time.Millisecond},
		NetRTT:         sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 1.3, Sigma: 0.5}, Offset: 4 * time.Millisecond},
		KeepAlive:      sim.Uniform{Low: 2 * time.Minute, High: 6 * time.Minute},
		NsPerWorkUnit:  50 * time.Microsecond,
		ParallelFrac:   0.85,
		ExecNoiseSigma: 0.08,
	}
}

// PresetAWS returns the AWS Lambda latency preset used by the paper's
// DAS-5 + AWS experiments: moderate cold starts (Firecracker microVMs) and
// low invocation RTT.
func PresetAWS() Config { return DefaultConfig() }

// PresetAzure returns the Azure Functions latency preset: longer and more
// variable cold starts and slightly higher RTT, matching the published
// serverless measurement studies the paper builds on.
func PresetAzure() Config {
	cfg := DefaultConfig()
	cfg.ColdStart = sim.Shifted{
		Base:   sim.LogNormal{Scale: time.Millisecond, Mu: 6.1, Sigma: 0.8},
		Offset: 250 * time.Millisecond,
	}
	cfg.NetRTT = sim.Shifted{
		Base:   sim.LogNormal{Scale: time.Millisecond, Mu: 1.7, Sigma: 0.6},
		Offset: 6 * time.Millisecond,
	}
	cfg.KeepAlive = sim.Uniform{Low: 5 * time.Minute, High: 20 * time.Minute}
	return cfg
}

// CPUShare returns the vCPU share granted to the given memory
// configuration.
func CPUShare(memoryMB int) float64 {
	f := float64(memoryMB) / FullVCPUMemMB
	if f > MaxVCPUs {
		f = MaxVCPUs
	}
	return f
}

// speedup converts a vCPU share into an execution-time divisor: fractional
// shares slow execution linearly; shares above one help only the parallel
// fraction of the work (Amdahl's law), reproducing the sublinear scaling of
// Fig. 11b.
func speedup(share, parallelFrac float64) float64 {
	if share <= 0 {
		return 1e-9
	}
	if share <= 1 {
		return share
	}
	return 1 / ((1 - parallelFrac) + parallelFrac/share)
}

// instance is one warm function instance.
type instance struct {
	availableAt sim.Time // busy until this time
	expiresAt   sim.Time // deallocated if idle past this time
}

// Function is one deployed serverless function.
type Function struct {
	name      string
	cfg       Config
	handler   Handler
	instances []*instance
	chaos     *Chaos

	// Stats observable by experiments.
	Latency     metrics.Sample // end-to-end latency as seen from the caller
	Invocations metrics.Meter
	ColdStarts  metrics.Counter
	// FaultsInjected counts chaos-injected invocation failures.
	FaultsInjected metrics.Counter
	BilledGBs      float64 // accumulated GB-seconds
}

// Platform is a simulated FaaS provider bound to a clock.
type Platform struct {
	clock sim.Clock
	fns   map[string]*Function
	chaos *Chaos
}

// NewPlatform returns an empty platform scheduling on clock.
func NewPlatform(clock sim.Clock) *Platform {
	return &Platform{clock: clock, fns: make(map[string]*Function)}
}

// ErrNoSuchFunction is returned when invoking an unregistered function.
var ErrNoSuchFunction = errors.New("faas: no such function")

// ErrInjectedFault is the error delivered by chaos-injected invocation
// failures (see Chaos).
var ErrInjectedFault = errors.New("faas: injected fault")

// Chaos configures platform-level fault injection for scenario testing
// (internal/scenario). A nil Chaos on the platform disables injection
// entirely: the invocation path performs no extra random draws, so runs
// with chaos disabled are bit-identical to runs on a platform that never
// heard of chaos.
type Chaos struct {
	// FailureRate is the probability in [0, 1] that an invocation fails
	// with ErrInjectedFault after its modelled latency.
	FailureRate float64
	// LatencyFactor multiplies every invocation's end-to-end latency when
	// > 1 (platform slowdown / throttling).
	LatencyFactor float64
	// ExtraLatency, if non-nil, is added to every invocation's latency.
	ExtraLatency sim.Dist
	// ForceCold makes every invocation pay a cold start regardless of the
	// warm pool (correlated cold-start storms).
	ForceCold bool
}

// inflate applies the slowdown model to one invocation's latency,
// mirroring blob.Chaos.inflate so the two chaos layers share semantics.
func (c *Chaos) inflate(lat time.Duration, rng *rand.Rand) time.Duration {
	if c.LatencyFactor > 1 {
		lat = time.Duration(float64(lat) * c.LatencyFactor)
	}
	if c.ExtraLatency != nil {
		lat += c.ExtraLatency.Sample(rng)
	}
	return lat
}

// SetChaos installs (or, with nil, removes) the platform's fault injector.
func (p *Platform) SetChaos(c *Chaos) { p.chaos = c }

// Chaos returns the installed fault injector, or nil.
func (p *Platform) Chaos() *Chaos { return p.chaos }

// SetChaos installs (or, with nil, removes) a fault injector targeting
// this function only. A function-level injector fully overrides the
// platform-wide one for this function's invocations (settings do not
// merge), so a scenario can fail only `simulate-construct` while
// `generate-terrain` stays healthy.
func (f *Function) SetChaos(c *Chaos) { f.chaos = c }

// Chaos returns the function-level fault injector, or nil.
func (f *Function) Chaos() *Chaos { return f.chaos }

// SetFunctionChaos installs a fault injector on the named function. It
// reports whether the function exists.
func (p *Platform) SetFunctionChaos(name string, c *Chaos) bool {
	f := p.fns[name]
	if f == nil {
		return false
	}
	f.SetChaos(c)
	return true
}

// effectiveChaos returns the injector governing one invocation of f: the
// function-level injector when set, the platform-wide one otherwise.
func (p *Platform) effectiveChaos(f *Function) *Chaos {
	if f.chaos != nil {
		return f.chaos
	}
	return p.chaos
}

// EvictWarm deallocates every warm instance of the function, as a platform
// capacity reclaim would; the next invocations all pay cold starts. It
// returns the number of instances evicted.
func (f *Function) EvictWarm() int {
	n := len(f.instances)
	f.instances = nil
	return n
}

// EvictAllWarm evicts every warm instance of every deployed function and
// returns the total evicted.
func (p *Platform) EvictAllWarm() int {
	n := 0
	for _, f := range p.fns {
		n += f.EvictWarm()
	}
	return n
}

// Register deploys a function under the given name, replacing any previous
// deployment.
func (p *Platform) Register(name string, cfg Config, h Handler) *Function {
	f := &Function{name: name, cfg: cfg, handler: h}
	p.fns[name] = f
	return f
}

// Function returns the deployment for name, or nil.
func (p *Platform) Function(name string) *Function { return p.fns[name] }

// Invocation carries the outcome of one function invocation.
type Invocation struct {
	Response []byte
	Latency  time.Duration
	Cold     bool
	Err      error
}

// Invoke executes the named function asynchronously. The handler body runs
// immediately (it is deterministic Go code), but cb is delivered on the
// clock after the modelled invocation latency: network RTT + optional cold
// start + work-dependent execution time. There is no concurrency limit —
// "all generation requests can be invoked concurrently" (paper §III-D).
func (p *Platform) Invoke(name string, payload []byte, cb func(Invocation)) {
	f := p.fns[name]
	if f == nil {
		p.clock.After(0, func() { cb(Invocation{Err: fmt.Errorf("%w: %q", ErrNoSuchFunction, name)}) })
		return
	}
	now := p.clock.Now()
	rng := p.clock.RNG()

	resp, work := f.handler(payload)

	// Compute execution time from work units and the compute share.
	share := CPUShare(f.cfg.MemoryMB)
	execNs := float64(work) * float64(f.cfg.NsPerWorkUnit) / speedup(share, f.cfg.ParallelFrac)
	// Interference noise grows as the compute share shrinks.
	sigma := f.cfg.ExecNoiseSigma
	if share < 1 {
		sigma = f.cfg.ExecNoiseSigma / share
	}
	exec := time.Duration(execNs * math.Exp(sigma*rng.NormFloat64()))

	latency := f.cfg.NetRTT.Sample(rng) + exec
	chaos := p.effectiveChaos(f)
	// Always run the pool claim/prune, even under ForceCold: the storm
	// makes the invocation *behave* cold but must not let the warm pool
	// grow without bound (or emerge from the storm fully stocked).
	cold := !f.acquireWarm(now)
	if chaos != nil && chaos.ForceCold {
		cold = true
	}
	if cold {
		latency += f.cfg.ColdStart.Sample(rng)
		f.ColdStarts.Inc()
	}

	// Fault injection (scenario chaos layer). The chaos == nil fast path
	// draws no randomness, so disabled chaos is invisible to replay.
	failed := false
	if ch := chaos; ch != nil {
		latency = ch.inflate(latency, rng)
		if ch.FailureRate > 0 && rng.Float64() < ch.FailureRate {
			failed = true
			f.FaultsInjected.Inc()
		}
	}
	// Retire with the final (chaos-inflated) latency: the instance stays
	// busy for as long as the caller observes the invocation to take.
	f.retireInstance(now, latency, f.cfg.KeepAlive.Sample(rng))

	f.Invocations.Mark(now)
	f.Latency.Add(latency)
	// Failed invocations are still billed: the platform charges for the
	// execution it performed before the fault surfaced.
	f.BilledGBs += exec.Seconds() * float64(f.cfg.MemoryMB) / 1024

	p.clock.After(latency, func() {
		if failed {
			cb(Invocation{Latency: latency, Cold: cold, Err: ErrInjectedFault})
			return
		}
		cb(Invocation{Response: resp, Latency: latency, Cold: cold})
	})
}

// acquireWarm claims an idle warm instance if one exists at time now,
// removing expired instances along the way. It reports whether a warm
// instance was found.
func (f *Function) acquireWarm(now sim.Time) bool {
	best := -1
	live := f.instances[:0]
	for _, in := range f.instances {
		if in.expiresAt <= now {
			continue // deallocated
		}
		live = append(live, in)
		if in.availableAt <= now && (best == -1 || in.availableAt > live[best].availableAt) {
			best = len(live) - 1
		}
	}
	f.instances = live
	if best == -1 {
		return false
	}
	// Claim it: remove from the pool; retireInstance re-adds it when the
	// invocation completes.
	f.instances = append(f.instances[:best], f.instances[best+1:]...)
	return true
}

// retireInstance returns an instance (fresh or reused) to the warm pool
// after an invocation finishing at now+busy, with the given sampled idle
// lifetime before deallocation.
func (f *Function) retireInstance(now sim.Time, busy, keepAlive time.Duration) {
	done := now + busy
	f.instances = append(f.instances, &instance{availableAt: done, expiresAt: done + keepAlive})
}

// WarmInstances returns the number of non-expired instances at time now
// (including busy ones).
func (f *Function) WarmInstances(now sim.Time) int {
	n := 0
	for _, in := range f.instances {
		if in.expiresAt > now {
			n++
		}
	}
	return n
}

// BilledDollars returns the accumulated invocation cost: GB-seconds plus
// per-request fees.
func (f *Function) BilledDollars() float64 {
	return f.BilledGBs*DollarsPerGBSecond + float64(f.Invocations.Count())*DollarsPerRequest
}

// Name returns the function's deployment name.
func (f *Function) Name() string { return f.name }

// Config returns the function's deployment configuration.
func (f *Function) Configuration() Config { return f.cfg }
