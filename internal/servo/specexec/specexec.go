// Package specexec implements Servo's speculative execution unit for
// simulated constructs — the paper's core contribution (§III-C).
//
// Each active construct is simulated twice: locally on the game server (at
// the fixed tick rate) and remotely in a serverless function (as fast as
// the function can run, working ahead speculatively). The unit:
//
//   - offloads each construct to a FaaS function that returns a sequence
//     of future states;
//   - keeps simulating locally until speculative results arrive, hiding
//     (cold-start) latency from players;
//   - switches to applying buffered speculative states once they are
//     available, making the per-tick cost a cheap state merge instead of a
//     full simulation step;
//   - re-invokes the function `tick lead` ticks before the buffer runs
//     out, so that back-to-back invocations overlap with consumption and
//     efficiency approaches 1.0 (Fig. 8);
//   - tags every request with a logical modification timestamp and
//     discards replies whose timestamp is stale (player interactions
//     invalidate in-flight speculation);
//   - replays detected state loops indefinitely at near-zero cost
//     (§III-C1) until the construct is modified.
//
// The observable state sequence is *identical* to pure local simulation —
// speculation only changes where the work happens. Property tests assert
// this invariant.
package specexec

import (
	"time"

	"servo/internal/faas"
	"servo/internal/metrics"
	"servo/internal/sc"
)

// Config tunes the execution unit.
type Config struct {
	// TickLead is how many ticks before buffer exhaustion the next
	// invocation is issued (paper Fig. 8: 0 → median efficiency 0.84;
	// ≥ 10 → efficiency 1.0).
	TickLead int
	// StepsPerInvocation is the number of simulation steps each function
	// invocation computes (Fig. 8/9 sweep: 50, 100, 200).
	StepsPerInvocation int
	// DetectLoops enables the loop-detection cost optimisation (§III-C1).
	DetectLoops bool
}

// DefaultConfig matches the paper's best-performing configuration: 20-tick
// lead, 100-step invocations, loop detection on.
func DefaultConfig() Config {
	return Config{TickLead: 20, StepsPerInvocation: 100, DetectLoops: true}
}

// TickSource abstracts invocation of the remote simulation function; it is
// satisfied by *faas.Platform.
type TickSource interface {
	Invoke(name string, payload []byte, cb func(faas.Invocation))
}

// managed is the unit's bookkeeping for one construct.
type managed struct {
	id        uint64
	construct *sc.Construct // authoritative state at the last executed tick
	version   uint64        // logical modification timestamp

	// Speculative buffer: states for ticks bufBase+1 .. bufBase+len(buf).
	bufBase uint64
	buf     []sc.StateVector
	// Loop replay (§III-C1): when set, states repeat with loop.Period
	// starting at buffer index loop.EntryIndex.
	loop *sc.LoopInfo

	inFlight      bool
	flightVersion uint64
	flightBase    uint64 // base tick of the in-flight request
	flightSteps   int
	localDuring   int // local steps executed while this flight was pending
}

// Stats aggregates the unit's counters for experiment reports.
type Stats struct {
	LocalSteps   int64 // steps simulated on the server (fallback path)
	RemoteSteps  int64 // steps applied from speculative buffers
	ReplaySteps  int64 // steps served by loop replay
	Discarded    int64 // replies dropped due to version mismatch
	LoopsActive  int   // constructs currently in loop replay
	ConstructCnt int
}

// Manager is the speculative execution unit. It is not safe for concurrent
// use; the game loop owns it.
type Manager struct {
	platform TickSource
	fnName   string
	cfg      Config

	constructs map[uint64]*managed
	order      []uint64 // deterministic iteration order (insertion order)
	nextID     uint64
	tick       uint64

	// Efficiency records per-invocation efficiency (paper §III-C): the
	// fraction of delivered steps the server did not have to simulate
	// locally.
	Efficiency []float64
	// ApplyLatency samples, per applied invocation, how long the reply
	// took relative to its tick budget (diagnostic).
	Discards metrics.Counter

	stats Stats
}

// NewManager returns a unit that offloads constructs to the named function
// on platform.
func NewManager(platform TickSource, fnName string, cfg Config) *Manager {
	if cfg.StepsPerInvocation <= 0 {
		cfg.StepsPerInvocation = DefaultConfig().StepsPerInvocation
	}
	if cfg.TickLead < 0 {
		cfg.TickLead = 0
	}
	return &Manager{
		platform:   platform,
		fnName:     fnName,
		cfg:        cfg,
		constructs: make(map[uint64]*managed),
	}
}

// Add registers an activated construct and returns its id. The construct
// is owned by the manager from this point on; read it via Construct.
func (m *Manager) Add(c *sc.Construct) uint64 {
	m.nextID++
	id := m.nextID
	mc := &managed{id: id, construct: c, bufBase: m.tick}
	m.constructs[id] = mc
	m.order = append(m.order, id)
	// Offload immediately: the server simulates locally until the first
	// reply arrives (paper Fig. 6).
	m.invoke(mc)
	return id
}

// Remove deactivates a construct (e.g. its terrain was unloaded).
func (m *Manager) Remove(id uint64) {
	if _, ok := m.constructs[id]; !ok {
		return
	}
	delete(m.constructs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Construct returns the authoritative construct state for id, or nil.
func (m *Manager) Construct(id uint64) *sc.Construct {
	if mc := m.constructs[id]; mc != nil {
		return mc.construct
	}
	return nil
}

// Len returns the number of managed constructs.
func (m *Manager) Len() int { return len(m.constructs) }

// Modify applies a player modification to a construct: the mutation runs
// against the authoritative state, the logical timestamp is bumped, and all
// speculative state (buffer, loop, in-flight replies) is invalidated
// (paper §III-C).
func (m *Manager) Modify(id uint64, mutate func(*sc.Construct)) bool {
	mc := m.constructs[id]
	if mc == nil {
		return false
	}
	mutate(mc.construct)
	mc.version++
	mc.buf = nil
	mc.bufBase = m.tick
	mc.loop = nil
	// A new invocation from the modified state; the in-flight reply (if
	// any) will be discarded by its stale version.
	m.invoke(mc)
	return true
}

// TickWork reports the work performed by one game tick of the unit.
type TickWork struct {
	// WorkUnits is the total simulation work the server performed.
	WorkUnits int
	// LocalSteps and AppliedSteps split the constructs between fallback
	// local simulation and speculative application.
	LocalSteps, AppliedSteps, ReplaySteps int
}

// applyCostDivisor scales the cost of merging a speculative state relative
// to simulating the step locally: applying a precomputed state vector is a
// copy, roughly 20× cheaper than the BFS power propagation of a real step.
// Calibrated against Fig. 7b (Servo's tick box sits near Opencraft's p25).
const applyCostDivisor = 20

// Tick advances every managed construct by one game tick. For each
// construct the unit prefers, in order: loop replay, buffered speculative
// state, local simulation (fallback). It also issues refresh invocations
// for buffers within TickLead of exhaustion.
func (m *Manager) Tick() TickWork {
	m.tick++
	var w TickWork
	for _, id := range m.order {
		w.add(m.tickConstruct(m.constructs[id]))
	}
	return w
}

func (w *TickWork) add(o TickWork) {
	w.WorkUnits += o.WorkUnits
	w.LocalSteps += o.LocalSteps
	w.AppliedSteps += o.AppliedSteps
	w.ReplaySteps += o.ReplaySteps
}

func (m *Manager) tickConstruct(mc *managed) TickWork {
	var w TickWork
	idx := int(m.tick) - int(mc.bufBase) - 1
	replay := false
	if mc.loop != nil && idx >= len(mc.buf) && len(mc.buf) > 0 {
		// Loop replay (§III-C1): the state cycles; map the tick into the
		// recorded window. idx ≥ len(buf) ≥ EntryIndex+Period here.
		li := mc.loop
		idx = li.EntryIndex + (idx-li.EntryIndex)%li.Period
		replay = true
	}
	if idx >= 0 && idx < len(mc.buf) {
		// Speculative (or replayed) state available for this tick:
		// applying it is a cheap state merge instead of a full step.
		if err := mc.construct.SetState(mc.buf[idx]); err == nil {
			w.WorkUnits += estimateStepWork(mc.construct)/applyCostDivisor + 1
			if replay {
				w.ReplaySteps++
				m.stats.ReplaySteps++
			} else {
				w.AppliedSteps++
				m.stats.RemoteSteps++
				m.maybeRefresh(mc)
			}
			return w
		}
		// Layout changed without invalidation (defensive): drop all
		// speculation and fall back to local simulation.
		mc.buf, mc.loop = nil, nil
		mc.bufBase = m.tick - 1
	}
	// Fallback: local simulation at tick rate (paper Fig. 6).
	w.WorkUnits += mc.construct.Step()
	w.LocalSteps++
	m.stats.LocalSteps++
	if mc.inFlight {
		mc.localDuring++
	}
	// The local step advanced past any stale buffer prefix.
	m.consumeBufferPrefix(mc)
	m.maybeRefresh(mc)
	return w
}

// consumeBufferPrefix drops buffered states that are now in the past.
func (m *Manager) consumeBufferPrefix(mc *managed) {
	past := int(m.tick) - int(mc.bufBase)
	if past <= 0 || len(mc.buf) == 0 {
		return
	}
	if past >= len(mc.buf) {
		mc.bufBase += uint64(len(mc.buf))
		mc.buf = nil
		return
	}
	mc.buf = mc.buf[past:]
	mc.bufBase += uint64(past)
}

// maybeRefresh issues the next invocation when the buffer is within
// TickLead ticks of exhaustion (paper §III-C: "invoking further speculative
// execution several steps before the results are needed").
func (m *Manager) maybeRefresh(mc *managed) {
	if mc.inFlight || mc.loop != nil {
		return
	}
	remaining := int(mc.bufBase) + len(mc.buf) - int(m.tick)
	if remaining > m.cfg.TickLead {
		return
	}
	m.invoke(mc)
}

// invoke offloads the construct from the end of its known-state horizon:
// the last buffered state if any, else the current authoritative state
// (Fig. 6: "the second speculative execution can start at time 6, but
// simulate starting at state 8").
func (m *Manager) invoke(mc *managed) {
	if mc.inFlight {
		return
	}
	base := mc.construct.Clone()
	baseTick := m.tick
	if len(mc.buf) > 0 {
		if err := base.SetState(mc.buf[len(mc.buf)-1]); err != nil {
			return
		}
		baseTick = mc.bufBase + uint64(len(mc.buf))
	}
	req := Request{
		ConstructID: mc.id,
		Version:     mc.version,
		BaseTick:    baseTick,
		Steps:       uint32(m.cfg.StepsPerInvocation),
		DetectLoops: m.cfg.DetectLoops,
		Layout:      base.EncodeLayout(),
	}
	mc.inFlight = true
	mc.flightVersion = mc.version
	mc.flightBase = baseTick
	mc.flightSteps = m.cfg.StepsPerInvocation
	mc.localDuring = 0
	m.platform.Invoke(m.fnName, EncodeRequest(req), func(inv faas.Invocation) {
		m.onReply(mc.id, inv)
	})
}

// onReply integrates a function reply: stale versions are discarded
// (§III-C), fresh state sequences extend the speculative buffer, and the
// invocation's efficiency is recorded.
func (m *Manager) onReply(id uint64, inv faas.Invocation) {
	mc := m.constructs[id]
	if mc == nil {
		return // construct removed while in flight
	}
	mc.inFlight = false
	if inv.Err != nil {
		m.maybeRefresh(mc)
		return
	}
	reply, err := DecodeReply(inv.Response)
	if err != nil || reply.Version != mc.version {
		// Stale speculation: a player modified the construct after the
		// request was sent. Drop it and start over from current state.
		m.Discards.Inc()
		m.stats.Discarded++
		m.invoke(mc)
		return
	}
	delivered := len(reply.States)
	if delivered == 0 {
		return
	}
	// Steps the server already executed locally while waiting are wasted
	// remote work: efficiency = (delivered - wasted) / delivered.
	wasted := int(m.tick) - int(reply.BaseTick)
	if wasted < 0 {
		wasted = 0
	}
	if wasted > delivered {
		wasted = delivered
	}
	m.Efficiency = append(m.Efficiency, float64(delivered-wasted)/float64(delivered))

	// Install the sequence. Two cases:
	//
	//   - contiguous with the existing buffer (the request was issued
	//     from the buffer's last state, the tick-lead path): append, and
	//     rebase any loop entry index onto the merged buffer;
	//   - otherwise (first invocation, or the server out-ran a stale
	//     buffer): replace the buffer, keeping the full window when a
	//     loop was found (replay needs the whole cycle) and trimming the
	//     locally re-simulated prefix when not.
	contiguous := len(mc.buf) > 0 && reply.BaseTick == mc.bufBase+uint64(len(mc.buf))
	if reply.Loop != nil {
		if contiguous {
			mc.loop = &sc.LoopInfo{
				EntryIndex: len(mc.buf) + reply.Loop.EntryIndex,
				Period:     reply.Loop.Period,
			}
			mc.buf = append(mc.buf, reply.States...)
		} else {
			mc.buf = reply.States
			mc.bufBase = reply.BaseTick
			mc.loop = reply.Loop
		}
		return
	}
	if contiguous {
		mc.buf = append(mc.buf, reply.States...)
		m.maybeRefresh(mc)
		return
	}
	if wasted >= delivered {
		// Entirely stale; go again from the newest state.
		m.maybeRefresh(mc)
		return
	}
	mc.buf = reply.States[wasted:]
	mc.bufBase = reply.BaseTick + uint64(wasted)
	m.maybeRefresh(mc)
}

// estimateStepWork approximates the work of one local simulation step
// without executing it (grid scan plus typical propagation).
func estimateStepWork(c *sc.Construct) int {
	w, h := c.Size()
	return w*h + c.BlockCount()*2
}

// Stats returns a snapshot of the unit's counters.
func (m *Manager) Snapshot() Stats {
	s := m.stats
	s.ConstructCnt = len(m.constructs)
	for _, mc := range m.constructs {
		if mc.loop != nil {
			s.LoopsActive++
		}
	}
	return s
}

// MedianEfficiency returns the median per-invocation efficiency, or -1 if
// no invocations completed.
func (m *Manager) MedianEfficiency() float64 {
	if len(m.Efficiency) == 0 {
		return -1
	}
	s := metrics.NewSample(len(m.Efficiency))
	for _, e := range m.Efficiency {
		s.Add(time.Duration(e * 1e9))
	}
	return float64(s.Percentile(50)) / 1e9
}
