// Package bench is the machine-readable performance trajectory: a small
// suite of deterministic-load benchmarks whose headline numbers are
// recorded as a schema'd BENCH_<pr>.json artifact checked in with each
// PR, plus the comparison gate (`servo-bench -diff`, `make benchdiff`)
// that fails CI when a headline metric regresses more than the tolerance
// against the last recorded file.
//
// Two kinds of metric coexist. Wall metrics (ns/op, allocs/op,
// bots-per-wall-second) measure real machine time and vary with
// hardware, so the gate compares them with a generous relative
// tolerance. Virtual metrics (tick p99, handoff p99 in virtual
// milliseconds) come off the simulation clock and are bit-deterministic
// for a given seed — they move only when the simulated system itself
// changes.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
)

// Schema identifies the artifact format.
const Schema = "servo-bench/v1"

// DefaultTolerance is the relative regression tolerance of the diff
// gate: a gated metric may drift up to 20% in its worse direction.
const DefaultTolerance = 0.20

// Better directions.
const (
	Lower  = "lower"
	Higher = "higher"
)

// Metric is one recorded headline number.
type Metric struct {
	Name string `json:"name"`
	Unit string `json:"unit"`
	// Better is "lower" or "higher": which direction is an improvement.
	Better string `json:"better"`
	// Gate marks the metric as regression-gated; ungated metrics are
	// recorded context (e.g. the full-rescan baseline the incremental
	// scan is measured against).
	Gate  bool    `json:"gate"`
	Value float64 `json:"value"`
}

// File is one recorded benchmark artifact (BENCH_<pr>.json).
type File struct {
	Schema string `json:"schema"`
	// PR numbers the change the artifact was recorded with.
	PR int `json:"pr"`
	// Go is the toolchain that produced the wall metrics.
	Go      string   `json:"go"`
	Metrics []Metric `json:"metrics"`
}

// NewFile returns an empty artifact stamped with the current toolchain.
func NewFile(pr int) File {
	return File{Schema: Schema, PR: pr, Go: runtime.Version()}
}

// Add appends a metric.
func (f *File) Add(name, unit, better string, gate bool, value float64) {
	f.Metrics = append(f.Metrics, Metric{Name: name, Unit: unit, Better: better, Gate: gate, Value: value})
}

// Metric returns the named metric.
func (f *File) Metric(name string) (Metric, bool) {
	for _, m := range f.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Encode renders the artifact as stable, human-diffable JSON.
func (f *File) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Decode parses an artifact and checks its schema.
func Decode(data []byte) (File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("bench: %w", err)
	}
	if f.Schema != Schema {
		return File{}, fmt.Errorf("bench: schema %q, want %q", f.Schema, Schema)
	}
	return f, nil
}

// ReadFile loads an artifact from disk.
func ReadFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	f, err := Decode(data)
	if err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// LatestArtifact returns the checked-in BENCH_<n>.json with the highest
// n under dir, or "" when none exists.
func LatestArtifact(dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best, bestN := "", -1
	for _, e := range entries {
		name := e.Name()
		var n int
		if _, err := fmt.Sscanf(name, "BENCH_%d.json", &n); err != nil || !strings.HasSuffix(name, ".json") {
			continue
		}
		if n > bestN {
			best, bestN = name, n
		}
	}
	return best
}

// Best merges two runs of the suite, keeping each metric's better value
// (direction-aware). The diff gate retries flapping wall measurements
// through this: a real code regression survives re-measurement, machine
// noise does not. Metrics only one side recorded pass through; a/b's
// ordering and metadata come from a.
func Best(a, b File) File {
	out := a
	out.Metrics = append([]Metric(nil), a.Metrics...)
	for i, m := range out.Metrics {
		bm, ok := b.Metric(m.Name)
		if !ok {
			continue
		}
		if (m.Better == Higher) == (bm.Value > m.Value) && bm.Value != m.Value {
			out.Metrics[i].Value = bm.Value
		}
	}
	for _, bm := range b.Metrics {
		if _, ok := a.Metric(bm.Name); !ok {
			out.Metrics = append(out.Metrics, bm)
		}
	}
	return out
}

// Regression is one gated metric that moved past tolerance in its worse
// direction.
type Regression struct {
	Name     string
	Old, New float64
	// Frac is the relative worsening (0.25 = 25% worse).
	Frac float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %g -> %g (%.1f%% worse)", r.Name, r.Old, r.New, r.Frac*100)
}

// Compare diffs cur against old and returns every gated regression
// beyond tol (relative, direction-aware). Metrics missing from either
// side are skipped: an old artifact predating a metric must not fail the
// gate, and a dropped metric is a review question, not a CI failure.
func Compare(old, cur File, tol float64) []Regression {
	var regs []Regression
	for _, om := range old.Metrics {
		if !om.Gate {
			continue
		}
		nm, ok := cur.Metric(om.Name)
		if !ok {
			continue
		}
		worse := nm.Value - om.Value // lower-better: growth is worse
		if om.Better == Higher {
			worse = om.Value - nm.Value
		}
		if worse <= 0 {
			continue
		}
		frac := worse / om.Value
		if om.Value == 0 {
			// Nothing to scale by: any worsening of a zero baseline (e.g.
			// allocs/op climbing off zero) compares absolutely against tol.
			frac = worse
		}
		if om.Value < 0 {
			frac = -frac
		}
		if frac > tol {
			regs = append(regs, Regression{Name: om.Name, Old: om.Value, New: nm.Value, Frac: frac})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Frac > regs[j].Frac })
	return regs
}
