package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLoopRunsEventsInTimestampOrder(t *testing.T) {
	l := NewLoop(1)
	var got []int
	l.After(30*time.Millisecond, func() { got = append(got, 3) })
	l.After(10*time.Millisecond, func() { got = append(got, 1) })
	l.After(20*time.Millisecond, func() { got = append(got, 2) })
	l.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if l.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", l.Now())
	}
}

func TestLoopFIFOAmongEqualTimestamps(t *testing.T) {
	l := NewLoop(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	l.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-timestamp events ran out of order: %v", got)
		}
	}
}

func TestLoopNestedScheduling(t *testing.T) {
	l := NewLoop(1)
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			l.After(50*time.Millisecond, tick)
		}
	}
	l.After(0, tick)
	l.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if l.Now() != 200*time.Millisecond {
		t.Fatalf("Now() = %v, want 200ms", l.Now())
	}
}

func TestLoopRunUntilStopsAtDeadline(t *testing.T) {
	l := NewLoop(1)
	var ran []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		l.At(d, func() { ran = append(ran, d) })
	}
	l.RunUntil(25 * time.Millisecond)
	if len(ran) != 2 {
		t.Fatalf("ran %d events before deadline, want 2", len(ran))
	}
	if l.Now() != 25*time.Millisecond {
		t.Fatalf("Now() = %v, want deadline 25ms", l.Now())
	}
	if l.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", l.Pending())
	}
}

func TestLoopPastEventsClampToNow(t *testing.T) {
	l := NewLoop(1)
	l.RunUntil(100 * time.Millisecond)
	fired := false
	l.At(10*time.Millisecond, func() { fired = true })
	l.Run()
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
	if l.Now() != 100*time.Millisecond {
		t.Fatalf("clock moved backwards to %v", l.Now())
	}
}

func TestLoopDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		l := NewLoop(seed)
		var out []time.Duration
		var step func()
		step = func() {
			d := Uniform{Low: time.Millisecond, High: 10 * time.Millisecond}.Sample(l.RNG())
			out = append(out, l.Now())
			if len(out) < 100 {
				l.After(d, step)
			}
		}
		l.After(0, step)
		l.Run()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestRealClockDeliversCallbacks(t *testing.T) {
	c := NewRealClock(1)
	defer c.Close()
	done := make(chan struct{})
	c.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real clock callback never fired")
	}
	if c.Now() <= 0 {
		t.Fatal("real clock did not advance")
	}
}

func TestRealClockCloseStopsPending(t *testing.T) {
	c := NewRealClock(1)
	fired := make(chan struct{}, 1)
	c.After(time.Hour, func() { fired <- struct{}{} })
	c.Close()
	select {
	case <-fired:
		t.Fatal("callback fired after Close")
	default:
	}
}

func TestDistributionsNonNegative(t *testing.T) {
	dists := []Dist{
		Constant(5 * time.Millisecond),
		Uniform{Low: 0, High: time.Second},
		Normal{Mu: time.Millisecond, Sigma: 10 * time.Millisecond}, // heavily truncated
		LogNormal{Scale: time.Millisecond, Mu: 2, Sigma: 1.5},
		Shifted{Base: Normal{Mu: 0, Sigma: time.Millisecond}, Offset: time.Millisecond},
		Mixture{Body: Constant(time.Millisecond), Tail: Constant(time.Second), P: 0.5},
		Scaled{Base: Constant(time.Millisecond), Factor: 2.5},
	}
	l := NewLoop(7)
	for _, d := range dists {
		for i := 0; i < 1000; i++ {
			if v := d.Sample(l.RNG()); v < 0 {
				t.Fatalf("%T sampled negative duration %v", d, v)
			}
		}
	}
}

func TestLogNormalMeanMatchesEmpirical(t *testing.T) {
	d := LogNormal{Scale: time.Millisecond, Mu: 3, Sigma: 0.5}
	l := NewLoop(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(l.RNG()))
	}
	emp := sum / n
	ana := float64(d.Mean())
	if ratio := emp / ana; ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("empirical mean %v deviates from analytic %v (ratio %.3f)",
			time.Duration(emp), time.Duration(ana), ratio)
	}
}

func TestMixtureTailProbability(t *testing.T) {
	d := Mixture{Body: Constant(time.Millisecond), Tail: Constant(time.Second), P: 0.1}
	l := NewLoop(11)
	tails := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if d.Sample(l.RNG()) == time.Second {
			tails++
		}
	}
	frac := float64(tails) / n
	if frac < 0.09 || frac > 0.11 {
		t.Fatalf("tail fraction = %.4f, want ~0.10", frac)
	}
}

func TestValidateRejectsBadParameters(t *testing.T) {
	bad := []Dist{
		Constant(-time.Second),
		Uniform{Low: time.Second, High: 0},
		Mixture{Body: Constant(0), Tail: Constant(0), P: 1.5},
		Scaled{Base: Constant(0), Factor: -1},
		Shifted{Base: Uniform{Low: time.Second, High: 0}},
	}
	for _, d := range bad {
		if err := Validate(d); err == nil {
			t.Errorf("Validate(%#v) = nil, want error", d)
		}
	}
	good := []Dist{
		Constant(time.Second),
		Uniform{Low: 0, High: time.Second},
		Mixture{Body: Constant(0), Tail: Constant(time.Second), P: 0.01},
	}
	for _, d := range good {
		if err := Validate(d); err != nil {
			t.Errorf("Validate(%#v) = %v, want nil", d, err)
		}
	}
}

func TestUniformSampleWithinBoundsQuick(t *testing.T) {
	l := NewLoop(3)
	f := func(lo, span uint32) bool {
		u := Uniform{Low: time.Duration(lo), High: time.Duration(lo) + time.Duration(span)}
		v := u.Sample(l.RNG())
		return v >= u.Low && v <= u.High
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
