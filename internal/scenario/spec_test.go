package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimal returns a parseable scenario body with the given extra
// top-level JSON fields spliced in.
func minimal(extra string) string {
	body := `"name": "t", "duration": "30s"`
	if extra != "" {
		body += ", " + extra
	}
	return "{" + body + "}"
}

func TestParseRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string
	}{
		{"missing name", `{"duration": "30s"}`, "name is required"},
		{"missing duration", `{"name": "t"}`, "duration is required"},
		{"negative duration", `{"name": "t", "duration": "-5s"}`, "negative"},
		{"numeric duration", `{"name": "t", "duration": 30}`, `durations must be strings`},
		{"warmup too long", minimal(`"warmup": "30s"`), "warmup 30s must be shorter"},
		{"unknown field", minimal(`"flet": []`), "unknown field"},
		{"bad world type", minimal(`"world": {"type": "spherical"}`), `world.type must be "flat" or "default"`},
		{"bad profile", minimal(`"world": {"profile": "fortnite"}`), "world.profile must be"},
		{"storage tier without storage", minimal(`"backend": {"storage_tier": "premium"}`), "backend.storage is false"},
		{"bad storage tier", minimal(`"backend": {"storage": true, "storage_tier": "glacier"}`), "storage_tier must be"},
		{"storage and local store", minimal(`"backend": {"storage": true, "local_store": true}`), "mutually exclusive"},
		{"spec_exec without constructs", minimal(`"backend": {"spec_exec": {"tick_lead": 5}}`), "backend.constructs is false"},
		{"construct count zero", minimal(`"constructs": [{"count": 0}]`), "count must be positive"},
		{"construct too small", minimal(`"constructs": [{"count": 1, "blocks": 4}]`), "blocks must be >= 12"},
		{"fleet count zero", minimal(`"fleet": [{"count": 0}]`), "count must be positive"},
		{"fleet unknown behavior", minimal(`"fleet": [{"count": 1, "behavior": "Z9"}]`), `unknown behavior "Z9"`},
		{"fleet joins too late", minimal(`"fleet": [{"count": 1, "join_at": "40s"}]`), "past the scenario duration"},
		{"fleet leaves before joining", minimal(`"fleet": [{"count": 1, "join_at": "10s", "leave_at": "5s"}]`), "leave_at 5s must be after join_at"},
		{"fleet leaves past duration", minimal(`"fleet": [{"count": 1, "join_at": "10s", "leave_at": "5m"}]`), "leave_at 5m0s is past the scenario duration"},
		{"stress without bots", minimal(`"stress": {"bots": 0}`), "stress.bots must be positive"},
		{"stress unknown behavior", minimal(`"stress": {"bots": 5, "behaviors": {"XX": 1}}`), `unknown behavior "XX"`},
		{"stress bad weight", minimal(`"stress": {"bots": 5, "behaviors": {"A": -1}}`), "weight must be positive"},
		{"churn without session", minimal(`"stress": {"bots": 5, "churn": {}}`), "mean_session is required"},
		{"unknown event kind", minimal(`"events": [{"at": "1s", "kind": "meteor_strike"}]`), `unknown event kind "meteor_strike"`},
		{"stray field for kind", minimal(`"events": [{"at": "1s", "kind": "disconnect", "count": 5, "behavior": "R"}]`), `field "behavior" does not apply`},
		{"stray chaos knob", minimal(`"backend": {"terrain": true}, "events": [{"at": "1s", "kind": "cold_start_storm", "failure_rate": 0.5}]`), `field "failure_rate" does not apply`},
		{"out of order events", minimal(`"events": [
			{"at": "10s", "kind": "flash_crowd", "count": 1},
			{"at": "5s", "kind": "disconnect", "count": 1}]`), "timestamps must be non-decreasing"},
		{"event past duration", minimal(`"events": [{"at": "10m", "kind": "flash_crowd", "count": 1}]`), "past the scenario duration"},
		{"flash crowd without count", minimal(`"events": [{"at": "1s", "kind": "flash_crowd"}]`), "count must be positive"},
		{"faas chaos without functions", minimal(`"events": [{"at": "1s", "kind": "faas_chaos", "duration": "5s", "failure_rate": 0.5}]`), "no serverless function backend"},
		{"faas chaos without knobs", minimal(`"backend": {"constructs": true}, "events": [{"at": "1s", "kind": "faas_chaos", "duration": "5s"}]`), "set failure_rate, latency_factor, and/or force_cold"},
		{"faas chaos bad rate", minimal(`"backend": {"constructs": true}, "events": [{"at": "1s", "kind": "faas_chaos", "duration": "5s", "failure_rate": 1.5}]`), "failure_rate must be in [0, 1]"},
		{"storage chaos without store", minimal(`"events": [{"at": "1s", "kind": "storage_chaos", "duration": "5s", "error_rate": 0.1}]`), "no storage backend"},
		{"overlapping chaos windows", minimal(`"backend": {"constructs": true}, "events": [
			{"at": "1s", "kind": "faas_chaos", "duration": "10s", "failure_rate": 0.5},
			{"at": "5s", "kind": "faas_chaos", "duration": "2s", "failure_rate": 0.1}]`), "overlaps the previous faas_chaos window"},
		{"flip without storage", minimal(`"events": [{"at": "1s", "kind": "flip_storage", "target": "local"}]`), "requires backend.storage"},
		{"flip bad target", minimal(`"backend": {"storage": true}, "events": [{"at": "1s", "kind": "flip_storage", "target": "s3"}]`), `target must be "local" or "serverless"`},
		{"unknown metric", minimal(`"assertions": [{"metric": "fps", "op": "<", "value": 1}]`), `unknown metric "fps"`},
		{"metric needs storage", minimal(`"assertions": [{"metric": "cache_hit_rate", "op": ">", "value": 0}]`), "requires backend.storage"},
		{"metric needs constructs", minimal(`"assertions": [{"metric": "spec_efficiency_median", "op": ">", "value": 0}]`), "requires backend.constructs"},
		{"bad op", minimal(`"assertions": [{"metric": "ticks_total", "op": "==", "value": 1}]`), "op must be one of"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted invalid spec %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseAppliesDefaults(t *testing.T) {
	spec, err := Parse([]byte(minimal(`
		"fleet": [{"count": 3}],
		"constructs": [{"count": 2}],
		"stress": {"bots": 4, "churn": {"mean_session": "10s"}},
		"events": [
			{"at": "1s", "kind": "flash_crowd", "count": 5},
			{"at": "2s", "kind": "spawn_constructs", "count": 1}
		]`)))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 1 {
		t.Errorf("seed default = %d, want 1", spec.Seed)
	}
	if spec.Warmup.D() != 6*time.Second { // min(10s, 30s/5)
		t.Errorf("warmup default = %s, want 6s", spec.Warmup)
	}
	if spec.World.Type != "flat" || spec.World.Profile != "servo" {
		t.Errorf("world defaults = %+v", spec.World)
	}
	if spec.Fleet[0].Behavior != "A" {
		t.Errorf("fleet behavior default = %q, want A", spec.Fleet[0].Behavior)
	}
	if spec.Constructs[0].Blocks != 250 {
		t.Errorf("construct blocks default = %d, want 250", spec.Constructs[0].Blocks)
	}
	if spec.Stress.Ramp.D() != 30*time.Second/4 {
		t.Errorf("stress ramp default = %s, want duration/4", spec.Stress.Ramp)
	}
	if len(spec.Stress.Behaviors) != 1 || spec.Stress.Behaviors["A"] != 1 {
		t.Errorf("stress behaviors default = %v", spec.Stress.Behaviors)
	}
	if spec.Stress.Churn.MeanPause.D() != 5*time.Second {
		t.Errorf("churn pause default = %s, want 5s", spec.Stress.Churn.MeanPause)
	}
	if spec.Events[0].Behavior != "R" {
		t.Errorf("flash crowd behavior default = %q, want R", spec.Events[0].Behavior)
	}
	if spec.Events[1].Blocks != 250 {
		t.Errorf("spawn blocks default = %d, want 250", spec.Events[1].Blocks)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	if _, err := Parse([]byte(minimal("") + ` {"name": "u"}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestStorageTierDefaultsWithStorage(t *testing.T) {
	spec, err := Parse([]byte(minimal(`"backend": {"storage": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Backend.StorageTier != "premium" {
		t.Errorf("storage tier default = %q, want premium", spec.Backend.StorageTier)
	}
}

func TestColdStartStormDurationDefault(t *testing.T) {
	spec, err := Parse([]byte(minimal(`"backend": {"terrain": true},
		"events": [{"at": "1s", "kind": "cold_start_storm"}]`)))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Events[0].Duration.D() != 30*time.Second {
		t.Errorf("storm duration default = %s, want 30s", spec.Events[0].Duration)
	}
}
