package mve

import (
	"time"

	"servo/internal/sc"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/world"
)

// SCBackend simulates the instance's active simulated constructs. The
// baselines use LocalSC; Servo plugs in the speculative execution unit
// (internal/servo/specexec adapted in internal/core).
type SCBackend interface {
	// Add activates a construct and returns its id.
	Add(c *sc.Construct) uint64
	// Remove deactivates a construct.
	Remove(id uint64)
	// Modify applies a player modification (invalidating any speculative
	// state). It reports whether the construct exists.
	Modify(id uint64, mutate func(*sc.Construct)) bool
	// Tick advances all constructs by one game tick and returns the
	// work units executed on the game loop.
	Tick(tick uint64) SCTickWork
	// Count returns the number of active constructs.
	Count() int
}

// SCTickWork reports one tick of SC simulation.
type SCTickWork struct {
	WorkUnits    int // units executed on the game loop
	LocalSteps   int
	AppliedSteps int // speculative states applied (Servo only)
	Simulated    bool
}

// LocalSC is the baselines' construct backend: every construct is stepped
// on the game loop. Matching the paper's observation about both baselines,
// constructs are stepped every other tick when everyOther is set.
type LocalSC struct {
	everyOther bool
	constructs map[uint64]*sc.Construct
	nextID     uint64
}

var _ SCBackend = (*LocalSC)(nil)

// NewLocalSC returns a local construct backend.
func NewLocalSC(everyOther bool) *LocalSC {
	return &LocalSC{everyOther: everyOther, constructs: make(map[uint64]*sc.Construct)}
}

// Add implements SCBackend.
func (l *LocalSC) Add(c *sc.Construct) uint64 {
	l.nextID++
	l.constructs[l.nextID] = c
	return l.nextID
}

// Remove implements SCBackend.
func (l *LocalSC) Remove(id uint64) { delete(l.constructs, id) }

// Modify implements SCBackend.
func (l *LocalSC) Modify(id uint64, mutate func(*sc.Construct)) bool {
	c, ok := l.constructs[id]
	if !ok {
		return false
	}
	mutate(c)
	return true
}

// Tick implements SCBackend.
func (l *LocalSC) Tick(tick uint64) SCTickWork {
	var w SCTickWork
	if l.everyOther && tick%2 == 1 {
		return w
	}
	for _, c := range l.constructs {
		w.WorkUnits += c.Step()
		w.LocalSteps++
	}
	w.Simulated = len(l.constructs) > 0
	return w
}

// Count implements SCBackend.
func (l *LocalSC) Count() int { return len(l.constructs) }

// Construct returns the construct with the given id (for tests).
func (l *LocalSC) Construct(id uint64) *sc.Construct { return l.constructs[id] }

// --- Terrain backends --------------------------------------------------------

// TerrainBackend produces chunks on demand. The game loop requests chunks
// entering view distance and drains completed chunks each tick.
type TerrainBackend interface {
	// Request asks for the chunk at pos to be generated or loaded.
	// Duplicate requests for in-flight positions are ignored.
	Request(pos world.ChunkPos)
	// Drain returns chunks that completed since the last call.
	Drain() []*world.Chunk
	// DrainAppend appends the chunks that completed since the last call
	// to dst and returns it — the zero-alloc sibling of Drain, letting
	// the game loop reuse one drain slice across ticks.
	DrainAppend(dst []*world.Chunk) []*world.Chunk
	// Load reports backlog for the cost model: busy workers (local
	// generation competing with the loop) and queued requests.
	Load() (busyWorkers, queued int)
}

// TerrainFocus is an optional TerrainBackend extension: each demand scan
// the server hands it the current avatar positions, so backends with a
// bounded dispatch window (the serverless backend's nearest-player-first
// queue) can prioritise the chunks players are about to see.
type TerrainFocus interface {
	SetFocus(positions []world.BlockPos)
}

// LocalTerrain generates chunks on a bounded local worker pool, modelling
// Opencraft's in-process generation: throughput is capped by the pool and
// busy workers interfere with the game loop (§II-A).
type LocalTerrain struct {
	clock   sim.Clock
	gen     terrain.Generator
	workers int
	// nsPerUnit is the per-work-unit generation speed of one local
	// worker. Calibrated so a default-world chunk takes ~300 ms: an
	// 8-worker pool sustains ~26 chunks/s, enough for players at 1–2
	// blocks/s but not 6+ (Fig. 10).
	nsPerUnit time.Duration

	busy      int
	queue     []world.ChunkPos
	requested map[world.ChunkPos]bool
	done      []*world.Chunk
}

var _ TerrainBackend = (*LocalTerrain)(nil)

// DefaultLocalWorkers is the size of the baseline generation pool.
const DefaultLocalWorkers = 8

// defaultLocalGenNsPerUnit yields ~270 ms per default chunk (12800 units),
// giving the 8-worker pool ~30 chunks/s of throughput (Fig. 10 anchor:
// keeps up with 5 players below 6 blocks/s, falls behind above).
const defaultLocalGenNsPerUnit = 21 * time.Microsecond

// NewLocalTerrain returns a local-generation backend with the default pool
// size and speed.
func NewLocalTerrain(clock sim.Clock, gen terrain.Generator) *LocalTerrain {
	return &LocalTerrain{
		clock:     clock,
		gen:       gen,
		workers:   DefaultLocalWorkers,
		nsPerUnit: defaultLocalGenNsPerUnit,
		requested: make(map[world.ChunkPos]bool),
	}
}

// Request implements TerrainBackend.
func (l *LocalTerrain) Request(pos world.ChunkPos) {
	if l.requested[pos] {
		return
	}
	l.requested[pos] = true
	l.queue = append(l.queue, pos)
	l.dispatch()
}

// dispatch starts queued generations while workers are free.
func (l *LocalTerrain) dispatch() {
	for l.busy < l.workers && len(l.queue) > 0 {
		pos := l.queue[0]
		l.queue = l.queue[1:]
		l.busy++
		c := l.gen.Generate(pos) // real generation; time modelled below
		genTime := time.Duration(c.GenWork) * l.nsPerUnit
		// ±20% uniform speed variance between generations.
		genTime += time.Duration(l.clock.RNG().Int63n(int64(genTime)/5)) - genTime/10
		l.clock.After(genTime, func() {
			l.busy--
			l.done = append(l.done, c)
			l.dispatch()
		})
	}
}

// Drain implements TerrainBackend.
func (l *LocalTerrain) Drain() []*world.Chunk {
	out := l.done
	l.done = nil
	return out
}

// DrainAppend implements TerrainBackend; the backend's done list is reset
// in place so its backing array is reused too.
func (l *LocalTerrain) DrainAppend(dst []*world.Chunk) []*world.Chunk {
	dst = append(dst, l.done...)
	for i := range l.done {
		l.done[i] = nil
	}
	l.done = l.done[:0]
	return dst
}

// Load implements TerrainBackend.
func (l *LocalTerrain) Load() (int, int) { return l.busy, len(l.queue) }
