// Package blob simulates serverless (managed) object storage — Azure Blob
// Storage and AWS S3 in the paper. The store holds real bytes in memory;
// only the request latency is modelled, with the distribution shapes the
// paper measures in Fig. 3 and Fig. 13:
//
//   - a lognormal latency body whose median sits in the low tens of
//     milliseconds;
//   - a heavy outlier tail reaching hundreds of milliseconds ("outliers
//     reach 500 ms latency", §IV-F), more pronounced on the Standard tier
//     than on Premium (Fig. 3);
//   - per-operation and per-byte billing meters.
//
// A Local tier models the baseline's local-disk persistence: sub-
// millisecond latency with rare small outliers (§IV-F: local storage
// completes 99.9% of requests within 16 ms and never exceeds 123 ms).
package blob

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"servo/internal/metrics"
	"servo/internal/sim"
)

// Tier selects a latency/cost model.
type Tier int

// Storage tiers. TierLocal models the baseline's local disk; TierPremium
// and TierStandard model the two Azure Blob Storage plans of Fig. 3.
const (
	TierLocal Tier = iota + 1
	TierPremium
	TierStandard
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierLocal:
		return "local"
	case TierPremium:
		return "premium"
	case TierStandard:
		return "standard"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Model holds the latency distributions of one tier.
type Model struct {
	Read  sim.Dist
	Write sim.Dist
	// BytesPerSec is the transfer bandwidth added on top of the
	// first-byte latency; larger objects (terrain chunks) take visibly
	// longer than small ones (player data), as in the paper's Fig. 3.
	BytesPerSec float64
}

// transferTime returns the size-dependent component of an operation.
func (m Model) transferTime(n int) time.Duration {
	if m.BytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.BytesPerSec * float64(time.Second))
}

// ModelFor returns the calibrated latency model for a tier.
//
// Calibration anchors (paper Fig. 3, Fig. 13, §IV-F):
//   - local: p50 ≈ 1 ms, p99.9 ≈ 16 ms, max ≈ 123 ms;
//   - premium: p50 ≈ 25 ms, p99 ≈ 5× local p99, p99.9 ≈ 226 ms,
//     outliers to ~500 ms;
//   - standard: p50 ≈ 45 ms with a wider body and outliers past 750 ms
//     (Fig. 3 shows terrain downloads breaching the 100 ms FPS threshold
//     routinely on Standard).
func ModelFor(tier Tier) Model {
	switch tier {
	case TierLocal:
		return Model{
			Read: sim.Mixture{
				Body: sim.LogNormal{Scale: time.Millisecond, Mu: 0.0, Sigma: 0.5},
				Tail: sim.Uniform{Low: 10 * time.Millisecond, High: 123 * time.Millisecond},
				P:    0.0008,
			},
			Write:       sim.LogNormal{Scale: time.Millisecond, Mu: 0.5, Sigma: 0.5},
			BytesPerSec: 400e6, // NVMe-class local disk
		}
	case TierPremium:
		return Model{
			Read: sim.Mixture{
				Body: sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 2.6, Sigma: 0.55}, Offset: 8 * time.Millisecond},
				Tail: sim.Uniform{Low: 150 * time.Millisecond, High: 520 * time.Millisecond},
				P:    0.002,
			},
			Write:       sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 3.0, Sigma: 0.5}, Offset: 10 * time.Millisecond},
			BytesPerSec: 80e6, // premium-tier throughput
		}
	default: // TierStandard
		return Model{
			Read: sim.Mixture{
				Body: sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 3.3, Sigma: 0.7}, Offset: 10 * time.Millisecond},
				Tail: sim.Uniform{Low: 250 * time.Millisecond, High: 1000 * time.Millisecond},
				P:    0.004,
			},
			Write:       sim.Shifted{Base: sim.LogNormal{Scale: time.Millisecond, Mu: 3.6, Sigma: 0.6}, Offset: 12 * time.Millisecond},
			BytesPerSec: 25e6, // standard-tier throughput
		}
	}
}

// Billing rates approximating Azure Blob hot-tier pricing: per 10k
// operations and per GB transferred.
const (
	dollarsPerReadOp    = 0.004 / 10000
	dollarsPerWriteOp   = 0.05 / 10000
	dollarsPerGBEgress  = 0.087
	dollarsPerGBStorage = 0.0184 // per month; charged on peak usage
)

// ErrNotFound is returned for reads of missing keys.
var ErrNotFound = errors.New("blob: object not found")

// ErrInjectedFault is the error delivered by chaos-injected request
// failures (see Chaos).
var ErrInjectedFault = errors.New("blob: injected fault")

// Chaos configures storage-level fault injection for scenario testing
// (internal/scenario): service brownouts (latency inflation) and elevated
// error rates. A nil Chaos on the store disables injection entirely; the
// request path then performs no extra random draws, so runs with chaos
// disabled are bit-identical to runs on a store that never heard of chaos.
type Chaos struct {
	// ReadErrorRate / WriteErrorRate are the probabilities in [0, 1] that
	// an operation fails with ErrInjectedFault after its modelled latency.
	ReadErrorRate  float64
	WriteErrorRate float64
	// LatencyFactor multiplies every operation's latency when > 1
	// (service brownout).
	LatencyFactor float64
	// ExtraLatency, if non-nil, is added to every operation's latency.
	ExtraLatency sim.Dist
}

// inflate applies the brownout latency model to one operation.
func (c *Chaos) inflate(lat time.Duration, rng *rand.Rand) time.Duration {
	if c.LatencyFactor > 1 {
		lat = time.Duration(float64(lat) * c.LatencyFactor)
	}
	if c.ExtraLatency != nil {
		lat += c.ExtraLatency.Sample(rng)
	}
	return lat
}

// SetChaos installs (or, with nil, removes) the store's fault injector.
func (s *Store) SetChaos(c *Chaos) { s.chaos = c }

// Chaos returns the installed fault injector, or nil.
func (s *Store) Chaos() *Chaos { return s.chaos }

// Store is a simulated object store bound to a clock.
type Store struct {
	clock   sim.Clock
	model   Model
	tier    Tier
	objects map[string][]byte
	chaos   *Chaos
	putGen  map[string]uint64 // write generations for PutRetrying chains
	// durable holds PutDurablyThen callbacks awaiting the next successful
	// install for their key, whichever write chain delivers it.
	durable map[string][]func()

	// Metrics observable by experiments.
	ReadLatency  metrics.Sample
	WriteLatency metrics.Sample
	Reads        metrics.Counter
	Writes       metrics.Counter
	// FaultsInjected counts chaos-injected operation failures.
	FaultsInjected metrics.Counter
	bytesOut       int64
	peakBytes      int64
	curBytes       int64
}

// NewStore returns an empty store of the given tier.
func NewStore(clock sim.Clock, tier Tier) *Store {
	return &Store{
		clock:   clock,
		model:   ModelFor(tier),
		tier:    tier,
		objects: make(map[string][]byte),
		putGen:  make(map[string]uint64),
		durable: make(map[string][]func()),
	}
}

// Tier returns the store's service tier.
func (s *Store) Tier() Tier { return s.tier }

// Get fetches the object at key asynchronously; cb runs on the clock after
// the modelled read latency with a copy of the data, or ErrNotFound.
func (s *Store) Get(key string, cb func(data []byte, err error)) {
	data, ok := s.objects[key]
	lat := s.model.Read.Sample(s.clock.RNG()) + s.model.transferTime(len(data))
	if ch := s.chaos; ch != nil {
		lat = ch.inflate(lat, s.clock.RNG())
		if ch.ReadErrorRate > 0 && s.clock.RNG().Float64() < ch.ReadErrorRate {
			s.Reads.Inc()
			s.ReadLatency.Add(lat)
			s.FaultsInjected.Inc()
			s.clock.After(lat, func() { cb(nil, fmt.Errorf("%w: read %q", ErrInjectedFault, key)) })
			return
		}
	}
	s.Reads.Inc()
	s.ReadLatency.Add(lat)
	s.clock.After(lat, func() {
		if !ok {
			cb(nil, fmt.Errorf("%w: %q", ErrNotFound, key))
			return
		}
		out := make([]byte, len(data))
		copy(out, data)
		s.bytesOut += int64(len(data))
		cb(out, nil)
	})
}

// Put stores a copy of data under key asynchronously; cb (which may be nil)
// runs after the modelled write latency.
func (s *Store) Put(key string, data []byte, cb func(err error)) {
	s.put(key, data, 0, cb)
}

// put is Put with an optional write generation: a non-zero gen installs
// the object only if it is still the newest PutRetrying chain for key, so
// a slow stale write completing late cannot clobber a newer one.
func (s *Store) put(key string, data []byte, gen uint64, cb func(err error)) {
	lat := s.model.Write.Sample(s.clock.RNG()) + s.model.transferTime(len(data))
	if ch := s.chaos; ch != nil {
		lat = ch.inflate(lat, s.clock.RNG())
		if ch.WriteErrorRate > 0 && s.clock.RNG().Float64() < ch.WriteErrorRate {
			s.Writes.Inc()
			s.WriteLatency.Add(lat)
			s.FaultsInjected.Inc()
			s.clock.After(lat, func() {
				if cb != nil {
					cb(fmt.Errorf("%w: write %q", ErrInjectedFault, key))
				}
			})
			return
		}
	}
	s.Writes.Inc()
	s.WriteLatency.Add(lat)
	cp := make([]byte, len(data))
	copy(cp, data)
	s.clock.After(lat, func() {
		if gen != 0 && s.putGen[key] != gen {
			// Superseded by a newer write chain: drop the stale install.
			if cb != nil {
				cb(nil)
			}
			return
		}
		if old, ok := s.objects[key]; ok {
			s.curBytes -= int64(len(old))
		}
		s.objects[key] = cp
		s.curBytes += int64(len(cp))
		if s.curBytes > s.peakBytes {
			s.peakBytes = s.curBytes
		}
		// Any successful install resolves the key's durability waiters:
		// whichever chain delivered it, data for the key is now in the
		// store.
		if ws := s.durable[key]; len(ws) > 0 {
			delete(s.durable, key)
			for _, w := range ws {
				w()
			}
		}
		if cb != nil {
			cb(nil)
		}
	})
}

// PutRetrying stores data under key, retrying chaos-injected faults
// (paced by the store's own write latency) until the write lands. Write
// paths with no higher-level retry (player records, uncached chunk
// persistence) use it so transient fault windows cannot silently drop
// persisted state. Each key carries a write generation: a newer
// PutRetrying for the same key cancels any older retry chain, and a stale
// write still in flight is dropped at install time, so a stale value can
// never clobber a newer write.
func (s *Store) PutRetrying(key string, data []byte) {
	s.PutRetryingThen(key, data, nil)
}

// PutRetryingThen is PutRetrying with a completion callback: done runs
// once the write lands (or once the chain is superseded by a newer write
// for the same key). Cross-shard handoff uses it to sequence the
// save-then-restore round-trip, so a brownout can delay but never lose a
// transferring player's state.
func (s *Store) PutRetryingThen(key string, data []byte, done func()) {
	s.putGen[key]++
	gen := s.putGen[key]
	var put func()
	put = func() {
		s.put(key, data, gen, func(err error) {
			if errors.Is(err, ErrInjectedFault) && s.putGen[key] == gen {
				put()
				return
			}
			if done != nil {
				done()
			}
		})
	}
	put()
}

// PutDurablyThen stores data under key and calls done only once a write
// for the key has actually been installed — this one, or any newer chain
// that superseded it (the pending callback transfers to whichever write
// lands first). This is the primitive ownership migrations gate on:
// unlike PutRetryingThen, a supersession by a concurrent writer (an
// unload-path PutRetrying, a cache flusher's PutLatest) cannot complete
// the callback while zero bytes are durable, so "done" always means the
// store holds data for the key at least as new as this write.
func (s *Store) PutDurablyThen(key string, data []byte, done func()) {
	if done != nil {
		s.durable[key] = append(s.durable[key], done)
	}
	s.PutRetrying(key, data)
}

// PutLatest is Put with last-writer-wins semantics: the write joins the
// key's generation sequence, so if a newer PutLatest/PutRetrying for the
// same key is issued before this one completes, the stale install is
// dropped (cb still runs, with a nil error). Periodic write-back paths
// use it so a chaos-slowed flush landing late cannot revert newer data.
func (s *Store) PutLatest(key string, data []byte, cb func(err error)) {
	s.putGen[key]++
	s.put(key, data, s.putGen[key], cb)
}

// GetRetrying fetches key, retrying chaos-injected faults (paced by the
// store's own read latency); every other outcome — data or ErrNotFound —
// is delivered to cb. Read paths where a false not-found would trigger
// destructive regeneration use it instead of Get.
func (s *Store) GetRetrying(key string, cb func(data []byte, err error)) {
	var attempt func()
	attempt = func() {
		s.Get(key, func(data []byte, err error) {
			if errors.Is(err, ErrInjectedFault) {
				attempt()
				return
			}
			cb(data, err)
		})
	}
	attempt()
}

// Delete removes the object at key asynchronously.
func (s *Store) Delete(key string, cb func(err error)) {
	lat := s.model.Write.Sample(s.clock.RNG())
	s.clock.After(lat, func() {
		if old, ok := s.objects[key]; ok {
			s.curBytes -= int64(len(old))
			delete(s.objects, key)
		}
		if cb != nil {
			cb(nil)
		}
	})
}

// Exists reports whether key currently holds an object (no latency: used by
// tests and warm-up code, not by the game path).
func (s *Store) Exists(key string) bool {
	_, ok := s.objects[key]
	return ok
}

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.objects) }

// CopyFrom clones every object of src into s instantly, without latency or
// billing. It is a harness utility for handing one experiment phase's data
// to a fresh storage stack (and for test fixtures); the game path never
// uses it.
func (s *Store) CopyFrom(src *Store) {
	for k, v := range src.objects {
		cp := make([]byte, len(v))
		copy(cp, v)
		s.objects[k] = cp
		s.curBytes += int64(len(cp))
	}
	if s.curBytes > s.peakBytes {
		s.peakBytes = s.curBytes
	}
}

// BilledDollars returns the accumulated cost: operations, egress, and one
// month of peak storage.
func (s *Store) BilledDollars() float64 {
	return float64(s.Reads.Value())*dollarsPerReadOp +
		float64(s.Writes.Value())*dollarsPerWriteOp +
		float64(s.bytesOut)/1e9*dollarsPerGBEgress +
		float64(s.peakBytes)/1e9*dollarsPerGBStorage
}
