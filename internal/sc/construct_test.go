package sc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSourcePowersWireWithDecay(t *testing.T) {
	c := New(18, 1)
	c.Set(0, 0, Cell{Kind: Source, On: true})
	for x := 1; x < 18; x++ {
		c.Set(x, 0, Cell{Kind: Wire})
	}
	c.Step()
	for x := 1; x < 18; x++ {
		want := MaxPower - x
		if want < 0 {
			want = 0
		}
		if got := int(c.At(x, 0).Power); got != want {
			t.Fatalf("wire power at x=%d is %d, want %d", x, got, want)
		}
	}
}

func TestLampLightsNextToPoweredWire(t *testing.T) {
	c := New(4, 1)
	c.Set(0, 0, Cell{Kind: Source, On: true})
	c.Set(1, 0, Cell{Kind: Wire})
	c.Set(2, 0, Cell{Kind: Lamp})
	c.Step()
	if !c.At(2, 0).On {
		t.Fatal("lamp next to powered wire must light")
	}
	// Turn the source off: the lamp must go dark on the next step.
	cell := c.At(0, 0)
	cell.On = false
	c.Set(0, 0, cell)
	c.Step()
	if c.At(2, 0).On {
		t.Fatal("lamp must turn off when power is removed")
	}
}

func TestPowerDoesNotCrossEmptyCells(t *testing.T) {
	c := New(5, 1)
	c.Set(0, 0, Cell{Kind: Source, On: true})
	c.Set(1, 0, Cell{Kind: Wire})
	// gap at x=2
	c.Set(3, 0, Cell{Kind: Wire})
	c.Set(4, 0, Cell{Kind: Lamp})
	c.Step()
	if got := c.At(3, 0).Power; got != 0 {
		t.Fatalf("wire across gap has power %d, want 0", got)
	}
	if c.At(4, 0).On {
		t.Fatal("lamp across gap must stay dark")
	}
}

func TestInverterOscillates(t *testing.T) {
	// A single inverter feeding its own input through a wire oscillates
	// with period 2.
	c := New(2, 1)
	c.Set(0, 0, Cell{Kind: Inverter, On: true})
	c.Set(1, 0, Cell{Kind: Wire})
	var states []bool
	for i := 0; i < 8; i++ {
		c.Step()
		states = append(states, c.At(0, 0).On)
	}
	for i := 1; i < len(states); i++ {
		if states[i] == states[i-1] {
			t.Fatalf("inverter did not oscillate: %v", states)
		}
	}
}

func TestRepeaterDelay(t *testing.T) {
	c := New(4, 1)
	c.Set(0, 0, Cell{Kind: Source, On: true})
	c.Set(1, 0, Cell{Kind: Wire})
	c.Set(2, 0, Cell{Kind: Repeater, Delay: 3})
	c.Set(3, 0, Cell{Kind: Lamp})
	onAt := -1
	for i := 1; i <= 6; i++ {
		c.Step()
		if c.At(2, 0).On {
			onAt = i
			break
		}
	}
	if onAt != 3 {
		t.Fatalf("repeater with delay 3 turned on at step %d, want 3", onAt)
	}
}

func TestClockIsPeriodic(t *testing.T) {
	c := NewClock(3, 2)
	if c.BlockCount() == 0 {
		t.Fatal("clock has no blocks")
	}
	// Collect hashes; the clock must revisit a state within a reasonable
	// horizon and keep changing state before that.
	seen := map[uint64]int{c.Hash(): 0}
	period := 0
	for i := 1; i <= 512; i++ {
		c.Step()
		h := c.Hash()
		if at, ok := seen[h]; ok {
			period = i - at
			break
		}
		seen[h] = i
	}
	if period == 0 {
		t.Fatal("clock never revisited a state in 512 steps")
	}
	if period < 2 {
		t.Fatalf("clock period %d, want >= 2", period)
	}
}

func TestStepDeterministicAcrossClones(t *testing.T) {
	a := NewLampBank(4, 8)
	b := a.Clone()
	for i := 0; i < 100; i++ {
		a.Step()
		b.Step()
		if a.Hash() != b.Hash() {
			t.Fatalf("clones diverged at step %d", i)
		}
	}
}

func TestStateSnapshotRoundTrip(t *testing.T) {
	c := NewLampBank(3, 6)
	for i := 0; i < 17; i++ {
		c.Step()
	}
	snap := c.State()
	// Run ahead, then restore.
	ahead := c.Clone()
	for i := 0; i < 5; i++ {
		ahead.Step()
	}
	if err := ahead.SetState(snap); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	if ahead.Hash() != c.Hash() {
		t.Fatal("restored state differs from snapshot")
	}
	// And stepping both again stays in lockstep.
	for i := 0; i < 10; i++ {
		c.Step()
		ahead.Step()
		if c.Hash() != ahead.Hash() {
			t.Fatalf("diverged after restore at step %d", i)
		}
	}
}

func TestSetStateRejectsWrongLength(t *testing.T) {
	c := NewClock(3, 1)
	if err := c.SetState(StateVector{1, 2, 3}); err == nil {
		t.Fatal("SetState accepted a wrong-size vector")
	}
}

func TestLayoutEncodeDecodeRoundTrip(t *testing.T) {
	c := NewLampBank(5, 10)
	for i := 0; i < 9; i++ {
		c.Step()
	}
	dec, err := DecodeLayout(c.EncodeLayout())
	if err != nil {
		t.Fatalf("DecodeLayout: %v", err)
	}
	if dec.Hash() != c.Hash() {
		t.Fatal("decoded construct state differs")
	}
	if dec.BlockCount() != c.BlockCount() {
		t.Fatal("decoded construct block count differs")
	}
	// Decoded construct must behave identically.
	for i := 0; i < 50; i++ {
		c.Step()
		dec.Step()
		if c.Hash() != dec.Hash() {
			t.Fatalf("decoded construct diverged at step %d", i)
		}
	}
}

func TestDecodeLayoutRejectsCorruptInput(t *testing.T) {
	enc := NewClock(3, 1).EncodeLayout()
	cases := map[string][]byte{
		"empty":     {},
		"short":     enc[:4],
		"truncated": enc[:len(enc)-3],
	}
	for name, buf := range cases {
		if _, err := DecodeLayout(buf); err == nil {
			t.Errorf("%s: DecodeLayout succeeded, want error", name)
		}
	}
	// Corrupt cell kind.
	bad := make([]byte, len(enc))
	copy(bad, enc)
	bad[8] = 250
	if _, err := DecodeLayout(bad); err == nil {
		t.Error("DecodeLayout accepted unknown cell kind")
	}
}

func TestBuildSizedExactCounts(t *testing.T) {
	for _, target := range []int{12, 100, 252, 484, 1000} {
		c := BuildSized(target)
		if got := c.BlockCount(); got != target {
			t.Errorf("BuildSized(%d).BlockCount() = %d", target, got)
		}
	}
	// Tiny targets clamp to the minimum viable construct.
	if c := BuildSized(1); c.BlockCount() < 8 {
		t.Error("BuildSized(1) produced a degenerate construct")
	}
}

func TestBuildSizedIsActive(t *testing.T) {
	// The paper's constructs change state continuously; BuildSized output
	// must not be a static circuit.
	c := BuildSized(252)
	h0 := c.Hash()
	changed := false
	for i := 0; i < 16; i++ {
		c.Step()
		if c.Hash() != h0 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("BuildSized construct never changed state")
	}
}

func TestStepWorkUnitsPositiveAndScaleWithSize(t *testing.T) {
	small := BuildSized(50)
	large := BuildSized(500)
	ws, wl := 0, 0
	for i := 0; i < 10; i++ {
		ws += small.Step()
		wl += large.Step()
	}
	if ws <= 0 || wl <= 0 {
		t.Fatal("work units must be positive")
	}
	if wl <= ws {
		t.Fatalf("larger construct must cost more: small=%d large=%d", ws, wl)
	}
}

func TestHashDistinguishesStatesQuick(t *testing.T) {
	// Flipping any cell's On bit must change the hash (no trivial
	// collisions on small perturbations).
	c := NewLampBank(3, 8)
	base := c.Hash()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := c.Clone()
		w, h := m.Size()
		for tries := 0; tries < 100; tries++ {
			x, y := r.Intn(w), r.Intn(h)
			cell := m.At(x, y)
			if cell.Kind == Empty {
				continue
			}
			cell.On = !cell.On
			m.Set(x, y, cell)
			return m.Hash() != base
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfBoundsCellAccessSafe(t *testing.T) {
	c := New(2, 2)
	c.Set(-1, 0, Cell{Kind: Wire})
	c.Set(0, 5, Cell{Kind: Wire})
	if got := c.At(-1, 0); got.Kind != Empty {
		t.Fatal("out-of-bounds read must return empty")
	}
	if c.BlockCount() != 0 {
		t.Fatal("out-of-bounds writes must be ignored")
	}
}

func TestNewPanicsOnInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 5) did not panic")
		}
	}()
	New(0, 5)
}
