package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"servo/internal/mve"
	"servo/internal/sim"
)

func newServer(seed int64) (*sim.Loop, *mve.Server) {
	loop := sim.NewLoop(seed)
	return loop, mve.NewServer(loop, mve.Config{WorldType: "flat", Seed: seed})
}

func TestBoundedMoveStaysInBounds(t *testing.T) {
	loop, s := newServer(1)
	p := s.Connect("a", &BoundedMove{Radius: 40})
	s.Start()
	loop.RunUntil(5 * time.Minute)
	// Destinations are within the radius, so the avatar can stray at most
	// marginally past it mid-path.
	if math.Abs(p.X) > 41 || math.Abs(p.Z) > 41 {
		t.Fatalf("avatar escaped the bounded area: (%v, %v)", p.X, p.Z)
	}
	// And it must actually move.
	if p.X == 0 && p.Z == 0 {
		t.Fatal("avatar never moved")
	}
}

func TestStarPatternFansOut(t *testing.T) {
	loop, s := newServer(2)
	players := make([]*mve.Player, 0, 5)
	for i := 0; i < 5; i++ {
		players = append(players, s.Connect("s", &Star{Speed: 3}))
	}
	s.Start()
	loop.RunUntil(3 * time.Minute)
	// Every player should be roughly 3 b/s × elapsed from spawn (modulo
	// slow ticks early on), each in a distinct direction.
	dirs := make(map[[2]int]bool)
	for _, p := range players {
		dist := math.Hypot(p.X, p.Z)
		if dist < 200 {
			t.Fatalf("star player only %v blocks from spawn after 3 min at 3 b/s", dist)
		}
		key := [2]int{int(math.Round(p.X / dist * 4)), int(math.Round(p.Z / dist * 4))}
		dirs[key] = true
	}
	if len(dirs) < 4 {
		t.Fatalf("players did not fan out: %d distinct directions", len(dirs))
	}
}

func TestStarRampIncreasesSpeed(t *testing.T) {
	loop, s := newServer(3)
	p := s.Connect("inc", &Star{Speed: 1, RampEvery: 30 * time.Second})
	s.Start()
	loop.RunUntil(20 * time.Second)
	d1 := math.Hypot(p.X, p.Z)
	loop.RunUntil(loop.Now() + 20*time.Second)
	d2 := math.Hypot(p.X, p.Z) - d1
	loop.RunUntil(loop.Now() + 2*time.Minute) // speed now ≥ 5
	before := math.Hypot(p.X, p.Z)
	loop.RunUntil(loop.Now() + 20*time.Second)
	d3 := math.Hypot(p.X, p.Z) - before
	if d3 <= d2*1.5 {
		t.Fatalf("speed did not ramp: early 20s leg %v blocks, late 20s leg %v", d2, d3)
	}
}

func TestRandomBehaviorActionMix(t *testing.T) {
	// Table II: 40% move, 30% block op, 20% stand, 5% chat, 5% inventory.
	b := &Random{}
	loop, s := newServer(4)
	p := s.Connect("r", nil)
	r := rand.New(rand.NewSource(7))
	counts := map[mve.ActionKind]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		b.ticks = 0 // force a decision every call
		for _, a := range b.Actions(r, p, s) {
			counts[a.Kind]++
		}
	}
	_ = loop
	frac := func(k mve.ActionKind) float64 { return float64(counts[k]) / trials }
	within := func(got, want, tol float64) bool { return got > want-tol && got < want+tol }
	if !within(frac(mve.ActionMove), 0.40, 0.02) {
		t.Errorf("move fraction = %v, want 0.40", frac(mve.ActionMove))
	}
	blocks := frac(mve.ActionPlaceBlock) + frac(mve.ActionBreakBlock)
	if !within(blocks, 0.30, 0.02) {
		t.Errorf("block-op fraction = %v, want 0.30", blocks)
	}
	if !within(frac(mve.ActionIdle), 0.20, 0.02) {
		t.Errorf("stand fraction = %v, want 0.20", frac(mve.ActionIdle))
	}
	if !within(frac(mve.ActionChat), 0.05, 0.01) {
		t.Errorf("chat fraction = %v, want 0.05", frac(mve.ActionChat))
	}
	if !within(frac(mve.ActionSetInventory), 0.05, 0.01) {
		t.Errorf("inventory fraction = %v, want 0.05", frac(mve.ActionSetInventory))
	}
}

func TestRandomBehaviorRunsOnServer(t *testing.T) {
	loop, s := newServer(5)
	for i := 0; i < 4; i++ {
		s.Connect("r", &Random{})
	}
	s.Start()
	loop.RunUntil(2 * time.Minute)
	if s.ActionCount.Value() == 0 {
		t.Fatal("random behavior produced no actions")
	}
	if s.ChatsDelivered.Value() == 0 {
		t.Fatal("no chats after 2 minutes of random behavior")
	}
}

func TestForName(t *testing.T) {
	cases := map[string]string{
		"A":     "*workload.BoundedMove",
		"R":     "*workload.Random",
		"Sinc":  "*workload.Star",
		"S3":    "*workload.Star",
		"S8":    "*workload.Star",
		"bogus": "*workload.BoundedMove",
		"Sx":    "*workload.BoundedMove",
	}
	for name, wantType := range cases {
		b := ForName(name)
		if got := typeName(b); got != wantType {
			t.Errorf("ForName(%q) = %s, want %s", name, got, wantType)
		}
	}
	if s, ok := ForName("S8").(*Star); !ok || s.Speed != 8 {
		t.Error("ForName(S8) speed wrong")
	}
	if s, ok := ForName("Sinc").(*Star); !ok || s.RampEvery != 200*time.Second {
		t.Error("ForName(Sinc) ramp wrong")
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *BoundedMove:
		return "*workload.BoundedMove"
	case *Random:
		return "*workload.Random"
	case *Star:
		return "*workload.Star"
	}
	return "?"
}
