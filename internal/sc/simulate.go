package sc

// Simulation entry point shared by the game server's local fallback path
// and the serverless simulation function. Simulate is what Servo deploys as
// the FaaS handler body (paper §III-C): it advances a construct several
// steps, records every intermediate state, and detects state loops.

// LoopInfo describes a detected state cycle (paper §III-C1): after reaching
// States[EntryIndex] the construct cycles with the given period, so future
// states can be replayed from the recorded window without further
// simulation.
type LoopInfo struct {
	// EntryIndex is the index in the returned state sequence where the
	// loop begins (the first state that repeats).
	EntryIndex int
	// Period is the loop length in steps.
	Period int
}

// Result is the reply of one simulation run: the state after each executed
// step, loop metadata if a cycle was found, and the work performed.
type Result struct {
	// States holds the construct state after steps 1..N. When a loop is
	// detected the sequence is truncated at the end of the first full
	// loop period (further states are redundant).
	States []StateVector
	// Loop is non-nil if the state sequence entered a cycle.
	Loop *LoopInfo
	// WorkUnits is the total simulation work executed, which determines
	// the function's billed execution time.
	WorkUnits int
}

// Simulate advances a copy of the construct by up to steps steps, returning
// every intermediate state. The input construct is not modified. When
// detectLoops is set and the state sequence revisits an earlier state, the
// result is truncated to one full loop period and annotated with LoopInfo.
//
// Loop detection hashes each state (FNV-1a, 64-bit) and confirms candidate
// matches by comparing full state vectors, so hash collisions cannot
// produce a false loop.
func Simulate(c *Construct, steps int, detectLoops bool) Result {
	sim := c.Clone()
	res := Result{States: make([]StateVector, 0, steps)}
	var seen map[uint64][]int // state hash → indices into res.States (and -1 for the initial state)
	var initial StateVector
	if detectLoops {
		seen = make(map[uint64][]int, steps+1)
		initial = sim.State()
		seen[sim.Hash()] = append(seen[sim.Hash()], -1)
	}
	for i := 0; i < steps; i++ {
		res.WorkUnits += sim.Step()
		state := sim.State()
		res.States = append(res.States, state)
		if !detectLoops {
			continue
		}
		h := sim.Hash()
		for _, j := range seen[h] {
			var prev StateVector
			if j == -1 {
				prev = initial
			} else {
				prev = res.States[j]
			}
			if string(prev) == string(state) {
				entry := j + 1 // first state index of the loop body
				res.Loop = &LoopInfo{EntryIndex: entry, Period: i - j}
				res.States = res.States[:i+1]
				return res
			}
		}
		seen[h] = append(seen[h], i)
	}
	return res
}

// StateAt returns the construct state at the given future step offset
// (1-based: offset 1 is the state after one step), replaying the loop if
// one was detected. It reports false when the offset is beyond the
// recorded window and no loop is available.
func (r Result) StateAt(offset int) (StateVector, bool) {
	if offset < 1 {
		return nil, false
	}
	if offset <= len(r.States) {
		return r.States[offset-1], true
	}
	if r.Loop == nil {
		return nil, false
	}
	// Replay: indices ≥ EntryIndex cycle with the loop period.
	i := r.Loop.EntryIndex + (offset-1-r.Loop.EntryIndex)%r.Loop.Period
	return r.States[i], true
}
