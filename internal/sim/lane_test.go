package sim

import (
	"fmt"
	"testing"
	"time"
)

// laneTrace runs a small cross-lane workload at the given pool size and
// returns the observable event stream: the order in which commits reach
// the (shared) trace, with per-lane RNG draws baked into the entries.
func laneTrace(workers int) []string {
	l := NewLoop(42)
	l.SetWorkers(workers)
	var trace []string
	const lanes = 4
	for id := 1; id <= lanes; id++ {
		id := id
		lc := l.Lane(id)
		var tick func()
		ticks := 0
		tick = func() {
			ticks++
			draw := lc.RNG().Intn(1000)
			step := ticks
			lc.Commit(func() {
				trace = append(trace, fmt.Sprintf("lane%d tick%d draw%d", id, step, draw))
			})
			if ticks < 5 {
				lc.After(10*time.Millisecond, tick)
			}
		}
		lc.After(10*time.Millisecond, tick)
	}
	// A serial barrier event interleaved with the waves.
	l.After(25*time.Millisecond, func() {
		trace = append(trace, fmt.Sprintf("serial draw%d", l.RNG().Intn(1000)))
	})
	l.Run()
	return trace
}

func TestLaneRunsAreIdenticalAcrossPoolSizes(t *testing.T) {
	base := laneTrace(1)
	if len(base) == 0 {
		t.Fatal("trace is empty")
	}
	for _, workers := range []int{2, 4, 16} {
		got := laneTrace(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d produced %d entries, workers=1 produced %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverged at entry %d: %q vs %q", workers, i, got[i], base[i])
			}
		}
	}
}

func TestLaneCommitsDrainInLaneOrder(t *testing.T) {
	l := NewLoop(1)
	l.SetWorkers(4)
	var order []int
	for _, id := range []int{3, 1, 2} { // scheduled out of lane order
		id := id
		lc := l.Lane(id)
		lc.After(time.Millisecond, func() {
			lc.Commit(func() { order = append(order, id) })
		})
	}
	l.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("commit order = %v, want %v", order, want)
		}
	}
}

func TestLaneSerialEventsActAsBarriers(t *testing.T) {
	l := NewLoop(1)
	l.SetWorkers(4)
	var order []string
	// Same timestamp: lane events before and after a serial event in
	// seq order. The serial event must run between the two waves.
	l.Lane(1).After(0, func() { l.Lane(1).Commit(func() { order = append(order, "wave1") }) })
	l.After(0, func() { order = append(order, "serial") })
	l.Lane(2).After(0, func() { l.Lane(2).Commit(func() { order = append(order, "wave2") }) })
	l.Run()
	want := []string{"wave1", "serial", "wave2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLaneRNGStreamsAreIndependent(t *testing.T) {
	// Lane 2's draw sequence must not depend on how much lane 1 draws.
	draws := func(lane1Draws int) []int {
		l := NewLoop(7)
		l.SetWorkers(1)
		l.Lane(1).After(0, func() {
			for i := 0; i < lane1Draws; i++ {
				l.Lane(1).RNG().Int63()
			}
		})
		var out []int
		l.Lane(2).After(0, func() {
			for i := 0; i < 8; i++ {
				out = append(out, l.Lane(2).RNG().Intn(1<<20))
			}
		})
		l.Run()
		return out
	}
	a, b := draws(0), draws(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lane 2 stream shifted by lane 1 draws at %d: %v vs %v", i, a, b)
		}
	}
}

func TestLaneStateSurvivesReacquisition(t *testing.T) {
	// Re-requesting a lane (shard recovery) must continue the same RNG
	// stream rather than reseed it.
	l := NewLoop(5)
	first := l.Lane(3).RNG().Int63()
	second := l.Lane(3).RNG().Int63()
	if first == second {
		t.Fatal("stream did not advance")
	}
	l2 := NewLoop(5)
	if got := l2.Lane(3).RNG().Int63(); got != first {
		t.Fatalf("fresh loop lane stream = %d, want %d", got, first)
	}
	if got := l2.Lane(3).RNG().Int63(); got != second {
		t.Fatalf("reacquired lane stream = %d, want %d (reseeded?)", got, second)
	}
}

func TestLanePendingEventsKeepFIFOWithinLane(t *testing.T) {
	l := NewLoop(1)
	l.SetWorkers(3)
	var got []int
	lc := l.Lane(1)
	lc.After(0, func() {
		for i := 0; i < 5; i++ {
			i := i
			lc.After(0, func() { got = append(got, i) })
		}
	})
	l.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-lane events ran out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestLaneModeMatchesSerialSemanticsForPlainEvents(t *testing.T) {
	// A workload that never touches lanes must behave identically in
	// batch mode: same order, same clock, same RNG stream.
	run := func(workers int) (out []string, now Time) {
		l := NewLoop(11)
		l.SetWorkers(workers)
		var step func()
		n := 0
		step = func() {
			n++
			out = append(out, fmt.Sprintf("%d@%v draw%d", n, l.Now(), l.RNG().Intn(100)))
			if n < 20 {
				l.After(time.Duration(n)*time.Millisecond, step)
			}
		}
		l.After(0, step)
		l.Run()
		return out, l.Now()
	}
	a, an := run(0)
	b, bn := run(4)
	if an != bn {
		t.Fatalf("final clock differs: %v vs %v", an, bn)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("serial workload diverged in batch mode at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestLaneBatchStatsAccumulate(t *testing.T) {
	l := NewLoop(1)
	l.SetWorkers(2)
	for id := 1; id <= 2; id++ {
		lc := l.Lane(id)
		lc.After(0, func() {
			// Do a sliver of real work so busy time is nonzero.
			s := 0
			for i := 0; i < 1000; i++ {
				s += i
			}
			_ = s
		})
	}
	l.Run()
	st := l.BatchStats()
	if st.WorkNs < st.SpanNs {
		t.Fatalf("work %d < span %d", st.WorkNs, st.SpanNs)
	}
	if st.Speedup() < 1 {
		t.Fatalf("speedup %.2f < 1", st.Speedup())
	}
	l.ResetBatchStats()
	if s := l.BatchStats(); s.WorkNs != 0 || s.SpanNs != 0 {
		t.Fatalf("reset left stats %+v", s)
	}
}

func TestCommitOnPlainClockRunsImmediately(t *testing.T) {
	l := NewLoop(1)
	ran := false
	Commit(l, func() { ran = true })
	if !ran {
		t.Fatal("Commit on a plain Loop must run immediately")
	}
}
