package world

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Chunk is one 16×16×256 column of blocks. Blocks are stored in a flat
// array indexed by (y, z, x); the zero value of the array is all Air, so a
// freshly allocated chunk is valid empty space.
type Chunk struct {
	Pos    ChunkPos
	blocks [BlocksPerChunk]Block
	// Version counts mutations, used by the persistence layer to detect
	// dirty chunks and by tests to assert copy semantics.
	Version uint64
	// GenWork records the number of abstract work units spent generating
	// this chunk (0 for hand-built chunks); the cost model charges it
	// when a locally-generated chunk is applied on the game loop.
	GenWork int
}

// NewChunk returns an empty (all-air) chunk at pos.
func NewChunk(pos ChunkPos) *Chunk {
	return &Chunk{Pos: pos}
}

func blockIndex(x, y, z int) int {
	return (y*ChunkSizeZ+z)*ChunkSizeX + x
}

// At returns the block at chunk-local coordinates. Coordinates outside the
// chunk bounds return Air.
func (c *Chunk) At(x, y, z int) Block {
	if x < 0 || x >= ChunkSizeX || z < 0 || z >= ChunkSizeZ || y < 0 || y >= ChunkSizeY {
		return Block{}
	}
	return c.blocks[blockIndex(x, y, z)]
}

// Set writes the block at chunk-local coordinates. Out-of-bounds writes are
// ignored.
func (c *Chunk) Set(x, y, z int, b Block) {
	if x < 0 || x >= ChunkSizeX || z < 0 || z >= ChunkSizeZ || y < 0 || y >= ChunkSizeY {
		return
	}
	i := blockIndex(x, y, z)
	if c.blocks[i] != b {
		c.blocks[i] = b
		c.Version++
	}
}

// SurfaceY returns the Y coordinate of the highest solid block in the given
// column, or -1 if the column is empty.
func (c *Chunk) SurfaceY(x, z int) int {
	for y := ChunkSizeY - 1; y >= 0; y-- {
		if c.blocks[blockIndex(x, y, z)].ID.Solid() {
			return y
		}
	}
	return -1
}

// NonAirCount returns the number of non-air blocks, a cheap density measure
// used by tests and the cost model.
func (c *Chunk) NonAirCount() int {
	n := 0
	for _, b := range c.blocks {
		if !b.IsAir() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the chunk.
func (c *Chunk) Clone() *Chunk {
	out := *c
	return &out
}

// Equal reports whether two chunks hold identical block data at the same
// position (versions and generation metadata are ignored).
func (c *Chunk) Equal(o *Chunk) bool {
	return c.Pos == o.Pos && c.blocks == o.blocks
}

// --- Binary encoding -------------------------------------------------------
//
// Format (little-endian):
//
//	magic   uint32  = 0x53564f43 ("SVOC")
//	posX    int32
//	posZ    int32
//	palLen  uint16          number of palette entries
//	palette palLen × uint16 packed Block keys
//	bits    uint8           index width in bits (1..16)
//	data    ceil(BlocksPerChunk*bits/8) bytes of packed indices
//
// The palette makes typical terrain chunks (a handful of block types)
// encode in a few kilobytes instead of the raw 128 KiB.

const chunkMagic = 0x53564f43

// ErrBadChunkEncoding is returned by DecodeChunk for malformed input.
var ErrBadChunkEncoding = errors.New("world: bad chunk encoding")

// bitsFor returns the number of bits needed to index n palette entries.
func bitsFor(n int) uint {
	bits := uint(1)
	for (1 << bits) < n {
		bits++
	}
	return bits
}

// Encode serialises the chunk to the palette format described above.
//
// Palette lookups use a linear scan with a last-hit memo instead of a map:
// real chunks have tiny palettes (a handful of block types) and long runs
// of identical blocks, which makes this several times faster than hashing —
// Encode is the hot path of chunk persistence and the wire protocol.
func (c *Chunk) Encode() []byte {
	// Build the palette in first-appearance order for determinism, and
	// precompute each block's palette index.
	var palette []uint16
	indices := make([]uint16, BlocksPerChunk)
	lastKey := uint16(0xffff)
	lastIdx := uint16(0)
	for i := range c.blocks {
		k := c.blocks[i].key()
		if k != lastKey {
			found := -1
			for j, pk := range palette {
				if pk == k {
					found = j
					break
				}
			}
			if found == -1 {
				found = len(palette)
				palette = append(palette, k)
			}
			lastKey, lastIdx = k, uint16(found)
		}
		indices[i] = lastIdx
	}
	bits := bitsFor(len(palette))
	dataLen := (BlocksPerChunk*int(bits) + 7) / 8
	out := make([]byte, 0, 4+8+2+2*len(palette)+1+dataLen)
	out = binary.LittleEndian.AppendUint32(out, chunkMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(c.Pos.X)))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(c.Pos.Z)))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(palette)))
	for _, k := range palette {
		out = binary.LittleEndian.AppendUint16(out, k)
	}
	out = append(out, byte(bits))
	data := make([]byte, dataLen)
	var bitPos uint
	for _, idx := range indices {
		writeBits(data, bitPos, bits, uint32(idx))
		bitPos += bits
	}
	return append(out, data...)
}

// DecodeChunk parses a chunk previously produced by Encode.
func DecodeChunk(buf []byte) (*Chunk, error) {
	if len(buf) < 15 {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadChunkEncoding, len(buf))
	}
	if binary.LittleEndian.Uint32(buf) != chunkMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadChunkEncoding)
	}
	pos := ChunkPos{
		X: int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		Z: int(int32(binary.LittleEndian.Uint32(buf[8:]))),
	}
	palLen := int(binary.LittleEndian.Uint16(buf[12:]))
	if palLen == 0 {
		return nil, fmt.Errorf("%w: empty palette", ErrBadChunkEncoding)
	}
	off := 14
	if len(buf) < off+2*palLen+1 {
		return nil, fmt.Errorf("%w: truncated palette", ErrBadChunkEncoding)
	}
	palette := make([]Block, palLen)
	for i := range palette {
		palette[i] = blockFromKey(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
	}
	bits := uint(buf[off])
	off++
	if bits == 0 || bits > 16 {
		return nil, fmt.Errorf("%w: bad index width %d", ErrBadChunkEncoding, bits)
	}
	dataLen := (BlocksPerChunk*int(bits) + 7) / 8
	if len(buf) < off+dataLen {
		return nil, fmt.Errorf("%w: truncated block data", ErrBadChunkEncoding)
	}
	data := buf[off : off+dataLen]
	c := NewChunk(pos)
	var bitPos uint
	for i := 0; i < BlocksPerChunk; i++ {
		idx := readBits(data, bitPos, bits)
		bitPos += bits
		if int(idx) >= palLen {
			return nil, fmt.Errorf("%w: palette index %d out of range", ErrBadChunkEncoding, idx)
		}
		c.blocks[i] = palette[idx]
	}
	return c, nil
}

// writeBits writes the low `bits` bits of v at bit offset pos. Values span
// at most three bytes (bits ≤ 16), written little-endian within the byte
// stream.
func writeBits(data []byte, pos, bits uint, v uint32) {
	w := uint32(v) << (pos % 8)
	i := pos / 8
	data[i] |= byte(w)
	if bits+pos%8 > 8 {
		data[i+1] |= byte(w >> 8)
	}
	if bits+pos%8 > 16 {
		data[i+2] |= byte(w >> 16)
	}
}

// readBits reads `bits` bits at bit offset pos.
func readBits(data []byte, pos, bits uint) uint32 {
	i := pos / 8
	var v uint32 = uint32(data[i])
	if i+1 < uint(len(data)) {
		v |= uint32(data[i+1]) << 8
	}
	if i+2 < uint(len(data)) {
		v |= uint32(data[i+2]) << 16
	}
	return (v >> (pos % 8)) & ((1 << bits) - 1)
}
