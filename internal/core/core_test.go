package core

import (
	"math/rand"
	"testing"
	"time"

	"servo/internal/blob"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/sim"
	"servo/internal/world"
)

func TestBaselineAssemblyHasNoServerlessParts(t *testing.T) {
	loop := sim.NewLoop(1)
	sys := New(loop, Config{Profile: mve.ProfileOpencraft, WorldType: "flat"})
	if sys.Platform != nil || sys.SpecExec != nil || sys.TGBackend != nil {
		t.Fatal("baseline assembly created serverless components")
	}
	sys.Server.Start()
	loop.RunUntil(time.Second)
	if sys.Server.TickDurations.Len() == 0 {
		t.Fatal("baseline server did not tick")
	}
}

func TestFullServoAssembly(t *testing.T) {
	loop := sim.NewLoop(2)
	sys := New(loop, Config{
		WorldType:    "flat",
		ServerlessSC: true,
		ServerlessTG: true,
		ServerlessRS: true,
	})
	if sys.Platform == nil || sys.SpecExec == nil || sys.TGBackend == nil ||
		sys.Cache == nil || sys.RStore == nil || sys.Remote == nil {
		t.Fatal("full Servo assembly is missing components")
	}
	if sys.SCFn == nil || sys.TGFn == nil {
		t.Fatal("functions not deployed")
	}
	sys.Server.SpawnConstruct(sc.NewClock(3, 1), world.BlockPos{X: 2, Y: 5, Z: 2})
	sys.Server.Connect("p", nil)
	sys.Server.Start()
	loop.RunUntil(30 * time.Second)
	if sys.SCFn.Invocations.Count() == 0 {
		t.Fatal("construct was never offloaded")
	}
	if sys.Server.TickDurations.Len() < 500 {
		t.Fatalf("only %d ticks in 30s", sys.Server.TickDurations.Len())
	}
}

func TestServoServerlessSCMatchesLocalSimulation(t *testing.T) {
	// End-to-end determinism: the same construct in a Servo server and in
	// a baseline server goes through identical states tick for tick.
	loopA := sim.NewLoop(3)
	servo := New(loopA, Config{WorldType: "flat", ServerlessSC: true})
	loopB := sim.NewLoop(3)
	baseline := New(loopB, Config{Profile: mve.ProfileServo, WorldType: "flat"})
	// Use the Servo profile for the baseline too so its LocalSC steps
	// every tick like the speculative unit does.

	c := sc.NewLampBank(4, 8)
	anchor := world.BlockPos{X: 4, Y: 5, Z: 4}
	idA := servo.Server.SpawnConstruct(c.Clone(), anchor)
	idB := baseline.Server.SpawnConstruct(c.Clone(), anchor)

	servo.Server.Start()
	baseline.Server.Start()
	for i := 0; i < 200; i++ {
		loopA.RunUntil(loopA.Now() + 50*time.Millisecond)
		loopB.RunUntil(loopB.Now() + 50*time.Millisecond)
		a := servo.SpecExec.Construct(idA)
		b := baseline.Server.SCs().(*mve.LocalSC).Construct(idB)
		if a.Steps() != b.Steps() && a.Hash() != b.Hash() {
			// Steps can momentarily differ by scheduling boundary; states must match.
			t.Fatalf("tick %d: Servo construct state diverged from baseline", i)
		}
	}
}

func TestServerlessTGFillsViewWithoutLocalWorkers(t *testing.T) {
	loop := sim.NewLoop(4)
	sys := New(loop, Config{WorldType: "default", ServerlessTG: true})
	p := sys.Server.Connect("p", nil)
	sys.Server.Start()
	loop.RunUntil(time.Second)
	p.X = 500 // leave the preloaded spawn region
	loop.RunUntil(2 * time.Minute)
	if got := sys.Server.MinViewMargin(); got != sys.Server.Config().ViewDistance {
		t.Fatalf("view margin %d after 2 min of serverless generation", got)
	}
	if sys.TGFn.Invocations.Count() == 0 {
		t.Fatal("no generation invocations")
	}
	if busy, queued := sys.TGBackend.Load(); busy != 0 || queued != 0 {
		t.Fatal("serverless backend must report no local load")
	}
}

func TestRemoteStorageRoundTripsChunks(t *testing.T) {
	// Generate terrain, let it flush to remote storage, drop the world,
	// and verify a second server loads identical chunks from storage.
	loop := sim.NewLoop(5)
	sysA := New(loop, Config{WorldType: "default", Seed: 9, ServerlessRS: true})
	// An explorer walks beyond the preloaded spawn region so fresh terrain
	// goes through the demand-generation path and is persisted.
	p := sysA.Server.Connect("p", nil)
	sysA.Server.Start()
	loop.RunUntil(time.Second)
	p.X = 400 // teleport outside the preload; the scan demands new chunks
	loop.RunUntil(90 * time.Second)
	sysA.Server.Stop()
	sysA.Cache.Flush()
	loop.RunUntil(loop.Now() + 10*time.Second)
	if sysA.Remote.Len() == 0 {
		t.Fatal("nothing persisted to remote storage")
	}

	// A chunk near the teleport target went through demand generation.
	pos := world.ChunkPos{X: 25, Z: 0}
	want := sysA.Server.World().Chunk(pos)
	if want == nil {
		t.Fatal("test chunk not loaded in source world")
	}

	// A fresh store stack over the same remote must return the same chunk.
	sysB := &System{Remote: sysA.Remote}
	_ = sysB
	var got *world.Chunk
	store := &uncachedStore{remote: sysA.Remote}
	store.Load(pos, func(c *world.Chunk, ok bool) {
		if ok {
			got = c
		}
	})
	loop.RunUntil(loop.Now() + 5*time.Second)
	if got == nil {
		t.Fatal("chunk not found in remote storage")
	}
	if !got.Equal(want) {
		t.Fatal("persisted chunk differs from in-memory chunk")
	}
}

func TestUncachedStoreMissingChunk(t *testing.T) {
	loop := sim.NewLoop(6)
	store := &uncachedStore{remote: blob.NewStore(loop, blob.TierLocal)}
	called := false
	store.Load(world.ChunkPos{X: 5, Z: 5}, func(c *world.Chunk, ok bool) {
		called = true
		if ok || c != nil {
			t.Error("missing chunk must report ok=false")
		}
	})
	loop.Run()
	if !called {
		t.Fatal("callback never delivered")
	}
}

func TestDefaultFnConfigsCalibrated(t *testing.T) {
	scCfg := DefaultSCFnConfig()
	if scCfg.NsPerWorkUnit <= 0 {
		t.Fatal("SC function speed not calibrated")
	}
	// One step of the 252-block construct ≈ 2 ms at one vCPU.
	probe := sc.BuildSized(252).Clone()
	units := probe.Step()
	stepTime := time.Duration(units) * scCfg.NsPerWorkUnit
	if stepTime < 1500*time.Microsecond || stepTime > 2500*time.Microsecond {
		t.Fatalf("252-block step time = %v, want ≈ 2ms", stepTime)
	}

	tgCfg := DefaultTGFnConfig()
	genTime := time.Duration((12800)) * tgCfg.NsPerWorkUnit
	if genTime < 500*time.Millisecond || genTime > 700*time.Millisecond {
		t.Fatalf("chunk generation time = %v, want ≈ 600ms", genTime)
	}
}

func TestSCAdapterModifyPath(t *testing.T) {
	loop := sim.NewLoop(7)
	sys := New(loop, Config{WorldType: "flat", ServerlessSC: true})
	id := sys.Server.SpawnConstruct(sc.NewClock(3, 1), world.BlockPos{X: 2, Y: 5, Z: 2})
	if !sys.Server.SCs().Modify(id, func(c *sc.Construct) {}) {
		t.Fatal("Modify through the adapter failed")
	}
	if sys.Server.SCs().Modify(999, func(c *sc.Construct) {}) {
		t.Fatal("Modify of unknown id must fail")
	}
	sys.Server.SCs().Remove(id)
	if sys.Server.SCs().Count() != 0 {
		t.Fatal("Remove through the adapter failed")
	}
}

// TestShardedAssemblySharesSubstrate checks the cluster wiring: N game
// loops, one platform (shared warm pools), one blob store, per-shard
// caches and managers, and a working cross-shard handoff path.
func TestShardedAssemblySharesSubstrate(t *testing.T) {
	loop := sim.NewLoop(9)
	sys := New(loop, Config{
		WorldType:    "flat",
		ViewDistance: 32,
		Shards:       4,
		BandChunks:   4,
		ServerlessSC: true,
		ServerlessTG: true,
		ServerlessRS: true,
	})
	if sys.Cluster == nil {
		t.Fatal("no cluster assembled")
	}
	if len(sys.Shards) != 4 || len(sys.Cluster.Shards()) != 4 {
		t.Fatalf("shard count wrong: %d / %d", len(sys.Shards), len(sys.Cluster.Shards()))
	}
	if sys.Server != sys.Shards[0].Server {
		t.Fatal("legacy Server field must alias shard 0")
	}
	seen := map[*mve.Server]bool{}
	for i, sh := range sys.Shards {
		if sh.Server == nil || sh.SpecExec == nil || sh.TGBackend == nil || sh.Cache == nil {
			t.Fatalf("shard %d missing components: %+v", i, sh)
		}
		if seen[sh.Server] {
			t.Fatalf("shard %d reuses another shard's server", i)
		}
		seen[sh.Server] = true
		if sh.Cache.Remote() != sys.Remote {
			t.Fatalf("shard %d's cache does not flush into the shared store", i)
		}
		region := sh.Server.OwnedRegion()
		if region.Index != i {
			t.Fatalf("shard %d owns region %v", i, region)
		}
	}
	// One platform, functions registered once.
	if sys.Platform.Function(SCFunctionName) != sys.SCFn {
		t.Fatal("construct function not shared")
	}

	// A player walking right out of shard 0's band hands off through the
	// shared store.
	p := sys.Cluster.ConnectAt("mover", walkRight(200, 8), world.BlockPos{X: 32, Y: 0, Z: 8})
	sys.Cluster.Start()
	loop.RunUntil(60 * time.Second)
	if sys.Cluster.Handoffs.Value() == 0 {
		t.Fatal("no handoff through the assembled cluster")
	}
	if p.Shard() == 0 {
		t.Fatal("player still on shard 0 after walking out of its band")
	}
	if sys.Cluster.HandoffLatency.Max() <= 0 {
		t.Fatal("store-backed handoff must have nonzero latency")
	}
	// The handoff persisted the player record on the shared store.
	if !sys.Remote.Exists("player/mover") {
		t.Fatal("handoff did not persist the player record")
	}
}

// TestGridShardedAssembly checks the grid-topology wiring: contiguous
// default territories along the space-filling order, home tiles booted
// per shard, and a cross-shard handoff along the Z axis — the direction
// a band topology cannot split at all.
func TestGridShardedAssembly(t *testing.T) {
	loop := sim.NewLoop(17)
	topo := world.GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4}
	// No store: boot generation is synchronous, so the home-tile boot
	// centers are observable before the loop runs.
	sys := New(loop, Config{
		WorldType:    "flat",
		ViewDistance: 32,
		Shards:       4,
		Topology:     topo,
	})
	if got := sys.Cluster.Topology().Spec(); got != topo.Spec() {
		t.Fatalf("cluster topology = %+v, want %+v", got, topo.Spec())
	}
	// Each shard's home tile center is loaded at boot (the space-filling
	// initial placement): the server can host a player there immediately.
	for i := 0; i < 4; i++ {
		home := sys.Cluster.Home(i)
		if !sys.Shards[i].Server.World().Loaded(home.Chunk()) {
			t.Fatalf("shard %d's home tile %v not booted", i, home)
		}
		if got := sys.Cluster.Table().ShardOfBlock(home); got != i {
			t.Fatalf("shard %d's home block owned by %d", i, got)
		}
	}
	// A player walking along +Z crosses tile rows and hands off between
	// shards.
	p := sys.Cluster.ConnectAt("zwalker", walkDown(200, 8), world.BlockPos{X: 32, Y: 0, Z: 32})
	from := p.Shard()
	sys.Cluster.Start()
	loop.RunUntil(60 * time.Second)
	if sys.Cluster.Handoffs.Value() == 0 {
		t.Fatal("no handoff for a Z-axis walk on a grid topology")
	}
	if p.Shard() == from {
		t.Fatalf("player still on shard %d after walking out of its tile row", from)
	}
}

// walkDown issues one move order toward +Z.
func walkDown(z, speed float64) mve.Behavior {
	issued := false
	return mve.BehaviorFunc(func(_ *rand.Rand, p *mve.Player, _ *mve.Server) []mve.Action {
		if issued {
			return nil
		}
		issued = true
		return []mve.Action{mve.MoveTo(p.X, z, speed)}
	})
}

// walkRight issues one move order toward +X.
func walkRight(x, speed float64) mve.Behavior {
	issued := false
	return mve.BehaviorFunc(func(_ *rand.Rand, p *mve.Player, _ *mve.Server) []mve.Action {
		if issued {
			return nil
		}
		issued = true
		return []mve.Action{mve.MoveTo(x, p.Z, speed)}
	})
}
