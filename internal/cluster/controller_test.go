package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"servo/internal/blob"
	"servo/internal/mve"
	"servo/internal/servo/rstore"
	"servo/internal/servo/tcache"
	"servo/internal/sim"
	"servo/internal/world"
)

// blobChunkStore is the test double of core's uncached blob-backed chunk
// store, including the completion-reporting writes (SyncingChunkStore)
// that ownership migrations gate on.
type blobChunkStore struct{ remote *blob.Store }

var (
	_ mve.ChunkStore        = (*blobChunkStore)(nil)
	_ mve.SyncingChunkStore = (*blobChunkStore)(nil)
)

func (u *blobChunkStore) Load(pos world.ChunkPos, cb func(*world.Chunk, bool)) {
	u.remote.GetRetrying(tcache.Key(pos), func(data []byte, err error) {
		if err != nil {
			cb(nil, false)
			return
		}
		c, derr := world.DecodeChunk(data)
		if derr != nil {
			cb(nil, false)
			return
		}
		cb(c, true)
	})
}

func (u *blobChunkStore) Store(c *world.Chunk) {
	u.remote.PutRetrying(tcache.Key(c.Pos), c.Encode())
}

func (u *blobChunkStore) StoreThen(c *world.Chunk, done func()) {
	u.remote.PutDurablyThen(tcache.Key(c.Pos), c.Encode(), done)
}

// newStoreCluster builds a store-backed cluster (chunk persistence +
// handoff transfer over one blob store), 64-block band tiles unless
// cfg.Topology picks another tiling.
func newStoreCluster(t *testing.T, seed int64, shards int, cfg Config) (*sim.Loop, *blob.Store, *Cluster) {
	t.Helper()
	loop := sim.NewLoop(seed)
	remote := blob.NewStore(loop, blob.TierPremium)
	cfg.Shards = shards
	if cfg.Topology == nil {
		cfg.Topology = world.BandTopology{BandChunks: 4}
	}
	if cfg.Transfer == nil {
		cfg.Transfer = &retryingTransfer{remote: remote}
	}
	c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{
			WorldType:    "flat",
			ViewDistance: 32,
			Region:       region,
			Store:        &blobChunkStore{remote: remote},
		})
	})
	return loop, remote, c
}

func TestMigrateBandMovesOwnershipAndPlayers(t *testing.T) {
	loop, c := newTestCluster(t, 11, 2, Config{})
	// Band 2 (x in [128,192)) is shard 0's by the default interleave.
	home := c.TileCenter(world.TileID{X: 2})
	var ps []*Player
	for i := 0; i < 3; i++ {
		ps = append(ps, c.ConnectAt(fmt.Sprintf("m%d", i), nil, home))
	}
	for _, p := range ps {
		if p.Shard() != 0 {
			t.Fatalf("player started on shard %d, want 0", p.Shard())
		}
	}
	c.Start()
	loop.RunUntil(5 * time.Second)
	if !c.MigrateTile(world.TileID{X: 2}, 1) {
		t.Fatal("MigrateTile refused")
	}
	loop.RunUntil(30 * time.Second)

	if got := c.Epoch(); got != 1 {
		t.Fatalf("epoch = %d after one migration, want 1", got)
	}
	if got := c.Table().Owner(world.TileID{X: 2}); got != 1 {
		t.Fatalf("tile 2 owner = %d, want 1", got)
	}
	for _, p := range ps {
		if p.Shard() != 1 {
			t.Fatalf("player %s still on shard %d after migration", p.Name, p.Shard())
		}
	}
	if got := c.TilesMoved.Value(); got != 1 {
		t.Fatalf("tiles moved = %d, want 1", got)
	}
	if log := c.MigrationLog.All(); len(log) != 1 || log[0].Tile != (world.TileID{X: 2}) || log[0].To != 1 {
		t.Fatalf("migration log wrong: %+v", c.MigrationLog.All())
	}
}

// TestMigrationBrownoutDelaysButNeverLoses is the migration safety
// property: a player-modified chunk in the migrating band reaches the
// store before the ownership flip, even under a heavy brownout — the
// flip waits for the flush, so the brownout delays the migration but the
// new owner reads the modified state, never a regenerated one.
func TestMigrationBrownoutDelaysButNeverLoses(t *testing.T) {
	loop, remote, c := newStoreCluster(t, 12, 2, Config{})
	home := c.TileCenter(world.TileID{X: 2})
	p := c.ConnectAt("sculptor", nil, home)
	c.Start()
	loop.RunUntil(10 * time.Second) // band 2 terrain loads around the player

	// The player carves a signature block into its chunk.
	mark := world.BlockPos{X: home.X + 1, Y: 3, Z: home.Z + 1}
	if !c.Shard(0).World().SetBlockAt(mark, world.Block{ID: world.Stone}) {
		t.Fatal("mark chunk not loaded on the owning shard")
	}

	// Brownout: most writes fail, everything is 20x slower.
	remote.SetChaos(&blob.Chaos{WriteErrorRate: 0.6, ReadErrorRate: 0.6, LatencyFactor: 20})
	if !c.MigrateTile(world.TileID{X: 2}, 1) {
		t.Fatal("MigrateTile refused")
	}
	// Mid-brownout the flush is still fighting faults: the ownership flip
	// must not have happened yet (delayed, not skipped).
	loop.RunUntil(10*time.Second + 50*time.Millisecond)
	if c.Epoch() != 0 {
		t.Fatal("ownership flipped before the flush landed")
	}
	loop.RunUntil(2 * time.Minute)
	remote.SetChaos(nil)
	loop.RunUntil(3 * time.Minute)

	if c.Epoch() == 0 {
		t.Fatal("migration never completed after the brownout")
	}
	if got := c.Table().Owner(world.TileID{X: 2}); got != 1 {
		t.Fatalf("tile 2 owner = %d, want 1", got)
	}
	if p.Shard() != 1 {
		t.Fatalf("resident player on shard %d, want 1", p.Shard())
	}
	if remote.FaultsInjected.Value() == 0 {
		t.Fatal("brownout injected no faults; test proves nothing")
	}
	// The store holds the marked chunk: the new owner reads the modified
	// state, not regenerated terrain.
	var stored *world.Chunk
	remote.Get(tcache.Key(mark.Chunk()), func(data []byte, err error) {
		if err != nil {
			t.Fatalf("marked chunk missing from store: %v", err)
		}
		ch, derr := world.DecodeChunk(data)
		if derr != nil {
			t.Fatal(derr)
		}
		stored = ch
	})
	loop.RunUntil(4 * time.Minute)
	if stored == nil {
		t.Fatal("store read never completed")
	}
	lx, ly, lz := mark.X-mark.Chunk().Origin().X, mark.Y, mark.Z-mark.Chunk().Origin().Z
	if stored.At(lx, ly, lz).ID != world.Stone {
		t.Fatal("player modification lost in migration: flushed chunk lacks the mark")
	}
}

func TestFailoverReadmitsEveryPlayer(t *testing.T) {
	loop, remote, c := newStoreCluster(t, 13, 3, Config{})
	// Players on every shard; shard 1's will be the victims.
	var victims []*Player
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			p := c.ConnectAt(fmt.Sprintf("s%dp%d", i, j), nil, c.Home(i))
			if i == 1 {
				victims = append(victims, p)
			}
		}
	}
	c.Start()
	loop.RunUntil(10 * time.Second)

	if !c.FailShard(1) {
		t.Fatal("FailShard refused")
	}
	if c.Alive(1) {
		t.Fatal("shard 1 still alive after the kill")
	}
	loop.RunUntil(30 * time.Second)

	if got := c.PlayerCount(); got != 12 {
		t.Fatalf("players after failover = %d, want 12 (zero lost)", got)
	}
	if got := c.PlayersFailedOver.Value(); got != 4 {
		t.Fatalf("players failed over = %d, want 4", got)
	}
	for _, p := range victims {
		if p.Shard() == 1 {
			t.Fatalf("victim %s still routed to the dead shard", p.Name)
		}
		if c.Session(p) == nil {
			t.Fatalf("victim %s has no session after failover", p.Name)
		}
	}
	// The dead shard owns nothing; survivors own its bands.
	if c.Table().ShardOfBlock(c.Home(1)) == 1 {
		t.Fatal("dead shard still owns its home band")
	}

	// Recovery rebuilds the shard and reverts its bands; the victims walk
	// home through the ordinary scan.
	if !c.RecoverShard(1) {
		t.Fatal("RecoverShard refused")
	}
	loop.RunUntil(2 * time.Minute)
	if !c.Alive(1) {
		t.Fatal("shard 1 not alive after recovery")
	}
	// The rebuilt server inherited the crashed one's tick history, so
	// whole-run series (windowed assertions, CSV reports) still cover the
	// pre-crash era.
	if got := len(c.Shard(1).TickSeries.ValuesBetween(0, 10*time.Second)); got == 0 {
		t.Fatal("pre-crash tick history lost in the rebuild")
	}
	for _, p := range victims {
		if p.Shard() != 1 {
			t.Fatalf("victim %s did not return home after recovery (on shard %d)", p.Name, p.Shard())
		}
	}
	if got := c.PlayerCount(); got != 12 {
		t.Fatalf("players after recovery = %d, want 12", got)
	}
	_ = remote
}

func TestFailShardRefusesLastAlive(t *testing.T) {
	loop, c := newTestCluster(t, 14, 2, Config{})
	c.Start()
	loop.RunUntil(time.Second)
	if !c.FailShard(0) {
		t.Fatal("first kill refused")
	}
	if c.FailShard(1) {
		t.Fatal("killing the last alive shard must be refused")
	}
}

func TestRebalanceControllerMovesHotBand(t *testing.T) {
	loop, c := newTestCluster(t, 15, 2, Config{
		Rebalance: RebalanceConfig{Enabled: true, Threshold: 1.1, Interval: 2 * time.Second},
	})
	// Shard 0 hosts two populated bands (0 and 2); shard 1 hosts band 1
	// lightly. The controller should shed band 2 — not band 0, whose
	// larger population would just move the hotspot.
	for i := 0; i < 12; i++ {
		c.ConnectAt(fmt.Sprintf("hot%d", i), nil, c.TileCenter(world.TileID{X: 0}))
	}
	for i := 0; i < 8; i++ {
		c.ConnectAt(fmt.Sprintf("warm%d", i), nil, c.TileCenter(world.TileID{X: 2}))
	}
	for i := 0; i < 2; i++ {
		c.ConnectAt(fmt.Sprintf("cold%d", i), nil, c.TileCenter(world.TileID{X: 1}))
	}
	c.Start()
	loop.RunUntil(90 * time.Second)

	if got := c.TilesMoved.Value(); got < 1 {
		t.Fatalf("controller moved %d tiles, want >= 1", got)
	}
	if got := c.Table().Owner(world.TileID{X: 2}); got != 1 {
		t.Fatalf("tile 2 owner = %d, want 1 (shed to the cold shard)", got)
	}
	if got := c.Table().Owner(world.TileID{X: 0}); got != 0 {
		t.Fatalf("tile 0 owner = %d: the controller moved the hotspot instead of shedding", got)
	}
	s0, s1 := c.Shard(0).PlayerCount(), c.Shard(1).PlayerCount()
	if s0 != 12 || s1 != 10 {
		t.Fatalf("post-rebalance split %d/%d, want 12/10", s0, s1)
	}
}

// TestRebalanceDeterministicReplay runs the same seeded rebalancing
// cluster twice and requires identical handoff and migration logs.
func TestRebalanceDeterministicReplay(t *testing.T) {
	run := func() ([]HandoffRecord, []MigrationRecord) {
		loop, c := newTestCluster(t, 42, 2, Config{
			Rebalance: RebalanceConfig{Enabled: true, Threshold: 1.1, Interval: 2 * time.Second},
		})
		for i := 0; i < 10; i++ {
			c.ConnectAt(fmt.Sprintf("a%d", i), nil, c.TileCenter(world.TileID{X: 0}))
		}
		for i := 0; i < 6; i++ {
			c.ConnectAt(fmt.Sprintf("b%d", i), nil, c.TileCenter(world.TileID{X: 2}))
		}
		c.ConnectAt("c0", nil, c.TileCenter(world.TileID{X: 1}))
		c.Start()
		loop.RunUntil(90 * time.Second)
		return c.Log.All(), c.MigrationLog.All()
	}
	h1, m1 := run()
	h2, m2 := run()
	if len(m1) == 0 {
		t.Fatal("no migrations recorded; test proves nothing")
	}
	if len(h1) != len(h2) || len(m1) != len(m2) {
		t.Fatalf("log lengths differ: handoffs %d/%d, migrations %d/%d", len(h1), len(h2), len(m1), len(m2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("handoff[%d] differs: %+v vs %+v", i, h1[i], h2[i])
		}
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("migration[%d] differs: %+v vs %+v", i, m1[i], m2[i])
		}
	}
}

// TestGridRebalanceSplitsZAxisCrowd is the tentpole property of the tile
// rekey: under a 2-D grid topology, a crowd spread along the Z axis
// spans several tiles (and shards) — where the 1-D band topology would
// have fused the whole column into one band on one shard — and the
// controller sheds tiles from the hot row-shards to the cold ones.
func TestGridRebalanceSplitsZAxisCrowd(t *testing.T) {
	topo := world.GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4}
	loop, c := newTestCluster(t, 21, 4, Config{
		Topology:  topo,
		Rebalance: RebalanceConfig{Enabled: true, Threshold: 1.1, Interval: 2 * time.Second},
	})
	// Balanced baseline: 5 players in each shard's home tile.
	for s := 0; s < 4; s++ {
		for j := 0; j < 5; j++ {
			c.ConnectAt(fmt.Sprintf("base%d-%d", s, j), nil, c.Home(s))
		}
	}
	// A Z-axis crowd along column x=0: tiles (0,0) and (0,1).
	tileA, tileB := world.TileID{X: 0, Z: 0}, world.TileID{X: 0, Z: 1}
	if c.Table().Owner(tileA) == c.Table().Owner(tileB) {
		t.Fatalf("Z-separated tiles %v and %v share a shard; the grid is not splitting Z", tileA, tileB)
	}
	for j := 0; j < 15; j++ {
		c.ConnectAt(fmt.Sprintf("crowdA%d", j), nil, c.TileCenter(tileA))
		c.ConnectAt(fmt.Sprintf("crowdB%d", j), nil, c.TileCenter(tileB))
	}
	c.Start()
	loop.RunUntil(2 * time.Minute)

	if got := c.TilesMoved.Value(); got < 2 {
		t.Fatalf("controller moved %d tiles, want >= 2 (one per hot row)", got)
	}
	// The crowd tiles themselves must not have moved (shedding them would
	// just relocate the hotspot); the light home tiles did.
	if got := c.Table().Owner(tileA); got != 0 {
		t.Errorf("crowd tile %v moved to shard %d: hotspot relocated instead of shed", tileA, got)
	}
	max := 0
	for i := 0; i < 4; i++ {
		if n := c.Shard(i).PlayerCount(); n > max {
			max = n
		}
	}
	if max >= 20 {
		t.Fatalf("hottest shard still hosts %d of 50 players; no load left the hot rows", max)
	}
}

// chatOnce emits a single chat action on the first tick.
func chatOnce() mve.Behavior {
	sent := false
	return mve.BehaviorFunc(func(_ *rand.Rand, _ *mve.Player, _ *mve.Server) []mve.Action {
		if sent {
			return nil
		}
		sent = true
		return []mve.Action{{Kind: mve.ActionChat}}
	})
}

// TestCrossShardChat is the regression for single-shard chat fan-out:
// recipients on other shards must receive the message.
func TestCrossShardChat(t *testing.T) {
	loop, c := newTestCluster(t, 16, 2, Config{})
	c.ConnectAt("speaker", chatOnce(), c.Home(0))
	c.ConnectAt("listener", nil, c.Home(1))
	c.Start()
	loop.RunUntil(5 * time.Second)

	total := c.Shard(0).ChatsDelivered.Value() + c.Shard(1).ChatsDelivered.Value()
	if total != 2 {
		t.Fatalf("chat deliveries = %d, want 2 (both shards' players)", total)
	}
	if got := c.Shard(1).ChatsDelivered.Value(); got != 1 {
		t.Fatalf("foreign shard deliveries = %d, want 1", got)
	}
}

// TestPickTilePrefersContiguousMigration is the island-tile regression:
// when two of the hot shard's tiles tie on the post-move maximum, the
// controller must pick the one grafting onto the cold shard's territory
// (most Topology.Neighbors owned by cold), not the lower-index tile in
// the middle of the hot territory — which would strand an island of
// foreign ownership inside it.
func TestPickTilePrefersContiguousMigration(t *testing.T) {
	topo := world.GridTopology{TilesX: 3, TilesZ: 3, TileChunks: 4}
	loop, c := newTestCluster(t, 21, 2, Config{Topology: topo})
	// Serpentine default split: shard 0 owns indices 0-4 — tiles (0,0),
	// (1,0), (2,0), (2,1), (1,1) — shard 1 owns the rest. Candidates
	// (1,0) [index 1] and (2,1) [index 3] get equal hotspots; (1,0) has
	// one cold neighbour (its torus north, (1,2)), (2,1) has two ((0,1)
	// east across the wrap and (2,2) south).
	for i := 0; i < 3; i++ {
		c.ConnectAt(fmt.Sprintf("a%d", i), nil, c.TileCenter(world.TileID{X: 1, Z: 0}))
		c.ConnectAt(fmt.Sprintf("b%d", i), nil, c.TileCenter(world.TileID{X: 2, Z: 1}))
	}
	for i := 0; i < 2; i++ {
		c.ConnectAt(fmt.Sprintf("c%d", i), nil, c.TileCenter(world.TileID{X: 0, Z: 2}))
	}
	tile, ok := c.pickTile(0, 1)
	if !ok {
		t.Fatal("pickTile found no candidate")
	}
	if tile != (world.TileID{X: 2, Z: 1}) {
		t.Fatalf("pickTile chose %v; want the contiguity-preserving tile(2,1)", tile)
	}
	// Sanity: both candidates really do tie on the post-move maximum.
	if adjA, adjB := c.coldAdjacency(world.TileID{X: 1, Z: 0}, 1), c.coldAdjacency(world.TileID{X: 2, Z: 1}, 1); adjA >= adjB {
		t.Fatalf("test geometry broken: adjacency %d >= %d", adjA, adjB)
	}
	_ = loop
}

// TestCheckpointRestoresInventoryOnFailover: a player that never crossed
// a boundary (so the handoff path never persisted it) must survive a
// shard failure with inventory intact, courtesy of the periodic
// checkpoint loop — not merely at its scan-tracked position.
func TestCheckpointRestoresInventoryOnFailover(t *testing.T) {
	loop, remote, c := newStoreCluster(t, 22, 2, Config{Checkpoint: 2 * time.Second})
	p := c.ConnectAt("homebody", nil, c.Home(1))
	c.Session(p).Inventory = 7
	c.Start()
	loop.RunUntil(10 * time.Second)

	if c.Checkpoints.Value() == 0 {
		t.Fatal("no checkpoints written; test proves nothing")
	}
	if !remote.Exists(rstore.PlayerKey("homebody")) {
		t.Fatal("checkpoint did not persist the player record")
	}
	if !c.FailShard(1) {
		t.Fatal("FailShard refused")
	}
	loop.RunUntil(30 * time.Second)

	sess := c.Session(p)
	if sess == nil {
		t.Fatal("player lost in failover")
	}
	if sess.Inventory != 7 {
		t.Fatalf("inventory after failover = %d, want 7 (checkpoint ignored)", sess.Inventory)
	}
	home := c.Home(1)
	if dx := sess.X - float64(home.X); dx < -1 || dx > 1 {
		t.Fatalf("position after failover x=%g, want ≈%d", sess.X, home.X)
	}
}

// TestCheckpointDisabledLosesInventory pins the contract the checkpoint
// loop exists to fix: without it, a never-persisted player fails over at
// its scan-tracked position with an empty record.
func TestCheckpointDisabledLosesInventory(t *testing.T) {
	loop, _, c := newStoreCluster(t, 23, 2, Config{})
	p := c.ConnectAt("homebody", nil, c.Home(1))
	c.Session(p).Inventory = 7
	c.Start()
	loop.RunUntil(10 * time.Second)
	if !c.FailShard(1) {
		t.Fatal("FailShard refused")
	}
	loop.RunUntil(30 * time.Second)
	sess := c.Session(p)
	if sess == nil {
		t.Fatal("player lost in failover")
	}
	if sess.Inventory == 7 {
		t.Fatal("inventory survived without checkpointing; the regression test above is vacuous")
	}
}
