// The cluster control plane: a controller loop that watches per-shard
// tick load, migrates tile ownership between shards when the load
// imbalance drifts past a threshold (live rebalancing), and fails a
// killed shard's tiles and players over to the survivors.
//
// A migration is two-phase. First the source shard flushes its copy of
// the tile's chunks through the storage substrate with completion
// reporting (mve.FlushOwnedChunks + SyncingChunkStore), so a brownout
// delays the flush but cannot lose chunk state; only once every write
// has landed does the ownership table flip the tile to its new owner
// (epoch bump, persisted through the TableStore). Resident players then
// follow their tile through the ordinary boundary-scan handoff — two-scan
// hysteresis, retrying storage writes — because the scan consults the
// live table and now sees them on foreign terrain.

package cluster

import (
	"sort"
	"time"

	"servo/internal/metrics"
	"servo/internal/mve"
	"servo/internal/world"
)

// Controller defaults.
const (
	// DefaultRebalanceThreshold is the load_imbalance (max over shards of
	// mean tick duration, divided by the cross-shard mean) above which the
	// controller migrates a tile.
	DefaultRebalanceThreshold = 1.25
	// DefaultRebalanceInterval is the controller check cadence.
	DefaultRebalanceInterval = 2 * time.Second
	// rebalanceStreak is how many consecutive over-threshold checks arm a
	// migration: the rebalancer's hysteresis against transient spikes,
	// mirroring the handoff scan's two-scan rule.
	rebalanceStreak = 2
)

// RebalanceConfig tunes the controller loop.
type RebalanceConfig struct {
	// Enabled turns live rebalancing on. Failover (FailShard/RecoverShard)
	// works regardless: it is driven by explicit calls, not by load.
	Enabled bool
	// Threshold is the imbalance trigger (0 → DefaultRebalanceThreshold).
	Threshold float64
	// Interval is the check cadence (0 → DefaultRebalanceInterval).
	Interval time.Duration
}

// withDefaults fills zero fields.
func (r RebalanceConfig) withDefaults() RebalanceConfig {
	if r.Threshold == 0 {
		r.Threshold = DefaultRebalanceThreshold
	}
	if r.Interval == 0 {
		r.Interval = DefaultRebalanceInterval
	}
	return r
}

// MigrationRecord logs one ownership change, in completion order. Like
// the handoff Log, the sequence is part of the deterministic replay
// surface: same seed, same records.
type MigrationRecord struct {
	Tile     world.TileID
	From, To int
	Epoch    uint64
	// Reason is "rebalance", "failover", or "recover".
	Reason string
	// Latency is the flush-to-flip wall time (zero for failover, which
	// flips immediately: the dead shard has nothing left to flush).
	Latency time.Duration
}

// controllerTick is one controller check: measure per-shard tick load
// over the last interval, and migrate one tile from the hottest to the
// coldest shard once the imbalance has stayed over threshold for
// rebalanceStreak consecutive checks.
func (c *Cluster) controllerTick() {
	if c.stopped {
		return
	}
	defer c.clock.After(c.reb.Interval, c.controllerTick)
	if len(c.migrating) > 0 || len(c.draining) > 0 {
		// Let the in-flight migration (or a drain emptying a shard toward
		// retirement) land before re-measuring.
		return
	}
	imb, hot, cold := c.loadImbalance()
	if imb < c.reb.Threshold || hot == cold {
		c.hotStreak = 0
		return
	}
	c.hotStreak++
	if c.hotStreak < rebalanceStreak {
		return
	}
	c.hotStreak = 0
	if tile, ok := c.pickTile(hot, cold); ok {
		c.Rebalances.Inc()
		c.migrateTile(tile, cold, "rebalance")
	}
}

// shardLoad is shard i's mean tick duration over the last controller
// interval, read from the server's tick time series.
func (c *Cluster) shardLoad(i int) time.Duration {
	now := c.clock.Now()
	s := &metrics.Sample{}
	s.AddAll(c.shards[i].TickSeries.ValuesBetween(now-c.reb.Interval, now))
	return s.Mean()
}

// loadImbalance returns metrics.ImbalanceRatio of per-shard tick load
// across the alive shards, plus the hottest and coldest shard indices
// (ties broken toward the lower index, keeping the controller
// deterministic).
func (c *Cluster) loadImbalance() (imb float64, hot, cold int) {
	hot, cold = -1, -1
	var hotLoad, coldLoad float64
	var loads []float64
	for i := range c.shards {
		if !c.table.Alive(i) || c.draining[i] {
			continue
		}
		load := float64(c.shardLoad(i))
		loads = append(loads, load)
		if hot < 0 || load > hotLoad {
			hot, hotLoad = i, load
		}
		if cold < 0 || load < coldLoad {
			cold, coldLoad = i, load
		}
	}
	if hot < 0 {
		return 1, 0, 0
	}
	return metrics.ImbalanceRatio(loads), hot, cold
}

// pickTile chooses which of the hot shard's tiles to migrate to the cold
// shard: resident player count is the per-tile load proxy over the 2-D
// load map, and the tile minimising the post-move maximum of the two
// shards wins — with strict improvement required, so a single dominant
// hotspot tile is never ping-ponged between shards. Ties break toward
// territory contiguity: among equally good tiles, the one with the most
// Topology.Neighbors already owned by the cold shard wins (a tile grafts
// onto the cold territory's edge instead of being stranded as an island
// inside the hot one), then toward the lower space-filling index (on
// bands every tile has the same adjacency, so this stays identical to
// the PR 3 lowest-band rule).
func (c *Cluster) pickTile(hot, cold int) (world.TileID, bool) {
	counts := make(map[world.TileID]int)
	var tiles []world.TileID
	hotPlayers, coldPlayers := 0, 0
	for _, id := range c.order {
		p := c.players[id]
		if p.inflight {
			continue
		}
		sess := c.shards[p.shard].Player(p.pid)
		if sess == nil {
			continue
		}
		tile := c.table.TileOfBlock(sess.Pos())
		switch p.shard {
		case hot:
			hotPlayers++
			if c.table.Owner(tile) == hot {
				if counts[tile] == 0 {
					tiles = append(tiles, tile)
				}
				counts[tile]++
			}
		case cold:
			coldPlayers++
		}
	}
	cur := hotPlayers
	if coldPlayers > cur {
		cur = coldPlayers
	}
	var best world.TileID
	bestMax, bestAdj := 0, -1
	found := false
	for _, tile := range tiles {
		n := counts[tile]
		m := hotPlayers - n
		if coldPlayers+n > m {
			m = coldPlayers + n
		}
		if m >= cur {
			continue // no strict improvement: never a candidate
		}
		adj := c.coldAdjacency(tile, cold)
		better := !found || m < bestMax
		if !better && m == bestMax {
			better = adj > bestAdj || (adj == bestAdj && c.topo.Index(tile) < c.topo.Index(best))
		}
		if better {
			best, bestMax, bestAdj, found = tile, m, adj, true
		}
	}
	if !found {
		return world.TileID{}, false
	}
	return best, true
}

// TileLoad is one tile's attributed cost across the cluster: the
// per-tile load signal (actions processed and chunk writes issued on the
// tile's terrain) behind the resident-player proxy pickTile uses today —
// exposed so controller policies (and reports) can consume real per-tick
// cost instead of head counts.
type TileLoad struct {
	Tile  world.TileID
	Owner int
	// Actions and Stores accumulate since boot, summed across shards.
	Actions, Stores int64
}

// TileLoads returns the per-tile attributed cost, summed across every
// shard's server and sorted by the topology's space-filling index (on
// unbounded band topologies only tiles that saw work appear).
func (c *Cluster) TileLoads() []TileLoad {
	sums := make(map[world.TileID]*TileLoad)
	var order []world.TileID
	for _, s := range c.shards {
		for tile, cost := range s.TileCosts() {
			tl, ok := sums[tile]
			if !ok {
				tl = &TileLoad{Tile: tile, Owner: c.table.Owner(tile)}
				sums[tile] = tl
				order = append(order, tile)
			}
			tl.Actions += cost.Actions
			tl.Stores += cost.Stores
		}
	}
	sort.Slice(order, func(i, j int) bool { return c.topo.Index(order[i]) < c.topo.Index(order[j]) })
	out := make([]TileLoad, 0, len(order))
	for _, tile := range order {
		out = append(out, *sums[tile])
	}
	return out
}

// coldAdjacency counts how many of a tile's neighbours the destination
// shard already owns: the contiguity score of migrating it there.
func (c *Cluster) coldAdjacency(tile world.TileID, cold int) int {
	adj := 0
	for _, n := range c.topo.Neighbors(tile) {
		if c.table.Owner(n) == cold {
			adj++
		}
	}
	return adj
}

// MigrateTile migrates ownership of a tile to dst: flush the source
// shard's chunk copies with completion reporting, then flip the table
// (epoch bump, persisted). Resident players follow through the boundary
// scan. Reports whether a migration was started.
func (c *Cluster) MigrateTile(tile world.TileID, dst int) bool {
	return c.migrateTile(tile, dst, "manual")
}

func (c *Cluster) migrateTile(tile world.TileID, dst int, reason string) bool {
	// Canonical form: the flush predicate and the in-flight set compare
	// against TileOf output, which an aliased caller reference would miss.
	tile = c.table.Canon(tile)
	src := c.table.Owner(tile)
	if src == dst || !c.table.Alive(dst) || c.migrating[tile] {
		return false
	}
	c.migrating[tile] = true
	start := c.clock.Now()
	pred := func(cp world.ChunkPos) bool { return c.table.TileOf(cp) == tile }
	c.shards[src].FlushOwnedChunks(pred, func() {
		delete(c.migrating, tile)
		if c.stopped || !c.table.Alive(dst) {
			return // the cluster stopped or dst died while we flushed
		}
		if !c.table.SetOwner(tile, dst) {
			return
		}
		c.persistTable()
		c.TilesMoved.Inc()
		if reason == "drain" {
			c.TilesDrained.Inc()
		}
		c.MigrationLog.Append(MigrationRecord{
			Tile: tile, From: src, To: dst,
			Epoch: c.table.Epoch(), Reason: reason,
			Latency: c.clock.Now() - start,
		})
	})
	return true
}

// FailShard kills shard i: its loop crashes (every in-memory session is
// gone), its tiles reroute deterministically to the survivors (epoch
// bump), and its players are re-admitted from their last persisted
// snapshots — falling back to the last scan-observed position for players
// that were never persisted, so a failover loses no player. Owned-
// construct state on the dead shard died with it; the ownership refs are
// dropped. Refuses to kill the last alive shard.
func (c *Cluster) FailShard(i int) bool {
	if i < 0 || i >= len(c.shards) || !c.table.Alive(i) || c.table.AliveCount() <= 1 {
		return false
	}
	// Collect the victims before the crash wipes the shard's sessions.
	var victims []*Player
	for _, id := range c.order {
		if p := c.players[id]; p.shard == i && !p.inflight {
			victims = append(victims, p)
		}
	}
	c.shards[i].Crash()
	c.table.SetDead(i, true)
	// A crash aborts any drain in progress on the shard: failover owns
	// the cleanup from here.
	delete(c.draining, i)
	if c.tracker != nil && c.tracker.RecordFailure(i, c.clock.Now()) {
		c.Quarantines.Inc()
		c.ScaleLog.Append(ScaleRecord{At: c.clock.Now(), Kind: "quarantine", Shard: i, Epoch: c.table.Epoch()})
	}
	c.persistTable()
	c.Failovers.Inc()
	c.noteShardsActive()
	c.MigrationLog.Append(MigrationRecord{
		From: i, To: -1, Epoch: c.table.Epoch(), Reason: "failover",
	})
	for _, p := range victims {
		c.readmit(p)
	}
	return true
}

// readmit restores one failed shard's session: from the last persisted
// snapshot when the transfer store has one, else at the last scan-
// observed position with an empty record.
func (c *Cluster) readmit(p *Player) {
	p.inflight = true
	p.constructs = nil
	finish := func(snap mve.PlayerSnapshot) {
		p.inflight = false
		if p.closed {
			c.drop(p.ID)
			return
		}
		dst := c.table.ShardOfBlock(world.BlockPos{X: int(snap.X), Z: int(snap.Z)})
		sess := c.shards[dst].AdmitPlayer(snap)
		// The re-admitted avatar supersedes any ghost of itself here.
		if c.vis.Enabled && c.shards[dst].RemoveGhost(p.Name) {
			c.GhostLog.Append(GhostRecord{Player: p.Name, Shard: dst, Event: "promote"})
		}
		p.shard, p.pid, p.pendingShard = dst, sess.ID, dst
		c.PlayersFailedOver.Inc()
	}
	fallback := mve.PlayerSnapshot{
		Name: p.Name,
		X:    float64(p.lastPos.X), Z: float64(p.lastPos.Z),
		DestX: float64(p.lastPos.X), DestZ: float64(p.lastPos.Z),
		Behavior: p.behavior,
	}
	if c.transfer == nil {
		finish(fallback)
		return
	}
	c.transfer.Load(p.Name, func(data []byte, ok bool) {
		snap := fallback
		if ok {
			if dec, err := mve.DecodeSnapshot(data); err == nil {
				dec.Name, dec.Behavior = p.Name, p.behavior
				// Constructs in a stale handoff snapshot were already
				// respawned somewhere when that handoff completed;
				// re-restoring them would duplicate world state.
				dec.Constructs = nil
				snap = dec
			}
		}
		finish(snap)
	})
}

// RecoverShard replaces a failed shard: every survivor flushes the chunks
// it owns (so the store holds the interim owners' state), a fresh server
// is built over the persisted world through the ShardBuilder, and the
// shard is marked alive again — reverting its tiles (epoch bump), after
// which resident players walk home through the boundary scan. Reports
// whether a recovery was started.
func (c *Cluster) RecoverShard(i int) bool {
	if i < 0 || i >= len(c.shards) || c.table.Alive(i) || c.table.Retired(i) || c.stopped {
		return false
	}
	if c.tracker != nil && c.tracker.Quarantined(i, c.clock.Now()) {
		// Crash-looping shard: refuse re-admission until probation passes.
		// The autoscaler retries once it does.
		c.recoverWanted[i] = true
		return false
	}
	delete(c.recoverWanted, i)
	pending := 1
	finish := func() {
		pending--
		if pending != 0 || c.stopped {
			return
		}
		// The replacement process boots over the persisted world. It
		// inherits the crashed server's tick history (the dead gap is
		// simply absent), so report series and windowed assertions keep
		// spanning the whole run.
		crashed := c.shards[i]
		c.shards[i] = c.build(i, c.table.View(i))
		c.shards[i].TickDurations = crashed.TickDurations
		c.shards[i].TickSeries = crashed.TickSeries
		// Tile-cost accounting survives the rebuild too: the autoscaler
		// differences the cluster-summed signal, which must not regress.
		c.shards[i].AdoptTileCosts(crashed.TileCosts())
		src := c.shards[i]
		src.SetChatRelay(func(from *mve.Player) int { return c.relayChat(src, from) })
		c.table.SetDead(i, false)
		c.persistTable()
		c.noteShardsActive()
		c.MigrationLog.Append(MigrationRecord{
			From: -1, To: i, Epoch: c.table.Epoch(), Reason: "recover",
		})
		if c.running {
			c.shards[i].Start()
		}
	}
	for s := range c.shards {
		if !c.table.Alive(s) {
			continue
		}
		pending++
		c.shards[s].FlushOwnedChunks(nil, finish)
	}
	finish()
	return true
}
