package sc

// Builders for the construct families used by the paper's workloads:
// oscillating clock circuits (the canonical looping construct of §III-C1)
// and lamp banks driven by them. All builders produce constructs that keep
// changing state every step, so they exert steady simulation load.

// NewClock builds a ring oscillator: `inverters` inverter cells (use an odd
// count for a true oscillator) connected in a ring by wire runs of
// wireRun cells each. Its state sequence is periodic, making it the
// canonical target for the loop-detection cost optimisation.
func NewClock(inverters, wireRun int) *Construct {
	if inverters < 1 {
		inverters = 1
	}
	if wireRun < 0 {
		wireRun = 0
	}
	if wireRun > MaxPower-2 {
		wireRun = MaxPower - 2 // power must survive the run
	}
	// Lay the ring out on a 2-row strip: the top row carries the chain
	// left-to-right, the bottom row carries the return wire.
	segment := 1 + wireRun
	w := inverters * segment
	c := New(w, 3)
	for i := 0; i < inverters; i++ {
		x := i * segment
		c.Set(x, 0, Cell{Kind: Inverter, On: i == 0})
		for j := 1; j <= wireRun; j++ {
			c.Set(x+j, 0, Cell{Kind: Wire})
		}
	}
	// Return path along row 2 with repeaters to refresh power each segment.
	for x := 0; x < w; x++ {
		c.Set(x, 2, Cell{Kind: Wire})
	}
	c.Set(0, 1, Cell{Kind: Wire})
	c.Set(w-1, 1, Cell{Kind: Repeater, Delay: 1})
	return c
}

// NewLampBank builds a construct with one clock (3 inverters) driving rows
// of lamps through wire columns — a "blinking wall". It is used to build
// constructs of specific block counts for the §IV-G experiments.
func NewLampBank(rows, cols int) *Construct {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	if cols > MaxPower-1 {
		cols = MaxPower - 1 // keep the whole row powered from one feed
	}
	// Layout: row 0 is a 3-inverter clock strip; below it, `rows` rows of
	// alternating wire/lamp cells fed from a vertical wire on column 0.
	w := cols + 1
	if w < 7 {
		w = 7
	}
	c := New(w, rows+2)
	// Clock: inverter at (0,0) feeding wire (1..2,0), inverter at 3, wires,
	// inverter at 6 — a 3-element ring closed through row 1 col 0.
	c.Set(0, 0, Cell{Kind: Inverter, On: true})
	c.Set(1, 0, Cell{Kind: Wire})
	c.Set(2, 0, Cell{Kind: Wire})
	c.Set(3, 0, Cell{Kind: Inverter})
	c.Set(4, 0, Cell{Kind: Wire})
	c.Set(5, 0, Cell{Kind: Wire})
	c.Set(6, 0, Cell{Kind: Inverter})
	c.Set(0, 1, Cell{Kind: Wire}) // feedback + distribution column head
	for r := 0; r < rows; r++ {
		y := r + 2
		c.Set(0, y, Cell{Kind: Wire})
		for x := 1; x <= cols; x++ {
			if x%4 == 0 {
				c.Set(x, y, Cell{Kind: Lamp})
			} else {
				c.Set(x, y, Cell{Kind: Wire})
			}
		}
	}
	return c
}

// BuildSized returns an active construct with exactly target non-empty
// blocks (for target ≥ 12), built from a lamp bank padded with trailing
// wire cells. The paper's §IV-G experiments use 252- and 484-block
// constructs.
func BuildSized(target int) *Construct {
	if target < 12 {
		target = 12
	}
	// Start from a lamp bank whose count is close to but below target.
	cols := 12
	rows := (target - 8) / (cols + 1)
	if rows < 1 {
		rows = 1
	}
	c := NewLampBank(rows, cols)
	have := c.BlockCount()
	for have > target {
		rows--
		if rows < 1 {
			break
		}
		c = NewLampBank(rows, cols)
		have = c.BlockCount()
	}
	// Pad with inert wire on the last row until the count matches. The
	// pad wires hang off the distribution column so they stay part of the
	// powered circuit.
	w, h := c.Size()
	grown := New(w+(target-have)+1, h+1)
	copyInto(grown, c)
	y := h
	grown.Set(0, y, Cell{Kind: Wire})
	for i := 0; i < target-have; i++ {
		grown.Set(1+i%(w+target-have), y, Cell{Kind: Wire})
	}
	// Trim any overshoot by removing pad wires right-to-left.
	excess := grown.BlockCount() - target
	for x := grown.w - 1; x >= 0 && excess > 0; x-- {
		if grown.At(x, y).Kind == Wire {
			grown.Set(x, y, Cell{})
			excess--
		}
	}
	return grown
}

func copyInto(dst, src *Construct) {
	w, h := src.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if cell := src.At(x, y); cell.Kind != Empty {
				dst.Set(x, y, cell)
			}
		}
	}
}
