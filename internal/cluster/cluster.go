// Package cluster scales the MVE horizontally: a Cluster partitions chunk
// space into region tiles (1-D X bands or 2-D grid tiles, see
// world.Topology), runs one mve.Server per shard on the shared virtual
// clock, and routes player sessions to the shard owning their avatar's
// region. The serverless substrate — blob store,
// FaaS platform, warm pools — is shared across shards (one
// storage/compute layer, N game loops: the paper's architecture,
// multiplied); internal/core owns that wiring through a ShardBuilder
// callback, so this package depends only on mve and world.
//
// Region ownership is runtime state, not boot configuration: a shared
// world.OwnershipTable (tile → owning shard, versioned by an epoch
// counter, persisted through the storage substrate) backs every shard's
// region view, and a controller loop (controller.go) migrates tile
// ownership between shards when tick load drifts out of balance, and
// fails a killed shard's tiles and players over to the survivors.
//
// Cross-shard handoff: a periodic scan detects avatars that crossed a
// region boundary (with one scan of hysteresis against boundary
// oscillation) and transfers the session — the player snapshot plus any
// player-owned constructs is saved through the cluster's Transfer (the
// shared storage substrate, with retrying writes, so a brownout delays
// but never loses state), restored on the target shard, and admitted
// there. The wall between eviction and admission is the handoff latency,
// recorded per transfer. Ownership migration and failover reuse the same
// machinery: after an epoch change, resident players simply look foreign
// to the scan and follow their tile to its new owner.
package cluster

import (
	"time"

	"servo/internal/metrics"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/sim"
	"servo/internal/world"
)

// DefaultScanInterval is how often the cluster checks avatars against
// region boundaries (5 ticks at the 20 Hz default rate).
const DefaultScanInterval = 250 * time.Millisecond

// ShardBuilder constructs shard i's server owning region. internal/core
// supplies a builder that wires every shard onto one shared serverless
// substrate.
type ShardBuilder func(shard int, region world.Region) *mve.Server

// Transfer persists handoff state through the cluster's storage
// substrate, keyed by player name. Save must survive transient storage
// faults (retry until the write lands) and call done exactly once; Load
// reports ok=false only for genuinely absent records. A nil Transfer
// makes handoff an in-memory move with zero latency (no store
// configured).
type Transfer interface {
	Save(name string, data []byte, done func())
	Load(name string, cb func(data []byte, ok bool))
}

// TableStore persists the ownership table through the cluster's storage
// substrate. Save must survive transient faults (retry until the write
// lands); Load reports ok=false only for a genuinely absent table. A nil
// TableStore keeps the table in memory only.
type TableStore interface {
	SaveTable(data []byte)
	LoadTable(cb func(data []byte, ok bool))
}

// Config configures a Cluster.
type Config struct {
	// Shards is the number of region shards (required, >= 1).
	Shards int
	// Topology is the region tiling (nil → the default band topology,
	// world.BandTopology{}).
	Topology world.Topology
	// ScanInterval is the boundary-scan cadence (0 → DefaultScanInterval).
	ScanInterval time.Duration
	// Transfer persists handoff state; nil moves state in memory.
	Transfer Transfer
	// TableStore persists the ownership table; nil keeps it in memory.
	TableStore TableStore
	// Rebalance configures the controller loop (zero value: disabled).
	Rebalance RebalanceConfig
	// Autoscale configures the elastic shard-count policy subsystem
	// (zero value: disabled; see autoscaler.go).
	Autoscale AutoscaleConfig
	// OnRetire, when non-nil, runs after a drained shard is retired —
	// internal/core stops the shard's cache flusher through it, the same
	// teardown FailShard performs for a crashed shard.
	OnRetire func(shard int)
	// Visibility configures the interest-management layer: border-tile
	// avatar replication across shards (zero value: disabled).
	Visibility VisibilityConfig
	// Checkpoint is the periodic player-checkpoint cadence: every
	// interval, each session's snapshot is persisted through Transfer so
	// a shard failover restores inventory even for players that never
	// crossed a boundary (0 disables; requires a Transfer).
	Checkpoint time.Duration
	// LogRetention caps each replay log (handoffs, migrations, ghost
	// events) at the most recent N records (0 → DefaultLogRetention,
	// < 0 → unbounded).
	LogRetention int
}

// PlayerID is a cluster-global player identity, stable across handoffs
// (shard-level mve.PlayerIDs change when a session moves).
type PlayerID uint64

// Player is a cluster-level session handle.
type Player struct {
	ID   PlayerID
	Name string

	shard    int
	pid      mve.PlayerID
	behavior mve.Behavior
	// pendingShard is the boundary-scan hysteresis state: a handoff
	// starts only when two consecutive scans agree on the same foreign
	// shard, so an avatar oscillating on a tile edge does not thrash.
	pendingShard int
	// inflight marks a handoff in progress (the session is on no shard
	// while its state crosses the storage substrate).
	inflight bool
	// closed marks a disconnect issued mid-handoff; the transfer
	// completes by persisting the state instead of admitting it.
	closed bool
	// lastPos is the avatar position at the most recent boundary scan:
	// the failover fallback when a player on a killed shard was never
	// persisted.
	lastPos world.BlockPos
	// constructs are the player-owned constructs simulated on the
	// player's shard and travelling with it on handoff.
	constructs []ownedConstruct
	// vc is the session's cached border membership (see visibility.go);
	// the visibility scan recomputes it only when position, host shard,
	// or ownership epoch changed.
	vc visCache
}

// OwnedConstructs returns the number of constructs owned by the player.
func (p *Player) OwnedConstructs() int { return len(p.constructs) }

// Shard returns the index of the shard currently hosting the session
// (the source shard while a handoff is in flight).
func (p *Player) Shard() int { return p.shard }

// InFlight reports whether the session is mid-handoff.
func (p *Player) InFlight() bool { return p.inflight }

// ownedConstruct tracks one player-owned construct on its current shard,
// by anchor: shard-level ids are not stable across the halt/resume cycle
// (resuming re-adds the construct under a fresh id), so the live id is
// resolved from the anchor at handoff time.
type ownedConstruct struct {
	anchor world.BlockPos
}

// HandoffRecord logs one completed handoff, in completion order. The
// sequence is part of the deterministic replay surface: same seed, same
// records.
type HandoffRecord struct {
	Player   string
	From, To int
	Latency  time.Duration
}

// Cluster is a set of region shards behind one session router.
type Cluster struct {
	clock sim.Clock
	cfg   Config
	topo  world.Topology
	// table is the live ownership state every shard's region view reads.
	table *world.OwnershipTable
	// build rebuilds a shard server after failover (RecoverShard).
	build ShardBuilder

	shards     []*mve.Server
	transfer   Transfer
	tableStore TableStore

	players map[PlayerID]*Player
	order   []PlayerID
	nextID  PlayerID

	running bool
	stopped bool

	// Controller state (see controller.go).
	reb RebalanceConfig
	// hotStreak counts consecutive over-threshold controller checks (the
	// rebalancer's two-check hysteresis, mirroring the handoff scan's).
	hotStreak int
	// migrating marks tiles whose ownership flush is in flight.
	migrating map[world.TileID]bool

	// Autoscaler state (see autoscaler.go).
	auto AutoscaleConfig
	// tracker records per-shard crash history (nil unless autoscaling is
	// enabled, so failover semantics are unchanged without it).
	tracker *failureTracker
	// draining marks shards being emptied toward retirement.
	draining map[int]bool
	// recoverWanted marks shards whose RecoverShard was refused by
	// quarantine; the autoscaler re-admits them once probation expires.
	recoverWanted map[int]bool
	// rateState holds per-tile demand-rate history between policy ticks.
	rateState  map[world.TileID]*tileRateState
	lastRateAt time.Duration
	// lastScaleUp / lastScaleDown drive the per-direction cooldowns.
	lastScaleUp   time.Duration
	lastScaleDown time.Duration
	// lastActiveCount is the most recent ShardsActive sample.
	lastActiveCount int

	// Handoff metrics.
	Handoffs       metrics.Counter
	HandoffLatency *metrics.Sample
	HandoffsIn     []metrics.Counter // per target shard
	HandoffsOut    []metrics.Counter // per source shard
	// Log records completed handoffs in completion order, bounded by
	// Config.LogRetention.
	Log RecordRing[HandoffRecord]

	// Control-plane metrics.
	Rebalances        metrics.Counter // controller rebalance decisions
	TilesMoved        metrics.Counter // completed ownership migrations
	Failovers         metrics.Counter // shards failed over
	PlayersFailedOver metrics.Counter // sessions re-admitted after a shard kill
	// MigrationLog records ownership changes in completion order (part of
	// the deterministic replay surface, like Log), bounded by
	// Config.LogRetention.
	MigrationLog RecordRing[MigrationRecord]

	// Autoscaling metrics (see autoscaler.go).
	ScaleUps     metrics.Counter // shards added at runtime
	ScaleDowns   metrics.Counter // shards drained and retired
	Quarantines  metrics.Counter // crash-loop quarantine entries
	TilesDrained metrics.Counter // tiles migrated off draining shards
	// ScaleLog records autoscaling events in occurrence order (part of
	// the deterministic replay surface), bounded by Config.LogRetention.
	ScaleLog RecordRing[ScaleRecord]
	// ShardsActive samples the alive shard count at every change: the
	// scale trajectory, reported as a time series.
	ShardsActive *metrics.TimeSeries
	// ShardsPeak is the highest alive shard count seen.
	ShardsPeak int

	// Visibility state (see visibility.go).
	vis VisibilityConfig
	// visSeq numbers replication scans (ghost staleness stamps).
	visSeq uint64
	// GhostUpdates counts digest entries applied to ghost registries.
	GhostUpdates metrics.Counter
	// VisibilityGaps counts replication scans during which some
	// cross-shard pair of avatars within view distance was not served by
	// a ghost (the visibility_gap_ticks metric).
	VisibilityGaps metrics.Counter
	// GhostLog records ghost-registry transitions in occurrence order
	// (part of the deterministic replay surface, like Log), bounded by
	// Config.LogRetention.
	GhostLog RecordRing[GhostRecord]
	// VisRecomputes counts border-membership recomputations — the dirty
	// set's size summed over scans. With idle sessions it stops growing:
	// the incremental scan's observable win.
	VisRecomputes metrics.Counter
	// DigestErrors counts digests the encoder refused to emit (an entry
	// the wire form cannot represent; the ghosts still apply).
	DigestErrors metrics.Counter
	// DigestsSent counts per-pair digests actually published, and
	// DigestsSkipped those suppressed by the rate limiter: a pair whose
	// entry list is byte-identical to its last published digest under an
	// unchanged ownership epoch skips publication, capped at
	// digestMaxSkips consecutive skips so ghost staleness stamps keep
	// refreshing well inside the expiry TTL.
	DigestsSent    metrics.Counter
	DigestsSkipped metrics.Counter

	// Reused visibility-scan scratch (see visibility.go).
	visAll       []visSess
	visResidents []int
	visBuckets   map[visCell][]int
	visPairs     map[visPair]*visPairState
	visBorders   []world.BorderNeighbor

	// Checkpoints counts periodic player-checkpoint writes (checkpoint.go).
	Checkpoints metrics.Counter
}

// New builds a cluster of cfg.Shards servers via build. Shard servers are
// constructed in shard order, so builders drawing from the shared clock
// RNG stay deterministic.
func New(clock sim.Clock, cfg Config, build ShardBuilder) *Cluster {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Topology == nil {
		cfg.Topology = world.BandTopology{}
	}
	if cfg.ScanInterval == 0 {
		cfg.ScanInterval = DefaultScanInterval
	}
	if cfg.LogRetention == 0 {
		cfg.LogRetention = DefaultLogRetention
	}
	cfg.Rebalance = cfg.Rebalance.withDefaults()
	cfg.Visibility = cfg.Visibility.withDefaults()
	cfg.Autoscale = cfg.Autoscale.withDefaults(cfg.Shards)
	c := &Cluster{
		clock:          clock,
		cfg:            cfg,
		topo:           cfg.Topology,
		table:          world.NewOwnershipTable(cfg.Shards, cfg.Topology),
		build:          build,
		transfer:       cfg.Transfer,
		tableStore:     cfg.TableStore,
		reb:            cfg.Rebalance,
		vis:            cfg.Visibility,
		auto:           cfg.Autoscale,
		migrating:      make(map[world.TileID]bool),
		draining:       make(map[int]bool),
		recoverWanted:  make(map[int]bool),
		rateState:      make(map[world.TileID]*tileRateState),
		players:        make(map[PlayerID]*Player),
		HandoffLatency: metrics.NewSample(4096),
		HandoffsIn:     make([]metrics.Counter, cfg.Shards),
		HandoffsOut:    make([]metrics.Counter, cfg.Shards),
		Log:            newRecordRing[HandoffRecord](cfg.LogRetention),
		MigrationLog:   newRecordRing[MigrationRecord](cfg.LogRetention),
		GhostLog:       newRecordRing[GhostRecord](cfg.LogRetention),
		ScaleLog:       newRecordRing[ScaleRecord](cfg.LogRetention),
		ShardsActive:   &metrics.TimeSeries{},
		visBuckets:     make(map[visCell][]int),
		visPairs:       make(map[visPair]*visPairState),
	}
	if cfg.Autoscale.Enabled {
		c.tracker = newFailureTracker(failureTrackerConfig{
			maxFailures: cfg.Autoscale.MaxFailures,
			window:      cfg.Autoscale.FailureWindow,
			probation:   cfg.Autoscale.Probation,
		})
	}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, build(i, c.table.View(i)))
	}
	for _, s := range c.shards {
		src := s
		s.SetChatRelay(func(from *mve.Player) int { return c.relayChat(src, from) })
	}
	return c
}

// Topology returns the cluster's region tiling. Ownership itself lives
// in the Table.
func (c *Cluster) Topology() world.Topology { return c.topo }

// Table returns the live ownership table.
func (c *Cluster) Table() *world.OwnershipTable { return c.table }

// Epoch returns the current ownership epoch.
func (c *Cluster) Epoch() uint64 { return c.table.Epoch() }

// Alive reports whether shard i's loop is running.
func (c *Cluster) Alive(i int) bool { return c.table.Alive(i) }

// AliveCount returns the number of alive (neither dead nor retired)
// shards.
func (c *Cluster) AliveCount() int { return c.table.AliveCount() }

// TileCenter returns the block position at the center of a tile's
// canonical rectangle (tile-targeted fleet placement).
func (c *Cluster) TileCenter(t world.TileID) world.BlockPos { return c.topo.Center(t) }

// relayChat fans one chat message out across every live shard (cross-
// shard chat): each shard counts its local deliveries and the total is
// the sender's fan-out cost. In-flight sessions (mid-handoff) are on no
// shard and miss the message, exactly as they would miss any broadcast.
//
// src is the sending player's shard. Under lane-parallel execution chat
// actions run inside src's lane, so the cross-shard counter writes are
// deferred to src's commit drain; the recipient counts themselves are
// safe to read during the wave (session membership only changes in
// serial events) and cannot change before the drain runs.
func (c *Cluster) relayChat(src *mve.Server, from *mve.Player) int {
	total := 0
	for i, s := range c.shards {
		if !c.table.Alive(i) {
			continue
		}
		total += s.PlayerCount()
	}
	sim.Commit(src.Clock(), func() {
		for i, s := range c.shards {
			if !c.table.Alive(i) {
				continue
			}
			s.ChatsDelivered.Add(int64(s.PlayerCount()))
		}
	})
	return total
}

// persistTable writes the ownership table through the table store (every
// epoch change is durable before the next controller decision).
func (c *Cluster) persistTable() {
	if c.tableStore != nil {
		c.tableStore.SaveTable(c.table.Encode())
	}
}

// Shards returns the shard servers in shard order.
func (c *Cluster) Shards() []*mve.Server { return c.shards }

// Shard returns shard i's server.
func (c *Cluster) Shard(i int) *mve.Server { return c.shards[i] }

// Start starts every shard's game loop, the boundary scan, and (when
// enabled) the rebalance controller. A persisted ownership table is
// adopted asynchronously, so a cluster restarting over an existing world
// resumes its ownership history.
func (c *Cluster) Start() {
	if c.running {
		return
	}
	c.running = true
	for _, s := range c.shards {
		s.Start()
	}
	if c.tableStore != nil {
		c.tableStore.LoadTable(func(data []byte, ok bool) {
			if !ok {
				return
			}
			if dec, err := world.DecodeOwnershipTable(data); err == nil {
				c.table.Adopt(dec)
			}
		})
	}
	c.clock.After(c.cfg.ScanInterval, c.scan)
	c.lastRateAt = c.clock.Now()
	c.noteShardsActive()
	if c.reb.Enabled {
		c.clock.After(c.reb.Interval, c.controllerTick)
	}
	if c.auto.Enabled {
		c.clock.After(c.auto.Interval, c.autoscalerTick)
	}
	if c.vis.Enabled {
		c.clock.After(c.vis.Interval, c.visibilityScan)
	}
	if c.transfer != nil && c.cfg.Checkpoint > 0 {
		c.clock.After(c.cfg.Checkpoint, c.checkpointTick)
	}
}

// Stop halts the shards and the boundary scan.
func (c *Cluster) Stop() {
	c.stopped = true
	for _, s := range c.shards {
		s.Stop()
	}
}

// Connect joins a player at the world spawn point, routed to the shard
// owning spawn.
func (c *Cluster) Connect(name string, b mve.Behavior) *Player {
	return c.ConnectAt(name, b, world.BlockPos{})
}

// ConnectAt joins a player standing at pos, routed to the owning shard
// (shard-aware fleet placement). Persisted player data still overrides
// the position once the shard's store answers.
func (c *Cluster) ConnectAt(name string, b mve.Behavior, pos world.BlockPos) *Player {
	shard := c.table.ShardOfBlock(pos)
	// A rejoining identity supersedes any stale ghost of its former life
	// on the joining shard (the real avatar is authoritative).
	if c.vis.Enabled && c.shards[shard].RemoveGhost(name) {
		c.GhostLog.Append(GhostRecord{Player: name, Shard: shard, Event: "promote"})
	}
	sess := c.shards[shard].ConnectAt(name, b, float64(pos.X), float64(pos.Z))
	c.nextID++
	p := &Player{
		ID:           c.nextID,
		Name:         name,
		shard:        shard,
		pid:          sess.ID,
		behavior:     b,
		pendingShard: shard,
		lastPos:      pos,
	}
	c.players[p.ID] = p
	c.order = append(c.order, p.ID)
	return p
}

// Home returns a spawn position inside shard i's default territory (see
// world.HomeTile).
func (c *Cluster) Home(i int) world.BlockPos {
	return c.topo.Center(world.HomeTile(c.topo, c.cfg.Shards, i))
}

// Disconnect removes a session wherever it currently lives, reporting
// whether the handle was known (false for a repeated disconnect). A
// disconnect racing an in-flight handoff is honoured when the transfer
// completes: the moved state is persisted rather than admitted, so
// nothing is lost.
func (c *Cluster) Disconnect(id PlayerID) bool {
	p, ok := c.players[id]
	if !ok {
		return false
	}
	if p.inflight {
		p.closed = true
		return true
	}
	c.shards[p.shard].Disconnect(p.pid)
	c.drop(id)
	return true
}

// drop removes the handle from the routing tables.
func (c *Cluster) drop(id PlayerID) {
	delete(c.players, id)
	for i, pid := range c.order {
		if pid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Players returns the live session handles in join order.
func (c *Cluster) Players() []*Player {
	out := make([]*Player, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.players[id])
	}
	return out
}

// PlayerCount returns the number of live sessions (including in-flight
// handoffs).
func (c *Cluster) PlayerCount() int { return len(c.players) }

// Session returns the shard-level session behind a handle, or nil while
// the player is mid-handoff.
func (c *Cluster) Session(p *Player) *mve.Player {
	if p.inflight {
		return nil
	}
	return c.shards[p.shard].Player(p.pid)
}

// SpawnConstruct activates an unowned construct on the shard owning its
// anchor and returns (shard, id). Unowned constructs never migrate.
func (c *Cluster) SpawnConstruct(con *sc.Construct, anchor world.BlockPos) (int, uint64) {
	shard := c.table.ShardOfBlock(anchor)
	return shard, c.shards[shard].SpawnConstruct(con, anchor)
}

// SpawnOwnedConstruct activates a construct owned by a player. Owned
// constructs are simulated by the shard hosting their owner (their
// outputs feed that player's client) and travel with the owner on
// handoff when their anchor lies in the destination region — the case
// where the footprint moves between chunk copies each persisted by
// their owning shard. Constructs anchored elsewhere, constructs that are
// halted (chunk unloaded) at handoff time, and all owned constructs on
// disconnect stay behind on their current shard as unowned.
func (c *Cluster) SpawnOwnedConstruct(con *sc.Construct, anchor world.BlockPos, owner *Player) uint64 {
	id := c.shards[owner.shard].SpawnConstruct(con, anchor)
	owner.constructs = append(owner.constructs, ownedConstruct{anchor: anchor})
	return id
}

// scan walks every session in join order and starts handoffs for avatars
// that settled in a foreign region (two consecutive scans agreeing, the
// hysteresis against tile-edge oscillation).
func (c *Cluster) scan() {
	if c.stopped {
		return
	}
	for _, id := range append([]PlayerID(nil), c.order...) {
		p, ok := c.players[id]
		if !ok || p.inflight {
			continue
		}
		sess := c.shards[p.shard].Player(p.pid)
		if sess == nil {
			continue
		}
		p.lastPos = sess.Pos()
		// The live table, not the boot assignment: after a migration or
		// failover bumped the epoch, residents of a moved tile look
		// foreign here and follow their tile to its new owner through the
		// ordinary handoff machinery.
		want := c.table.ShardOfBlock(sess.Pos())
		if want == p.shard {
			p.pendingShard = p.shard
			continue
		}
		if want != p.pendingShard {
			p.pendingShard = want // first sighting: arm the hysteresis
			continue
		}
		c.handoff(p, want)
	}
	c.clock.After(c.cfg.ScanInterval, c.scan)
}

// handoff transfers a session from its current shard to dst: evict, save
// the snapshot (player + owned constructs) through the storage substrate,
// restore on dst, admit. With a nil Transfer the move is purely in
// memory.
func (c *Cluster) handoff(p *Player, dst int) {
	src := p.shard
	snap, ok := c.shards[src].EvictPlayer(p.pid)
	if !ok {
		return
	}
	start := c.clock.Now()
	p.inflight = true
	// Visually seamless handoff: the evicted session leaves a pinned
	// ghost behind, so viewers on the source shard keep seeing the
	// avatar while its state crosses the storage substrate.
	c.demoteToGhost(p, src, snap.X, snap.Z, dst)
	// Owned constructs whose anchor lies in the destination region leave
	// the source shard with their owner, resolved by anchor (ids are not
	// stable across halt/resume). Migration is restricted to
	// destination-region anchors so the world footprint only ever moves
	// between chunk copies persisted by their owning shard — eviction
	// clears the source's never-persisted ghost copy, respawn writes the
	// destination's owned copy. Constructs anchored elsewhere (and
	// constructs currently halted) stay behind on the source shard as
	// unowned.
	for _, oc := range p.constructs {
		if c.table.ShardOfBlock(oc.anchor) != dst {
			continue
		}
		id, ok := c.shards[src].ActiveConstructAt(oc.anchor)
		if !ok {
			continue
		}
		if con, anchor, ok := c.shards[src].EvictConstruct(id); ok {
			snap.Constructs = append(snap.Constructs, mve.ConstructSnapshot{
				Anchor: anchor,
				Layout: con.EncodeLayout(),
				State:  con.State(),
			})
		}
	}
	p.constructs = nil

	// restoreConstructs re-activates the travelling constructs on a
	// shard, returning their ownership refs.
	restoreConstructs := func(shard int, snaps []mve.ConstructSnapshot) []ownedConstruct {
		var out []ownedConstruct
		for _, cs := range snaps {
			con, err := sc.DecodeLayout(cs.Layout)
			if err != nil {
				continue
			}
			if err := con.SetState(cs.State); err != nil {
				continue
			}
			c.shards[shard].SpawnConstruct(con, cs.Anchor)
			out = append(out, ownedConstruct{anchor: cs.Anchor})
		}
		return out
	}

	finish := func(restored mve.PlayerSnapshot) {
		p.inflight = false
		if !c.table.Alive(dst) {
			// The destination died while the state crossed the substrate:
			// re-route to whichever shard owns the position now (the
			// failover reassignment), exactly like a fresh admission.
			dst = c.table.ShardOfBlock(world.BlockPos{X: int(restored.X), Z: int(restored.Z)})
		}
		if p.closed {
			// Disconnected mid-handoff: the player record is already
			// persisted (when a Transfer exists), and the travelling
			// constructs land on the target shard as unowned — the same
			// stay-behind contract as a plain disconnect. The avatar is
			// gone for good, so its ghosts must not linger pinned.
			c.dropGhosts(p.Name)
			restoreConstructs(dst, restored.Constructs)
			c.drop(p.ID)
			return
		}
		sess := c.shards[dst].AdmitPlayer(restored)
		// The target's ghost promotes to the real avatar; the source's
		// pinned double unpins and rides the normal refresh/expiry cycle.
		c.promoteFromGhost(p, src, dst, restored.X, restored.Z)
		p.shard, p.pid, p.pendingShard = dst, sess.ID, dst
		p.constructs = restoreConstructs(dst, restored.Constructs)
		lat := c.clock.Now() - start
		c.Handoffs.Inc()
		c.HandoffLatency.Add(lat)
		c.HandoffsIn[dst].Inc()
		c.HandoffsOut[src].Inc()
		c.Log.Append(HandoffRecord{Player: p.Name, From: src, To: dst, Latency: lat})
	}

	if c.transfer == nil {
		finish(snap)
		return
	}
	data := mve.EncodeSnapshot(snap)
	c.transfer.Save(p.Name, data, func() {
		c.transfer.Load(p.Name, func(got []byte, ok bool) {
			restored := snap
			if ok {
				if dec, err := mve.DecodeSnapshot(got); err == nil {
					// Name and Behavior are carried in memory, not on
					// the wire.
					dec.Name, dec.Behavior = snap.Name, snap.Behavior
					restored = dec
				}
			}
			finish(restored)
		})
	})
}
