package servo

import (
	"strings"
	"testing"
	"time"

	"servo/internal/world"
)

func TestInstanceLifecycle(t *testing.T) {
	inst := NewInstance(Config{Seed: 3, WorldType: "flat", Servo: AllServerless()})
	defer inst.Stop()
	inst.SpawnConstruct(NewClockCircuit(), At(8, 5, 8))
	p := inst.Connect("alice", BehaviorRandom)
	if p == nil || p.Name != "alice" {
		t.Fatal("connect failed")
	}
	inst.Run(30 * time.Second)
	if inst.Now() < 30*time.Second {
		t.Fatalf("virtual time did not advance: %v", inst.Now())
	}
	stats := inst.TickStats()
	if stats.Box.N == 0 {
		t.Fatal("no tick samples")
	}
	if !stats.SupportsQoS {
		t.Fatalf("one random player must not break QoS: %v", stats)
	}
	if !strings.Contains(stats.String(), "qos=true") {
		t.Fatalf("stats string malformed: %s", stats)
	}
	inst.Disconnect(p)
	if inst.Server().PlayerCount() != 0 {
		t.Fatal("disconnect failed")
	}
}

func TestInstanceDefaultsAndReset(t *testing.T) {
	inst := NewInstance(Config{}) // all defaults: seed 1, Servo profile
	defer inst.Stop()
	inst.Run(5 * time.Second)
	if inst.TickStats().Box.N == 0 {
		t.Fatal("no ticks with default config")
	}
	inst.ResetStats()
	if inst.TickStats().Box.N != 0 {
		t.Fatal("ResetStats did not clear samples")
	}
	if inst.ViewMargin() <= 0 {
		t.Fatal("view margin must be positive with no players")
	}
}

func TestConstructBuilders(t *testing.T) {
	if NewClockCircuit().BlockCount() == 0 {
		t.Fatal("clock circuit empty")
	}
	if got := NewConstructSized(252).BlockCount(); got != 252 {
		t.Fatalf("NewConstructSized(252) = %d blocks", got)
	}
	if NewLampBank(3, 8).BlockCount() == 0 {
		t.Fatal("lamp bank empty")
	}
}

func TestBaselineProfileInstance(t *testing.T) {
	inst := NewInstance(Config{Seed: 5, WorldType: "flat", Profile: Opencraft})
	defer inst.Stop()
	if inst.System().Platform != nil {
		t.Fatal("baseline instance must not create a FaaS platform")
	}
	inst.Run(10 * time.Second)
	if inst.TickStats().Box.N == 0 {
		t.Fatal("baseline did not tick")
	}
}

func TestRealTimeInstance(t *testing.T) {
	inst := NewInstance(Config{Seed: 9, WorldType: "flat", RealTime: true})
	p := inst.Connect("rt", BehaviorBounded)
	inst.Run(300 * time.Millisecond) // wall-clock sleep
	var n int
	inst.Locked(func() { n = inst.TickStats().Box.N })
	if n < 2 {
		t.Fatalf("real-time instance ticked %d times in 300ms, want ≥ 2", n)
	}
	inst.Disconnect(p)
	inst.Stop()
}

func TestExperimentAPISurface(t *testing.T) {
	exps := ListExperiments()
	for _, name := range []string{"fig1", "fig7a", "fig8", "fig13", "tab1"} {
		if _, ok := exps[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	var sb strings.Builder
	if err := RunExperiment("tab2", DefaultExperimentOptions(), &sb); err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(sb.String(), "40%") {
		t.Fatalf("Table II output wrong:\n%s", sb.String())
	}
	if err := RunExperiment("bogus", DefaultExperimentOptions(), &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDeterministicInstances(t *testing.T) {
	run := func() time.Duration {
		inst := NewInstance(Config{Seed: 21, WorldType: "flat", Servo: AllServerless()})
		defer inst.Stop()
		inst.SpawnConstruct(NewConstructSized(100), At(4, 5, 4))
		inst.Connect("p", BehaviorRandom)
		inst.Run(20 * time.Second)
		return inst.TickStats().Box.P95
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed gave different p95: %v vs %v", a, b)
	}
}

func TestShardedInstance(t *testing.T) {
	inst := NewInstance(Config{Seed: 5, WorldType: "flat", Shards: 2, Servo: Serverless{Storage: true}})
	defer inst.Stop()
	if inst.Cluster() == nil {
		t.Fatal("sharded instance has no cluster")
	}
	p := inst.Connect("bob", BehaviorRandom)
	if p == nil || p.Name != "bob" {
		t.Fatal("connect through the cluster failed")
	}
	inst.SpawnConstruct(NewClockCircuit(), At(8, 5, 8))
	inst.Run(30 * time.Second)
	if inst.TickStats().Box.N == 0 {
		t.Fatal("no pooled tick samples")
	}
	if inst.ViewMargin() <= 0 {
		t.Fatalf("view margin = %d around a bounded player", inst.ViewMargin())
	}
	if !inst.Disconnect(p) {
		t.Fatal("disconnect of a live sharded session reported failure")
	}
	if n := inst.Cluster().PlayerCount(); n != 0 {
		t.Fatalf("player count after disconnect = %d", n)
	}
}

// TestShardedDisconnectReportsNoOps pins the Disconnect contract on a
// sharded instance: a stale session pointer resolves by unique name, but
// with duplicate names the resolution must refuse (returning false)
// rather than guess and disconnect a different player's session.
func TestShardedDisconnectReportsNoOps(t *testing.T) {
	inst := NewInstance(Config{Seed: 6, WorldType: "flat", Shards: 2})
	defer inst.Stop()
	p1 := inst.Connect("dup", BehaviorBounded)
	if !inst.Disconnect(p1) {
		t.Fatal("first disconnect failed")
	}
	if inst.Disconnect(p1) {
		t.Fatal("repeated disconnect of the same session reported success")
	}
	// Two live sessions now share the name; the stale p1 pointer matches
	// neither, and the name fallback is ambiguous — the disconnect must
	// no-op (false) instead of killing one of them at random.
	inst.Connect("dup", BehaviorBounded)
	inst.Connect("dup", BehaviorBounded)
	if inst.Disconnect(p1) {
		t.Fatal("ambiguous stale disconnect reported success")
	}
	if n := inst.Cluster().PlayerCount(); n != 2 {
		t.Fatalf("ambiguous stale disconnect removed a session: %d live, want 2", n)
	}
	// A stale pointer with exactly one name match still resolves: the
	// handle behind the surviving name is the same player.
	p2 := inst.Connect("solo", BehaviorBounded)
	inst.Run(time.Second)
	if !inst.Disconnect(p2) {
		t.Fatal("unique-name disconnect failed")
	}
	if n := inst.Cluster().PlayerCount(); n != 2 {
		t.Fatalf("player count = %d after disconnecting solo, want 2", n)
	}
}

// TestTopologyConfigRejectsInvalid pins the fail-fast contract: a
// misspelled kind or an overcommitted grid must panic at construction,
// never silently boot the band fallback.
func TestTopologyConfigRejectsInvalid(t *testing.T) {
	expectPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: NewInstance did not panic", name)
			}
		}()
		NewInstance(cfg).Stop()
	}
	expectPanic("unknown kind", Config{Shards: 2, Topology: TopologyConfig{Kind: "Grid"}})
	expectPanic("more shards than tiles", Config{
		Shards:   20,
		Topology: TopologyConfig{Kind: "grid", TilesX: 4, TilesZ: 4},
	})
}

// TestGridTopologyInstance boots a sharded instance over a 2-D grid
// topology through the public API and checks that a Z-axis spread of
// players lands on different shards — the placement a band topology
// cannot split.
func TestGridTopologyInstance(t *testing.T) {
	inst := NewInstance(Config{
		Seed:      7,
		WorldType: "flat",
		Shards:    4,
		Topology:  TopologyConfig{Kind: "grid", TilesX: 4, TilesZ: 4},
	})
	defer inst.Stop()
	cl := inst.Cluster()
	if cl == nil {
		t.Fatal("sharded instance has no cluster")
	}
	if cl.Topology().Tiles() != 16 {
		t.Fatalf("grid instance has %d tiles, want 16", cl.Topology().Tiles())
	}
	// Two players one tile apart along Z, same X.
	a := cl.ConnectAt("za", nil, cl.TileCenter(world.TileID{X: 0, Z: 0}))
	b := cl.ConnectAt("zb", nil, cl.TileCenter(world.TileID{X: 0, Z: 1}))
	if a.Shard() == b.Shard() {
		t.Fatalf("Z-separated players share shard %d; the grid is not splitting Z", a.Shard())
	}
	inst.Run(10 * time.Second)
	if inst.TickStats().Box.N == 0 {
		t.Fatal("grid instance did not tick")
	}
}

// TestVisibilityInstance: a sharded instance with visibility on mirrors
// border avatars as ghosts on the neighbouring shard, and rtserve-facing
// state (Server().Ghosts()) sees them.
func TestVisibilityInstance(t *testing.T) {
	inst := NewInstance(Config{
		Seed: 6, WorldType: "flat", Shards: 2,
		Visibility: VisibilityConfig{Enabled: true, Margin: 64},
	})
	defer inst.Stop()
	cl := inst.Cluster()
	// Band 0 spans x in [0,128) by default: stand flush against the seam.
	h := cl.ConnectAt("edge", nil, At(126, 0, 8))
	if h.Shard() != 0 {
		t.Fatalf("edge player on shard %d, want 0", h.Shard())
	}
	inst.Run(5 * time.Second)
	g := cl.Shard(1).Ghost("edge")
	if g == nil {
		t.Fatal("no ghost of the border player on the neighbouring shard")
	}
	if g.Home != 0 {
		t.Fatalf("ghost home = %d, want 0", g.Home)
	}
	if cl.GhostCount() != 1 {
		t.Fatalf("ghost count = %d, want 1", cl.GhostCount())
	}
	if cl.VisibilityGaps.Value() != 0 {
		t.Fatalf("visibility gaps = %d on a single border pair", cl.VisibilityGaps.Value())
	}
}
