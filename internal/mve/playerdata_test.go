package mve

import (
	"testing"
	"testing/quick"
	"time"

	"servo/internal/sim"
	"servo/internal/world"
)

// memPlayerStore is an in-memory PlayerStore (and no-op ChunkStore) with a
// configurable load delay.
type memPlayerStore struct {
	clock   sim.Clock
	delay   time.Duration
	records map[string][]byte
	saves   int
}

func newMemPlayerStore(clock sim.Clock, delay time.Duration) *memPlayerStore {
	return &memPlayerStore{clock: clock, delay: delay, records: make(map[string][]byte)}
}

func (m *memPlayerStore) SavePlayer(name string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.records[name] = cp
	m.saves++
}

func (m *memPlayerStore) LoadPlayer(name string, cb func([]byte, bool)) {
	data, ok := m.records[name]
	m.clock.After(m.delay, func() { cb(data, ok) })
}

func (m *memPlayerStore) Load(pos world.ChunkPos, cb func(*world.Chunk, bool)) {
	m.clock.After(0, func() { cb(nil, false) })
}

func (m *memPlayerStore) Store(*world.Chunk) {}

var (
	_ PlayerStore = (*memPlayerStore)(nil)
	_ ChunkStore  = (*memPlayerStore)(nil)
)

func TestPlayerRecordRoundTripQuick(t *testing.T) {
	f := func(xBits, zBits uint64, inv uint8) bool {
		p := &Player{X: float64(xBits%100000) / 7, Z: -float64(zBits%100000) / 3, Inventory: inv}
		rec, err := decodePlayer(encodePlayer(p))
		return err == nil && rec.X == p.X && rec.Z == p.Z && rec.Inventory == p.Inventory
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePlayerRejectsShortRecord(t *testing.T) {
	if _, err := decodePlayer([]byte{1, 2, 3}); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestPlayerPersistsAcrossSessions(t *testing.T) {
	loop := sim.NewLoop(1)
	store := newMemPlayerStore(loop, 5*time.Millisecond)
	s := NewServer(loop, Config{WorldType: "flat", Store: store})
	s.Start()

	// First session: move somewhere, set inventory, disconnect.
	p := s.Connect("veteran", nil)
	runFor(loop, time.Second)
	p.X, p.Z = 42, -17
	p.destX, p.destZ = 42, -17
	p.Inventory = 9
	s.Disconnect(p.ID)
	if store.saves != 1 {
		t.Fatalf("saves = %d, want 1", store.saves)
	}

	// Second session: state must be restored after the load completes.
	p2 := s.Connect("veteran", nil)
	if p2.X != 0 {
		t.Fatal("player must spawn at origin until the load arrives")
	}
	runFor(loop, time.Second)
	if p2.X != 42 || p2.Z != -17 || p2.Inventory != 9 {
		t.Fatalf("restored state = (%v, %v, inv %d), want (42, -17, 9)", p2.X, p2.Z, p2.Inventory)
	}
}

func TestFirstTimePlayerStartsFresh(t *testing.T) {
	loop := sim.NewLoop(2)
	store := newMemPlayerStore(loop, time.Millisecond)
	s := NewServer(loop, Config{WorldType: "flat", Store: store})
	s.Start()
	p := s.Connect("rookie", nil)
	runFor(loop, time.Second)
	if p.X != 0 || p.Z != 0 || p.Inventory != 0 {
		t.Fatal("first-time player must start at spawn defaults")
	}
}

func TestStaleLoadDoesNotTeleportMovingPlayer(t *testing.T) {
	loop := sim.NewLoop(3)
	store := newMemPlayerStore(loop, 2*time.Second) // very slow storage
	store.records["runner"] = encodePlayer(&Player{X: 999, Z: 999})
	s := NewServer(loop, Config{WorldType: "flat", Store: store})
	s.Start()
	p := s.Connect("runner", nil)
	// The player starts moving before the (slow) load lands.
	p.destX, p.destZ, p.speed = 50, 0, 4
	runFor(loop, 5*time.Second)
	if p.X > 500 {
		t.Fatalf("stale load teleported an active player to X=%v", p.X)
	}
}

func TestNoStoreNoPersistence(t *testing.T) {
	loop, s := newFlatServer(4)
	s.Start()
	p := s.Connect("ghost", nil)
	runFor(loop, 100*time.Millisecond)
	s.Disconnect(p.ID) // must not panic without a store
}
