package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"servo/internal/metrics"
)

// TableI prints the experiment overview (paper Table I): the registry of
// every experiment this harness reproduces, its component modes, workload,
// and the entry point that regenerates it.
func TableI(w io.Writer) {
	fmt.Fprintln(w, "Table I — Overview of Experiments (L = local, S = serverless)")
	t := metrics.Table{Header: []string{
		"experiment", "focus", "SC", "TG", "RS", "players", "behavior", "world", "regenerate with",
	}}
	t.AddRow("IV-B (Fig 7)", "SC: system scalability", "L+S", "L", "L", "10-200", "A", "flat", "servo-bench -exp fig7a,fig7b")
	t.AddRow("IV-C (Fig 8,9)", "SC: latency hiding", "L+S", "L", "L", "1", "-", "flat", "servo-bench -exp fig8,fig9")
	t.AddRow("IV-D (Fig 10,11)", "TG: QoS", "-", "S", "L", "5", "Sinc", "default", "servo-bench -exp fig10,fig11")
	t.AddRow("IV-E (Fig 12)", "TG: system scalability", "-", "L+S", "L+S", "to 30", "S3,S8,R", "default", "servo-bench -exp fig12a,fig12b")
	t.AddRow("IV-F (Fig 13)", "RS: perf. variability", "-", "-", "S", "8", "S3", "default", "servo-bench -exp fig13")
	t.AddRow("IV-G", "SC: performance", "S", "-", "-", "1", "-", "flat", "servo-bench -exp sec4g")
	fmt.Fprint(w, t.String())
}

// TableII prints the random-behavior action distribution (paper Table II).
func TableII(w io.Writer) {
	fmt.Fprintln(w, "Table II — Player actions in the random behavior (R)")
	t := metrics.Table{Header: []string{"probability", "action"}}
	t.AddRow("40%", "Move to a random destination at 1 to 8 blocks per second.")
	t.AddRow("30%", "Break or place a nearby block.")
	t.AddRow("20%", "Stand still.")
	t.AddRow("5%", "Send a message to all other players.")
	t.AddRow("5%", "Set inventory to a random item.")
	fmt.Fprint(w, t.String())
}

// Runner executes one named experiment and prints its report.
type Runner struct {
	Name        string
	Description string
	Run         func(opt Options, w io.Writer)
}

// Runners returns the registry of all experiments, keyed by the names
// accepted by `servo-bench -exp`.
func Runners() []Runner {
	return []Runner{
		{"tab1", "Table I: experiment overview", func(_ Options, w io.Writer) { TableI(w) }},
		{"tab2", "Table II: random behavior actions", func(_ Options, w io.Writer) { TableII(w) }},
		{"fig1", "Fig 1: headline max players", func(o Options, w io.Writer) { Fig1(o).Print(w) }},
		{"fig3", "Fig 3: blob download latency", func(o Options, w io.Writer) { Fig3(o).Print(w) }},
		{"fig7a", "Fig 7a: max players vs SC count", func(o Options, w io.Writer) { Fig7a(o).Print(w) }},
		{"fig7b", "Fig 7b: tick distributions at 200 SCs", func(o Options, w io.Writer) { Fig7b(o).Print(w) }},
		{"fig8", "Fig 8: speculation efficiency", func(o Options, w io.Writer) { Fig8(o).Print(w) }},
		{"fig9", "Fig 9: invocation latency and cost", func(o Options, w io.Writer) { Fig9(o).Print(w) }},
		{"fig10", "Fig 10: terrain generation QoS", func(o Options, w io.Writer) { Fig10(o).Print(w) }},
		{"fig11", "Fig 11: generation vs function memory", func(o Options, w io.Writer) { Fig11(o).Print(w) }},
		{"fig12a", "Fig 12a: terrain scalability S3/S8", func(o Options, w io.Writer) { Fig12a(o).Print(w) }},
		{"fig12b", "Fig 12b: terrain scalability R", func(o Options, w io.Writer) { Fig12b(o).Print(w) }},
		{"fig13", "Fig 13: storage latency ICDF", func(o Options, w io.Writer) { Fig13(o).Print(w) }},
		{"sec4g", "Sec IV-G: offload throughput", func(o Options, w io.Writer) { Sec4G(o).Print(w) }},
		{"abl-loop", "Ablation: loop detection on/off", func(o Options, w io.Writer) { AblationLoop(o).Print(w) }},
		{"abl-prefetch", "Ablation: cache pre-fetching on/off", func(o Options, w io.Writer) { AblationPrefetch(o).Print(w) }},
		{"abl-platform", "Ablation: AWS vs Azure presets", func(o Options, w io.Writer) { AblationPlatform(o).Print(w) }},
	}
}

// RunByName runs the comma-separated experiment list ("all" runs every
// experiment) writing reports to w. Unknown names return an error listing
// valid ones.
func RunByName(names string, opt Options, w io.Writer) error {
	reg := Runners()
	index := make(map[string]Runner, len(reg))
	valid := make([]string, 0, len(reg))
	for _, r := range reg {
		index[r.Name] = r
		valid = append(valid, r.Name)
	}
	var selected []Runner
	if names == "all" {
		selected = reg
	} else {
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			r, ok := index[name]
			if !ok {
				sort.Strings(valid)
				return fmt.Errorf("unknown experiment %q (valid: %s, all)", name, strings.Join(valid, ", "))
			}
			selected = append(selected, r)
		}
	}
	for i, r := range selected {
		if i > 0 {
			fmt.Fprintln(w)
		}
		r.Run(opt, w)
	}
	return nil
}
