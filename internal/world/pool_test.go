package world

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeAppendMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var buf []byte
	for i := 0; i < 10; i++ {
		c := randomChunk(r, int(numBlockIDs))
		want := c.Encode()
		buf = c.EncodeAppend(buf[:0])
		if !bytes.Equal(buf, want) {
			t.Fatalf("EncodeAppend bytes differ from Encode for chunk %v", c.Pos)
		}
		// Append semantics: an existing prefix is preserved.
		withPrefix := c.EncodeAppend([]byte("prefix"))
		if !bytes.Equal(withPrefix[:6], []byte("prefix")) || !bytes.Equal(withPrefix[6:], want) {
			t.Fatalf("EncodeAppend clobbered the dst prefix for chunk %v", c.Pos)
		}
	}
}

// TestDecodeChunkIntoRecycledEqualsFresh is the chunk-recycling contract:
// decoding into a pooled chunk that previously held other terrain must be
// block-for-block identical to a fresh decode, with no residue from the
// previous occupant.
func TestDecodeChunkIntoRecycledEqualsFresh(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		pool := NewChunkPool(4)
		// First occupant: fill a chunk, unload it into the pool.
		prev := randomChunk(rand.New(rand.NewSource(seedA)), 5)
		prev.Version, prev.GenWork = 99, 42
		pool.Put(prev)
		// Second occupant: decode different terrain into the recycled chunk.
		src := randomChunk(rand.New(rand.NewSource(seedB)), 5)
		enc := src.Encode()
		recycled := pool.Get(ChunkPos{})
		if recycled != prev {
			return false // pool must have recycled the same backing chunk
		}
		if err := DecodeChunkInto(recycled, enc); err != nil {
			return false
		}
		fresh, err := DecodeChunk(enc)
		if err != nil {
			return false
		}
		return recycled.Equal(fresh) && recycled.Pos == src.Pos &&
			recycled.Version == 0 && recycled.GenWork == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkPoolResetAndBounds(t *testing.T) {
	pool := NewChunkPool(2)
	c := randomChunk(rand.New(rand.NewSource(3)), 4)
	c.Version, c.GenWork = 7, 9
	pool.Put(c)
	got := pool.Get(ChunkPos{X: 5, Z: -3})
	if got != c {
		t.Fatal("Get did not recycle the shelved chunk")
	}
	if got.Pos != (ChunkPos{X: 5, Z: -3}) || got.Version != 0 || got.GenWork != 0 {
		t.Fatalf("recycled chunk not reset: pos=%v version=%d genwork=%d", got.Pos, got.Version, got.GenWork)
	}
	if got.NonAirCount() != 0 {
		t.Fatalf("recycled chunk holds %d stale blocks, want all air", got.NonAirCount())
	}
	if !got.Equal(NewChunk(ChunkPos{X: 5, Z: -3})) {
		t.Fatal("recycled chunk differs from a fresh NewChunk")
	}
	// Capacity bound: only max chunks are shelved.
	pool.Put(NewChunk(ChunkPos{}))
	pool.Put(NewChunk(ChunkPos{}))
	pool.Put(NewChunk(ChunkPos{}))
	if pool.Len() != 2 {
		t.Fatalf("pool holds %d chunks, want capacity bound 2", pool.Len())
	}
	if pool.Recycled != 1 || pool.Fresh != 0 {
		t.Fatalf("counters = recycled %d fresh %d, want 1/0", pool.Recycled, pool.Fresh)
	}
	// Nil pool degrades to plain allocation.
	var nilPool *ChunkPool
	if nilPool.Get(ChunkPos{X: 1}) == nil || nilPool.Len() != 0 {
		t.Fatal("nil pool Get/Len misbehaved")
	}
	nilPool.Put(c) // must not panic
}

func TestChunkCodecZeroAlloc(t *testing.T) {
	c := NewChunk(ChunkPos{X: 2, Z: -7})
	for x := 0; x < ChunkSizeX; x++ {
		for z := 0; z < ChunkSizeZ; z++ {
			for y := 0; y < 60; y++ {
				c.Set(x, y, z, Block{ID: Stone})
			}
			c.Set(x, 60, z, Block{ID: Grass})
		}
	}
	buf := c.EncodeAppend(nil)
	dec := new(Chunk)
	allocs := testing.AllocsPerRun(20, func() {
		buf = c.EncodeAppend(buf[:0])
		if err := DecodeChunkInto(dec, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm EncodeAppend+DecodeChunkInto allocates %.1f/op, want 0", allocs)
	}
	if !dec.Equal(c) {
		t.Fatal("round trip mismatch")
	}
}
