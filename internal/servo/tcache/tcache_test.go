package tcache

import (
	"errors"
	"testing"
	"time"

	"servo/internal/blob"
	"servo/internal/sim"
	"servo/internal/world"
)

func newFixture(seed int64) (*sim.Loop, *blob.Store, *Cache) {
	loop := sim.NewLoop(seed)
	remote := blob.NewStore(loop, blob.TierPremium)
	c := New(loop, remote, DefaultConfig())
	return loop, remote, c
}

func seedRemote(loop *sim.Loop, remote *blob.Store, pos world.ChunkPos, data []byte) {
	remote.Put(Key(pos), data, nil)
	loop.Run()
}

func TestGetMissFetchesFromRemoteAndCaches(t *testing.T) {
	loop, remote, c := newFixture(1)
	pos := world.ChunkPos{X: 1, Z: 2}
	seedRemote(loop, remote, pos, []byte("chunkdata"))

	var got []byte
	c.Get(pos, func(data []byte, err error) {
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		got = data
	})
	loop.Run()
	if string(got) != "chunkdata" {
		t.Fatalf("got %q", got)
	}
	if c.Misses.Value() != 1 || c.Hits.Value() != 0 {
		t.Fatalf("hits/misses = %d/%d, want 0/1", c.Hits.Value(), c.Misses.Value())
	}
	if !c.Contains(pos) {
		t.Fatal("fetched chunk not cached locally")
	}

	// Second read must hit locally.
	c.Get(pos, func([]byte, error) {})
	loop.Run()
	if c.Hits.Value() != 1 {
		t.Fatalf("second read did not hit the cache")
	}
}

func TestGetMissingEverywhere(t *testing.T) {
	loop, _, c := newFixture(1)
	var gotErr error
	c.Get(world.ChunkPos{X: 9, Z: 9}, func(_ []byte, err error) { gotErr = err })
	loop.Run()
	if !errors.Is(gotErr, blob.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", gotErr)
	}
}

func TestPrefetchHidesRemoteLatency(t *testing.T) {
	loop, remote, c := newFixture(2)
	pos := world.ChunkPos{X: 5, Z: 5}
	seedRemote(loop, remote, pos, []byte("data"))

	c.Prefetch([]world.ChunkPos{pos})
	loop.RunUntil(loop.Now() + 5*time.Second) // let the prefetch land

	start := loop.Now()
	var latency time.Duration
	c.Get(pos, func([]byte, error) { latency = loop.Now() - start })
	loop.Run()
	if latency > 20*time.Millisecond {
		t.Fatalf("post-prefetch read took %v, want local-class latency", latency)
	}
	if c.PrefetchIssued.Value() != 1 {
		t.Fatalf("prefetches = %d, want 1", c.PrefetchIssued.Value())
	}
}

func TestPrefetchSkipsCachedAndInflight(t *testing.T) {
	loop, remote, c := newFixture(3)
	pos := world.ChunkPos{X: 1, Z: 1}
	seedRemote(loop, remote, pos, []byte("d"))
	c.Prefetch([]world.ChunkPos{pos})
	c.Prefetch([]world.ChunkPos{pos}) // in flight: must not duplicate
	loop.Run()
	c.Prefetch([]world.ChunkPos{pos}) // cached: must not refetch
	loop.Run()
	if got := c.PrefetchIssued.Value(); got != 1 {
		t.Fatalf("prefetch issued %d remote reads, want 1", got)
	}
	if remote.Reads.Value() != 1 {
		t.Fatalf("remote reads = %d, want 1", remote.Reads.Value())
	}
}

func TestConcurrentGetsCoalesce(t *testing.T) {
	loop, remote, c := newFixture(4)
	pos := world.ChunkPos{X: 2, Z: 3}
	seedRemote(loop, remote, pos, []byte("d"))
	results := 0
	for i := 0; i < 5; i++ {
		c.Get(pos, func(data []byte, err error) {
			if err != nil || string(data) != "d" {
				t.Errorf("bad result: %q %v", data, err)
			}
			results++
		})
	}
	loop.Run()
	if results != 5 {
		t.Fatalf("callbacks = %d, want 5", results)
	}
	if remote.Reads.Value() != 1 {
		t.Fatalf("remote reads = %d, want 1 (coalesced)", remote.Reads.Value())
	}
}

func TestPutIsWriteBack(t *testing.T) {
	loop, remote, c := newFixture(5)
	pos := world.ChunkPos{X: 7, Z: 7}
	c.Put(pos, []byte("new"))
	if remote.Writes.Value() != 0 {
		t.Fatal("Put must not write through synchronously")
	}
	if c.DirtyLen() != 1 {
		t.Fatalf("dirty = %d, want 1", c.DirtyLen())
	}
	c.Flush()
	loop.Run()
	if !remote.Exists(Key(pos)) {
		t.Fatal("flush did not persist the chunk")
	}
	if c.DirtyLen() != 0 {
		t.Fatal("flush did not clear dirty set")
	}
}

func TestStartFlusherPeriodicWriteBack(t *testing.T) {
	loop, remote, c := newFixture(6)
	c.StartFlusher()
	c.StartFlusher() // idempotent
	c.Put(world.ChunkPos{X: 1, Z: 0}, []byte("a"))
	loop.RunUntil(45 * time.Second) // one flush interval (30s) passes
	if remote.Writes.Value() != 1 {
		t.Fatalf("remote writes = %d, want 1 after first flush", remote.Writes.Value())
	}
	// Nothing new dirty: the next interval must not rewrite.
	loop.RunUntil(100 * time.Second)
	if remote.Writes.Value() != 1 {
		t.Fatalf("idle flusher wrote %d times, want 1", remote.Writes.Value())
	}
}

func TestLocalWriteWinsOverRacingFetch(t *testing.T) {
	loop, remote, c := newFixture(7)
	pos := world.ChunkPos{X: 4, Z: 4}
	seedRemote(loop, remote, pos, []byte("stale"))
	// Start a fetch, then write locally before it completes.
	var got []byte
	c.Get(pos, func(data []byte, err error) { got = data })
	c.Put(pos, []byte("fresh"))
	loop.Run()
	if string(got) != "fresh" {
		t.Fatalf("racing fetch returned %q, want the newer local write", got)
	}
	// And the cache must retain the local version.
	var second []byte
	c.Get(pos, func(data []byte, _ error) { second = data })
	loop.Run()
	if string(second) != "fresh" {
		t.Fatalf("cache kept stale data %q", second)
	}
}

func TestRetrievalLatencyRecorded(t *testing.T) {
	loop, remote, c := newFixture(8)
	pos := world.ChunkPos{X: 0, Z: 1}
	seedRemote(loop, remote, pos, []byte("d"))
	c.Get(pos, func([]byte, error) {})
	loop.Run()
	c.Get(pos, func([]byte, error) {})
	loop.Run()
	if c.RetrievalLatency.Len() != 2 {
		t.Fatalf("latency samples = %d, want 2", c.RetrievalLatency.Len())
	}
	// The miss (first) must be slower than the hit (second).
	vals := c.RetrievalLatency.Values()
	if vals[0] <= vals[1] {
		t.Fatalf("miss latency %v not above hit latency %v", vals[0], vals[1])
	}
}

func TestCacheReducesTailLatency(t *testing.T) {
	// The headline §IV-F result: with prefetching, the p99.9 retrieval
	// latency drops far below the uncached remote p99.9.
	loop := sim.NewLoop(9)
	remote := blob.NewStore(loop, blob.TierPremium)
	// Populate 3000 chunks remotely.
	var positions []world.ChunkPos
	for i := 0; i < 3000; i++ {
		pos := world.ChunkPos{X: i % 100, Z: i / 100}
		positions = append(positions, pos)
		remote.Put(Key(pos), []byte("chunk"), nil)
	}
	loop.Run()

	uncached := blob.NewStore(loop, blob.TierPremium)
	for _, pos := range positions {
		uncached.Put(Key(pos), []byte("chunk"), nil)
	}
	loop.Run()

	c := New(loop, remote, DefaultConfig())
	var cachedLat, rawLat []time.Duration
	for _, pos := range positions {
		// Prefetch a little ahead of the read stream, as the real
		// policy does, then read with a delay that gives prefetch
		// time to land.
		pos := pos
		c.Prefetch([]world.ChunkPos{pos})
		loop.After(2*time.Second, func() {
			start := loop.Now()
			c.Get(pos, func([]byte, error) { cachedLat = append(cachedLat, loop.Now()-start) })
			rawStart := loop.Now()
			uncached.Get(Key(pos), func([]byte, error) { rawLat = append(rawLat, loop.Now()-rawStart) })
		})
		loop.RunUntil(loop.Now() + 50*time.Millisecond)
	}
	loop.Run()

	p999 := func(lats []time.Duration) time.Duration {
		s := sortedCopy(lats)
		return s[len(s)*999/1000]
	}
	cp, rp := p999(cachedLat), p999(rawLat)
	if cp >= rp/3 {
		t.Fatalf("cached p99.9 = %v, uncached = %v: cache must cut the tail ≥ 3×", cp, rp)
	}
	if cp > 40*time.Millisecond {
		t.Fatalf("cached p99.9 = %v, want ≤ ~34ms (paper anchor)", cp)
	}
}

func sortedCopy(in []time.Duration) []time.Duration {
	out := make([]time.Duration, len(in))
	copy(out, in)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
