package mve

import (
	"encoding/binary"
	"errors"
	"math"
)

// PlayerStore persists per-player data (position, inventory). The paper's
// storage design covers player-, meta-, and terrain-data (§III-E); player
// data is fetched "every time a player connects to a game instance"
// (§II-D, Fig. 3) and written back on disconnect.
type PlayerStore interface {
	// SavePlayer persists the encoded player record (asynchronously).
	SavePlayer(name string, data []byte)
	// LoadPlayer fetches the record; ok is false for first-time players.
	LoadPlayer(name string, cb func(data []byte, ok bool))
}

// playerRecord is the persisted subset of Player state.
type playerRecord struct {
	X, Z      float64
	Inventory uint8
}

// encodePlayer serialises a player's persistent state.
func encodePlayer(p *Player) []byte {
	out := make([]byte, 0, 17)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.X))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Z))
	return append(out, p.Inventory)
}

// errBadPlayerRecord reports a corrupt persisted player record.
var errBadPlayerRecord = errors.New("mve: bad player record")

// decodePlayer parses a persisted player record.
func decodePlayer(data []byte) (playerRecord, error) {
	if len(data) < 17 {
		return playerRecord{}, errBadPlayerRecord
	}
	return playerRecord{
		X:         math.Float64frombits(binary.LittleEndian.Uint64(data)),
		Z:         math.Float64frombits(binary.LittleEndian.Uint64(data[8:])),
		Inventory: data[16],
	}, nil
}

// loadPlayerData restores a reconnecting player's persisted state once it
// arrives from storage. Until then the player stands at spawn, exactly as
// on the real systems (the retrieval latency is the player-data curve of
// Fig. 3).
func (s *Server) loadPlayerData(p *Player) {
	ps, ok := s.store.(PlayerStore)
	if !ok {
		return
	}
	id := p.ID
	ps.LoadPlayer(p.Name, func(data []byte, found bool) {
		if !found {
			return
		}
		rec, err := decodePlayer(data)
		if err != nil {
			return
		}
		// Only apply if the session is still live and hasn't moved yet
		// (a stale load must not teleport an active player).
		cur, live := s.players[id]
		if !live || cur != p || p.Moving() {
			return
		}
		p.X, p.Z = rec.X, rec.Z
		p.destX, p.destZ = rec.X, rec.Z
		p.Inventory = rec.Inventory
	})
}

// savePlayerData persists a disconnecting player's state.
func (s *Server) savePlayerData(p *Player) {
	if ps, ok := s.store.(PlayerStore); ok {
		ps.SavePlayer(p.Name, encodePlayer(p))
	}
}
