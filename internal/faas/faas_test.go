package faas

import (
	"testing"
	"time"

	"servo/internal/sim"
)

// testConfig returns a deterministic configuration for latency assertions.
func testConfig() Config {
	return Config{
		MemoryMB:      FullVCPUMemMB,
		ColdStart:     sim.Constant(200 * time.Millisecond),
		NetRTT:        sim.Constant(10 * time.Millisecond),
		KeepAlive:     sim.Constant(time.Minute),
		NsPerWorkUnit: time.Microsecond,
		ParallelFrac:  0.85,
	}
}

func echo(payload []byte) ([]byte, int) { return payload, 1000 } // 1 ms at 1 vCPU

func TestInvokeDeliversResponse(t *testing.T) {
	loop := sim.NewLoop(1)
	p := NewPlatform(loop)
	p.Register("echo", testConfig(), echo)
	var got Invocation
	p.Invoke("echo", []byte("hello"), func(inv Invocation) { got = inv })
	loop.Run()
	if got.Err != nil {
		t.Fatalf("invocation error: %v", got.Err)
	}
	if string(got.Response) != "hello" {
		t.Fatalf("response = %q", got.Response)
	}
	if !got.Cold {
		t.Fatal("first invocation must be a cold start")
	}
	// Cold: 10ms RTT + 200ms cold + 1ms exec = 211ms.
	if got.Latency != 211*time.Millisecond {
		t.Fatalf("cold latency = %v, want 211ms", got.Latency)
	}
}

func TestWarmInvocationSkipsColdStart(t *testing.T) {
	loop := sim.NewLoop(1)
	p := NewPlatform(loop)
	p.Register("echo", testConfig(), echo)
	var second Invocation
	p.Invoke("echo", nil, func(Invocation) {
		// Invoke again once the instance is warm and idle.
		loop.After(time.Second, func() {
			p.Invoke("echo", nil, func(inv Invocation) { second = inv })
		})
	})
	loop.Run()
	if second.Cold {
		t.Fatal("second invocation should reuse the warm instance")
	}
	if second.Latency != 11*time.Millisecond {
		t.Fatalf("warm latency = %v, want 11ms", second.Latency)
	}
}

func TestKeepAliveExpiryCausesColdStart(t *testing.T) {
	loop := sim.NewLoop(1)
	p := NewPlatform(loop)
	p.Register("echo", testConfig(), echo) // keep-alive 1 minute
	var second Invocation
	p.Invoke("echo", nil, func(Invocation) {
		loop.After(2*time.Minute, func() {
			p.Invoke("echo", nil, func(inv Invocation) { second = inv })
		})
	})
	loop.Run()
	if !second.Cold {
		t.Fatal("invocation after keep-alive expiry must be cold")
	}
	if got := p.Function("echo").ColdStarts.Value(); got != 2 {
		t.Fatalf("cold starts = %d, want 2", got)
	}
}

func TestConcurrentInvocationsEachGetAnInstance(t *testing.T) {
	loop := sim.NewLoop(1)
	p := NewPlatform(loop)
	p.Register("echo", testConfig(), echo)
	colds := 0
	for i := 0; i < 10; i++ {
		p.Invoke("echo", nil, func(inv Invocation) {
			if inv.Cold {
				colds++
			}
		})
	}
	loop.Run()
	if colds != 10 {
		t.Fatalf("%d cold starts for 10 concurrent invocations, want 10 (no instance sharing mid-flight)", colds)
	}
	if got := p.Function("echo").WarmInstances(loop.Now()); got != 10 {
		t.Fatalf("warm pool = %d, want 10", got)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	loop := sim.NewLoop(1)
	p := NewPlatform(loop)
	var got Invocation
	p.Invoke("missing", nil, func(inv Invocation) { got = inv })
	loop.Run()
	if got.Err == nil {
		t.Fatal("invoking an unregistered function must error")
	}
}

func TestMemoryScalingSpeedsUpExecution(t *testing.T) {
	// More memory → more vCPU share → lower execution latency (Fig. 11a),
	// with sublinear returns above one vCPU (Fig. 11b).
	latencyFor := func(memMB int) time.Duration {
		loop := sim.NewLoop(7)
		p := NewPlatform(loop)
		cfg := testConfig()
		cfg.MemoryMB = memMB
		cfg.ColdStart = sim.Constant(0)
		cfg.NetRTT = sim.Constant(0)
		p.Register("work", cfg, func([]byte) ([]byte, int) { return nil, 1_000_000 })
		var lat time.Duration
		p.Invoke("work", nil, func(inv Invocation) { lat = inv.Latency })
		loop.Run()
		return lat
	}
	l320 := latencyFor(320)
	l1769 := latencyFor(1769)
	l10240 := latencyFor(10240)
	if !(l320 > l1769 && l1769 > l10240) {
		t.Fatalf("latency must fall with memory: 320MB=%v 1769MB=%v 10240MB=%v", l320, l1769, l10240)
	}
	// Sublinear above one vCPU: 5.8× the compute must yield < 5.8× speedup.
	if ratio := float64(l1769) / float64(l10240); ratio > 5.0 {
		t.Fatalf("speedup beyond one vCPU should be sublinear, got %.1f×", ratio)
	}
	// Linear-ish below one vCPU: 320 MB is ~5.5× slower than 1769 MB.
	if ratio := float64(l320) / float64(l1769); ratio < 4.0 || ratio > 7.0 {
		t.Fatalf("sub-vCPU slowdown ratio = %.1f, want ~5.5", ratio)
	}
}

func TestCPUShare(t *testing.T) {
	if got := CPUShare(FullVCPUMemMB); got != 1.0 {
		t.Fatalf("CPUShare(1769) = %v, want 1", got)
	}
	if got := CPUShare(20000); got != MaxVCPUs {
		t.Fatalf("CPUShare(20000) = %v, want cap %v", got, MaxVCPUs)
	}
	if got := CPUShare(884); got < 0.49 || got > 0.51 {
		t.Fatalf("CPUShare(884) = %v, want ~0.5", got)
	}
}

func TestBillingAccumulates(t *testing.T) {
	loop := sim.NewLoop(1)
	p := NewPlatform(loop)
	f := p.Register("echo", testConfig(), echo)
	for i := 0; i < 100; i++ {
		p.Invoke("echo", nil, func(Invocation) {})
	}
	loop.Run()
	if f.Invocations.Count() != 100 {
		t.Fatalf("invocations = %d, want 100", f.Invocations.Count())
	}
	// 100 × 1 ms at 1769 MB = 0.1s × 1.728 GB ≈ 0.173 GB-s.
	wantGBs := 0.1 * float64(FullVCPUMemMB) / 1024
	if f.BilledGBs < wantGBs*0.9 || f.BilledGBs > wantGBs*1.1 {
		t.Fatalf("billed GB-s = %v, want ~%v", f.BilledGBs, wantGBs)
	}
	if f.BilledDollars() <= 0 {
		t.Fatal("billing must be positive")
	}
}

func TestSmallMemoryHasHigherVariability(t *testing.T) {
	// Fig. 11: performance variability increases as resources decrease.
	spread := func(memMB int) float64 {
		loop := sim.NewLoop(3)
		p := NewPlatform(loop)
		cfg := testConfig()
		cfg.MemoryMB = memMB
		cfg.ColdStart = sim.Constant(0)
		cfg.NetRTT = sim.Constant(0)
		cfg.ExecNoiseSigma = 0.08
		f := p.Register("work", cfg, func([]byte) ([]byte, int) { return nil, 100_000 })
		for i := 0; i < 500; i++ {
			p.Invoke("work", nil, func(Invocation) {})
		}
		loop.Run()
		b := f.Latency.Box()
		return float64(b.P95-b.P5) / float64(b.P50)
	}
	if s320, s10240 := spread(320), spread(10240); s320 <= s10240 {
		t.Fatalf("relative spread at 320MB (%.3f) must exceed 10240MB (%.3f)", s320, s10240)
	}
}

func TestLatencySampleRecorded(t *testing.T) {
	loop := sim.NewLoop(1)
	p := NewPlatform(loop)
	f := p.Register("echo", testConfig(), echo)
	p.Invoke("echo", nil, func(Invocation) {})
	loop.Run()
	if f.Latency.Len() != 1 {
		t.Fatalf("latency samples = %d, want 1", f.Latency.Len())
	}
	if f.Name() != "echo" || f.Configuration().MemoryMB != FullVCPUMemMB {
		t.Fatal("function metadata accessors broken")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	for _, d := range []sim.Dist{cfg.ColdStart, cfg.NetRTT, cfg.KeepAlive} {
		if err := sim.Validate(d); err != nil {
			t.Fatalf("default config distribution invalid: %v", err)
		}
	}
	if cfg.NsPerWorkUnit <= 0 || cfg.ParallelFrac <= 0 || cfg.ParallelFrac >= 1 {
		t.Fatal("default config parameters out of range")
	}
}
