package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"servo/internal/core"
	"servo/internal/faas"
	"servo/internal/metrics"
	"servo/internal/sc"
	"servo/internal/servo/specexec"
	"servo/internal/sim"
	"servo/internal/world"
)

// Fig8/Fig9 setup (paper §IV-C, Table I row "SC: Latency hiding"): a flat
// world with a small population of offloaded constructs, measuring
// per-invocation efficiency, end-to-end invocation latency, and invocation
// rate for varying tick leads and simulation lengths.

// TickLeads is the Fig. 8 (left) axis.
var TickLeads = []int{0, 10, 20, 40}

// SimLengths is the Fig. 8 (right) / Fig. 9 axis.
var SimLengths = []int{50, 100, 200}

// fig89Constructs is the number of offloaded constructs driving the
// invocation stream, sized so the §IV-C cost analysis lands in the paper's
// $0.216–$0.244/hour band.
const fig89Constructs = 15

// fig89ConstructBlocks sizes the construct so one simulation step costs
// ≈7 ms of single-vCPU function time, putting the 200-step invocation past
// the 20-tick (1000 ms) lead — the regime where the paper observes
// efficiency dropping below 1.0 (Fig. 8 right, Fig. 9 left: 1459 ms mean
// latency at 200 steps).
const fig89ConstructBlocks = 1150

// specRun runs the latency-hiding workload with one (lead, steps)
// configuration and returns the manager and function after the window.
func specRun(lead, steps int, opt Options) (*specexec.Manager, *core.System, time.Duration) {
	loop := sim.NewLoop(opt.Seed)
	sys := core.New(loop, core.Config{
		WorldType:    "flat",
		Seed:         opt.Seed,
		ServerlessSC: true,
		SpecExec:     specexec.Config{TickLead: lead, StepsPerInvocation: steps, DetectLoops: false},
	})
	for i := 0; i < fig89Constructs; i++ {
		sys.Server.SpawnConstruct(sc.BuildSized(fig89ConstructBlocks),
			world.BlockPos{X: (i % 5) * 50, Y: 5, Z: (i / 5) * 50})
	}
	connectPlayers(sys.Server, 1, "A") // Table I: 1 player
	window := opt.window(5 * time.Minute)
	sys.Server.Start()
	// Warm up past the activation invocations (whose efficiency is
	// dominated by the deliberate local-fallback period) and the first
	// cold starts, then measure steady state.
	loop.RunUntil(loop.Now() + 30*time.Second)
	sys.SpecExec.Efficiency = nil
	sys.SCFn.Latency = *metricsNewSample()
	loop.RunUntil(loop.Now() + window)
	sys.Server.Stop()
	return sys.SpecExec, sys, window
}

func metricsNewSample() *metrics.Sample { return metrics.NewSample(4096) }

// Billing constants re-exported for the cost derivation.
const (
	faasDollarsPerGBSecond = faas.DollarsPerGBSecond
	faasDollarsPerRequest  = faas.DollarsPerRequest
)

// EffSummary summarises an efficiency distribution.
type EffSummary struct {
	Median, P25, P75, Min float64
	FracPerfect           float64 // fraction of invocations at efficiency 1.0
	N                     int
}

func summarizeEff(eff []float64) EffSummary {
	if len(eff) == 0 {
		return EffSummary{}
	}
	s := append([]float64(nil), eff...)
	sort.Float64s(s)
	q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
	perfect := 0
	for _, e := range s {
		if e >= 0.9999 {
			perfect++
		}
	}
	return EffSummary{
		Median:      q(0.5),
		P25:         q(0.25),
		P75:         q(0.75),
		Min:         s[0],
		FracPerfect: float64(perfect) / float64(len(s)),
		N:           len(s),
	}
}

// Fig8Report holds both panels of Fig. 8.
type Fig8Report struct {
	// ByLead is the left panel: efficiency vs tick lead (100 steps).
	ByLead map[int]EffSummary
	// BySteps is the right panel: efficiency vs simulation length
	// (20-tick lead).
	BySteps map[int]EffSummary
}

// Fig8 measures speculative-execution efficiency (paper §IV-C, Fig. 8).
func Fig8(opt Options) *Fig8Report {
	r := &Fig8Report{ByLead: make(map[int]EffSummary), BySteps: make(map[int]EffSummary)}
	for _, lead := range TickLeads {
		mgr, _, _ := specRun(lead, 100, opt)
		r.ByLead[lead] = summarizeEff(mgr.Efficiency)
		opt.logf("fig8: lead=%d median=%.2f", lead, r.ByLead[lead].Median)
	}
	for _, steps := range SimLengths {
		mgr, _, _ := specRun(20, steps, opt)
		r.BySteps[steps] = summarizeEff(mgr.Efficiency)
		opt.logf("fig8: steps=%d median=%.2f", steps, r.BySteps[steps].Median)
	}
	return r
}

// Print renders both panels.
func (r *Fig8Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 8 — Efficiency of offloaded simulation")
	fmt.Fprintln(w, "Left: varying tick lead (100-step invocations)")
	t := metrics.Table{Header: []string{"tick lead", "median", "p25", "p75", "min", "frac@1.0", "n"}}
	for _, lead := range TickLeads {
		e := r.ByLead[lead]
		t.AddRow(fmt.Sprint(lead), f2(e.Median), f2(e.P25), f2(e.P75), f2(e.Min), f2(e.FracPerfect), fmt.Sprint(e.N))
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "Right: varying simulation length (20-tick lead)")
	t2 := metrics.Table{Header: []string{"steps", "median", "p25", "p75", "min", "frac@1.0", "n"}}
	for _, steps := range SimLengths {
		e := r.BySteps[steps]
		t2.AddRow(fmt.Sprint(steps), f2(e.Median), f2(e.P25), f2(e.P75), f2(e.Min), f2(e.FracPerfect), fmt.Sprint(e.N))
	}
	fmt.Fprint(w, t2.String())
}

func f2(v float64) string { return fmt.Sprintf("%.3f", v) }

// Fig9Report holds invocation latency and rate vs simulation length, plus
// the §IV-C cost analysis.
type Fig9Report struct {
	Latency     map[int]metrics.Boxplot // per simulation length
	PerMinute   map[int]float64
	DollarsHour map[int]float64
}

// Fig9 measures end-to-end invocation latency and invocations per minute
// for varying simulation lengths (paper Fig. 9), and derives the hourly
// cost the paper reports ($0.216–$0.244/hour).
func Fig9(opt Options) *Fig9Report {
	r := &Fig9Report{
		Latency:     make(map[int]metrics.Boxplot),
		PerMinute:   make(map[int]float64),
		DollarsHour: make(map[int]float64),
	}
	for _, steps := range SimLengths {
		_, sys, window := specRun(20, steps, opt)
		fn := sys.SCFn
		end := window + 30*time.Second // measurement followed warm-up
		r.Latency[steps] = fn.Latency.Box()
		r.PerMinute[steps] = fn.Invocations.RatePerMinute(30*time.Second, end)
		// Cost over the measurement window: mean latency × rate × memory
		// pricing, the paper's own calculation.
		gbSeconds := r.Latency[steps].Mean.Seconds() * r.PerMinute[steps] * 60 *
			float64(fn.Configuration().MemoryMB) / 1024
		r.DollarsHour[steps] = gbSeconds*faasDollarsPerGBSecond +
			r.PerMinute[steps]*60*faasDollarsPerRequest
		opt.logf("fig9: steps=%d mean=%v rate=%.0f/min $%.3f/h",
			steps, r.Latency[steps].Mean, r.PerMinute[steps], r.DollarsHour[steps])
	}
	return r
}

// Print renders both panels plus the cost row.
func (r *Fig9Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 9 — Invocation latency and rate for varying simulation lengths")
	t := metrics.Table{Header: []string{"steps", "mean", "p5", "p50", "p95", "max", "invocations/min", "$/hour"}}
	for _, steps := range SimLengths {
		b := r.Latency[steps]
		t.AddRow(fmt.Sprint(steps), msCell(b.Mean), msCell(b.P5), msCell(b.P50),
			msCell(b.P95), msCell(b.Max),
			fmt.Sprintf("%.0f", r.PerMinute[steps]),
			fmt.Sprintf("%.3f", r.DollarsHour[steps]))
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "(latency in ms; cost from AWS Lambda GB-second + per-request pricing)")
}
