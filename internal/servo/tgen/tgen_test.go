package tgen

import (
	"testing"
	"time"

	"servo/internal/faas"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/world"
)

func fastFnConfig() faas.Config {
	return faas.Config{
		MemoryMB:      faas.FullVCPUMemMB,
		ColdStart:     sim.Constant(0),
		NetRTT:        sim.Constant(10 * time.Millisecond),
		KeepAlive:     sim.Constant(time.Hour),
		NsPerWorkUnit: time.Microsecond,
		ParallelFrac:  0.85,
	}
}

func TestRequestGeneratesCorrectChunk(t *testing.T) {
	loop := sim.NewLoop(1)
	p := faas.NewPlatform(loop)
	gen := terrain.Default{Seed: 42}
	Register(p, gen, fastFnConfig())
	b := NewBackend(p, FunctionName)

	pos := world.ChunkPos{X: 3, Z: -4}
	b.Request(pos)
	loop.Run()
	got := b.Drain()
	if len(got) != 1 {
		t.Fatalf("drained %d chunks, want 1", len(got))
	}
	// Bit-identical to local generation (requirement R4).
	if !got[0].Equal(gen.Generate(pos)) {
		t.Fatal("function-generated chunk differs from local generation")
	}
	if b.Failures != 0 {
		t.Fatalf("failures = %d", b.Failures)
	}
}

func TestRequestDeduplicatesInflight(t *testing.T) {
	loop := sim.NewLoop(2)
	p := faas.NewPlatform(loop)
	fn := Register(p, terrain.Flat{}, fastFnConfig())
	b := NewBackend(p, FunctionName)
	pos := world.ChunkPos{X: 1, Z: 1}
	b.Request(pos)
	b.Request(pos)
	b.Request(pos)
	if b.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1", b.Inflight())
	}
	loop.Run()
	if fn.Invocations.Count() != 1 {
		t.Fatalf("invocations = %d, want 1", fn.Invocations.Count())
	}
	if len(b.Drain()) != 1 {
		t.Fatal("expected exactly one completed chunk")
	}
}

func TestConcurrentFanOut(t *testing.T) {
	// §III-D: "all generation requests can be invoked concurrently" — N
	// requests complete in roughly the time of one, not N.
	loop := sim.NewLoop(3)
	p := faas.NewPlatform(loop)
	cfg := fastFnConfig()
	cfg.NsPerWorkUnit = 40 * time.Microsecond // ~512ms per default chunk
	Register(p, terrain.Default{Seed: 1}, cfg)
	b := NewBackend(p, FunctionName)
	start := loop.Now()
	for i := 0; i < 50; i++ {
		b.Request(world.ChunkPos{X: i, Z: 0})
	}
	loop.Run()
	elapsed := loop.Now() - start
	if got := len(b.Drain()); got != 50 {
		t.Fatalf("completed %d/50", got)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("50 concurrent generations took %v, want ~one generation time", elapsed)
	}
}

func TestUnknownFunctionCountsFailure(t *testing.T) {
	loop := sim.NewLoop(4)
	p := faas.NewPlatform(loop)
	b := NewBackend(p, "missing")
	b.Request(world.ChunkPos{})
	loop.Run()
	if b.Failures != 1 {
		t.Fatalf("failures = %d, want 1", b.Failures)
	}
	if len(b.Drain()) != 0 {
		t.Fatal("failed request must not produce a chunk")
	}
}

func TestRequestCodec(t *testing.T) {
	for _, pos := range []world.ChunkPos{{X: 0, Z: 0}, {X: -100, Z: 100}, {X: 1 << 20, Z: -(1 << 20)}} {
		got, err := DecodeRequest(EncodeRequest(pos))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != pos {
			t.Fatalf("round trip %v → %v", pos, got)
		}
	}
	if _, err := DecodeRequest([]byte{1}); err == nil {
		t.Fatal("truncated request accepted")
	}
}

func TestHandlerRejectsGarbage(t *testing.T) {
	h := NewHandler(terrain.Flat{})
	resp, work := h([]byte{1, 2})
	if resp != nil || work != 1 {
		t.Fatal("handler must fail cleanly on truncated input")
	}
}
