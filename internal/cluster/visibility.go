// The interest-management layer: cross-shard avatar visibility. Each
// shard renders only its own residents, so without replication a player
// standing one block from a tile boundary cannot see an avatar two
// blocks away on the neighbouring shard — and every handoff pops the
// avatar out of one world and into another. The visibility bus closes
// the seam: each replication tick, every shard publishes a compact
// digest of its avatars standing within the border margin of a tile
// boundary (membership via world.BordersWithin: the home tile's
// Topology.Neighbors ring, and further rings when the margin spans
// them), and the shards owning the bordering tiles materialise the
// entries as read-only ghost avatars (mve's ghost registry). Ghosts are
// display-and-prefetch state only; the real session stays where it is.
//
// The scan is incremental. Border membership — which shards a session
// replicates to — is a function of the session's block position, its
// host shard, and the ownership epoch, so it is cached per session and
// recomputed only for the dirty set: sessions that moved at least one
// block, were handed off, or saw the ownership table change under them
// (every migration, failover, and recovery bumps the epoch). The
// displaced-session pairing and the gap audit run over a spatial bucket
// index instead of all pairs. VisibilityConfig.FullRescan disables the
// cache (every scan recomputes everything) — the benchmark baseline and
// the determinism cross-check; both modes produce byte-identical
// digests, ghost logs, and reports.
//
// Handoffs ride the same machinery instead of popping: evicting the
// session demotes it to a pinned ghost on the source shard (viewers keep
// seeing it while its state crosses the storage substrate — pinned
// because an in-flight session cannot refresh itself), and admission on
// the target promotes the ghost there back into a real avatar. Ghosts
// that stop being refreshed — the avatar walked away from the border, or
// disconnected — expire after a few scans.
//
// The bus also audits itself: after applying the digests, it checks
// every cross-shard pair of border residents within view distance of
// each other and counts a visibility gap tick if any viewer's shard is
// missing the matching ghost. A healthy configuration (margin ≥ view
// distance) holds the gap counter at zero; the bundled border-patrol
// scenario asserts exactly that.

package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"servo/internal/world"
)

// Visibility defaults.
const (
	// DefaultVisibilityInterval is the replication cadence: once per
	// 20 Hz server tick.
	DefaultVisibilityInterval = 50 * time.Millisecond
	// ghostTTLScans is how many replication scans a ghost survives
	// without a refresh before it expires (handoff-pinned ghosts are
	// exempt).
	ghostTTLScans = 4
)

// VisibilityConfig tunes the interest-management layer.
type VisibilityConfig struct {
	// Enabled turns border-tile avatar replication on.
	Enabled bool
	// Margin is the border margin in blocks: avatars within Margin of a
	// tile boundary replicate to the bordering tiles' owners
	// (0 → the shard servers' view distance).
	Margin int
	// Interval is the replication cadence (0 → DefaultVisibilityInterval).
	Interval time.Duration
	// FullRescan disables the incremental membership cache: every scan
	// recomputes every session's border membership from scratch, the
	// pre-incremental behaviour. The digest bytes, ghost log, and gap
	// audit are identical either way — this is the benchmark baseline
	// and the determinism cross-check, not a correctness knob.
	FullRescan bool
	// Observer, when set, receives every published per-shard-pair digest
	// (a test hook for the determinism contract; not consulted by the
	// bus itself). The digest buffer is reused on the next scan: observers
	// that keep it must copy.
	Observer func(src, dst int, digest []byte)
}

// withDefaults fills zero fields. The margin default needs the shard
// servers and is resolved at Start.
func (v VisibilityConfig) withDefaults() VisibilityConfig {
	if v.Interval == 0 {
		v.Interval = DefaultVisibilityInterval
	}
	return v
}

// GhostRecord logs one ghost-registry transition, in occurrence order.
// Like the handoff Log, the sequence is part of the deterministic replay
// surface: same seed, same records.
type GhostRecord struct {
	Player string
	// Shard is the shard whose registry changed.
	Shard int
	// Event is "spawn" (scan created a ghost), "demote" (handoff eviction
	// left a pinned ghost behind), "promote" (admission replaced the
	// ghost with the real avatar), "expire" (staleness reaping), or
	// "drop" (the mirrored session disconnected mid-handoff).
	Event string
}

// DigestEntry is one ghost-digest line: an avatar another shard should
// mirror.
type DigestEntry struct {
	Name string
	X, Z float64
	// Home is the shard hosting the real session.
	Home int
}

// Digest wire form. Every digest opens with a version/kind byte: a full
// digest carries each entry's name, position, and home shard; a delta
// digest — emitted when the entry key sequence (names and homes, in
// order) matches the pair's previous digest and the ownership epoch is
// unchanged — carries a changed-entry bitmask and the moved positions
// only. The header byte versions the format so the two forms can never
// be confused with each other (or with the headerless pre-versioned
// encoding).
const (
	digestKindFull  = 0x02
	digestKindDelta = 0x03
)

// Digest entry bounds, enforced at the encode boundary: a name longer
// than 64 KiB cannot be framed by the uint16 length prefix, and a home
// shard outside int32 cannot ride the uint32 slot. Violations are
// errors, never silent truncation.
const (
	maxDigestNameLen = math.MaxUint16
	maxDigestHome    = math.MaxInt32
)

// validateDigestEntries rejects entries the wire form cannot represent.
func validateDigestEntries(entries []DigestEntry) error {
	for i, e := range entries {
		if len(e.Name) > maxDigestNameLen {
			return fmt.Errorf("ghost digest entry %d: name is %d bytes, exceeds the %d-byte frame limit", i, len(e.Name), maxDigestNameLen)
		}
		if e.Home < 0 || e.Home > maxDigestHome {
			return fmt.Errorf("ghost digest entry %d (%q): home shard %d outside [0, %d]", i, e.Name, e.Home, maxDigestHome)
		}
	}
	return nil
}

// appendFullDigest appends the full wire form to buf.
func appendFullDigest(buf []byte, entries []DigestEntry) []byte {
	buf = append(buf, digestKindFull)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Z))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Home))
	}
	return buf
}

// EncodeGhostDigest serialises one shard-pair digest in the full wire
// form (the stateless encoding; DigestEncoder adds delta compression).
// It validates every entry and returns an error instead of corrupting
// the frame.
func EncodeGhostDigest(entries []DigestEntry) ([]byte, error) {
	if err := validateDigestEntries(entries); err != nil {
		return nil, err
	}
	return appendFullDigest(make([]byte, 0, 5+24*len(entries)), entries), nil
}

// DigestEncoder encodes the digest stream of one shard pair with delta
// compression: when the entry key sequence matches the previous digest
// and the epoch is unchanged, only a changed-position bitmask and the
// moved coordinates go on the wire. The buffer is reused across calls —
// zero allocations in steady state — so the returned slice is only valid
// until the next Encode.
type DigestEncoder struct {
	buf   []byte
	prev  []DigestEntry
	epoch uint64
	init  bool
}

// Encode returns the digest for entries at the given ownership epoch:
// delta against the previous digest when the key sequence allows it, a
// full digest on first contact, epoch change, or membership change.
func (e *DigestEncoder) Encode(entries []DigestEntry, epoch uint64) ([]byte, error) {
	if err := validateDigestEntries(entries); err != nil {
		return nil, err
	}
	delta := e.init && epoch == e.epoch && len(entries) == len(e.prev)
	if delta {
		for i := range entries {
			if entries[i].Name != e.prev[i].Name || entries[i].Home != e.prev[i].Home {
				delta = false
				break
			}
		}
	}
	e.buf = e.buf[:0]
	if delta {
		e.buf = append(e.buf, digestKindDelta)
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(entries)))
		mask := len(e.buf)
		for i := 0; i < (len(entries)+7)/8; i++ {
			e.buf = append(e.buf, 0)
		}
		for i, en := range entries {
			if en.X == e.prev[i].X && en.Z == e.prev[i].Z {
				continue
			}
			e.buf[mask+i/8] |= 1 << (i % 8)
			e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(en.X))
			e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(en.Z))
		}
	} else {
		e.buf = appendFullDigest(e.buf, entries)
	}
	e.prev = append(e.prev[:0], entries...)
	e.epoch = epoch
	e.init = true
	return e.buf, nil
}

// DecodeGhostDigest parses a digest. prev is the pair's previously
// decoded entry list, required to resolve a delta digest (nil is fine
// for a full one).
func DecodeGhostDigest(prev []DigestEntry, data []byte) ([]DigestEntry, error) {
	if len(data) < 5 {
		return nil, errors.New("ghost digest: truncated header")
	}
	kind := data[0]
	n := int(binary.LittleEndian.Uint32(data[1:5]))
	data = data[5:]
	switch kind {
	case digestKindFull:
		out := make([]DigestEntry, 0, n)
		for i := 0; i < n; i++ {
			if len(data) < 2 {
				return nil, errors.New("ghost digest: truncated entry")
			}
			nameLen := int(binary.LittleEndian.Uint16(data))
			data = data[2:]
			if len(data) < nameLen+20 {
				return nil, errors.New("ghost digest: truncated entry")
			}
			out = append(out, DigestEntry{
				Name: string(data[:nameLen]),
				X:    math.Float64frombits(binary.LittleEndian.Uint64(data[nameLen:])),
				Z:    math.Float64frombits(binary.LittleEndian.Uint64(data[nameLen+8:])),
				Home: int(int32(binary.LittleEndian.Uint32(data[nameLen+16:]))),
			})
			data = data[nameLen+20:]
		}
		return out, nil
	case digestKindDelta:
		if n != len(prev) {
			return nil, fmt.Errorf("ghost digest: delta over %d entries, previous digest had %d", n, len(prev))
		}
		maskLen := (n + 7) / 8
		if len(data) < maskLen {
			return nil, errors.New("ghost digest: truncated bitmask")
		}
		mask := data[:maskLen]
		data = data[maskLen:]
		out := append([]DigestEntry(nil), prev...)
		for i := 0; i < n; i++ {
			if mask[i/8]&(1<<(i%8)) == 0 {
				continue
			}
			if len(data) < 16 {
				return nil, errors.New("ghost digest: truncated delta entry")
			}
			out[i].X = math.Float64frombits(binary.LittleEndian.Uint64(data))
			out[i].Z = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
			data = data[16:]
		}
		return out, nil
	}
	return nil, fmt.Errorf("ghost digest: unknown kind 0x%02x", kind)
}

// viewDistance resolves the shard servers' shared view distance from the
// first alive shard — a crashed shard's config must never be consulted
// (after FailShard(0) it describes a server that no longer exists). The
// shards are built by one ShardBuilder and share one config today; that
// invariant is asserted, not assumed.
func (c *Cluster) viewDistance() int {
	vd, found := 0, false
	for i, s := range c.shards {
		if !c.table.Alive(i) {
			continue
		}
		v := s.Config().ViewDistance
		if !found {
			vd, found = v, true
			continue
		}
		if v != vd {
			panic(fmt.Sprintf("cluster: alive shards disagree on ViewDistance (%d vs %d); the visibility margins assume one shared shard config", vd, v))
		}
	}
	// found is always true: the ownership table refuses to kill the last
	// alive shard.
	return vd
}

// visMargin returns the effective border margin: the configured value,
// defaulting to the alive shard servers' view distance ("within
// ViewDistance of any tile border").
func (c *Cluster) visMargin() int {
	if c.vis.Margin > 0 {
		return c.vis.Margin
	}
	return c.viewDistance()
}

// visCache is one session's cached border membership: the replication
// targets of its current block position under the current ownership
// epoch and host shard. Any of the three changing dirties the session.
type visCache struct {
	valid     bool
	epoch     uint64
	shard     int
	pos       world.BlockPos
	displaced bool
	// dsts are the replication target shards, ascending, own shard
	// excluded. The slice is reused across recomputations.
	dsts []int
}

// visSess is one scan's view of a session.
type visSess struct {
	p    *Player
	pos  world.BlockPos
	x, z float64
	// extra are this scan's displaced-pairing additions (ascending, own
	// shard never present); the backing array is reused across scans.
	extra []int
}

// visCell is one bucket of the spatial index.
type visCell struct{ x, z int }

// visPair keys per-shard-pair digest state.
type visPair struct{ src, dst int }

// digestMaxSkips caps how many consecutive scans a pair's publication
// may be suppressed: a forced refresh lands at least every
// digestMaxSkips+1 scans, strictly inside the ghostTTLScans expiry
// window, so a rate-limited ghost can never be reaped as stale.
const digestMaxSkips = ghostTTLScans - 2

// visPairState is one shard pair's digest buffer, delta encoder, and
// rate-limiter state, reused every scan.
type visPairState struct {
	entries []DigestEntry
	enc     DigestEncoder

	// Rate limiter: lastPub is a copy of the entry list most recently
	// published (backing array reused — entry Names share the sessions'
	// strings, so the steady-state copy allocates nothing), lastEpoch the
	// ownership epoch it was published under, and skips the consecutive
	// scans suppressed since. pubValid goes false whenever the pair goes
	// quiet (no entries), because ghosts may expire while a pair is
	// silent and a later identical-looking scan must re-publish them.
	lastPub   []DigestEntry
	lastEpoch uint64
	pubValid  bool
	skips     int
}

// shouldSkip reports whether this scan's entries may go unpublished:
// identical to the last published digest, same ownership epoch, and the
// consecutive-skip cap not yet reached. Shared verbatim by the
// incremental and FullRescan paths — both feed the same apply loop, so
// the digest stream stays byte-identical across the two modes.
func (ps *visPairState) shouldSkip(epoch uint64) bool {
	if !ps.pubValid || epoch != ps.lastEpoch || ps.skips >= digestMaxSkips {
		return false
	}
	if len(ps.entries) != len(ps.lastPub) {
		return false
	}
	for i := range ps.entries {
		if ps.entries[i] != ps.lastPub[i] {
			return false
		}
	}
	return true
}

// addSorted inserts v into the ascending slice s if absent.
func addSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// cellOf maps a position to its bucket under the given cell size. Two
// positions within Chebyshev distance `size` land in the same or an
// adjacent cell, so a 3×3 neighbourhood covers every candidate pair.
func cellOf(p world.BlockPos, size int) visCell {
	return visCell{floorDiv(p.X, size), floorDiv(p.Z, size)}
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// resetBuckets truncates every reused bucket list (keeping capacity) and
// drops the whole index when it has grown far past the working set.
func (c *Cluster) resetBuckets(working int) {
	if len(c.visBuckets) > 8*working+64 {
		c.visBuckets = make(map[visCell][]int)
		return
	}
	for k, v := range c.visBuckets {
		c.visBuckets[k] = v[:0]
	}
}

// visibilityScan is one replication tick of the interest-management
// layer, rescheduled on the bus cadence.
func (c *Cluster) visibilityScan() {
	if c.stopped {
		return
	}
	defer c.clock.After(c.vis.Interval, c.visibilityScan)
	c.VisibilityScanOnce()
}

// VisibilityScanOnce runs one replication tick without scheduling the
// next: publish border digests, materialise ghosts, reap stale ones, and
// audit for visibility gaps. Exported as the benchmark entry point; the
// bus calls it on its own cadence.
func (c *Cluster) VisibilityScanOnce() {
	c.visSeq++
	margin := c.visMargin()
	if margin < 1 {
		margin = 1
	}
	epoch := c.table.Epoch()

	// Collect: walk sessions in join order, reusing each session's cached
	// border membership — every shard owning a tile within the margin,
	// plus the owner of the terrain under the session when that differs
	// from its host (residents of a freshly migrated tile stay visible to
	// the new owner's players until the handoff scan moves them). Only
	// the dirty set — moved a block, handed off, or stale against the
	// ownership epoch — recomputes membership.
	all := c.visAll[:0]
	displacedAny := false
	for _, id := range c.order {
		p := c.players[id]
		if p.inflight {
			continue
		}
		sp := c.shards[p.shard].Player(p.pid)
		if sp == nil {
			continue
		}
		pos := sp.Pos()
		if c.vis.FullRescan || !p.vc.valid || p.vc.epoch != epoch || p.vc.shard != p.shard || p.vc.pos != pos {
			c.VisRecomputes.Inc()
			home := c.table.ShardOfBlock(pos)
			dsts := p.vc.dsts[:0]
			if home != p.shard {
				dsts = addSorted(dsts, home)
			}
			c.visBorders = world.BordersWithinAppend(c.visBorders[:0], c.topo, pos, margin)
			for _, bn := range c.visBorders {
				if o := c.table.Owner(bn.Tile); o != p.shard {
					dsts = addSorted(dsts, o)
				}
			}
			p.vc = visCache{valid: true, epoch: epoch, shard: p.shard, pos: pos, displaced: home != p.shard, dsts: dsts}
		}
		if p.vc.displaced {
			displacedAny = true
		}
		var extra []int
		if n := len(all); n < cap(c.visAll) {
			extra = c.visAll[:n+1][n].extra[:0]
		}
		all = append(all, visSess{p: p, pos: pos, x: sp.X, z: sp.Z, extra: extra})
	}
	c.visAll = all

	// Displaced sessions — hosted by a shard that no longer owns the
	// terrain under them, the migration/handoff transient — pair up with
	// every session near them: tile ownership cannot name their host
	// shard, so their neighbours publish to it (and vice versa) by
	// session geometry. The candidates come from a margin-sized bucket
	// index instead of all pairs.
	if displacedAny {
		c.resetBuckets(len(all))
		for i := range all {
			cell := cellOf(all[i].pos, margin)
			c.visBuckets[cell] = append(c.visBuckets[cell], i)
		}
		for i := range all {
			if !all[i].p.vc.displaced {
				continue
			}
			home := cellOf(all[i].pos, margin)
			for dx := -1; dx <= 1; dx++ {
				for dz := -1; dz <= 1; dz++ {
					for _, j := range c.visBuckets[visCell{home.x + dx, home.z + dz}] {
						if i == j || all[i].p.shard == all[j].p.shard || chebDist(all[i].pos, all[j].pos) > margin {
							continue
						}
						all[j].extra = addSorted(all[j].extra, all[i].p.shard)
						all[i].extra = addSorted(all[i].extra, all[j].p.shard)
					}
				}
			}
		}
	}

	// Publish: collect, per (src, dst) shard pair, the avatars dst should
	// mirror, in join order. residents are the sessions with any
	// replication target: the set the gap audit checks.
	for _, ps := range c.visPairs {
		ps.entries = ps.entries[:0]
	}
	residents := c.visResidents[:0]
	for i := range all {
		s := &all[i]
		base := s.p.vc.dsts
		if len(base) == 0 && len(s.extra) == 0 {
			continue
		}
		residents = append(residents, i)
		// Deterministic fan-out order: ascending shard index, merged from
		// the two ascending sets.
		bi, ei := 0, 0
		for bi < len(base) || ei < len(s.extra) {
			var dst int
			switch {
			case bi >= len(base):
				dst = s.extra[ei]
				ei++
			case ei >= len(s.extra):
				dst = base[bi]
				bi++
			case base[bi] < s.extra[ei]:
				dst = base[bi]
				bi++
			case base[bi] > s.extra[ei]:
				dst = s.extra[ei]
				ei++
			default:
				dst = base[bi]
				bi++
				ei++
			}
			if !c.table.Alive(dst) {
				continue
			}
			key := visPair{src: s.p.shard, dst: dst}
			ps, ok := c.visPairs[key]
			if !ok {
				ps = &visPairState{}
				c.visPairs[key] = ps
			}
			ps.entries = append(ps.entries, DigestEntry{Name: s.p.Name, X: s.x, Z: s.z, Home: s.p.shard})
		}
	}
	c.visResidents = residents

	// Apply: materialise the digests as ghosts, in (src, dst) order. A
	// pair whose entries are identical to its last published digest under
	// an unchanged epoch is rate-limited: nothing goes on the wire and no
	// registry is touched, capped at digestMaxSkips consecutive scans so
	// the staleness stamps refresh before the expiry TTL.
	for src := 0; src < len(c.shards); src++ {
		for dst := 0; dst < len(c.shards); dst++ {
			ps := c.visPairs[visPair{src: src, dst: dst}]
			if ps == nil {
				continue
			}
			if len(ps.entries) == 0 {
				// Quiet pair: invalidate the limiter. Its ghosts expire
				// over the coming scans, so when traffic resumes — even
				// with byte-identical entries — publication must not be
				// suppressed.
				ps.pubValid = false
				ps.skips = 0
				continue
			}
			if ps.shouldSkip(epoch) {
				ps.skips++
				c.DigestsSkipped.Inc()
				continue
			}
			if c.vis.Observer != nil {
				if digest, err := ps.enc.Encode(ps.entries, epoch); err == nil {
					c.vis.Observer(src, dst, digest)
				} else {
					c.DigestErrors.Inc()
				}
			}
			for _, e := range ps.entries {
				if c.shards[dst].UpsertGhost(e.Name, e.X, e.Z, e.Home, c.visSeq) {
					c.GhostLog.Append(GhostRecord{Player: e.Name, Shard: dst, Event: "spawn"})
				}
				c.GhostUpdates.Inc()
			}
			ps.lastPub = append(ps.lastPub[:0], ps.entries...)
			ps.lastEpoch = epoch
			ps.pubValid = true
			ps.skips = 0
			c.DigestsSent.Inc()
		}
	}

	// Reap: unpinned ghosts not refreshed for ghostTTLScans scans.
	if c.visSeq > ghostTTLScans {
		for i, s := range c.shards {
			if !c.table.Alive(i) {
				continue
			}
			for _, name := range s.ExpireGhosts(c.visSeq - ghostTTLScans) {
				c.GhostLog.Append(GhostRecord{Player: name, Shard: i, Event: "expire"})
			}
		}
	}

	// Audit: every cross-shard pair of border residents within view
	// distance must be mutually served by a ghost. One or more unserved
	// pairs make this a visibility gap tick. Candidate pairs come from a
	// view-sized bucket index instead of all pairs.
	view := c.viewDistance()
	if view < 1 {
		view = 1
	}
	c.resetBuckets(len(residents))
	for a, i := range residents {
		cell := cellOf(all[i].pos, view)
		c.visBuckets[cell] = append(c.visBuckets[cell], a)
	}
	gap := false
audit:
	for a, i := range residents {
		sa := &all[i]
		home := cellOf(sa.pos, view)
		for dx := -1; dx <= 1; dx++ {
			for dz := -1; dz <= 1; dz++ {
				for _, b := range c.visBuckets[visCell{home.x + dx, home.z + dz}] {
					if b <= a {
						continue
					}
					sb := &all[residents[b]]
					if sa.p.shard == sb.p.shard || chebDist(sa.pos, sb.pos) > view {
						continue
					}
					if c.shards[sa.p.shard].Ghost(sb.p.Name) == nil || c.shards[sb.p.shard].Ghost(sa.p.Name) == nil {
						gap = true
						break audit
					}
				}
			}
		}
	}
	if gap {
		c.VisibilityGaps.Inc()
	}
}

// chebDist is the Chebyshev distance in blocks between two positions.
func chebDist(a, b world.BlockPos) int {
	dx, dz := a.X-b.X, a.Z-b.Z
	if dx < 0 {
		dx = -dx
	}
	if dz < 0 {
		dz = -dz
	}
	if dx > dz {
		return dx
	}
	return dz
}

// GhostCount returns the number of live ghosts across the alive shards
// (the ghost_avatars gauge).
func (c *Cluster) GhostCount() int {
	n := 0
	for i, s := range c.shards {
		if c.table.Alive(i) {
			n += s.GhostCount()
		}
	}
	return n
}

// demoteToGhost preserves an evicted session's visibility while its
// handoff crosses the storage substrate: a ghost is installed (pinned)
// on the source shard, and every other shard already mirroring the
// avatar has its ghost pinned too — an in-flight session cannot refresh
// itself, and an unpinned ghost expiring mid-flight would pop the
// avatar out of that shard's world exactly when a brownout stretches
// the flight. home is the shard the session is bound for.
func (c *Cluster) demoteToGhost(p *Player, src int, x, z float64, home int) {
	if !c.vis.Enabled {
		return
	}
	if c.table.Alive(src) {
		if c.shards[src].UpsertGhost(p.Name, x, z, home, c.visSeq) {
			c.GhostLog.Append(GhostRecord{Player: p.Name, Shard: src, Event: "demote"})
		}
	}
	for i, s := range c.shards {
		if c.table.Alive(i) && s.Ghost(p.Name) != nil {
			s.PinGhost(p.Name, true)
		}
	}
}

// promoteFromGhost completes the handoff's visibility half: the target
// shard's ghost gives way to the real avatar, and every other shard's
// pinned double is unpinned and refreshed in place (the next scan takes
// over, or it expires once the avatar leaves the border). Shards that
// lost their ghost meanwhile (a crash wiped the registry) are left
// alone — the next scan re-publishes the avatar if it still matters.
func (c *Cluster) promoteFromGhost(p *Player, src, dst int, x, z float64) {
	if !c.vis.Enabled {
		return
	}
	if c.shards[dst].RemoveGhost(p.Name) {
		c.GhostLog.Append(GhostRecord{Player: p.Name, Shard: dst, Event: "promote"})
	}
	for i, s := range c.shards {
		if i == dst || !c.table.Alive(i) || s.Ghost(p.Name) == nil {
			continue
		}
		s.UpsertGhost(p.Name, x, z, dst, c.visSeq)
		s.PinGhost(p.Name, false)
	}
}

// dropGhosts removes a session's ghosts from every shard (mid-handoff
// disconnect: the avatar is gone for good, so no ghost — pinned ones
// included — may linger anywhere).
func (c *Cluster) dropGhosts(name string) {
	if !c.vis.Enabled {
		return
	}
	for i, s := range c.shards {
		if c.table.Alive(i) && s.RemoveGhost(name) {
			c.GhostLog.Append(GhostRecord{Player: name, Shard: i, Event: "drop"})
		}
	}
}
