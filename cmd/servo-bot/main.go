// Command servo-bot drives one or more workload bots against a running
// servo-server instance over TCP, in the spirit of the Yardstick benchmark
// bots the paper's experiments use.
//
// Usage:
//
//	servo-bot -addr 127.0.0.1:25565 -n 10 -behavior random -duration 60s
//
// Behaviors: random (Table II mix), star (walk away from spawn), idle.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"servo/internal/netproto"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:25565", "server address")
	n := flag.Int("n", 1, "number of bots")
	behavior := flag.String("behavior", "random", "bot behavior: random, star, idle")
	duration := flag.Duration("duration", 60*time.Second, "how long to run")
	speed := flag.Float64("speed", 3, "movement speed for the star behavior")
	flag.Parse()

	var wg sync.WaitGroup
	var updates, chunks int64
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := runBot(id, *addr, *behavior, *speed, *duration, &updates, &chunks); err != nil {
				log.Printf("bot-%d: %v", id, err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("servo-bot: %d bots done; received %d state updates, %d chunks\n",
		*n, atomic.LoadInt64(&updates), atomic.LoadInt64(&chunks))
}

func runBot(id int, addr, behavior string, speed float64, d time.Duration, updates, chunks *int64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()

	if err := netproto.Write(conn, netproto.Message{
		Type: netproto.MsgJoin, Name: fmt.Sprintf("bot-%d", id),
	}); err != nil {
		return err
	}

	// Reader goroutine: count what the server streams to us.
	go func() {
		r := netproto.NewReader(conn)
		for {
			m, err := r.Next()
			if err != nil {
				return
			}
			switch m.Type {
			case netproto.MsgStateUpdate:
				atomic.AddInt64(updates, 1)
			case netproto.MsgChunkData:
				atomic.AddInt64(chunks, 1)
			}
		}
	}()

	rng := rand.New(rand.NewSource(int64(id) + 1))
	deadline := time.Now().Add(d)
	angle := 2 * math.Pi * float64(id%16) / 16
	var x, z float64
	for time.Now().Before(deadline) {
		var msg netproto.Message
		switch behavior {
		case "star":
			x += math.Cos(angle) * speed
			z += math.Sin(angle) * speed
			msg = netproto.Message{Type: netproto.MsgMove, DestX: x, DestZ: z, Speed: speed}
		case "idle":
			msg = netproto.Message{Type: netproto.MsgPing, Nonce: uint64(id)}
		default: // random: rough Table II mix
			switch roll := rng.Float64(); {
			case roll < 0.4:
				msg = netproto.Message{
					Type:  netproto.MsgMove,
					DestX: x + rng.Float64()*32 - 16,
					DestZ: z + rng.Float64()*32 - 16,
					Speed: 1 + rng.Float64()*7,
				}
			case roll < 0.7:
				msg = netproto.Message{Type: netproto.MsgBreakBlock}
			case roll < 0.9:
				msg = netproto.Message{Type: netproto.MsgPing, Nonce: rng.Uint64()}
			case roll < 0.95:
				msg = netproto.Message{Type: netproto.MsgChat, Text: "hello"}
			default:
				msg = netproto.Message{Type: netproto.MsgSetInventory, Item: uint8(rng.Intn(36))}
			}
		}
		if err := netproto.Write(conn, msg); err != nil {
			return err
		}
		time.Sleep(time.Second)
	}
	return nil
}
