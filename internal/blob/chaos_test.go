package blob

import (
	"errors"
	"testing"
	"time"

	"servo/internal/sim"
)

// TestBlobChaosDisabledIsZeroOverhead requires that a store with chaos
// explicitly set to nil produces the exact same latency sequence as one
// that never touched chaos.
func TestBlobChaosDisabledIsZeroOverhead(t *testing.T) {
	run := func(touchChaos bool) []time.Duration {
		loop := sim.NewLoop(9)
		s := NewStore(loop, TierPremium)
		if touchChaos {
			s.SetChaos(&Chaos{ReadErrorRate: 1, LatencyFactor: 10})
			s.SetChaos(nil)
		}
		s.Put("k", []byte("v"), nil)
		loop.Run()
		for i := 0; i < 200; i++ {
			s.Get("k", func([]byte, error) {})
		}
		loop.Run()
		return s.ReadLatency.Values()
	}
	base, toggled := run(false), run(true)
	if len(base) != len(toggled) {
		t.Fatalf("read counts differ: %d vs %d", len(base), len(toggled))
	}
	for i := range base {
		if base[i] != toggled[i] {
			t.Fatalf("read latency[%d] differs: %v vs %v", i, base[i], toggled[i])
		}
	}
}

// TestBlobChaosReadErrors checks that read faults surface at roughly the
// configured rate and are counted.
func TestBlobChaosReadErrors(t *testing.T) {
	loop := sim.NewLoop(2)
	s := NewStore(loop, TierLocal)
	s.Put("k", []byte("v"), nil)
	loop.Run()
	s.SetChaos(&Chaos{ReadErrorRate: 0.25})
	var faults int
	for i := 0; i < 1000; i++ {
		s.Get("k", func(_ []byte, err error) {
			if err != nil {
				if !errors.Is(err, ErrInjectedFault) {
					t.Errorf("unexpected error kind: %v", err)
				}
				faults++
			}
		})
	}
	loop.Run()
	if faults < 150 || faults > 350 {
		t.Fatalf("error rate 0.25 over 1000 reads produced %d faults", faults)
	}
	if got := s.FaultsInjected.Value(); got != int64(faults) {
		t.Fatalf("FaultsInjected = %d, want %d", got, faults)
	}
}

// TestBlobChaosWriteErrorsDropTheWrite checks that a failed write reports
// ErrInjectedFault and does not install the object.
func TestBlobChaosWriteErrorsDropTheWrite(t *testing.T) {
	loop := sim.NewLoop(4)
	s := NewStore(loop, TierLocal)
	s.SetChaos(&Chaos{WriteErrorRate: 1})
	var gotErr error
	s.Put("k", []byte("v"), func(err error) { gotErr = err })
	loop.Run()
	if !errors.Is(gotErr, ErrInjectedFault) {
		t.Fatalf("write error = %v, want ErrInjectedFault", gotErr)
	}
	if s.Exists("k") {
		t.Fatal("failed write still installed the object")
	}
}

// TestPutRetryingNewerWriteWins checks that a stale retry chain cannot
// clobber a newer write for the same key: v1 fails during a fault window
// and keeps retrying; v2 is issued after the window and lands; v1's chain
// must then stop instead of overwriting v2.
func TestPutRetryingNewerWriteWins(t *testing.T) {
	loop := sim.NewLoop(8)
	s := NewStore(loop, TierLocal)
	s.SetChaos(&Chaos{WriteErrorRate: 1})
	s.PutRetrying("k", []byte("v1"))
	loop.After(50*time.Millisecond, func() {
		s.SetChaos(nil)
		s.PutRetrying("k", []byte("v2"))
	})
	loop.Run()
	var got []byte
	s.Get("k", func(data []byte, err error) {
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		got = data
	})
	loop.Run()
	if string(got) != "v2" {
		t.Fatalf("object = %q, want v2 (stale retry clobbered the newer write)", got)
	}
}

// TestPutRetryingInFlightStaleWriteDropped covers the other clobber path:
// a stale write already in flight (slow, no fault) must be dropped at
// install time when a newer, faster write for the same key lands first.
func TestPutRetryingInFlightStaleWriteDropped(t *testing.T) {
	loop := sim.NewLoop(14)
	s := NewStore(loop, TierLocal)
	s.SetChaos(&Chaos{LatencyFactor: 1000}) // v1 is slow but will succeed
	s.PutRetrying("k", []byte("v1"))
	s.SetChaos(nil)
	s.PutRetrying("k", []byte("v2")) // lands long before v1 completes
	loop.Run()
	var got []byte
	s.Get("k", func(data []byte, err error) {
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		got = data
	})
	loop.Run()
	if string(got) != "v2" {
		t.Fatalf("object = %q, want v2 (in-flight stale write clobbered the newer one)", got)
	}
}

// TestGetRetryingSurvivesFaultWindow checks that a read issued during a
// fault window keeps retrying and eventually delivers the object.
func TestGetRetryingSurvivesFaultWindow(t *testing.T) {
	loop := sim.NewLoop(12)
	s := NewStore(loop, TierLocal)
	s.Put("k", []byte("v"), nil)
	loop.Run()
	s.SetChaos(&Chaos{ReadErrorRate: 1})
	var got []byte
	var gotErr error
	s.GetRetrying("k", func(data []byte, err error) { got, gotErr = data, err })
	loop.After(100*time.Millisecond, func() { s.SetChaos(nil) })
	loop.Run()
	if gotErr != nil || string(got) != "v" {
		t.Fatalf("GetRetrying = %q, %v; want v, nil", got, gotErr)
	}
}

// TestBlobChaosLatencyFactorExact verifies the brownout multiplies each
// operation's latency exactly under the same seed.
func TestBlobChaosLatencyFactorExact(t *testing.T) {
	const factor = 5.0
	run := func(withChaos bool) []time.Duration {
		loop := sim.NewLoop(6)
		s := NewStore(loop, TierStandard)
		s.Put("k", []byte("v"), nil)
		loop.Run()
		if withChaos {
			s.SetChaos(&Chaos{LatencyFactor: factor})
		}
		for i := 0; i < 100; i++ {
			s.Get("k", func([]byte, error) {})
		}
		loop.Run()
		// Skip the Put's write latency; compare the 100 reads.
		return s.ReadLatency.Values()
	}
	base, slow := run(false), run(true)
	if len(base) != len(slow) {
		t.Fatalf("read counts differ: %d vs %d", len(base), len(slow))
	}
	for i := range base {
		want := time.Duration(float64(base[i]) * factor)
		if slow[i] != want {
			t.Fatalf("read latency[%d] = %v, want exactly %v", i, slow[i], want)
		}
	}
}
