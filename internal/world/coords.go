package world

import "fmt"

// Chunk dimensions, matching Minecraft and the paper (§IV-D: "an area of
// 16×16×256 blocks").
const (
	ChunkSizeX = 16
	ChunkSizeZ = 16
	ChunkSizeY = 256
	// BlocksPerChunk is the number of voxels in one chunk.
	BlocksPerChunk = ChunkSizeX * ChunkSizeZ * ChunkSizeY
)

// BlockPos is an absolute block coordinate in the world. Y is the vertical
// axis, 0 ≤ Y < ChunkSizeY.
type BlockPos struct {
	X, Y, Z int
}

// String implements fmt.Stringer.
func (p BlockPos) String() string { return fmt.Sprintf("(%d,%d,%d)", p.X, p.Y, p.Z) }

// Chunk returns the position of the chunk containing this block.
func (p BlockPos) Chunk() ChunkPos {
	return ChunkPos{X: floorDiv(p.X, ChunkSizeX), Z: floorDiv(p.Z, ChunkSizeZ)}
}

// Offset translates the position by (dx, dy, dz).
func (p BlockPos) Offset(dx, dy, dz int) BlockPos {
	return BlockPos{X: p.X + dx, Y: p.Y + dy, Z: p.Z + dz}
}

// ChunkPos addresses one chunk column on the infinite 2D chunk grid.
type ChunkPos struct {
	X, Z int
}

// String implements fmt.Stringer.
func (p ChunkPos) String() string { return fmt.Sprintf("chunk(%d,%d)", p.X, p.Z) }

// Origin returns the world position of the chunk's (0, 0, 0) corner.
func (p ChunkPos) Origin() BlockPos {
	return BlockPos{X: p.X * ChunkSizeX, Y: 0, Z: p.Z * ChunkSizeZ}
}

// DistanceBlocks returns the Chebyshev distance in blocks between the
// nearest edges of this chunk and the given block position, the metric used
// for view-distance checks ("is any part of this chunk within R blocks?").
func (p ChunkPos) DistanceBlocks(b BlockPos) int {
	ox, oz := p.X*ChunkSizeX, p.Z*ChunkSizeZ
	dx := axisDistance(b.X, ox, ox+ChunkSizeX-1)
	dz := axisDistance(b.Z, oz, oz+ChunkSizeZ-1)
	if dx > dz {
		return dx
	}
	return dz
}

func axisDistance(v, lo, hi int) int {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// ChunkRect is an inclusive axis-aligned rectangle of chunk positions,
// the shape every view-distance query resolves to. Two positions yield
// the same demand set exactly when their rects are equal, which is what
// makes it usable as an incremental-scan cache key.
type ChunkRect struct {
	Min, Max ChunkPos
}

// ChunkRectWithin returns the rect of every chunk any part of which lies
// within radius blocks (Chebyshev) of center. A negative radius returns
// an empty rect (Min > Max).
func ChunkRectWithin(center BlockPos, radius int) ChunkRect {
	if radius < 0 {
		return ChunkRect{Min: ChunkPos{X: 1}, Max: ChunkPos{X: 0}}
	}
	return ChunkRect{
		Min: BlockPos{X: center.X - radius, Z: center.Z - radius}.Chunk(),
		Max: BlockPos{X: center.X + radius, Z: center.Z + radius}.Chunk(),
	}
}

// Contains reports whether cp lies inside the rect.
func (r ChunkRect) Contains(cp ChunkPos) bool {
	return cp.X >= r.Min.X && cp.X <= r.Max.X && cp.Z >= r.Min.Z && cp.Z <= r.Max.Z
}

// Count returns the number of chunks in the rect.
func (r ChunkRect) Count() int {
	if r.Max.X < r.Min.X || r.Max.Z < r.Min.Z {
		return 0
	}
	return (r.Max.X - r.Min.X + 1) * (r.Max.Z - r.Min.Z + 1)
}

// ChunksWithin returns every chunk position any part of which lies within
// radius blocks (Chebyshev) of center. radius 0 returns just the chunk
// containing center.
func ChunksWithin(center BlockPos, radius int) []ChunkPos {
	if radius < 0 {
		return nil
	}
	return ChunksWithinAppend(make([]ChunkPos, 0, ChunkRectWithin(center, radius).Count()), center, radius)
}

// ChunksWithinAppend appends ChunksWithin(center, radius) to dst and
// returns it, in the same deterministic order (X-major, Z ascending).
// Callers that reuse dst across calls run the query allocation-free.
func ChunksWithinAppend(dst []ChunkPos, center BlockPos, radius int) []ChunkPos {
	r := ChunkRectWithin(center, radius)
	for cx := r.Min.X; cx <= r.Max.X; cx++ {
		for cz := r.Min.Z; cz <= r.Max.Z; cz++ {
			dst = append(dst, ChunkPos{X: cx, Z: cz})
		}
	}
	return dst
}

// floorDiv divides rounding toward negative infinity, so that negative
// block coordinates map to the correct chunk.
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// floorMod returns the non-negative remainder of a/b.
func floorMod(a, b int) int {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
