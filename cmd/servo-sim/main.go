// Command servo-sim executes declarative simulation scenarios against the
// real Servo stack on the deterministic virtual clock.
//
// Usage:
//
//	servo-sim list                     # bundled scenarios
//	servo-sim validate all             # check every bundled scenario
//	servo-sim validate my-scenario.json
//	servo-sim run all                  # run every bundled scenario
//	servo-sim run flash-crowd stress-fleet
//	servo-sim run -v -seed 7 my-scenario.json
//	servo-sim run -format csv rebalance-hotspot   # machine-readable report
//	servo-sim run -topology grid:4x4 sharded-stress  # 2-D region tiles
//	servo-sim replay all               # byte-identical replay gate
//
// Arguments to run/validate/replay are bundled scenario names or paths
// to scenario JSON files (anything containing a path separator or ending
// in .json is treated as a file). run exits non-zero if any scenario
// fails its assertions; replay runs every scenario twice and exits
// non-zero on any report byte difference.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"servo/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:])) }

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  servo-sim list
  servo-sim validate all | <name|file.json>...
  servo-sim run [-v] [-seed N] [-shards N] [-workers N] [-topology band|grid:XxZ] [-autoscale] [-format text|csv] all | <name|file.json>...
  servo-sim replay all | <name|file.json>...`)
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "list":
		return cmdList()
	case "validate":
		return cmdValidate(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "replay":
		return cmdReplay(args[1:])
	case "-h", "--help", "help":
		usage()
		return 0
	}
	fmt.Fprintf(os.Stderr, "servo-sim: unknown subcommand %q\n", args[0])
	usage()
	return 2
}

func cmdList() int {
	for _, name := range scenario.Bundled() {
		spec, err := scenario.LoadBundled(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servo-sim: %v\n", err)
			return 1
		}
		fmt.Printf("%-22s %s\n", name, spec.Description)
	}
	return 0
}

// resolve expands "all" and loads each argument as a bundled name or a
// scenario file path. An empty argument list is an error, as the usage
// text promises: running the whole suite requires the explicit "all".
func resolve(args []string) ([]*scenario.Spec, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf(`no scenarios given (use "all" for every bundled scenario)`)
	}
	if len(args) == 1 && args[0] == "all" {
		args = scenario.Bundled()
	}
	var specs []*scenario.Spec
	for _, arg := range args {
		var (
			spec *scenario.Spec
			err  error
		)
		if strings.ContainsRune(arg, os.PathSeparator) || strings.HasSuffix(arg, ".json") {
			spec, err = scenario.ParseFile(arg)
		} else {
			spec, err = scenario.LoadBundled(arg)
		}
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func cmdValidate(args []string) int {
	specs, err := resolve(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "servo-sim: %v\n", err)
		return 1
	}
	for _, spec := range specs {
		fmt.Printf("ok  %s\n", spec.Name)
	}
	return 0
}

// parseTopology turns a -topology value ("band", "grid:4x4") into a
// scenario topology section.
func parseTopology(arg string) (*scenario.TopologySpec, error) {
	if arg == "band" {
		return &scenario.TopologySpec{Kind: "band"}, nil
	}
	var tx, tz int
	// The round-trip check rejects trailing garbage ("grid:4x4x8"),
	// which Sscanf would otherwise silently ignore.
	if n, err := fmt.Sscanf(arg, "grid:%dx%d", &tx, &tz); n == 2 && err == nil &&
		fmt.Sprintf("grid:%dx%d", tx, tz) == arg {
		return &scenario.TopologySpec{Kind: "grid", TilesX: tx, TilesZ: tz}, nil
	}
	return nil, fmt.Errorf(`-topology must be "band" or "grid:<X>x<Z>" (got %q)`, arg)
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	verbose := fs.Bool("v", false, "log per-event progress to stderr")
	seed := fs.Int64("seed", 0, "override every scenario's seed (0 = use the spec's)")
	shards := fs.Int("shards", 0, "override every scenario's shard count (0 = use the spec's; >1 runs a region-sharded cluster)")
	workers := fs.Int("workers", -1, "override every scenario's worker-pool size (-1 = use the spec's; 0 = classic serial loop; >=1 runs lane-batched shard ticks, byte-identical for every pool size)")
	topology := fs.String("topology", "", `override every scenario's region topology: "band" or "grid:<X>x<Z>" (e.g. grid:4x4; requires a sharded scenario)`)
	autoscale := fs.Bool("autoscale", false, "force-enable elastic shard autoscaling with default policy knobs (requires a sharded scenario; specs with their own autoscale section keep it)")
	format := fs.String("format", "text", `report format: "text" or "csv" (csv covers summary metrics, assertions, and the per-tick series)`)
	_ = fs.Parse(args)
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "servo-sim: -format must be \"text\" or \"csv\" (got %q)\n", *format)
		return 2
	}
	var topo *scenario.TopologySpec
	if *topology != "" {
		var err error
		if topo, err = parseTopology(*topology); err != nil {
			fmt.Fprintf(os.Stderr, "servo-sim: %v\n", err)
			return 2
		}
	}
	specs, err := resolve(fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "servo-sim: %v\n", err)
		return 1
	}
	if *format == "csv" {
		// One header for the whole invocation: `run -format csv all` must
		// produce a single parseable table, not N header rows.
		fmt.Println(scenario.CSVHeader)
	}
	failed := 0
	for _, spec := range specs {
		if *seed != 0 {
			spec.Seed = *seed
		}
		if *shards != 0 {
			// Re-validated inside Run, so a spec that depends on its
			// shard count (per-shard assertions, placement) surfaces a
			// clear error instead of running nonsense.
			spec.Shards = *shards
		}
		if *workers >= 0 {
			// Re-validated inside Run (bounds check lives in the spec).
			spec.Workers = *workers
		}
		if topo != nil {
			// Also re-validated inside Run: a band-placement spec forced
			// onto a grid (or a grid forced onto one shard) errors out.
			t := *topo
			spec.Topology = &t
		}
		if *autoscale && spec.Autoscale == nil {
			// Default knobs; re-validated inside Run, so forcing autoscale
			// onto a single-server spec errors out instead of no-opping.
			spec.Autoscale = &scenario.AutoscaleSpec{}
		}
		var log io.Writer
		if *verbose {
			log = os.Stderr
		}
		rep, err := scenario.Run(spec, log)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servo-sim: %v\n", err)
			return 1
		}
		if *format == "csv" {
			fmt.Print(rep.RenderCSVRows())
		} else {
			fmt.Print(rep.Render())
		}
		if !rep.Pass {
			failed++
		}
	}
	// In CSV mode the summary goes to stderr, keeping stdout pure CSV.
	summary := os.Stdout
	if *format == "csv" {
		summary = os.Stderr
	}
	fmt.Fprintf(summary, "%d scenario(s): %d passed, %d failed\n", len(specs), len(specs)-failed, failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// cmdReplay is the determinism gate: every scenario runs twice and both
// renderings (text and CSV, covering the full per-tick series) must be
// byte-identical. Assertion failures are not replay failures — only a
// divergent report is.
func cmdReplay(args []string) int {
	specs, err := resolve(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "servo-sim: %v\n", err)
		return 1
	}
	diverged := 0
	for _, spec := range specs {
		render := func() (string, error) {
			rep, err := scenario.Run(spec, nil)
			if err != nil {
				return "", err
			}
			return rep.Render() + rep.RenderCSVRows(), nil
		}
		a, err := render()
		if err != nil {
			fmt.Fprintf(os.Stderr, "servo-sim: %v\n", err)
			return 1
		}
		b, err := render()
		if err != nil {
			fmt.Fprintf(os.Stderr, "servo-sim: %v\n", err)
			return 1
		}
		if a == b {
			fmt.Printf("replay ok    %s (%d report bytes)\n", spec.Name, len(a))
			continue
		}
		diverged++
		fmt.Printf("replay DIFF  %s: two runs rendered %d vs %d bytes\n", spec.Name, len(a), len(b))
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				fmt.Printf("  first divergence at byte %d\n", i)
				break
			}
		}
	}
	if diverged > 0 {
		fmt.Printf("%d scenario(s) diverged\n", diverged)
		return 1
	}
	fmt.Printf("%d scenario(s) replayed byte-identically\n", len(specs))
	return 0
}
