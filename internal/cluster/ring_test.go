package cluster

import "testing"

func TestRecordRing(t *testing.T) {
	r := newRecordRing[int](3)
	if r.Len() != 0 || r.Total() != 0 || len(r.All()) != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 1; i <= 2; i++ {
		r.Append(i)
	}
	if got := r.All(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("under-cap contents = %v, want [1 2]", got)
	}
	for i := 3; i <= 5; i++ {
		r.Append(i)
	}
	if got := r.All(); len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("wrapped contents = %v, want [3 4 5]", got)
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len/Total = %d/%d, want 3/5", r.Len(), r.Total())
	}

	// Unbounded (cap <= 0) never evicts.
	u := newRecordRing[int](-1)
	for i := 0; i < 100; i++ {
		u.Append(i)
	}
	if u.Len() != 100 || u.All()[99] != 99 {
		t.Fatalf("unbounded ring evicted: len %d", u.Len())
	}
}

// TestLogRetentionBoundsGhostLog: the cluster-level wiring — a tiny
// retention keeps the ghost log bounded while counting every append.
func TestLogRetentionBoundsGhostLog(t *testing.T) {
	r := newRecordRing[GhostRecord](2)
	for i := 0; i < 10; i++ {
		r.Append(GhostRecord{Player: "p", Shard: i % 2, Event: "spawn"})
	}
	if r.Len() != 2 || r.Total() != 10 {
		t.Fatalf("Len/Total = %d/%d, want 2/10", r.Len(), r.Total())
	}
}
