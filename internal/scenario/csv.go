package scenario

import (
	"fmt"
	"strings"
	"time"
)

// RenderCSV renders the report as CSV, covering both the summary metrics
// and the per-tick series — the machine-readable sibling of Render, with
// the same determinism guarantee (two runs of the same spec produce
// byte-identical CSV).
//
// One table, discriminated by the kind column:
//
//	kind=scenario   name=<scenario>          value=<pass|fail>
//	kind=metric     name=<metric>            value=<end-of-run value>
//	kind=assert     name=<metric op bound>   value=<actual>  ok=<pass|fail>
//	kind=tick       shard=<i> at_ms=<t>      value=<tick duration, ms>
//	kind=tile_load  shard=<owner> name=tile_<x>_<z>_{actions,stores}  value=<count>
//	kind=scale      name=shards_active at_ms=<t>  value=<alive shard count>
//	kind=scale_event shard=<i> name=<kind> at_ms=<t>  value=<plan tiles>
//
// None of the emitted fields contain commas or quotes, so the output
// needs no CSV escaping.
func (r *Report) RenderCSV() string {
	return CSVHeader + "\n" + r.RenderCSVRows()
}

// CSVHeader is the column header of RenderCSV / RenderCSVRows output.
const CSVHeader = "kind,shard,name,at_ms,value,ok"

// RenderCSVRows renders the report's CSV rows without the header, so a
// multi-scenario run can emit one parseable table: header once, then
// each report's rows (every report starts with its own `scenario` row).
func (r *Report) RenderCSVRows() string {
	var b strings.Builder
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	verdict := "pass"
	if !r.Pass {
		verdict = "fail"
	}
	fmt.Fprintf(&b, "scenario,,%s,,%s,\n", r.Name, verdict)
	for _, m := range r.Metrics {
		fmt.Fprintf(&b, "metric,,%s,,%s,\n", m.Name, fmtVal(m.Value))
	}
	for _, c := range r.Checks {
		status := "pass"
		if !c.Ok {
			status = "fail"
		}
		name := fmt.Sprintf("%s %s %s", c.Metric, c.Op, fmtVal(c.Value))
		if c.Windowed() {
			name += fmt.Sprintf(" in [%s %s]", c.From, c.To)
		}
		fmt.Fprintf(&b, "assert,,%s,,%s,%s\n", name, fmtVal(c.Actual), status)
	}
	for _, tl := range r.TileLoads {
		fmt.Fprintf(&b, "tile_load,%d,tile_%d_%d_actions,,%d,\n", tl.Owner, tl.X, tl.Z, tl.Actions)
		fmt.Fprintf(&b, "tile_load,%d,tile_%d_%d_stores,,%d,\n", tl.Owner, tl.X, tl.Z, tl.Stores)
	}
	for _, p := range r.ScaleSeries {
		fmt.Fprintf(&b, "scale,,shards_active,%s,%d,\n", fmtVal(msOf(p.At)), p.Count)
	}
	for _, ev := range r.ScaleEvents {
		fmt.Fprintf(&b, "scale_event,%d,%s,%s,%d,\n", ev.Shard, ev.Kind, fmtVal(msOf(ev.At)), ev.Tiles)
	}
	for _, s := range r.Series {
		for _, p := range s.Ticks {
			fmt.Fprintf(&b, "tick,%d,tick_ms,%s,%s,\n", s.Shard, fmtVal(msOf(p.At)), fmtVal(msOf(p.Dur)))
		}
	}
	return b.String()
}
