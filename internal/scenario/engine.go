package scenario

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"servo/internal/blob"
	"servo/internal/core"
	"servo/internal/faas"
	"servo/internal/metrics"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/servo/specexec"
	"servo/internal/sim"
	"servo/internal/workload"
	"servo/internal/world"
)

// qosBudget is the paper's tick-duration QoS bound (1/R = 50 ms).
const qosBudget = 50 * time.Millisecond

// scSpacing is the construct grid pitch, matching the paper's §IV-B
// placement (constructs stay within loaded terrain for bounded players).
const scSpacing = 15

// stormEvictPeriod is how often a cold-start storm re-evicts warm pools.
const stormEvictPeriod = time.Second

// Runner executes one scenario on a fresh virtual-clock system.
type Runner struct {
	spec *Spec
	log  io.Writer

	loop     *sim.Loop
	sys      *core.System
	flip     *flipStore
	localAlt *blob.Store // backing store of the flip's "local" side
	// hrng drives harness-level decisions (behavior mixes, churn session
	// lengths), seeded from the spec so they replay deterministically and
	// stay independent of the simulation clock's random stream.
	hrng *rand.Rand

	scZ      int // next free Z band for construct placement
	crowdSeq int // flash-crowd naming sequence
	peak     int // peak concurrent players

	// Chaos window generations: when windows of the same kind overlap,
	// the newest wins and an older window's end must not clear it.
	faasChaosGen    int
	storageChaosGen int

	base baseline
}

// Run validates spec (normalising defaults), executes it to completion on
// the virtual clock, and returns the report. log, if non-nil, receives
// progress lines (they are not part of the deterministic report).
func Run(spec *Spec, log io.Writer) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		spec: spec,
		log:  log,
		hrng: rand.New(rand.NewSource(spec.Seed ^ 0x5eed0c)),
	}
	r.build()
	r.schedule()
	return r.run(), nil
}

func (r *Runner) logf(format string, args ...any) {
	if r.log != nil {
		fmt.Fprintf(r.log, "[%10s] %s\n", r.loop.Now(), fmt.Sprintf(format, args...))
	}
}

func profileFor(name string) mve.Profile {
	switch name {
	case "opencraft":
		return mve.ProfileOpencraft
	case "minecraft":
		return mve.ProfileMinecraft
	}
	return mve.ProfileServo
}

func tierFor(name string) blob.Tier {
	switch name {
	case "local":
		return blob.TierLocal
	case "standard":
		return blob.TierStandard
	}
	return blob.TierPremium
}

func hasFlip(spec *Spec) bool {
	for _, e := range spec.Events {
		if e.Kind == EvFlipStorage {
			return true
		}
	}
	return false
}

// build assembles the system under test from the spec.
func (r *Runner) build() {
	spec := r.spec
	r.loop = sim.NewLoop(spec.Seed)
	r.scZ = -105 // construct grid bands start at the spawn region's edge
	cfg := core.Config{
		Seed:         spec.Seed,
		WorldType:    spec.World.Type,
		ViewDistance: spec.World.ViewDistance,
		Profile:      profileFor(spec.World.Profile),
		ServerlessSC: spec.Backend.Constructs,
		ServerlessTG: spec.Backend.Terrain,
		ServerlessRS: spec.Backend.Storage,
		LocalStore:   spec.Backend.LocalStore,
		StorageTier:  tierFor(spec.Backend.StorageTier),
	}
	if se := spec.Backend.SpecExec; se != nil {
		sx := specexec.DefaultConfig()
		if se.TickLead != nil {
			sx.TickLead = *se.TickLead
		}
		if se.Steps != nil {
			sx.StepsPerInvocation = *se.Steps
		}
		if se.DetectLoops != nil {
			sx.DetectLoops = *se.DetectLoops
		}
		cfg.SpecExec = sx
	}
	if hasFlip(spec) {
		r.localAlt = blob.NewStore(r.loop, blob.TierLocal)
		local := core.NewBlobChunkStore(r.localAlt)
		cfg.WrapStore = func(s mve.ChunkStore) mve.ChunkStore {
			r.flip = &flipStore{serverless: s, local: local}
			return r.flip
		}
	}
	r.sys = core.New(r.loop, cfg)
	for _, g := range spec.Constructs {
		r.placeConstructs(g.Count, g.Blocks)
	}
	r.sys.Server.Start()
}

// placeConstructs activates count constructs of the given size on a grid
// near spawn. The pitch adapts to the construct footprint and every wave
// gets a fresh Z band, so construct storms never overlap earlier
// placements.
func (r *Runner) placeConstructs(count, blocks int) {
	w, h := sc.BuildSized(blocks).Size()
	pitchX, pitchZ := scSpacing, scSpacing
	if w+3 > pitchX {
		pitchX = w + 3
	}
	if h+3 > pitchZ {
		pitchZ = h + 3
	}
	perRow := 210 / pitchX
	if perRow < 1 {
		perRow = 1
	}
	for i := 0; i < count; i++ {
		x := (i%perRow)*pitchX - 105
		z := r.scZ + (i/perRow)*pitchZ
		r.sys.Server.SpawnConstruct(sc.BuildSized(blocks), world.BlockPos{X: x, Y: 5, Z: z})
	}
	r.scZ += (count + perRow - 1) / perRow * pitchZ
}

// connect joins one player and tracks the concurrency peak.
func (r *Runner) connect(name, behavior string) *mve.Player {
	p := r.sys.Server.Connect(name, workload.ForName(behavior))
	if n := r.sys.Server.PlayerCount(); n > r.peak {
		r.peak = n
	}
	return p
}

// schedule queues every fleet join/leave, stress bot, and timed event on
// the virtual clock.
func (r *Runner) schedule() {
	spec := r.spec
	for gi := range spec.Fleet {
		g := spec.Fleet[gi]
		gi := gi
		var members []*mve.Player
		r.loop.At(g.JoinAt.D(), func() {
			for i := 0; i < g.Count; i++ {
				members = append(members, r.connect(fmt.Sprintf("fleet%d-%d", gi, i), g.Behavior))
			}
			r.logf("fleet[%d]: %d %q players joined", gi, g.Count, g.Behavior)
		})
		if g.LeaveAt != 0 {
			r.loop.At(g.LeaveAt.D(), func() {
				for _, p := range members {
					r.sys.Server.Disconnect(p.ID)
				}
				r.logf("fleet[%d]: %d players left", gi, len(members))
			})
		}
	}
	if st := spec.Stress; st != nil {
		for i := 0; i < st.Bots; i++ {
			i := i
			joinAt := time.Duration(float64(st.Ramp.D()) * float64(i) / float64(st.Bots))
			r.loop.At(joinAt, func() { r.runBot(i, st) })
		}
	}
	for i := range spec.Events {
		e := spec.Events[i]
		r.loop.At(e.At.D(), func() { r.fire(e) })
	}
}

// pickBehavior draws a behavior name from the stress weights.
func (r *Runner) pickBehavior(st *StressSpec) string {
	names := make([]string, 0, len(st.Behaviors))
	for n := range st.Behaviors {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0.0
	for _, n := range names {
		total += st.Behaviors[n]
	}
	roll := r.hrng.Float64() * total
	for _, n := range names {
		roll -= st.Behaviors[n]
		if roll < 0 {
			return n
		}
	}
	return names[len(names)-1]
}

// runBot connects one stress bot (stable identity per index, so rejoins
// resume persisted player data) and, under churn, schedules its session
// end and eventual rejoin.
func (r *Runner) runBot(i int, st *StressSpec) {
	p := r.connect(fmt.Sprintf("bot-%d", i), r.pickBehavior(st))
	if st.Churn == nil {
		return
	}
	session := time.Duration(r.hrng.ExpFloat64() * float64(st.Churn.MeanSession.D()))
	r.loop.After(session, func() {
		r.sys.Server.Disconnect(p.ID)
		pause := time.Duration(r.hrng.ExpFloat64() * float64(st.Churn.MeanPause.D()))
		r.loop.After(pause, func() { r.runBot(i, st) })
	})
}

// fire executes one timed event. Validation has already checked that the
// targeted component exists.
func (r *Runner) fire(e Event) {
	switch e.Kind {
	case EvFlashCrowd:
		seq := r.crowdSeq
		r.crowdSeq++
		for i := 0; i < e.Count; i++ {
			r.connect(fmt.Sprintf("crowd%d-%d", seq, i), e.Behavior)
		}
		r.logf("flash crowd: %d %q players joined", e.Count, e.Behavior)
	case EvDisconnect:
		ps := r.sys.Server.Players()
		n := e.Count
		if n > len(ps) {
			n = len(ps)
		}
		for _, p := range ps[len(ps)-n:] {
			r.sys.Server.Disconnect(p.ID)
		}
		r.logf("disconnect: %d players left", n)
	case EvSpawnSCs:
		r.placeConstructs(e.Count, e.Blocks)
		r.logf("construct storm: %d x %d-block constructs activated", e.Count, e.Blocks)
	case EvFaasChaos:
		r.faasChaosGen++
		gen := r.faasChaosGen
		r.sys.Platform.SetChaos(&faas.Chaos{
			FailureRate:   e.FailureRate,
			LatencyFactor: e.LatencyFactor,
			ForceCold:     e.ForceCold,
		})
		r.loop.After(e.Duration.D(), func() {
			if r.faasChaosGen == gen { // not superseded by a newer window
				r.sys.Platform.SetChaos(nil)
				r.logf("faas chaos window ended")
			}
		})
		r.logf("faas chaos: failure_rate=%g latency_factor=%g for %s", e.FailureRate, e.LatencyFactor, e.Duration)
	case EvStorageChaos:
		r.storageChaosGen++
		gen := r.storageChaosGen
		ch := &blob.Chaos{
			ReadErrorRate:  e.ErrorRate,
			WriteErrorRate: e.ErrorRate,
			LatencyFactor:  e.LatencyFactor,
		}
		// The brownout hits every store the server may be talking to,
		// including the flip's local side.
		r.sys.Remote.SetChaos(ch)
		if r.localAlt != nil {
			r.localAlt.SetChaos(ch)
		}
		r.loop.After(e.Duration.D(), func() {
			if r.storageChaosGen == gen { // not superseded by a newer window
				r.sys.Remote.SetChaos(nil)
				if r.localAlt != nil {
					r.localAlt.SetChaos(nil)
				}
				r.logf("storage chaos window ended")
			}
		})
		r.logf("storage brownout: error_rate=%g latency_factor=%g for %s", e.ErrorRate, e.LatencyFactor, e.Duration)
	case EvColdStartStorm:
		end := r.loop.Now() + e.Duration.D()
		var evict func()
		evict = func() {
			n := r.sys.Platform.EvictAllWarm()
			r.logf("cold-start storm: evicted %d warm instances", n)
			if r.loop.Now()+stormEvictPeriod <= end {
				r.loop.After(stormEvictPeriod, evict)
			}
		}
		evict()
	case EvFlipStorage:
		r.flip.useLocal = e.Target == "local"
		r.logf("storage backend flipped to %s", e.Target)
	}
}

// baseline snapshots every delta-reported counter at the end of warm-up.
type baseline struct {
	actions, chunksApplied, chunksSent, resumed int64
	discards                                    int64
	scInv, scCold, scFaults                     int64
	tgInv, tgCold, tgFaults                     int64
	tgBackendFailures                           int
	cacheHits, cacheMisses, prefetch            int64
	reads, writes, storeFaults                  int64
}

func (r *Runner) snapshotBaseline() {
	srv := r.sys.Server
	b := &r.base
	b.actions = srv.ActionCount.Value()
	b.chunksApplied = srv.ChunksApplied.Value()
	b.chunksSent = srv.ChunksSent.Value()
	b.resumed = srv.ConstructsResumed.Value()
	if m := r.sys.SpecExec; m != nil {
		b.discards = m.Discards.Value()
	}
	if f := r.sys.SCFn; f != nil {
		b.scInv = int64(f.Invocations.Count())
		b.scCold = f.ColdStarts.Value()
		b.scFaults = f.FaultsInjected.Value()
	}
	if f := r.sys.TGFn; f != nil {
		b.tgInv = int64(f.Invocations.Count())
		b.tgCold = f.ColdStarts.Value()
		b.tgFaults = f.FaultsInjected.Value()
	}
	if tb := r.sys.TGBackend; tb != nil {
		b.tgBackendFailures = tb.Failures
	}
	if c := r.sys.Cache; c != nil {
		b.cacheHits = c.Hits.Value()
		b.cacheMisses = c.Misses.Value()
		b.prefetch = c.PrefetchIssued.Value()
	}
	if st := r.sys.Remote; st != nil {
		b.reads = st.Reads.Value()
		b.writes = st.Writes.Value()
		b.storeFaults = st.FaultsInjected.Value()
	}
	if st := r.localAlt; st != nil {
		b.reads += st.Reads.Value()
		b.writes += st.Writes.Value()
		b.storeFaults += st.FaultsInjected.Value()
	}
}

// run drives the scenario: warm up, reset measurement state, run the
// measured window, then collect the report.
func (r *Runner) run() *Report {
	spec := r.spec
	srv := r.sys.Server
	r.loop.RunUntil(spec.Warmup.D())
	r.snapshotBaseline()
	srv.TickDurations = metrics.NewSample(int((spec.Duration - spec.Warmup).D() / srv.Config().TickInterval))
	if m := r.sys.SpecExec; m != nil {
		m.Efficiency = nil
	}
	if st := r.sys.Remote; st != nil {
		// Like the tick sample, storage latency percentiles are measured
		// over the post-warm-up window only (boot reads excluded).
		st.ReadLatency = metrics.Sample{}
	}
	r.logf("warm-up complete; measuring")
	r.loop.RunUntil(spec.Duration.D())
	srv.Stop()
	r.logf("run complete: %d ticks measured", srv.TickDurations.Len())
	return r.collect()
}

// collect computes the metric map, evaluates assertions, and assembles the
// deterministic report.
func (r *Runner) collect() *Report {
	spec := r.spec
	srv := r.sys.Server
	b := &r.base
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	vals := make(map[string]float64)
	ticks := srv.TickDurations
	total := ticks.Len()
	over := ticks.CountAbove(qosBudget)
	vals["ticks_total"] = float64(total)
	vals["ticks_over_budget"] = float64(over)
	if total > 0 {
		vals["over_budget_frac"] = float64(over) / float64(total)
	} else {
		vals["over_budget_frac"] = 0
	}
	vals["tick_p50_ms"] = msOf(ticks.Percentile(50))
	vals["tick_p90_ms"] = msOf(ticks.Percentile(90))
	vals["tick_p95_ms"] = msOf(ticks.Percentile(95))
	vals["tick_p99_ms"] = msOf(ticks.Percentile(99))
	vals["tick_max_ms"] = msOf(ticks.Max())
	vals["tick_mean_ms"] = msOf(ticks.Mean())
	vals["players_final"] = float64(srv.PlayerCount())
	vals["players_peak"] = float64(r.peak)
	vals["actions"] = float64(srv.ActionCount.Value() - b.actions)
	vals["chunks_applied"] = float64(srv.ChunksApplied.Value() - b.chunksApplied)
	vals["chunks_sent"] = float64(srv.ChunksSent.Value() - b.chunksSent)
	vals["view_margin"] = float64(srv.MinViewMargin())
	vals["constructs"] = float64(srv.SCs().Count())
	vals["constructs_resumed"] = float64(srv.ConstructsResumed.Value() - b.resumed)

	cost := 0.0
	var coldStarts, faults int64
	if m := r.sys.SpecExec; m != nil {
		vals["spec_efficiency_median"] = medianOf(m.Efficiency)
		vals["invalidations"] = float64(m.Discards.Value() - b.discards)
	}
	if f := r.sys.SCFn; f != nil {
		vals["sc_invocations"] = float64(int64(f.Invocations.Count()) - b.scInv)
		scCold := f.ColdStarts.Value() - b.scCold
		vals["sc_cold_starts"] = float64(scCold)
		coldStarts += scCold
		faults += f.FaultsInjected.Value() - b.scFaults
		cost += f.BilledDollars()
	}
	if f := r.sys.TGFn; f != nil {
		vals["tg_invocations"] = float64(int64(f.Invocations.Count()) - b.tgInv)
		tgCold := f.ColdStarts.Value() - b.tgCold
		vals["tg_cold_starts"] = float64(tgCold)
		coldStarts += tgCold
		faults += f.FaultsInjected.Value() - b.tgFaults
		cost += f.BilledDollars()
	}
	if tb := r.sys.TGBackend; tb != nil {
		vals["tg_failures"] = float64(tb.Failures - b.tgBackendFailures)
	}
	if spec.hasFunctionBackend() {
		vals["cold_starts"] = float64(coldStarts)
		vals["faas_faults"] = float64(faults)
	}
	if c := r.sys.Cache; c != nil {
		hits := c.Hits.Value() - b.cacheHits
		misses := c.Misses.Value() - b.cacheMisses
		vals["cache_hits"] = float64(hits)
		vals["cache_misses"] = float64(misses)
		if hits+misses > 0 {
			vals["cache_hit_rate"] = float64(hits) / float64(hits+misses)
		} else {
			vals["cache_hit_rate"] = 0
		}
		vals["prefetch_issued"] = float64(c.PrefetchIssued.Value() - b.prefetch)
	}
	if st := r.sys.Remote; st != nil {
		reads, writes, faults := st.Reads.Value(), st.Writes.Value(), st.FaultsInjected.Value()
		if alt := r.localAlt; alt != nil { // count the flip's local side too
			reads += alt.Reads.Value()
			writes += alt.Writes.Value()
			faults += alt.FaultsInjected.Value()
			cost += alt.BilledDollars()
		}
		vals["storage_reads"] = float64(reads - b.reads)
		vals["storage_writes"] = float64(writes - b.writes)
		vals["storage_faults"] = float64(faults - b.storeFaults)
		// p99 covers the serverless/remote store only (the flip's local
		// side has local-disk latency and would skew the tail).
		vals["storage_read_p99_ms"] = msOf(st.ReadLatency.Percentile(99))
		cost += st.BilledDollars()
	}
	vals["cost_dollars"] = cost

	rep := &Report{Name: spec.Name, Virtual: spec.Duration.D(), Pass: true}
	for _, e := range metricOrder {
		if v, ok := vals[e.Name]; ok {
			rep.Metrics = append(rep.Metrics, Metric{Name: e.Name, Value: v})
		}
	}
	for _, a := range spec.Assertions {
		actual := vals[a.Metric]
		c := Check{Assertion: a, Actual: actual, Ok: a.holds(actual)}
		if !c.Ok {
			rep.Pass = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep
}

func medianOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// flipStore switches the server's chunk/player store between the
// serverless stack and a local-disk-class store at runtime (the
// flip_storage event). Chunks absent from the newly active side simply
// regenerate through the normal terrain path.
type flipStore struct {
	serverless, local mve.ChunkStore
	useLocal          bool
}

var (
	_ mve.ChunkStore     = (*flipStore)(nil)
	_ mve.PlayerStore    = (*flipStore)(nil)
	_ mve.AvatarObserver = (*flipStore)(nil)
)

func (f *flipStore) cur() mve.ChunkStore {
	if f.useLocal {
		return f.local
	}
	return f.serverless
}

func (f *flipStore) Load(pos world.ChunkPos, cb func(*world.Chunk, bool)) { f.cur().Load(pos, cb) }
func (f *flipStore) Store(c *world.Chunk)                                 { f.cur().Store(c) }

func (f *flipStore) SavePlayer(name string, data []byte) {
	if ps, ok := f.cur().(mve.PlayerStore); ok {
		ps.SavePlayer(name, data)
	}
}

func (f *flipStore) LoadPlayer(name string, cb func([]byte, bool)) {
	if ps, ok := f.cur().(mve.PlayerStore); ok {
		ps.LoadPlayer(name, cb)
		return
	}
	cb(nil, false)
}

func (f *flipStore) ObserveAvatars(positions []world.BlockPos, viewDistance int) {
	if o, ok := f.cur().(mve.AvatarObserver); ok {
		o.ObserveAvatars(positions, viewDistance)
	}
}
