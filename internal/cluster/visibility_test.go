package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"servo/internal/blob"
	"servo/internal/mve"
	"servo/internal/sim"
	"servo/internal/world"
)

// pacer walks back and forth between two waypoints forever.
func pacer(x1, z1, x2, z2, speed float64) mve.Behavior {
	target := 0
	return mve.BehaviorFunc(func(_ *rand.Rand, p *mve.Player, _ *mve.Server) []mve.Action {
		if p.Moving() {
			return nil
		}
		target = 1 - target
		if target == 1 {
			return []mve.Action{mve.MoveTo(x2, z2, speed)}
		}
		return []mve.Action{mve.MoveTo(x1, z1, speed)}
	})
}

func TestVisibilityGhostAcrossBorder(t *testing.T) {
	loop, c := newTestCluster(t, 31, 2, Config{Visibility: VisibilityConfig{Enabled: true, Margin: 16}})
	// Band 0 (x in [0,64)) → shard 0; band 1 → shard 1. The 16-block
	// margin keeps the band center out of reach of either border (bands
	// are unbounded, so band -1 sits just west of x=0 too).
	a := c.ConnectAt("alice", nil, world.BlockPos{X: 60, Y: 0, Z: 8})
	b := c.ConnectAt("bob", nil, world.BlockPos{X: 70, Y: 0, Z: 8})
	c.ConnectAt("carol", nil, world.BlockPos{X: 32, Y: 0, Z: 8}) // band center: no border within 16
	if a.Shard() != 0 || b.Shard() != 1 {
		t.Fatalf("setup: shards %d/%d, want 0/1", a.Shard(), b.Shard())
	}
	c.Start()
	loop.RunUntil(time.Second)

	// Each border resident is mirrored on the neighbouring shard...
	ga := c.Shard(1).Ghost("alice")
	if ga == nil {
		t.Fatal("no ghost of alice on shard 1")
	}
	if ga.X != 60 || ga.Home != 0 {
		t.Fatalf("ghost of alice = %+v, want x=60 home=0", ga)
	}
	if c.Shard(0).Ghost("bob") == nil {
		t.Fatal("no ghost of bob on shard 0")
	}
	// ...while the mid-band player replicates nowhere.
	if c.Shard(0).Ghost("carol") != nil || c.Shard(1).Ghost("carol") != nil {
		t.Fatal("mid-band player grew a ghost")
	}
	if got := c.GhostCount(); got != 2 {
		t.Fatalf("ghost count = %d, want 2", got)
	}
	if c.GhostUpdates.Value() == 0 {
		t.Fatal("no ghost updates counted")
	}
	// Alice and bob stand 10 blocks apart across the seam: every scan
	// must have served the pair.
	if got := c.VisibilityGaps.Value(); got != 0 {
		t.Fatalf("visibility gap ticks = %d, want 0", got)
	}

	// Alice leaves the border (to the band center, out of reach of band
	// -1's western seam too); her ghost must expire within the TTL.
	c.Session(a).X = 32
	loop.RunUntil(2 * time.Second)
	if c.Shard(1).Ghost("alice") != nil {
		t.Fatal("ghost of alice survived her leaving the border")
	}
	expired := false
	for _, r := range c.GhostLog.All() {
		if r == (GhostRecord{Player: "alice", Shard: 1, Event: "expire"}) {
			expired = true
		}
	}
	if !expired {
		t.Fatalf("no expire record for alice in the ghost log: %+v", c.GhostLog.All())
	}
}

func TestHandoffSeamlessGhostPromotion(t *testing.T) {
	loop := sim.NewLoop(32)
	remote := blob.NewStore(loop, blob.TierPremium)
	cfg := Config{
		Transfer:   &retryingTransfer{remote: remote},
		Shards:     2,
		Topology:   world.BandTopology{BandChunks: 4},
		Visibility: VisibilityConfig{Enabled: true},
	}
	c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 32, Region: region})
	})
	p := c.ConnectAt("mover", walker(80, 8, 8), world.BlockPos{X: 40, Y: 0, Z: 8})
	c.Start()
	// Stretch the handoff flight so the demoted ghost is observable.
	remote.SetChaos(&blob.Chaos{LatencyFactor: 50})
	sawPinned := false
	var poll func()
	poll = func() {
		if !p.InFlight() {
			loop.After(10*time.Millisecond, poll)
			return
		}
		g := c.Shard(0).Ghost("mover")
		if g == nil {
			t.Error("no ghost of the in-flight session on the source shard")
		} else if !g.Pinned {
			t.Error("in-flight ghost is not pinned")
		} else {
			sawPinned = true
		}
		// The destination shard was already mirroring the approaching
		// avatar; that ghost must ride out the whole (brownout-stretched)
		// flight pinned instead of TTL-expiring — the avatar would
		// otherwise pop out of the very world it is arriving in. Keep
		// polling until the flight ends to catch a late expiry.
		if dg := c.Shard(1).Ghost("mover"); dg == nil {
			t.Error("destination shard's ghost expired mid-flight")
		} else if !dg.Pinned {
			t.Error("destination shard's ghost not pinned mid-flight")
		}
		loop.After(10*time.Millisecond, poll)
	}
	loop.After(10*time.Millisecond, poll)
	loop.RunUntil(90 * time.Second)

	if c.Handoffs.Value() == 0 {
		t.Fatal("no handoff happened")
	}
	if !sawPinned {
		t.Fatal("handoff never observed in flight; test proves nothing")
	}
	if p.Shard() != 1 {
		t.Fatalf("mover on shard %d, want 1", p.Shard())
	}
	// Promotion: the real avatar replaced any ghost on the destination.
	if c.Shard(1).Ghost("mover") != nil {
		t.Fatal("ghost of mover still on its own shard after admission")
	}
	// The source's demoted double is unpinned again (free to expire once
	// the avatar leaves the border).
	if g := c.Shard(0).Ghost("mover"); g != nil && g.Pinned {
		t.Fatal("source ghost still pinned after the handoff completed")
	}
	var demotes, promotes int
	for _, r := range c.GhostLog.All() {
		if r.Player != "mover" {
			continue
		}
		switch r.Event {
		case "demote":
			demotes++
		case "promote":
			if demotes == 0 {
				t.Fatal("promote before demote in the ghost log")
			}
			promotes++
		}
	}
	if demotes == 0 {
		t.Fatalf("no demote records in the ghost log: %+v", c.GhostLog.All())
	}
}

// TestVisibilityDigestDeterministicReplay runs the same seeded pacing
// cluster twice: the published digest byte stream, the ghost-transition
// log, and the handoff log must be identical — the replay surface of the
// interest-management layer.
func TestVisibilityDigestDeterministicReplay(t *testing.T) {
	run := func() ([]byte, []GhostRecord, []HandoffRecord) {
		loop := sim.NewLoop(33)
		remote := blob.NewStore(loop, blob.TierPremium)
		var stream bytes.Buffer
		cfg := Config{
			Transfer: &retryingTransfer{remote: remote},
			Shards:   2,
			Topology: world.BandTopology{BandChunks: 4},
			Visibility: VisibilityConfig{
				Enabled: true,
				Observer: func(src, dst int, digest []byte) {
					fmt.Fprintf(&stream, "%d>%d:", src, dst)
					stream.Write(digest)
				},
			},
		}
		c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
			return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 32, Region: region})
		})
		for i := 0; i < 6; i++ {
			speed := 4 + loop.RNG().Float64()*4
			c.ConnectAt(fmt.Sprintf("p%d", i), pacer(40, float64(i*8), 90, float64(i*8), speed),
				world.BlockPos{X: 40, Y: 0, Z: i * 8})
		}
		c.Start()
		loop.RunUntil(2 * time.Minute)
		return stream.Bytes(), c.GhostLog.All(), c.Log.All()
	}
	d1, g1, h1 := run()
	d2, g2, h2 := run()
	if len(d1) == 0 || len(g1) == 0 || len(h1) == 0 {
		t.Fatalf("empty replay surface (digests %d, ghost log %d, handoffs %d); test proves nothing",
			len(d1), len(g1), len(h1))
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("digest streams diverge (%d vs %d bytes)", len(d1), len(d2))
	}
	if len(g1) != len(g2) {
		t.Fatalf("ghost logs diverge: %d vs %d records", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("ghost log[%d] differs: %+v vs %+v", i, g1[i], g2[i])
		}
	}
	if len(h1) != len(h2) {
		t.Fatalf("handoff logs diverge: %d vs %d", len(h1), len(h2))
	}
}

// TestVisibilityBrownoutDegradesWithoutLosingLiveness: a storage
// brownout stretches handoffs, so in-flight sessions survive only as
// stale pinned ghosts — which must persist for the whole flight (no
// pop-out) and resolve once the writes land. Replication itself is
// in-memory, so the brownout degrades freshness, never liveness.
func TestVisibilityBrownoutDegradesWithoutLosingLiveness(t *testing.T) {
	loop := sim.NewLoop(34)
	remote := blob.NewStore(loop, blob.TierPremium)
	cfg := Config{
		Transfer:   &retryingTransfer{remote: remote},
		Shards:     2,
		Topology:   world.BandTopology{BandChunks: 4},
		Visibility: VisibilityConfig{Enabled: true},
	}
	c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 32, Region: region})
	})
	p := c.ConnectAt("trooper", pacer(40, 8, 90, 8, 6), world.BlockPos{X: 40, Y: 0, Z: 8})
	c.ConnectAt("watcher", nil, world.BlockPos{X: 60, Y: 0, Z: 8})
	remote.SetChaos(&blob.Chaos{ReadErrorRate: 0.4, WriteErrorRate: 0.4, LatencyFactor: 20})
	c.Start()
	ghostGone := 0
	var watch func()
	watch = func() {
		if p.InFlight() && c.Shard(0).Ghost("trooper") == nil && c.Shard(1).Ghost("trooper") == nil {
			ghostGone++ // the avatar vanished from every world mid-flight
		}
		loop.After(50*time.Millisecond, watch)
	}
	loop.After(50*time.Millisecond, watch)
	loop.RunUntil(3 * time.Minute)

	if remote.FaultsInjected.Value() == 0 {
		t.Fatal("brownout injected no faults; test proves nothing")
	}
	if c.Handoffs.Value() == 0 {
		t.Fatal("no handoff completed through the brownout")
	}
	if ghostGone != 0 {
		t.Fatalf("avatar invisible everywhere for %d observations mid-handoff", ghostGone)
	}
	if c.PlayerCount() != 2 {
		t.Fatalf("players = %d after brownout, want 2", c.PlayerCount())
	}
	if c.Session(p) == nil && !p.InFlight() {
		t.Fatal("session lost")
	}
	// Degradation is visible: the brownout stretched handoffs well past
	// the replication interval, so the pinned ghost served stale state.
	if lat := c.HandoffLatency.Max(); lat < DefaultVisibilityInterval {
		t.Fatalf("handoff latency %v too small for staleness to matter", lat)
	}
}

// TestVisibilityServesDisplacedSessions covers the migration/handoff
// transient: after a tile flips owner, its residents are hosted by a
// shard that owns none of the terrain within their margin, so tile-based
// interest alone can never name their host — yet a neighbour hosted by
// the new owner must still see them (and vice versa), and the gap audit
// must cover the pair. The handoff scan is parked (1h interval) to hold
// the transient open.
func TestVisibilityServesDisplacedSessions(t *testing.T) {
	loop, c := newTestCluster(t, 35, 2, Config{
		ScanInterval: time.Hour,
		Visibility:   VisibilityConfig{Enabled: true, Margin: 16},
	})
	// Band 2 (x in [128,192)) starts as shard 0's; both players stand at
	// its center, far from any band border under the 16-block margin.
	home := c.TileCenter(world.TileID{X: 2})
	a := c.ConnectAt("astray", nil, home)
	if a.Shard() != 0 {
		t.Fatalf("astray on shard %d, want 0", a.Shard())
	}
	c.Start()
	loop.RunUntil(time.Second)
	if !c.MigrateTile(world.TileID{X: 2}, 1) {
		t.Fatal("MigrateTile refused")
	}
	loop.RunUntil(1100 * time.Millisecond) // let the flip land
	// A second player joins on the migrated terrain: routed to the new
	// owner, standing right next to the displaced resident.
	b := c.ConnectAt("bystander", nil, home)
	if b.Shard() != 1 {
		t.Fatalf("bystander on shard %d, want 1", b.Shard())
	}
	loop.RunUntil(2 * time.Second)

	if a.Shard() != 0 {
		t.Fatal("handoff scan fired; the displaced transient did not hold")
	}
	if c.Shard(1).Ghost("astray") == nil {
		t.Fatal("displaced session not mirrored onto the terrain owner's shard")
	}
	if c.Shard(0).Ghost("bystander") == nil {
		t.Fatal("neighbour of a displaced session not mirrored onto its host shard")
	}
	if got := c.VisibilityGaps.Value(); got != 0 {
		t.Fatalf("visibility gap ticks = %d, want 0 (pair must be served)", got)
	}
}
