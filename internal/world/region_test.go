package world

import "testing"

func TestRegionZeroValueOwnsEverything(t *testing.T) {
	r := Region{}
	for _, cp := range []ChunkPos{{0, 0}, {-1000, 3}, {999, -999}} {
		if !r.Contains(cp) {
			t.Errorf("zero region must contain %v", cp)
		}
	}
	if !r.All() {
		t.Error("zero region must report All()")
	}
}

func TestStaticRegionsDisjointAndComplete(t *testing.T) {
	topos := []Topology{
		BandTopology{BandChunks: 4},
		GridTopology{TilesX: 3, TilesZ: 2, TileChunks: 4},
	}
	for _, topo := range topos {
		shards := 3
		for x := -40; x <= 40; x += 3 {
			for z := -40; z <= 40; z += 3 {
				cp := ChunkPos{X: x, Z: z}
				owners := 0
				for i := 0; i < shards; i++ {
					if StaticRegion(topo, shards, i).Contains(cp) {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("%v: chunk %v owned by %d shards, want exactly 1", topo, cp, owners)
				}
			}
		}
	}
}

func TestBandRegionIgnoresZ(t *testing.T) {
	topo := BandTopology{BandChunks: 8}
	r := StaticRegion(topo, 4, 1)
	for z := -100; z <= 100; z += 50 {
		if !r.Contains(ChunkPos{X: 9, Z: z}) {
			t.Errorf("band region must own chunk (9,%d) regardless of Z", z)
		}
	}
}

func TestGridRegionSplitsZAxis(t *testing.T) {
	// The motivating case for the tile rekey: a column of chunks spread
	// along Z must NOT all land on one shard under a grid topology.
	topo := GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4}
	owners := make(map[int]bool)
	for cz := 0; cz < 16; cz++ {
		owners[DefaultOwner(topo, 4, topo.TileOf(ChunkPos{X: 0, Z: cz}))] = true
	}
	if len(owners) < 2 {
		t.Fatalf("a Z-axis chunk column maps to %d shard(s), want several", len(owners))
	}
}
