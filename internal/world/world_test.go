package world

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockPosChunkMapping(t *testing.T) {
	cases := []struct {
		pos  BlockPos
		want ChunkPos
	}{
		{BlockPos{0, 0, 0}, ChunkPos{0, 0}},
		{BlockPos{15, 0, 15}, ChunkPos{0, 0}},
		{BlockPos{16, 0, 0}, ChunkPos{1, 0}},
		{BlockPos{-1, 0, -1}, ChunkPos{-1, -1}},
		{BlockPos{-16, 0, -17}, ChunkPos{-1, -2}},
		{BlockPos{100, 0, -100}, ChunkPos{6, -7}},
	}
	for _, c := range cases {
		if got := c.pos.Chunk(); got != c.want {
			t.Errorf("%v.Chunk() = %v, want %v", c.pos, got, c.want)
		}
	}
}

func TestChunkOriginRoundTrip(t *testing.T) {
	f := func(cx, cz int16) bool {
		cp := ChunkPos{X: int(cx), Z: int(cz)}
		return cp.Origin().Chunk() == cp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunksWithinRadius(t *testing.T) {
	got := ChunksWithin(BlockPos{X: 8, Z: 8}, 0)
	if len(got) != 1 || got[0] != (ChunkPos{0, 0}) {
		t.Fatalf("radius 0 = %v, want [chunk(0,0)]", got)
	}
	// Radius 16 from the center of chunk (0,0) touches all 8 neighbors.
	got = ChunksWithin(BlockPos{X: 8, Z: 8}, 16)
	if len(got) != 9 {
		t.Fatalf("radius 16 returned %d chunks, want 9", len(got))
	}
	if ChunksWithin(BlockPos{}, -1) != nil {
		t.Fatal("negative radius should return nil")
	}
}

func TestChunksWithinConsistentWithDistance(t *testing.T) {
	center := BlockPos{X: -23, Z: 41}
	const radius = 48
	within := make(map[ChunkPos]bool)
	for _, cp := range ChunksWithin(center, radius) {
		within[cp] = true
		if d := cp.DistanceBlocks(center); d > radius {
			t.Fatalf("chunk %v included but distance %d > %d", cp, d, radius)
		}
	}
	// Chunks just outside the returned square must be farther than radius.
	for cx := -10; cx <= 10; cx++ {
		for cz := -10; cz <= 10; cz++ {
			cp := ChunkPos{X: cx, Z: cz}
			if !within[cp] && cp.DistanceBlocks(center) <= radius {
				t.Fatalf("chunk %v at distance %d excluded", cp, cp.DistanceBlocks(center))
			}
		}
	}
}

func TestChunkSetAtAndVersion(t *testing.T) {
	c := NewChunk(ChunkPos{1, 2})
	if got := c.At(3, 64, 5); !got.IsAir() {
		t.Fatalf("fresh chunk block = %v, want air", got)
	}
	c.Set(3, 64, 5, Block{ID: Stone})
	if got := c.At(3, 64, 5); got.ID != Stone {
		t.Fatalf("block = %v, want stone", got)
	}
	v := c.Version
	c.Set(3, 64, 5, Block{ID: Stone}) // no-op write
	if c.Version != v {
		t.Fatal("no-op write bumped version")
	}
	c.Set(3, 64, 5, Block{ID: Dirt})
	if c.Version == v {
		t.Fatal("mutating write did not bump version")
	}
	// Out-of-bounds access must be safe.
	c.Set(-1, 0, 0, Block{ID: Stone})
	c.Set(0, 300, 0, Block{ID: Stone})
	if got := c.At(16, 0, 0); !got.IsAir() {
		t.Fatalf("out-of-bounds read = %v, want air", got)
	}
}

func TestChunkSurfaceY(t *testing.T) {
	c := NewChunk(ChunkPos{})
	if got := c.SurfaceY(0, 0); got != -1 {
		t.Fatalf("empty column SurfaceY = %d, want -1", got)
	}
	c.Set(0, 10, 0, Block{ID: Stone})
	c.Set(0, 20, 0, Block{ID: Water}) // not solid
	if got := c.SurfaceY(0, 0); got != 10 {
		t.Fatalf("SurfaceY = %d, want 10", got)
	}
}

func randomChunk(r *rand.Rand, nTypes int) *Chunk {
	c := NewChunk(ChunkPos{X: r.Intn(100) - 50, Z: r.Intn(100) - 50})
	for i := 0; i < 5000; i++ {
		c.Set(r.Intn(ChunkSizeX), r.Intn(ChunkSizeY), r.Intn(ChunkSizeZ),
			Block{ID: BlockID(r.Intn(nTypes)), Data: uint8(r.Intn(16))})
	}
	return c
}

func TestChunkEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		c := randomChunk(r, int(numBlockIDs))
		dec, err := DecodeChunk(c.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !dec.Equal(c) {
			t.Fatalf("round trip mismatch for chunk %v", c.Pos)
		}
	}
}

func TestChunkEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomChunk(r, 4)
		dec, err := DecodeChunk(c.Encode())
		return err == nil && dec.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkEncodingCompact(t *testing.T) {
	// A typical terrain chunk (few block types) must encode far below the
	// raw 128 KiB representation.
	c := NewChunk(ChunkPos{})
	for x := 0; x < ChunkSizeX; x++ {
		for z := 0; z < ChunkSizeZ; z++ {
			for y := 0; y < 64; y++ {
				c.Set(x, y, z, Block{ID: Stone})
			}
			c.Set(x, 64, z, Block{ID: Grass})
		}
	}
	enc := c.Encode()
	if len(enc) > 32*1024 {
		t.Fatalf("terrain chunk encoded to %d bytes, want < 32 KiB", len(enc))
	}
}

func TestDecodeChunkRejectsCorruptInput(t *testing.T) {
	c := NewChunk(ChunkPos{})
	c.Set(0, 0, 0, Block{ID: Stone})
	enc := c.Encode()
	cases := map[string][]byte{
		"empty":           {},
		"short":           enc[:10],
		"bad magic":       append([]byte{0, 0, 0, 0}, enc[4:]...),
		"truncated data":  enc[:len(enc)-10],
		"truncated chunk": enc[:20],
	}
	for name, buf := range cases {
		if _, err := DecodeChunk(buf); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestDecodeChunkRejectsBadPaletteIndex(t *testing.T) {
	c := NewChunk(ChunkPos{})
	enc := c.Encode() // palette of 1 entry, 1 bit per index, all zeros
	// Flip a data bit so an index points past the palette.
	mut := make([]byte, len(enc))
	copy(mut, enc)
	mut[len(mut)-1] |= 0x80
	if _, err := DecodeChunk(mut); err == nil {
		t.Fatal("decode accepted out-of-range palette index")
	}
}

func TestWorldBlockAddressingAcrossChunks(t *testing.T) {
	w := New()
	for cx := -1; cx <= 1; cx++ {
		for cz := -1; cz <= 1; cz++ {
			w.AddChunk(NewChunk(ChunkPos{X: cx, Z: cz}))
		}
	}
	positions := []BlockPos{
		{0, 5, 0}, {-1, 5, -1}, {15, 5, 16}, {-16, 5, 15}, {31, 5, -16},
	}
	for i, p := range positions {
		want := Block{ID: Stone, Data: uint8(i)}
		if !w.SetBlockAt(p, want) {
			t.Fatalf("SetBlockAt(%v) reported unloaded chunk", p)
		}
		if got := w.BlockAt(p); got != want {
			t.Fatalf("BlockAt(%v) = %v, want %v", p, got, want)
		}
	}
	if w.BlockAt(BlockPos{X: 1000, Z: 1000}) != (Block{}) {
		t.Fatal("unloaded chunk must read as air")
	}
	if w.SetBlockAt(BlockPos{X: 1000, Z: 1000}, Block{ID: Stone}) {
		t.Fatal("SetBlockAt on unloaded chunk must report false")
	}
}

func TestWorldDirtyTracking(t *testing.T) {
	w := New()
	c := NewChunk(ChunkPos{})
	w.AddChunk(c)
	if len(w.DirtyChunks()) != 0 {
		t.Fatal("fresh chunk must be clean")
	}
	w.SetBlockAt(BlockPos{X: 1, Y: 1, Z: 1}, Block{ID: Stone})
	d := w.DirtyChunks()
	if len(d) != 1 || d[0] != c {
		t.Fatalf("DirtyChunks = %v, want the mutated chunk", d)
	}
	w.MarkClean(c)
	if len(w.DirtyChunks()) != 0 {
		t.Fatal("MarkClean did not clear dirty state")
	}
}

func TestWorldRemoveChunk(t *testing.T) {
	w := New()
	c := NewChunk(ChunkPos{X: 3, Z: 4})
	w.AddChunk(c)
	if got := w.RemoveChunk(c.Pos); got != c {
		t.Fatal("RemoveChunk did not return the chunk")
	}
	if w.Loaded(c.Pos) || w.LoadedCount() != 0 {
		t.Fatal("chunk still loaded after removal")
	}
	if w.RemoveChunk(c.Pos) != nil {
		t.Fatal("removing an absent chunk must return nil")
	}
}

func TestStatefulBlockClassification(t *testing.T) {
	stateful := []BlockID{Wire, Battery, Lamp, Repeater, Inverter}
	for _, id := range stateful {
		if !id.Stateful() {
			t.Errorf("%v.Stateful() = false, want true", id)
		}
	}
	for _, id := range []BlockID{Air, Stone, Water, Grass} {
		if id.Stateful() {
			t.Errorf("%v.Stateful() = true, want false", id)
		}
	}
	if Air.Solid() || Water.Solid() || !Stone.Solid() {
		t.Error("solidity classification wrong")
	}
}

func TestBlockKeyRoundTripQuick(t *testing.T) {
	f := func(id, data uint8) bool {
		b := Block{ID: BlockID(id), Data: data}
		return blockFromKey(b.key()) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockIDString(t *testing.T) {
	if Stone.String() != "stone" || Wire.String() != "wire" {
		t.Fatal("block name mapping broken")
	}
	if BlockID(200).String() == "" {
		t.Fatal("unknown block must have a fallback name")
	}
}
