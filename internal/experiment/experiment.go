// Package experiment regenerates every table and figure of the paper's
// evaluation (Section IV). Each FigNN/TableN function runs the relevant
// workload on the simulated testbed and returns a printable report whose
// rows/series correspond to the paper's artifact. EXPERIMENTS.md records
// paper-reported vs. measured values.
//
// Experiments are deterministic in Options.Seed and scale their virtual
// duration with Options.Scale so the full suite runs in seconds as a test
// and in minutes as a faithful benchmark.
package experiment

import (
	"fmt"
	"io"
	"time"

	"servo/internal/core"
	"servo/internal/metrics"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/sim"
	"servo/internal/workload"
	"servo/internal/world"
)

// Game identifies one of the compared systems.
type Game int

// The systems under comparison.
const (
	Opencraft Game = iota + 1
	Minecraft
	Servo
)

// String implements fmt.Stringer.
func (g Game) String() string {
	switch g {
	case Opencraft:
		return "Opencraft"
	case Minecraft:
		return "Minecraft"
	case Servo:
		return "Servo"
	}
	return "unknown"
}

// Games lists the systems in the paper's presentation order.
var Games = []Game{Servo, Opencraft, Minecraft}

// Options controls experiment scale and seeding.
type Options struct {
	// Seed makes the run reproducible.
	Seed int64
	// Scale multiplies measurement windows: 1.0 runs the paper's
	// durations (≈10 virtual minutes per run); the default used by tests
	// and benches is shorter.
	Scale float64
	// Log, if non-nil, receives progress lines.
	Log io.Writer
}

// DefaultOptions returns the bench-scale defaults: 60-second measurement
// windows (Scale 0.1) and a fixed seed.
func DefaultOptions() Options {
	return Options{Seed: 42, Scale: 0.1}
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// window returns the scaled duration of a paper-length measurement.
func (o Options) window(paper time.Duration) time.Duration {
	s := o.Scale
	if s <= 0 {
		s = 0.1
	}
	d := time.Duration(float64(paper) * s)
	if d < 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// QoSThreshold is the paper's tick-duration QoS bound: 1/R = 50 ms.
const QoSThreshold = 50 * time.Millisecond

// QoSFraction is the supported-players criterion: fewer than 5% of tick
// samples may exceed QoSThreshold.
const QoSFraction = 0.05

// buildGame assembles the system for one Game. SC offloading is serverless
// only for Servo (Table I: SC column L+S); terrain and storage modes are
// chosen per experiment via the extra toggles.
func buildGame(loop *sim.Loop, g Game, worldType string, seed int64, serverlessTG, serverlessRS bool) *core.System {
	cfg := core.Config{
		Seed:         seed,
		WorldType:    worldType,
		ServerlessTG: serverlessTG,
		ServerlessRS: serverlessRS,
	}
	switch g {
	case Opencraft:
		cfg.Profile = mve.ProfileOpencraft
	case Minecraft:
		cfg.Profile = mve.ProfileMinecraft
	default:
		cfg.Profile = mve.ProfileServo
		cfg.ServerlessSC = true
	}
	return core.New(loop, cfg)
}

// placeConstructGrid spawns n ≈250-block constructs on a grid near spawn,
// spaced so they always stay within loaded terrain for bounded-area
// players (behavior A).
func placeConstructGrid(s *mve.Server, n int) {
	const spacing = 15
	for i := 0; i < n; i++ {
		x := (i%14)*spacing - 105
		z := (i/14)*spacing - 105
		s.SpawnConstruct(sc.BuildSized(250), world.BlockPos{X: x, Y: 5, Z: z})
	}
}

// connectPlayers joins n players with fresh instances of the named
// behavior (Table I names).
func connectPlayers(s *mve.Server, n int, behavior string) {
	for i := 0; i < n; i++ {
		s.Connect(fmt.Sprintf("player-%d", i), workload.ForName(behavior))
	}
}

// measureTicks runs the server for warmup+window and returns the tick
// duration sample collected during the window only.
func measureTicks(loop *sim.Loop, s *mve.Server, warmup, window time.Duration) *metrics.Sample {
	s.Start()
	loop.RunUntil(loop.Now() + warmup)
	s.TickDurations = metrics.NewSample(int(window / s.Config().TickInterval))
	loop.RunUntil(loop.Now() + window)
	s.Stop()
	return s.TickDurations
}

// scRunTicks runs one SC-scalability configuration and returns the tick
// sample (paper §IV-B setup: behavior A, flat world).
func scRunTicks(g Game, scCount, players int, opt Options) *metrics.Sample {
	loop := sim.NewLoop(opt.Seed)
	sys := buildGame(loop, g, "flat", opt.Seed, false, false)
	placeConstructGrid(sys.Server, scCount)
	connectPlayers(sys.Server, players, "A")
	return measureTicks(loop, sys.Server, 15*time.Second, opt.window(10*time.Minute))
}

// playersSupported reports whether the configuration meets the QoS
// criterion.
func playersSupported(sample *metrics.Sample) bool {
	return sample.FracAbove(QoSThreshold) < QoSFraction
}

// MaxPlayers finds the paper's "maximum number of supported players" for
// one game and SC count: the largest player count (on the paper's grid of
// multiples of 10, refined below 10) for which fewer than 5% of tick
// samples exceed 50 ms.
func MaxPlayers(g Game, scCount int, opt Options) int {
	supported := func(n int) bool {
		return playersSupported(scRunTicks(g, scCount, n, opt))
	}
	// Binary search over multiples of 10 in [0, 200] (monotone by
	// construction of the workload).
	lo, hi := 0, 20 // in tens
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if supported(mid * 10) {
			lo = mid
		} else {
			hi = mid - 1
		}
		opt.logf("  maxplayers %s sc=%d: <=%d", g, scCount, hi*10)
	}
	if lo > 0 {
		return lo * 10
	}
	// Refine below 10 players, as the paper does.
	for n := 9; n >= 1; n-- {
		if supported(n) {
			return n
		}
	}
	return 0
}
