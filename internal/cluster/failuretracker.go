// Per-shard crash history and quarantine: the health leg of the
// autoscaling policy subsystem. The cluster's failover path keeps a
// crashed shard's players alive by rerouting them to survivors, and
// RecoverShard re-admits the shard — but a shard that crashes over and
// over (bad host, poisoned state) should not keep getting load handed
// back just to drop it again. The tracker records every crash on the
// virtual clock; a shard that crashes maxFailures times within the
// rolling window enters quarantine, and re-admission (tile ownership,
// RecoverShard) is refused until a probation period has passed with no
// further crashes. Pure virtual-time arithmetic — no goroutines, no wall
// clock — so quarantine decisions replay byte-identically.

package cluster

import "time"

// failureTrackerConfig bounds the crash-loop detector. Zero values take
// the defaults below.
type failureTrackerConfig struct {
	// maxFailures is the number of crashes within window that triggers
	// quarantine.
	maxFailures int
	// window is the rolling interval crashes are counted over.
	window time.Duration
	// probation is how long after the last crash a quarantined shard must
	// stay idle before it may be re-admitted.
	probation time.Duration
}

const (
	defaultMaxFailures      = 3
	defaultFailureWindow    = 2 * time.Minute
	defaultFailureProbation = 2 * time.Minute
)

func (c failureTrackerConfig) withDefaults() failureTrackerConfig {
	if c.maxFailures <= 0 {
		c.maxFailures = defaultMaxFailures
	}
	if c.window <= 0 {
		c.window = defaultFailureWindow
	}
	if c.probation <= 0 {
		c.probation = defaultFailureProbation
	}
	return c
}

// failureTracker records per-shard crash timestamps and derives
// quarantine state from them. Not safe for concurrent use; the virtual
// clock serialises all access like the rest of the control plane.
type failureTracker struct {
	cfg failureTrackerConfig
	// crashes holds each shard's crash times, oldest first, pruned to the
	// rolling window on every insert.
	crashes map[int][]time.Duration
	// quarantinedAt records when a shard entered quarantine; a shard
	// leaves when probation has elapsed since its last crash.
	quarantinedAt map[int]time.Duration
	// last is each shard's most recent crash time, kept outside the
	// pruned window so probation outlives the rolling window.
	last map[int]time.Duration
}

func newFailureTracker(cfg failureTrackerConfig) *failureTracker {
	return &failureTracker{
		cfg:           cfg.withDefaults(),
		crashes:       make(map[int][]time.Duration),
		quarantinedAt: make(map[int]time.Duration),
		last:          make(map[int]time.Duration),
	}
}

// RecordFailure logs a crash of the shard at virtual time now and
// reports whether this crash pushed the shard into quarantine (true only
// on the entering transition, so callers can count quarantine events).
func (ft *failureTracker) RecordFailure(shard int, now time.Duration) bool {
	recent := ft.prune(shard, now)
	recent = append(recent, now)
	ft.crashes[shard] = recent
	ft.last[shard] = now
	if _, in := ft.quarantinedAt[shard]; in {
		// Already quarantined: the new crash extends probation via
		// lastCrash but is not a fresh quarantine event.
		return false
	}
	if len(recent) >= ft.cfg.maxFailures {
		ft.quarantinedAt[shard] = now
		return true
	}
	return false
}

// Quarantined reports whether the shard is quarantined at virtual time
// now, releasing it (and forgetting its history) when probation has
// elapsed since its last crash.
func (ft *failureTracker) Quarantined(shard int, now time.Duration) bool {
	if _, in := ft.quarantinedAt[shard]; !in {
		return false
	}
	if now-ft.last[shard] >= ft.cfg.probation {
		// Probation served: clean slate.
		delete(ft.quarantinedAt, shard)
		delete(ft.crashes, shard)
		delete(ft.last, shard)
		return false
	}
	return true
}

// Failures returns how many crashes of the shard fall inside the rolling
// window ending at now.
func (ft *failureTracker) Failures(shard int, now time.Duration) int {
	return len(ft.prune(shard, now))
}

// prune drops crashes older than the window and returns the survivors.
func (ft *failureTracker) prune(shard int, now time.Duration) []time.Duration {
	recent := ft.crashes[shard]
	for len(recent) > 0 && now-recent[0] > ft.cfg.window {
		recent = recent[1:]
	}
	ft.crashes[shard] = recent
	return recent
}
