// Circuits: use the simulated-construct engine directly — build redstone-
// style circuits, step them, and watch the loop detector recognise a
// periodic construct (the §III-C1 cost optimisation).
//
//	go run ./examples/circuits
package main

import (
	"fmt"

	"servo/internal/sc"
)

func main() {
	// A battery powers a wire run that lights a lamp.
	fmt.Println("== wire + lamp ==")
	c := sc.New(8, 1)
	c.Set(0, 0, sc.Cell{Kind: sc.Source, On: true})
	for x := 1; x < 7; x++ {
		c.Set(x, 0, sc.Cell{Kind: sc.Wire})
	}
	c.Set(7, 0, sc.Cell{Kind: sc.Lamp})
	c.Step()
	for x := 1; x < 7; x++ {
		fmt.Printf("wire[%d] power = %d\n", x, c.At(x, 0).Power)
	}
	fmt.Println("lamp on:", c.At(7, 0).On)

	// A ring oscillator blinks forever.
	fmt.Println("\n== clock circuit ==")
	clock := sc.NewClock(3, 2)
	fmt.Printf("blocks: %d\n", clock.BlockCount())
	// Find a cell that toggles and chart its output.
	probe := clock.Clone()
	w, h := probe.Size()
	traces := make(map[[2]int]string)
	for i := 0; i < 16; i++ {
		probe.Step()
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				cell := probe.At(x, y)
				if cell.Kind == sc.Empty {
					continue
				}
				mark := "."
				if cell.On || cell.Power > 0 {
					mark = "#"
				}
				traces[[2]int{x, y}] += mark
			}
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tr := traces[[2]int{x, y}]
			if tr != "" && tr != "................" && tr[0] != tr[1] {
				fmt.Printf("cell (%d,%d) %s over 16 ticks: %s\n", x, y, probe.At(x, y).Kind, tr)
				y = h
				break
			}
		}
	}

	// The remote simulation function detects the state loop and truncates
	// its reply, so the game can replay the cycle for free.
	res := sc.Simulate(clock, 1000, true)
	if res.Loop != nil {
		fmt.Printf("loop detected: period %d steps (entry %d); only %d of 1000 requested states computed\n",
			res.Loop.Period, res.Loop.EntryIndex, len(res.States))
	}

	// Exact-size constructs, as used in the paper's §IV-G experiments.
	fmt.Println("\n== sized constructs ==")
	for _, blocks := range []int{252, 484} {
		b := sc.BuildSized(blocks)
		w, h := b.Size()
		work := b.Clone().Step()
		fmt.Printf("%d blocks: grid %dx%d, %d work units per step\n", blocks, w, h, work)
	}
}
