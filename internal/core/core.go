// Package core assembles Servo: it wires the speculative execution unit
// (internal/servo/specexec), serverless terrain generation
// (internal/servo/tgen), and cached remote storage (internal/servo/rstore
// + tcache) into an MVE server (internal/mve) backed by a simulated FaaS
// platform and blob store.
//
// Each serverless component can be toggled independently, matching the
// L / S / L+S component matrix of the paper's Table I, so the same
// constructor builds every configuration the experiments compare.
package core

import (
	"time"

	"servo/internal/blob"
	"servo/internal/faas"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/servo/rstore"
	"servo/internal/servo/specexec"
	"servo/internal/servo/tcache"
	"servo/internal/servo/tgen"
	"servo/internal/sim"
	"servo/internal/terrain"
	"servo/internal/world"
)

// SCFunctionName is the deployment name of the construct simulation
// function.
const SCFunctionName = "simulate-construct"

// Config selects which Servo components are serverless and their tuning.
type Config struct {
	// Seed drives terrain generation and, through the clock, everything
	// else.
	Seed int64
	// WorldType is "flat" or "default" (Table I).
	WorldType string
	// ViewDistance in blocks (0 → the 128-block default).
	ViewDistance int
	// TickInterval (0 → 50 ms).
	TickInterval time.Duration

	// Profile sets the cost profile; 0 → mve.ProfileServo.
	Profile mve.Profile
	// Cost optionally overrides the profile cost table.
	Cost *mve.CostParams

	// ServerlessSC offloads simulated constructs (paper §III-C).
	ServerlessSC bool
	// ServerlessTG offloads terrain generation (paper §III-D).
	ServerlessTG bool
	// ServerlessRS stores chunks in managed storage behind the
	// pre-fetching cache (paper §III-E). When false and LocalStore is
	// true, chunks persist to a local-disk-class store instead.
	ServerlessRS bool
	// LocalStore persists chunks locally when ServerlessRS is false
	// (the baselines' behaviour in the storage experiments).
	LocalStore bool

	// SpecExec tunes the speculative execution unit.
	SpecExec specexec.Config
	// SCFn and TGFn tune the two functions; zero values take calibrated
	// defaults.
	SCFn faas.Config
	TGFn faas.Config
	// StorageTier for remote storage (0 → Premium).
	StorageTier blob.Tier
	// Remote, if non-nil, is used as the backing object store instead of
	// creating a fresh one — e.g. to restart a server over an existing
	// world (the Fig. 13 read phase).
	Remote *blob.Store
	// CacheConfig tunes the terrain cache.
	CacheConfig *tcache.Config
	// DisableCache bypasses the terrain cache for ServerlessRS (the
	// "Serverless" curve of Fig. 13).
	DisableCache bool
	// WrapStore, if non-nil, wraps the assembled chunk store before the
	// server boots (e.g. with a latency-measurement probe), so that even
	// boot-time world loading is observed.
	WrapStore func(mve.ChunkStore) mve.ChunkStore
}

// System is an assembled Servo (or baseline) instance.
type System struct {
	Server   *mve.Server
	Platform *faas.Platform

	// SpecExec is the speculative execution unit (nil unless
	// ServerlessSC).
	SpecExec *specexec.Manager
	// SCFn and TGFn are the deployed functions (nil if unused).
	SCFn *faas.Function
	TGFn *faas.Function
	// TGBackend is the serverless terrain backend (nil unless
	// ServerlessTG).
	TGBackend *tgen.Backend

	// Remote, Cache, and RStore are the storage stack (nil unless a
	// store is configured).
	Remote *blob.Store
	Cache  *tcache.Cache
	RStore *rstore.Store
}

// DefaultSCFnConfig returns the construct-simulation function
// configuration, calibrated so that one simulation step of the paper's
// 252-block construct costs ≈2.0 ms of single-vCPU time: §IV-G's anchor of
// ~488 steps/s for 252-block constructs.
func DefaultSCFnConfig() faas.Config {
	cfg := faas.DefaultConfig()
	probe := sc.BuildSized(252).Clone()
	units := probe.Step()
	if units <= 0 {
		units = 1
	}
	cfg.NsPerWorkUnit = time.Duration(2.0 * float64(time.Millisecond) / float64(units))
	return cfg
}

// DefaultTGFnConfig returns the terrain-generation function configuration:
// ~600 ms of single-vCPU time per default-world chunk (Fig. 11's anchor:
// sub-second generation at 10240 MB, >3 s at 320 MB).
func DefaultTGFnConfig() faas.Config {
	cfg := faas.DefaultConfig()
	units := (terrain.Default{}).WorkUnits()
	cfg.NsPerWorkUnit = time.Duration(600 * float64(time.Millisecond) / float64(units))
	cfg.ExecNoiseSigma = 0.18 // Fig. 11: wide boxes even at high memory
	// Terrain generation parallelises worse than the circuit simulator,
	// so memory configurations above ~2 vCPUs see diminishing returns
	// (Fig. 11b: cost-efficiency favors the small configurations).
	cfg.ParallelFrac = 0.7
	return cfg
}

// New assembles a system on the clock. With all serverless toggles off it
// builds a pure baseline server (profile-dependent), which is how the
// experiment harness constructs Opencraft and Minecraft.
func New(clock sim.Clock, cfg Config) *System {
	sys := &System{}
	profile := cfg.Profile
	if profile == 0 {
		profile = mve.ProfileServo
	}
	needPlatform := cfg.ServerlessSC || cfg.ServerlessTG
	if needPlatform {
		sys.Platform = faas.NewPlatform(clock)
	}

	srvCfg := mve.Config{
		Profile:      profile,
		WorldType:    cfg.WorldType,
		Seed:         cfg.Seed,
		ViewDistance: cfg.ViewDistance,
		TickInterval: cfg.TickInterval,
		Cost:         cfg.Cost,
	}

	if cfg.ServerlessSC {
		fnCfg := cfg.SCFn
		if fnCfg.NsPerWorkUnit == 0 {
			fnCfg = DefaultSCFnConfig()
		}
		sys.SCFn = sys.Platform.Register(SCFunctionName, fnCfg, specexec.Handler)
		spec := cfg.SpecExec
		if spec.StepsPerInvocation == 0 {
			spec = specexec.DefaultConfig()
		}
		sys.SpecExec = specexec.NewManager(sys.Platform, SCFunctionName, spec)
		srvCfg.SC = &scAdapter{mgr: sys.SpecExec}
	}

	if cfg.ServerlessTG {
		fnCfg := cfg.TGFn
		if fnCfg.NsPerWorkUnit == 0 {
			fnCfg = DefaultTGFnConfig()
		}
		gen := terrain.ForWorldType(cfg.WorldType, cfg.Seed)
		sys.TGFn = tgen.Register(sys.Platform, gen, fnCfg)
		sys.TGBackend = tgen.NewBackend(sys.Platform, tgen.FunctionName)
		srvCfg.Terrain = sys.TGBackend
	}

	switch {
	case cfg.ServerlessRS:
		tier := cfg.StorageTier
		if tier == 0 {
			tier = blob.TierPremium
		}
		sys.Remote = cfg.Remote
		if sys.Remote == nil {
			sys.Remote = blob.NewStore(clock, tier)
		}
		if cfg.DisableCache {
			srvCfg.Store = &uncachedStore{remote: sys.Remote}
		} else {
			cacheCfg := tcache.DefaultConfig()
			if cfg.CacheConfig != nil {
				cacheCfg = *cfg.CacheConfig
			}
			sys.Cache = tcache.New(clock, sys.Remote, cacheCfg)
			sys.Cache.StartFlusher()
			sys.RStore = rstore.New(sys.Cache)
			srvCfg.Store = sys.RStore
		}
	case cfg.LocalStore:
		sys.Remote = cfg.Remote
		if sys.Remote == nil {
			sys.Remote = blob.NewStore(clock, blob.TierLocal)
		}
		srvCfg.Store = &uncachedStore{remote: sys.Remote}
	}

	if cfg.WrapStore != nil && srvCfg.Store != nil {
		srvCfg.Store = cfg.WrapStore(srvCfg.Store)
	}
	sys.Server = mve.NewServer(clock, srvCfg)
	return sys
}

// scAdapter adapts the speculative execution unit to mve.SCBackend.
type scAdapter struct {
	mgr *specexec.Manager
}

var _ mve.SCBackend = (*scAdapter)(nil)

func (a *scAdapter) Add(c *sc.Construct) uint64 { return a.mgr.Add(c) }
func (a *scAdapter) Remove(id uint64)           { a.mgr.Remove(id) }
func (a *scAdapter) Modify(id uint64, mutate func(*sc.Construct)) bool {
	return a.mgr.Modify(id, mutate)
}
func (a *scAdapter) Count() int { return a.mgr.Len() }

func (a *scAdapter) Tick(tick uint64) mve.SCTickWork {
	w := a.mgr.Tick()
	return mve.SCTickWork{
		WorkUnits:    w.WorkUnits,
		LocalSteps:   w.LocalSteps,
		AppliedSteps: w.AppliedSteps + w.ReplaySteps,
		Simulated:    a.mgr.Len() > 0,
	}
}

// NewBlobChunkStore returns an uncached chunk-and-player store backed
// directly by remote, the same store the baselines use for local
// persistence. The scenario harness uses it as the "local" side of
// runtime storage-backend flips.
func NewBlobChunkStore(remote *blob.Store) mve.ChunkStore {
	return &uncachedStore{remote: remote}
}

// uncachedStore is a direct blob-backed chunk store with no cache: the
// baselines' local persistence (TierLocal) and Fig. 13's uncached
// serverless configuration.
type uncachedStore struct {
	remote *blob.Store
}

var _ mve.ChunkStore = (*uncachedStore)(nil)

func (u *uncachedStore) Load(pos world.ChunkPos, cb func(*world.Chunk, bool)) {
	// GetRetrying: a false not-found would make the server regenerate and
	// overwrite the persisted chunk.
	u.remote.GetRetrying(tcache.Key(pos), func(data []byte, err error) {
		if err != nil {
			cb(nil, false)
			return
		}
		c, derr := world.DecodeChunk(data)
		if derr != nil {
			cb(nil, false)
			return
		}
		cb(c, true)
	})
}

func (u *uncachedStore) Store(c *world.Chunk) {
	u.remote.PutRetrying(tcache.Key(c.Pos), c.Encode())
}

// SavePlayer implements mve.PlayerStore.
func (u *uncachedStore) SavePlayer(name string, data []byte) {
	u.remote.PutRetrying(rstore.PlayerKey(name), data)
}

// LoadPlayer implements mve.PlayerStore. GetRetrying: a false "new
// player" would reset the player's persisted progress.
func (u *uncachedStore) LoadPlayer(name string, cb func([]byte, bool)) {
	u.remote.GetRetrying(rstore.PlayerKey(name), func(data []byte, err error) {
		cb(data, err == nil)
	})
}
