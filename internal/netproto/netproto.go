// Package netproto implements the client↔server wire protocol for
// interactive (real-time) play: length-prefixed binary messages over any
// stream transport (TCP in production, net.Pipe in tests).
//
// Servo is a backend architecture: it deliberately does not change the
// client protocol (paper requirement R4), so the same protocol serves the
// baseline and Servo-backed servers.
package netproto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"servo/internal/world"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Client → server messages.
const (
	MsgJoin MsgType = iota + 1
	MsgMove
	MsgPlaceBlock
	MsgBreakBlock
	MsgChat
	MsgSetInventory
	MsgPing
)

// Server → client messages.
const (
	MsgWelcome MsgType = iota + 64
	MsgChunkData
	MsgStateUpdate
	MsgChatBroadcast
	MsgPong
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgJoin:
		return "join"
	case MsgMove:
		return "move"
	case MsgPlaceBlock:
		return "place"
	case MsgBreakBlock:
		return "break"
	case MsgChat:
		return "chat"
	case MsgSetInventory:
		return "inventory"
	case MsgPing:
		return "ping"
	case MsgWelcome:
		return "welcome"
	case MsgChunkData:
		return "chunk"
	case MsgStateUpdate:
		return "state"
	case MsgChatBroadcast:
		return "chat-broadcast"
	case MsgPong:
		return "pong"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Message is one decoded protocol message. Fields are populated according
// to Type.
type Message struct {
	Type MsgType

	// MsgJoin / MsgChat / MsgChatBroadcast.
	Name string
	Text string

	// MsgMove.
	DestX, DestZ, Speed float64

	// MsgPlaceBlock / MsgBreakBlock.
	Pos   world.BlockPos
	Block world.Block

	// MsgSetInventory.
	Item uint8

	// MsgPing / MsgPong.
	Nonce uint64

	// MsgWelcome.
	PlayerID int64

	// MsgChunkData: an encoded chunk (world.DecodeChunk).
	ChunkData []byte

	// MsgStateUpdate.
	Tick    uint64
	Avatars []AvatarState
}

// AvatarState is one player's position in a state update.
type AvatarState struct {
	ID   int64
	X, Z float64
}

// MaxMessageSize bounds a single frame (a compressed chunk plus headroom).
const MaxMessageSize = 1 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxMessageSize.
var ErrFrameTooLarge = errors.New("netproto: frame too large")

// Encode serialises the message with its length-prefixed frame header.
func Encode(m Message) []byte {
	body := make([]byte, 0, 64+len(m.ChunkData))
	body = append(body, byte(m.Type))
	switch m.Type {
	case MsgJoin:
		body = appendString(body, m.Name)
	case MsgMove:
		body = appendF64(body, m.DestX)
		body = appendF64(body, m.DestZ)
		body = appendF64(body, m.Speed)
	case MsgPlaceBlock, MsgBreakBlock:
		body = appendBlockPos(body, m.Pos)
		body = append(body, byte(m.Block.ID), m.Block.Data)
	case MsgChat, MsgChatBroadcast:
		body = appendString(body, m.Name)
		body = appendString(body, m.Text)
	case MsgSetInventory:
		body = append(body, m.Item)
	case MsgPing, MsgPong:
		body = binary.LittleEndian.AppendUint64(body, m.Nonce)
	case MsgWelcome:
		body = binary.LittleEndian.AppendUint64(body, uint64(m.PlayerID))
	case MsgChunkData:
		body = binary.LittleEndian.AppendUint32(body, uint32(len(m.ChunkData)))
		body = append(body, m.ChunkData...)
	case MsgStateUpdate:
		body = binary.LittleEndian.AppendUint64(body, m.Tick)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(m.Avatars)))
		for _, a := range m.Avatars {
			body = binary.LittleEndian.AppendUint64(body, uint64(a.ID))
			body = appendF64(body, a.X)
			body = appendF64(body, a.Z)
		}
	}
	out := make([]byte, 0, 4+len(body))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	return append(out, body...)
}

// Decode parses one message body (without the 4-byte length prefix).
func Decode(body []byte) (Message, error) {
	r := reader{buf: body}
	t, err := r.u8()
	if err != nil {
		return Message{}, err
	}
	m := Message{Type: MsgType(t)}
	switch m.Type {
	case MsgJoin:
		m.Name, err = r.str()
	case MsgMove:
		m.DestX, m.DestZ, m.Speed, err = r.f64x3()
	case MsgPlaceBlock, MsgBreakBlock:
		m.Pos, err = r.blockPos()
		if err == nil {
			var id, data uint8
			if id, err = r.u8(); err == nil {
				data, err = r.u8()
				m.Block = world.Block{ID: world.BlockID(id), Data: data}
			}
		}
	case MsgChat, MsgChatBroadcast:
		if m.Name, err = r.str(); err == nil {
			m.Text, err = r.str()
		}
	case MsgSetInventory:
		m.Item, err = r.u8()
	case MsgPing, MsgPong:
		m.Nonce, err = r.u64()
	case MsgWelcome:
		var v uint64
		v, err = r.u64()
		m.PlayerID = int64(v)
	case MsgChunkData:
		var n uint32
		if n, err = r.u32(); err == nil {
			m.ChunkData, err = r.bytes(int(n))
		}
	case MsgStateUpdate:
		if m.Tick, err = r.u64(); err == nil {
			var n uint32
			if n, err = r.u32(); err == nil {
				if int(n) > MaxMessageSize/17 {
					return Message{}, fmt.Errorf("netproto: avatar count %d too large", n)
				}
				m.Avatars = make([]AvatarState, 0, n)
				for i := uint32(0); i < n && err == nil; i++ {
					var a AvatarState
					var id uint64
					if id, err = r.u64(); err == nil {
						a.ID = int64(id)
						a.X, a.Z, _, err = r.f64x3dummy()
						m.Avatars = append(m.Avatars, a)
					}
				}
			}
		}
	default:
		return Message{}, fmt.Errorf("netproto: unknown message type %d", t)
	}
	if err != nil {
		return Message{}, err
	}
	return m, nil
}

// Write frames and writes one message.
func Write(w io.Writer, m Message) error {
	_, err := w.Write(Encode(m))
	return err
}

// Reader reads framed messages from a stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps a stream for framed reads.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64*1024)}
}

// Next reads and decodes the next message, blocking until one arrives.
func (r *Reader) Next() (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.br, lenBuf[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > MaxMessageSize {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r.br, body); err != nil {
		return Message{}, err
	}
	return Decode(body)
}

// --- encoding helpers --------------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendBlockPos(b []byte, p world.BlockPos) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(p.X)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(p.Y)))
	return binary.LittleEndian.AppendUint32(b, uint32(int32(p.Z)))
}

var errShort = errors.New("netproto: truncated message")

type reader struct {
	buf []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, errShort
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *reader) f64x3() (a, b, c float64, err error) {
	if a, err = r.f64(); err != nil {
		return
	}
	if b, err = r.f64(); err != nil {
		return
	}
	c, err = r.f64()
	return
}

// f64x3dummy reads two floats (used by avatar decoding where only X and Z
// are on the wire); the third return keeps call sites symmetrical.
func (r *reader) f64x3dummy() (a, b, c float64, err error) {
	if a, err = r.f64(); err != nil {
		return
	}
	b, err = r.f64()
	return
}

func (r *reader) str() (string, error) {
	lb, err := r.take(2)
	if err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(lb))
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > MaxMessageSize {
		return nil, ErrFrameTooLarge
	}
	b, err := r.take(n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

func (r *reader) blockPos() (world.BlockPos, error) {
	b, err := r.take(12)
	if err != nil {
		return world.BlockPos{}, err
	}
	return world.BlockPos{
		X: int(int32(binary.LittleEndian.Uint32(b))),
		Y: int(int32(binary.LittleEndian.Uint32(b[4:]))),
		Z: int(int32(binary.LittleEndian.Uint32(b[8:]))),
	}, nil
}
