// Session management: connecting, disconnecting, and routing player
// actions. The game-loop world simulation lives in server.go; this file is
// the narrow surface a cluster shard needs — Connect/Disconnect for local
// sessions, and AdmitPlayer/EvictPlayer, which transfer a session between
// shards as a PlayerSnapshot without touching the persistence path.

package mve

import (
	"time"

	"servo/internal/sc"
	"servo/internal/world"
)

// Connect adds a player at the spawn point with the given behavior
// (nil for an idle player) and returns the session.
func (s *Server) Connect(name string, b Behavior) *Player {
	return s.ConnectAt(name, b, 0, 0)
}

// ConnectAt is Connect with an explicit spawn position (shard-aware fleet
// placement drops players into their shard's home band). Persisted player
// data, when a store is configured, still overrides the position once it
// arrives.
func (s *Server) ConnectAt(name string, b Behavior, x, z float64) *Player {
	s.nextPlayer++
	p := &Player{
		ID:       s.nextPlayer,
		Name:     name,
		X:        x,
		Z:        z,
		behavior: b,
		known:    make(map[world.ChunkPos]bool),
	}
	p.destX, p.destZ = p.X, p.Z
	s.players[p.ID] = p
	s.playerOrder = append(s.playerOrder, p.ID)
	s.loadPlayerData(p)
	return p
}

// Disconnect removes a player session, persisting its player data when a
// store is configured. It reports whether the session existed (false for
// a repeated disconnect or a stale id).
func (s *Server) Disconnect(id PlayerID) bool {
	p, ok := s.players[id]
	if !ok {
		return false
	}
	s.savePlayerData(p)
	s.removeSession(id)
	return true
}

// removeSession drops the session from the routing tables.
func (s *Server) removeSession(id PlayerID) {
	delete(s.players, id)
	for i, pid := range s.playerOrder {
		if pid == id {
			s.playerOrder = append(s.playerOrder[:i], s.playerOrder[i+1:]...)
			break
		}
	}
}

// Players returns the connected players in join order.
func (s *Server) Players() []*Player {
	out := make([]*Player, 0, len(s.playerOrder))
	for _, id := range s.playerOrder {
		out = append(out, s.players[id])
	}
	return out
}

// EachPlayer visits every connected player in join order without
// allocating (the zero-alloc counterpart of Players, for per-tick hot
// paths like the network push loop). fn must not connect or disconnect
// sessions.
func (s *Server) EachPlayer(fn func(*Player)) {
	for _, id := range s.playerOrder {
		fn(s.players[id])
	}
}

// Player returns the session with the given id, or nil.
func (s *Server) Player(id PlayerID) *Player { return s.players[id] }

// PlayerCount returns the number of connected players.
func (s *Server) PlayerCount() int { return len(s.players) }

// ConstructSnapshot is the transferable state of one player-owned
// construct: its layout, cell state, and world anchor.
type ConstructSnapshot struct {
	Anchor world.BlockPos
	Layout []byte // sc.Construct.EncodeLayout
	State  sc.StateVector
}

// PlayerSnapshot is the transferable state of a session: the unit of
// cross-shard handoff. Behavior rides along in memory only (behaviors are
// code, not data); everything else round-trips through EncodeSnapshot.
type PlayerSnapshot struct {
	Name         string
	X, Z         float64
	DestX, DestZ float64
	Speed        float64
	Inventory    uint8
	// ChunksReceived carries the client's delivery counter across shards.
	ChunksReceived int
	Behavior       Behavior
	// Constructs are the player's owned constructs travelling with it
	// (populated by the cluster, not by EvictPlayer).
	Constructs []ConstructSnapshot
}

// SnapshotPlayer returns a session's transferable state without removing
// it: the periodic-checkpoint path, which persists never-evicted players
// so a shard failover restores their inventory rather than only their
// scan-tracked position. ok is false if the session does not exist.
func (s *Server) SnapshotPlayer(id PlayerID) (PlayerSnapshot, bool) {
	p, ok := s.players[id]
	if !ok {
		return PlayerSnapshot{}, false
	}
	return PlayerSnapshot{
		Name:           p.Name,
		X:              p.X,
		Z:              p.Z,
		DestX:          p.destX,
		DestZ:          p.destZ,
		Speed:          p.speed,
		Inventory:      p.Inventory,
		ChunksReceived: p.ChunksReceived,
		Behavior:       p.behavior,
	}, true
}

// EvictPlayer removes a session without persisting it and returns its
// snapshot: the source half of a cross-shard handoff, where the cluster —
// not the shard — owns the persistence round-trip. ok is false if the
// session does not exist.
func (s *Server) EvictPlayer(id PlayerID) (PlayerSnapshot, bool) {
	snap, ok := s.SnapshotPlayer(id)
	if !ok {
		return PlayerSnapshot{}, false
	}
	s.removeSession(id)
	return snap, true
}

// AdmitPlayer installs a session from a snapshot at its recorded position:
// the target half of a cross-shard handoff. Unlike Connect it does not
// consult the player store (the cluster already moved the state) and it
// restores any constructs travelling with the player. The client's chunk
// knowledge is empty on the new shard, so terrain resends — exactly the
// reconnect cost a real cross-server transfer pays.
func (s *Server) AdmitPlayer(snap PlayerSnapshot) *Player {
	s.nextPlayer++
	p := &Player{
		ID:             s.nextPlayer,
		Name:           snap.Name,
		X:              snap.X,
		Z:              snap.Z,
		destX:          snap.DestX,
		destZ:          snap.DestZ,
		speed:          snap.Speed,
		Inventory:      snap.Inventory,
		ChunksReceived: snap.ChunksReceived,
		behavior:       snap.Behavior,
		known:          make(map[world.ChunkPos]bool),
	}
	s.players[p.ID] = p
	s.playerOrder = append(s.playerOrder, p.ID)
	return p
}

// processAction applies one player action and returns its work cost.
func (s *Server) processAction(p *Player, a Action) time.Duration {
	s.ActionCount.Inc()
	s.noteAction(p.Pos())
	cost := s.cost.PerAction
	switch a.Kind {
	case ActionMove:
		p.destX, p.destZ = a.DestX, a.DestZ
		p.speed = a.Speed
	case ActionPlaceBlock, ActionBreakBlock:
		b := a.Block
		if a.Kind == ActionBreakBlock {
			b = world.Block{}
		}
		if id, ok := s.footprint[a.Pos]; ok {
			// The block belongs to a simulated construct: this is a
			// player modification that invalidates speculation.
			anchor := s.anchors[id].anchor
			cx, cz := a.Pos.X-anchor.X, a.Pos.Z-anchor.Z
			s.scs.Modify(id, func(c *sc.Construct) {
				cell := c.At(cx, cz)
				if a.Kind == ActionBreakBlock {
					c.Set(cx, cz, sc.Cell{})
				} else {
					cell.On = !cell.On
					c.Set(cx, cz, cell)
				}
			})
			if a.Kind == ActionBreakBlock {
				delete(s.footprint, a.Pos)
			}
		}
		s.world.SetBlockAt(a.Pos, b)
	case ActionChat:
		// Fan out to every connected player — cluster-wide through the
		// relay when one is installed (cross-shard chat), else locally.
		n := len(s.players)
		if s.chatRelay != nil {
			n = s.chatRelay(p)
		} else {
			s.ChatsDelivered.Add(int64(n))
		}
		cost += time.Duration(n) * (s.cost.PerAction / 8)
	case ActionSetInventory:
		p.Inventory = a.Item
	case ActionIdle:
		// Explicit no-op.
	}
	return cost
}
