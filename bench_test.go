package servo

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates the artifact at bench
// scale and reports its headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result set end to end. Scale with
// -servo.scale=1.0 for paper-length measurement windows.

import (
	"flag"
	"fmt"
	"io"
	"testing"

	"servo/internal/cluster"
	"servo/internal/experiment"
	"servo/internal/mve"
	"servo/internal/sim"
	"servo/internal/world"
)

var benchScale = flag.Float64("servo.scale", 0.1, "experiment duration scale for benchmarks (1.0 = paper length)")

// benchSmokeScale is the scale cap in -short mode: `make benchsmoke` is a
// compile-and-execute gate over every figure pipeline, not a measurement,
// so the windows shrink to seconds of virtual time.
const benchSmokeScale = 0.02

func benchOpt() experiment.Options {
	scale := *benchScale
	if testing.Short() && scale > benchSmokeScale {
		scale = benchSmokeScale
	}
	return experiment.Options{Seed: 42, Scale: scale}
}

// BenchmarkFig1MaxPlayers regenerates Fig. 1: the headline maximum-players
// comparison in the 100-construct world (paper: Servo 150, Minecraft 90,
// Opencraft 10).
func BenchmarkFig1MaxPlayers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig1(benchOpt())
		b.ReportMetric(float64(r.Max[experiment.Servo]), "servo-players")
		b.ReportMetric(float64(r.Max[experiment.Opencraft]), "opencraft-players")
		b.ReportMetric(float64(r.Max[experiment.Minecraft]), "minecraft-players")
	}
}

// BenchmarkFig3BlobLatency regenerates Fig. 3: download latency from
// serverless storage per data type and tier.
func BenchmarkFig3BlobLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig3(benchOpt())
		b.ReportMetric(r.Latency["Terrain"][2].P50.Seconds()*1000, "premium-p50-ms")
		b.ReportMetric(r.Latency["Terrain"][3].P50.Seconds()*1000, "standard-p50-ms")
	}
}

// BenchmarkFig7aScalability regenerates Fig. 7a: maximum supported players
// for 0/50/100/200 simulated constructs across all three games.
func BenchmarkFig7aScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig7a(benchOpt())
		b.ReportMetric(float64(r.Max[200][experiment.Servo]), "servo-at-200sc")
		b.ReportMetric(float64(r.Max[200][experiment.Opencraft]), "opencraft-at-200sc")
		b.ReportMetric(float64(r.Max[0][experiment.Opencraft]), "opencraft-at-0sc")
	}
}

// BenchmarkFig7bTickDistribution regenerates Fig. 7b: tick-duration
// distributions for 10..200 players at 200 constructs.
func BenchmarkFig7bTickDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig7b(benchOpt())
		last := r.Players[len(r.Players)-1]
		b.ReportMetric(r.Box[experiment.Servo][last].P95.Seconds()*1000, "servo-p95-ms")
		b.ReportMetric(r.Box[experiment.Opencraft][last].P95.Seconds()*1000, "opencraft-p95-ms")
	}
}

// BenchmarkFig8Efficiency regenerates Fig. 8: speculation efficiency vs
// tick lead and simulation length (paper: lead 0 → 0.84 median, lead ≥ 10
// → 1.0).
func BenchmarkFig8Efficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig8(benchOpt())
		b.ReportMetric(r.ByLead[0].Median, "lead0-median-eff")
		b.ReportMetric(r.ByLead[20].Median, "lead20-median-eff")
		b.ReportMetric(r.BySteps[200].Median, "steps200-median-eff")
	}
}

// BenchmarkFig9InvocationCost regenerates Fig. 9: invocation latency,
// rate, and the §IV-C hourly cost (paper: $0.216–$0.244).
func BenchmarkFig9InvocationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig9(benchOpt())
		b.ReportMetric(r.Latency[200].Mean.Seconds()*1000, "steps200-mean-ms")
		b.ReportMetric(r.DollarsHour[100], "dollars-per-hour")
	}
}

// BenchmarkFig10TerrainQoS regenerates Fig. 10: view-range QoS under the
// Sinc workload (paper: Servo holds 128, Opencraft collapses below 16).
func BenchmarkFig10TerrainQoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig10(benchOpt())
		b.ReportMetric(r.MinFinalViewRange(experiment.Servo), "servo-final-view")
		b.ReportMetric(r.MinFinalViewRange(experiment.Opencraft), "opencraft-final-view")
	}
}

// BenchmarkFig11MemoryScaling regenerates Fig. 11: generation latency and
// cost-efficiency vs function memory.
func BenchmarkFig11MemoryScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig11(benchOpt())
		b.ReportMetric(r.Latency[320].Mean.Seconds(), "mem320-mean-s")
		b.ReportMetric(r.Latency[10240].Mean.Seconds(), "mem10240-mean-s")
	}
}

// BenchmarkFig12aTerrainScalability regenerates Fig. 12a: supported
// players under the S3/S8 star workloads (paper: Servo 18/15, Opencraft
// 12/9).
func BenchmarkFig12aTerrainScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig12a(benchOpt())
		b.ReportMetric(float64(r.Series["S3"][experiment.Servo].SupportedPlayers), "servo-s3")
		b.ReportMetric(float64(r.Series["S3"][experiment.Opencraft].SupportedPlayers), "opencraft-s3")
		b.ReportMetric(float64(r.Series["S8"][experiment.Servo].SupportedPlayers), "servo-s8")
		b.ReportMetric(float64(r.Series["S8"][experiment.Opencraft].SupportedPlayers), "opencraft-s8")
	}
}

// BenchmarkFig12bRandomWorkload regenerates Fig. 12b: supported players
// under the random behavior, repeated.
func BenchmarkFig12bRandomWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig12b(benchOpt())
		b.ReportMetric(r.Mean(experiment.Servo), "servo-mean-players")
		b.ReportMetric(r.Mean(experiment.Opencraft), "opencraft-mean-players")
	}
}

// BenchmarkFig13StorageLatency regenerates Fig. 13: terrain retrieval
// latency for local, serverless, and cached-serverless storage (paper:
// cache cuts the p99.9 from 226 ms to 34 ms).
func BenchmarkFig13StorageLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig13(benchOpt())
		b.ReportMetric(r.Latency[experiment.StorageServerless].Percentile(99.9).Seconds()*1000, "serverless-p999-ms")
		b.ReportMetric(r.Latency[experiment.StorageServerlessCache].Percentile(99.9).Seconds()*1000, "cached-p999-ms")
	}
}

// BenchmarkSec4GConstructPerf regenerates §IV-G: offloaded simulation
// rates for 252- and 484-block constructs (paper: ≥488 and ≥105 updates/s
// for 95% of samples).
func BenchmarkSec4GConstructPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Sec4G(benchOpt())
		b.ReportMetric(r.P5Rate[252], "blocks252-p5-rate")
		b.ReportMetric(r.P5Rate[484], "blocks484-p5-rate")
	}
}

// BenchmarkTableI prints the Table I experiment registry (a smoke
// benchmark keeping the tables in the `-bench=.` sweep).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.TableI(io.Discard)
		experiment.TableII(io.Discard)
	}
}

// visBenchCluster builds a two-shard visibility cluster with n idle
// border residents paired across a band seam (the internal/bench scan
// harness layout, rebuilt here because this in-package test file cannot
// import internal/bench without a cycle through servo itself).
func visBenchCluster(n int, fullRescan bool) *cluster.Cluster {
	loop := sim.NewLoop(7)
	c := cluster.New(loop, cluster.Config{
		Shards:     2,
		Topology:   world.BandTopology{BandChunks: 4},
		Visibility: cluster.VisibilityConfig{Enabled: true, Margin: 16, FullRescan: fullRescan},
	}, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 32, Region: region})
	})
	for i := 0; i < n; i++ {
		x := 60
		if i%2 == 1 {
			x = 70
		}
		c.ConnectAt(fmt.Sprintf("r%d", i), nil, world.BlockPos{X: x, Y: 0, Z: (i / 2) * 48})
	}
	c.VisibilityScanOnce() // warm the membership caches and ghost registries
	return c
}

// BenchmarkVisibilityScan measures one replication tick of the interest-
// management layer at 1k and 4k border residents: the incremental
// (dirty-set) scan against the full-rescan baseline it replaced. The
// incremental path must be allocation-free in steady state.
func BenchmarkVisibilityScan(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		for _, mode := range []struct {
			name string
			full bool
		}{{"incremental", false}, {"full-rescan", true}} {
			b.Run(fmt.Sprintf("%s-%d", mode.name, n), func(b *testing.B) {
				c := visBenchCluster(n, mode.full)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.VisibilityScanOnce()
				}
			})
		}
	}
}

// BenchmarkGhostDigest measures the digest wire forms: the stateless
// full encoding and the steady-state delta path (stable membership,
// moving positions), which must not allocate.
func BenchmarkGhostDigest(b *testing.B) {
	entries := make([]cluster.DigestEntry, 512)
	for i := range entries {
		entries[i] = cluster.DigestEntry{Name: fmt.Sprintf("player-%04d", i), X: float64(i), Z: 5, Home: i % 2}
	}
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.EncodeGhostDigest(entries); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		var enc cluster.DigestEncoder
		if _, err := enc.Encode(entries, 1); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			entries[i%len(entries)].X += 0.5
			if _, err := enc.Encode(entries, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineTick measures the raw cost of one fully-loaded Servo
// game tick (200 constructs, 100 players) — the engine hot path.
func BenchmarkEngineTick(b *testing.B) {
	inst := NewInstance(Config{Seed: 1, WorldType: "flat", Servo: Serverless{Constructs: true}})
	defer inst.Stop()
	for i := 0; i < 200; i++ {
		inst.SpawnConstruct(NewConstructSized(250), At((i%14)*15-105, 5, (i/14)*15-105))
	}
	for i := 0; i < 100; i++ {
		inst.Connect("p", BehaviorBounded)
	}
	inst.Run(10 * 50 * 1000000) // 10 ticks of warm-up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Run(50 * 1000000) // one 50 ms tick
	}
}
