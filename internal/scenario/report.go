package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Metric availability classes: some metrics only exist when the matching
// backend is configured, and assertions on them are rejected statically.
const (
	needsNone       = ""
	needsSC         = "sc"         // backend.constructs
	needsTG         = "tg"         // backend.terrain
	needsFaaS       = "faas"       // any serverless function backend
	needsCache      = "cache"      // backend.storage (the terrain cache)
	needsStore      = "store"      // backend.storage or backend.local_store
	needsCluster    = "cluster"    // shards > 1
	needsVisibility = "visibility" // a visibility section (and shards > 1)
)

// metricOrder fixes the registry and its deterministic report order.
// Duration-valued metrics are reported in milliseconds.
var metricOrder = []struct {
	Name  string
	Needs string
}{
	{"ticks_total", needsNone},
	{"ticks_over_budget", needsNone}, // ticks above the 50 ms QoS bound
	{"over_budget_frac", needsNone},
	{"tick_p50_ms", needsNone},
	{"tick_p90_ms", needsNone},
	{"tick_p95_ms", needsNone},
	{"tick_p99_ms", needsNone},
	{"tick_max_ms", needsNone},
	{"tick_mean_ms", needsNone},
	{"players_final", needsNone},
	{"players_peak", needsNone},
	{"players_lost", needsNone}, // joins - confirmed leaves - final (0 = zero-loss)
	{"actions", needsNone},
	{"chats_delivered", needsNone}, // chat deliveries (cluster-wide when sharded)
	{"chunks_applied", needsNone},
	{"chunks_sent", needsNone},
	{"view_margin", needsNone}, // blocks of loaded terrain margin (Fig. 10 QoS)
	{"constructs", needsNone},
	{"constructs_resumed", needsNone},
	{"spec_efficiency_median", needsSC},
	{"invalidations", needsSC}, // speculation discards (§III-C)
	{"sc_invocations", needsSC},
	{"sc_cold_starts", needsSC},
	{"tg_invocations", needsTG},
	{"tg_cold_starts", needsTG},
	{"tg_failures", needsTG}, // failed generation invocations (incl. retried)
	{"gen_deduped", needsTG}, // seam chunks adopted from the cross-shard dedup cache
	{"cold_starts", needsFaaS},
	{"faas_faults", needsFaaS},
	{"cache_hits", needsCache},
	{"cache_misses", needsCache},
	{"cache_hit_rate", needsCache},
	{"prefetch_issued", needsCache},
	{"storage_reads", needsStore},
	{"storage_writes", needsStore},
	{"storage_faults", needsStore},
	{"storage_read_p99_ms", needsStore},
	{"shards", needsCluster},
	{"handoffs", needsCluster},        // completed cross-shard handoffs
	{"handoff_mean_ms", needsCluster}, // mean handoff latency
	{"handoff_p99_ms", needsCluster},  // p99 handoff latency
	{"load_imbalance", needsCluster},  // max/mean per-shard mean tick duration
	{"ownership_epoch", needsCluster}, // ownership-table version (migrations + failovers)
	{"rebalances", needsCluster},      // controller rebalance decisions
	{"tiles_moved", needsCluster},     // completed tile-ownership migrations
	{"bands_moved", needsCluster},     // legacy alias of tiles_moved (PR 3 band-era name)
	{"failovers", needsCluster},       // shards failed over
	{"players_failed_over", needsCluster},
	{"shards_active", needsCluster},           // alive shards at end of run
	{"shards_peak", needsCluster},             // highest alive shard count seen
	{"scale_ups", needsCluster},               // shards added at runtime
	{"scale_downs", needsCluster},             // shards drained and retired
	{"quarantines", needsCluster},             // crash-loop quarantine entries
	{"tiles_drained", needsCluster},           // tiles migrated off draining shards
	{"ghost_avatars", needsVisibility},        // live ghost avatars at end of run
	{"ghost_updates", needsVisibility},        // digest entries applied to ghost registries
	{"visibility_gap_ticks", needsVisibility}, // replication scans with an unserved visible pair
	{"cost_dollars", needsNone},               // FaaS + storage billing over the whole run
}

// shardMetricBases are the per-shard metrics a sharded report rolls up,
// reported (and assertable) as "shard<i>_<base>".
var shardMetricBases = []string{
	"ticks_total", "tick_p50_ms", "tick_p99_ms",
	"players_final", "handoffs_in", "handoffs_out",
	"first_active_ms", "last_active_ms",
}

// parseShardMetric splits a "shard<i>_<base>" name. ok is false if the
// name is not a per-shard metric.
func parseShardMetric(name string) (shard int, base string, ok bool) {
	if !strings.HasPrefix(name, "shard") {
		return 0, "", false
	}
	rest := name[len("shard"):]
	sep := strings.IndexByte(rest, '_')
	if sep <= 0 {
		return 0, "", false
	}
	n, err := strconv.Atoi(rest[:sep])
	if err != nil || n < 0 {
		return 0, "", false
	}
	base = rest[sep+1:]
	for _, b := range shardMetricBases {
		if b == base {
			return n, base, true
		}
	}
	return 0, "", false
}

// windowableMetrics are the assertions that support [from, to] windows:
// everything recomputable from a per-tick or sampled time series.
// load_imbalance recomputes per-shard means inside the window, so a spec
// can assert that imbalance spiked after a hotspot event and decreased
// once the controller rebalanced. view_margin takes the minimum of a
// once-per-second sample of the distance to the closest missing terrain
// (the Fig. 10 QoS floor over the window).
var windowableMetrics = map[string]bool{
	"ticks_total": true, "ticks_over_budget": true, "over_budget_frac": true,
	"tick_p50_ms": true, "tick_p90_ms": true, "tick_p95_ms": true,
	"tick_p99_ms": true, "tick_max_ms": true, "tick_mean_ms": true,
	"load_imbalance": true, "view_margin": true,
}

// metricNeeds maps metric name → availability class, derived from
// metricOrder for validation.
var metricNeeds = func() map[string]string {
	m := make(map[string]string, len(metricOrder))
	for _, e := range metricOrder {
		m[e.Name] = e.Needs
	}
	return m
}()

// Metric is one named observation in a report.
type Metric struct {
	Name  string
	Value float64
}

// Check is one evaluated assertion.
type Check struct {
	Assertion
	Actual float64
	Ok     bool
}

// holds reports whether the assertion holds for the actual value.
func (a Assertion) holds(actual float64) bool {
	switch a.Op {
	case "<":
		return actual < a.Value
	case "<=":
		return actual <= a.Value
	case ">":
		return actual > a.Value
	case ">=":
		return actual >= a.Value
	}
	return false
}

// TickPoint is one tick observation: virtual time and tick duration.
type TickPoint struct {
	At, Dur time.Duration
}

// ShardSeries is one shard's per-tick series (warm-up included; the
// timestamps let consumers window it themselves). The CSV emitter renders
// it; the text report does not.
type ShardSeries struct {
	Shard int
	Ticks []TickPoint
}

// TileLoadRow is one region tile's attributed cost over the whole run
// (warm-up included, like the tick series): player actions processed
// and chunk writes issued on the tile's terrain, with the tile's owner
// at end of run — the per-tile load signal behind the resident-player
// proxy the controller uses. The CSV emitter renders it; the text
// report does not.
type TileLoadRow struct {
	X, Z, Owner     int
	Actions, Stores int64
}

// ScalePoint is one shards_active observation: the alive shard count
// sampled at every lifecycle transition (scale-up, retirement,
// failover, recovery) — the cluster's scale trajectory.
type ScalePoint struct {
	At    time.Duration
	Count int
}

// ScaleEventRow is one autoscaling event from the cluster's scale log,
// in occurrence order: scale-up, drain, scale-down, spread, quarantine,
// or readmit. The CSV emitter renders it; the text report does not.
type ScaleEventRow struct {
	At    time.Duration
	Kind  string
	Shard int
	Tiles int
	Epoch uint64
}

// Report is the outcome of one scenario run. Its rendering is a pure
// function of the virtual-clock execution: two runs of the same spec
// produce byte-identical reports (text and CSV alike).
type Report struct {
	Name    string
	Virtual time.Duration // virtual run length
	Pass    bool
	Metrics []Metric
	Checks  []Check
	// Series holds every shard's per-tick durations for the CSV emitter.
	Series []ShardSeries
	// TileLoads holds the per-tile cost rows of a sharded run for the
	// CSV emitter, in space-filling-index order.
	TileLoads []TileLoadRow
	// ScaleSeries is the alive-shard-count trajectory of a sharded run,
	// and ScaleEvents its autoscaling event log, both for the CSV
	// emitter.
	ScaleSeries []ScalePoint
	ScaleEvents []ScaleEventRow
	// Wall is the wall-clock time the measured window took to simulate,
	// and BotSeconds the bot-seconds of simulation it advanced (the
	// concurrency integrated over virtual time). BotSeconds/Wall.Seconds()
	// is the engine's throughput: bots simulated per wall-second. Neither
	// field is rendered — Wall is nondeterministic, and the replay gates
	// compare rendered reports.
	Wall       time.Duration
	BotSeconds float64
}

// fmtVal renders a metric value deterministically: integral values without
// a fraction, everything else with four decimals.
func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// Render returns the deterministic text report.
func (r *Report) Render() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %s: %s (%s virtual)\n", r.Name, verdict, r.Virtual)
	for _, m := range r.Metrics {
		fmt.Fprintf(&b, "  %-24s %s\n", m.Name, fmtVal(m.Value))
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Ok {
			status = "FAIL"
		}
		window := ""
		if c.Windowed() {
			window = fmt.Sprintf(" in [%s,%s]", c.From, c.To)
		}
		fmt.Fprintf(&b, "  assert %s %s %s%s: %s (actual %s)\n",
			c.Metric, c.Op, fmtVal(c.Value), window, status, fmtVal(c.Actual))
	}
	return b.String()
}
