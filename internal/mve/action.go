package mve

import (
	"fmt"

	"servo/internal/world"
)

// ActionKind enumerates the player actions of the MVE protocol, covering
// the random-behavior action mix of Table II.
type ActionKind int

// Action kinds.
const (
	ActionMove ActionKind = iota + 1 // move toward a destination at a speed
	ActionPlaceBlock
	ActionBreakBlock
	ActionChat         // message to all players on the instance
	ActionSetInventory // switch the held item
	ActionIdle         // stand still (explicit no-op)
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case ActionMove:
		return "move"
	case ActionPlaceBlock:
		return "place"
	case ActionBreakBlock:
		return "break"
	case ActionChat:
		return "chat"
	case ActionSetInventory:
		return "inventory"
	case ActionIdle:
		return "idle"
	}
	return fmt.Sprintf("action(%d)", int(k))
}

// Action is one player command handed to the server.
type Action struct {
	Kind ActionKind

	// Move parameters: world-coordinate destination and speed in blocks
	// per second.
	DestX, DestZ float64
	Speed        float64

	// Block parameters for place/break.
	Pos   world.BlockPos
	Block world.Block

	// Inventory slot for ActionSetInventory.
	Item uint8
}

// MoveTo builds a move action.
func MoveTo(x, z, speed float64) Action {
	return Action{Kind: ActionMove, DestX: x, DestZ: z, Speed: speed}
}
