package world

import "testing"

func TestBandTopologyMatchesLegacyBands(t *testing.T) {
	topo := BandTopology{BandChunks: 8}
	// Band 0 covers chunks [0, 8); band -1 covers [-8, 0).
	cases := []struct {
		cp   ChunkPos
		want TileID
	}{
		{ChunkPos{0, 0}, TileID{X: 0}},
		{ChunkPos{7, 50}, TileID{X: 0}},
		{ChunkPos{8, 0}, TileID{X: 1}},
		{ChunkPos{-1, 0}, TileID{X: -1}},
		{ChunkPos{-8, 0}, TileID{X: -1}},
		{ChunkPos{-9, 0}, TileID{X: -2}},
	}
	for _, c := range cases {
		if got := topo.TileOf(c.cp); got != c.want {
			t.Errorf("TileOf(%v) = %v, want %v", c.cp, got, c.want)
		}
	}
	// Z never matters: bands run along X only.
	for z := -100; z <= 100; z += 50 {
		if got := topo.TileOf(ChunkPos{X: 9, Z: z}); got != (TileID{X: 1}) {
			t.Errorf("TileOf(9,%d) = %v, want tile(1,0)", z, got)
		}
	}
	if topo.Tiles() != 0 {
		t.Errorf("band topology must be unbounded, Tiles() = %d", topo.Tiles())
	}
	// PR 3's BandCenter: band 2 of 8-chunk bands centers at x = 2*128+64.
	if got := topo.Center(TileID{X: 2}); got != (BlockPos{X: 320}) {
		t.Errorf("Center(band 2) = %v, want (320,0,0)", got)
	}
	for i := -5; i <= 5; i++ {
		tile := TileID{X: i}
		if topo.Index(tile) != i || topo.TileAt(i) != tile {
			t.Errorf("band Index/TileAt not inverse at %d", i)
		}
		if got := topo.TileOf(topo.Center(tile).Chunk()); got != tile {
			t.Errorf("Center(%v) lies in %v", tile, got)
		}
	}
	if n := topo.Neighbors(TileID{X: 3}); len(n) != 2 || n[0] != (TileID{X: 2}) || n[1] != (TileID{X: 4}) {
		t.Errorf("band Neighbors(3) = %v", n)
	}
}

func TestGridTopologyTilingCompleteAndWrapped(t *testing.T) {
	topo := GridTopology{TilesX: 4, TilesZ: 3, TileChunks: 4}
	span := 4 // chunks per tile side
	for cx := -40; cx <= 40; cx++ {
		for cz := -40; cz <= 40; cz++ {
			tile := topo.TileOf(ChunkPos{X: cx, Z: cz})
			if tile.X < 0 || tile.X >= 4 || tile.Z < 0 || tile.Z >= 3 {
				t.Fatalf("TileOf(%d,%d) = %v outside the grid", cx, cz, tile)
			}
			// Periodicity: shifting by a full grid span changes nothing.
			wrapped := topo.TileOf(ChunkPos{X: cx + 4*span, Z: cz - 3*span})
			if wrapped != tile {
				t.Fatalf("tiling not periodic at (%d,%d): %v vs %v", cx, cz, tile, wrapped)
			}
		}
	}
	if topo.Tiles() != 12 {
		t.Fatalf("Tiles() = %d, want 12", topo.Tiles())
	}
	for _, tile := range []TileID{{0, 0}, {3, 0}, {1, 2}} {
		if got := topo.TileOf(topo.Center(tile).Chunk()); got != tile {
			t.Errorf("Center(%v) lies in %v", tile, got)
		}
	}
}

func TestGridSerpentineIndexIsSpaceFilling(t *testing.T) {
	topo := GridTopology{TilesX: 4, TilesZ: 4}
	seen := make(map[TileID]bool)
	for i := 0; i < topo.Tiles(); i++ {
		tile := topo.TileAt(i)
		if seen[tile] {
			t.Fatalf("TileAt(%d) = %v repeats", i, tile)
		}
		seen[tile] = true
		if got := topo.Index(tile); got != i {
			t.Fatalf("Index(TileAt(%d)) = %d", i, got)
		}
		if i == 0 {
			continue
		}
		// Space-filling: consecutive indices are grid neighbours, so a
		// contiguous index run is a contiguous territory.
		prev := topo.TileAt(i - 1)
		adjacent := false
		for _, n := range topo.Neighbors(tile) {
			if n == prev {
				adjacent = true
			}
		}
		if !adjacent {
			t.Fatalf("TileAt(%d)=%v not adjacent to TileAt(%d)=%v", i, tile, i-1, prev)
		}
	}
}

func TestGridNeighborsTorus(t *testing.T) {
	topo := GridTopology{TilesX: 3, TilesZ: 3}
	n := topo.Neighbors(TileID{X: 0, Z: 0})
	want := []TileID{{2, 0}, {1, 0}, {0, 2}, {0, 1}}
	if len(n) != len(want) {
		t.Fatalf("Neighbors(0,0) = %v, want %v", n, want)
	}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Neighbors(0,0) = %v, want %v", n, want)
		}
	}
	// Symmetry: u in Neighbors(v) iff v in Neighbors(u).
	for i := 0; i < topo.Tiles(); i++ {
		v := topo.TileAt(i)
		for _, u := range topo.Neighbors(v) {
			back := false
			for _, w := range topo.Neighbors(u) {
				if w == v {
					back = true
				}
			}
			if !back {
				t.Fatalf("asymmetric adjacency: %v -> %v", v, u)
			}
		}
	}
	// A 1-wide axis folds both directions onto the same tile: dedup.
	narrow := GridTopology{TilesX: 1, TilesZ: 3}
	if n := narrow.Neighbors(TileID{0, 0}); len(n) != 2 {
		t.Fatalf("1-wide grid Neighbors = %v, want the two Z neighbours", n)
	}
}

func TestDefaultOwnerContiguousAndBalanced(t *testing.T) {
	topo := GridTopology{TilesX: 4, TilesZ: 4}
	shards := 4
	counts := make([]int, shards)
	for i := 0; i < topo.Tiles(); i++ {
		o := DefaultOwner(topo, shards, topo.TileAt(i))
		if o < 0 || o >= shards {
			t.Fatalf("owner %d out of range", o)
		}
		counts[o]++
		if i > 0 {
			prev := DefaultOwner(topo, shards, topo.TileAt(i-1))
			if o < prev {
				t.Fatalf("default owners not monotone along the space-filling order: idx %d owner %d after %d", i, o, prev)
			}
		}
	}
	for s, n := range counts {
		if n != 4 {
			t.Errorf("shard %d owns %d tiles, want 4", s, n)
		}
	}
	// Bands keep PR 2's interleave: band b -> shard b mod n.
	band := BandTopology{}
	for b := -6; b <= 6; b++ {
		if got, want := DefaultOwner(band, 3, TileID{X: b}), floorMod(b, 3); got != want {
			t.Errorf("band %d default owner = %d, want %d", b, got, want)
		}
	}
}

func TestHomeTileInOwnTerritory(t *testing.T) {
	topos := []Topology{
		BandTopology{BandChunks: 8},
		GridTopology{TilesX: 4, TilesZ: 4},
		GridTopology{TilesX: 3, TilesZ: 5, TileChunks: 4},
	}
	for _, topo := range topos {
		for _, shards := range []int{1, 2, 4, 7} {
			if n := topo.Tiles(); n != 0 && shards > n {
				continue
			}
			for i := 0; i < shards; i++ {
				home := HomeTile(topo, shards, i)
				if got := DefaultOwner(topo, shards, home); got != i {
					t.Errorf("%v shards=%d: HomeTile(%d)=%v owned by %d", topo, shards, i, home, got)
				}
				// The home tile's center really lies inside the tile.
				if got := topo.TileOf(topo.Center(home).Chunk()); got != home {
					t.Errorf("%v: Center(%v) lies in %v", topo, home, got)
				}
			}
		}
	}
}

func TestTopologySpecRoundTrip(t *testing.T) {
	for _, topo := range []Topology{
		BandTopology{BandChunks: 4},
		BandTopology{},
		GridTopology{TilesX: 4, TilesZ: 2, TileChunks: 6},
	} {
		built, err := topo.Spec().Build()
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if built.Spec() != topo.Spec() {
			t.Errorf("spec round-trip changed %v into %v", topo.Spec(), built.Spec())
		}
	}
	if _, err := (TopologySpec{Kind: "hex"}).Build(); err == nil {
		t.Error("unknown kind built")
	}
	if _, err := (TopologySpec{Kind: "grid"}).Build(); err == nil {
		t.Error("grid without dimensions built")
	}
}
