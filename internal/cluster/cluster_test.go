package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"servo/internal/blob"
	"servo/internal/mve"
	"servo/internal/sc"
	"servo/internal/servo/rstore"
	"servo/internal/sim"
	"servo/internal/world"
)

// newTestCluster builds a cluster of plain (no serverless backends)
// servers on a fresh loop. Tile side 4 chunks → 64-block band tiles
// (the default band topology) unless cfg.Topology picks another tiling.
func newTestCluster(t *testing.T, seed int64, shards int, cfg Config) (*sim.Loop, *Cluster) {
	t.Helper()
	loop := sim.NewLoop(seed)
	cfg.Shards = shards
	if cfg.Topology == nil {
		cfg.Topology = world.BandTopology{BandChunks: 4}
	}
	c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{
			WorldType:    "flat",
			ViewDistance: 32,
			Region:       region,
		})
	})
	return loop, c
}

// walker issues a single move order and then stays quiet.
func walker(x, z, speed float64) mve.Behavior {
	issued := false
	return mve.BehaviorFunc(func(_ *rand.Rand, _ *mve.Player, _ *mve.Server) []mve.Action {
		if issued {
			return nil
		}
		issued = true
		return []mve.Action{mve.MoveTo(x, z, speed)}
	})
}

func TestHandoffAcrossBoundary(t *testing.T) {
	loop, c := newTestCluster(t, 1, 2, Config{})
	// Band 0 (x in [0,64)) → shard 0; band 1 (x in [64,128)) → shard 1.
	p := c.ConnectAt("runner", walker(100, 8, 8), world.BlockPos{X: 32, Y: 0, Z: 8})
	if p.Shard() != 0 {
		t.Fatalf("spawned on shard %d, want 0", p.Shard())
	}
	sess := c.Session(p)
	sess.Inventory = 13
	c.Start()
	loop.RunUntil(30 * time.Second)

	if got := c.Handoffs.Value(); got != 1 {
		t.Fatalf("handoffs = %d, want exactly 1", got)
	}
	if p.Shard() != 1 {
		t.Fatalf("player on shard %d after crossing, want 1", p.Shard())
	}
	if c.Shard(0).PlayerCount() != 0 || c.Shard(1).PlayerCount() != 1 {
		t.Fatalf("session counts: shard0=%d shard1=%d", c.Shard(0).PlayerCount(), c.Shard(1).PlayerCount())
	}
	sess = c.Session(p)
	if sess == nil {
		t.Fatal("no session after handoff")
	}
	if sess.Inventory != 13 {
		t.Fatalf("inventory lost in handoff: %d", sess.Inventory)
	}
	// Movement state survived: the avatar finished its walk on the new
	// shard.
	if sess.X < 99 || sess.X > 101 {
		t.Fatalf("avatar did not keep walking after handoff: x=%g", sess.X)
	}
	if log := c.Log.All(); len(log) != 1 || log[0].From != 0 || log[0].To != 1 || log[0].Player != "runner" {
		t.Fatalf("handoff log wrong: %+v", c.Log.All())
	}
	if c.HandoffsOut[0].Value() != 1 || c.HandoffsIn[1].Value() != 1 {
		t.Fatalf("per-shard counters wrong: out0=%d in1=%d", c.HandoffsOut[0].Value(), c.HandoffsIn[1].Value())
	}
}

func TestHandoffHysteresisNoThrash(t *testing.T) {
	loop, c := newTestCluster(t, 2, 2, Config{})
	p := c.ConnectAt("osc", nil, world.BlockPos{X: 62, Y: 0, Z: 8})
	c.Start()
	// Teleport the avatar across the x=64 boundary between scans (scan
	// period 250ms, flips offset by 125ms), so consecutive scans always
	// see opposite sides: the two-scan hysteresis must never fire.
	far := false
	var flip func()
	flip = func() {
		if sess := c.Session(p); sess != nil {
			far = !far
			if far {
				sess.X = 66
			} else {
				sess.X = 62
			}
		}
		loop.After(250*time.Millisecond, flip)
	}
	loop.After(125*time.Millisecond, flip)
	loop.RunUntil(60 * time.Second)
	if got := c.Handoffs.Value(); got != 0 {
		t.Fatalf("boundary oscillation caused %d handoffs (thrash)", got)
	}
}

func TestOwnedConstructMigratesWithState(t *testing.T) {
	loop, c := newTestCluster(t, 3, 2, Config{})
	p := c.ConnectAt("engineer", walker(100, 8, 8), world.BlockPos{X: 32, Y: 0, Z: 8})
	con := sc.BuildSized(48)
	// Anchor near the walk's destination so the construct's chunk stays
	// within view range on both shards (an anchor left far behind would
	// legitimately halt on chunk unload instead of migrating).
	c.SpawnOwnedConstruct(con, world.BlockPos{X: 90, Y: 5, Z: 8}, p)
	if c.Shard(0).SCs().Count() != 1 {
		t.Fatal("construct not on source shard")
	}
	c.Start()
	loop.RunUntil(30 * time.Second)

	if c.Handoffs.Value() == 0 {
		t.Fatal("no handoff happened")
	}
	if got := c.Shard(0).SCs().Count(); got != 0 {
		t.Fatalf("source shard still simulates %d constructs", got)
	}
	if got := c.Shard(1).SCs().Count(); got != 1 {
		t.Fatalf("target shard simulates %d constructs, want 1", got)
	}
	if p.OwnedConstructs() != 1 {
		t.Fatalf("ownership refs lost: %d", p.OwnedConstructs())
	}
}

// seqWalker walks through waypoints in order, one move at a time.
func seqWalker(speed float64, waypoints ...[2]float64) mve.Behavior {
	idx := 0
	return mve.BehaviorFunc(func(_ *rand.Rand, p *mve.Player, _ *mve.Server) []mve.Action {
		if p.Moving() || idx >= len(waypoints) {
			return nil
		}
		w := waypoints[idx]
		idx++
		return []mve.Action{mve.MoveTo(w[0], w[1], speed)}
	})
}

// TestOwnedConstructSurvivesHaltResumeThenMigrates is the stale-id
// regression: the owner walks far enough that the construct's chunk
// unloads (halting it), comes back (the construct resumes under a FRESH
// shard-level id), and then crosses a shard boundary. Anchor-based
// ownership must still migrate the construct.
func TestOwnedConstructSurvivesHaltResumeThenMigrates(t *testing.T) {
	loop, c := newTestCluster(t, 8, 2, Config{})
	// Out along +Z far past view+margin (halts the construct anchored at
	// the edge of view), back (resumes it under a fresh shard-level id),
	// then across the x=64 band boundary. The anchor sits in band 1 so
	// the handoff into shard 1 migrates it.
	p := c.ConnectAt("roamer", seqWalker(8, [2]float64{32, 150}, [2]float64{32, 8}, [2]float64{80, 8}),
		world.BlockPos{X: 32, Y: 0, Z: 8})
	c.SpawnOwnedConstruct(sc.BuildSized(48), world.BlockPos{X: 70, Y: 5, Z: 8}, p)
	c.Start()
	loop.RunUntil(90 * time.Second)

	if c.Shard(0).ConstructsResumed.Value() == 0 {
		t.Fatal("construct never halted+resumed; regression test proves nothing")
	}
	if c.Handoffs.Value() == 0 {
		t.Fatal("no handoff happened")
	}
	if got := c.Shard(1).SCs().Count(); got != 1 {
		t.Fatalf("construct did not migrate after halt/resume: shard1 has %d", got)
	}
	if got := c.Shard(0).SCs().Count(); got != 0 {
		t.Fatalf("source shard still simulates %d constructs", got)
	}
	if p.OwnedConstructs() != 1 {
		t.Fatalf("ownership lost across halt/resume: %d refs", p.OwnedConstructs())
	}
}

// retryingTransfer is the test double of core's blob-backed transfer.
type retryingTransfer struct{ remote *blob.Store }

func (t *retryingTransfer) Save(name string, data []byte, done func()) {
	t.remote.PutRetryingThen(rstore.PlayerKey(name), data, done)
}

func (t *retryingTransfer) Load(name string, cb func([]byte, bool)) {
	t.remote.GetRetrying(rstore.PlayerKey(name), func(data []byte, err error) {
		cb(data, err == nil)
	})
}

func TestHandoffThroughStoreSurvivesBrownout(t *testing.T) {
	loop := sim.NewLoop(4)
	remote := blob.NewStore(loop, blob.TierPremium)
	cfg := Config{Transfer: &retryingTransfer{remote: remote}, Shards: 2, Topology: world.BandTopology{BandChunks: 4}}
	c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 32, Region: region})
	})
	p := c.ConnectAt("survivor", walker(100, 8, 8), world.BlockPos{X: 32, Y: 0, Z: 8})
	c.Session(p).Inventory = 21
	// A brownout for the whole run: half of reads and writes fail, and
	// everything is 5x slower. Retrying transfer must still deliver.
	remote.SetChaos(&blob.Chaos{ReadErrorRate: 0.5, WriteErrorRate: 0.5, LatencyFactor: 5})
	c.Start()
	loop.RunUntil(60 * time.Second)

	if got := c.Handoffs.Value(); got != 1 {
		t.Fatalf("handoffs = %d, want 1", got)
	}
	sess := c.Session(p)
	if sess == nil {
		t.Fatal("session lost")
	}
	if sess.Inventory != 21 {
		t.Fatalf("inventory lost through brownout handoff: %d", sess.Inventory)
	}
	if sess.X < 99 || sess.X > 101 {
		t.Fatalf("position lost through brownout handoff: x=%g", sess.X)
	}
	if remote.FaultsInjected.Value() == 0 {
		t.Fatal("brownout injected no faults; test proves nothing")
	}
	// The storage round-trip is the handoff latency: with a 5x brownout
	// it must be visible (well above one tick).
	if lat := c.HandoffLatency.Max(); lat < 10*time.Millisecond {
		t.Fatalf("handoff latency %v implausibly low for a brownout", lat)
	}
}

func TestDisconnectDuringHandoffDoesNotCrash(t *testing.T) {
	loop := sim.NewLoop(5)
	remote := blob.NewStore(loop, blob.TierStandard)
	cfg := Config{Transfer: &retryingTransfer{remote: remote}, Shards: 2, Topology: world.BandTopology{BandChunks: 4}}
	c := New(loop, cfg, func(i int, region world.Region) *mve.Server {
		return mve.NewServer(loop, mve.Config{WorldType: "flat", ViewDistance: 32, Region: region})
	})
	p := c.ConnectAt("quitter", walker(100, 8, 8), world.BlockPos{X: 32, Y: 0, Z: 8})
	c.SpawnOwnedConstruct(sc.BuildSized(48), world.BlockPos{X: 90, Y: 5, Z: 8}, p)
	c.Start()
	// Slow the store drastically so the handoff is in flight for a while.
	remote.SetChaos(&blob.Chaos{LatencyFactor: 50})
	// Disconnect as soon as the handoff starts.
	var poll func()
	poll = func() {
		if p.InFlight() {
			c.Disconnect(p.ID)
			return
		}
		loop.After(100*time.Millisecond, poll)
	}
	loop.After(100*time.Millisecond, poll)
	loop.RunUntil(2 * time.Minute)

	if c.PlayerCount() != 0 {
		t.Fatalf("player count = %d after disconnect, want 0", c.PlayerCount())
	}
	if c.Shard(0).PlayerCount()+c.Shard(1).PlayerCount() != 0 {
		t.Fatal("a shard still hosts the disconnected session")
	}
	// The mid-handoff state was persisted, not lost: a reconnect finds
	// the record.
	if !remote.Exists(rstore.PlayerKey("quitter")) {
		t.Fatal("mid-handoff disconnect lost the persisted player record")
	}
	// The travelling construct was not dropped from the world: it landed
	// on the target shard as unowned (the stay-behind disconnect
	// contract).
	if got := c.Shard(0).SCs().Count() + c.Shard(1).SCs().Count(); got != 1 {
		t.Fatalf("mid-handoff disconnect lost the owned construct: %d in world", got)
	}
}

// TestHandoffDeterministicSequence runs the same seeded multi-player
// cluster twice and requires identical handoff logs.
func TestHandoffDeterministicSequence(t *testing.T) {
	run := func() []HandoffRecord {
		loop, c := newTestCluster(t, 42, 4, Config{})
		for i := 0; i < 12; i++ {
			home := c.Home(i % 4)
			// Every player walks two bands to the right, guaranteeing
			// handoffs; speed varies by the clock RNG.
			speed := 4 + loop.RNG().Float64()*4
			c.ConnectAt(fmt.Sprintf("p%d", i), walker(float64(home.X+128), 8, speed), home)
		}
		c.Start()
		loop.RunUntil(2 * time.Minute)
		return c.Log.All()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no handoffs recorded; test proves nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("handoff counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("handoff[%d] differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
