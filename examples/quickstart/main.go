// Quickstart: build a fully serverless Servo instance, drop a couple of
// player-built circuits into the world, connect players with the paper's
// random behavior, fast-forward five virtual minutes, and report QoS.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"servo"
)

func main() {
	inst := servo.NewInstance(servo.Config{
		Seed:      7,
		WorldType: "flat",
		Servo:     servo.AllServerless(),
	})
	defer inst.Stop()

	// Players program the terrain with simulated constructs; Servo
	// offloads their simulation to serverless functions.
	inst.SpawnConstruct(servo.NewClockCircuit(), servo.At(8, 5, 8))
	inst.SpawnConstruct(servo.NewLampBank(4, 10), servo.At(-20, 5, 12))
	inst.SpawnConstruct(servo.NewConstructSized(252), servo.At(30, 5, -30))

	for i := 0; i < 20; i++ {
		inst.Connect(fmt.Sprintf("player-%d", i), servo.BehaviorRandom)
	}

	// Five minutes of game time pass in a blink of wall time: the whole
	// backend (FaaS platform, storage, game loop) runs on a virtual clock.
	inst.Run(5 * time.Minute)

	fmt.Println("tick durations:", inst.TickStats())
	sys := inst.System()
	fmt.Printf("construct offloads: %d invocations, %d cold starts, $%.4f billed\n",
		sys.SCFn.Invocations.Count(), sys.SCFn.ColdStarts.Value(), sys.SCFn.BilledDollars())
	spec := sys.SpecExec.Snapshot()
	fmt.Printf("construct steps: %d applied from speculation, %d replayed from loops, %d simulated locally\n",
		spec.RemoteSteps, spec.ReplaySteps, spec.LocalSteps)
	fmt.Printf("view margin: %d blocks (%d = perfect)\n",
		inst.ViewMargin(), inst.Server().Config().ViewDistance)
}
