# CI entry points for the Servo reproduction. `make ci` is the gate the
# scenario harness and tier-1 tests run behind.

GO ?= go

.PHONY: ci vet fmtcheck build test race validate sim bench benchsmoke clusterrace

ci: vet fmtcheck build race clusterrace validate benchsmoke

vet:
	$(GO) vet ./...

# fmtcheck fails if any file needs gofmt.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# clusterrace re-runs the control-plane packages under the race detector
# uncached: the rebalance/failover paths juggle closures across the
# virtual clock and must stay data-race-free even as they grow.
clusterrace:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/world/

# validate parses and validates every bundled scenario without running it.
validate:
	$(GO) run ./cmd/servo-sim validate all

# sim executes every bundled scenario and fails on any assertion failure.
sim:
	$(GO) run ./cmd/servo-sim run all

# bench regenerates the paper's tables and figures at bench scale.
bench:
	$(GO) run ./cmd/servo-bench -exp all

# benchsmoke runs every benchmark exactly once in short mode: a fast
# compile-and-execute gate over the figure pipelines, not a measurement.
benchsmoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x .
