package world

import (
	"testing"
)

func TestChunksWithinAppendMatchesChunksWithin(t *testing.T) {
	centers := []BlockPos{{}, {X: 8, Z: 8}, {X: -37, Z: 129}, {X: 15, Z: -16}}
	radii := []int{-1, 0, 1, 15, 16, 48, 100}
	var buf []ChunkPos
	for _, c := range centers {
		for _, r := range radii {
			want := ChunksWithin(c, r)
			buf = ChunksWithinAppend(buf[:0], c, r)
			if len(buf) != len(want) {
				t.Fatalf("ChunksWithinAppend(%v, %d): %d chunks, want %d", c, r, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("ChunksWithinAppend(%v, %d)[%d] = %v, want %v (order must match)", c, r, i, buf[i], want[i])
				}
			}
		}
	}
}

func TestChunkRectWithin(t *testing.T) {
	for _, c := range []BlockPos{{}, {X: 7, Z: -22}, {X: -129, Z: 300}} {
		for _, radius := range []int{0, 5, 16, 47, 128} {
			r := ChunkRectWithin(c, radius)
			chunks := ChunksWithin(c, radius)
			if r.Count() != len(chunks) {
				t.Fatalf("rect(%v, %d).Count() = %d, want %d", c, radius, r.Count(), len(chunks))
			}
			for _, cp := range chunks {
				if !r.Contains(cp) {
					t.Fatalf("rect(%v, %d) misses %v", c, radius, cp)
				}
			}
			for _, out := range []ChunkPos{
				{X: r.Min.X - 1, Z: r.Min.Z}, {X: r.Max.X + 1, Z: r.Max.Z},
				{X: r.Min.X, Z: r.Min.Z - 1}, {X: r.Max.X, Z: r.Max.Z + 1},
			} {
				if r.Contains(out) {
					t.Fatalf("rect(%v, %d) wrongly contains %v", c, radius, out)
				}
			}
		}
	}
	if got := ChunkRectWithin(BlockPos{}, -1).Count(); got != 0 {
		t.Fatalf("negative radius rect holds %d chunks, want 0", got)
	}
}

func TestBordersWithinAppendReusesBuffer(t *testing.T) {
	// Held as the interface, as real callers do — converting the concrete
	// value per call would itself allocate.
	var topo Topology = GridTopology{TilesX: 4, TilesZ: 4, TileChunks: 4} // 64-block tiles
	pos := BlockPos{X: 63, Z: 63}                                         // tile corner: several foreign tiles in reach
	want := BordersWithin(topo, pos, 32)
	if len(want) == 0 {
		t.Fatal("corner position found no border neighbors")
	}
	buf := make([]BorderNeighbor, 0, 16)
	buf = BordersWithinAppend(buf[:0], topo, pos, 32)
	if len(buf) != len(want) {
		t.Fatalf("append variant found %d neighbors, want %d", len(buf), len(want))
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("append variant [%d] = %+v, want %+v (order must match)", i, buf[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = BordersWithinAppend(buf[:0], topo, pos, 32)
	})
	if allocs != 0 {
		t.Fatalf("BordersWithinAppend with a warm buffer allocates %.1f/op, want 0", allocs)
	}
}
