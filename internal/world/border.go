// Tile-border proximity: which foreign tiles an avatar standing at a
// block position can reach within a margin, and how far away the nearest
// one is. This is the geometric half of cross-shard visibility — an
// avatar within view distance of a tile border can see terrain (and
// should see avatars) hosted by the border tile's owner, so the cluster
// replicates it there as a ghost. With the margin at most one tile side
// the reported tiles are exactly the home tile's Topology.Neighbors ring
// (plus the diagonal corners a view square can clip); a larger margin —
// or smaller tiles — reaches further rings, and every intersected tile
// is reported, so visibility never silently stops one ring out.

package world

// BorderNeighbor is one foreign tile within reach of a position.
type BorderNeighbor struct {
	Tile TileID
	// Dist is the Chebyshev distance in blocks from the position to the
	// nearest block of the tile (1 = standing flush against the border).
	Dist int
}

// BordersWithin returns every foreign tile whose territory comes within
// margin blocks (Chebyshev) of pos, nearest-block distance included.
// Tiles are unions of whole chunks, so the scan enumerates
// ChunksWithin(pos, margin) in its deterministic order, folding each
// tile to its minimum distance (a wrapping torus reaches the same tile
// from several sides). It never touches topology internals — any
// Topology works.
func BordersWithin(topo Topology, pos BlockPos, margin int) []BorderNeighbor {
	if topo == nil || margin < 0 {
		return nil
	}
	home := topo.TileOf(pos.Chunk())
	var out []BorderNeighbor
	idx := make(map[TileID]int)
	for _, cp := range ChunksWithin(pos, margin) {
		t := topo.TileOf(cp)
		if t == home {
			continue
		}
		dist := cp.DistanceBlocks(pos)
		if i, ok := idx[t]; ok {
			if dist < out[i].Dist {
				out[i].Dist = dist
			}
			continue
		}
		idx[t] = len(out)
		out = append(out, BorderNeighbor{Tile: t, Dist: dist})
	}
	return out
}

// BorderDistance returns the Chebyshev distance in blocks from pos to
// the nearest block lying in a different tile, or max+1 when no foreign
// tile is within max blocks (including topologies with a single tile,
// where no border exists at all).
func BorderDistance(topo Topology, pos BlockPos, max int) int {
	best := max + 1
	for _, bn := range BordersWithin(topo, pos, max) {
		if bn.Dist < best {
			best = bn.Dist
		}
	}
	return best
}
