package mve

import (
	"encoding/binary"
	"errors"
	"math"

	"servo/internal/sc"
	"servo/internal/world"
)

// PlayerStore persists per-player data (position, inventory). The paper's
// storage design covers player-, meta-, and terrain-data (§III-E); player
// data is fetched "every time a player connects to a game instance"
// (§II-D, Fig. 3) and written back on disconnect.
type PlayerStore interface {
	// SavePlayer persists the encoded player record (asynchronously).
	SavePlayer(name string, data []byte)
	// LoadPlayer fetches the record; ok is false for first-time players.
	LoadPlayer(name string, cb func(data []byte, ok bool))
}

// playerRecord is the persisted subset of Player state.
type playerRecord struct {
	X, Z      float64
	Inventory uint8
}

// encodePlayer serialises a player's persistent state.
func encodePlayer(p *Player) []byte {
	out := make([]byte, 0, 17)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.X))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Z))
	return append(out, p.Inventory)
}

// errBadPlayerRecord reports a corrupt persisted player record.
var errBadPlayerRecord = errors.New("mve: bad player record")

// decodePlayer parses a persisted player record.
func decodePlayer(data []byte) (playerRecord, error) {
	if len(data) < 17 {
		return playerRecord{}, errBadPlayerRecord
	}
	return playerRecord{
		X:         math.Float64frombits(binary.LittleEndian.Uint64(data)),
		Z:         math.Float64frombits(binary.LittleEndian.Uint64(data[8:])),
		Inventory: data[16],
	}, nil
}

// EncodeSnapshot serialises a handoff snapshot. The first 17 bytes are a
// valid player record (see encodePlayer), so a snapshot persisted under
// the player's storage key doubles as the player's saved state: a crash
// between handoff save and restore loses nothing, and a later plain
// reconnect decodes the prefix.
func EncodeSnapshot(s PlayerSnapshot) []byte {
	out := make([]byte, 0, 64)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.X))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Z))
	out = append(out, s.Inventory)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.DestX))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.DestZ))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.Speed))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.ChunksReceived))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Constructs)))
	for _, c := range s.Constructs {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(c.Anchor.X)))
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(c.Anchor.Y)))
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(c.Anchor.Z)))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(c.Layout)))
		out = append(out, c.Layout...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(c.State)))
		out = append(out, c.State...)
	}
	return out
}

// errBadSnapshot reports a corrupt handoff snapshot.
var errBadSnapshot = errors.New("mve: bad handoff snapshot")

// DecodeSnapshot parses a handoff snapshot (Name and Behavior are carried
// out of band). A bare 17-byte player record decodes too, with zero
// movement state, so snapshots and plain records share a storage key.
func DecodeSnapshot(data []byte) (PlayerSnapshot, error) {
	rec, err := decodePlayer(data)
	if err != nil {
		return PlayerSnapshot{}, err
	}
	s := PlayerSnapshot{X: rec.X, Z: rec.Z, Inventory: rec.Inventory}
	s.DestX, s.DestZ = s.X, s.Z
	if len(data) == 17 {
		return s, nil
	}
	buf := data[17:]
	u64 := func() (uint64, bool) {
		if len(buf) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf)
		buf = buf[8:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(buf) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, true
	}
	dx, ok1 := u64()
	dz, ok2 := u64()
	sp, ok3 := u64()
	cr, ok4 := u32()
	if !(ok1 && ok2 && ok3 && ok4) || len(buf) < 2 {
		return PlayerSnapshot{}, errBadSnapshot
	}
	s.DestX = math.Float64frombits(dx)
	s.DestZ = math.Float64frombits(dz)
	s.Speed = math.Float64frombits(sp)
	s.ChunksReceived = int(cr)
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	for i := 0; i < n; i++ {
		ax, oka := u32()
		ay, okb := u32()
		az, okc := u32()
		if !(oka && okb && okc) {
			return PlayerSnapshot{}, errBadSnapshot
		}
		c := ConstructSnapshot{Anchor: world.BlockPos{X: int(int32(ax)), Y: int(int32(ay)), Z: int(int32(az))}}
		ln, ok := u32()
		if !ok || len(buf) < int(ln) {
			return PlayerSnapshot{}, errBadSnapshot
		}
		c.Layout = append([]byte(nil), buf[:ln]...)
		buf = buf[ln:]
		ln, ok = u32()
		if !ok || len(buf) < int(ln) {
			return PlayerSnapshot{}, errBadSnapshot
		}
		c.State = append(sc.StateVector(nil), buf[:ln]...)
		buf = buf[ln:]
		s.Constructs = append(s.Constructs, c)
	}
	return s, nil
}

// loadPlayerData restores a reconnecting player's persisted state once it
// arrives from storage. Until then the player stands at spawn, exactly as
// on the real systems (the retrieval latency is the player-data curve of
// Fig. 3).
func (s *Server) loadPlayerData(p *Player) {
	ps, ok := s.store.(PlayerStore)
	if !ok {
		return
	}
	id := p.ID
	ps.LoadPlayer(p.Name, func(data []byte, found bool) {
		if !found {
			return
		}
		rec, err := decodePlayer(data)
		if err != nil {
			return
		}
		// Only apply if the session is still live and hasn't moved yet
		// (a stale load must not teleport an active player).
		cur, live := s.players[id]
		if !live || cur != p || p.Moving() {
			return
		}
		p.X, p.Z = rec.X, rec.Z
		p.destX, p.destZ = rec.X, rec.Z
		p.Inventory = rec.Inventory
	})
}

// savePlayerData persists a disconnecting player's state.
func (s *Server) savePlayerData(p *Player) {
	if ps, ok := s.store.(PlayerStore); ok {
		ps.SavePlayer(p.Name, encodePlayer(p))
	}
}
