// Periodic player checkpointing. The handoff path persists a player
// snapshot only when the player crosses a region boundary, so a shard
// failure could restore a sedentary player merely at its scan-tracked
// last position, inventory lost. The checkpoint loop closes that hole:
// every interval, each live session's snapshot is written through the
// cluster's Transfer (the same retrying storage path handoffs use, so a
// brownout delays but never loses a checkpoint), and FailShard's readmit
// then finds a full record for players that never moved.

package cluster

import "servo/internal/mve"

// checkpointTick persists every live session's snapshot and schedules
// the next round. Sessions mid-handoff are skipped — their snapshot is
// already crossing the storage substrate.
func (c *Cluster) checkpointTick() {
	if c.stopped {
		return
	}
	defer c.clock.After(c.cfg.Checkpoint, c.checkpointTick)
	for _, id := range append([]PlayerID(nil), c.order...) {
		p, ok := c.players[id]
		if !ok || p.inflight {
			continue
		}
		snap, ok := c.shards[p.shard].SnapshotPlayer(p.pid)
		if !ok {
			continue
		}
		// Owned constructs are not checkpointed: their live copies stay in
		// the world, and readmit discards snapshot constructs anyway (a
		// re-restore would duplicate world state).
		snap.Constructs = nil
		c.Checkpoints.Inc()
		c.transfer.Save(p.Name, mve.EncodeSnapshot(snap), func() {})
	}
}
